package authdb_test

import (
	"strings"
	"testing"

	"authdb"
	"authdb/internal/workload"
)

// paperDB loads the paper's Figure 1 database through the public API.
func paperDB(t testing.TB) *authdb.DB {
	t.Helper()
	db := authdb.Open()
	db.Admin().MustExecScript(workload.PaperScript)
	return db
}

func TestQuickstartFlow(t *testing.T) {
	db := authdb.Open()
	admin := db.Admin()
	admin.MustExec(`relation EMPLOYEE (NAME, TITLE, SALARY) key (NAME)`)
	admin.MustExec(`insert into EMPLOYEE values (Jones, manager, 26000)`)
	admin.MustExec(`insert into EMPLOYEE values (Brown, engineer, 32000)`)
	admin.MustExec(`view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY)`)
	admin.MustExec(`permit SAE to Brown`)

	res, err := db.Session("Brown").Exec(`retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE, EMPLOYEE.SALARY)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.FullyAuthorized || res.Denied {
		t.Fatalf("want a partial grant, got full=%v denied=%v", res.FullyAuthorized, res.Denied)
	}
	if len(res.Table.Rows) != 2 {
		t.Fatalf("rows = %d, want 2\n%s", len(res.Table.Rows), res.Table)
	}
	for _, row := range res.Table.Rows {
		if row[0].IsNull() || row[2].IsNull() {
			t.Fatalf("NAME and SALARY must be delivered: %v", row)
		}
		if !row[1].IsNull() {
			t.Fatalf("TITLE must be masked: %v", row)
		}
	}
	if len(res.Permits) != 1 || res.Permits[0] != "permit (NAME, SALARY)" {
		t.Fatalf("permits = %v", res.Permits)
	}
}

func TestAdminSeesEverything(t *testing.T) {
	db := paperDB(t)
	res, err := db.Admin().Exec(`retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Table.Rows))
	}
	for _, row := range res.Table.Rows {
		for _, c := range row {
			if c.IsNull() {
				t.Fatal("admin results must be unmasked")
			}
		}
	}
}

func TestDeniedUserGetsNothing(t *testing.T) {
	db := paperDB(t)
	res, err := db.Session("Mallory").Exec(`retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY)`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Denied || len(res.Table.Rows) != 0 {
		t.Fatalf("unpermitted user must receive nothing, got %d rows, denied=%v",
			len(res.Table.Rows), res.Denied)
	}
}

func TestPaperExample1ViaFacade(t *testing.T) {
	db := paperDB(t)
	res, err := db.Session("Brown").Exec(workload.Example1Query)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 1 {
		t.Fatalf("rows = %d, want 1\n%s", len(res.Table.Rows), res.Table)
	}
	if got := res.Table.Rows[0][0].String(); got != "bq-45" {
		t.Fatalf("NUMBER = %s, want bq-45", got)
	}
	if len(res.Permits) != 1 || !strings.Contains(res.Permits[0], "SPONSOR = Acme") {
		t.Fatalf("permits = %v", res.Permits)
	}
}

func TestUpdateAuthorization(t *testing.T) {
	db := authdb.Open()
	admin := db.Admin()
	admin.MustExecScript(`
		relation PROJECT (NUMBER, SPONSOR, BUDGET) key (NUMBER);
		insert into PROJECT values (bq-45, Acme, 300000);
		view PSA (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET)
		  where PROJECT.SPONSOR = Acme;
		permit PSA to Brown;
	`)
	brown := db.Session("Brown")
	// Within PSA: Acme rows.
	if _, err := brown.Exec(`insert into PROJECT values (zz-99, Acme, 100)`); err != nil {
		t.Fatalf("insert within the permitted view failed: %v", err)
	}
	// Outside PSA: other sponsors.
	if _, err := brown.Exec(`insert into PROJECT values (xx-1, Apex, 100)`); err == nil {
		t.Fatal("insert outside the permitted view must fail")
	}
	if _, err := brown.Exec(`delete from PROJECT where NUMBER = zz-99`); err != nil {
		t.Fatalf("delete within the permitted view failed: %v", err)
	}
	// Admin loads an Apex row; Brown may not delete it.
	admin.MustExec(`insert into PROJECT values (sv-72, Apex, 450000)`)
	if _, err := brown.Exec(`delete from PROJECT where NUMBER = sv-72`); err == nil {
		t.Fatal("delete outside the permitted view must fail")
	}
}

func TestShowStatements(t *testing.T) {
	db := paperDB(t)
	admin := db.Admin()
	res := admin.MustExec(`show relations`)
	if !strings.Contains(res.Text, "EMPLOYEE = (NAME, TITLE, SALARY)") {
		t.Fatalf("show relations output:\n%s", res.Text)
	}
	res = admin.MustExec(`show meta`)
	for _, want := range []string{"EMPLOYEE'", "PROJECT'", "ASSIGNMENT'", "COMPARISON", "PERMISSION", "x1*", "Acme*"} {
		if !strings.Contains(res.Text, want) {
			t.Fatalf("show meta misses %q:\n%s", want, res.Text)
		}
	}
	if _, err := db.Session("Brown").Exec(`show meta`); err == nil {
		t.Fatal("show meta must require an administrator")
	}
	res = admin.MustExec(`show view EST`)
	if !strings.Contains(res.Text, "EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE") {
		t.Fatalf("show view output:\n%s", res.Text)
	}
}

func TestRevokeTakesEffect(t *testing.T) {
	db := paperDB(t)
	brown := db.Session("Brown")
	res, err := brown.Exec(workload.Example1Query)
	if err != nil || len(res.Table.Rows) == 0 {
		t.Fatalf("pre-revoke retrieve: rows=%v err=%v", res, err)
	}
	db.Admin().MustExec(`revoke PSA from Brown`)
	res, err = brown.Exec(workload.Example1Query)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Denied {
		t.Fatalf("post-revoke retrieve should be denied, got\n%s", res.Table)
	}
}

func TestNonAdminCannotDefine(t *testing.T) {
	db := paperDB(t)
	brown := db.Session("Brown")
	for _, stmt := range []string{
		`relation X (A, B)`,
		`view VX (EMPLOYEE.NAME)`,
		`permit SAE to Brown`,
		`revoke SAE from Brown`,
		`drop view SAE`,
	} {
		if _, err := brown.Exec(stmt); err == nil {
			t.Fatalf("%q must require admin", stmt)
		}
	}
}

func TestFacadeSaveLoad(t *testing.T) {
	db := paperDB(t)
	dir := t.TempDir()
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	back, err := authdb.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := back.Session("Brown").Exec(workload.Example1Query)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 1 || res.Table.Rows[0][1].String() != "Acme" {
		t.Fatalf("restored database answers differently:\n%s", res.Table)
	}
	if _, err := authdb.Load(t.TempDir()); err == nil {
		t.Fatal("loading an empty directory must fail")
	}
}

func TestFacadeDisjunctiveView(t *testing.T) {
	db := authdb.Open()
	db.Admin().MustExecScript(`
		relation P (N, S, B) key (N);
		insert into P values (1, Acme, 10);
		insert into P values (2, Apex, 99);
		insert into P values (3, Apex, 5);
		view V (P.N, P.S, P.B) where P.S = Acme or P.B >= 50;
		permit V to u;
	`)
	res, err := db.Session("u").Exec(`retrieve (P.N, P.S, P.B)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 2 {
		t.Fatalf("disjunctive delivery:\n%s", res.Table)
	}
	show := db.Admin().MustExec(`show view V`)
	if !strings.Contains(show.Text, "or P.B >= 50") {
		t.Fatalf("show view output:\n%s", show.Text)
	}
}

func TestFacadeCellAccessors(t *testing.T) {
	db := paperDB(t)
	res, err := db.Session("Brown").Exec(`retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE, EMPLOYEE.SALARY)`)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Table.Rows[0]
	if txt, ok := row[0].Text(); !ok || txt == "" {
		t.Fatalf("NAME accessor: %q %v", txt, ok)
	}
	if !row[1].IsNull() {
		t.Fatal("TITLE must be withheld")
	}
	if n, ok := row[2].Int(); !ok || n <= 0 {
		t.Fatalf("SALARY accessor: %d %v", n, ok)
	}
}

func TestFacadeCertify(t *testing.T) {
	db := paperDB(t)
	db.Admin().MustExec(`permit PSA to validated`)
	c, err := db.Certify("validated", workload.Example1Query)
	if err != nil {
		t.Fatal(err)
	}
	if c.Full {
		t.Fatal("only the Acme portion is validated")
	}
	if len(c.Table.Rows) != 2 {
		t.Fatalf("certification must never withhold rows:\n%s", c.Table)
	}
	if len(c.Statements) != 1 ||
		c.Statements[0] != "certified (NUMBER, SPONSOR) where SPONSOR = Acme" {
		t.Fatalf("statements = %v", c.Statements)
	}
	if _, err := db.Certify("validated", `permit PSA to x`); err == nil {
		t.Fatal("non-retrieve statement accepted")
	}
	if _, err := db.Certify("validated", `retrieve (avg(PROJECT.BUDGET))`); err == nil {
		t.Fatal("aggregate certify accepted")
	}
}

func TestFacadeAggregates(t *testing.T) {
	db := paperDB(t)
	res, err := db.Session("Brown").Exec(`retrieve (count(EMPLOYEE.NAME), sum(EMPLOYEE.SALARY))`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 1 {
		t.Fatalf("rows:\n%s", res.Table)
	}
	if n, _ := res.Table.Rows[0][0].Int(); n != 3 {
		t.Fatalf("count = %d", n)
	}
	if sum, _ := res.Table.Rows[0][1].Int(); sum != 80000 {
		t.Fatalf("sum = %d", sum)
	}
	if res.Table.Columns[0] != "count(NAME)" {
		t.Fatalf("columns = %v", res.Table.Columns)
	}
}
