# Development targets; `make check` is the CI gate.

GO ?= go

.PHONY: check build vet test race fuzz bench

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short exploratory fuzz pass over the session executor (seeded from
# internal/engine/testdata/fuzz).
fuzz:
	$(GO) test ./internal/engine -fuzz FuzzSessionExec -fuzztime 30s

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
