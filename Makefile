# Development targets; `make check` is the CI gate.

GO ?= go

.PHONY: check build vet test race fuzz bench benchgo

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short exploratory fuzz pass over the session executor (seeded from
# internal/engine/testdata/fuzz).
fuzz:
	$(GO) test ./internal/engine -fuzz FuzzSessionExec -fuzztime 30s

# Reproducible throughput/latency harness for concurrent masked
# retrieval; writes BENCH_parallel.json (see cmd/authdb/bench.go).
bench:
	$(GO) run ./cmd/authdb bench

# Go testing.B micro-benchmarks.
benchgo:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
