# Development targets; `make check` is the CI gate.

GO ?= go

.PHONY: check build vet staticcheck test race chaos fuzz fuzz-wire bench bench-index bench-serve bench-replica bench-mvcc bench-mask bench-storage benchgo

check: build vet staticcheck race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck when the binary is available; CI and dev machines without
# it skip rather than fail (no module dependency is added).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The jepsen-lite failover suite under the race detector: five seeded
# network-chaos schedules (partitions, latency, mid-message cuts,
# promotion of a replica while the old primary still takes writes) plus
# a deliberately un-fenced run that must trip the dual-primary check.
# Set CHAOS_SEED to replay one schedule; set CHAOS_HISTORY_DIR to dump
# per-schedule operation histories (CI uploads them on failure).
chaos:
	$(GO) test -race -v -run 'TestChaos' ./internal/chaosnet

# Short exploratory fuzz pass over the session executor (seeded from
# internal/engine/testdata/fuzz).
fuzz:
	$(GO) test ./internal/engine -fuzz FuzzSessionExec -fuzztime 30s

# Fuzz the wire-protocol decoder (seeded with every message type,
# replication kinds included, plus malformed frames).
fuzz-wire:
	$(GO) test ./internal/wire -fuzz FuzzDecode -fuzztime 30s

# Reproducible throughput/latency harnesses: concurrent masked retrieval
# (BENCH_parallel.json, cmd/authdb/bench.go) and index-accelerated
# evaluation (BENCH_index.json, cmd/authdb/bench_index.go).
bench:
	$(GO) run ./cmd/authdb bench
	$(GO) run ./cmd/authdb bench-index

# The index/pushdown workloads alone.
bench-index:
	$(GO) run ./cmd/authdb bench-index

# End-to-end network-server throughput/latency at 1/16/64 concurrent
# client connections, reads plus durable writes with and without group
# commit (BENCH_serve.json, cmd/authdb/benchserve.go).
bench-serve:
	$(GO) run ./cmd/authdb bench-serve

# Replicated read scaling: masked-read qps against 0/2/4 replicas
# under a steady primary write load, with observed replication lag
# (BENCH_replica.json, cmd/authdb/benchreplica.go).
bench-replica:
	$(GO) run ./cmd/authdb bench-replica

# MVCC read-scaling matrix: the bench-serve read mix and the replicated
# topology rerun at GOMAXPROCS 1/4/16, each level stamped with its
# effective GOMAXPROCS (BENCH_mvcc.json, cmd/authdb/benchmvcc.go).
bench-mvcc:
	$(GO) run ./cmd/authdb bench-mvcc

# Materialized mask closure latency profile: cold (no cache, no
# closure) vs warm (resident closure) vs permit-churn recovery, at
# GOMAXPROCS 1/4 (BENCH_mask.json, cmd/authdb/benchmask.go).
bench-mask:
	$(GO) run ./cmd/authdb bench-mask

# Paged vs memory storage backend: insert, full and incremental
# checkpoint, point reads, and reopen at 10x/100x scale; the 100x paged
# cell runs with its resident set over the buffer-cache budget
# (BENCH_storage.json, cmd/authdb/benchstorage.go).
bench-storage:
	$(GO) run ./cmd/authdb bench-storage

# Go testing.B micro-benchmarks.
benchgo:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
