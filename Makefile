# Development targets; `make check` is the CI gate.

GO ?= go

.PHONY: check build vet test race fuzz bench bench-index bench-serve benchgo

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short exploratory fuzz pass over the session executor (seeded from
# internal/engine/testdata/fuzz).
fuzz:
	$(GO) test ./internal/engine -fuzz FuzzSessionExec -fuzztime 30s

# Reproducible throughput/latency harnesses: concurrent masked retrieval
# (BENCH_parallel.json, cmd/authdb/bench.go) and index-accelerated
# evaluation (BENCH_index.json, cmd/authdb/bench_index.go).
bench:
	$(GO) run ./cmd/authdb bench
	$(GO) run ./cmd/authdb bench-index

# The index/pushdown workloads alone.
bench-index:
	$(GO) run ./cmd/authdb bench-index

# End-to-end network-server throughput/latency at 1/16/64 concurrent
# client connections (BENCH_serve.json, cmd/authdb/benchserve.go).
bench-serve:
	$(GO) run ./cmd/authdb bench-serve

# Go testing.B micro-benchmarks.
benchgo:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
