package main

// The serve subcommand: run one database as a network server speaking
// the wire protocol of internal/wire (see DESIGN.md §11). Each
// connection authenticates as a principal and is served masked answers
// under per-connection resource limits; SIGINT/SIGTERM trigger a
// graceful drain.
//
//	authdb serve [-addr HOST:PORT] [-metrics-addr HOST:PORT] [-db DIR]
//	             [-paper] [-load FILE] [-max-conns N] [-idle-timeout D]
//	             [-grace D] [-admin-token T] [-max-intermediate-rows N]
//	             [-max-result-rows N] [-stmt-timeout D] [-parallelism N]
//	             [-group-commit] [-replica-of HOST:PORT] [-primary-token T]
//	             [-repl-name NAME]
//
// With -replica-of, this node follows the named primary (DESIGN.md §12):
// it bootstraps from the primary's snapshot or WAL tail, applies the
// live statement stream, and serves read-only masked answers; writes are
// refused with READ_ONLY naming the primary.

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"authdb"
	"authdb/internal/replica"
	"authdb/internal/server"
	"authdb/internal/workload"
)

func runServe(args []string) int {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	def := authdb.DefaultLimits()
	addr := fs.String("addr", "127.0.0.1:6544", "wire-protocol listen address")
	metricsAddr := fs.String("metrics-addr", "", "HTTP /metrics and /healthz listen address (empty: disabled)")
	dbdir := fs.String("db", "", "durable database directory to open or create (empty: in-memory)")
	paper := fs.Bool("paper", false, "preload the paper's Figure 1 example database")
	load := fs.String("load", "", "execute this statement script before serving")
	maxConns := fs.Int("max-conns", server.DefaultMaxConns, "connection cap (further dials wait in the accept backlog)")
	idle := fs.Duration("idle-timeout", server.DefaultIdleTimeout, "close connections idle this long")
	grace := fs.Duration("grace", server.DefaultGrace, "drain grace before in-flight statements are canceled")
	token := fs.String("admin-token", "", "require this token of administrator connections")
	maxInter := fs.Int64("max-intermediate-rows", def.MaxIntermediateRows, "per-statement intermediate-row budget (0: unlimited)")
	maxResult := fs.Int64("max-result-rows", def.MaxResultRows, "per-statement result-row cap (0: unlimited)")
	stmtTimeout := fs.Duration("stmt-timeout", def.Timeout, "per-statement wall-clock bound (0: unlimited)")
	parallelism := fs.Int("parallelism", def.Parallelism, "intra-statement evaluation workers per connection")
	groupCommit := fs.Bool("group-commit", false, "batch concurrent WAL appends into one fsync")
	replicaOf := fs.String("replica-of", "", "follow this primary and serve read-only (empty: standalone)")
	primaryToken := fs.String("primary-token", "", "replication token presented to the primary (its admin token)")
	replName := fs.String("repl-name", "", "label for this follower in the primary's metrics")
	fs.Parse(args)

	if *replicaOf != "" && (*paper || *load != "") {
		// Local mutations on a replica would shift its LSN sequence away
		// from the primary's and corrupt the stream position.
		fmt.Fprintln(os.Stderr, "-replica-of is incompatible with -paper and -load: replicas take every statement from the primary")
		return 1
	}

	var db *authdb.DB
	if *dbdir != "" {
		var err error
		db, err = authdb.OpenDir(*dbdir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "opening %s: %v\n", *dbdir, err)
			return 1
		}
		fmt.Printf("opened %s (durable)\n", *dbdir)
	} else {
		db = authdb.Open()
	}
	defer db.Close()
	if *groupCommit {
		db.SetGroupCommit(true)
		fmt.Println("group commit enabled")
	}

	var rep *replica.Replica
	if *replicaOf != "" {
		rep = replica.Start(db.Engine(), replica.Config{
			Primary: *replicaOf,
			Token:   *primaryToken,
			Name:    *replName,
			Logf: func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			},
		})
		fmt.Printf("following primary %s (read-only)\n", *replicaOf)
	}

	admin := db.Admin()
	if *paper {
		admin.MustExecScript(workload.PaperScript)
		fmt.Println("loaded the paper's example database (users: Brown, Klein)")
	}
	if *load != "" {
		if err := execFile(admin, *load); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("loaded %s\n", *load)
	}

	srv := server.New(db, server.Config{
		Addr:            *addr,
		MetricsAddr:     *metricsAddr,
		MaxConns:        *maxConns,
		IdleTimeout:     *idle,
		Grace:           *grace,
		AdminToken:      *token,
		ReadOnlyPrimary: *replicaOf,
		Limits: authdb.Limits{
			MaxIntermediateRows: *maxInter,
			MaxResultRows:       *maxResult,
			Timeout:             *stmtTimeout,
			Parallelism:         *parallelism,
		},
	})
	if err := srv.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("serving on %s (max %d connections)\n", srv.Addr(), *maxConns)
	if ma := srv.MetricsAddr(); ma != nil {
		fmt.Printf("metrics on http://%s/metrics\n", ma)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("%s: draining (grace %s)\n", got, *grace)
	ctx, cancel := context.WithTimeout(context.Background(), *grace+30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "shutdown:", err)
		return 1
	}
	if rep != nil {
		if err := rep.Stop(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "stopping replication:", err)
			return 1
		}
	}
	fmt.Println("drained")
	return 0
}
