package main

// The serve subcommand: run one database as a network server speaking
// the wire protocol of internal/wire (see DESIGN.md §11). Each
// connection authenticates as a principal and is served masked answers
// under per-connection resource limits; SIGINT/SIGTERM trigger a
// graceful drain.
//
//	authdb serve [-addr HOST:PORT] [-metrics-addr HOST:PORT] [-db DIR]
//	             [-storage memory|paged] [-cache-pages N]
//	             [-paper] [-load FILE] [-max-conns N] [-idle-timeout D]
//	             [-grace D] [-admin-token T] [-max-intermediate-rows N]
//	             [-max-result-rows N] [-stmt-timeout D] [-parallelism N]
//	             [-group-commit] [-replica-of HOST:PORT[,HOST:PORT...]]
//	             [-primary-token T] [-repl-name NAME] [-advertise HOST:PORT]
//	             [-peers HOST:PORT[,...]] [-ready-max-lag N]
//
// With -replica-of, this node follows the named primary (DESIGN.md §12):
// it bootstraps from the primary's snapshot or WAL tail, applies the
// live statement stream, and serves read-only masked answers; writes are
// refused with READ_ONLY naming the primary. Several comma-separated
// addresses may be given: the follower rotates through them (and through
// leader hints in fencing notices) until it finds the current primary,
// which is how a cluster survives failover (DESIGN.md §13). -advertise
// sets the address other nodes are told to reach this node at; -peers
// lists the other cluster members, used to rejoin after this node is
// fenced; -ready-max-lag bounds the replication lag (in LSNs) at which
// /readyz still reports ready.

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"authdb"
	"authdb/internal/replica"
	"authdb/internal/server"
	"authdb/internal/workload"
)

func runServe(args []string) int {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	def := authdb.DefaultLimits()
	addr := fs.String("addr", "127.0.0.1:6544", "wire-protocol listen address")
	metricsAddr := fs.String("metrics-addr", "", "HTTP /metrics and /healthz listen address (empty: disabled)")
	dbdir := fs.String("db", "", "durable database directory to open or create (empty: in-memory)")
	storage := fs.String("storage", "", "durable storage backend: memory (CSV snapshots) or paged (B+Trees, incremental checkpoints); empty: AUTHDB_STORAGE, then the directory's existing format")
	cachePages := fs.Int("cache-pages", 0, "paged backend's buffer-cache budget in 4KiB pages (0: 4096)")
	paper := fs.Bool("paper", false, "preload the paper's Figure 1 example database")
	load := fs.String("load", "", "execute this statement script before serving")
	maxConns := fs.Int("max-conns", server.DefaultMaxConns, "connection cap (further dials wait in the accept backlog)")
	idle := fs.Duration("idle-timeout", server.DefaultIdleTimeout, "close connections idle this long")
	grace := fs.Duration("grace", server.DefaultGrace, "drain grace before in-flight statements are canceled")
	token := fs.String("admin-token", "", "require this token of administrator connections")
	maxInter := fs.Int64("max-intermediate-rows", def.MaxIntermediateRows, "per-statement intermediate-row budget (0: unlimited)")
	maxResult := fs.Int64("max-result-rows", def.MaxResultRows, "per-statement result-row cap (0: unlimited)")
	stmtTimeout := fs.Duration("stmt-timeout", def.Timeout, "per-statement wall-clock bound (0: unlimited)")
	parallelism := fs.Int("parallelism", def.Parallelism, "intra-statement evaluation workers per connection")
	groupCommit := fs.Bool("group-commit", false, "batch concurrent WAL appends into one fsync")
	replicaOf := fs.String("replica-of", "", "follow this primary and serve read-only; comma-separate candidate addresses (empty: standalone)")
	primaryToken := fs.String("primary-token", "", "replication token presented to the primary (its admin token)")
	replName := fs.String("repl-name", "", "label for this follower in the primary's metrics")
	advertise := fs.String("advertise", "", "address other nodes should reach this node at (empty: the listen address)")
	peers := fs.String("peers", "", "comma-separated addresses of the other cluster members, for rejoining after a fence")
	readyMaxLag := fs.Int("ready-max-lag", 0, "replication lag in LSNs at which /readyz still reports ready (0: default)")
	fs.Parse(args)

	if *replicaOf != "" && (*paper || *load != "") {
		// Local mutations on a replica would shift its LSN sequence away
		// from the primary's and corrupt the stream position.
		fmt.Fprintln(os.Stderr, "-replica-of is incompatible with -paper and -load: replicas take every statement from the primary")
		return 1
	}

	var db *authdb.DB
	if *dbdir != "" {
		opt := authdb.DefaultOptions()
		opt.Storage = *storage
		opt.CachePages = *cachePages
		var err error
		db, err = authdb.OpenDir(*dbdir, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "opening %s: %v\n", *dbdir, err)
			return 1
		}
		fmt.Printf("opened %s (durable, %s storage)\n", *dbdir, db.StorageBackend())
	} else {
		db = authdb.Open()
	}
	defer db.Close()
	if *groupCommit {
		db.SetGroupCommit(true)
		fmt.Println("group commit enabled")
	}

	primaries := splitAddrs(*replicaOf)
	var rep *replica.Replica
	if len(primaries) > 0 {
		rep = replica.Start(db.Engine(), replica.Config{
			Primaries: primaries,
			Token:     *primaryToken,
			Name:      *replName,
			Logf: func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			},
		})
		fmt.Printf("following primary %s (read-only)\n", primaries[0])
	}

	admin := db.Admin()
	if *paper {
		admin.MustExecScript(workload.PaperScript)
		fmt.Println("loaded the paper's example database (users: Brown, Klein)")
	}
	if *load != "" {
		if err := execFile(admin, *load); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("loaded %s\n", *load)
	}

	roPrimary := ""
	if len(primaries) > 0 {
		roPrimary = primaries[0]
	}
	srv := server.New(db, server.Config{
		Addr:            *addr,
		MetricsAddr:     *metricsAddr,
		MaxConns:        *maxConns,
		IdleTimeout:     *idle,
		Grace:           *grace,
		AdminToken:      *token,
		ReadOnlyPrimary: roPrimary,
		AdvertiseAddr:   *advertise,
		Peers:           splitAddrs(*peers),
		ReadyMaxLagLSNs: *readyMaxLag,
		Limits: authdb.Limits{
			MaxIntermediateRows: *maxInter,
			MaxResultRows:       *maxResult,
			Timeout:             *stmtTimeout,
			Parallelism:         *parallelism,
		},
	})
	if err := srv.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if rep != nil {
		// The server owns the follower loop from here: it stops it on
		// promotion and on shutdown, and reports its lag on /readyz.
		srv.AttachReplica(rep)
	}
	fmt.Printf("serving on %s (max %d connections)\n", srv.Addr(), *maxConns)
	if ma := srv.MetricsAddr(); ma != nil {
		fmt.Printf("metrics on http://%s/metrics\n", ma)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("%s: draining (grace %s)\n", got, *grace)
	ctx, cancel := context.WithTimeout(context.Background(), *grace+30*time.Second)
	defer cancel()
	// srv.Shutdown also stops the attached follower loop (including one
	// the server started itself after a fence-and-rejoin).
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "shutdown:", err)
		return 1
	}
	fmt.Println("drained")
	return 0
}

// splitAddrs parses a comma-separated address list, dropping empty
// entries.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}
