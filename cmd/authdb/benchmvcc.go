package main

// The bench-mvcc subcommand: the GOMAXPROCS scaling matrix for the MVCC
// read path. For each requested GOMAXPROCS level it reruns the
// bench-serve read mix (lock-free retrieves against one in-process
// server) and the bench-replica topology (reads spread across a primary
// and followers under a steady write load), reusing those harnesses'
// level runners so the numbers are directly comparable with their
// reports. Every level records its own effective GOMAXPROCS; the
// top-level num_cpu field says how many cores the host actually had —
// on a single-core machine the curve is flat by construction, and the
// CI artifact from a multi-core runner is the meaningful one.
//
//	authdb bench-mvcc [-dur 2s] [-o BENCH_mvcc.json] [-procs 1,4,16] [-conns 16] [-replicas 2] [-write-rate 25]

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"authdb"
	"authdb/internal/server"
)

type mvccLevel struct {
	GoMaxProcs int `json:"gomaxprocs"`
	// Serve is the bench-serve read mix at this GOMAXPROCS; ServeQPS
	// duplicates its QPS at the top for easy plotting.
	Serve    serveLevel   `json:"serve"`
	ServeQPS float64      `json:"serve_read_qps"`
	Replica  replicaLevel `json:"replica"`
}

type mvccReport struct {
	Generated string `json:"generated"`
	// NumCPU bounds every level: levels above it cannot scale further.
	NumCPU     int            `json:"num_cpu"`
	DurationMS int64          `json:"duration_ms_per_level"`
	Conns      int            `json:"conns"`
	Replicas   int            `json:"replicas"`
	WriteRate  int            `json:"write_rate_per_sec"`
	Rows       map[string]int `json:"rows"`
	Queries    []string       `json:"queries"`
	Levels     []mvccLevel    `json:"levels"`
}

func runBenchMVCC(args []string) int {
	fs := flag.NewFlagSet("bench-mvcc", flag.ExitOnError)
	dur := fs.Duration("dur", 2*time.Second, "measurement duration per matrix cell")
	out := fs.String("o", "BENCH_mvcc.json", "output JSON file")
	procsList := fs.String("procs", "1,4,16", "comma-separated GOMAXPROCS levels")
	conns := fs.Int("conns", 16, "read connections per cell")
	replicas := fs.Int("replicas", 2, "replica count for the replication cells")
	writeRate := fs.Int("write-rate", 25, "steady primary write load for the replication cells")
	fs.Parse(args)

	var procs []int
	for _, field := range strings.Split(*procsList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "bad GOMAXPROCS level %q\n", field)
			return 1
		}
		procs = append(procs, n)
	}

	report := mvccReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		NumCPU:     runtime.NumCPU(),
		DurationMS: dur.Milliseconds(),
		Conns:      *conns,
		Replicas:   *replicas,
		WriteRate:  *writeRate,
		Rows: map[string]int{
			"EMPLOYEE":   benchEmployees,
			"PROJECT":    benchProjects,
			"ASSIGNMENT": benchAssignments,
		},
	}
	for _, op := range benchOps {
		report.Queries = append(report.Queries, op.user+": "+op.query)
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		serve, err := runMVCCServeCell(*conns, *dur)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		repl, err := runReplicaLevel(*replicas, *conns, *writeRate, *dur)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("gomaxprocs=%-2d serve_qps=%9.1f p50=%6.0fµs p99=%6.0fµs | replica_read_qps=%9.1f write_qps=%7.1f\n",
			p, serve.QPS, serve.P50Micros, serve.P99Micros, repl.ReadQPS, repl.WriteQPS)
		report.Levels = append(report.Levels, mvccLevel{
			GoMaxProcs: p,
			Serve:      serve,
			ServeQPS:   serve.QPS,
			Replica:    repl,
		})
	}
	runtime.GOMAXPROCS(prev)

	blob, _ := json.MarshalIndent(report, "", "  ")
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Println("wrote", *out)
	return 0
}

// runMVCCServeCell boots a fresh in-memory server over the scaled
// fixture (so each matrix cell starts from identical state and the
// current GOMAXPROCS governs the whole process) and runs the
// bench-serve read mix against it.
func runMVCCServeCell(conns int, dur time.Duration) (serveLevel, error) {
	db := authdb.Open()
	if _, err := db.Admin().ExecScript(benchFixtureScript()); err != nil {
		return serveLevel{}, fmt.Errorf("fixture: %w", err)
	}
	srv := server.New(db, server.Config{MaxConns: 1024, Limits: authdb.DefaultLimits()})
	if err := srv.Start(); err != nil {
		return serveLevel{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	return runServeLevel(srv.Addr().String(), conns, dur)
}
