package main

// The bench-index subcommand: measures the index-accelerated evaluator
// against the plain optimized one on the two workloads it targets, at
// one session with the mask cache on:
//
//   - range-heavy: a fully-granted user issuing ~1%-selective range
//     retrievals over a 20k-row relation — the ordered secondary index
//     answers each with two binary searches instead of a full scan;
//   - selective-mask: a user whose only view admits ~2% of the rows,
//     issuing an unrestricted retrieval — mask-predicate pushdown
//     injects the view's bound into the plan, where the same index
//     prunes the withheld 98% before materialization.
//
// The baseline engine runs with IndexedExec and MaskPushdown off (the
// plain pushdown + hash-join evaluator); the accelerated engine runs
// with both on. Decisions are identical by the differential suites;
// only the throughput should differ.
//
//	authdb bench-index [-dur 1s] [-o BENCH_index.json]

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"authdb/internal/core"
	"authdb/internal/engine"
	"authdb/internal/guard"
)

const (
	idxMetricRows = 40000
	// idxRangeWidth is the width of each range retrieval over V's
	// [0, idxMetricRows) domain: ~1% selectivity.
	idxRangeWidth = idxMetricRows / 100
	// idxHotCutoff bounds the selective view HOTM: V >= cutoff admits
	// ~2% of the rows.
	idxHotCutoff = idxMetricRows - 2*idxRangeWidth
	// idxRangeQueries is how many distinct range retrievals rotate, so
	// the mask cache serves hits while the actual side still varies.
	idxRangeQueries = 16
)

type indexWorkload struct {
	Queries  []string   `json:"queries"`
	Baseline benchLevel `json:"baseline"`
	Indexed  benchLevel `json:"indexed"`
	Speedup  float64    `json:"speedup"`
}

type indexReport struct {
	Generated     string        `json:"generated"`
	GoMaxProcs    int           `json:"gomaxprocs"`
	DurationMS    int64         `json:"duration_ms_per_config"`
	MetricRows    int           `json:"metric_rows"`
	RangeHeavy    indexWorkload `json:"range_heavy"`
	SelectiveMask indexWorkload `json:"selective_mask"`
}

// indexBenchEngine loads METRIC(ID, BUCKET, V) with a deterministic
// permutation of V values, a full grant for "ranger", and the ~2% view
// for "sel", under the given execution options.
func indexBenchEngine(opt core.Options) (*engine.Engine, error) {
	e := engine.New(opt)
	admin := e.NewSession("admin", true)
	var b strings.Builder
	b.WriteString("relation METRIC (ID, BUCKET, V) key (ID);\n")
	for i := 0; i < idxMetricRows; i++ {
		fmt.Fprintf(&b, "insert into METRIC values (m%05d, b%d, %d);\n",
			i, i%50, (i*7919)%idxMetricRows)
	}
	fmt.Fprintf(&b, `
		view ALLM (METRIC.ID, METRIC.BUCKET, METRIC.V);
		permit ALLM to ranger;
		view HOTM (METRIC.ID, METRIC.BUCKET, METRIC.V) where METRIC.V >= %d;
		permit HOTM to sel;
	`, idxHotCutoff)
	if _, err := admin.ExecScript(b.String()); err != nil {
		return nil, err
	}
	return e, nil
}

// rangeQueries returns the rotating ~1%-selective range retrievals.
func rangeQueries() []string {
	out := make([]string, idxRangeQueries)
	for i := range out {
		lo := (i * 7331) % (idxMetricRows - idxRangeWidth)
		out[i] = fmt.Sprintf(
			"retrieve (METRIC.ID, METRIC.V) where METRIC.V >= %d and METRIC.V < %d",
			lo, lo+idxRangeWidth)
	}
	return out
}

// runIndexWorkload drives one session through the query rotation for the
// duration and reports throughput, latency percentiles, and allocs/op.
func runIndexWorkload(e *engine.Engine, user string, queries []string, dur time.Duration) (benchLevel, error) {
	s := e.NewSession(user, false)
	l := guard.DefaultLimits()
	l.Parallelism = 1
	s.SetLimits(l)
	for _, q := range queries { // warm: mask cache and lazy indexes
		if _, err := s.Exec(q); err != nil {
			return benchLevel{}, err
		}
	}
	var (
		ops  int64
		lats []time.Duration
		m0   runtime.MemStats
	)
	runtime.ReadMemStats(&m0)
	deadline := time.Now().Add(dur)
	for i := 0; time.Now().Before(deadline); i++ {
		start := time.Now()
		if _, err := s.Exec(queries[i%len(queries)]); err != nil {
			return benchLevel{}, err
		}
		lats = append(lats, time.Since(start))
		ops++
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return benchLevel{
		Sessions:    1,
		MaskCache:   true,
		Ops:         ops,
		QPS:         float64(ops) / dur.Seconds(),
		P50Micros:   percentile(lats, 0.50),
		P99Micros:   percentile(lats, 0.99),
		AllocsPerOp: allocsSince(&m0, ops),
	}, nil
}

func measureIndexWorkload(base, accel *engine.Engine, user string, queries []string, dur time.Duration) (indexWorkload, error) {
	w := indexWorkload{Queries: queries}
	var err error
	if w.Baseline, err = runIndexWorkload(base, user, queries, dur); err != nil {
		return w, err
	}
	if w.Indexed, err = runIndexWorkload(accel, user, queries, dur); err != nil {
		return w, err
	}
	w.Baseline.SpeedupVsSerial = 1
	if w.Baseline.QPS > 0 {
		w.Speedup = w.Indexed.QPS / w.Baseline.QPS
		w.Indexed.SpeedupVsSerial = w.Speedup
	}
	return w, nil
}

func runBenchIndex(args []string) int {
	fs := flag.NewFlagSet("bench-index", flag.ExitOnError)
	dur := fs.Duration("dur", time.Second, "measurement duration per configuration")
	out := fs.String("o", "BENCH_index.json", "output JSON path")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	baseOpt := core.DefaultOptions()
	baseOpt.IndexedExec = false
	baseOpt.MaskPushdown = false
	accelOpt := core.DefaultOptions()
	accelOpt.MaskPushdown = true
	// Both configurations compare evaluation strategies on every
	// retrieve; the closure would serve repeats without evaluating at
	// all and erase the difference under comparison.
	baseOpt.MaskClosure = false
	accelOpt.MaskClosure = false

	base, err := indexBenchEngine(baseOpt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-index setup: %v\n", err)
		return 1
	}
	accel, err := indexBenchEngine(accelOpt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-index setup: %v\n", err)
		return 1
	}

	rep := &indexReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		DurationMS: dur.Milliseconds(),
		MetricRows: idxMetricRows,
	}

	rep.RangeHeavy, err = measureIndexWorkload(base, accel, "ranger", rangeQueries(), *dur)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-index range-heavy: %v\n", err)
		return 1
	}
	fmt.Printf("range-heavy:    baseline qps=%-8.1f indexed qps=%-8.1f speedup=%.2fx\n",
		rep.RangeHeavy.Baseline.QPS, rep.RangeHeavy.Indexed.QPS, rep.RangeHeavy.Speedup)

	selQueries := []string{"retrieve (METRIC.ID, METRIC.V)"}
	rep.SelectiveMask, err = measureIndexWorkload(base, accel, "sel", selQueries, *dur)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-index selective-mask: %v\n", err)
		return 1
	}
	fmt.Printf("selective-mask: baseline qps=%-8.1f indexed qps=%-8.1f speedup=%.2fx\n",
		rep.SelectiveMask.Baseline.QPS, rep.SelectiveMask.Indexed.QPS, rep.SelectiveMask.Speedup)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-index: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench-index: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %s\n", *out)
	return 0
}
