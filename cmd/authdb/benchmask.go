package main

// The bench-mask subcommand: the latency profile of the materialized
// mask closure. Three configurations over the shared bench fixture, at
// each requested GOMAXPROCS level:
//
//   - cold: mask cache and closure both disabled — every retrieve
//     rederives its mask and re-evaluates both pipelines, the regime
//     the paper's §4 meta-algebra describes;
//   - warm: the default configuration (closure on), after a warmup
//     pass — steady state, where a retrieve is a lookup against the
//     resident (user, query) artifact and its revision stamps;
//   - churn: the closure on while permits churn — each round revokes
//     and re-grants a view, forcing the definition side of the entry
//     to invalidate; the round's first retrieve pays the recompute and
//     the rest measure how the steady state recovers.
//
// The report's warm_speedup_p50 (cold p50 / warm p50) is the headline:
// the closure's claim is an order-of-magnitude drop in read latency
// once resident.
//
//	authdb bench-mask [-dur 2s] [-o BENCH_mask.json] [-procs 1,4] [-churn-reads 20]

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"authdb/internal/engine"
)

type maskCell struct {
	Ops       int64   `json:"ops"`
	QPS       float64 `json:"qps"`
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
}

type maskChurnCell struct {
	// Rounds is how many revoke+permit cycles ran; each is followed by
	// churnReads retrieves. First* aggregates only the first retrieve
	// after each cycle (the recompute); Steady* the remainder (the
	// recovered closure hits).
	Rounds          int     `json:"rounds"`
	FirstP50Micros  float64 `json:"first_read_p50_us"`
	FirstP99Micros  float64 `json:"first_read_p99_us"`
	SteadyP50Micros float64 `json:"steady_read_p50_us"`
	SteadyP99Micros float64 `json:"steady_read_p99_us"`
}

type maskLevel struct {
	GoMaxProcs     int           `json:"gomaxprocs"`
	Cold           maskCell      `json:"cold"`
	Warm           maskCell      `json:"warm"`
	WarmSpeedupP50 float64       `json:"warm_speedup_p50"`
	WarmSpeedupQPS float64       `json:"warm_speedup_qps"`
	Churn          maskChurnCell `json:"churn"`
	Closure        struct {
		Hits          uint64 `json:"hits"`
		Misses        uint64 `json:"misses"`
		Refreshes     uint64 `json:"refreshes"`
		Invalidations uint64 `json:"invalidations"`
		ResidentRows  int    `json:"resident_rows"`
	} `json:"closure"`
}

type maskReport struct {
	Generated  string         `json:"generated"`
	NumCPU     int            `json:"num_cpu"`
	DurationMS int64          `json:"duration_ms_per_cell"`
	Rows       map[string]int `json:"rows"`
	Queries    []string       `json:"queries"`
	Levels     []maskLevel    `json:"levels"`
}

func runBenchMask(args []string) int {
	fs := flag.NewFlagSet("bench-mask", flag.ExitOnError)
	dur := fs.Duration("dur", 2*time.Second, "measurement duration per cell")
	out := fs.String("o", "BENCH_mask.json", "output JSON file")
	procsList := fs.String("procs", "1,4", "comma-separated GOMAXPROCS levels")
	churnReads := fs.Int("churn-reads", 20, "retrieves after each permit churn")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var procs []int
	for _, field := range strings.Split(*procsList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "bad GOMAXPROCS level %q\n", field)
			return 1
		}
		procs = append(procs, n)
	}

	report := maskReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		NumCPU:     runtime.NumCPU(),
		DurationMS: dur.Milliseconds(),
		Rows: map[string]int{
			"EMPLOYEE":   benchEmployees,
			"PROJECT":    benchProjects,
			"ASSIGNMENT": benchAssignments,
		},
	}
	for _, op := range benchOps {
		report.Queries = append(report.Queries,
			op.user+": "+strings.Join(strings.Fields(op.query), " "))
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		lv, err := runMaskLevel(p, *dur, *churnReads)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("gomaxprocs=%-2d cold p50=%7.0fµs warm p50=%6.1fµs (%.1fx) | churn first p50=%7.0fµs steady p50=%6.1fµs\n",
			p, lv.Cold.P50Micros, lv.Warm.P50Micros, lv.WarmSpeedupP50,
			lv.Churn.FirstP50Micros, lv.Churn.SteadyP50Micros)
		report.Levels = append(report.Levels, lv)
	}
	runtime.GOMAXPROCS(prev)

	blob, _ := json.MarshalIndent(report, "", "  ")
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Println("wrote", *out)
	return 0
}

func runMaskLevel(p int, dur time.Duration, churnReads int) (maskLevel, error) {
	lv := maskLevel{GoMaxProcs: p}

	// Cold: no mask cache, no closure — every retrieve from first
	// principles. A fresh engine per cell keeps the states identical.
	cold, err := benchEngine()
	if err != nil {
		return lv, fmt.Errorf("bench-mask setup: %w", err)
	}
	cold.SetMaskCacheEnabled(false)
	cold.SetMaskClosureEnabled(false)
	if _, _, err := runLevel(cold, 1, dur/4); err != nil { // warm indexes only
		return lv, fmt.Errorf("bench-mask cold warmup: %w", err)
	}
	if lv.Cold, err = measureMaskCell(cold, dur); err != nil {
		return lv, fmt.Errorf("bench-mask cold: %w", err)
	}

	// Warm: the default configuration after a warmup pass populates the
	// per-(user, query) artifacts.
	warm, err := benchEngine()
	if err != nil {
		return lv, fmt.Errorf("bench-mask setup: %w", err)
	}
	if _, _, err := runLevel(warm, 1, dur/4); err != nil {
		return lv, fmt.Errorf("bench-mask warm warmup: %w", err)
	}
	if lv.Warm, err = measureMaskCell(warm, dur); err != nil {
		return lv, fmt.Errorf("bench-mask warm: %w", err)
	}
	if lv.Warm.P50Micros > 0 {
		lv.WarmSpeedupP50 = lv.Cold.P50Micros / lv.Warm.P50Micros
	}
	if lv.Cold.QPS > 0 {
		lv.WarmSpeedupQPS = lv.Warm.QPS / lv.Cold.QPS
	}

	// Churn: revoke+permit cycles against the warm engine. BV0 is one of
	// the fixture's grant-heavy extra views, so the cycle touches the
	// user's permission generation without changing what any query
	// delivers.
	if lv.Churn, err = runMaskChurn(warm, dur, churnReads); err != nil {
		return lv, fmt.Errorf("bench-mask churn: %w", err)
	}

	st := warm.MaskClosureStats()
	lv.Closure.Hits = st.Hits
	lv.Closure.Misses = st.Misses
	lv.Closure.Refreshes = st.Refreshes
	lv.Closure.Invalidations = st.Invalidations()
	lv.Closure.ResidentRows = st.ResidentRows
	return lv, nil
}

// measureMaskCell runs the serial read mix for the duration and folds
// the latencies into a cell.
func measureMaskCell(e *engine.Engine, dur time.Duration) (maskCell, error) {
	ops, lats, err := runLevel(e, 1, dur)
	if err != nil {
		return maskCell{}, err
	}
	return maskCell{
		Ops:       ops,
		QPS:       float64(ops) / dur.Seconds(),
		P50Micros: percentile(lats, 0.50),
		P99Micros: percentile(lats, 0.99),
	}, nil
}

func runMaskChurn(e *engine.Engine, dur time.Duration, churnReads int) (maskChurnCell, error) {
	admin := e.NewSession("admin", true)
	sessions := sessionSet(e, 1)
	var first, steady []time.Duration
	rounds := 0
	deadline := time.Now().Add(dur)
	for time.Now().Before(deadline) {
		op := benchOps[rounds%len(benchOps)]
		if _, err := admin.Exec(fmt.Sprintf(`revoke BV0 from %s`, op.user)); err != nil {
			return maskChurnCell{}, err
		}
		if _, err := admin.Exec(fmt.Sprintf(`permit BV0 to %s`, op.user)); err != nil {
			return maskChurnCell{}, err
		}
		for i := 0; i < churnReads; i++ {
			start := time.Now()
			if _, err := sessions[op.user].Exec(op.query); err != nil {
				return maskChurnCell{}, err
			}
			if i == 0 {
				first = append(first, time.Since(start))
			} else {
				steady = append(steady, time.Since(start))
			}
		}
		rounds++
	}
	sort.Slice(first, func(i, j int) bool { return first[i] < first[j] })
	sort.Slice(steady, func(i, j int) bool { return steady[i] < steady[j] })
	return maskChurnCell{
		Rounds:          rounds,
		FirstP50Micros:  percentile(first, 0.50),
		FirstP99Micros:  percentile(first, 0.99),
		SteadyP50Micros: percentile(steady, 0.50),
		SteadyP99Micros: percentile(steady, 0.99),
	}, nil
}
