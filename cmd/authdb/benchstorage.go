package main

// The bench-storage subcommand: the paged backend against the memory
// backend on one write/checkpoint/read/reopen cycle, at two scales. The
// paged cell runs with a deliberately small buffer cache so the larger
// scale's resident set exceeds the budget — the regime the backend
// exists for: the engine keeps answering from its in-memory MVCC head
// while the durable layer pages, and checkpoints flush only dirty pages
// instead of rewriting every generation from scratch.
//
//	authdb bench-storage [-base 100] [-scales 10,100] [-cache-pages 256]
//	                     [-reads 200] [-o BENCH_storage.json]

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"authdb/internal/core"
	"authdb/internal/engine"
)

type storageCell struct {
	Backend string `json:"backend"`
	Rows    int    `json:"rows"`

	InsertMS         float64 `json:"insert_ms"`
	InsertsPerSec    float64 `json:"inserts_per_sec"`
	CheckpointMS     float64 `json:"checkpoint_ms"`
	IncrCheckpointMS float64 `json:"incremental_checkpoint_ms"`
	ReadMS           float64 `json:"read_ms"`
	ReadsPerSec      float64 `json:"reads_per_sec"`
	ReopenMS         float64 `json:"reopen_ms"`

	// Paged-only pager counters (zero on the memory backend).
	CacheBudgetPages      int    `json:"cache_budget_pages,omitempty"`
	PagesTotal            uint32 `json:"pages_total,omitempty"`
	ResidentExceedsBudget bool   `json:"resident_exceeds_budget,omitempty"`
	CacheHits             uint64 `json:"cache_hits,omitempty"`
	CacheMisses           uint64 `json:"cache_misses,omitempty"`
	CacheEvictions        uint64 `json:"cache_evictions,omitempty"`
	CheckpointDirtyPages  int    `json:"checkpoint_dirty_pages,omitempty"`
}

type storageScale struct {
	Scale int           `json:"scale"`
	Cells []storageCell `json:"cells"`
}

type storageReport struct {
	Generated  string         `json:"generated"`
	NumCPU     int            `json:"num_cpu"`
	BaseRows   int            `json:"base_rows"`
	CachePages int            `json:"cache_pages"`
	Scales     []storageScale `json:"scales"`
}

func runBenchStorage(args []string) int {
	fs := flag.NewFlagSet("bench-storage", flag.ExitOnError)
	base := fs.Int("base", 100, "rows at scale 1")
	scalesList := fs.String("scales", "10,100", "comma-separated scale multipliers")
	cachePages := fs.Int("cache-pages", 256, "paged backend's buffer-cache budget (4KiB pages)")
	reads := fs.Int("reads", 200, "point retrieves in the read phase")
	out := fs.String("o", "BENCH_storage.json", "output JSON file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var scales []int
	for _, field := range strings.Split(*scalesList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "bad scale %q\n", field)
			return 1
		}
		scales = append(scales, n)
	}

	report := storageReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		NumCPU:     runtime.NumCPU(),
		BaseRows:   *base,
		CachePages: *cachePages,
	}
	for _, scale := range scales {
		sc := storageScale{Scale: scale}
		for _, backend := range []string{engine.StorageMemory, engine.StoragePaged} {
			cell, err := runStorageCell(backend, scale**base, *cachePages, *reads)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench-storage %s x%d: %v\n", backend, scale, err)
				return 1
			}
			fmt.Printf("scale=%-4d %-6s insert %8.0f/s  checkpoint %7.1fms (incremental %6.1fms)  reopen %7.1fms",
				scale, backend, cell.InsertsPerSec, cell.CheckpointMS, cell.IncrCheckpointMS, cell.ReopenMS)
			if backend == engine.StoragePaged {
				fmt.Printf("  pages=%d budget=%d evictions=%d", cell.PagesTotal, cell.CacheBudgetPages, cell.CacheEvictions)
			}
			fmt.Println()
			sc.Cells = append(sc.Cells, cell)
		}
		report.Scales = append(report.Scales, sc)
	}

	blob, _ := json.MarshalIndent(report, "", "  ")
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Println("wrote", *out)
	return 0
}

// runStorageCell measures one backend at one scale: bulk insert,
// checkpoint, an incremental checkpoint after a small delta, a point-
// read mix, and a close/reopen cycle.
func runStorageCell(backend string, rows, cachePages, reads int) (storageCell, error) {
	cell := storageCell{Backend: backend, Rows: rows}
	cfg := engine.StorageConfig{Backend: backend}
	if backend == engine.StoragePaged {
		cfg.CachePages = cachePages
		cell.CacheBudgetPages = cachePages
	}
	dir, err := os.MkdirTemp("", "authdb-bench-storage-")
	if err != nil {
		return cell, err
	}
	defer os.RemoveAll(dir)

	e, err := engine.OpenDurableStorage(dir, core.DefaultOptions(), cfg)
	if err != nil {
		return cell, err
	}
	defer e.Close()
	admin := e.NewSession("admin", true)
	if _, err := admin.Exec(`relation BIG (ID, DEPT, PAYLOAD) key (ID)`); err != nil {
		return cell, err
	}

	pad := strings.Repeat("x", 120)
	start := time.Now()
	for i := 0; i < rows; i++ {
		stmt := fmt.Sprintf(`insert into BIG values (k%07d, d%02d, "%s%07d")`, i, i%17, pad, i)
		if _, err := admin.Exec(stmt); err != nil {
			return cell, err
		}
	}
	d := time.Since(start)
	cell.InsertMS = float64(d.Microseconds()) / 1e3
	cell.InsertsPerSec = float64(rows) / d.Seconds()

	start = time.Now()
	if err := e.Checkpoint(); err != nil {
		return cell, err
	}
	cell.CheckpointMS = float64(time.Since(start).Microseconds()) / 1e3

	// A small delta, then another checkpoint: the paged backend flushes
	// only the pages the delta dirtied; the memory backend rewrites the
	// whole generation either way.
	for i := 0; i < 10; i++ {
		stmt := fmt.Sprintf(`insert into BIG values (x%07d, d%02d, "%s")`, i, i%17, pad)
		if _, err := admin.Exec(stmt); err != nil {
			return cell, err
		}
	}
	start = time.Now()
	if err := e.Checkpoint(); err != nil {
		return cell, err
	}
	cell.IncrCheckpointMS = float64(time.Since(start).Microseconds()) / 1e3
	cell.CheckpointDirtyPages = int(e.PageStats().DirtyFlush)

	start = time.Now()
	for i := 0; i < reads; i++ {
		q := fmt.Sprintf(`retrieve (BIG.DEPT, BIG.PAYLOAD) where BIG.ID = k%07d`, (i*37)%rows)
		if _, err := admin.Exec(q); err != nil {
			return cell, err
		}
	}
	d = time.Since(start)
	cell.ReadMS = float64(d.Microseconds()) / 1e3
	cell.ReadsPerSec = float64(reads) / d.Seconds()

	st := e.PageStats()
	cell.PagesTotal = st.Pages
	cell.CacheHits = st.Hits
	cell.CacheMisses = st.Misses
	cell.CacheEvictions = st.Evictions
	if backend == engine.StoragePaged {
		cell.ResidentExceedsBudget = st.Pages > uint32(cachePages)
	}
	if err := e.Close(); err != nil {
		return cell, err
	}

	start = time.Now()
	back, err := engine.OpenDurableStorage(dir, core.DefaultOptions(), cfg)
	if err != nil {
		return cell, err
	}
	cell.ReopenMS = float64(time.Since(start).Microseconds()) / 1e3
	return cell, back.Close()
}
