package main

// The promote subcommand: flip a read-only replica into the serving
// primary (DESIGN.md §13). It connects as an administrator and issues
// the \promote statement; the replica drains its applier, bumps the
// cluster epoch, and starts accepting writes. Any ex-primary that later
// reconnects sees the higher epoch, quarantines its divergent suffix,
// and rejoins as a follower.
//
//	authdb promote -addr HOST:PORT -admin-token T [-timeout D]

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"authdb/pkg/client"
)

func runPromote(args []string) int {
	fs := flag.NewFlagSet("promote", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:6544", "wire-protocol address of the replica to promote")
	token := fs.String("admin-token", "", "the node's administrator token")
	timeout := fs.Duration("timeout", 30*time.Second, "bound on the whole promotion (drain included)")
	fs.Parse(args)

	c, err := client.Dial(*addr, client.WithAdmin("root", *token),
		client.WithDialTimeout(*timeout))
	if err != nil {
		fmt.Fprintf(os.Stderr, "connecting to %s: %v\n", *addr, err)
		return 1
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	res, err := c.Exec(ctx, `\promote`)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promoting %s: %v\n", *addr, err)
		return 1
	}
	fmt.Print(res.Rendered)
	return 0
}
