package main

// The bench-replica subcommand: read scaling and replication lag of the
// WAL-shipping topology (DESIGN.md §12). For each replica count it
// boots a durable primary with the scaled paper fixture, attaches that
// many replicas (each a full engine in its own directory, following
// over loopback TCP), waits for them to catch up, then drives the
// worked-example read mix round-robin across every node while one admin
// connection writes continuously to the primary. Reported per level:
// aggregate read throughput (the scaling curve), the primary/replica
// split, write throughput, and the replicas' steady-state lag sampled
// through the same Lag() the /metrics gauges export.
//
//	authdb bench-replica [-dur 2s] [-o BENCH_replica.json] [-replicas 0,2,4] [-conns 12] [-write-rate 25]
//
// All nodes share one machine, so the aggregate cannot exceed the
// host's CPU; the level comparison shows the cost of the topology
// (extra engines, WAL application, fsync traffic) and the lag under a
// fixed write load. On separate hosts each replica adds its own cores
// and the aggregate curve becomes the scaling curve.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"authdb"
	"authdb/internal/replica"
	"authdb/internal/server"
	"authdb/pkg/client"
)

const benchReplToken = "bench-replica-token"

type replicaLevel struct {
	Replicas int `json:"replicas"`
	// GoMaxProcs is the effective GOMAXPROCS while this level ran (the
	// bench-mvcc scaling matrix varies it per level).
	GoMaxProcs int   `json:"gomaxprocs"`
	ReadConns  int   `json:"read_conns"`
	ReadOps    int64 `json:"read_ops"`
	Errors     int64 `json:"errors"`
	// ReadQPS is the aggregate across all nodes; PrimaryQPS and
	// ReplicaQPS split it by where the connection landed.
	ReadQPS    float64 `json:"read_qps"`
	PrimaryQPS float64 `json:"primary_read_qps"`
	ReplicaQPS float64 `json:"replica_read_qps"`
	P50Micros  float64 `json:"p50_us"`
	P95Micros  float64 `json:"p95_us"`
	P99Micros  float64 `json:"p99_us"`
	// The concurrent write load on the primary and the lag it induced.
	WriteOps      int64   `json:"write_ops"`
	WriteQPS      float64 `json:"write_qps"`
	MaxLagLSNs    uint64  `json:"max_lag_lsns"`
	MeanLagLSNs   float64 `json:"mean_lag_lsns"`
	MaxLagSeconds float64 `json:"max_lag_seconds"`
}

type replicaReport struct {
	Generated  string         `json:"generated"`
	GoMaxProcs int            `json:"gomaxprocs"`
	DurationMS int64          `json:"duration_ms_per_level"`
	WriteRate  int            `json:"write_rate_per_sec"`
	Rows       map[string]int `json:"rows"`
	Queries    []string       `json:"queries"`
	Levels     []replicaLevel `json:"levels"`
}

// replNode is one booted node: the primary (rep == nil) or a follower.
type replNode struct {
	dir string
	db  *authdb.DB
	rep *replica.Replica
	srv *server.Server
}

func (n *replNode) close() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if n.srv != nil {
		n.srv.Shutdown(ctx)
	}
	if n.rep != nil {
		n.rep.Stop(ctx)
	}
	if n.db != nil {
		n.db.Close()
	}
	if n.dir != "" {
		os.RemoveAll(n.dir)
	}
}

// bootNode opens a durable database in a fresh directory and serves it;
// with primary != "" it follows that address read-only.
func bootNode(primary string) (*replNode, error) {
	dir, err := os.MkdirTemp("", "authdb-bench-replica-*")
	if err != nil {
		return nil, err
	}
	n := &replNode{dir: dir}
	if n.db, err = authdb.OpenDir(dir); err != nil {
		n.close()
		return nil, err
	}
	n.db.SetGroupCommit(true)
	if primary != "" {
		n.rep = replica.Start(n.db.Engine(), replica.Config{
			Primary: primary, Token: benchReplToken,
		})
	}
	n.srv = server.New(n.db, server.Config{
		MaxConns:        1024,
		AdminToken:      benchReplToken,
		ReadOnlyPrimary: primary,
		Limits:          authdb.DefaultLimits(),
	})
	if err := n.srv.Start(); err != nil {
		n.close()
		return nil, err
	}
	return n, nil
}

func runBenchReplica(args []string) int {
	fs := flag.NewFlagSet("bench-replica", flag.ExitOnError)
	dur := fs.Duration("dur", 2*time.Second, "measurement duration per replica level")
	out := fs.String("o", "BENCH_replica.json", "output JSON file")
	levels := fs.String("replicas", "0,2,4", "comma-separated replica counts")
	conns := fs.Int("conns", 12, "total read connections, spread across all nodes")
	writeRate := fs.Int("write-rate", 25, "steady primary write load, statements per second")
	fs.Parse(args)

	report := replicaReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		DurationMS: dur.Milliseconds(),
		WriteRate:  *writeRate,
		Rows: map[string]int{
			"EMPLOYEE":   benchEmployees,
			"PROJECT":    benchProjects,
			"ASSIGNMENT": benchAssignments,
		},
	}
	for _, op := range benchOps {
		report.Queries = append(report.Queries, op.user+": "+op.query)
	}

	for _, field := range strings.Split(*levels, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || n < 0 {
			fmt.Fprintf(os.Stderr, "bad replica count %q\n", field)
			return 1
		}
		lvl, err := runReplicaLevel(n, *conns, *writeRate, *dur)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("replicas=%d read_qps=%9.1f (primary %.1f + replicas %.1f) p50=%6.0fµs p99=%6.0fµs write_qps=%7.1f lag(max=%d lsns, %.3fs)\n",
			lvl.Replicas, lvl.ReadQPS, lvl.PrimaryQPS, lvl.ReplicaQPS,
			lvl.P50Micros, lvl.P99Micros, lvl.WriteQPS, lvl.MaxLagLSNs, lvl.MaxLagSeconds)
		report.Levels = append(report.Levels, lvl)
	}

	blob, _ := json.MarshalIndent(report, "", "  ")
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Println("wrote", *out)
	return 0
}

// runReplicaLevel boots one primary + nrep replicas, waits for
// catch-up, and measures the read mix across every node under a
// steady primary write load. The write load is rate-limited, not
// saturating: every level then faces the identical stream of
// exclusive-lock acquisitions (on the primary directly, on replicas
// through the applier), so the read numbers compare scaling rather
// than write-convoy interference, and the lag numbers reflect a
// realistic trickle of small batches.
func runReplicaLevel(nrep, conns, writeRate int, dur time.Duration) (replicaLevel, error) {
	primary, err := bootNode("")
	if err != nil {
		return replicaLevel{}, err
	}
	defer primary.close()
	fixture := benchFixtureScript() + "relation FEED (K, V) key (K);\n"
	if _, err := primary.db.Admin().ExecScript(fixture); err != nil {
		return replicaLevel{}, fmt.Errorf("fixture: %w", err)
	}
	paddr := primary.srv.Addr().String()

	replicas := make([]*replNode, 0, nrep)
	defer func() {
		for _, r := range replicas {
			r.close()
		}
	}()
	for i := 0; i < nrep; i++ {
		r, err := bootNode(paddr)
		if err != nil {
			return replicaLevel{}, fmt.Errorf("replica %d: %w", i, err)
		}
		replicas = append(replicas, r)
	}
	// Catch-up barrier: every replica holds the primary's full history.
	want := primary.db.Engine().LSN()
	deadline := time.Now().Add(30 * time.Second)
	for _, r := range replicas {
		for r.db.Engine().LSN() < want {
			if time.Now().After(deadline) {
				return replicaLevel{}, fmt.Errorf("replica stuck at lsn %d of %d", r.db.Engine().LSN(), want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// One read connection per worker, round-robin across all nodes.
	addrs := []string{paddr}
	for _, r := range replicas {
		addrs = append(addrs, r.srv.Addr().String())
	}
	clients := make([]*client.Client, conns)
	onPrimary := make([]bool, conns)
	for i := range clients {
		addr := addrs[i%len(addrs)]
		onPrimary[i] = addr == paddr
		c, err := client.Dial(addr, client.WithUser(benchOps[i%len(benchOps)].user))
		if err != nil {
			return replicaLevel{}, fmt.Errorf("dial reader %d: %w", i, err)
		}
		defer c.Close()
		clients[i] = c
	}
	writer, err := client.Dial(paddr, client.WithAdmin("admin", benchReplToken))
	if err != nil {
		return replicaLevel{}, fmt.Errorf("dial writer: %w", err)
	}
	defer writer.Close()

	var (
		wg          sync.WaitGroup
		errs        atomic.Int64
		primaryOps  atomic.Int64
		writeOps    atomic.Int64
		maxLagLSNs  uint64
		maxLagSecs  float64
		lagSum      float64
		lagSamples  int
		stopSampler = make(chan struct{})
	)
	lats := make([][]time.Duration, conns)
	start := time.Now()
	measureEnd := start.Add(dur)
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			for j := 0; time.Now().Before(measureEnd); j++ {
				t0 := time.Now()
				if _, err := c.Exec(context.Background(), benchOps[j%len(benchOps)].query); err != nil {
					errs.Add(1)
					continue
				}
				lats[i] = append(lats[i], time.Since(t0))
				if onPrimary[i] {
					primaryOps.Add(1)
				}
			}
		}(i, c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		interval := time.Second
		if writeRate > 0 {
			interval = time.Second / time.Duration(writeRate)
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for j := 0; time.Now().Before(measureEnd); j++ {
			stmt := fmt.Sprintf("insert into FEED values (f%d, v)", j)
			if _, err := writer.Exec(context.Background(), stmt); err != nil {
				errs.Add(1)
			} else {
				writeOps.Add(1)
			}
			select {
			case <-tick.C:
			case <-time.After(time.Until(measureEnd)):
				return
			}
		}
	}()
	// The lag sampler reads each in-process replica's Lag() — the same
	// numbers the gauges export — every 20ms during the run.
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopSampler:
				return
			case <-tick.C:
				for _, r := range replicas {
					lsns, secs := r.rep.Lag()
					if lsns > maxLagLSNs {
						maxLagLSNs = lsns
					}
					if secs > maxLagSecs {
						maxLagSecs = secs
					}
					lagSum += float64(lsns)
					lagSamples++
				}
			}
		}
	}()
	wg.Wait()
	close(stopSampler)
	<-samplerDone
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		return float64(all[int(p*float64(len(all)-1))].Microseconds())
	}
	lvl := replicaLevel{
		Replicas:   nrep,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		ReadConns:  conns,
		ReadOps:    int64(len(all)),
		Errors:     errs.Load(),
		ReadQPS:    float64(len(all)) / elapsed.Seconds(),
		PrimaryQPS: float64(primaryOps.Load()) / elapsed.Seconds(),
		P50Micros:  pct(0.50),
		P95Micros:  pct(0.95),
		P99Micros:  pct(0.99),
		WriteOps:   writeOps.Load(),
		WriteQPS:   float64(writeOps.Load()) / elapsed.Seconds(),
		MaxLagLSNs: maxLagLSNs,
	}
	lvl.ReplicaQPS = lvl.ReadQPS - lvl.PrimaryQPS
	lvl.MaxLagSeconds = maxLagSecs
	if lagSamples > 0 {
		lvl.MeanLagLSNs = lagSum / float64(lagSamples)
	}
	return lvl, nil
}
