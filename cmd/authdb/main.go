// Command authdb is the interactive database front-end of the paper's §6:
// administrators define relations, data, views, and permits; users issue
// retrieve statements against the actual database and receive masked
// answers accompanied by inferred permit statements. The meta-relations
// stay transparent (inspect them with "show meta").
//
// Usage:
//
//	authdb [-user NAME] [-load FILE] [-db DIR] [-storage memory|paged]
//	       [-cache-pages N] [-paper]
//
// With -db, the directory is opened (or created) durably: every mutating
// statement is journaled to a write-ahead log and a crash loses at most
// the statement being written. Directories written with \save open and
// are converted in place.
//
// REPL meta-commands:
//
//	\user NAME         switch to user NAME (unprivileged)
//	\admin             switch to the administrator
//	\load FILE         execute a statement script (admin statements allowed)
//	\save DIR          export the database (schema, data, views, permits)
//	\stats             print the metrics registry (administrator only)
//	\begin snapshot    pin reads to the current version until \end
//	\end               close the snapshot block (reads follow the head again)
//	\quit              exit
//
// Subcommands: `authdb serve` runs the database as a network server
// (see cmd/authdb/serve.go and DESIGN.md §11); `authdb promote` flips a
// replica into the serving primary (DESIGN.md §13); `authdb bench` and
// `authdb bench-serve` are the measurement harnesses.
//
// Everything else is a statement; end statements with ';' or a newline.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"authdb"
	"authdb/internal/workload"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "bench":
			os.Exit(runBench(os.Args[2:]))
		case "bench-index":
			os.Exit(runBenchIndex(os.Args[2:]))
		case "bench-serve":
			os.Exit(runBenchServe(os.Args[2:]))
		case "bench-replica":
			os.Exit(runBenchReplica(os.Args[2:]))
		case "bench-mvcc":
			os.Exit(runBenchMVCC(os.Args[2:]))
		case "bench-mask":
			os.Exit(runBenchMask(os.Args[2:]))
		case "bench-storage":
			os.Exit(runBenchStorage(os.Args[2:]))
		case "serve":
			os.Exit(runServe(os.Args[2:]))
		case "promote":
			os.Exit(runPromote(os.Args[2:]))
		}
	}
	os.Exit(run())
}

func run() int {
	user := flag.String("user", "", "open the session as this (unprivileged) user; empty means administrator")
	load := flag.String("load", "", "execute this statement script before the prompt")
	dbdir := flag.String("db", "", "open (or create) a durable database directory")
	storage := flag.String("storage", "", "durable storage backend: memory (CSV snapshots) or paged (B+Trees, incremental checkpoints); empty: AUTHDB_STORAGE, then the directory's existing format")
	cachePages := flag.Int("cache-pages", 0, "paged backend's buffer-cache budget in 4KiB pages (0: 4096)")
	paper := flag.Bool("paper", false, "preload the paper's Figure 1 example database")
	flag.Parse()

	var db *authdb.DB
	if *dbdir != "" {
		opt := authdb.DefaultOptions()
		opt.Storage = *storage
		opt.CachePages = *cachePages
		var err error
		db, err = authdb.OpenDir(*dbdir, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "opening %s: %v\n", *dbdir, err)
			return 1
		}
		fmt.Printf("opened %s (durable, %s storage)\n", *dbdir, db.StorageBackend())
	} else {
		db = authdb.Open()
	}
	defer db.Close()

	admin := db.Admin()
	if *paper {
		admin.MustExecScript(workload.PaperScript)
		fmt.Println("loaded the paper's example database (users: Brown, Klein)")
	}
	if *load != "" {
		if err := execFile(admin, *load); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("loaded %s\n", *load)
	}

	session := admin
	who := "admin"
	if *user != "" {
		session = db.Session(*user)
		who = *user
	}

	in := bufio.NewScanner(os.Stdin)
	// Statements (bulk inserts, generated scripts) can exceed bufio's
	// 64KiB default line limit.
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := func() { fmt.Printf("%s> ", who) }
	prompt()
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, `\`):
			switch {
			case trimmed == `\quit` || trimmed == `\q`:
				return 0
			case trimmed == `\stats`, trimmed == `\begin snapshot`,
				trimmed == `\begin`, trimmed == `\end`:
				// Session.Dispatch owns \stats and the snapshot-block
				// commands, exactly as the network server does — the
				// behavior is identical in both front ends.
				exec(session, trimmed)
			case trimmed == `\admin`:
				session, who = admin, "admin"
			case strings.HasPrefix(trimmed, `\user `):
				name := strings.TrimSpace(strings.TrimPrefix(trimmed, `\user `))
				if name == "" {
					fmt.Println("usage: \\user NAME")
				} else {
					session, who = db.Session(name), name
				}
			case strings.HasPrefix(trimmed, `\load `):
				file := strings.TrimSpace(strings.TrimPrefix(trimmed, `\load `))
				if err := execFile(admin, file); err != nil {
					fmt.Println("error:", err)
				} else {
					fmt.Println("loaded", file)
				}
			case strings.HasPrefix(trimmed, `\save `):
				dir := strings.TrimSpace(strings.TrimPrefix(trimmed, `\save `))
				if err := db.Save(dir); err != nil {
					fmt.Println("error:", err)
				} else {
					fmt.Println("saved to", dir)
				}
			default:
				fmt.Println(`meta-commands: \user NAME, \admin, \load FILE, \save DIR, \stats, \begin snapshot, \end, \quit`)
			}
			pending.Reset()
			prompt()
			continue
		case trimmed == "" && pending.Len() == 0:
			prompt()
			continue
		}
		pending.WriteString(line)
		pending.WriteString("\n")
		stmt := pending.String()
		// A statement completes at ';' or at a blank line.
		if !strings.Contains(stmt, ";") && trimmed != "" {
			continue
		}
		pending.Reset()
		exec(session, stmt)
		prompt()
	}
	if err := in.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "reading input:", err)
		return 1
	}
	return 0
}

// execFile runs a statement script as the administrator; errors name the
// file and the line of the statement that failed.
func execFile(admin *authdb.Session, file string) error {
	script, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	if _, err := admin.ExecScript(string(script)); err != nil {
		// ExecScript errors already carry "line N:" for execution
		// failures and "pos N:" for parse failures.
		return fmt.Errorf("%s: %w", file, err)
	}
	return nil
}

// exec runs one statement (or \stats) through Session.Dispatch and
// prints Result.Render — the same dispatch and rendering path the
// network server uses, so both front ends show identical output.
func exec(session *authdb.Session, stmt string) {
	stmt = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(stmt), ";"))
	if stmt == "" {
		return
	}
	res, err := session.Dispatch(context.Background(), stmt)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(res.Render())
}
