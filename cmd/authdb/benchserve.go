package main

// The bench-serve subcommand: end-to-end throughput and latency of the
// network server — parse, authorization, masking, plus framing and TCP
// round trips — at increasing numbers of concurrent client
// connections. It boots an in-process server on a loopback ephemeral
// port over the same scaled fixture as `bench` and drives it with
// pkg/client, one connection per worker, measuring the paper's worked
// example queries as each principal.
//
// A second pass measures the write path: concurrent admin connections
// inserting unique rows into a durable database, with the WAL's group
// commit off and then on — the before/after of batching concurrent
// appends into one fsync.
//
// Results go to a JSON file so runs are comparable across commits.
//
//	authdb bench-serve [-dur 2s] [-o BENCH_serve.json] [-conns 1,16,64]

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"authdb"
	"authdb/internal/server"
	"authdb/pkg/client"
)

type serveLevel struct {
	Conns int `json:"conns"`
	// GoMaxProcs is the effective GOMAXPROCS while this level ran; the
	// scaling matrix (bench-mvcc) varies it per level, so the top-level
	// report field alone would misattribute the numbers.
	GoMaxProcs int     `json:"gomaxprocs"`
	Ops        int64   `json:"ops"`
	Errors    int64   `json:"errors"`
	QPS       float64 `json:"qps"`
	P50Micros float64 `json:"p50_us"`
	P95Micros float64 `json:"p95_us"`
	P99Micros float64 `json:"p99_us"`
}

type writeLevel struct {
	Conns       int     `json:"conns"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	GroupCommit bool    `json:"group_commit"`
	Ops         int64   `json:"ops"`
	Errors      int64   `json:"errors"`
	QPS         float64 `json:"qps"`
	P50Micros   float64 `json:"p50_us"`
	P95Micros   float64 `json:"p95_us"`
	P99Micros   float64 `json:"p99_us"`
}

type serveReport struct {
	Generated  string         `json:"generated"`
	GoMaxProcs int            `json:"gomaxprocs"`
	DurationMS int64          `json:"duration_ms_per_level"`
	Rows       map[string]int `json:"rows"`
	Queries    []string       `json:"queries"`
	Levels     []serveLevel   `json:"levels"`
	// WriteLevels measure durable inserts over the wire, group commit
	// off then on, at the same connection counts.
	WriteLevels []writeLevel `json:"write_levels"`
}

func runBenchServe(args []string) int {
	fs := flag.NewFlagSet("bench-serve", flag.ExitOnError)
	dur := fs.Duration("dur", 2*time.Second, "measurement duration per connection level")
	out := fs.String("o", "BENCH_serve.json", "output JSON file")
	levels := fs.String("conns", "1,16,64", "comma-separated connection counts")
	fs.Parse(args)

	db := authdb.Open()
	if _, err := db.Admin().ExecScript(benchFixtureScript()); err != nil {
		fmt.Fprintln(os.Stderr, "fixture:", err)
		return 1
	}
	srv := server.New(db, server.Config{MaxConns: 1024, Limits: authdb.DefaultLimits()})
	if err := srv.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	addr := srv.Addr().String()

	report := serveReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		DurationMS: dur.Milliseconds(),
		Rows: map[string]int{
			"EMPLOYEE":   benchEmployees,
			"PROJECT":    benchProjects,
			"ASSIGNMENT": benchAssignments,
		},
	}
	for _, op := range benchOps {
		report.Queries = append(report.Queries, op.user+": "+op.query)
	}

	var conns []int
	for _, field := range strings.Split(*levels, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "bad connection count %q\n", field)
			return 1
		}
		conns = append(conns, n)
	}

	for _, n := range conns {
		lvl, err := runServeLevel(addr, n, *dur)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("conns=%-3d qps=%9.1f p50=%7.0fµs p95=%7.0fµs p99=%7.0fµs ops=%d errors=%d\n",
			lvl.Conns, lvl.QPS, lvl.P50Micros, lvl.P95Micros, lvl.P99Micros, lvl.Ops, lvl.Errors)
		report.Levels = append(report.Levels, lvl)
	}

	for _, gc := range []bool{false, true} {
		for _, n := range conns {
			lvl, err := runWriteLevel(gc, n, *dur)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			fmt.Printf("write conns=%-3d group_commit=%-5v qps=%9.1f p50=%7.0fµs p95=%7.0fµs p99=%7.0fµs ops=%d errors=%d\n",
				lvl.Conns, lvl.GroupCommit, lvl.QPS, lvl.P50Micros, lvl.P95Micros, lvl.P99Micros, lvl.Ops, lvl.Errors)
			report.WriteLevels = append(report.WriteLevels, lvl)
		}
	}

	blob, _ := json.MarshalIndent(report, "", "  ")
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Println("wrote", *out)
	return 0
}

// runWriteLevel boots a fresh durable database (in a throwaway
// directory) with group commit set as given and drives n admin
// connections inserting unique rows for dur. Every insert is journaled
// and fsynced before its response, so this measures exactly what group
// commit batches.
func runWriteLevel(groupCommit bool, n int, dur time.Duration) (writeLevel, error) {
	dir, err := os.MkdirTemp("", "authdb-bench-write-*")
	if err != nil {
		return writeLevel{}, err
	}
	defer os.RemoveAll(dir)
	db, err := authdb.OpenDir(dir)
	if err != nil {
		return writeLevel{}, err
	}
	defer db.Close()
	if _, err := db.Admin().ExecScript("relation WRITES (K, V) key (K);\n"); err != nil {
		return writeLevel{}, err
	}
	db.SetGroupCommit(groupCommit)
	srv := server.New(db, server.Config{MaxConns: 1024, Limits: authdb.DefaultLimits()})
	if err := srv.Start(); err != nil {
		return writeLevel{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	addr := srv.Addr().String()

	clients := make([]*client.Client, n)
	for i := range clients {
		c, err := client.Dial(addr, client.WithAdmin("admin", ""))
		if err != nil {
			return writeLevel{}, fmt.Errorf("dial %d: %w", i, err)
		}
		defer c.Close()
		clients[i] = c
	}

	var wg sync.WaitGroup
	lats := make([][]time.Duration, n)
	var errs int64
	var errMu sync.Mutex
	start := time.Now()
	deadline := start.Add(dur)
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			for j := 0; time.Now().Before(deadline); j++ {
				stmt := fmt.Sprintf("insert into WRITES values (w%d_%d, v)", i, j)
				t0 := time.Now()
				if _, err := c.Exec(context.Background(), stmt); err != nil {
					errMu.Lock()
					errs++
					errMu.Unlock()
					continue
				}
				lats[i] = append(lats[i], time.Since(t0))
			}
		}(i, c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		return float64(all[int(p*float64(len(all)-1))].Microseconds())
	}
	return writeLevel{
		Conns:       n,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GroupCommit: groupCommit,
		Ops:         int64(len(all)),
		Errors:      errs,
		QPS:         float64(len(all)) / elapsed.Seconds(),
		P50Micros:   pct(0.50),
		P95Micros:   pct(0.95),
		P99Micros:   pct(0.99),
	}, nil
}

// runServeLevel drives n client connections against addr for dur; each
// worker owns one connection and cycles through the worked-example
// query of its principal.
func runServeLevel(addr string, n int, dur time.Duration) (serveLevel, error) {
	clients := make([]*client.Client, n)
	for i := range clients {
		c, err := client.Dial(addr, client.WithUser(benchOps[i%len(benchOps)].user))
		if err != nil {
			return serveLevel{}, fmt.Errorf("dial %d: %w", i, err)
		}
		defer c.Close()
		clients[i] = c
	}

	var wg sync.WaitGroup
	lats := make([][]time.Duration, n)
	var errs int64
	var errMu sync.Mutex
	start := time.Now()
	deadline := start.Add(dur)
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			// Every worker cycles through the full query mix, so levels
			// with different connection counts measure the same workload.
			for j := 0; time.Now().Before(deadline); j++ {
				t0 := time.Now()
				_, err := c.Exec(context.Background(), benchOps[j%len(benchOps)].query)
				if err != nil {
					errMu.Lock()
					errs++
					errMu.Unlock()
					continue
				}
				lats[i] = append(lats[i], time.Since(t0))
			}
		}(i, c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		idx := int(p * float64(len(all)-1))
		return float64(all[idx].Microseconds())
	}
	return serveLevel{
		Conns:      n,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Ops:        int64(len(all)),
		Errors:    errs,
		QPS:       float64(len(all)) / elapsed.Seconds(),
		P50Micros: pct(0.50),
		P95Micros: pct(0.95),
		P99Micros: pct(0.99),
	}, nil
}
