package main

// The bench subcommand: a reproducible throughput and latency harness
// for concurrent masked retrieval. It loads the paper's schema, data,
// and views scaled up with synthetic rows and a grant-heavy permission
// set (a dozen views per relation, all permitted to both users — the
// regime where authorization dominates per-query cost), then measures
// the paper's three worked-example queries end to end (parse,
// dual-pipeline authorization, masking):
//
//   - a serial no-cache baseline (the recompute-every-retrieve
//     configuration this repository had before the mask cache);
//   - throughput and p50/p99 latency at increasing numbers of
//     concurrent read sessions, mask cache on;
//   - the intra-query parallel evaluator, serial vs GOMAXPROCS
//     workers, at one session.
//
// Results go to a JSON file so runs are comparable across commits.
//
//	authdb bench [-dur 1s] [-o BENCH_parallel.json] [-levels 1,4,16]

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"authdb/internal/core"
	"authdb/internal/engine"
	"authdb/internal/guard"
	"authdb/internal/workload"
)

// Workload scale. EMPLOYEE and the title count size Example 3's
// self-join; the view count per relation sizes the meta-relation
// products that dominate uncached authorization.
const (
	benchEmployees   = 300
	benchProjects    = 600
	benchAssignments = 1200
	benchTitles      = 30
	benchExtraViews  = 8
)

type benchLevel struct {
	Sessions        int     `json:"sessions"`
	MaskCache       bool    `json:"mask_cache"`
	Ops             int64   `json:"ops"`
	QPS             float64 `json:"qps"`
	P50Micros       float64 `json:"p50_us"`
	P99Micros       float64 `json:"p99_us"`
	AllocsPerOp     float64 `json:"allocs_per_op"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

// allocsSince returns the heap allocation count delta per operation
// across a measurement window. Process-global, so background allocation
// noise is shared by every configuration being compared.
func allocsSince(m0 *runtime.MemStats, ops int64) float64 {
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	if ops == 0 {
		return 0
	}
	return float64(m1.Mallocs-m0.Mallocs) / float64(ops)
}

type benchReport struct {
	Generated    string         `json:"generated"`
	GoMaxProcs   int            `json:"gomaxprocs"`
	DurationMS   int64          `json:"duration_ms_per_level"`
	Rows         map[string]int `json:"rows"`
	ViewsPerUser int            `json:"views_per_user"`
	Queries      []string       `json:"queries"`
	// Baseline is one serial session with the mask cache disabled: the
	// configuration predating this harness, against which every level's
	// speedup_vs_serial is computed.
	Baseline     benchLevel   `json:"serial_baseline"`
	Levels       []benchLevel `json:"levels"`
	ParallelEval struct {
		Workers    int     `json:"workers"`
		SerialMS   float64 `json:"serial_ms_per_query"`
		ParallelMS float64 `json:"parallel_ms_per_query"`
		Speedup    float64 `json:"speedup"`
	} `json:"parallel_eval"`
	MaskCache struct {
		Hits   uint64 `json:"hits"`
		Misses uint64 `json:"misses"`
	} `json:"mask_cache"`
}

// benchEngine builds the paper fixture scaled with synthetic rows and
// the grant-heavy view set.
func benchEngine() (*engine.Engine, error) {
	e := engine.New(core.DefaultOptions())
	admin := e.NewSession("admin", true)
	if _, err := admin.ExecScript(benchFixtureScript()); err != nil {
		return nil, err
	}
	return e, nil
}

// benchFixtureScript is the statement script behind benchEngine,
// shared with the bench-serve harness: the paper fixture scaled with
// synthetic rows and the grant-heavy view set.
func benchFixtureScript() string {
	var b strings.Builder
	b.WriteString(workload.PaperScript)
	for i := 0; i < benchEmployees; i++ {
		fmt.Fprintf(&b, "insert into EMPLOYEE values (e%d, t%d, %d);\n",
			i, i%benchTitles, 20000+(i*37)%30000)
	}
	for i := 0; i < benchProjects; i++ {
		sponsor := "Acme"
		if i%3 != 0 {
			sponsor = fmt.Sprintf("s%d", i%7)
		}
		fmt.Fprintf(&b, "insert into PROJECT values (p%d, %s, %d);\n",
			i, sponsor, (i*7919)%500000)
	}
	for i := 0; i < benchAssignments; i++ {
		fmt.Fprintf(&b, "insert into ASSIGNMENT values (e%d, p%d);\n",
			(i*13)%benchEmployees, (i*31)%benchProjects)
	}
	// Narrow extra views over each relation, all permitted to both
	// users: they grant little data but multiply the meta-relation work
	// per retrieve, the way a real system's accumulated grants do.
	for k := 0; k < benchExtraViews; k++ {
		fmt.Fprintf(&b, "view BV%d (EMPLOYEE.NAME, EMPLOYEE.SALARY) where EMPLOYEE.SALARY >= %d;\n",
			k, 49000+k*80)
		fmt.Fprintf(&b, "view PV%d (PROJECT.NUMBER, PROJECT.BUDGET) where PROJECT.BUDGET >= %d;\n",
			k, 490000+k*800)
		fmt.Fprintf(&b, "view AV%d (ASSIGNMENT.E_NAME, ASSIGNMENT.P_NO, PROJECT.NUMBER) "+
			"where ASSIGNMENT.P_NO = PROJECT.NUMBER and PROJECT.BUDGET >= %d;\n",
			k, 480000+k*1000)
		for _, u := range []string{"Brown", "Klein"} {
			fmt.Fprintf(&b, "permit BV%d to %s;\npermit PV%d to %s;\npermit AV%d to %s;\n",
				k, u, k, u, k, u)
		}
	}
	return b.String()
}

// benchOp is one (user, query) pair drawn from the paper's examples.
type benchOp struct {
	user  string
	query string
}

var benchOps = []benchOp{
	{"Brown", workload.Example1Query},
	{"Klein", workload.Example2Query},
	{"Brown", workload.Example3Query},
}

// sessionSet opens one session per distinct bench user with the given
// intra-query parallelism.
func sessionSet(e *engine.Engine, parallelism int) map[string]*engine.Session {
	out := make(map[string]*engine.Session)
	for _, op := range benchOps {
		if _, ok := out[op.user]; ok {
			continue
		}
		s := e.NewSession(op.user, false)
		l := guard.DefaultLimits()
		l.Parallelism = parallelism
		s.SetLimits(l)
		out[op.user] = s
	}
	return out
}

// runLevel drives n concurrent reader goroutines for the duration and
// returns total ops plus sorted per-op latencies.
func runLevel(e *engine.Engine, n int, dur time.Duration) (int64, []time.Duration, error) {
	var (
		wg      sync.WaitGroup
		ops     atomic.Int64
		firstMu sync.Mutex
		firstEr error
	)
	lats := make([][]time.Duration, n)
	deadline := time.Now().Add(dur)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Session-level concurrency is what the levels measure, so
			// each statement evaluates serially.
			sessions := sessionSet(e, 1)
			local := make([]time.Duration, 0, 4096)
			for i := 0; time.Now().Before(deadline); i++ {
				op := benchOps[(w+i)%len(benchOps)]
				start := time.Now()
				if _, err := sessions[op.user].Exec(op.query); err != nil {
					firstMu.Lock()
					if firstEr == nil {
						firstEr = err
					}
					firstMu.Unlock()
					return
				}
				local = append(local, time.Since(start))
				ops.Add(1)
			}
			lats[w] = local
		}(w)
	}
	wg.Wait()
	if firstEr != nil {
		return 0, nil, firstEr
	}
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return ops.Load(), all, nil
}

func percentile(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Microsecond)
}

func measureLevel(e *engine.Engine, n int, dur time.Duration, cached bool) (benchLevel, error) {
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	ops, lats, err := runLevel(e, n, dur)
	if err != nil {
		return benchLevel{}, err
	}
	return benchLevel{
		Sessions:    n,
		MaskCache:   cached,
		Ops:         ops,
		QPS:         float64(ops) / dur.Seconds(),
		P50Micros:   percentile(lats, 0.50),
		P99Micros:   percentile(lats, 0.99),
		AllocsPerOp: allocsSince(&m0, ops),
	}, nil
}

// runParallelEval times Example 3 (the self-join) at one session,
// serial vs GOMAXPROCS workers, with the mask cache on so the actual
// side — where the parallel operators live — dominates.
func runParallelEval(e *engine.Engine, iters int) (serialMS, parallelMS float64, err error) {
	time1 := func(par int) (float64, error) {
		sessions := sessionSet(e, par)
		op := benchOps[2]
		if _, err := sessions[op.user].Exec(op.query); err != nil { // warm
			return 0, err
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := sessions[op.user].Exec(op.query); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start)) / float64(iters) / float64(time.Millisecond), nil
	}
	if serialMS, err = time1(1); err != nil {
		return 0, 0, err
	}
	if parallelMS, err = time1(runtime.GOMAXPROCS(0)); err != nil {
		return 0, 0, err
	}
	return serialMS, parallelMS, nil
}

func runBench(args []string) int {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	dur := fs.Duration("dur", time.Second, "measurement duration per concurrency level")
	out := fs.String("o", "BENCH_parallel.json", "output JSON path")
	levelsFlag := fs.String("levels", "1,4,16", "comma-separated concurrent session counts")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var levels []int
	for _, part := range strings.Split(*levelsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad -levels entry %q\n", part)
			return 2
		}
		levels = append(levels, n)
	}

	e, err := benchEngine()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench setup: %v\n", err)
		return 1
	}
	// This harness measures the mask cache and the concurrent evaluator;
	// with the closure on, repeats would be served from materialized
	// state and neither layer would be exercised. bench-mask owns the
	// closure's numbers.
	e.SetMaskClosureEnabled(false)
	rep := &benchReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		DurationMS: dur.Milliseconds(),
		Rows: map[string]int{
			"EMPLOYEE":   benchEmployees + 3,
			"PROJECT":    benchProjects + 3,
			"ASSIGNMENT": benchAssignments + 6,
		},
		ViewsPerUser: 3*benchExtraViews + 3,
	}
	for _, op := range benchOps {
		rep.Queries = append(rep.Queries,
			op.user+": "+strings.Join(strings.Fields(op.query), " "))
	}

	// Serial no-cache baseline first: one session, every retrieve
	// rederives its mask.
	e.SetMaskCacheEnabled(false)
	if _, _, err := runLevel(e, 1, *dur/4); err != nil { // warm indexes
		fmt.Fprintf(os.Stderr, "bench warmup: %v\n", err)
		return 1
	}
	rep.Baseline, err = measureLevel(e, 1, *dur, false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench baseline: %v\n", err)
		return 1
	}
	rep.Baseline.SpeedupVsSerial = 1
	fmt.Printf("baseline (serial, no cache): qps=%-8.1f p50=%.0fµs p99=%.0fµs\n",
		rep.Baseline.QPS, rep.Baseline.P50Micros, rep.Baseline.P99Micros)

	// The measured levels, mask cache on.
	e.SetMaskCacheEnabled(true)
	if _, _, err := runLevel(e, 1, *dur/4); err != nil { // warm the cache
		fmt.Fprintf(os.Stderr, "bench warmup: %v\n", err)
		return 1
	}
	for _, n := range levels {
		lv, err := measureLevel(e, n, *dur, true)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench level %d: %v\n", n, err)
			return 1
		}
		if rep.Baseline.QPS > 0 {
			lv.SpeedupVsSerial = lv.QPS / rep.Baseline.QPS
		}
		rep.Levels = append(rep.Levels, lv)
		fmt.Printf("sessions=%-3d qps=%-8.1f p50=%.0fµs p99=%.0fµs speedup=%.2fx\n",
			n, lv.QPS, lv.P50Micros, lv.P99Micros, lv.SpeedupVsSerial)
	}

	serialMS, parallelMS, err := runParallelEval(e, 20)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench parallel eval: %v\n", err)
		return 1
	}
	rep.ParallelEval.Workers = runtime.GOMAXPROCS(0)
	rep.ParallelEval.SerialMS = serialMS
	rep.ParallelEval.ParallelMS = parallelMS
	if parallelMS > 0 {
		rep.ParallelEval.Speedup = serialMS / parallelMS
	}
	fmt.Printf("parallel eval (Example 3, %d workers): serial %.2fms → parallel %.2fms (%.2fx)\n",
		rep.ParallelEval.Workers, serialMS, parallelMS, rep.ParallelEval.Speedup)

	rep.MaskCache.Hits, rep.MaskCache.Misses, _ = e.MaskCacheStats()

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %s\n", *out)
	return 0
}
