// Command authbench regenerates the comparison and performance
// experiments of EXPERIMENTS.md:
//
//	-exp sysr      E6: System R's all-or-nothing view windows vs masking
//	-exp ingres    E7: INGRES query modification's row/column asymmetry
//	-exp ablation  E8: the §4.2 refinements toggled one by one
//	-exp overhead  E9: mask-derivation overhead and executor comparison
//	-exp extended  E11: the §6(3) extension (masks with additional attributes)
//	-exp all       everything
package main

import (
	"flag"
	"fmt"
	"os"

	"authdb/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: sysr, ingres, ablation, overhead, extended, all")
	flag.Parse()
	w := os.Stdout
	switch *exp {
	case "all":
		experiments.SysR(w)
		experiments.Ingres(w)
		experiments.Ablation(w)
		experiments.Overhead(w)
		experiments.Extended(w)
	case "sysr":
		experiments.SysR(w)
	case "ingres":
		experiments.Ingres(w)
	case "ablation":
		experiments.Ablation(w)
	case "overhead":
		experiments.Overhead(w)
	case "extended":
		experiments.Extended(w)
	default:
		fmt.Fprintf(os.Stderr, "unknown -exp %q\n", *exp)
		os.Exit(2)
	}
}
