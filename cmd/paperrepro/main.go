// Command paperrepro regenerates the artifacts of Motro (ICDE 1989):
// Figure 1 (the example database extended with access permissions), the
// three worked authorization examples of §5 with their intermediate
// meta-relations, and the §4.2 four-case selection walkthrough.
//
// Usage:
//
//	paperrepro [-part all|figure1|example1|example2|example3|cases]
package main

import (
	"flag"
	"fmt"
	"os"

	"authdb/internal/report"
	"authdb/internal/workload"
)

func main() {
	part := flag.String("part", "all", "which artifact to regenerate: all, figure1, example1, example2, example3, cases")
	flag.Parse()
	w := os.Stdout
	var err error
	switch *part {
	case "all":
		err = report.All(w)
	case "figure1":
		report.Figure1(w)
	case "example1":
		err = report.Example(w, 1, "Brown", workload.Example1Query)
	case "example2":
		err = report.Example(w, 2, "Klein", workload.Example2Query)
	case "example3":
		err = report.Example(w, 3, "Brown", workload.Example3Query)
	case "cases":
		report.Cases(w)
	default:
		fmt.Fprintf(os.Stderr, "unknown -part %q\n", *part)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
