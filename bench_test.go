// Benchmarks regenerating the paper's artifacts and the EXPERIMENTS.md
// measurements: one benchmark per reproduced table/figure (E1–E5), the
// baseline comparisons (E6–E7), the §4.2 refinement ablations (E8), the
// overhead and executor sweeps (E9), the §4.2 four-case walkthrough
// (E10), and the §6(3) extension (E11).
//
// Run with: go test -bench=. -benchmem
package authdb_test

import (
	"fmt"
	"testing"

	"authdb"
	"authdb/internal/algebra"
	"authdb/internal/core"
	"authdb/internal/cview"
	"authdb/internal/qmod"
	"authdb/internal/sysr"
	"authdb/internal/value"
	"authdb/internal/workload"
)

// BenchmarkFigure1Compile measures E1: translating the paper's four view
// definitions and five permits into meta-relations, COMPARISON, and
// PERMISSION (the §6 front-end path).
func BenchmarkFigure1Compile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		workload.Paper()
	}
}

func benchExample(b *testing.B, user, query string) {
	b.Helper()
	f := workload.Paper()
	auth := core.NewAuthorizer(f.Store, f.Source, core.DefaultOptions())
	def := workload.MustQuery(query)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := auth.Retrieve(user, def); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExample1 measures E2: Brown's single-relation request with the
// PSA mask.
func BenchmarkExample1(b *testing.B) { benchExample(b, "Brown", workload.Example1Query) }

// BenchmarkExample2 measures E3: Klein's three-way join with products,
// pruning, clearing, and the NAME-only mask.
func BenchmarkExample2(b *testing.B) { benchExample(b, "Klein", workload.Example2Query) }

// BenchmarkExample3 measures E4: Brown's self-product with the SAE ⋈ EST
// self-join inference and a full grant.
func BenchmarkExample3(b *testing.B) { benchExample(b, "Brown", workload.Example3Query) }

// BenchmarkCommuteCheck measures E5: evaluating a mask meta-tuple as a
// view of the answer (the Figure 2 commutation check used by the
// Proposition property tests).
func BenchmarkCommuteCheck(b *testing.B) {
	f := workload.Paper()
	inst := f.Store.Instantiate("Brown", map[string]int{"PROJECT": 1}, core.DefaultOptions())
	mr := inst.MetaRelFor("PROJECT", "PROJECT")
	base := f.Rels["PROJECT"].Rename([]string{"PROJECT.NUMBER", "PROJECT.SPONSOR", "PROJECT.BUDGET"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, mt := range mr.Tuples {
			mt.EvalOn(base)
		}
	}
}

// BenchmarkVsSystemR measures E6: a System R all-or-nothing check versus
// the full dual-pipeline masking decision on the same request.
func BenchmarkVsSystemR(b *testing.B) {
	f := workload.Paper()
	sr := sysr.New(f.Schema, f.Source, "dba")
	for _, name := range f.Store.ViewNames() {
		if err := sr.DefineView("dba", f.Store.View(name).Def); err != nil {
			b.Fatal(err)
		}
	}
	if err := sr.GrantSelect("dba", "Klein", "ELP", false); err != nil {
		b.Fatal(err)
	}
	auth := core.NewAuthorizer(f.Store, f.Source, core.DefaultOptions())
	def := workload.MustQuery(workload.Example2Query)
	b.Run("systemr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sr.Query("Klein", def) //nolint:errcheck // denial is the expected outcome
		}
	})
	b.Run("mask", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := auth.Retrieve("Klein", def); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkVsIngres measures E7: INGRES query modification versus masking
// on a covered single-relation request.
func BenchmarkVsIngres(b *testing.B) {
	f := workload.Paper()
	ing := qmod.New(f.Schema, f.Source)
	if err := ing.Permit(qmod.Permission{
		User: "Brown", Rel: "PROJECT",
		Attrs: []string{"NUMBER", "SPONSOR", "BUDGET"},
		Quals: []qmod.Qual{{Attr: "SPONSOR", Op: value.EQ, Const: value.String("Acme")}},
	}); err != nil {
		b.Fatal(err)
	}
	auth := core.NewAuthorizer(f.Store, f.Source, core.DefaultOptions())
	def := workload.MustQuery(workload.Example1Query)
	b.Run("ingres", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := ing.Query("Brown", def); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mask", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := auth.Retrieve("Brown", def); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ablationWorkload prepares E8's synthetic fixture and queries.
func ablationWorkload(b *testing.B) (*workload.Fixture, []*cview.Def) {
	b.Helper()
	cfg := workload.DefaultGen()
	cfg.Views, cfg.Relations, cfg.RowsPerRel = 6, 4, 96
	g := workload.Generate(cfg)
	qs := workload.GenQueries(cfg, workload.QueryConfig{
		Seed: 11, Count: 10, JoinWidth: 2, ExtraAttrProb: 0.3,
		RangeFraction: 0.7, DropSelAttrProb: 0.5, InsideProb: 0.6,
	}, g.ViewDefsFor("u0")...)
	return g, qs
}

func benchAblation(b *testing.B, mod func(*core.Options)) {
	b.Helper()
	g, qs := ablationWorkload(b)
	opt := core.DefaultOptions()
	mod(&opt)
	auth := core.NewAuthorizer(g.Store, g.Source, opt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			if _, err := auth.Retrieve("u0", q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblation measures E8: the cost of each §4.2 refinement
// configuration over the synthetic workload (10 queries per iteration).
func BenchmarkAblation(b *testing.B) {
	b.Run("default", func(b *testing.B) { benchAblation(b, func(*core.Options) {}) })
	b.Run("no-padding", func(b *testing.B) {
		benchAblation(b, func(o *core.Options) { o.Padding = false })
	})
	b.Run("no-fourcase", func(b *testing.B) {
		benchAblation(b, func(o *core.Options) { o.FourCase = false })
	})
	b.Run("no-selfjoins", func(b *testing.B) {
		benchAblation(b, func(o *core.Options) { o.SelfJoins = false })
	})
	b.Run("bare-definitions", func(b *testing.B) {
		benchAblation(b, func(o *core.Options) {
			o.Padding, o.FourCase, o.SelfJoins = false, false, false
		})
	})
}

// BenchmarkOverhead measures E9: plain execution versus the dual pipeline
// at several database sizes and view counts.
func BenchmarkOverhead(b *testing.B) {
	for _, rows := range []int{100, 1000, 5000} {
		for _, views := range []int{2, 8, 32} {
			cfg := workload.DefaultGen()
			cfg.Relations, cfg.RowsPerRel, cfg.Views, cfg.ViewJoinWidth = 3, rows, views, 2
			cfg.Users = []string{"u0"}
			g := workload.Generate(cfg)
			def := workload.GenQueries(cfg, workload.QueryConfig{
				Seed: 3, Count: 1, JoinWidth: 2, RangeFraction: 0.5,
			})[0]
			an, err := cview.Analyze(def, g.Schema)
			if err != nil {
				b.Fatal(err)
			}
			auth := core.NewAuthorizer(g.Store, g.Source, core.DefaultOptions())
			name := fmt.Sprintf("rows=%d/views=%d", rows, views)
			b.Run(name+"/exec-only", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := algebra.EvalOptimized(an.PSJ, g.Source); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(name+"/exec+mask", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := auth.RetrievePlan("u0", an.PSJ); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkExecNaiveVsOptimized measures E9's executor comparison: the
// paper's products→selections→projections order against pushdown with
// hash joins.
func BenchmarkExecNaiveVsOptimized(b *testing.B) {
	for _, rows := range []int{100, 1000} {
		cfg := workload.DefaultGen()
		cfg.Relations, cfg.RowsPerRel, cfg.Views = 3, rows, 2
		g := workload.Generate(cfg)
		def := workload.GenQueries(cfg, workload.QueryConfig{
			Seed: 3, Count: 1, JoinWidth: 2, RangeFraction: 0.5,
		})[0]
		an, err := cview.Analyze(def, g.Schema)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("rows=%d/naive", rows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := algebra.EvalNaive(an.PSJ.Node(), g.Source); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("rows=%d/optimized", rows), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := algebra.EvalOptimized(an.PSJ, g.Source); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFourCase measures E10: the four-case interval analysis itself.
func BenchmarkFourCase(b *testing.B) {
	f := workload.NewFixture()
	f.MustExec(`
		relation P (N, BUDGET) key (N);
		view V (P.N, P.BUDGET) where P.BUDGET >= 300000 and P.BUDGET <= 600000;
		permit V to u;
	`)
	inst := f.Store.Instantiate("u", map[string]int{"P": 1}, core.DefaultOptions())
	mr := inst.MetaRelFor("P", "P")
	atom := algebra.Atom{L: "P.BUDGET", Op: value.GE, R: algebra.ConstOp(value.Int(400000))}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MetaSelect(mr, atom, inst, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtendedMasks measures E11: the §6(3) extension against the
// base pipeline on its motivating query.
func BenchmarkExtendedMasks(b *testing.B) {
	f := workload.Paper()
	def := workload.MustQuery(`retrieve (PROJECT.NUMBER, PROJECT.BUDGET)`)
	base := core.NewAuthorizer(f.Store, f.Source, core.DefaultOptions())
	extOpt := core.DefaultOptions()
	extOpt.ExtendedMasks = true
	ext := core.NewAuthorizer(f.Store, f.Source, extOpt)
	b.Run("base", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := base.Retrieve("Brown", def); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("extended", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ext.Retrieve("Brown", def); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMaskApply isolates mask application on a larger answer.
func BenchmarkMaskApply(b *testing.B) {
	cfg := workload.DefaultGen()
	cfg.Relations, cfg.RowsPerRel, cfg.Views = 2, 5000, 2
	cfg.Users = []string{"u0"}
	g := workload.Generate(cfg)
	def := workload.GenQueries(cfg, workload.QueryConfig{Seed: 9, Count: 1, JoinWidth: 1, RangeFraction: 1})[0]
	auth := core.NewAuthorizer(g.Store, g.Source, core.DefaultOptions())
	d, err := auth.Retrieve("u0", def)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Mask.Apply(d.Answer)
	}
}

// BenchmarkIndexedPointQuery measures the secondary-index path: a point
// selection on a large relation, against the same query with a range
// predicate that cannot use the index.
func BenchmarkIndexedPointQuery(b *testing.B) {
	cfg := workload.DefaultGen()
	cfg.Relations, cfg.RowsPerRel, cfg.Views = 1, 50000, 1
	g := workload.Generate(cfg)
	point := &algebra.PSJ{
		Scans: []algebra.Scan{{Rel: "R0", Alias: "R0"}},
		Preds: []algebra.Atom{{L: "R0.A0", Op: value.EQ, R: algebra.ConstOp(value.Int(12345))}},
		Cols:  []string{"R0.A0", "R0.A2"},
	}
	scan := &algebra.PSJ{
		Scans: []algebra.Scan{{Rel: "R0", Alias: "R0"}},
		Preds: []algebra.Atom{{L: "R0.A0", Op: value.GE, R: algebra.ConstOp(value.Int(12345))},
			{L: "R0.A0", Op: value.LE, R: algebra.ConstOp(value.Int(12345))}},
		Cols: []string{"R0.A0", "R0.A2"},
	}
	b.Run("indexed-eq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := algebra.EvalOptimized(point, g.Source); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan-range", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := algebra.EvalOptimized(scan, g.Source); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAggregateQuery measures the grouped-fold path over the masked
// delivery (the §6 aggregate extension).
func BenchmarkAggregateQuery(b *testing.B) {
	db := authdb.Open()
	admin := db.Admin()
	admin.MustExecScript(workload.PaperScript)
	for i := 0; i < 2000; i++ {
		admin.MustExec(fmt.Sprintf("insert into EMPLOYEE values (e%04d, t%d, %d)", i, i%20, 20000+i))
	}
	admin.MustExec(`view ALL_EMP (EMPLOYEE.NAME, EMPLOYEE.TITLE, EMPLOYEE.SALARY)`)
	admin.MustExec(`permit ALL_EMP to agg`)
	s := db.Session("agg")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Exec(`retrieve (EMPLOYEE.TITLE, count(EMPLOYEE.NAME), avg(EMPLOYEE.SALARY))`); err != nil {
			b.Fatal(err)
		}
	}
}
