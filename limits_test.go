package authdb_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"authdb"
	"authdb/internal/workload"
)

// wideDB builds a database whose self-product blows past the default
// intermediate-row budget: 1100 x 1100 > 1,000,000.
func wideDB(t testing.TB) *authdb.DB {
	t.Helper()
	db := authdb.Open()
	var script strings.Builder
	script.WriteString("relation WIDE (ID, GRP) key (ID);\n")
	for i := 0; i < 1100; i++ {
		fmt.Fprintf(&script, "insert into WIDE values (%d, %d);\n", i, i%7)
	}
	db.Admin().MustExecScript(script.String())
	return db
}

const selfProduct = `
retrieve (WIDE:1.ID, WIDE:2.ID)
  where WIDE:1.GRP >= 0
  and WIDE:2.GRP >= 0`

func TestBudgetExceededDeterministic(t *testing.T) {
	db := wideDB(t)
	admin := db.Admin()
	if _, err := admin.Exec(selfProduct); !errors.Is(err, authdb.ErrBudgetExceeded) {
		t.Fatalf("runaway self-product: got %v, want ErrBudgetExceeded", err)
	}
	// The budget error is per-statement: the session keeps serving.
	res, err := admin.Exec(`retrieve (WIDE.ID) where WIDE.ID = 7`)
	if err != nil {
		t.Fatalf("session broken after budget error: %v", err)
	}
	if len(res.Table.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(res.Table.Rows))
	}
}

func TestBudgetExceededUnprivileged(t *testing.T) {
	db := wideDB(t)
	db.Admin().MustExecScript(`
		view VW (WIDE:1.ID, WIDE:2.ID)
		  where WIDE:1.GRP >= 0 and WIDE:2.GRP >= 0;
		permit VW to eve;
	`)
	if _, err := db.Session("eve").Exec(selfProduct); !errors.Is(err, authdb.ErrBudgetExceeded) {
		t.Fatalf("authorized self-product: got %v, want ErrBudgetExceeded", err)
	}
}

func TestUnlimitedLiftsBudget(t *testing.T) {
	db := authdb.Open()
	var script strings.Builder
	script.WriteString("relation WIDE (ID, GRP) key (ID);\n")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&script, "insert into WIDE values (%d, %d);\n", i, i%7)
	}
	db.Admin().MustExecScript(script.String())

	tight := db.Admin().SetLimits(authdb.Limits{MaxIntermediateRows: 10_000})
	if _, err := tight.Exec(selfProduct); !errors.Is(err, authdb.ErrBudgetExceeded) {
		t.Fatalf("tight budget: got %v, want ErrBudgetExceeded", err)
	}
	free := db.Admin().SetLimits(authdb.Unlimited())
	res, err := free.Exec(selfProduct)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Table.Rows); got != 200*200 {
		t.Fatalf("got %d rows, want %d", got, 200*200)
	}
}

func TestResultRowsBudget(t *testing.T) {
	db := wideDB(t)
	admin := db.Admin().SetLimits(authdb.Limits{MaxResultRows: 100})
	if _, err := admin.Exec(`retrieve (WIDE.ID)`); !errors.Is(err, authdb.ErrBudgetExceeded) {
		t.Fatalf("oversized answer: got %v, want ErrBudgetExceeded", err)
	}
}

func TestCanceledContext(t *testing.T) {
	db := paperDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.Admin().ExecContext(ctx, `retrieve (EMPLOYEE.NAME)`)
	if !errors.Is(err, authdb.ErrCanceled) {
		t.Fatalf("pre-canceled context: got %v, want ErrCanceled", err)
	}
	// A live context still works on the same session.
	if _, err := db.Admin().ExecContext(context.Background(), `retrieve (EMPLOYEE.NAME)`); err != nil {
		t.Fatal(err)
	}
}

func TestExpiredTimeoutLimit(t *testing.T) {
	db := wideDB(t)
	admin := db.Admin().SetLimits(authdb.Limits{Timeout: time.Nanosecond})
	// The deadline expires before (or within one tuple batch of) the
	// product scan; either way the statement must fail with ErrCanceled.
	if _, err := admin.Exec(selfProduct); !errors.Is(err, authdb.ErrCanceled) {
		t.Fatalf("expired timeout: got %v, want ErrCanceled", err)
	}
}

// TestConcurrentSessions hammers one engine from parallel readers and a
// writer; run under -race this checks the locking discipline, and the
// budget errors of some readers must not poison the others.
func TestConcurrentSessions(t *testing.T) {
	db := paperDB(t)
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			brown := db.Session("Brown")
			for i := 0; i < 25; i++ {
				if _, err := brown.Exec(workload.Example1Query); err != nil {
					errs <- fmt.Errorf("worker %d query: %w", w, err)
					return
				}
				if _, err := brown.Exec(workload.Example3Query); err != nil {
					errs <- fmt.Errorf("worker %d query: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		admin := db.Admin()
		for i := 0; i < 50; i++ {
			stmt := fmt.Sprintf("insert into EMPLOYEE values (w%d, clerk, %d)", i, 15000+i)
			if _, err := admin.Exec(stmt); err != nil {
				errs <- fmt.Errorf("writer: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
