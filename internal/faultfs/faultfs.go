// Package faultfs abstracts the filesystem operations the persistence
// layer performs and provides a fault-injecting implementation for
// crash-safety tests.
//
// The engine's snapshot and WAL code run against the FS interface; in
// production it is backed by the real OS filesystem, and in tests by a
// Faulty wrapper that fails (optionally with a short write) at an exact
// mutating operation and refuses all further writes — simulating a
// process crash at every possible point of a save or log append.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync"
)

// ErrInjected is the error returned by a Faulty filesystem at and after
// its tripping point.
var ErrInjected = errors.New("faultfs: injected failure")

// File is the subset of *os.File the persistence layer needs.
type File interface {
	io.Reader
	io.Writer
	// Sync flushes the file's contents to stable storage.
	Sync() error
	Close() error
}

// RandomFile is a random-access file handle; the page store reads and
// writes fixed-size pages at explicit offsets through it. WriteAt is a
// mutating operation under fault injection (and the tripping write may
// be torn, modelling a partial sector write); ReadAt never fails
// injection.
type RandomFile interface {
	io.ReaderAt
	io.WriterAt
	// Sync flushes the file's contents to stable storage.
	Sync() error
	Close() error
}

// FS is the filesystem surface used by snapshots, the WAL, and the page
// store.
type FS interface {
	// Create truncates or creates the named file for writing.
	Create(name string) (File, error)
	// Open opens the named file for reading.
	Open(name string) (File, error)
	// OpenFile opens the named file for random-access reading and
	// writing, creating it (without truncation) if missing.
	OpenFile(name string) (RandomFile, error)
	ReadFile(name string) ([]byte, error)
	MkdirAll(path string, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	RemoveAll(path string) error
	ReadDir(name string) ([]fs.DirEntry, error)
	Stat(name string) (fs.FileInfo, error)
	// SyncDir fsyncs a directory so renames and creations in it are
	// durable.
	SyncDir(path string) error
}

// osFS is the real filesystem.
type osFS struct{}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

func (osFS) Create(name string) (File, error) { return os.Create(name) }
func (osFS) Open(name string) (File, error)   { return os.Open(name) }

func (osFS) OpenFile(name string) (RandomFile, error) {
	return os.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o644)
}

func (osFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (osFS) MkdirAll(p string, m os.FileMode) error     { return os.MkdirAll(p, m) }
func (osFS) Rename(o, n string) error                   { return os.Rename(o, n) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) RemoveAll(path string) error                { return os.RemoveAll(path) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)      { return os.Stat(name) }

func (osFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Faulty wraps an FS and injects a failure at the k-th mutating
// operation after Arm(k). Mutating operations are Create, Write, Sync,
// SyncDir, MkdirAll, Rename, Remove and RemoveAll; reads are never
// failed. Once tripped, every further mutating operation fails too (a
// crashed process performs no more writes), so a test observes exactly
// the on-disk state at the failure point. With ShortWrites, the tripping
// operation — when it is a Write — persists only half its payload before
// failing, modelling a torn write.
type Faulty struct {
	inner FS
	// ShortWrites makes the tripping Write persist a prefix of its
	// payload.
	ShortWrites bool

	mu      sync.Mutex
	armed   bool
	left    int // mutating operations remaining before the trip
	tripped bool
	ops     int // total mutating operations observed since Arm/Reset
}

// NewFaulty wraps inner; the result is transparent until Arm is called.
func NewFaulty(inner FS) *Faulty { return &Faulty{inner: inner} }

// Arm schedules the injected failure at the k-th (0-based) mutating
// operation from now and resets the operation counter.
func (f *Faulty) Arm(k int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armed, f.left, f.tripped, f.ops = true, k, false, 0
}

// Disarm stops injection; the wrapper becomes transparent again.
func (f *Faulty) Disarm() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armed, f.tripped = false, false
}

// Ops reports the mutating operations observed since the last Arm.
func (f *Faulty) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Tripped reports whether the injected failure has fired.
func (f *Faulty) Tripped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tripped
}

// step accounts one mutating operation; it reports whether the operation
// must fail, and whether this very operation is the tripping one (for
// short writes).
func (f *Faulty) step() (fail, atTrip bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	if !f.armed {
		return false, false
	}
	if f.tripped {
		return true, false
	}
	if f.left == 0 {
		f.tripped = true
		return true, true
	}
	f.left--
	return false, false
}

func (f *Faulty) Create(name string) (File, error) {
	if fail, _ := f.step(); fail {
		return nil, fmt.Errorf("%w: create %s", ErrInjected, name)
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, inner: file, name: name}, nil
}

// OpenFile is mutating (it may create the file), and the returned
// handle threads WriteAt and Sync through fault accounting.
func (f *Faulty) OpenFile(name string) (RandomFile, error) {
	if fail, _ := f.step(); fail {
		return nil, fmt.Errorf("%w: openfile %s", ErrInjected, name)
	}
	file, err := f.inner.OpenFile(name)
	if err != nil {
		return nil, err
	}
	return &faultyRandomFile{f: f, inner: file, name: name}, nil
}

func (f *Faulty) Open(name string) (File, error)       { return f.inner.Open(name) }
func (f *Faulty) ReadFile(name string) ([]byte, error) { return f.inner.ReadFile(name) }
func (f *Faulty) ReadDir(name string) ([]fs.DirEntry, error) {
	return f.inner.ReadDir(name)
}
func (f *Faulty) Stat(name string) (fs.FileInfo, error) { return f.inner.Stat(name) }

func (f *Faulty) MkdirAll(path string, perm os.FileMode) error {
	if fail, _ := f.step(); fail {
		return fmt.Errorf("%w: mkdir %s", ErrInjected, path)
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *Faulty) Rename(oldpath, newpath string) error {
	if fail, _ := f.step(); fail {
		return fmt.Errorf("%w: rename %s", ErrInjected, newpath)
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *Faulty) Remove(name string) error {
	if fail, _ := f.step(); fail {
		return fmt.Errorf("%w: remove %s", ErrInjected, name)
	}
	return f.inner.Remove(name)
}

func (f *Faulty) RemoveAll(path string) error {
	if fail, _ := f.step(); fail {
		return fmt.Errorf("%w: removeall %s", ErrInjected, path)
	}
	return f.inner.RemoveAll(path)
}

func (f *Faulty) SyncDir(path string) error {
	if fail, _ := f.step(); fail {
		return fmt.Errorf("%w: syncdir %s", ErrInjected, path)
	}
	return f.inner.SyncDir(path)
}

// faultyFile threads write/sync faults through an open file.
type faultyFile struct {
	f     *Faulty
	inner File
	name  string
}

func (w *faultyFile) Read(p []byte) (int, error) { return w.inner.Read(p) }

func (w *faultyFile) Write(p []byte) (int, error) {
	fail, atTrip := w.f.step()
	if !fail {
		return w.inner.Write(p)
	}
	if atTrip && w.f.ShortWrites && len(p) > 1 {
		n, _ := w.inner.Write(p[:len(p)/2])
		return n, fmt.Errorf("%w: short write %s", ErrInjected, w.name)
	}
	return 0, fmt.Errorf("%w: write %s", ErrInjected, w.name)
}

func (w *faultyFile) Sync() error {
	if fail, _ := w.f.step(); fail {
		return fmt.Errorf("%w: sync %s", ErrInjected, w.name)
	}
	return w.inner.Sync()
}

// Close never fails injection: a crashed process's descriptors close
// implicitly, and failing Close would only mask the interesting faults.
func (w *faultyFile) Close() error { return w.inner.Close() }

// faultyRandomFile threads page writes and syncs through fault
// accounting; a torn WriteAt models a partially persisted page.
type faultyRandomFile struct {
	f     *Faulty
	inner RandomFile
	name  string
}

func (w *faultyRandomFile) ReadAt(p []byte, off int64) (int, error) {
	return w.inner.ReadAt(p, off)
}

func (w *faultyRandomFile) WriteAt(p []byte, off int64) (int, error) {
	fail, atTrip := w.f.step()
	if !fail {
		return w.inner.WriteAt(p, off)
	}
	if atTrip && w.f.ShortWrites && len(p) > 1 {
		n, _ := w.inner.WriteAt(p[:len(p)/2], off)
		return n, fmt.Errorf("%w: short writeat %s", ErrInjected, w.name)
	}
	return 0, fmt.Errorf("%w: writeat %s", ErrInjected, w.name)
}

func (w *faultyRandomFile) Sync() error {
	if fail, _ := w.f.step(); fail {
		return fmt.Errorf("%w: sync %s", ErrInjected, w.name)
	}
	return w.inner.Sync()
}

func (w *faultyRandomFile) Close() error { return w.inner.Close() }
