package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestOSRoundTrip(t *testing.T) {
	fs := OS()
	dir := t.TempDir()
	path := filepath.Join(dir, "a.txt")
	f, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile(path)
	if err != nil || string(data) != "hello" {
		t.Fatalf("read %q, %v", data, err)
	}
	if err := fs.Rename(path, filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat(filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
	ents, err := fs.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("readdir %v, %v", ents, err)
	}
}

func TestFaultyTripsAtExactOp(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaulty(OS())

	// The sequence below performs: Create (op 0), Write (op 1), Sync (op 2).
	run := func() error {
		f, err := ff.Create(filepath.Join(dir, "x"))
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte("data")); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	for k := 0; k < 3; k++ {
		ff.Arm(k)
		err := run()
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("k=%d: got %v, want injected failure", k, err)
		}
		if !ff.Tripped() {
			t.Fatalf("k=%d: not tripped", k)
		}
	}
	ff.Arm(3)
	if err := run(); err != nil {
		t.Fatalf("k=3: run must complete, got %v", err)
	}
	if ff.Ops() != 3 {
		t.Fatalf("ops = %d, want 3", ff.Ops())
	}
}

func TestFaultyStaysDownAfterTrip(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaulty(OS())
	ff.Arm(0)
	if _, err := ff.Create(filepath.Join(dir, "x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v", err)
	}
	// Every further mutating op fails; reads keep working.
	if err := ff.MkdirAll(filepath.Join(dir, "d"), 0o755); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-trip mkdir: %v", err)
	}
	if _, err := ff.ReadDir(dir); err != nil {
		t.Fatalf("post-trip read: %v", err)
	}
	ff.Disarm()
	if err := ff.MkdirAll(filepath.Join(dir, "d"), 0o755); err != nil {
		t.Fatalf("after disarm: %v", err)
	}
}

func TestFaultyShortWrite(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaulty(OS())
	ff.ShortWrites = true
	path := filepath.Join(dir, "x")
	f, err := ff.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	ff.Arm(0)
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v", err)
	}
	if n != 5 {
		t.Fatalf("short write persisted %d bytes, want 5", n)
	}
	f.Close()
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "01234" {
		t.Fatalf("on disk %q, %v", data, err)
	}
}
