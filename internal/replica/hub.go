// Package replica implements WAL-shipping replication: a primary
// streams its durably committed statement log to followers, and each
// follower applies the stream through a full engine of its own.
//
// The protocol rides the ordinary wire listener (internal/wire's
// REPL_HELLO / REPL_BATCH / REPL_ACK kinds). A follower states the last
// LSN it holds; the primary either serves the WAL tail past it or, when
// the position predates the committed snapshot, sends a full state
// snapshot first. Batches carry contiguous LSN runs, so a replica can
// verify it never skips or re-applies a statement; acks flow back for
// lag accounting and graceful shutdown.
//
// Authorization replicates for free: Motro's masking is a pure function
// of the meta-database and the query, and the meta-relations (views,
// COMPARISON, PERMISSION) are rebuilt from the same statement stream as
// the data — so every replica is a full enforcement point, byte-for-byte
// equivalent to the primary, with no central authorization service.
package replica

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"authdb/internal/engine"
	"authdb/internal/metrics"
	"authdb/internal/wire"
)

const (
	// followerBuf is the per-follower send buffer, in commits; a
	// follower that falls this far behind the live feed is disconnected
	// (it reconnects and catches up from disk instead of stalling the
	// publisher).
	followerBuf = 4096
	// batchMaxStmts and batchMaxBytes bound one REPL_BATCH frame.
	batchMaxStmts = 512
	batchMaxBytes = 4 << 20
	// writeTimeout bounds one batch write; a follower that stops
	// reading is disconnected rather than wedging its sender.
	writeTimeout = 30 * time.Second
	// shutFlushWait bounds how long a graceful shutdown waits for a
	// follower to ack the batches already written to it.
	shutFlushWait = 3 * time.Second
	ackWaitPoll   = 5 * time.Millisecond
)

// Hub is the primary side: it owns every follower stream. The network
// server routes authenticated REPL_HELLO connections to HandleConn.
type Hub struct {
	eng  *engine.Engine
	met  *metrics.Registry
	shut chan struct{}

	// buf and writeTO mirror followerBuf and writeTimeout; the
	// slow-follower tests and the chaos harness shrink them to hit the
	// disconnect paths in bounded time.
	buf     int
	writeTO time.Duration
	// onFence is invoked when a follower proves this node's epoch stale —
	// a ReplFence on the ack stream, or a hello announcing a higher
	// epoch. The server demotes the node in it.
	onFence atomic.Pointer[func(epoch uint64, leader string)]
	// unsafeNoFencing disables every epoch check (the deliberately broken
	// build the chaos harness uses to prove its dual-primary check has
	// teeth). Never set outside tests.
	unsafeNoFencing bool

	mu        sync.Mutex
	closed    bool
	followers map[*follower]struct{}
	wg        sync.WaitGroup
}

// follower is one live replication stream.
type follower struct {
	name string
	conn net.Conn
	// sent is the highest LSN written to the socket; acked the highest
	// the follower reported durably applied.
	sent  atomic.Uint64
	acked atomic.Uint64
}

// NewHub builds the primary-side hub for eng and registers its gauges
// on the engine's registry.
func NewHub(eng *engine.Engine) *Hub {
	h := &Hub{
		eng:       eng,
		met:       eng.Metrics(),
		shut:      make(chan struct{}),
		followers: make(map[*follower]struct{}),
		buf:       followerBuf,
		writeTO:   writeTimeout,
	}
	h.met.GaugeFunc("authdb_repl_followers", func() float64 {
		return float64(h.FollowerCount())
	})
	h.met.GaugeFunc("authdb_repl_max_follower_lag_lsns", func() float64 {
		_, maxLag := h.ackStats()
		return float64(maxLag)
	})
	return h
}

// SetOnFence installs the callback invoked (from a stream goroutine)
// when a follower proves this node's epoch stale; the server demotes
// the node to read-only in it.
func (h *Hub) SetOnFence(fn func(epoch uint64, leader string)) {
	h.onFence.Store(&fn)
}

// fenced reports a stale-epoch signal to the fence callback.
func (h *Hub) fenced(epoch uint64, leader string) {
	h.met.Counter("authdb_repl_fenced_total").Inc()
	if fn := h.onFence.Load(); fn != nil {
		(*fn)(epoch, leader)
	}
}

// SetFollowerBuffer overrides the per-follower commit buffer (tests).
func (h *Hub) SetFollowerBuffer(n int) { h.buf = n }

// SetWriteTimeout overrides the per-batch write timeout (tests).
func (h *Hub) SetWriteTimeout(d time.Duration) { h.writeTO = d }

// SetUnsafeNoFencing disables every epoch check on this hub — the
// deliberately broken build the chaos harness uses to prove the
// dual-primary detector has teeth. Never enable in production.
func (h *Hub) SetUnsafeNoFencing(on bool) { h.unsafeNoFencing = on }

// DropFollowers force-closes every live follower stream. Called on
// demotion: a node that just learned its timeline is dead must not
// keep feeding it to followers — they reconnect, get refused with a
// leader hint, and re-home to the new primary.
func (h *Hub) DropFollowers() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for f := range h.followers {
		f.conn.Close()
	}
}

// FollowerCount reports the live follower streams.
func (h *Hub) FollowerCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.followers)
}

// ackStats returns the minimum acked LSN across followers and the
// maximum follower lag against the primary's durable LSN (both zero
// with no followers).
func (h *Hub) ackStats() (minAcked, maxLag uint64) {
	durable := h.eng.DurableLSN()
	h.mu.Lock()
	defer h.mu.Unlock()
	for f := range h.followers {
		a := f.acked.Load()
		if minAcked == 0 || a < minAcked {
			minAcked = a
		}
		if lag := durable - min(a, durable); lag > maxLag {
			maxLag = lag
		}
	}
	return minAcked, maxLag
}

// HandleConn serves one follower stream on an already-authenticated
// connection whose first frame was hello; it returns when the stream
// ends (the caller owns closing the connection). The read half of the
// connection carries the follower's acks.
func (h *Hub) HandleConn(nc net.Conn, br *bufio.Reader, hello wire.ReplHello) {
	bw := bufio.NewWriter(nc)
	reject := func(we *wire.Error) {
		nc.SetWriteDeadline(time.Now().Add(h.writeTO))
		if wire.WriteMsg(bw, wire.ReplHelloReply{OK: false, Error: we}) == nil {
			bw.Flush()
		}
	}

	// Epoch fencing. A hello announcing a higher epoch proves this node
	// was superseded while it wasn't looking: refuse the stream and
	// demote. Zero is a pre-epoch follower, treated as epoch 1.
	helloEpoch := hello.Epoch
	if helloEpoch == 0 {
		helloEpoch = 1
	}
	if !h.unsafeNoFencing && helloEpoch > h.eng.Epoch() {
		h.fenced(helloEpoch, hello.Leader)
		reject(&wire.Error{Code: wire.CodeStalePrimary, Leader: hello.Leader,
			Message: fmt.Sprintf("fenced: follower %s is at epoch %d, this node at %d",
				hello.Name, helloEpoch, h.eng.Epoch())})
		return
	}

	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		reject(&wire.Error{Code: wire.CodeShuttingDown,
			Message: "primary is shutting down", Retryable: true})
		return
	}
	f := &follower{name: hello.Name, conn: nc}
	if f.name == "" {
		f.name = nc.RemoteAddr().String()
	}
	h.followers[f] = struct{}{}
	h.wg.Add(1)
	h.mu.Unlock()
	defer func() {
		h.mu.Lock()
		delete(h.followers, f)
		h.mu.Unlock()
		h.wg.Done()
	}()
	h.met.Counter("authdb_repl_follower_connects_total").Inc()

	// Subscribe to the commit feed BEFORE reading the tail or rendering
	// the snapshot: every statement is then either in what we read (it
	// was durable before the subscription) or in the channel, and the
	// LSN filter in sendBatches drops the overlap. Subscribing after
	// would open a gap.
	sub := h.eng.SubscribeCommits(h.buf)
	defer h.eng.UnsubscribeCommits(sub)

	reply := wire.ReplHelloReply{OK: true, Gen: h.eng.Generation(),
		Epoch: h.eng.Epoch(), EpochHist: wireEpochHist(h.eng.EpochHistory())}
	var pending []engine.Commit
	next := hello.From + 1
	// A follower stuck on a stale epoch may hold statements no current
	// history contains: anything it applied past the fork — the start of
	// the first epoch it never adopted. Tell it where the fork is so it
	// quarantines its suffix, and always resync it by snapshot (its WAL
	// position is meaningless past the fork).
	diverged := false
	if !h.unsafeNoFencing && helloEpoch < h.eng.Epoch() {
		if fork, ok := h.eng.ForkLSN(helloEpoch); ok && hello.From > fork {
			diverged = true
			reply.Diverged, reply.Fork = true, fork
			h.met.Counter("authdb_repl_diverged_followers_total").Inc()
		}
	}
	tail, ok, err := h.eng.WALTail(hello.From)
	switch {
	case err != nil:
		reject(&wire.Error{Code: wire.CodeInternal, Message: err.Error()})
		return
	case ok && !diverged:
		reply.Mode = wire.ReplModeTail
		pending = tail
	default:
		files, lsn, gen, err := h.eng.ReplSnapshot()
		if err != nil {
			reject(&wire.Error{Code: wire.CodeInternal, Message: err.Error()})
			return
		}
		reply.Mode = wire.ReplModeSnapshot
		reply.Snapshot, reply.SnapshotLSN, reply.Gen = files, lsn, gen
		next = lsn + 1
		h.met.Counter("authdb_repl_snapshots_sent_total").Inc()
	}
	nc.SetWriteDeadline(time.Now().Add(h.writeTO))
	if err := wire.WriteMsg(bw, reply); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	f.sent.Store(next - 1)
	f.acked.Store(next - 1)

	go h.readAcks(f, br)

	if next, err = h.sendBatches(f, bw, next, pending); err != nil {
		h.met.Counter("authdb_repl_follower_disconnects_total", "reason", "write").Inc()
		return
	}
	for {
		select {
		case <-h.shut:
			h.waitAcked(f)
			return
		case c, live := <-sub.C():
			var batch []engine.Commit
			if live {
				batch = append(batch, c)
				for live && len(batch) < batchMaxStmts {
					select {
					case c2, ok2 := <-sub.C():
						if ok2 {
							batch = append(batch, c2)
						}
						live = ok2
					default:
						goto collected
					}
				}
			}
		collected:
			if next, err = h.sendBatches(f, bw, next, batch); err != nil {
				h.met.Counter("authdb_repl_follower_disconnects_total", "reason", "write").Inc()
				return
			}
			if !live {
				// The engine closed our subscription: this follower fell
				// more than followerBuf commits behind. Drop it; on
				// reconnect it catches up from disk.
				h.met.Counter("authdb_repl_follower_disconnects_total", "reason", "slow").Inc()
				return
			}
		}
	}
}

// sendBatches streams the commits with LSN >= next as REPL_BATCH frames
// (chunked under the frame limits) and returns the next expected LSN.
// Commits below next are the intended overlap between the disk catch-up
// and the live feed and are dropped; a commit above next means the feed
// lost something (cannot happen while the subscription is open) and
// fails the stream.
func (h *Hub) sendBatches(f *follower, bw *bufio.Writer, next uint64, cs []engine.Commit) (uint64, error) {
	i := 0
	for {
		for i < len(cs) && cs[i].LSN < next {
			i++
		}
		if i == len(cs) {
			return next, nil
		}
		if cs[i].LSN != next {
			return next, fmt.Errorf("replica: commit feed gap: have %d, want %d", cs[i].LSN, next)
		}
		from := next
		var stmts []string
		nbytes := 0
		for i < len(cs) && cs[i].LSN == next && len(stmts) < batchMaxStmts && nbytes < batchMaxBytes {
			stmts = append(stmts, cs[i].Stmt)
			nbytes += len(cs[i].Stmt)
			i++
			next++
		}
		start := time.Now()
		f.conn.SetWriteDeadline(start.Add(h.writeTO))
		if err := wire.WriteMsg(bw, wire.ReplBatch{
			Kind: wire.KindReplBatch, From: from, Stmts: stmts,
			Epoch:        h.eng.Epoch(),
			SentUnixNano: start.UnixNano(),
		}); err != nil {
			return next, err
		}
		if err := bw.Flush(); err != nil {
			return next, err
		}
		f.sent.Store(next - 1)
		h.met.Counter("authdb_repl_batches_sent_total").Inc()
		h.met.Counter("authdb_repl_stmts_sent_total").Add(int64(len(stmts)))
		h.met.Histogram("authdb_repl_send_seconds").Observe(time.Since(start).Seconds())
	}
}

// readAcks consumes the follower's ack stream until the connection
// dies; it is the only reader of the connection after the handshake.
func (h *Hub) readAcks(f *follower, br *bufio.Reader) {
	f.conn.SetReadDeadline(time.Time{}) // clear the handshake deadline
	for {
		payload, err := wire.ReadFrame(br)
		if err != nil {
			return
		}
		switch wire.MsgKind(payload) {
		case wire.KindReplAck:
			var ack wire.ReplAck
			if json.Unmarshal(payload, &ack) != nil {
				continue
			}
			if ack.Applied > f.acked.Load() {
				f.acked.Store(ack.Applied)
			}
			h.met.Counter("authdb_repl_acks_total").Inc()
		case wire.KindReplFence:
			// The follower adopted a higher epoch than this stream's: we
			// are a stale primary. Demote and drop the stream — the fence
			// beats finishing the batch in flight.
			var fence wire.ReplFence
			if json.Unmarshal(payload, &fence) != nil {
				continue
			}
			if !h.unsafeNoFencing && fence.Epoch > h.eng.Epoch() {
				h.fenced(fence.Epoch, fence.Leader)
				f.conn.Close()
				return
			}
		}
	}
}

// wireEpochHist converts the engine's history to its wire form.
func wireEpochHist(hist []engine.EpochEntry) []wire.EpochEntry {
	out := make([]wire.EpochEntry, len(hist))
	for i, ent := range hist {
		out[i] = wire.EpochEntry{Epoch: ent.Epoch, StartLSN: ent.StartLSN}
	}
	return out
}

// waitAcked gives a follower a bounded window to ack everything already
// written to it — the graceful-shutdown flush.
func (h *Hub) waitAcked(f *follower) {
	deadline := time.Now().Add(shutFlushWait)
	for time.Now().Before(deadline) {
		if f.acked.Load() >= f.sent.Load() {
			return
		}
		time.Sleep(ackWaitPoll)
	}
}

// Shutdown stops the hub: no new followers are admitted, live streams
// stop at their current batch, and each stream waits (bounded) for the
// follower to ack what was sent. ctx caps the total wait; on expiry
// remaining follower connections are force-closed.
func (h *Hub) Shutdown(ctx context.Context) {
	h.mu.Lock()
	if !h.closed {
		h.closed = true
		close(h.shut)
	}
	h.mu.Unlock()

	done := make(chan struct{})
	go func() { h.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		h.mu.Lock()
		for f := range h.followers {
			f.conn.Close()
		}
		h.mu.Unlock()
		<-done
	}
}
