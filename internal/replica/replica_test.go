// End-to-end tests of WAL-shipping replication: a primary server plus
// real replicas over loopback TCP, driven through pkg/client. The core
// property is the paper's: masking is a pure function of the replicated
// meta-database and the query, so every node returns byte-identical
// masked answers — including the withheld markers and the inferred
// permit footer — before and after permits change. The failure tests
// cover crash-resume from the replica's own persisted LSN, torn WAL
// tails, checkpoint rotation racing bootstrap, and primary restarts.
package replica_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"authdb"
	"authdb/internal/core"
	"authdb/internal/engine"
	"authdb/internal/faultfs"
	"authdb/internal/replica"
	"authdb/internal/server"
	"authdb/internal/wire"
	"authdb/internal/workload"
	"authdb/pkg/client"
)

const replToken = "repl-e2e-token"

func startServer(t *testing.T, db *authdb.DB, cfg server.Config) *server.Server {
	t.Helper()
	cfg.AdminToken = replToken
	s := server.New(db, cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// newPrimary boots a durable primary server.
func newPrimary(t *testing.T) (*authdb.DB, *server.Server) {
	t.Helper()
	db, err := authdb.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, startServer(t, db, server.Config{})
}

// followCfg is the test replica configuration: fast reconnects so
// failure tests converge quickly.
func followCfg(primary string) replica.Config {
	return replica.Config{
		Primary:    primary,
		Token:      replToken,
		BackoffMin: 10 * time.Millisecond,
		BackoffMax: 250 * time.Millisecond,
	}
}

// newReplicaNode boots a durable replica: its own engine following the
// primary, served read-only.
func newReplicaNode(t *testing.T, primaryAddr string) (*authdb.DB, *replica.Replica, *server.Server) {
	t.Helper()
	db, err := authdb.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	rep := replica.Start(db.Engine(), followCfg(primaryAddr))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		rep.Stop(ctx)
	})
	srv := startServer(t, db, server.Config{ReadOnlyPrimary: primaryAddr})
	return db, rep, srv
}

// waitLSN blocks until eng reaches LSN want (or the test deadline).
func waitLSN(t *testing.T, eng *engine.Engine, want uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for eng.LSN() < want {
		if time.Now().After(deadline) {
			t.Fatalf("engine stuck at LSN %d, want %d", eng.LSN(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func dial(t *testing.T, addr string, opts ...client.Option) *client.Client {
	t.Helper()
	c, err := client.Dial(addr, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// stateEqual compares two engines' complete states byte-for-byte via
// their replication snapshots.
func stateEqual(t *testing.T, a, b *engine.Engine) bool {
	t.Helper()
	af, alsn, _, err := a.ReplSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	bf, blsn, _, err := b.ReplSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if alsn != blsn || len(af) != len(bf) {
		return false
	}
	for name, blob := range af {
		if !bytes.Equal(blob, bf[name]) {
			return false
		}
	}
	return true
}

// TestPrimaryTwoReplicasByteIdentical is the headline property: a
// primary and two replicas answer every principal's queries with
// byte-identical rendered output — cells, withheld markers, inferred
// permit footer — and stay identical as permits are granted and
// revoked on the primary.
func TestPrimaryTwoReplicasByteIdentical(t *testing.T) {
	db, srv := newPrimary(t)
	db.Admin().MustExecScript(workload.PaperScript)
	// Checkpoint so the first replica bootstraps by snapshot; the WAL
	// tail and live-feed paths are exercised by the statements below.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	paddr := srv.Addr().String()

	rdb1, _, rsrv1 := newReplicaNode(t, paddr)
	rdb2, _, rsrv2 := newReplicaNode(t, paddr)
	waitLSN(t, rdb1.Engine(), db.Engine().LSN())
	waitLSN(t, rdb2.Engine(), db.Engine().LSN())

	addrs := map[string]string{
		"primary":  paddr,
		"replica1": rsrv1.Addr().String(),
		"replica2": rsrv2.Addr().String(),
	}
	queries := []string{
		"retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY)",
		"retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE, EMPLOYEE.SALARY)",
		"retrieve (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET)",
		"retrieve (EMPLOYEE.NAME, PROJECT.NUMBER) where EMPLOYEE.NAME = ASSIGNMENT.E_NAME and PROJECT.NUMBER = ASSIGNMENT.P_NO",
	}
	compareAll := func(tag string) {
		t.Helper()
		for _, user := range []string{"Brown", "Klein", "Nobody"} {
			clients := make(map[string]*client.Client, len(addrs))
			for node, addr := range addrs {
				clients[node] = dial(t, addr, client.WithUser(user))
			}
			for _, q := range queries {
				want, err := clients["primary"].Exec(context.Background(), q)
				if err != nil {
					t.Fatalf("%s: primary %s for %s: %v", tag, q, user, err)
				}
				for _, node := range []string{"replica1", "replica2"} {
					got, err := clients[node].Exec(context.Background(), q)
					if err != nil {
						t.Fatalf("%s: %s %s for %s: %v", tag, node, q, user, err)
					}
					if got.Rendered != want.Rendered {
						t.Errorf("%s: %s diverges for %s on %q:\nreplica:\n%s\nprimary:\n%s",
							tag, node, user, q, got.Rendered, want.Rendered)
					}
					if fmt.Sprint(got.Permits) != fmt.Sprint(want.Permits) {
						t.Errorf("%s: %s permit footer for %s on %q: %v, want %v",
							tag, node, user, q, got.Permits, want.Permits)
					}
					if got.Denied != want.Denied || got.FullyAuthorized != want.FullyAuthorized {
						t.Errorf("%s: %s flags for %s on %q: (denied %v, full %v), want (%v, %v)",
							tag, node, user, q, got.Denied, got.FullyAuthorized, want.Denied, want.FullyAuthorized)
					}
				}
			}
		}
	}
	compareAll("bootstrap")

	// Permit propagation: a new view and grant on the primary must
	// change every node's masking identically.
	admin := dial(t, paddr, client.WithAdmin("root", replToken))
	for _, stmt := range []string{
		"view NTV (EMPLOYEE.NAME, EMPLOYEE.TITLE)",
		"permit NTV to Nobody",
	} {
		if _, err := admin.Exec(context.Background(), stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	waitLSN(t, rdb1.Engine(), db.Engine().LSN())
	waitLSN(t, rdb2.Engine(), db.Engine().LSN())
	nobody := dial(t, rsrv1.Addr().String(), client.WithUser("Nobody"))
	if res, err := nobody.Exec(context.Background(), "retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE)"); err != nil || res.Denied {
		t.Fatalf("replica did not apply the new permit: res %+v, err %v", res, err)
	}
	compareAll("after permit")

	// Revoke propagation closes the grant everywhere.
	if _, err := admin.Exec(context.Background(), "revoke NTV from Nobody"); err != nil {
		t.Fatal(err)
	}
	waitLSN(t, rdb1.Engine(), db.Engine().LSN())
	waitLSN(t, rdb2.Engine(), db.Engine().LSN())
	compareAll("after revoke")

	if !stateEqual(t, db.Engine(), rdb1.Engine()) || !stateEqual(t, db.Engine(), rdb2.Engine()) {
		t.Error("replica state not byte-identical to the primary")
	}
}

// TestReplicaRefusesWrites: every mutating statement on a replica —
// even from an administrator — fails with READ_ONLY naming the
// primary.
func TestReplicaRefusesWrites(t *testing.T) {
	db, srv := newPrimary(t)
	db.Admin().MustExecScript(workload.PaperScript)
	paddr := srv.Addr().String()
	rdb, _, rsrv := newReplicaNode(t, paddr)
	waitLSN(t, rdb.Engine(), db.Engine().LSN())

	for _, tc := range []struct {
		opts []client.Option
		stmt string
	}{
		{[]client.Option{client.WithUser("Brown")}, "insert into EMPLOYEE values (Evil, clerk, 1)"},
		{[]client.Option{client.WithAdmin("root", replToken)}, "insert into EMPLOYEE values (Evil, clerk, 1)"},
		{[]client.Option{client.WithAdmin("root", replToken)}, "permit SAE to Nobody"},
	} {
		c := dial(t, rsrv.Addr().String(), tc.opts...)
		_, err := c.Exec(context.Background(), tc.stmt)
		var se *client.ServerError
		if !errors.As(err, &se) || se.Code != wire.CodeReadOnly {
			t.Fatalf("%s on replica: err %v, want code %s", tc.stmt, err, wire.CodeReadOnly)
		}
		if !strings.Contains(se.Message, paddr) {
			t.Errorf("READ_ONLY message %q does not name the primary %s", se.Message, paddr)
		}
		// Reads on the same connection still work.
		if res, err := c.Exec(context.Background(), "retrieve (EMPLOYEE.NAME)"); err != nil || res.Rendered == "" {
			t.Fatalf("read after refused write: res %+v, err %v", res, err)
		}
	}
}

// TestReplicaKillMidBatchResumes crashes a replica in the middle of
// applying a batch — a torn record on its own WAL, via fault
// injection — then reopens the directory and verifies the stream
// resumes from the persisted LSN: no statement re-applied (the LSNs
// would diverge), none skipped (the gap check would fail the stream),
// final state byte-identical.
func TestReplicaKillMidBatchResumes(t *testing.T) {
	db, srv := newPrimary(t)
	admin := db.Admin()
	admin.MustExecScript("relation FEED (K, V) key (K);\n")
	paddr := srv.Addr().String()

	dir := t.TempDir()
	fs := faultfs.NewFaulty(faultfs.OS())
	fs.ShortWrites = true
	eng, err := engine.OpenDurableFS(fs, dir, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := replica.Start(eng, followCfg(paddr))
	waitLSN(t, eng, db.Engine().LSN())

	// Arm the fault a few filesystem operations out, then keep writing:
	// some apply's WAL append dies partway (a short write — exactly a
	// torn tail), the engine fails stop, and the stream drops.
	fs.Arm(3)
	for i := 0; !fs.Tripped(); i++ {
		if i > 1000 {
			t.Fatal("fault never tripped")
		}
		if _, err := admin.Exec(fmt.Sprintf("insert into FEED values (k%d, v)", i)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := rep.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	crashLSN := eng.LSN()
	eng.Close()

	// "Restart the process": reopen the directory on the real
	// filesystem. Recovery keeps the valid WAL prefix and drops the torn
	// record, so the persisted LSN may trail the crash point.
	recovered, err := engine.OpenDurable(dir, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recovered.Close() })
	if got := recovered.LSN(); got > crashLSN {
		t.Fatalf("recovered LSN %d exceeds crash LSN %d", got, crashLSN)
	}

	rep2 := replica.Start(recovered, followCfg(paddr))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		rep2.Stop(ctx)
	})
	// More primary writes after the restart land too.
	for i := 0; i < 5; i++ {
		if _, err := admin.Exec(fmt.Sprintf("insert into FEED values (post%d, v)", i)); err != nil {
			t.Fatal(err)
		}
	}
	waitLSN(t, recovered, db.Engine().LSN())
	if recovered.LSN() != db.Engine().LSN() {
		t.Fatalf("replica LSN %d, primary %d: a statement was re-applied or skipped",
			recovered.LSN(), db.Engine().LSN())
	}
	if !stateEqual(t, db.Engine(), recovered) {
		t.Fatal("replica state differs from the primary after crash-resume")
	}
}

// TestReplicaWALTruncatedAtPartialRecord cuts the replica's own WAL
// mid-record while it is down — the torn-tail shape a crash leaves —
// and verifies the reopen recovers the valid prefix and the stream
// refills the difference.
func TestReplicaWALTruncatedAtPartialRecord(t *testing.T) {
	db, srv := newPrimary(t)
	admin := db.Admin()
	admin.MustExecScript("relation FEED (K, V) key (K);\n")
	for i := 0; i < 10; i++ {
		if _, err := admin.Exec(fmt.Sprintf("insert into FEED values (k%d, v)", i)); err != nil {
			t.Fatal(err)
		}
	}

	dir := t.TempDir()
	eng, err := engine.OpenDurable(dir, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := replica.Start(eng, followCfg(srv.Addr().String()))
	waitLSN(t, eng, db.Engine().LSN())
	before := eng.LSN()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := rep.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	eng.Close()

	// Truncate the current generation's WAL into the middle of its last
	// record.
	cur, err := os.ReadFile(filepath.Join(dir, "CURRENT"))
	if err != nil {
		t.Fatal(err)
	}
	var gen uint64
	if _, err := fmt.Sscanf(strings.TrimSpace(string(cur)), "snap-%d", &gen); err != nil {
		t.Fatalf("malformed CURRENT %q: %v", cur, err)
	}
	walPath := filepath.Join(dir, fmt.Sprintf("wal-%06d.log", gen))
	info, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() < 4 {
		t.Fatalf("replica WAL only %d bytes; expected the applied stream", info.Size())
	}
	if err := os.Truncate(walPath, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	recovered, err := engine.OpenDurable(dir, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recovered.Close() })
	if got := recovered.LSN(); got != before-1 {
		t.Fatalf("recovered LSN %d, want %d (valid prefix without the torn record)", got, before-1)
	}

	rep2 := replica.Start(recovered, followCfg(srv.Addr().String()))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		rep2.Stop(ctx)
	})
	waitLSN(t, recovered, db.Engine().LSN())
	if !stateEqual(t, db.Engine(), recovered) {
		t.Fatal("replica state differs from the primary after torn-tail recovery")
	}
}

// TestBootstrapRacesCheckpoints attaches replicas while the primary is
// writing and checkpointing concurrently, so bootstrap races
// generation rotation (the WALTail stability loop and its snapshot
// fallback). Run under -race this also exercises the locking.
func TestBootstrapRacesCheckpoints(t *testing.T) {
	db, srv := newPrimary(t)
	admin := db.Admin()
	admin.MustExecScript("relation FEED (K, V) key (K);\n")
	paddr := srv.Addr().String()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if _, err := admin.Exec(fmt.Sprintf("insert into FEED values (k%d, v)", i)); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
			if i%20 == 19 {
				if err := db.Checkpoint(); err != nil {
					t.Errorf("checkpoint: %v", err)
					return
				}
			}
		}
	}()
	rdb1, _, _ := newReplicaNode(t, paddr)
	time.Sleep(20 * time.Millisecond)
	rdb2, _, _ := newReplicaNode(t, paddr)
	wg.Wait()

	waitLSN(t, rdb1.Engine(), db.Engine().LSN())
	waitLSN(t, rdb2.Engine(), db.Engine().LSN())
	if !stateEqual(t, db.Engine(), rdb1.Engine()) || !stateEqual(t, db.Engine(), rdb2.Engine()) {
		t.Fatal("replica state differs after bootstrap raced checkpoints")
	}
}

// TestReplicaReconnectsAfterPrimaryRestart stops the primary's server,
// keeps writing, restarts a server for the same engine on the same
// address, and verifies the replica reconnects (jittered backoff) and
// catches up from its position — the WAL-tail resume path.
func TestReplicaReconnectsAfterPrimaryRestart(t *testing.T) {
	db, err := authdb.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	admin := db.Admin()
	admin.MustExecScript("relation FEED (K, V) key (K);\n")
	srv1 := server.New(db, server.Config{AdminToken: replToken})
	if err := srv1.Start(); err != nil {
		t.Fatal(err)
	}
	paddr := srv1.Addr().String()

	rdb, rep, _ := newReplicaNode(t, paddr)
	waitLSN(t, rdb.Engine(), db.Engine().LSN())

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// Writes continue while no server is listening.
	for i := 0; i < 5; i++ {
		if _, err := admin.Exec(fmt.Sprintf("insert into FEED values (down%d, v)", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Rebind the same address (retrying briefly for the port to free).
	var srv2 *server.Server
	for attempt := 0; ; attempt++ {
		srv2 = server.New(db, server.Config{Addr: paddr, AdminToken: replToken})
		if err := srv2.Start(); err == nil {
			break
		} else if attempt > 50 {
			t.Fatalf("rebinding %s: %v", paddr, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		srv2.Shutdown(ctx)
	})

	waitLSN(t, rdb.Engine(), db.Engine().LSN())
	if !stateEqual(t, db.Engine(), rdb.Engine()) {
		t.Fatal("replica state differs after primary restart")
	}
	if !strings.Contains(rdb.Metrics().Text(), "authdb_repl_reconnects_total") {
		t.Error("reconnect not counted in the replica's metrics")
	}
	_ = rep
}

// TestReplicationMetrics spot-checks the replication gauges and
// counters on both sides of a live stream.
func TestReplicationMetrics(t *testing.T) {
	db, srv := newPrimary(t)
	db.Admin().MustExecScript(workload.PaperScript)
	rdb, rep, _ := newReplicaNode(t, srv.Addr().String())
	waitLSN(t, rdb.Engine(), db.Engine().LSN())

	deadline := time.Now().Add(15 * time.Second)
	for {
		if lsns, _ := rep.Lag(); lsns == 0 && rep.Connected() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replica never reported connected with zero lag")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ptxt := db.Metrics().Text()
	for _, want := range []string{"authdb_repl_followers 1", "authdb_repl_batches_sent_total"} {
		if !strings.Contains(ptxt, want) {
			t.Errorf("primary metrics missing %q", want)
		}
	}
	rtxt := rdb.Metrics().Text()
	for _, want := range []string{"authdb_repl_connected 1", "authdb_repl_lag_lsns 0", "authdb_repl_batches_applied_total"} {
		if !strings.Contains(rtxt, want) {
			t.Errorf("replica metrics missing %q", want)
		}
	}
}
