// Failover tests: promotion, epoch fencing, divergence quarantine, and
// the slow-follower disconnect path. These drive the same production
// stack as replica_test.go — real servers over loopback TCP — plus a
// net.Pipe harness for the hub's backpressure behavior, which needs a
// connection whose writes block until the peer reads.
package replica_test

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"authdb"
	"authdb/internal/replica"
	"authdb/internal/server"
	"authdb/internal/wire"
	"authdb/pkg/client"
)

// rawWriteProbe sends one mutating statement over a raw wire
// connection (no client-side hint following) and returns the server's
// error, nil on success.
func rawWriteProbe(t *testing.T, addr, stmt string) *wire.Error {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br, bw := bufio.NewReader(nc), bufio.NewWriter(nc)
	if err := wire.WriteMsg(bw, wire.Hello{
		Proto: wire.ProtoVersion, User: "root", Admin: true, Token: replToken,
	}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	var hr wire.HelloReply
	if err := wire.ReadMsg(br, &hr); err != nil || !hr.OK {
		t.Fatalf("probe handshake: %+v, %v", hr, err)
	}
	if err := wire.WriteMsg(bw, wire.Request{ID: 1, Stmt: stmt}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	var resp wire.Response
	if err := wire.ReadMsg(br, &resp); err != nil {
		t.Fatal(err)
	}
	return resp.Error
}

// newClusterReplica boots a durable replica node wired for failover:
// the follower loop is attached to its server (so \promote and /readyz
// work) and the server knows its peers. Returns the node and its
// durable directory (for quarantine inspection).
func newClusterReplica(t *testing.T, primaries, peers []string) (*authdb.DB, *replica.Replica, *server.Server, string) {
	t.Helper()
	dir := t.TempDir()
	db, err := authdb.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	cfg := followCfg(primaries[0])
	cfg.Primaries = primaries
	rep := replica.Start(db.Engine(), cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		rep.Stop(ctx)
	})
	srv := startServer(t, db, server.Config{
		ReadOnlyPrimary: primaries[0],
		Peers:           peers,
		MetricsAddr:     "127.0.0.1:0",
	})
	srv.AttachReplica(rep)
	return db, rep, srv, dir
}

// TestPromoteFailover is the planned-failover path: the primary dies,
// an administrator promotes replica 1, and replica 2 — configured with
// both addresses — finds the new leader by rotation, adopts the bumped
// epoch, and keeps replicating. Writes accepted by the new primary
// reach it; the epoch is 2 everywhere.
func TestPromoteFailover(t *testing.T) {
	pdir := t.TempDir()
	pdb, err := authdb.OpenDir(pdir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pdb.Close() })
	admin := pdb.Admin()
	admin.MustExecScript("relation FEED (K, V) key (K);\n")
	for i := 0; i < 10; i++ {
		admin.MustExec(fmt.Sprintf("insert into FEED values (k%d, v)", i))
	}
	psrv := server.New(pdb, server.Config{AdminToken: replToken})
	if err := psrv.Start(); err != nil {
		t.Fatal(err)
	}
	paddr := psrv.Addr().String()

	rdb1, _, rsrv1, _ := newClusterReplica(t, []string{paddr}, nil)
	r1addr := rsrv1.Addr().String()
	rdb2, _, rsrv2, _ := newClusterReplica(t, []string{paddr, r1addr}, nil)
	waitLSN(t, rdb1.Engine(), pdb.Engine().LSN())
	waitLSN(t, rdb2.Engine(), pdb.Engine().LSN())

	// A non-administrator must not be able to promote.
	pleb := dial(t, r1addr, client.WithUser("Brown"))
	var se *client.ServerError
	if _, err := pleb.Exec(context.Background(), `\promote`); !errors.As(err, &se) || se.Code != wire.CodeNotAuthorized {
		t.Fatalf(`non-admin \promote: err %v, want %s`, err, wire.CodeNotAuthorized)
	}

	// The primary dies.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := psrv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Promote replica 1.
	op := dial(t, r1addr, client.WithAdmin("root", replToken))
	res, err := op.Exec(context.Background(), `\promote`)
	if err != nil {
		t.Fatalf(`\promote: %v`, err)
	}
	if !strings.Contains(res.Text, "epoch 2") {
		t.Fatalf(`\promote answered %q, want the new epoch`, res.Text)
	}
	if rsrv1.Role() != "primary" || rdb1.Engine().Epoch() != 2 {
		t.Fatalf("after promote: role %s epoch %d, want primary epoch 2",
			rsrv1.Role(), rdb1.Engine().Epoch())
	}
	// Promoting an existing primary is a no-op, not a second bump.
	if _, err := op.Exec(context.Background(), `\promote`); err != nil {
		t.Fatalf(`re-\promote: %v`, err)
	}
	if got := rdb1.Engine().Epoch(); got != 2 {
		t.Fatalf("re-promote bumped the epoch to %d", got)
	}

	// The new primary accepts writes; replica 2 rotates to it and adopts
	// the new epoch.
	if _, err := op.Exec(context.Background(), "insert into FEED values (post-failover, v)"); err != nil {
		t.Fatalf("write on promoted primary: %v", err)
	}
	waitLSN(t, rdb2.Engine(), rdb1.Engine().LSN())
	if got := rdb2.Engine().Epoch(); got != 2 {
		t.Fatalf("replica 2 epoch %d, want 2", got)
	}
	if !stateEqual(t, rdb1.Engine(), rdb2.Engine()) {
		t.Fatal("replica 2 state differs from the promoted primary")
	}
	if rsrv2.Role() != "replica" {
		t.Fatalf("replica 2 role %s, want replica", rsrv2.Role())
	}

	// Writes against replica 2 are refused with a hint at the promoted
	// leader (raw probe: the client would follow the hint)...
	we := rawWriteProbe(t, rsrv2.Addr().String(), "insert into FEED values (nope, v)")
	if we == nil || we.Code != wire.CodeReadOnly {
		t.Fatalf("raw write on replica 2: %+v, want %s", we, wire.CodeReadOnly)
	}
	if we.Leader != r1addr {
		t.Errorf("leader hint %q, want %q", we.Leader, r1addr)
	}
	// ...and a cluster client pointed only at replica 2 lands the write
	// on the leader by following that hint (plain Dial clients stay
	// pinned and surface the refusal — see TestReplicaRefusesWrites).
	w, err := client.DialCluster([]string{rsrv2.Addr().String()}, client.WithAdmin("root", replToken))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	if _, err := w.Exec(context.Background(), "insert into FEED values (via-hint, v)"); err != nil {
		t.Fatalf("hint-following write: %v", err)
	}
	if w.Addr() != r1addr {
		t.Errorf("hint-following client connected to %q, want the leader %q", w.Addr(), r1addr)
	}
}

// TestFencedExPrimaryQuarantinesAndRejoins is the split-brain path: B
// is promoted while A still believes it is the primary, A accepts a
// divergent write under its stale epoch, and then a higher-epoch
// follower contacts A. A must demote (STALE_PRIMARY to clients, with a
// leader hint), quarantine the divergent suffix — never silently drop
// it — and rejoin the cluster as a follower of B, converging
// byte-identically.
func TestFencedExPrimaryQuarantinesAndRejoins(t *testing.T) {
	adir := t.TempDir()
	adb, err := authdb.OpenDir(adir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { adb.Close() })
	adb.Admin().MustExecScript("relation FEED (K, V) key (K);\n")
	adb.Admin().MustExec("insert into FEED values (shared, v)")

	// B's address isn't known until it starts, and A's peers are fixed at
	// config time; start B first by giving it A's address afterwards via
	// the rotation. Order: bind A, then B with A as primary, then tell A
	// about B through Peers — so A is built last.
	bdbDir := t.TempDir()
	bdb, err := authdb.OpenDir(bdbDir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bdb.Close() })

	asrv := server.New(adb, server.Config{AdminToken: replToken})
	if err := asrv.Start(); err != nil {
		t.Fatal(err)
	}
	aaddr := asrv.Addr().String()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		asrv.Shutdown(ctx)
	})

	bcfg := followCfg(aaddr)
	brep := replica.Start(bdb.Engine(), bcfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		brep.Stop(ctx)
	})
	bsrv := startServer(t, bdb, server.Config{ReadOnlyPrimary: aaddr})
	bsrv.AttachReplica(brep)
	baddr := bsrv.Addr().String()
	waitLSN(t, bdb.Engine(), adb.Engine().LSN())

	// Rebuild A's server config is not possible; instead A's demote path
	// takes the leader from the fence itself, so no Peers are required
	// for this test's rejoin — the fencing hello names B.
	if _, err := bsrv.Promote(context.Background()); err != nil {
		t.Fatalf("promoting B: %v", err)
	}
	if bdb.Engine().Epoch() != 2 {
		t.Fatalf("B epoch %d, want 2", bdb.Engine().Epoch())
	}
	// B moves on without A: a write lands on the new timeline.
	bdb.Admin().MustExec("insert into FEED values (new-timeline, v)")

	// A, oblivious, accepts a divergent write under epoch 1.
	adb.Admin().MustExec("insert into FEED values (divergent, v)")
	divergentLSN := adb.Engine().LSN()

	// A higher-epoch follower contacts A — the moment A learns it was
	// superseded. Simulate it with a raw replication hello carrying
	// epoch 2 and B as leader.
	nc, err := net.Dial("tcp", aaddr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	bw := bufio.NewWriter(nc)
	if err := wire.WriteMsg(bw, wire.ReplHello{
		Kind: wire.KindReplHello, Proto: wire.ProtoVersion, Token: replToken,
		From: bdb.Engine().LSN(), Name: "messenger", Epoch: 2, Leader: baddr,
	}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	var reply wire.ReplHelloReply
	if err := wire.ReadMsg(bufio.NewReader(nc), &reply); err != nil {
		t.Fatal(err)
	}
	if reply.OK || reply.Error == nil || reply.Error.Code != wire.CodeStalePrimary {
		t.Fatalf("fencing hello got %+v, want a %s refusal", reply, wire.CodeStalePrimary)
	}

	// A is demoted: clients get STALE_PRIMARY with B as the leader hint.
	if asrv.Role() != "replica" {
		t.Fatalf("fenced A role %s, want replica", asrv.Role())
	}
	we := rawWriteProbe(t, aaddr, "insert into FEED values (nope, v)")
	if we == nil || we.Code != wire.CodeStalePrimary {
		t.Fatalf("raw write on fenced A: %+v, want %s", we, wire.CodeStalePrimary)
	}
	if we.Leader != baddr {
		t.Errorf("fenced A's leader hint %q, want %q", we.Leader, baddr)
	}

	// A rejoins B as a follower: the divergent write is quarantined, the
	// states converge, the epoch is adopted.
	waitLSN(t, adb.Engine(), bdb.Engine().LSN())
	deadline := time.Now().Add(15 * time.Second)
	for !stateEqual(t, adb.Engine(), bdb.Engine()) {
		if time.Now().After(deadline) {
			t.Fatal("A never converged with B after rejoining")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := adb.Engine().Epoch(); got != 2 {
		t.Fatalf("rejoined A epoch %d, want 2", got)
	}
	matches, err := filepath.Glob(filepath.Join(adir, "diverged-*"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no quarantine directory in %s (err %v): the divergent write was silently dropped", adir, err)
	}
	info, err := os.ReadFile(filepath.Join(matches[0], "INFO"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(info), fmt.Sprintf("lsn %d", divergentLSN)) {
		t.Errorf("quarantine INFO %q does not record the divergent LSN %d", info, divergentLSN)
	}
	// The divergent tuple must be gone from A's serving state...
	res, err := dial(t, aaddr, client.WithAdmin("root", replToken)).
		Exec(context.Background(), "retrieve (FEED.K) where FEED.K = divergent")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.Rendered, "divergent") {
		t.Error("divergent tuple still visible after rejoin")
	}
	// ...and the failover counter visible in A's metrics.
	if !strings.Contains(adb.Metrics().Text(), `authdb_failover_total{kind="demote"} 1`) {
		t.Error("demotion not counted in authdb_failover_total")
	}
}

// TestReadyz drives the /readyz satellite: a primary reports ready with
// role and epoch; a replica is unready until bootstrapped and ready
// once following.
func TestReadyz(t *testing.T) {
	pdb, psrv := newPrimary(t)
	pdb.Admin().MustExecScript("relation FEED (K, V) key (K);\n")
	paddr := psrv.Addr().String()

	// The primary has no MetricsAddr in newPrimary; start a fresh one.
	psrv2 := startServer(t, pdb, server.Config{MetricsAddr: "127.0.0.1:0"})
	get := func(srv *server.Server) (int, string) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s/readyz", srv.MetricsAddr()))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	code, body := get(psrv2)
	if code != http.StatusOK || !strings.Contains(body, "role=primary") || !strings.Contains(body, "epoch=1") {
		t.Fatalf("primary /readyz = %d %q", code, body)
	}

	// A replica server with no follower attached is unready.
	odb, err := authdb.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { odb.Close() })
	orphan := startServer(t, odb, server.Config{ReadOnlyPrimary: paddr, MetricsAddr: "127.0.0.1:0"})
	if code, body := get(orphan); code != http.StatusServiceUnavailable {
		t.Fatalf("orphan replica /readyz = %d %q, want 503", code, body)
	}

	// A following replica becomes ready once bootstrapped and caught up.
	rdb, rep, rsrv, _ := newClusterReplica(t, []string{paddr}, nil)
	waitLSN(t, rdb.Engine(), pdb.Engine().LSN())
	deadline := time.Now().Add(15 * time.Second)
	for {
		code, body = get(rsrv)
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica /readyz never ready: %d %q", code, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(body, "role=replica") || !strings.Contains(body, "epoch=1") {
		t.Fatalf("replica /readyz body %q, want role=replica at epoch=1", body)
	}
	_ = rep
}

// TestSlowFollowerDisconnectsAndCatchesUp pins the backpressure
// contract: a follower that stops reading is disconnected — by commit
// feed overflow or a blocked write, whichever hits first — rather than
// wedging the primary, and a reconnecting follower catches up cleanly
// via snapshot or tail. net.Pipe gives the unbuffered connection the
// blocked-write half needs.
func TestSlowFollowerDisconnectsAndCatchesUp(t *testing.T) {
	db, err := authdb.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	admin := db.Admin()
	admin.MustExecScript("relation FEED (K, V) key (K);\n")

	hub := replica.NewHub(db.Engine())
	hub.SetFollowerBuffer(4)
	hub.SetWriteTimeout(200 * time.Millisecond)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		hub.Shutdown(ctx)
	})

	fside, pside := net.Pipe()
	t.Cleanup(func() { fside.Close(); pside.Close() })
	done := make(chan struct{})
	go func() {
		defer close(done)
		hub.HandleConn(pside, bufio.NewReader(pside), wire.ReplHello{
			Kind: wire.KindReplHello, Proto: wire.ProtoVersion,
			From: db.Engine().DurableLSN(), Name: "slow", Epoch: db.Engine().Epoch(),
		})
	}()
	var reply wire.ReplHelloReply
	if err := wire.ReadMsg(bufio.NewReader(fside), &reply); err != nil || !reply.OK {
		t.Fatalf("handshake: %+v, %v", reply, err)
	}
	// The follower now stops reading entirely. Keep writing on the
	// primary until the hub gives up on it.
	for i := 0; i < 5000; i++ {
		select {
		case <-done:
		default:
			admin.MustExec(fmt.Sprintf("insert into FEED values (k%d, v)", i))
			time.Sleep(time.Millisecond)
			continue
		}
		break
	}
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("hub never disconnected the stalled follower")
	}
	txt := db.Metrics().Text()
	if !strings.Contains(txt, "authdb_repl_follower_disconnects_total") {
		t.Error("slow-follower disconnect not counted")
	}

	// The primary was never wedged: it kept accepting writes above. Now a
	// real follower catches up from disk — no stream gap, identical state.
	srv := startServer(t, db, server.Config{})
	rdb, _, _ := newReplicaNode(t, srv.Addr().String())
	waitLSN(t, rdb.Engine(), db.Engine().LSN())
	if !stateEqual(t, db.Engine(), rdb.Engine()) {
		t.Fatal("follower state differs after slow-follower recovery")
	}
}
