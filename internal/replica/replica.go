// The follower side: a Replica dials the primary, bootstraps (snapshot
// or WAL tail), then applies the live statement stream through its own
// engine — which journals to the replica's own WAL, so the position
// survives a crash and the next connection resumes from the persisted
// LSN. The connection loop reconnects forever with jittered exponential
// backoff; Stop ends it.
package replica

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"authdb/internal/engine"
	"authdb/internal/guard"
	"authdb/internal/metrics"
	"authdb/internal/wire"
)

// Config tunes a Replica's connection to its primary.
type Config struct {
	// Primary is the primary's wire-protocol address.
	Primary string
	// Primaries lists every address that might be (or become) the
	// primary; the replica rotates through them on failure and jumps to
	// leader hints carried by STALE_PRIMARY refusals. When empty,
	// Primary alone is used.
	Primaries []string
	// Token authenticates the stream (the primary's admin token).
	Token string
	// Name labels this follower in the primary's metrics.
	Name string
	// DialTimeout bounds one connection attempt (default 5s).
	DialTimeout time.Duration
	// BackoffMin and BackoffMax bound the jittered exponential
	// reconnect backoff (defaults 100ms and 5s).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// Dial overrides the dialer (tests inject failing connections).
	Dial func(ctx context.Context, addr string) (net.Conn, error)
	// Logf, when set, receives connection lifecycle messages.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if len(c.Primaries) == 0 && c.Primary != "" {
		c.Primaries = []string{c.Primary}
	}
	if c.Primary == "" && len(c.Primaries) > 0 {
		c.Primary = c.Primaries[0]
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.Dial == nil {
		c.Dial = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Replica follows a primary, applying its statement stream to eng.
type Replica struct {
	eng *engine.Engine
	cfg Config
	met *metrics.Registry

	stop chan struct{}
	done chan struct{}

	connected atomic.Bool
	// bootstrapped flips once the first handshake completes (snapshot
	// installed or tail accepted); /readyz gates on it.
	bootstrapped atomic.Bool
	// primaryLSN is the highest LSN the primary has announced (the end
	// of the last received batch); lag is primaryLSN - engine LSN.
	primaryLSN atomic.Uint64
	// behindNanos is the age of the last applied batch (primary send
	// time to apply time), zero when caught up.
	behindNanos atomic.Int64

	// addrMu guards the rotation through cfg.Primaries, the pending
	// leader hint, and the last address that accepted a stream.
	addrMu  sync.Mutex
	addrIdx int
	hint    string
	leader  string
}

// Start connects eng to the primary described by cfg and keeps it
// following until Stop. The returned Replica is already running.
func Start(eng *engine.Engine, cfg Config) *Replica {
	cfg.fill()
	r := &Replica{
		eng:  eng,
		cfg:  cfg,
		met:  eng.Metrics(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	r.met.GaugeFunc("authdb_repl_connected", func() float64 {
		if r.connected.Load() {
			return 1
		}
		return 0
	})
	r.met.GaugeFunc("authdb_repl_lag_lsns", func() float64 {
		lsns, _ := r.Lag()
		return float64(lsns)
	})
	r.met.GaugeFunc("authdb_repl_lag_seconds", func() float64 {
		_, secs := r.Lag()
		return secs
	})
	go r.run()
	return r
}

// Lag reports how far the replica trails the primary: the LSN delta
// against the last position the primary announced, and the age of the
// last applied batch (zero when caught up). Both are zero before the
// first connection.
func (r *Replica) Lag() (lsns uint64, seconds float64) {
	p, own := r.primaryLSN.Load(), r.eng.LSN()
	if p > own {
		lsns = p - own
	}
	if lsns > 0 {
		seconds = time.Duration(r.behindNanos.Load()).Seconds()
	}
	return lsns, seconds
}

// Connected reports whether a stream to the primary is live.
func (r *Replica) Connected() bool { return r.connected.Load() }

// Bootstrapped reports whether the replica has completed at least one
// handshake (snapshot installed, or its position accepted for tailing)
// since Start; /readyz answers 503 until then.
func (r *Replica) Bootstrapped() bool { return r.bootstrapped.Load() }

// Leader returns the address of the last primary that accepted a
// stream — the replica's best knowledge of where the leader is (""
// before the first successful handshake).
func (r *Replica) Leader() string {
	r.addrMu.Lock()
	defer r.addrMu.Unlock()
	return r.leader
}

// setHint records a leader hint from a refusal; the next dial tries it
// first.
func (r *Replica) setHint(addr string) {
	if addr == "" {
		return
	}
	r.addrMu.Lock()
	r.hint = addr
	r.addrMu.Unlock()
}

// nextAddr picks the dial target: a pending leader hint wins, else the
// current slot of the rotation.
func (r *Replica) nextAddr() string {
	r.addrMu.Lock()
	defer r.addrMu.Unlock()
	if r.hint != "" {
		a := r.hint
		r.hint = ""
		return a
	}
	return r.cfg.Primaries[r.addrIdx%len(r.cfg.Primaries)]
}

// rotateAddr advances the rotation after a failed stream.
func (r *Replica) rotateAddr() {
	r.addrMu.Lock()
	r.addrIdx++
	r.addrMu.Unlock()
}

// Stop ends the follower loop and waits for it (bounded by ctx).
func (r *Replica) Stop(ctx context.Context) error {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	select {
	case <-r.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// run is the reconnect loop: stream until the connection dies, then
// redial under jittered exponential backoff (reset after any session
// that made progress).
func (r *Replica) run() {
	defer close(r.done)
	backoff := r.cfg.BackoffMin
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		addr := r.nextAddr()
		applied, err := r.stream(addr)
		r.connected.Store(false)
		select {
		case <-r.stop:
			return
		default:
		}
		if err != nil {
			r.cfg.Logf("replica: stream to %s: %v", addr, err)
			r.met.Counter("authdb_repl_reconnects_total").Inc()
			r.rotateAddr()
		}
		if applied > 0 {
			backoff = r.cfg.BackoffMin
		}
		// Full jitter: sleep a uniform fraction of the current backoff
		// so a herd of replicas doesn't redial in lockstep.
		sleep := time.Duration(rand.Int63n(int64(backoff)) + int64(backoff)/2)
		select {
		case <-r.stop:
			return
		case <-time.After(sleep):
		}
		if backoff *= 2; backoff > r.cfg.BackoffMax {
			backoff = r.cfg.BackoffMax
		}
	}
}

// stream runs one connection: handshake from the engine's durable LSN,
// snapshot install if the primary says so, then the apply loop. It
// returns how many statements it applied (for backoff reset) and the
// error that ended the stream.
func (r *Replica) stream(addr string) (applied int, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.DialTimeout)
	conn, err := r.cfg.Dial(ctx, addr)
	cancel()
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	// Unblock the apply loop's reads when Stop is called.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-r.stop:
			conn.Close()
		case <-watchDone:
		}
	}()

	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	from := r.eng.DurableLSN()
	conn.SetDeadline(time.Now().Add(r.cfg.DialTimeout))
	if err := wire.WriteMsg(bw, wire.ReplHello{
		Kind: wire.KindReplHello, Proto: wire.ProtoVersion,
		Token: r.cfg.Token, From: from, Name: r.cfg.Name,
		Epoch: r.eng.Epoch(), Leader: r.Leader(),
	}); err != nil {
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	var reply wire.ReplHelloReply
	if err := wire.ReadMsg(br, &reply); err != nil {
		return 0, fmt.Errorf("handshake: %w", err)
	}
	if !reply.OK {
		if reply.Error != nil {
			r.setHint(reply.Error.Leader)
			return 0, fmt.Errorf("primary refused stream: %w", reply.Error)
		}
		return 0, fmt.Errorf("primary refused stream")
	}
	// A primary on a lower epoch than ours has been superseded and
	// doesn't know it yet: fence it and move on. Zero is a pre-epoch
	// primary, treated as epoch 1.
	replyEpoch := reply.Epoch
	if replyEpoch == 0 {
		replyEpoch = 1
	}
	if replyEpoch < r.eng.Epoch() {
		wire.WriteMsg(bw, wire.ReplFence{
			Kind: wire.KindReplFence, Epoch: r.eng.Epoch(), Leader: r.Leader(),
		})
		bw.Flush()
		return 0, fmt.Errorf("fencing stale primary %s (epoch %d, ours %d)", addr, replyEpoch, r.eng.Epoch())
	}
	conn.SetDeadline(time.Time{})

	if reply.Diverged {
		// We accepted statements past the fork under a stale epoch; no
		// current history contains them. Quarantine before the snapshot
		// overwrites them — an acked write is never silently dropped.
		qdir, err := r.eng.QuarantineDiverged(reply.Fork)
		if err != nil {
			return 0, fmt.Errorf("quarantining divergent suffix past lsn %d: %w", reply.Fork, err)
		}
		if qdir != "" {
			r.cfg.Logf("replica: quarantined divergent statements past lsn %d into %s", reply.Fork, qdir)
		}
	}
	if reply.Mode == wire.ReplModeSnapshot {
		if err := r.eng.ResetFromSnapshot(reply.Snapshot, reply.SnapshotLSN); err != nil {
			return 0, fmt.Errorf("installing snapshot at lsn %d: %w", reply.SnapshotLSN, err)
		}
		r.met.Counter("authdb_repl_snapshots_installed_total").Inc()
		r.cfg.Logf("replica: bootstrapped from snapshot at lsn %d (gen %d)", reply.SnapshotLSN, reply.Gen)
	}
	if len(reply.EpochHist) > 0 {
		if err := r.eng.AdoptEpochHistory(engineEpochHist(reply.EpochHist)); err != nil {
			return 0, fmt.Errorf("adopting epoch history: %w", err)
		}
	}
	r.addrMu.Lock()
	r.leader = addr
	r.addrMu.Unlock()
	r.connected.Store(true)
	r.bootstrapped.Store(true)
	r.cfg.Logf("replica: following %s from lsn %d (%s mode, epoch %d)", addr, r.eng.DurableLSN(), reply.Mode, r.eng.Epoch())

	// The applier: one admin session, no per-statement limits (the
	// primary already executed these statements), async commit so a
	// whole batch shares one durability wait. SetApplier exempts it from
	// the role fence — a demoted ex-primary must still follow — and from
	// the origin-write accounting.
	sess := r.eng.NewSession("admin", true)
	sess.SetLimits(guard.Limits{})
	sess.SetAsyncCommit(true)
	sess.SetApplier(true)

	for {
		payload, err := wire.ReadFrame(br)
		if err != nil {
			return applied, err
		}
		if wire.MsgKind(payload) != wire.KindReplBatch {
			continue
		}
		var batch wire.ReplBatch
		if err := json.Unmarshal(payload, &batch); err != nil {
			return applied, fmt.Errorf("malformed batch: %w", err)
		}
		// A batch from a lower epoch means the sender went stale
		// mid-stream (typically: this very node was just promoted).
		// Fence it rather than apply.
		if batch.Epoch != 0 && batch.Epoch < r.eng.Epoch() {
			conn.SetWriteDeadline(time.Now().Add(writeTimeout))
			wire.WriteMsg(bw, wire.ReplFence{
				Kind: wire.KindReplFence, Epoch: r.eng.Epoch(), Leader: r.Leader(),
			})
			bw.Flush()
			return applied, fmt.Errorf("fencing stale primary %s mid-stream (batch epoch %d, ours %d)",
				addr, batch.Epoch, r.eng.Epoch())
		}
		n, err := r.applyBatch(sess, batch)
		applied += n
		if err != nil {
			return applied, err
		}
		conn.SetWriteDeadline(time.Now().Add(writeTimeout))
		if err := wire.WriteMsg(bw, wire.ReplAck{
			Kind: wire.KindReplAck, Applied: r.eng.DurableLSN(),
		}); err != nil {
			return applied, err
		}
		if err := bw.Flush(); err != nil {
			return applied, err
		}
	}
}

// engineEpochHist converts a wire epoch history to the engine's form.
func engineEpochHist(hist []wire.EpochEntry) []engine.EpochEntry {
	out := make([]engine.EpochEntry, len(hist))
	for i, ent := range hist {
		out[i] = engine.EpochEntry{Epoch: ent.Epoch, StartLSN: ent.StartLSN}
	}
	return out
}

// applyBatch applies one contiguous statement run in LSN order,
// skipping statements the engine already holds (the deliberate overlap
// after a resume) and failing on a gap — a replica must never skip a
// statement, or its masking would diverge from the primary's.
func (r *Replica) applyBatch(sess *engine.Session, batch wire.ReplBatch) (int, error) {
	start := time.Now()
	last := batch.From + uint64(len(batch.Stmts)) - 1
	if len(batch.Stmts) == 0 {
		return 0, nil
	}
	if last > r.primaryLSN.Load() {
		r.primaryLSN.Store(last)
	}
	applied := 0
	for i, stmt := range batch.Stmts {
		lsn := batch.From + uint64(i)
		switch own := r.eng.LSN(); {
		case lsn <= own:
			continue // already applied before a resume
		case lsn != own+1:
			return applied, fmt.Errorf("stream gap: batch continues at lsn %d, engine at %d", lsn, own)
		}
		if _, err := sess.Exec(stmt); err != nil {
			r.met.Counter("authdb_repl_apply_errors_total").Inc()
			return applied, fmt.Errorf("applying lsn %d (%s): %w", lsn, stmt, err)
		}
		applied++
	}
	if err := r.eng.WaitDurable(last); err != nil {
		return applied, err
	}
	if batch.SentUnixNano > 0 {
		r.behindNanos.Store(time.Now().UnixNano() - batch.SentUnixNano)
	}
	r.met.Counter("authdb_repl_batches_applied_total").Inc()
	r.met.Counter("authdb_repl_stmts_applied_total").Add(int64(applied))
	r.met.Histogram("authdb_repl_apply_seconds").Observe(time.Since(start).Seconds())
	return applied, nil
}
