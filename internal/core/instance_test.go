package core_test

import (
	"testing"

	"authdb/internal/core"
	"authdb/internal/workload"
)

func TestEntirityPruning(t *testing.T) {
	f := workload.Paper()
	// A PROJECT-only request: ELP spans three relations and must be
	// dropped entirely; PSA survives (Brown) — §5 Example 1's pruning.
	inst := f.Store.Instantiate("Brown", map[string]int{"PROJECT": 1}, core.DefaultOptions())
	views := inst.Views()
	if len(views) != 1 || views[0] != "PSA" {
		t.Fatalf("Brown's instantiated views = %v, want [PSA]", views)
	}
	// Klein has ELP (spans EMPLOYEE, ASSIGNMENT, PROJECT) and EST
	// (EMPLOYEE only): only the full three-relation query admits ELP.
	inst = f.Store.Instantiate("Klein", map[string]int{"PROJECT": 1}, core.DefaultOptions())
	if len(inst.Views()) != 0 {
		t.Fatalf("Klein's PROJECT-only views = %v, want none", inst.Views())
	}
	inst = f.Store.Instantiate("Klein",
		map[string]int{"PROJECT": 1, "EMPLOYEE": 1, "ASSIGNMENT": 1}, core.DefaultOptions())
	if len(inst.Views()) != 2 {
		t.Fatalf("Klein's full-query views = %v, want [ELP EST]", inst.Views())
	}
}

func TestMetaRelForUnknownRelation(t *testing.T) {
	f := workload.Paper()
	inst := f.Store.Instantiate("Brown", map[string]int{"PROJECT": 1}, core.DefaultOptions())
	mr := inst.MetaRelFor("NOPE", "NOPE")
	if len(mr.Tuples) != 0 {
		t.Fatal("unknown relation must yield an empty meta-relation")
	}
}

func TestSelfJoinInference(t *testing.T) {
	f := workload.Paper()
	opt := core.DefaultOptions()
	inst := f.Store.Instantiate("Brown", map[string]int{"EMPLOYEE": 2}, opt)
	mr := inst.MetaRelFor("EMPLOYEE", "EMPLOYEE:1")
	merged := 0
	for _, mt := range mr.Tuples {
		if len(mt.Views) == 2 {
			merged++
			// SAE ⋈ EST: (*, x4*, *) — all three attributes starred, the
			// TITLE cell carrying EST's variable.
			if !mt.Cells[0].Star || !mt.Cells[1].Star || !mt.Cells[2].Star {
				t.Fatalf("merged tuple stars wrong: %+v", mt.Cells)
			}
			if mt.Cells[1].Var == 0 {
				t.Fatal("merged TITLE cell must keep EST's variable")
			}
		}
	}
	if merged == 0 {
		t.Fatal("no self-join tuples inferred for SAE and EST")
	}
}

func TestSelfJoinRequiresKeyStars(t *testing.T) {
	f := workload.NewFixture()
	f.MustExec(`
		relation R (K, A, B) key (K);
		view VA (R.K, R.A);
		view VB (R.B);           -- does not project the key
		view VC (R.K, R.B);
		permit VA to u; permit VB to u; permit VC to u;
	`)
	inst := f.Store.Instantiate("u", map[string]int{"R": 1}, core.DefaultOptions())
	mr := inst.MetaRelFor("R", "R")
	for _, mt := range mr.Tuples {
		if len(mt.Views) != 2 {
			continue
		}
		for _, v := range mt.Views {
			if v == "VB" {
				t.Fatalf("VB does not project the key; merge %v is not lossless", mt.Views)
			}
		}
	}
	// VA ⋈ VC must exist.
	found := false
	for _, mt := range mr.Tuples {
		if len(mt.Views) == 2 && mt.Views[0] == "VA" && mt.Views[1] == "VC" {
			found = true
			if !mt.Cells[0].Star || !mt.Cells[1].Star || !mt.Cells[2].Star {
				t.Fatalf("VA⋈VC cells: %+v", mt.Cells)
			}
		}
	}
	if !found {
		t.Fatal("VA⋈VC not inferred")
	}
}

func TestSelfJoinNeedsDeclaredKey(t *testing.T) {
	f := workload.NewFixture()
	f.MustExec(`
		relation R (K, A, B);    -- no key declared
		view VA (R.K, R.A);
		view VC (R.K, R.B);
		permit VA to u; permit VC to u;
	`)
	inst := f.Store.Instantiate("u", map[string]int{"R": 1}, core.DefaultOptions())
	for _, mt := range inst.MetaRelFor("R", "R").Tuples {
		if len(mt.Views) == 2 {
			t.Fatal("self-joins require a declared key as the lossless-join witness")
		}
	}
}

func TestSelfJoinSkipsConflictingConstants(t *testing.T) {
	f := workload.NewFixture()
	f.MustExec(`
		relation R (K, A) key (K);
		view VA (R.K, R.A) where R.A = 1;
		view VB (R.K, R.A) where R.A = 2;
		permit VA to u; permit VB to u;
	`)
	inst := f.Store.Instantiate("u", map[string]int{"R": 1}, core.DefaultOptions())
	for _, mt := range inst.MetaRelFor("R", "R").Tuples {
		if len(mt.Views) == 2 {
			t.Fatal("contradictory constants make the join vacuous; no merge expected")
		}
	}
}

func TestViewCopiesForRepeatedScans(t *testing.T) {
	f := workload.NewFixture()
	f.MustExec(`
		relation R (K, A) key (K);
		view V (R.K, R.A) where R.A >= 3;
		permit V to u;
	`)
	opt := core.DefaultOptions()
	opt.SelfJoins = false
	opt.ViewCopies = 2
	inst := f.Store.Instantiate("u", map[string]int{"R": 2}, opt)
	mr := inst.MetaRelFor("R", "R:1")
	if len(mr.Tuples) != 2 {
		t.Fatalf("expected 2 instantiated copies, got %d", len(mr.Tuples))
	}
	// The copies carry distinct variables (fresh identities).
	vars := map[core.VarID]bool{}
	for _, mt := range mr.Tuples {
		for _, c := range mt.Cells {
			if c.Var != 0 {
				vars[c.Var] = true
			}
		}
	}
	if len(vars) != 2 {
		t.Fatalf("copies share variables: %v", vars)
	}
	opt.ViewCopies = 1
	inst = f.Store.Instantiate("u", map[string]int{"R": 2}, opt)
	if got := len(inst.MetaRelFor("R", "R:1").Tuples); got != 1 {
		t.Fatalf("ViewCopies=1 instantiated %d tuples", got)
	}
}

func TestVarNameFallback(t *testing.T) {
	f := workload.Paper()
	inst := f.Store.Instantiate("Klein",
		map[string]int{"PROJECT": 1, "EMPLOYEE": 1, "ASSIGNMENT": 1}, core.DefaultOptions())
	// Known variables resolve to their stored names.
	names := map[string]bool{}
	for v := core.VarID(1); v <= 4; v++ {
		names[inst.VarName(v)] = true
	}
	for _, want := range []string{"x1", "x2", "x3", "x4"} {
		if !names[want] {
			t.Fatalf("variable names = %v, want to include %s", names, want)
		}
	}
	if inst.VarName(999) != "v999" {
		t.Fatal("unknown variables must fall back to a synthetic name")
	}
}
