package core_test

import (
	"strings"
	"testing"

	"authdb/internal/core"
	"authdb/internal/workload"
)

// TestCertifyIntegrity exercises the §1 generalization: views tagged with
// a quality ("validated") instead of a user; the certifier returns the
// full answer plus statements describing the validated portions.
func TestCertifyIntegrity(t *testing.T) {
	f := workload.Paper()
	// Only the Acme projects have validated data.
	if err := f.Store.Permit("PSA", "validated"); err != nil {
		t.Fatal(err)
	}
	auth := core.NewAuthorizer(f.Store, f.Source, core.DefaultOptions())
	c, err := auth.Certify("validated", workload.MustQuery(workload.Example1Query))
	if err != nil {
		t.Fatal(err)
	}
	// Certification never masks: both large projects are in the answer.
	if c.Answer.Len() != 2 {
		t.Fatalf("answer rows = %d, want 2", c.Answer.Len())
	}
	if c.Full {
		t.Fatal("only the Acme portion is validated")
	}
	if len(c.Statements) != 1 {
		t.Fatalf("statements = %v", c.Statements)
	}
	want := "certified (NUMBER, SPONSOR) where SPONSOR = Acme"
	if got := c.Statements[0].String(); got != want {
		t.Fatalf("statement = %q, want %q", got, want)
	}
	// Stats mirror the masking counters: 2 of 4 cells are certified.
	if c.Stats.RevealedCells != 2 || c.Stats.Cells != 4 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestCertifyFull(t *testing.T) {
	f := workload.Paper()
	// SAE validates every employee's name and salary.
	if err := f.Store.Permit("SAE", "validated"); err != nil {
		t.Fatal(err)
	}
	auth := core.NewAuthorizer(f.Store, f.Source, core.DefaultOptions())
	c, err := auth.Certify("validated", workload.MustQuery(
		`retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY)`))
	if err != nil {
		t.Fatal(err)
	}
	if !c.Full || len(c.Statements) != 0 {
		t.Fatalf("full certification expected: full=%v statements=%v", c.Full, c.Statements)
	}
}

func TestCertifyNothing(t *testing.T) {
	f := workload.Paper()
	auth := core.NewAuthorizer(f.Store, f.Source, core.DefaultOptions())
	c, err := auth.Certify("validated", workload.MustQuery(workload.Example1Query))
	if err != nil {
		t.Fatal(err)
	}
	if c.Full || c.Answer.Len() != 2 {
		t.Fatal("unvalidated data must still be answered in full")
	}
	if !c.Stats.Empty() {
		t.Fatalf("nothing should be certified: %+v", c.Stats)
	}
}

func TestPermitStatementVerb(t *testing.T) {
	p := core.PermitStatement{Attrs: []string{"A"}}
	if !strings.HasPrefix(p.String(), "permit (") {
		t.Fatalf("default verb: %q", p.String())
	}
	p.Verb = "certified"
	if !strings.HasPrefix(p.String(), "certified (") {
		t.Fatalf("custom verb: %q", p.String())
	}
}
