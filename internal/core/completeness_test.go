package core_test

import (
	"math/rand"
	"testing"

	"authdb/internal/core"
	"authdb/internal/cview"
	"authdb/internal/workload"
)

// TestSelfQueryCompleteness: a request that IS a permitted view — same
// projection, same conditions — must be granted in full. This is the
// quality bar the §4.2 refinements exist for: clearing makes every
// residual restriction vanish exactly when the query re-states the
// view's own conditions.
func TestSelfQueryCompleteness(t *testing.T) {
	f := workload.Paper()
	auth := core.NewAuthorizer(f.Store, f.Source, core.DefaultOptions())
	for user, views := range map[string][]string{
		"Brown": {"SAE", "PSA", "EST"},
		"Klein": {"ELP", "EST"},
	} {
		for _, name := range views {
			def := f.Store.ViewDef(name)
			q := &cview.Def{Cols: def.Cols, Where: def.Where}
			d, err := auth.Retrieve(user, q)
			if err != nil {
				t.Fatalf("%s querying %s: %v", user, name, err)
			}
			if !d.FullyAuthorized {
				t.Errorf("%s querying exactly %s: full grant expected, got %d mask tuples, stats %+v",
					user, name, len(d.Mask.Tuples), d.Stats)
			}
			if !d.Masked.Equal(d.Answer) {
				t.Errorf("%s querying exactly %s: delivery differs from the answer", user, name)
			}
		}
	}
}

// TestSelfQueryCompletenessSynthetic runs the same invariant over
// generated view shapes (chains with joins and two-sided ranges).
func TestSelfQueryCompletenessSynthetic(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		cfg := workload.DefaultGen()
		cfg.Seed = seed
		cfg.Views, cfg.Relations, cfg.RowsPerRel = 6, 4, 32
		g := workload.Generate(cfg)
		auth := core.NewAuthorizer(g.Store, g.Source, core.DefaultOptions())
		for _, user := range cfg.Users {
			for _, name := range g.Store.ViewsFor(user) {
				def := g.Store.ViewDef(name)
				q := &cview.Def{Cols: def.Cols, Where: def.Where}
				d, err := auth.Retrieve(user, q)
				if err != nil {
					t.Fatal(err)
				}
				if !d.FullyAuthorized {
					t.Fatalf("seed %d: %s querying exactly %s not fully granted (stats %+v)\nview: %s",
						seed, user, name, d.Stats, def)
				}
			}
		}
	}
}

// TestNarrowedSelfQueryCompleteness: a request strictly inside a
// permitted view (a column subset and narrower ranges) must also be
// granted in full — the ELP walkthrough of §3 ("budgets exceeding
// $500,000 … should be authorized, since it is a view of ELP").
func TestNarrowedSelfQueryCompleteness(t *testing.T) {
	f := workload.Paper()
	auth := core.NewAuthorizer(f.Store, f.Source, core.DefaultOptions())
	d, err := auth.Retrieve("Klein", workload.MustQuery(`
		retrieve (EMPLOYEE.NAME)
		  where EMPLOYEE.NAME = ASSIGNMENT.E_NAME
		  and PROJECT.NUMBER = ASSIGNMENT.P_NO
		  and PROJECT.BUDGET >= 400000`))
	if err != nil {
		t.Fatal(err)
	}
	if !d.FullyAuthorized {
		t.Fatalf("narrowed ELP request not fully granted: %+v", d.Stats)
	}
	if d.Answer.Len() == 0 {
		t.Fatal("expected some employees on sv-72")
	}
}

// TestRandomNarrowedQueries derives random inside-queries from permitted
// views and checks they are never denied.
func TestRandomNarrowedQueries(t *testing.T) {
	cfg := workload.DefaultGen()
	cfg.Views, cfg.Relations, cfg.RowsPerRel = 6, 4, 48
	g := workload.Generate(cfg)
	qs := workload.GenQueries(cfg, workload.QueryConfig{
		Seed: 77, Count: 40, JoinWidth: 2,
		ExtraAttrProb: 0, // stay strictly inside the permissions
		RangeFraction: 0.5,
		InsideProb:    1,
	}, g.ViewDefsFor("u0")...)
	auth := core.NewAuthorizer(g.Store, g.Source, core.DefaultOptions())
	rng := rand.New(rand.NewSource(1))
	_ = rng
	for i, q := range qs {
		d, err := auth.Retrieve("u0", q)
		if err != nil {
			t.Fatal(err)
		}
		if d.Denied {
			t.Fatalf("inside-query %d denied:\n%s", i, q)
		}
		// Every requested column comes from the view's head, so the
		// delivery must be full whenever any rows exist.
		if d.Stats.Rows > 0 && !d.Stats.Full() {
			t.Fatalf("inside-query %d only partially granted (%d/%d):\n%s",
				i, d.Stats.RevealedCells, d.Stats.Cells, q)
		}
	}
}
