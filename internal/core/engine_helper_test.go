package core_test

import (
	"testing"

	"authdb/internal/core"
	"authdb/internal/engine"
)

// newEngineFromFixtureScripts builds an engine mirroring disjFixture for
// the session-path tests.
func newEngineFromFixtureScripts(t *testing.T) *engine.Engine {
	t.Helper()
	e := engine.New(core.DefaultOptions())
	admin := e.NewSession("admin", true)
	if _, err := admin.ExecScript(`
		relation PROJECT (NUMBER, SPONSOR, BUDGET) key (NUMBER);
		insert into PROJECT values (bq-45, Acme, 300000);
		insert into PROJECT values (sv-72, Apex, 450000);
		view BIG_OR_ACME (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET)
		  where PROJECT.SPONSOR = Acme
		  or PROJECT.BUDGET >= 400000;
		permit BIG_OR_ACME to u;
	`); err != nil {
		t.Fatal(err)
	}
	return e
}
