package core

import (
	"fmt"
	"sort"
	"strings"

	"authdb/internal/relation"
	"authdb/internal/value"
)

// CompRef identifies one stored membership meta-tuple of a view; it is the
// provenance unit for the theorem's pruning rule ("retain only those
// meta-tuples that do not contain references to other meta-tuples").
type CompRef struct {
	View string
	Idx  int
}

// VarCmp is a residual symbolic comparative subformula between two view
// variables (e.g. "x5 < x6" for a view of employees earning less than
// their project's budget). It corresponds to a COMPARISON row whose both
// sides are variables; constant comparisons fold into cell intervals.
type VarCmp struct {
	X  VarID
	Op value.Cmp
	Y  VarID
}

// MetaTuple is one row of a meta-relation: a subview definition of the
// relation (or relation product) whose attributes are carried by the
// enclosing MetaRel. Views lists the owning view(s) — more than one after
// a §4.2 self-join merge or a product combining several views' tuples.
type MetaTuple struct {
	Views []string
	Cells []Cell
	// Comps is the set of stored membership tuples this meta-tuple is
	// built from; padding contributes nothing.
	Comps []CompRef
	// Cmps carries the symbolic variable comparisons of the owning views
	// that involve any variable of this tuple; the mask applies them when
	// filtering answer tuples, and involved variables are never cleared.
	Cmps []VarCmp
}

// Clone returns a deep copy of the meta-tuple.
func (m *MetaTuple) Clone() *MetaTuple { return m.clone() }

// clone returns a deep copy.
func (m *MetaTuple) clone() *MetaTuple {
	return &MetaTuple{
		Views: append([]string(nil), m.Views...),
		Cells: append([]Cell(nil), m.Cells...),
		Comps: append([]CompRef(nil), m.Comps...),
		Cmps:  append([]VarCmp(nil), m.Cmps...),
	}
}

// hasComp reports provenance membership.
func (m *MetaTuple) hasComp(c CompRef) bool {
	for _, x := range m.Comps {
		if x == c {
			return true
		}
	}
	return false
}

// lockedVar reports whether v participates in one of the tuple's symbolic
// comparisons; such variables are never cleared or folded away, since the
// comparison must stay evaluable on the answer.
func (m *MetaTuple) lockedVar(v VarID) bool {
	for _, c := range m.Cmps {
		if c.X == v || c.Y == v {
			return true
		}
	}
	return false
}

// varOccurrences returns the cell indices holding v.
func (m *MetaTuple) varOccurrences(v VarID) []int {
	var out []int
	for i, c := range m.Cells {
		if c.Var == v {
			out = append(out, i)
		}
	}
	return out
}

// mergeViews returns the sorted union of two view-name lists.
func mergeViews(a, b []string) []string {
	set := make(map[string]bool, len(a)+len(b))
	for _, v := range a {
		set[v] = true
	}
	for _, v := range b {
		set[v] = true
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// MetaRel is a meta-relation (or an intermediate/final meta-answer): an
// attribute list shared by a set of meta-tuples. Base meta-relations carry
// the alias-qualified attributes of one scan; intermediates the
// concatenation; the final meta-answer A' the query's projection list.
type MetaRel struct {
	Attrs  []string
	Tuples []*MetaTuple
}

// NewMetaRel creates an empty meta-relation over the given attributes.
func NewMetaRel(attrs []string) *MetaRel {
	return &MetaRel{Attrs: append([]string(nil), attrs...)}
}

// attrIndex resolves a (possibly bare) attribute name like
// algebra's resolver: exact match first, then unambiguous bare suffix.
func (r *MetaRel) attrIndex(a string) (int, error) {
	for i, x := range r.Attrs {
		if x == a {
			return i, nil
		}
	}
	found := -1
	for i, x := range r.Attrs {
		if _, bare := relation.SplitQualified(x); bare == a {
			if found >= 0 {
				return -1, fmt.Errorf("ambiguous attribute %s in meta-relation", a)
			}
			found = i
		}
	}
	if found < 0 {
		return -1, fmt.Errorf("unknown attribute %s in meta-relation", a)
	}
	return found, nil
}

// clone returns a deep copy of the meta-relation.
func (r *MetaRel) clone() *MetaRel {
	out := NewMetaRel(r.Attrs)
	for _, t := range r.Tuples {
		out.Tuples = append(out.Tuples, t.clone())
	}
	return out
}

// canonicalKey builds a structural identity for replication removal:
// cells (with variables renumbered by first occurrence so that combos
// differing only in variable identity collapse) plus the view set.
func (m *MetaTuple) canonicalKey() string {
	var b strings.Builder
	ren := make(map[VarID]int)
	for _, c := range m.Cells {
		if c.Star {
			b.WriteByte('*')
		}
		if c.Var != 0 {
			id, ok := ren[c.Var]
			if !ok {
				id = len(ren) + 1
				ren[c.Var] = id
			}
			fmt.Fprintf(&b, "v%d", id)
		}
		b.WriteString(c.Cons.String())
		b.WriteByte('|')
	}
	b.WriteByte('#')
	for _, v := range m.Views {
		b.WriteString(v)
		b.WriteByte(',')
	}
	cmps := make([]string, 0, len(m.Cmps))
	for _, c := range m.Cmps {
		cmps = append(cmps, fmt.Sprintf("v%d%sv%d", ren[c.X], c.Op, ren[c.Y]))
	}
	sort.Strings(cmps)
	b.WriteByte('#')
	b.WriteString(strings.Join(cmps, ","))
	return b.String()
}

// provenanceKey appends the sorted provenance set, so strict deduplication
// never merges combinations built from different membership tuples — they
// are not interchangeable under the dangling-reference pruning rule.
func (m *MetaTuple) provenanceKey() string {
	refs := make([]string, 0, len(m.Comps))
	for _, c := range m.Comps {
		refs = append(refs, fmt.Sprintf("%s/%d", c.View, c.Idx))
	}
	sort.Strings(refs)
	return m.canonicalKey() + "@" + strings.Join(refs, ",")
}

// Dedupe removes strict replications: meta-tuples equal in cells, views,
// symbolic comparisons, and provenance. Tuples differing only in
// provenance are kept apart — under the dangling-reference rule one
// combination may be expressible while its look-alike is not.
func (r *MetaRel) Dedupe() {
	r.dedupeBy(func(t *MetaTuple) string { return t.provenanceKey() })
}

// DedupeLoose removes replications up to variable renaming, ignoring
// provenance (§5: "after replications are removed"). It is safe only once
// dangling-reference pruning has run — all survivors' provenance is
// complete, so structurally equal tuples are interchangeable.
func (r *MetaRel) DedupeLoose() {
	r.dedupeBy(func(t *MetaTuple) string { return t.canonicalKey() })
}

func (r *MetaRel) dedupeBy(key func(*MetaTuple) string) {
	seen := make(map[string]bool, len(r.Tuples))
	kept := r.Tuples[:0]
	for _, t := range r.Tuples {
		k := key(t)
		if seen[k] {
			continue
		}
		seen[k] = true
		kept = append(kept, t)
	}
	r.Tuples = kept
}

// Render prints the meta-relation in the figure notation. The inst maps
// VarIDs to display names; nil falls back to "v<N>" names.
func (r *MetaRel) Render(w interface{ Write([]byte) (int, error) }, title string, inst *Instance) {
	name := func(v VarID) string { return fmt.Sprintf("v%d", v) }
	if inst != nil {
		name = inst.VarName
	}
	rows := make([][]string, 0, len(r.Tuples))
	for _, t := range r.Tuples {
		row := make([]string, 0, len(t.Cells)+1)
		row = append(row, strings.Join(t.Views, ","))
		for _, c := range t.Cells {
			row = append(row, c.render(name))
		}
		rows = append(rows, row)
	}
	attrs := append([]string{"VIEW"}, r.Attrs...)
	relation.RenderTable(w, title, attrs, rows, true)
}

// String renders the meta-relation with fallback variable names.
func (r *MetaRel) String() string {
	var b strings.Builder
	r.Render(&b, "", nil)
	return b.String()
}
