package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"authdb/internal/algebra"
	"authdb/internal/core"
	"authdb/internal/interval"
	"authdb/internal/relation"
	"authdb/internal/value"
	"authdb/internal/workload"
)

func join(xs []string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += ", "
		}
		out += x
	}
	return out
}

// numFixture builds a numeric fixture convenient for property tests:
//
//	R (A, B, C) and S (D, E), with small integer domains so joins and
//	selections hit plenty of boundary cases.
func numFixture(r *rand.Rand, rows int) *workload.Fixture {
	f := workload.NewFixture()
	f.MustExec(`
		relation R (A, B, C) key (A);
		relation S (D, E) key (D);
	`)
	for i := 0; i < rows; i++ {
		f.MustExec(fmt.Sprintf("insert into R values (%d, %d, %d);", i, r.Intn(8), r.Intn(8)))
		f.MustExec(fmt.Sprintf("insert into S values (%d, %d);", i, r.Intn(8)))
	}
	return f
}

// randSingleRelView defines a random view over one relation and returns
// its name; shapes include projections, range conditions, and constant
// equalities.
func randSingleRelView(t *testing.T, f *workload.Fixture, r *rand.Rand, idx int, rel string, attrs []string) string {
	name := fmt.Sprintf("W%d", idx)
	for {
		var cols []string
		for _, a := range attrs {
			if r.Intn(2) == 0 {
				cols = append(cols, rel+"."+a)
			}
		}
		if len(cols) == 0 {
			cols = []string{rel + "." + attrs[0]}
		}
		stmt := "view " + name + " (" + join(cols) + ")"
		var conds []string
		for _, a := range attrs {
			switch r.Intn(5) {
			case 0:
				conds = append(conds, fmt.Sprintf("%s.%s >= %d", rel, a, r.Intn(8)))
			case 1:
				conds = append(conds, fmt.Sprintf("%s.%s <= %d", rel, a, r.Intn(8)))
			case 2:
				if r.Intn(3) == 0 {
					conds = append(conds, fmt.Sprintf("%s.%s = %d", rel, a, r.Intn(8)))
				}
			}
		}
		for i, c := range conds {
			if i == 0 {
				stmt += " where " + c
			} else {
				stmt += " and " + c
			}
		}
		stmts := stmt + "; permit " + name + " to u;"
		if err := tryExec(f, stmts); err == nil {
			return name
		}
		// Contradictory draw; try again.
	}
}

func tryExec(f *workload.Fixture, script string) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	f.MustExec(script)
	return nil
}

// qualified returns the fixture relation renamed with alias-qualified
// attributes, as the evaluators see scans.
func qualified(f *workload.Fixture, rel, alias string) *relation.Relation {
	base := f.Rels[rel]
	return base.Rename(relation.QualifyAttrs(alias, base.Attrs))
}

// TestProposition1Product: for every pair of instantiated meta-tuples r, s
// the concatenation q satisfies q(D) = r(D) × s(D).
func TestProposition1Product(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 40; iter++ {
		f := numFixture(rng, 12)
		randSingleRelView(t, f, rng, 1, "R", []string{"A", "B", "C"})
		randSingleRelView(t, f, rng, 2, "S", []string{"D", "E"})
		inst := f.Store.Instantiate("u", map[string]int{"R": 1, "S": 1}, core.DefaultOptions())
		a := inst.MetaRelFor("R", "R")
		b := inst.MetaRelFor("S", "S")
		prod := core.MetaProduct(a, b, false)
		rQ := qualified(f, "R", "R")
		sQ := qualified(f, "S", "S")
		wide := rQ.Product(sQ)
		for i, rt := range a.Tuples {
			for j, st := range b.Tuples {
				q := prod.Tuples[i*len(b.Tuples)+j]
				got := q.EvalOn(wide)
				want := rt.EvalOn(rQ).Product(st.EvalOn(sQ))
				if !got.Equal(want) {
					t.Fatalf("Proposition 1 fails:\nq(D):\n%s\nr(D)xs(D):\n%s", got, want)
				}
			}
		}
	}
}

// TestProposition2Selection: with the unrefined operator (Definition 2
// verbatim), each selected meta-tuple q satisfies q(D) = σλ(r(D)); with
// the refined operator the guarantee on the answer side holds:
// σλ(q(D)) = σλ(r(D)).
func TestProposition2Selection(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	attrs := []string{"A", "B", "C"}
	for iter := 0; iter < 200; iter++ {
		f := numFixture(rng, 12)
		randSingleRelView(t, f, rng, 1, "R", attrs)
		inst := f.Store.Instantiate("u", map[string]int{"R": 1}, core.DefaultOptions())
		mr := inst.MetaRelFor("R", "R")
		attr := "R." + attrs[rng.Intn(len(attrs))]
		op := value.Comparators[rng.Intn(len(value.Comparators))]
		c := value.Int(int64(rng.Intn(8)))
		atom := algebra.Atom{L: attr, Op: op, R: algebra.ConstOp(c)}
		rQ := qualified(f, "R", "R")
		lamPred, err := algebra.CompilePred(rQ.Attrs, []algebra.Atom{atom})
		if err != nil {
			t.Fatal(err)
		}
		for _, refined := range []bool{false, true} {
			for ti, rt := range mr.Tuples {
				one := core.NewMetaRel(mr.Attrs)
				one.Tuples = append(one.Tuples, rt.Clone())
				sel, err := core.MetaSelect(one, atom, inst, refined)
				if err != nil {
					t.Fatal(err)
				}
				if !starred(rt, mr, attr) {
					// Definition 2 requires the selected attribute to be
					// projected; the tuple must be discarded — except for
					// the refined μ ⇒ λ case, where the view's own
					// restriction already guarantees the query predicate
					// and the tuple is kept (verbatim, or cleared when
					// λ ⇔ μ).
					if len(sel.Tuples) != 0 {
						ci := cellAt(rt, mr, attr)
						if !refined || !ci.Cons.Implies(interval.FromCmp(op, c)) {
							t.Fatalf("iter %d tuple %d: selection kept an unstarred cell", iter, ti)
						}
					}
					continue
				}
				rD := rt.EvalOn(rQ)
				lamOnView, err := algebra.CompilePred(rD.Attrs, []algebra.Atom{atom})
				if err != nil {
					t.Fatal(err)
				}
				want := rD.Select(lamOnView)
				if len(sel.Tuples) == 0 {
					// Discarded: only legal when λ ∧ μ selects nothing on
					// this instance (contradiction).
					if refined && want.Len() > 0 {
						t.Fatalf("iter %d tuple %d: refined selection dropped a satisfiable view", iter, ti)
					}
					continue
				}
				q := sel.Tuples[0]
				got := q.EvalOn(rQ)
				if !refined {
					if !got.Equal(want) {
						t.Fatalf("Proposition 2 (unrefined) fails for %s:\nq(D):\n%s\nσλ r(D):\n%s",
							atom, got, want)
					}
					continue
				}
				// Refined: the subview may widen (clearing), but must
				// agree wherever λ holds.
				if !got.Select(lamOnView2(t, got, atom)).Equal(want) {
					t.Fatalf("Proposition 2 (refined) fails for %s:\nσλ q(D):\n%s\nσλ r(D):\n%s",
						atom, got.Select(lamOnView2(t, got, atom)), want)
				}
				_ = lamPred
			}
		}
	}
}

func lamOnView2(t *testing.T, rel *relation.Relation, atom algebra.Atom) func(relation.Tuple) bool {
	t.Helper()
	pred, err := algebra.CompilePred(rel.Attrs, []algebra.Atom{atom})
	if err != nil {
		t.Fatal(err)
	}
	return pred
}

func starred(mt *core.MetaTuple, mr *core.MetaRel, attr string) bool {
	for i, a := range mr.Attrs {
		if a == attr {
			return mt.Cells[i].Star
		}
	}
	return false
}

func cellAt(mt *core.MetaTuple, mr *core.MetaRel, attr string) core.Cell {
	for i, a := range mr.Attrs {
		if a == attr {
			return mt.Cells[i]
		}
	}
	return core.Cell{}
}

// TestProposition3Projection: removing a blank attribute commutes with
// projecting the instance; tuples with non-blank removed cells are
// discarded.
func TestProposition3Projection(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	attrs := []string{"A", "B", "C"}
	for iter := 0; iter < 200; iter++ {
		f := numFixture(rng, 12)
		randSingleRelView(t, f, rng, 1, "R", attrs)
		inst := f.Store.Instantiate("u", map[string]int{"R": 1}, core.DefaultOptions())
		mr := inst.MetaRelFor("R", "R")
		drop := rng.Intn(len(attrs))
		var cols []string
		for i, a := range attrs {
			if i != drop {
				cols = append(cols, "R."+a)
			}
		}
		proj, err := core.MetaProject(mr, cols)
		if err != nil {
			t.Fatal(err)
		}
		rQ := qualified(f, "R", "R")
		narrow := rQ.Project(indicesOf(rQ.Attrs, cols))
		// Each surviving projected tuple must define, over the narrowed
		// instance, exactly the original subview with the dropped column
		// removed.
		for _, q := range proj.Tuples {
			got := q.EvalOn(narrow)
			// Find the source tuple: same Comps.
			src := findByComps(mr, q)
			if src == nil {
				t.Fatal("projected tuple lost provenance")
			}
			want := projectAway(src.EvalOn(rQ), "R."+attrs[drop])
			if !got.Equal(want) {
				t.Fatalf("Proposition 3 fails (drop %s):\nq(D):\n%s\nπ r(D):\n%s",
					attrs[drop], got, want)
			}
		}
		// Dropped tuples must have had a non-blank removed cell.
		if len(proj.Tuples) < len(mr.Tuples) {
			for _, rt := range mr.Tuples {
				if findByComps(proj, rt) == nil && rt.Cells[drop].IsBlank() {
					t.Fatal("projection dropped a tuple whose removed cell was blank")
				}
			}
		}
	}
}

func indicesOf(attrs, cols []string) []int {
	var out []int
	for _, c := range cols {
		for i, a := range attrs {
			if a == c {
				out = append(out, i)
			}
		}
	}
	return out
}

func projectAway(rel *relation.Relation, attr string) *relation.Relation {
	var idx []int
	for i, a := range rel.Attrs {
		if a != attr {
			idx = append(idx, i)
		}
	}
	return rel.Project(idx)
}

func findByComps(mr *core.MetaRel, q *core.MetaTuple) *core.MetaTuple {
	for _, t := range mr.Tuples {
		if len(t.Comps) != len(q.Comps) {
			continue
		}
		same := true
		for i := range t.Comps {
			if t.Comps[i] != q.Comps[i] {
				same = false
				break
			}
		}
		if same {
			return t
		}
	}
	return nil
}

// TestPaddingAddsOperandSubviews checks the §4.2 product refinement: with
// padding, each operand's tuples appear blank-extended, and projecting the
// other operand away recovers them.
func TestPaddingAddsOperandSubviews(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	f := numFixture(rng, 6)
	randSingleRelView(t, f, rng, 1, "R", []string{"A", "B", "C"})
	inst := f.Store.Instantiate("u", map[string]int{"R": 1, "S": 1}, core.DefaultOptions())
	a := inst.MetaRelFor("R", "R")
	b := inst.MetaRelFor("S", "S") // u has no views over S: empty
	if len(b.Tuples) != 0 {
		t.Fatal("expected no S views")
	}
	plain := core.MetaProduct(a, b, false)
	if len(plain.Tuples) != 0 {
		t.Fatal("plain product with an empty operand must be empty")
	}
	padded := core.MetaProduct(a, b, true)
	if len(padded.Tuples) != len(a.Tuples) {
		t.Fatalf("padded product has %d tuples, want %d", len(padded.Tuples), len(a.Tuples))
	}
	cols := []string{"R.A", "R.B", "R.C"}
	back, err := core.MetaProject(padded, cols)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Tuples) != len(a.Tuples) {
		t.Fatalf("projection recovered %d of %d padded tuples", len(back.Tuples), len(a.Tuples))
	}
}

// TestSelectionRequiresStar: Definition 2 only keeps meta-tuples whose
// selected attribute is projected.
func TestSelectionRequiresStar(t *testing.T) {
	f := workload.NewFixture()
	f.MustExec(`
		relation R (A, B) key (A);
		insert into R values (1, 2);
		view V (R.A);
		permit V to u;
	`)
	inst := f.Store.Instantiate("u", map[string]int{"R": 1}, core.DefaultOptions())
	mr := inst.MetaRelFor("R", "R")
	atom := algebra.Atom{L: "R.B", Op: value.GE, R: algebra.ConstOp(value.Int(0))}
	for _, refined := range []bool{false, true} {
		sel, err := core.MetaSelect(mr, atom, inst, refined)
		if err != nil {
			t.Fatal(err)
		}
		if len(sel.Tuples) != 0 {
			t.Fatalf("selection on the unstarred B kept %d tuples (refined=%v)", len(sel.Tuples), refined)
		}
	}
}

func rangeIv(lo, hi int64) interval.Interval {
	return interval.Intersect(
		interval.FromCmp(value.GE, value.Int(lo)),
		interval.FromCmp(value.LE, value.Int(hi)),
	)
}

func ltIv(hi int64) interval.Interval {
	return interval.FromCmp(value.LT, value.Int(hi))
}

// TestFourCaseUnit pins the four outcomes of the §4.2 refinement on the
// paper's budget example.
func TestFourCaseUnit(t *testing.T) {
	build := func() (*core.Instance, *core.MetaRel) {
		f := workload.NewFixture()
		f.MustExec(`
			relation P (N, BUDGET) key (N);
			view V (P.N, P.BUDGET) where P.BUDGET >= 300000 and P.BUDGET <= 600000;
			permit V to u;
		`)
		inst := f.Store.Instantiate("u", map[string]int{"P": 1}, core.DefaultOptions())
		return inst, inst.MetaRelFor("P", "P")
	}
	sel := func(lo, hi int64) *core.MetaRel {
		inst, mr := build()
		out, err := core.MetaSelectConst(mr, "P.BUDGET",
			rangeIv(lo, hi), inst, true)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	// (1) overlap: conjoined to [300000, 400000].
	out := sel(200000, 400000)
	if len(out.Tuples) != 1 {
		t.Fatal("case 1 must keep the tuple")
	}
	c := out.Tuples[0].Cells[1]
	if c.Cons.IsFull() || !c.Cons.Lo.Bounded || c.Cons.Lo.V.AsInt() != 300000 ||
		!c.Cons.Hi.Bounded || c.Cons.Hi.V.AsInt() != 400000 {
		t.Fatalf("case 1 residual = %v", c.Cons)
	}
	// (2) μ ⇒ λ: unmodified ([300000, 600000] stays).
	out = sel(200000, 700000)
	c = out.Tuples[0].Cells[1]
	if c.Cons.Lo.V.AsInt() != 300000 || c.Cons.Hi.V.AsInt() != 600000 {
		t.Fatalf("case 2 residual = %v", c.Cons)
	}
	// (3) λ ⇒ μ: cleared.
	out = sel(400000, 500000)
	if !out.Tuples[0].Cells[1].IsBlank() {
		t.Fatalf("case 3 residual = %v", out.Tuples[0].Cells[1].Cons)
	}
	// (4) contradiction: discarded.
	inst, mr := build()
	out, err := core.MetaSelectConst(mr, "P.BUDGET",
		ltIv(300000), inst, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tuples) != 0 {
		t.Fatal("case 4 must discard the tuple")
	}
	_ = inst
}
