package core

import (
	"strconv"
	"sync"

	"authdb/internal/algebra"
)

// MaskCache memoizes compiled MaskPlans per (user, query, options). A
// mask derives from the user's definitions alone — permitted views and
// the permission meta-relation — never from the relation instances, so
// a cached plan stays valid exactly until one of those definitions
// changes. The store tracks that with two generation counters: a global
// view generation (bumped by DefineView and DropView) and a per-user
// permission generation (bumped by Permit and Revoke for that user).
// Each entry is stamped with both at Put time and discarded by Get when
// either has moved on; inserts into and deletes from actual relations
// bump neither, so they leave the cache intact.
//
// The cache itself is mutex-protected. Generation coherence needs no
// caller-side lock around lookups: the engine's writer serializes all
// definition changes and clones the store copy-on-write per change, so
// the counters are monotone along the version lineage — a reader pinned
// to any store version that Gets (or Puts) against that pinned store
// matches an entry only when both stamps are equal, which along a
// monotone lineage implies the identical set of definitions. Entries
// stamped by a reader at an older version simply never match newer
// generations. Cached plans are shared across concurrent readers; that
// is safe because every mask-application path is read-only.
type MaskCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*maskEntry
	// order lists live keys oldest-first for FIFO eviction.
	order  []string
	hits   uint64
	misses uint64
}

type maskEntry struct {
	plan    *MaskPlan
	viewGen uint64
	permGen uint64
}

// DefaultMaskCacheCap bounds an engine's mask cache; entries are small
// (a compiled mask, not data), so this is a backstop against unbounded
// distinct-query workloads, not a tuning knob.
const DefaultMaskCacheCap = 1024

// NewMaskCache creates a cache holding at most capacity plans;
// capacity <= 0 selects DefaultMaskCacheCap.
func NewMaskCache(capacity int) *MaskCache {
	if capacity <= 0 {
		capacity = DefaultMaskCacheCap
	}
	return &MaskCache{cap: capacity, entries: make(map[string]*maskEntry)}
}

// cacheKey identifies a plan: the user, the query's PSJ normal form
// (canonical for our purposes — cview.Analyze renders equal requests
// equally), and the option fields that shape the mask.
func cacheKey(user string, psj *algebra.PSJ, opt Options) string {
	return user + "\x00" + psj.String() + "\x00" + optKey(opt)
}

// optKey fingerprints the Options fields a MaskPlan depends on, so one
// cache never serves a plan compiled under different refinements.
func optKey(o Options) string {
	bits := 0
	for i, b := range []bool{
		o.Padding, o.FourCase, o.SelfJoins, o.PruneDangling,
		o.Subsume, o.ExtendedMasks,
	} {
		if b {
			bits |= 1 << i
		}
	}
	return strconv.Itoa(bits) + "," + strconv.Itoa(o.ViewCopies)
}

// Get returns the cached plan for (user, psj, opt) if it exists and its
// generation stamps still match the store, nil otherwise. A stale entry
// is removed on the way out.
func (c *MaskCache) Get(st *Store, user string, psj *algebra.PSJ, opt Options) *MaskPlan {
	if c == nil {
		return nil
	}
	key := cacheKey(user, psj, opt)
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if ok && e.viewGen == st.ViewGen() && e.permGen == st.PermGen(user) {
		c.hits++
		return e.plan
	}
	if ok {
		c.remove(key)
	}
	c.misses++
	return nil
}

// Put stores a freshly computed plan stamped with the store's current
// definition generations, evicting the oldest entry when full.
func (c *MaskCache) Put(st *Store, user string, psj *algebra.PSJ, opt Options, p *MaskPlan) {
	if c == nil || p == nil {
		return
	}
	key := cacheKey(user, psj, opt)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		c.remove(key)
	}
	for len(c.entries) >= c.cap && len(c.order) > 0 {
		c.remove(c.order[0])
	}
	c.entries[key] = &maskEntry{plan: p, viewGen: st.ViewGen(), permGen: st.PermGen(user)}
	c.order = append(c.order, key)
}

// remove deletes key from the map and the FIFO order; callers hold c.mu.
func (c *MaskCache) remove(key string) {
	delete(c.entries, key)
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

// Stats reports hit and miss counts and the current size. Safe on a
// nil cache (all zeros).
func (c *MaskCache) Stats() (hits, misses uint64, size int) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}
