package core

import (
	"fmt"
	"strings"

	"authdb/internal/interval"
	"authdb/internal/relation"
)

// Options selects the refinements of §4.2 and execution strategies; the
// zero value disables everything (the bare model of §4.1). The ablation
// experiment (E8) toggles these individually.
type Options struct {
	// Padding extends meta-relation products with the all-blank padding
	// tuples q1, q2 of §4.2, so subviews of one operand survive
	// projections that remove the other operand's attributes.
	Padding bool
	// FourCase enables the §4.2 selection refinement: clear when λ ⇒ μ,
	// keep when μ ⇒ λ, discard contradictions, conjoin otherwise. When
	// false, selection always conjoins (Definition 2 verbatim).
	FourCase bool
	// SelfJoins infers merged meta-tuples from pairs of different views'
	// tuples over the same relation when both project its key (§4.2).
	SelfJoins bool
	// PruneDangling removes, after the products, meta-tuples that
	// reference stored meta-tuples outside the combination (the
	// theorem's pruning step). Disabling it is only safe for display;
	// the selection pass re-checks provenance before clearing.
	PruneDangling bool
	// Subsume drops final mask tuples whose reveal is covered by another
	// mask tuple.
	Subsume bool
	// OptimizedExec evaluates the actual-relation side with pushdown and
	// hash joins instead of the naive normal form.
	OptimizedExec bool
	// IndexedExec lets the optimized evaluator use the relations' ordered
	// secondary indexes: hash/range access paths for constant atoms, index
	// nested-loop joins, and statistics-informed join ordering. Results
	// are identical to plain optimized execution; only access paths change.
	IndexedExec bool
	// MaskClosure lets an engine attach a materialized mask closure:
	// resident per-(user, query) results validated by definition
	// generations and relation-revision identity, refreshed
	// incrementally on pure-append data churn (see Closure). Answers
	// are byte-identical with or without it; only steady-state cost
	// changes, so it is on by default.
	MaskClosure bool
	// MaskPushdown conjoins the mask-derived necessary delivery condition
	// (Mask.PushdownAtoms) with the actual-side plan, pruning rows the
	// mask would withhold entirely before they are materialized. The
	// delivered relation, permits, and grant/deny flags are unchanged;
	// Decision.Answer and the Rows/Cells statistics then describe the
	// pruned answer rather than the full one, so the worked-example
	// renderings keep it off and the public API layer turns it on.
	MaskPushdown bool
	// ExtendedMasks enables the §6(3) extension: masks "expressed with
	// additional attributes". The mask is applied before the final
	// projection, so a view's selection conditions on attributes the
	// query did not request (e.g. PSA's SPONSOR = Acme against a query
	// for NUMBER and BUDGET only) still admit the permitted rows instead
	// of losing the mask at projection time. Off by default — the base
	// model stops where Definition 3 stops.
	ExtendedMasks bool
	// CollectIntermediates records the meta-relation after each phase
	// (for the paper's worked examples and debugging).
	CollectIntermediates bool
	// ViewCopies caps how many fresh instantiations of one view are made
	// when the query scans a relation more often than the view mentions
	// it; 0 means 1.
	ViewCopies int
}

// DefaultOptions enables every refinement, pruning, subsumption, and the
// optimized actual-side execution — the configuration the paper's worked
// examples assume.
func DefaultOptions() Options {
	return Options{
		Padding:       true,
		FourCase:      true,
		SelfJoins:     true,
		PruneDangling: true,
		Subsume:       true,
		OptimizedExec: true,
		IndexedExec:   true,
		MaskClosure:   true,
		ViewCopies:    2,
	}
}

// Instance is the per-request instantiation of a user's permitted views:
// stored meta-tuples with globally unique variable identities, variable
// provenance for the pruning rule, and the symbolic comparisons.
type Instance struct {
	store *Store
	// byRel maps each base relation to its instantiated meta-tuples
	// (over the relation's bare attributes), including inferred
	// self-joins.
	byRel map[string][]*MetaTuple
	// names maps variable identities to display names.
	names map[VarID]string
	// ivs remembers each variable's original interval (COMPARISON form).
	ivs map[VarID]interval.Interval
	// occs maps each variable to the stored tuples that mention it; a
	// combination lacking any of them leaves the variable dangling.
	occs map[VarID][]CompRef
	next VarID
	// views lists the instantiated view names (post entirety pruning).
	views []string
}

// Instantiate builds the instance for user against a query scanning the
// given relations with the given multiplicities. Views are entirety-pruned:
// a view having a membership tuple over a relation the query never scans
// is dropped altogether (§5: "defined in these relations in their
// entirety"). Views are copied with fresh variables up to opt.ViewCopies
// times when the query scans their relations repeatedly.
func (s *Store) Instantiate(user string, scanCount map[string]int, opt Options) *Instance {
	inst := &Instance{
		store: s,
		byRel: make(map[string][]*MetaTuple),
		names: make(map[VarID]string),
		ivs:   make(map[VarID]interval.Interval),
		occs:  make(map[VarID][]CompRef),
	}
	for _, name := range s.ViewsFor(user) {
		used := false
		// Disjunctive views contribute one branch per disjunct; each
		// branch is entirety-checked independently, since each is a
		// conjunctive view whose subviews are subsets of the union.
		for _, v := range s.Branches(name) {
			complete := true
			maxScans := 1
			for _, t := range v.Tuples {
				n := scanCount[t.Rel]
				if n == 0 {
					complete = false
					break
				}
				if n > maxScans {
					maxScans = n
				}
			}
			if !complete {
				continue
			}
			copies := 1
			if opt.ViewCopies > 1 && maxScans > 1 {
				copies = maxScans
				if copies > opt.ViewCopies {
					copies = opt.ViewCopies
				}
			}
			for cpy := 0; cpy < copies; cpy++ {
				inst.addView(v, cpy)
			}
			used = true
		}
		if used {
			inst.views = append(inst.views, name)
		}
	}
	if opt.SelfJoins {
		inst.inferSelfJoins()
	}
	return inst
}

// addView instantiates one copy of a stored view with fresh variables.
func (inst *Instance) addView(v *StoredView, cpy int) {
	vars := make(map[string]VarID, len(v.VarIv))
	suffix := strings.Repeat("'", cpy)
	idOf := func(local string) VarID {
		if id, ok := vars[local]; ok {
			return id
		}
		inst.next++
		id := inst.next
		vars[local] = id
		inst.names[id] = local + suffix
		iv, ok := v.VarIv[local]
		if !ok {
			iv = interval.Full()
		}
		inst.ivs[id] = iv
		for _, ti := range v.VarOccs[local] {
			inst.occs[id] = append(inst.occs[id], CompRef{View: v.Key, Idx: cpy*len(v.Tuples) + ti})
		}
		return id
	}
	var cmps []VarCmp
	for _, c := range v.VarCmps {
		cmps = append(cmps, VarCmp{X: idOf(c.X), Op: c.Op, Y: idOf(c.Y)})
	}
	for ti, t := range v.Tuples {
		cells := make([]Cell, len(t.Cells))
		mentions := make(map[VarID]bool)
		for ci, sc := range t.Cells {
			switch {
			case sc.Const != nil:
				cells[ci] = Const(*sc.Const, sc.Star)
			case sc.Var != "":
				id := idOf(sc.Var)
				cells[ci] = Cell{Star: sc.Star, Var: id, Cons: inst.ivs[id]}
				mentions[id] = true
			default:
				cells[ci] = Cell{Star: sc.Star, Cons: interval.Full()}
			}
		}
		mt := &MetaTuple{
			Views: []string{v.Name},
			Cells: cells,
			Comps: []CompRef{{View: v.Key, Idx: cpy*len(v.Tuples) + ti}},
		}
		for _, c := range cmps {
			if mentions[c.X] || mentions[c.Y] {
				mt.Cmps = append(mt.Cmps, c)
			}
		}
		inst.byRel[t.Rel] = append(inst.byRel[t.Rel], mt)
	}
}

// VarName returns the display name of a variable.
func (inst *Instance) VarName(v VarID) string {
	if n, ok := inst.names[v]; ok {
		return n
	}
	return fmt.Sprintf("v%d", v)
}

// Views returns the instantiated (entirety-complete, permitted) views.
func (inst *Instance) Views() []string { return append([]string(nil), inst.views...) }

// dangling reports whether variable v dangles in a meta-tuple with the
// given provenance: some stored tuple mentioning v is absent.
func (inst *Instance) dangling(v VarID, m *MetaTuple) bool {
	for _, ref := range inst.occs[v] {
		if !m.hasComp(ref) {
			return true
		}
	}
	return false
}

// hasDangling reports whether any variable of m — in a cell or in a
// symbolic comparison — dangles.
func (inst *Instance) hasDangling(m *MetaTuple) bool {
	seen := make(map[VarID]bool)
	check := func(v VarID) bool {
		if v == 0 || seen[v] {
			return false
		}
		seen[v] = true
		return inst.dangling(v, m)
	}
	for _, c := range m.Cells {
		if check(c.Var) {
			return true
		}
	}
	for _, c := range m.Cmps {
		if check(c.X) || check(c.Y) {
			return true
		}
	}
	return false
}

// MetaRelFor returns the instantiated meta-relation for one query scan,
// with attributes qualified by the scan alias. Tuples are cloned so each
// scan (and each authorization run) mutates its own copies; variable
// identities are shared deliberately — two scans of EMPLOYEE both carrying
// EST's x4 is exactly how the view's cross-occurrence join condition is
// expressed (Example 3).
func (inst *Instance) MetaRelFor(rel, alias string) *MetaRel {
	rs := inst.store.sch.Lookup(rel)
	if rs == nil {
		return NewMetaRel(nil)
	}
	mr := NewMetaRel(relation.QualifyAttrs(alias, rs.Attrs))
	for _, t := range inst.byRel[rel] {
		mr.Tuples = append(mr.Tuples, t.clone())
	}
	return mr
}

// inferSelfJoins implements the §4.2 refinement: for every pair of
// meta-tuples of *different* views over the same relation whose subviews
// can participate in a lossless join (both project the relation's declared
// key), add the merged meta-tuple: per attribute, the conjunction of the
// two selection conditions and the union of the projections. Pairs whose
// constraints cannot be conjoined cell-wise without cross-view variable
// unification are skipped (conservative, costs only completeness).
func (inst *Instance) inferSelfJoins() {
	for rel, tuples := range inst.byRel {
		rs := inst.store.sch.Lookup(rel)
		if rs == nil || len(rs.Key) == 0 {
			continue
		}
		starsKey := func(m *MetaTuple) bool {
			for _, k := range rs.Key {
				if !m.Cells[k].Star {
					return false
				}
			}
			return true
		}
		var merged []*MetaTuple
		for i := 0; i < len(tuples); i++ {
			for j := i + 1; j < len(tuples); j++ {
				a, b := tuples[i], tuples[j]
				if sameViewSet(a.Views, b.Views) || sharesView(a.Views, b.Views) {
					continue
				}
				if !starsKey(a) || !starsKey(b) {
					continue
				}
				if m := mergeTuples(a, b); m != nil {
					merged = append(merged, m)
				}
			}
		}
		inst.byRel[rel] = append(tuples, merged...)
	}
}

func sameViewSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sharesView(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// mergeTuples builds the self-join meta-tuple of a and b, or nil when a
// cell-wise merge is impossible or empty. Note the paper's prose asks for
// the "disjunction" of the cell subviews, but its own Example 3 result
// (SAE ⋈ EST yielding (*, x4*, *)) requires the lossless-key-join
// semantics implemented here: conjunction of selection conditions, union
// of projections (see DESIGN.md).
func mergeTuples(a, b *MetaTuple) *MetaTuple {
	cells := make([]Cell, len(a.Cells))
	for i := range a.Cells {
		ca, cb := a.Cells[i], b.Cells[i]
		switch {
		case ca.Var != 0 && cb.Var != 0:
			return nil // would require cross-view variable unification
		case ca.Var != 0:
			if !cb.Cons.IsFull() {
				return nil
			}
			cells[i] = Cell{Star: ca.Star || cb.Star, Var: ca.Var, Cons: ca.Cons}
		case cb.Var != 0:
			if !ca.Cons.IsFull() {
				return nil
			}
			cells[i] = Cell{Star: ca.Star || cb.Star, Var: cb.Var, Cons: cb.Cons}
		default:
			iv := interval.Intersect(ca.Cons, cb.Cons)
			if iv.IsEmpty() {
				return nil // the join is vacuous
			}
			cells[i] = Cell{Star: ca.Star || cb.Star, Cons: iv}
		}
	}
	return &MetaTuple{
		Views: mergeViews(a.Views, b.Views),
		Cells: cells,
		Comps: append(append([]CompRef(nil), a.Comps...), b.Comps...),
		Cmps:  append(append([]VarCmp(nil), a.Cmps...), b.Cmps...),
	}
}
