package core_test

import (
	"strings"
	"testing"

	"authdb/internal/core"
	"authdb/internal/interval"
	"authdb/internal/relation"
	"authdb/internal/value"
	"authdb/internal/workload"
)

func TestDisplayNames(t *testing.T) {
	got := core.DisplayNames([]string{
		"EMPLOYEE:1.NAME", "EMPLOYEE:1.SALARY", "EMPLOYEE:2.NAME", "EMPLOYEE:2.SALARY",
		"PROJECT.BUDGET",
	})
	want := []string{"NAME:1", "SALARY:1", "NAME:2", "SALARY:2", "BUDGET"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DisplayNames = %v, want %v", got, want)
		}
	}
}

// maskOver builds a mask directly from cells for unit tests.
func maskOver(attrs []string, tuples ...*core.MetaTuple) *core.Mask {
	mr := core.NewMetaRel(attrs)
	mr.Tuples = tuples
	return core.NewMask(mr, nil)
}

func cellsTuple(cells ...core.Cell) *core.MetaTuple {
	return &core.MetaTuple{Views: []string{"V"}, Cells: cells}
}

func TestMatchesConstraints(t *testing.T) {
	mt := cellsTuple(
		core.Cell{Star: true, Cons: interval.FromCmp(value.GE, value.Int(10))},
		core.Cell{Star: true, Cons: interval.Full()},
	)
	if !mt.Matches(relation.Tuple{value.Int(10), value.Int(0)}) {
		t.Error("boundary value must match")
	}
	if mt.Matches(relation.Tuple{value.Int(9), value.Int(0)}) {
		t.Error("out-of-range value matched")
	}
}

func TestMatchesVarEquality(t *testing.T) {
	mt := cellsTuple(
		core.Cell{Star: true, Var: 1, Cons: interval.Full()},
		core.Cell{Star: true, Var: 1, Cons: interval.Full()},
	)
	if !mt.Matches(relation.Tuple{value.String("x"), value.String("x")}) {
		t.Error("equal values must match the shared variable")
	}
	if mt.Matches(relation.Tuple{value.String("x"), value.String("y")}) {
		t.Error("unequal values matched the shared variable")
	}
}

func TestMatchesSymbolicCmp(t *testing.T) {
	mt := cellsTuple(
		core.Cell{Star: true, Var: 1, Cons: interval.Full()},
		core.Cell{Star: true, Var: 2, Cons: interval.Full()},
	)
	mt.Cmps = []core.VarCmp{{X: 1, Op: value.LT, Y: 2}}
	if !mt.Matches(relation.Tuple{value.Int(1), value.Int(2)}) {
		t.Error("satisfied comparison must match")
	}
	if mt.Matches(relation.Tuple{value.Int(2), value.Int(1)}) {
		t.Error("violated comparison matched")
	}
	// A comparison whose variable has no witnessing cell fails closed.
	orphan := cellsTuple(core.Cell{Star: true, Var: 1, Cons: interval.Full()})
	orphan.Cmps = []core.VarCmp{{X: 1, Op: value.LT, Y: 9}}
	if orphan.Matches(relation.Tuple{value.Int(1)}) {
		t.Error("unverifiable comparison must fail closed")
	}
}

func TestApplySingleTuplePerRow(t *testing.T) {
	// Two mask tuples revealing disjoint columns: merging them per row
	// would leak the correlation, so only the better one applies.
	ans := relation.New([]string{"A", "B"})
	ans.MustInsert(value.Int(1), value.Int(2))
	m := maskOver([]string{"A", "B"},
		cellsTuple(core.Cell{Star: true, Cons: interval.Full()}, core.Cell{Cons: interval.Full()}),
		cellsTuple(core.Cell{Cons: interval.Full()}, core.Cell{Star: true, Cons: interval.Full()}),
	)
	masked, stats := m.Apply(ans)
	if stats.RevealedCells != 1 {
		t.Fatalf("revealed %d cells, want 1 (single-tuple reveal)", stats.RevealedCells)
	}
	row := masked.Tuples()[0]
	nulls := 0
	for _, v := range row {
		if v.IsNull() {
			nulls++
		}
	}
	if nulls != 1 {
		t.Fatalf("row = %v, want exactly one null", row)
	}
}

func TestApplyDropsUnmatchedRows(t *testing.T) {
	ans := relation.New([]string{"A"})
	ans.MustInsert(value.Int(1))
	ans.MustInsert(value.Int(5))
	m := maskOver([]string{"A"},
		cellsTuple(core.Cell{Star: true, Cons: interval.FromCmp(value.GE, value.Int(3))}),
	)
	masked, stats := m.Apply(ans)
	if masked.Len() != 1 || stats.RevealedRows != 1 || stats.FullRows != 1 {
		t.Fatalf("masked:\n%s stats %+v", masked, stats)
	}
	if stats.Full() || stats.Empty() {
		t.Fatal("stats classification wrong")
	}
}

func TestPermitsRendering(t *testing.T) {
	m := maskOver([]string{"PROJECT.NUMBER", "PROJECT.SPONSOR"},
		cellsTuple(
			core.Cell{Star: true, Cons: interval.Full()},
			core.Cell{Star: true, Cons: interval.Point(value.String("Acme"))},
		),
	)
	ps := m.Permits()
	if len(ps) != 1 {
		t.Fatalf("permits = %v", ps)
	}
	if got := ps[0].String(); got != "permit (NUMBER, SPONSOR) where SPONSOR = Acme" {
		t.Fatalf("permit = %q", got)
	}
}

func TestPermitsVarGroupsAndCmps(t *testing.T) {
	mt := cellsTuple(
		core.Cell{Star: true, Var: 1, Cons: interval.FromCmp(value.GE, value.Int(10))},
		core.Cell{Star: true, Var: 1, Cons: interval.FromCmp(value.GE, value.Int(10))},
		core.Cell{Star: true, Var: 2, Cons: interval.Full()},
	)
	mt.Cmps = []core.VarCmp{{X: 1, Op: value.LT, Y: 2}}
	m := maskOver([]string{"R.A", "R.B", "R.C"}, mt)
	p := m.Permits()[0].String()
	for _, want := range []string{"A = B", "A >= 10", "A < C"} {
		if !strings.Contains(p, want) {
			t.Fatalf("permit %q misses %q", p, want)
		}
	}
}

func TestSubsume(t *testing.T) {
	full := cellsTuple(
		core.Cell{Star: true, Cons: interval.Full()},
		core.Cell{Star: true, Cons: interval.Full()},
	)
	partial := cellsTuple(
		core.Cell{Star: true, Cons: interval.FromCmp(value.GE, value.Int(5))},
		core.Cell{Cons: interval.Full()},
	)
	m := maskOver([]string{"A", "B"}, partial, full)
	m.Subsume()
	if len(m.Tuples) != 1 || !m.Tuples[0].Cells[1].Star {
		t.Fatalf("subsume kept %d tuples", len(m.Tuples))
	}
}

func TestSubsumeKeepsIncomparable(t *testing.T) {
	a := cellsTuple(
		core.Cell{Star: true, Cons: interval.Full()},
		core.Cell{Cons: interval.Full()},
	)
	b := cellsTuple(
		core.Cell{Cons: interval.Full()},
		core.Cell{Star: true, Cons: interval.Full()},
	)
	m := maskOver([]string{"A", "B"}, a, b)
	m.Subsume()
	if len(m.Tuples) != 2 {
		t.Fatalf("incomparable tuples reduced to %d", len(m.Tuples))
	}
}

func TestSubsumeEqualKeepsOne(t *testing.T) {
	a := cellsTuple(core.Cell{Star: true, Cons: interval.Full()})
	b := cellsTuple(core.Cell{Star: true, Cons: interval.Full()})
	m := maskOver([]string{"A"}, a, b)
	m.Subsume()
	if len(m.Tuples) != 1 {
		t.Fatalf("mutually covering tuples reduced to %d", len(m.Tuples))
	}
}

func TestSubsumeRespectsVarGroups(t *testing.T) {
	// The linked tuple requires A = B; the star-superset tuple without
	// the link covers it (it reveals at least as much on every row).
	linked := cellsTuple(
		core.Cell{Star: true, Var: 1, Cons: interval.Full()},
		core.Cell{Star: true, Var: 1, Cons: interval.Full()},
	)
	free := cellsTuple(
		core.Cell{Star: true, Cons: interval.Full()},
		core.Cell{Star: true, Cons: interval.Full()},
	)
	m := maskOver([]string{"A", "B"}, linked, free)
	m.Subsume()
	if len(m.Tuples) != 1 || m.Tuples[0].Cells[0].Var != 0 {
		t.Fatalf("free tuple must cover the linked one: %d tuples", len(m.Tuples))
	}
	// The converse must not hold: a linked tuple does not cover a free
	// one.
	m2 := maskOver([]string{"A", "B"}, free.Clone(), linked.Clone())
	m2.Tuples[0].Cells[0].Star = false // free now reveals less
	m2.Subsume()
	if len(m2.Tuples) != 2 {
		t.Fatal("linked tuple must not cover the free tuple")
	}
}

func TestEvalOnPaperMetaTuple(t *testing.T) {
	// The meta-tuple (PSA, *, Acme*, *) "specifies a selection of all
	// tuples of relation PROJECT for which sponsor = Acme, and a
	// projection of NUMBER, SPONSOR and BUDGET" (§3).
	f := workload.Paper()
	inst := f.Store.Instantiate("Brown", map[string]int{"PROJECT": 1}, core.DefaultOptions())
	mr := inst.MetaRelFor("PROJECT", "PROJECT")
	var psa *core.MetaTuple
	for _, mt := range mr.Tuples {
		if len(mt.Views) == 1 && mt.Views[0] == "PSA" {
			psa = mt
		}
	}
	if psa == nil {
		t.Fatal("PSA tuple not instantiated")
	}
	base := f.Rels["PROJECT"].Rename([]string{"PROJECT.NUMBER", "PROJECT.SPONSOR", "PROJECT.BUDGET"})
	got := psa.EvalOn(base)
	if got.Len() != 1 || got.Arity() != 3 {
		t.Fatalf("PSA(D):\n%s", got)
	}
	row := got.Tuples()[0]
	if row[0].String() != "bq-45" || row[1].String() != "Acme" || row[2].AsInt() != 300000 {
		t.Fatalf("PSA(D) row = %v", row)
	}
}
