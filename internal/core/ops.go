package core

import (
	"authdb/internal/algebra"
	"authdb/internal/guard"
	"authdb/internal/interval"
	"authdb/internal/value"
)

// MetaProduct implements Definition 1 — the product of meta-relations: for
// every pair of meta-tuples, their concatenation. With padding it also
// adds the §4.2 refinement tuples q1 = (a1…am, ⊔…⊔) and q2 = (⊔…⊔, b1…bn),
// which keep subviews of one operand alive across projections that remove
// the other operand's attributes. Replications are removed.
func MetaProduct(a, b *MetaRel, padding bool) *MetaRel {
	out, err := MetaProductGuarded(a, b, padding, nil)
	if err != nil {
		// Unreachable: a nil guard never fails.
		panic(err)
	}
	return out
}

// MetaProductGuarded is MetaProduct under a cancellation-and-budget
// guard. Meta-relations are usually small (§4.1), but a query joining
// many occurrences of relations with many stored views multiplies them;
// the guard accounts every produced meta-tuple so the meta side obeys
// the same budget as the actual side. A nil guard is unlimited.
func MetaProductGuarded(a, b *MetaRel, padding bool, g *guard.Guard) (*MetaRel, error) {
	out := NewMetaRel(append(append([]string(nil), a.Attrs...), b.Attrs...))
	blankA := make([]Cell, len(a.Attrs))
	blankB := make([]Cell, len(b.Attrs))
	for i := range blankA {
		blankA[i] = Blank()
	}
	for i := range blankB {
		blankB[i] = Blank()
	}
	concat := func(l, r *MetaTuple, lc, rc []Cell) *MetaTuple {
		cells := make([]Cell, 0, len(lc)+len(rc))
		cells = append(append(cells, lc...), rc...)
		t := &MetaTuple{Cells: cells}
		switch {
		case l == nil:
			t.Views = append([]string(nil), r.Views...)
			t.Comps = append([]CompRef(nil), r.Comps...)
			t.Cmps = append([]VarCmp(nil), r.Cmps...)
		case r == nil:
			t.Views = append([]string(nil), l.Views...)
			t.Comps = append([]CompRef(nil), l.Comps...)
			t.Cmps = append([]VarCmp(nil), l.Cmps...)
		default:
			t.Views = mergeViews(l.Views, r.Views)
			t.Comps = unionComps(l.Comps, r.Comps)
			t.Cmps = unionCmps(l.Cmps, r.Cmps)
		}
		return t
	}
	for _, l := range a.Tuples {
		for _, r := range b.Tuples {
			if err := g.Add(1); err != nil {
				return nil, err
			}
			out.Tuples = append(out.Tuples, concat(l, r, l.Cells, r.Cells))
		}
	}
	if padding {
		for _, l := range a.Tuples {
			if err := g.Add(1); err != nil {
				return nil, err
			}
			out.Tuples = append(out.Tuples, concat(l, nil, l.Cells, blankB))
		}
		for _, r := range b.Tuples {
			if err := g.Add(1); err != nil {
				return nil, err
			}
			out.Tuples = append(out.Tuples, concat(nil, r, blankA, r.Cells))
		}
	}
	out.Dedupe()
	return out, nil
}

func unionComps(a, b []CompRef) []CompRef {
	out := append([]CompRef(nil), a...)
outer:
	for _, c := range b {
		for _, x := range out {
			if x == c {
				continue outer
			}
		}
		out = append(out, c)
	}
	return out
}

func unionCmps(a, b []VarCmp) []VarCmp {
	out := append([]VarCmp(nil), a...)
outer:
	for _, c := range b {
		for _, x := range out {
			if x == c {
				continue outer
			}
		}
		out = append(out, c)
	}
	return out
}

// PruneDangling implements the theorem's pruning step: after the products,
// discard meta-tuples that "contain references to meta-tuples outside A'"
// — i.e. whose variables (or symbolic comparisons) mention stored
// membership tuples absent from the combination.
func (r *MetaRel) PruneDangling(inst *Instance) {
	kept := r.Tuples[:0]
	for _, t := range r.Tuples {
		if !inst.hasDangling(t) {
			kept = append(kept, t)
		}
	}
	r.Tuples = kept
}

// MetaSelect implements Definition 2 extended with the §4.2 four-case
// refinement. For the query predicate λ (the atom) and each meta-tuple's
// own predicate μ on the selected attribute(s):
//
//	λ ⇒ μ          the meta-tuple is selected and the field cleared
//	μ ⇒ λ          the meta-tuple is selected unmodified
//	λ ∧ μ empty    the meta-tuple is discarded
//	otherwise      the meta-tuple is selected, modified to μ ∧ λ
//
// Per Definition 2 the selected attributes must be starred; tuples whose
// selected cell is unprojected are discarded. With fourCase disabled the
// operator conjoins unconditionally (Definition 2 verbatim).
//
// Soundness note: every tuple of the actual answer satisfies λ, so a mask
// that retains μ unmodified is always sound (§4.2); clearing, by contrast,
// is performed only when λ ⇒ μ is certain.
func MetaSelect(mr *MetaRel, atom algebra.Atom, inst *Instance, fourCase bool) (*MetaRel, error) {
	i, err := mr.attrIndex(atom.L)
	if err != nil {
		return nil, err
	}
	out := NewMetaRel(mr.Attrs)
	if atom.R.IsAttr {
		j, err := mr.attrIndex(atom.R.Attr)
		if err != nil {
			return nil, err
		}
		for _, t := range mr.Tuples {
			if q := selectAttrAttr(t, i, j, atom.Op, inst, fourCase); q != nil {
				out.Tuples = append(out.Tuples, q)
			}
		}
		return out, nil
	}
	return MetaSelectConst(mr, atom.L, interval.FromCmp(atom.Op, atom.R.Const), inst, fourCase)
}

// MetaSelectConst applies the constant selection λ, given directly in
// interval form, to one attribute. The authorization pipeline combines
// all of a query's constant comparisons on the same attribute into one λ
// before calling this: the §4.2 case analysis compares the *whole*
// restriction with μ (its walkthrough reasons about two-sided budget
// ranges), and atom-at-a-time application would conjoin where the
// combined λ clears.
func MetaSelectConst(mr *MetaRel, attr string, lam interval.Interval, inst *Instance, fourCase bool) (*MetaRel, error) {
	i, err := mr.attrIndex(attr)
	if err != nil {
		return nil, err
	}
	out := NewMetaRel(mr.Attrs)
	for _, t := range mr.Tuples {
		if q := selectAttrConst(t, i, lam, inst, fourCase); q != nil {
			out.Tuples = append(out.Tuples, q)
		}
	}
	return out, nil
}

// selectAttrConst handles λ = (A_i θ c).
func selectAttrConst(t *MetaTuple, i int, lam interval.Interval, inst *Instance, fourCase bool) *MetaTuple {
	if !t.Cells[i].Star {
		// Definition 2 requires the selected attribute to be projected —
		// a restriction that is security-critical in general: keeping a
		// tuple whose hidden attribute the query filters on would let
		// the user learn that attribute through the delivered row set.
		// The sound exception is μ ⇒ λ: the view's own restriction
		// already guarantees the query predicate on every view row, so
		// the delivered rows remain exactly a function of the view image
		// (e.g. a view pinned to SPONSOR = Acme queried with that same
		// condition). When additionally λ ⇒ μ the hidden restriction is
		// the query's own and the field clears, letting the tuple
		// survive the final projection.
		if fourCase && t.Cells[i].Cons.Implies(lam) {
			q := t.clone()
			if lam.Implies(q.Cells[i].Cons) {
				q.setVarCons(q.Cells[i].Var, interval.Full())
				q.Cells[i].Cons = interval.Full()
				q.normalizeVar(q.Cells[i].Var, i, inst)
			}
			return q
		}
		return nil
	}
	q := t.clone()
	cell := &q.Cells[i]
	mu := cell.Cons
	inter := interval.Intersect(mu, lam)
	if !fourCase {
		cell.Cons = inter
		return q
	}
	switch {
	case inter.IsEmpty():
		return nil // contradiction: discard
	case lam.Implies(mu):
		// Clear: the query guarantees more than the view requires. When
		// the cell carries a join variable the equality linkage itself is
		// not implied by an attribute-constant λ, so only the interval
		// clears — on every occurrence, since the variable is one value.
		q.setVarCons(cell.Var, interval.Full())
		cell.Cons = interval.Full()
		q.normalizeVar(cell.Var, i, inst)
	case mu.Implies(lam):
		// Keep unmodified.
	default:
		q.setVarCons(cell.Var, inter)
		cell.Cons = inter
	}
	return q
}

// setVarCons narrows/clears the constraint on every cell sharing var
// (no-op for var 0); the caller adjusts the triggering cell itself.
func (m *MetaTuple) setVarCons(v VarID, iv interval.Interval) {
	if v == 0 {
		return
	}
	for k := range m.Cells {
		if m.Cells[k].Var == v {
			m.Cells[k].Cons = iv
		}
	}
}

// normalizeVar drops a variable that no longer expresses anything: a
// single in-tuple occurrence, not symbolically locked, and not dangling
// (all its defining meta-tuples are part of this combination). Such a cell
// degenerates to its interval, possibly the blank ⊔, letting later
// projections remove it (§4.2: "clearing selection predicates ensures that
// more meta-tuples will survive future projections").
func (m *MetaTuple) normalizeVar(v VarID, at int, inst *Instance) {
	if v == 0 || m.lockedVar(v) {
		return
	}
	if len(m.varOccurrences(v)) != 1 || inst.dangling(v, m) {
		return
	}
	m.Cells[at].Var = 0
}

// selectAttrAttr handles λ = (A_i θ A_j).
func selectAttrAttr(t *MetaTuple, i, j int, op value.Cmp, inst *Instance, fourCase bool) *MetaTuple {
	if !t.Cells[i].Star || !t.Cells[j].Star {
		return nil
	}
	q := t.clone()
	// Fold away variables that are mere intervals so the case analysis
	// below sees real linkage only.
	q.foldFreeVar(i, inst)
	q.foldFreeVar(j, inst)
	ci, cj := &q.Cells[i], &q.Cells[j]

	if !fourCase {
		// Definition 2 verbatim: represent λ ∧ μ. Equality folds both
		// cells to the common interval and links them; other comparators
		// retain μ (λ holds on every answer tuple regardless).
		if op == value.EQ {
			q.conjoinEquality(i, j, inst)
		}
		return q
	}

	switch {
	case ci.Var != 0 && ci.Var == cj.Var:
		// μ already equates the two attributes.
		switch op {
		case value.EQ:
			// λ ⇔ the equality part of μ: clear the linkage when it is
			// carried by exactly these two cells, keeping any residual
			// interval; otherwise the remaining occurrences still need it.
			v := ci.Var
			if !q.lockedVar(v) && len(q.varOccurrences(v)) == 2 && !inst.dangling(v, q) {
				ci.Var, cj.Var = 0, 0
			}
			return q
		case value.LE, value.GE:
			return q // μ ⇒ λ: keep unmodified
		default: // LT, GT, NE contradict equality
			return nil
		}
	case ci.Var != 0 || cj.Var != 0:
		if op == value.EQ {
			if q.conjoinEquality(i, j, inst) {
				return q
			}
			return nil
		}
		// When λ implies one of the tuple's own symbolic comparisons on
		// exactly these variables, that comparison clears (the query
		// guarantees it on every answer row), possibly unlocking the
		// variables for folding — the symbolic analogue of the §4.2
		// clearing case.
		if ci.Var != 0 && cj.Var != 0 {
			q.clearImpliedCmps(ci.Var, cj.Var, op)
			q.foldFreeVar(i, inst)
			q.foldFreeVar(j, inst)
			ci, cj = &q.Cells[i], &q.Cells[j]
			if ci.Var == 0 && cj.Var == 0 {
				return decideByIntervals(q, ci.Cons, cj.Cons, op)
			}
		}
		// Symbolic order comparisons between linked variables: decide by
		// intervals when certain, otherwise keep μ unmodified (sound).
		return decideByIntervals(q, ci.Cons, cj.Cons, op)
	default:
		// Pure interval cells.
		if op == value.EQ {
			inter := interval.Intersect(ci.Cons, cj.Cons)
			if inter.IsEmpty() {
				return nil
			}
			// Equal values lie in both intervals; residual per cell is
			// the common interval (the equality itself is λ, which every
			// answer tuple satisfies).
			ci.Cons, cj.Cons = inter, inter
			return q
		}
		return decideByIntervals(q, ci.Cons, cj.Cons, op)
	}
}

// foldFreeVar replaces a free variable cell (single occurrence, unlocked,
// non-dangling) by its interval.
func (m *MetaTuple) foldFreeVar(at int, inst *Instance) {
	m.normalizeVar(m.Cells[at].Var, at, inst)
}

// conjoinEquality narrows both cells to the intersection of their
// constraints and unifies their variables, reporting satisfiability. At
// least one side carries a variable, or neither.
func (m *MetaTuple) conjoinEquality(i, j int, inst *Instance) bool {
	ci, cj := &m.Cells[i], &m.Cells[j]
	inter := interval.Intersect(ci.Cons, cj.Cons)
	if inter.IsEmpty() {
		return false
	}
	switch {
	case ci.Var != 0 && cj.Var != 0 && ci.Var != cj.Var:
		// Unify: rewrite all occurrences of the second variable.
		from, to := cj.Var, ci.Var
		for k := range m.Cells {
			if m.Cells[k].Var == from {
				m.Cells[k].Var = to
			}
		}
		for k := range m.Cmps {
			if m.Cmps[k].X == from {
				m.Cmps[k].X = to
			}
			if m.Cmps[k].Y == from {
				m.Cmps[k].Y = to
			}
		}
		m.setVarCons(to, inter)
	case ci.Var != 0:
		m.setVarCons(ci.Var, inter)
		cj.Cons = inter
	case cj.Var != 0:
		m.setVarCons(cj.Var, inter)
		ci.Cons = inter
	default:
		ci.Cons, cj.Cons = inter, inter
	}
	return true
}

// decideByIntervals resolves an order comparison λ = (A_i θ A_j) against
// the cells' interval constraints: keep when μ ⇒ λ is certain, discard
// when λ ∧ μ is certainly empty, otherwise keep μ unmodified.
func decideByIntervals(q *MetaTuple, a, b interval.Interval, op value.Cmp) *MetaTuple {
	cmp := compareIntervals(a, b)
	switch op {
	case value.LT:
		if cmp == cmpAlwaysLess {
			return q
		}
		if cmp == cmpAlwaysGreater || cmp == cmpAlwaysGreaterEq {
			return nil
		}
	case value.LE:
		if cmp == cmpAlwaysLess || cmp == cmpAlwaysLessEq {
			return q
		}
		if cmp == cmpAlwaysGreater {
			return nil
		}
	case value.GT:
		if cmp == cmpAlwaysGreater {
			return q
		}
		if cmp == cmpAlwaysLess || cmp == cmpAlwaysLessEq {
			return nil
		}
	case value.GE:
		if cmp == cmpAlwaysGreater || cmp == cmpAlwaysGreaterEq {
			return q
		}
		if cmp == cmpAlwaysLess {
			return nil
		}
	case value.NE:
		if cmp == cmpAlwaysLess || cmp == cmpAlwaysGreater {
			return q
		}
	}
	return q // undecided: retain μ (λ is guaranteed by the actual selection)
}

// clearImpliedCmps removes from the tuple every symbolic comparison on
// the variable pair (x, y) that the query predicate x θ y implies.
func (m *MetaTuple) clearImpliedCmps(x, y VarID, op value.Cmp) {
	kept := m.Cmps[:0]
	for _, c := range m.Cmps {
		implied := (c.X == x && c.Y == y && cmpImplies(op, c.Op)) ||
			(c.X == y && c.Y == x && cmpImplies(op.Flip(), c.Op))
		if !implied {
			kept = append(kept, c)
		}
	}
	m.Cmps = kept
}

// cmpImplies reports whether (a θq b) ⇒ (a θc b) for all a, b.
func cmpImplies(q, c value.Cmp) bool {
	if q == c {
		return true
	}
	switch q {
	case value.LT:
		return c == value.LE || c == value.NE
	case value.GT:
		return c == value.GE || c == value.NE
	case value.EQ:
		return c == value.LE || c == value.GE
	}
	return false
}

type intervalOrder int

const (
	cmpUnknown intervalOrder = iota
	cmpAlwaysLess
	cmpAlwaysLessEq
	cmpAlwaysGreater
	cmpAlwaysGreaterEq
)

// compareIntervals classifies the possible order between values drawn from
// a and b.
func compareIntervals(a, b interval.Interval) intervalOrder {
	if a.Hi.Bounded && b.Lo.Bounded {
		d := a.Hi.V.Compare(b.Lo.V)
		if d < 0 {
			return cmpAlwaysLess
		}
		if d == 0 {
			if a.Hi.Open || b.Lo.Open {
				return cmpAlwaysLess
			}
			return cmpAlwaysLessEq
		}
	}
	if a.Lo.Bounded && b.Hi.Bounded {
		d := a.Lo.V.Compare(b.Hi.V)
		if d > 0 {
			return cmpAlwaysGreater
		}
		if d == 0 {
			if a.Lo.Open || b.Hi.Open {
				return cmpAlwaysGreater
			}
			return cmpAlwaysGreaterEq
		}
	}
	return cmpUnknown
}

// MetaProject implements Definition 3 generalized to a projection list:
// the meta-tuple survives only if every removed attribute's cell is blank
// (⊔, possibly starred); the remaining cells are rearranged to the
// requested column order.
func MetaProject(mr *MetaRel, cols []string) (*MetaRel, error) {
	idx := make([]int, len(cols))
	keep := make(map[int]bool, len(cols))
	for k, c := range cols {
		j, err := mr.attrIndex(c)
		if err != nil {
			return nil, err
		}
		idx[k] = j
		keep[j] = true
	}
	out := NewMetaRel(cols)
outer:
	for _, t := range mr.Tuples {
		for j, c := range t.Cells {
			if !keep[j] && !c.IsBlank() {
				continue outer
			}
		}
		q := t.clone()
		cells := make([]Cell, len(idx))
		for k, j := range idx {
			cells[k] = t.Cells[j]
		}
		q.Cells = cells
		out.Tuples = append(out.Tuples, q)
	}
	out.Dedupe()
	return out, nil
}
