package core_test

import (
	"math/rand"
	"testing"

	"authdb/internal/core"
	"authdb/internal/workload"
)

// TestSubsumeInvariance: removing covered mask tuples must never change
// what Apply delivers — on random fixtures, views, and queries, the
// masked answer with subsumption on equals the one with it off.
func TestSubsumeInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for iter := 0; iter < 80; iter++ {
		f := soundFixture(rng, 8)
		for i := 0; i < 1+rng.Intn(3); i++ {
			randJoinView(f, rng, i)
		}
		def := randQueryDef(rng)
		on := core.DefaultOptions()
		off := core.DefaultOptions()
		off.Subsume = false
		a := core.NewAuthorizer(f.Store, f.Source, on)
		b := core.NewAuthorizer(f.Store, f.Source, off)
		da, err := a.Retrieve("u", def)
		if err != nil {
			t.Fatal(err)
		}
		db, err := b.Retrieve("u", def)
		if err != nil {
			t.Fatal(err)
		}
		if !da.Masked.Equal(db.Masked) {
			t.Fatalf("iter %d: subsumption changed the delivery\nquery: %s\nwith:\n%s\nwithout:\n%s",
				iter, def, da.Masked, db.Masked)
		}
	}
}

// TestViewCopiesInvariance: instantiating extra view copies must never
// change the delivery on single-occurrence queries (copies only matter
// for self-products), and never reduce it elsewhere.
func TestViewCopiesInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for iter := 0; iter < 60; iter++ {
		f := soundFixture(rng, 8)
		for i := 0; i < 2; i++ {
			randJoinView(f, rng, i)
		}
		def := randQueryDef(rng)
		one := core.DefaultOptions()
		one.ViewCopies = 1
		three := core.DefaultOptions()
		three.ViewCopies = 3
		da, err := core.NewAuthorizer(f.Store, f.Source, one).Retrieve("u", def)
		if err != nil {
			t.Fatal(err)
		}
		db, err := core.NewAuthorizer(f.Store, f.Source, three).Retrieve("u", def)
		if err != nil {
			t.Fatal(err)
		}
		if !da.Masked.Equal(db.Masked) {
			t.Fatalf("iter %d: copies changed single-occurrence delivery\n%s", iter, def)
		}
	}
}

// TestPruneTimingInvariance: disabling the display-time product pruning
// must not change the final delivery — the fail-closed pruning before
// masking guarantees it.
func TestPruneTimingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for iter := 0; iter < 60; iter++ {
		f := soundFixture(rng, 8)
		for i := 0; i < 2; i++ {
			randJoinView(f, rng, i)
		}
		var def = randQueryDef(rng)
		if iter%2 == 0 {
			randSelfJoinView(f, rng, 2)
			def = randSelfJoinQuery(rng)
		}
		on := core.DefaultOptions()
		off := core.DefaultOptions()
		off.PruneDangling = false
		da, err := core.NewAuthorizer(f.Store, f.Source, on).Retrieve("u", def)
		if err != nil {
			t.Fatal(err)
		}
		db, err := core.NewAuthorizer(f.Store, f.Source, off).Retrieve("u", def)
		if err != nil {
			t.Fatal(err)
		}
		if !da.Masked.Equal(db.Masked) {
			t.Fatalf("iter %d: prune timing changed the delivery\nquery: %s\nearly:\n%s\nlate:\n%s",
				iter, def, da.Masked, db.Masked)
		}
	}
}

// TestScaleGuard runs the full dual pipeline on a larger instance to
// catch accidental blowups (quadratic masking, runaway products).
func TestScaleGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	cfg := workload.DefaultGen()
	cfg.Relations, cfg.RowsPerRel, cfg.Views, cfg.ViewJoinWidth = 3, 20000, 16, 2
	cfg.Users = []string{"u0"}
	g := workload.Generate(cfg)
	qs := workload.GenQueries(cfg, workload.QueryConfig{
		Seed: 5, Count: 4, JoinWidth: 2, RangeFraction: 0.4, InsideProb: 0.5,
	}, g.ViewDefsFor("u0")...)
	auth := core.NewAuthorizer(g.Store, g.Source, core.DefaultOptions())
	for i, q := range qs {
		d, err := auth.Retrieve("u0", q)
		if err != nil {
			t.Fatal(err)
		}
		if d.Stats.Rows > 0 && d.Stats.Cells <= 0 {
			t.Fatalf("query %d: inconsistent stats %+v", i, d.Stats)
		}
	}
}
