package core_test

import (
	"strings"
	"testing"

	"authdb/internal/workload"
)

func TestRightsFor(t *testing.T) {
	f := workload.Paper()
	rights := f.Store.RightsFor("Klein")
	// ELP contributes three membership tuples, EST two: five rows.
	if len(rights) != 5 {
		t.Fatalf("rights = %d, want 5\n%+v", len(rights), rights)
	}
	var sawBudget, sawAssignment bool
	for _, r := range rights {
		switch {
		case r.Relation == "PROJECT" && r.View == "ELP":
			sawBudget = true
			if len(r.Conds) == 0 || !strings.Contains(r.Conds[0], "BUDGET >= 250000") {
				t.Fatalf("PROJECT conds = %v", r.Conds)
			}
			if len(r.Attrs) != 2 { // NUMBER and BUDGET starred; SPONSOR hidden
				t.Fatalf("PROJECT attrs = %v", r.Attrs)
			}
		case r.Relation == "ASSIGNMENT":
			sawAssignment = true
			if len(r.Joins) != 2 {
				t.Fatalf("ASSIGNMENT joins = %v", r.Joins)
			}
		}
	}
	if !sawBudget || !sawAssignment {
		t.Fatalf("rights incomplete: %+v", rights)
	}
	if got := f.Store.RightsFor("nobody"); len(got) != 0 {
		t.Fatalf("unknown user rights = %v", got)
	}
}

func TestRenderRights(t *testing.T) {
	f := workload.Paper()
	var b strings.Builder
	f.Store.RenderRights(&b, "Brown")
	out := b.String()
	for _, want := range []string{
		"rights of Brown:",
		"via SAE",
		"exposes (NAME, SALARY)",
		"via PSA",
		"SPONSOR = Acme",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rights rendering misses %q:\n%s", want, out)
		}
	}
	b.Reset()
	f.Store.RenderRights(&b, "nobody")
	if !strings.Contains(b.String(), "holds no permits") {
		t.Fatalf("empty rights rendering:\n%s", b.String())
	}
}

func TestRightsDisjunctiveBranches(t *testing.T) {
	f := disjFixture(t)
	rights := f.Store.RightsFor("u")
	if len(rights) != 2 {
		t.Fatalf("rights = %d, want 2 branches\n%+v", len(rights), rights)
	}
	if rights[0].Branch == rights[1].Branch {
		t.Fatal("branches must be distinguished")
	}
	var b strings.Builder
	f.Store.RenderRights(&b, "u")
	if !strings.Contains(b.String(), "branch 2") {
		t.Fatalf("branch labeling missing:\n%s", b.String())
	}
}
