package core_test

import (
	"strings"
	"testing"

	"authdb/internal/algebra"
	"authdb/internal/core"
	"authdb/internal/interval"
	"authdb/internal/value"
	"authdb/internal/workload"
)

func TestMetaRelRender(t *testing.T) {
	f := workload.Paper()
	inst := f.Store.Instantiate("Klein",
		map[string]int{"EMPLOYEE": 1, "ASSIGNMENT": 1, "PROJECT": 1}, core.DefaultOptions())
	mr := inst.MetaRelFor("PROJECT", "PROJECT")
	var b strings.Builder
	mr.Render(&b, "PROJECT':", inst)
	out := b.String()
	for _, want := range []string{"PROJECT':", "VIEW", "ELP", "x2*", "x3*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render misses %q:\n%s", want, out)
		}
	}
	// String() uses fallback variable names.
	if s := mr.String(); !strings.Contains(s, "v") || !strings.Contains(s, "*") {
		t.Fatalf("String() = %s", s)
	}
}

func TestCellRendering(t *testing.T) {
	f := workload.Paper()
	inst := f.Store.Instantiate("Brown", map[string]int{"PROJECT": 1}, core.DefaultOptions())
	mr := inst.MetaRelFor("PROJECT", "PROJECT")
	var b strings.Builder
	mr.Render(&b, "", inst)
	out := b.String()
	// PSA renders constants with stars and blanks as empty cells.
	if !strings.Contains(out, "Acme*") {
		t.Fatalf("constant cell rendering:\n%s", out)
	}
}

// TestSelectAttrAttrIntervalDecisions drives decideByIntervals through
// every decidable outcome via the public operator.
func TestSelectAttrAttrIntervalDecisions(t *testing.T) {
	build := func(condA, condB string) (*core.Instance, *core.MetaRel) {
		f := workload.NewFixture()
		f.MustExec(`relation R (A, B) key (A);`)
		stmt := "view V (R.A, R.B)"
		var conds []string
		if condA != "" {
			conds = append(conds, condA)
		}
		if condB != "" {
			conds = append(conds, condB)
		}
		for i, c := range conds {
			if i == 0 {
				stmt += " where " + c
			} else {
				stmt += " and " + c
			}
		}
		f.MustExec(stmt + "; permit V to u;")
		inst := f.Store.Instantiate("u", map[string]int{"R": 1}, core.DefaultOptions())
		return inst, inst.MetaRelFor("R", "R")
	}
	sel := func(inst *core.Instance, mr *core.MetaRel, op value.Cmp) int {
		out, err := core.MetaSelect(mr, algebra.Atom{L: "R.A", Op: op, R: algebra.AttrOp("R.B")}, inst, true)
		if err != nil {
			t.Fatal(err)
		}
		return len(out.Tuples)
	}
	// A ≤ 3, B ≥ 5: A < B always holds (μ ⇒ λ): kept.
	inst, mr := build("R.A <= 3", "R.B >= 5")
	if sel(inst, mr, value.LT) != 1 {
		t.Fatal("always-less must keep the tuple")
	}
	// A < B never holds when A ≥ 5 and B ≤ 3: discarded.
	inst, mr = build("R.A >= 5", "R.B <= 3")
	if sel(inst, mr, value.LT) != 0 {
		t.Fatal("always-greater must discard the tuple on <")
	}
	if sel(inst, mr, value.GT) != 1 {
		t.Fatal("always-greater must keep the tuple on >")
	}
	// Equal closed bounds meeting at a point: A ≤ 3, B ≥ 3.
	inst, mr = build("R.A <= 3", "R.B >= 3")
	if sel(inst, mr, value.LE) != 1 {
		t.Fatal("less-or-equal certain must keep")
	}
	if sel(inst, mr, value.GT) != 0 {
		t.Fatal("greater impossible must discard")
	}
	// NE decided by strict separation.
	inst, mr = build("R.A <= 2", "R.B >= 5")
	if sel(inst, mr, value.NE) != 1 {
		t.Fatal("disjoint intervals must keep NE")
	}
	// Undecided overlap: kept unmodified (μ retained).
	inst, mr = build("R.A <= 5", "R.B >= 3")
	if sel(inst, mr, value.LT) != 1 {
		t.Fatal("undecided overlap must keep μ")
	}
	// EQ over disjoint intervals: contradiction.
	inst, mr = build("R.A <= 2", "R.B >= 5")
	if sel(inst, mr, value.EQ) != 0 {
		t.Fatal("equality over disjoint intervals must discard")
	}
}

// TestComparisonRendering exercises every COMPARISON row shape.
func TestComparisonRendering(t *testing.T) {
	f := workload.NewFixture()
	f.MustExec(`
		relation R (A, B, C) key (A);
		view V1 (R.A, R.B) where R.B > 1 and R.B < 9 and R.B != 4;
		view V2 (R.A, R.B) where R.B = 7;
		view V3 (R.A, R.B, R.C) where R.B < R.C;
	`)
	var b strings.Builder
	f.Store.RenderComparison(&b)
	out := b.String()
	for _, want := range []string{"> ", "< ", "!=", "= ", "V3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("COMPARISON misses %q:\n%s", want, out)
		}
	}
}

func TestCellConstructors(t *testing.T) {
	if !core.StarBlank().Star || !core.StarBlank().IsBlank() {
		t.Fatal("StarBlank wrong")
	}
	if core.Blank().Star || !core.Blank().IsBlank() {
		t.Fatal("Blank wrong")
	}
	c := core.Const(value.String("Acme"), true)
	if !c.Star || c.IsBlank() {
		t.Fatal("Const wrong")
	}
	if v, ok := c.Cons.IsPoint(); !ok || v.AsString() != "Acme" {
		t.Fatal("Const interval wrong")
	}
	varCell := core.Cell{Var: 3, Cons: interval.Full()}
	if varCell.IsBlank() {
		t.Fatal("variable cells are not blank")
	}
}
