package core

import (
	"math/rand"
	"testing"

	"authdb/internal/interval"
	"authdb/internal/relation"
	"authdb/internal/value"
)

// referenceApply is the pre-compilation Apply: star counts recounted
// inside the row loop, best = first tuple achieving the maximum count
// among matchers, zero-star tuples never selected. The compiled path
// must reproduce it exactly, tie-breaks included.
func referenceApply(m *Mask, ans *relation.Relation) (*relation.Relation, MaskStats) {
	stats := MaskStats{Rows: ans.Len(), Cells: ans.Len() * ans.Arity()}
	out := relation.New(ans.Attrs)
	width := ans.Arity()
	for _, t := range ans.Tuples() {
		var best *MetaTuple
		bestCount := 0
		for _, mt := range m.Tuples {
			if !mt.Matches(t) {
				continue
			}
			count := 0
			for _, c := range mt.Cells {
				if c.Star {
					count++
				}
			}
			if count > bestCount {
				best, bestCount = mt, count
			}
		}
		revealed := make([]bool, width)
		any := false
		if best != nil {
			for k, c := range best.Cells {
				if c.Star {
					revealed[k] = true
					any = true
				}
			}
		}
		if !any {
			continue
		}
		stats.RevealedRows++
		row := make(relation.Tuple, width)
		full := true
		for k := range row {
			if revealed[k] {
				row[k] = t[k]
				stats.RevealedCells++
			} else {
				row[k] = value.Null()
				full = false
			}
		}
		if full {
			stats.FullRows++
		}
		out.Insert(row) //nolint:errcheck
	}
	return out, stats
}

// TestApplyMatchesReference fuzzes randomized masks — overlapping
// intervals, duplicated star counts to force ties, zero-star tuples —
// against randomized answers and demands the compiled first-match-wins
// path agree with the reference row by row, including which mask tuple
// delivered each row.
func TestApplyMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	attrs := []string{"R.A", "R.B", "R.C"}
	for iter := 0; iter < 500; iter++ {
		m := &Mask{Attrs: attrs}
		nt := 1 + rng.Intn(6)
		for i := 0; i < nt; i++ {
			mt := &MetaTuple{Cells: make([]Cell, len(attrs))}
			for k := range mt.Cells {
				// Bias toward repeats so equal star counts (ties) are common.
				mt.Cells[k].Star = rng.Intn(2) == 0
				switch rng.Intn(3) {
				case 0:
					mt.Cells[k].Cons = interval.Full()
				case 1:
					mt.Cells[k].Cons = interval.FromCmp(value.GE, value.Int(int64(rng.Intn(4))))
				case 2:
					mt.Cells[k].Cons = interval.FromCmp(value.LE, value.Int(int64(rng.Intn(4))))
				}
			}
			m.Tuples = append(m.Tuples, mt)
		}
		ans := relation.New(attrs)
		for r := 0; r < 12; r++ {
			ans.Insert(relation.Tuple{ //nolint:errcheck
				value.Int(int64(rng.Intn(5))), value.Int(int64(rng.Intn(5))), value.Int(int64(rng.Intn(5))),
			})
		}

		wantOut, wantStats := referenceApply(m, ans)
		gotOut, gotStats, pick := m.applyIndexed(ans)
		if !gotOut.Equal(wantOut) {
			t.Fatalf("iter %d: outputs differ:\n%s\nvs\n%s", iter, gotOut, wantOut)
		}
		if gotStats != wantStats {
			t.Fatalf("iter %d: stats %+v, want %+v", iter, gotStats, wantStats)
		}
		// pick must agree with an independent best-match computation and
		// never choose a zero-star or non-matching tuple.
		for pos, tp := range ans.Tuples() {
			bi := pick[pos]
			if bi < 0 {
				continue
			}
			mt := m.Tuples[bi]
			if !mt.Matches(tp) {
				t.Fatalf("iter %d row %d: picked non-matching tuple %d", iter, pos, bi)
			}
			stars := func(x *MetaTuple) int {
				n := 0
				for _, c := range x.Cells {
					if c.Star {
						n++
					}
				}
				return n
			}
			if stars(mt) == 0 {
				t.Fatalf("iter %d row %d: picked zero-star tuple", iter, pos)
			}
			for j, other := range m.Tuples {
				if !other.Matches(tp) {
					continue
				}
				if stars(other) > stars(mt) || (stars(other) == stars(mt) && j < bi) {
					t.Fatalf("iter %d row %d: picked tuple %d but %d is better", iter, pos, bi, j)
				}
			}
		}
	}
}
