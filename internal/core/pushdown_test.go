package core_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"authdb/internal/core"
	"authdb/internal/cview"
	"authdb/internal/workload"
)

// pushdownFixture: one relation, two views restricting the same column so
// the hull over the mask tuples is a proper interval.
func pushdownFixture(t *testing.T) *workload.Fixture {
	t.Helper()
	f := workload.NewFixture()
	f.MustExec(`
		relation R (A, B, C) key (A);
		insert into R values (0, 1, 0);
		insert into R values (1, 2, 3);
		insert into R values (2, 3, 5);
		insert into R values (3, 4, 7);
		view LO (R.A, R.B, R.C) where R.C >= 2 and R.C <= 4;
		view HI (R.A, R.B, R.C) where R.C >= 5;
		permit LO to u;
		permit HI to u;
	`)
	return f
}

func allColsDef() *cview.Def {
	return &cview.Def{Cols: []cview.ColRef{
		{Alias: "R", Attr: "A"}, {Alias: "R", Attr: "B"}, {Alias: "R", Attr: "C"},
	}}
}

// TestPushdownAtomsHull: two mask tuples with C ∈ [2,4] and C ∈ [5,∞)
// must yield the hull condition C >= 2 — the weaker bound — and nothing
// on the unconstrained attributes.
func TestPushdownAtomsHull(t *testing.T) {
	f := pushdownFixture(t)
	a := core.NewAuthorizer(f.Store, f.Source, core.DefaultOptions())
	d, err := a.Retrieve("u", allColsDef())
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, at := range d.Pushdown {
		got = append(got, at.String())
	}
	if strings.Join(got, "; ") != "R.C >= 2" {
		t.Fatalf("pushdown atoms = %v, want [R.C >= 2]", got)
	}
	if d.PushdownApplied {
		t.Fatal("core DefaultOptions must not fuse pushdown (worked examples render the full answer)")
	}
}

// TestPushdownPrunesAnswer: with MaskPushdown on, the withheld row
// (C = 0, outside both views) disappears from Answer before
// materialization while Masked is unchanged.
func TestPushdownPrunesAnswer(t *testing.T) {
	f := pushdownFixture(t)
	opt := core.DefaultOptions()
	unfused, err := core.NewAuthorizer(f.Store, f.Source, opt).Retrieve("u", allColsDef())
	if err != nil {
		t.Fatal(err)
	}
	opt.MaskPushdown = true
	fused, err := core.NewAuthorizer(f.Store, f.Source, opt).Retrieve("u", allColsDef())
	if err != nil {
		t.Fatal(err)
	}
	if !fused.PushdownApplied {
		t.Fatal("pushdown must fire on a partial mask with a bounded hull")
	}
	if unfused.Answer.Len() != 4 || fused.Answer.Len() != 3 {
		t.Fatalf("answer sizes %d / %d, want 4 unfused and 3 fused",
			unfused.Answer.Len(), fused.Answer.Len())
	}
	if !fused.Masked.Equal(unfused.Masked) {
		t.Fatalf("fused mask output differs:\n%s\nvs\n%s", fused.Masked, unfused.Masked)
	}
	for _, tup := range fused.Answer.Tuples() {
		if !unfused.Answer.Contains(tup) {
			t.Fatalf("fused answer invented row %v", tup)
		}
	}
}

// TestPushdownFullGrantAndDenial: a full grant has a full hull (nothing
// to push), and a denied mask has no tuples (no atoms, and nothing
// delivered either way).
func TestPushdownFullGrantAndDenial(t *testing.T) {
	f := workload.NewFixture()
	f.MustExec(`
		relation R (A, B) key (A);
		insert into R values (1, 2);
		view ALL_R (R.A, R.B);
		permit ALL_R to full;
	`)
	opt := core.DefaultOptions()
	opt.MaskPushdown = true
	def := &cview.Def{Cols: []cview.ColRef{{Alias: "R", Attr: "A"}, {Alias: "R", Attr: "B"}}}
	d, err := core.NewAuthorizer(f.Store, f.Source, opt).Retrieve("full", def)
	if err != nil {
		t.Fatal(err)
	}
	if !d.FullyAuthorized || len(d.Pushdown) != 0 || d.PushdownApplied {
		t.Fatalf("full grant: Pushdown=%v applied=%v", d.Pushdown, d.PushdownApplied)
	}
	d, err = core.NewAuthorizer(f.Store, f.Source, opt).Retrieve("nobody", def)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Denied || len(d.Pushdown) != 0 || d.PushdownApplied || d.Masked.Len() != 0 {
		t.Fatalf("denial: Pushdown=%v applied=%v masked=%d", d.Pushdown, d.PushdownApplied, d.Masked.Len())
	}
}

func permitsKey(ps []core.PermitStatement) string {
	var out []string
	for _, p := range ps {
		out = append(out, p.String())
	}
	return strings.Join(out, "\n")
}

// TestPushdownDecisionsIdentical is the fused-path differential: for
// random databases, views, and queries, every execution family — naive,
// plain optimized, indexed — with and without mask pushdown must deliver
// the identical masked relation, permit statements, grant/deny flags,
// and revealed-cell statistics. Pushdown may only shrink the unmasked
// Answer, and only by rows absent from the unfused Masked output.
func TestPushdownDecisionsIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	cases := 300
	if testing.Short() {
		cases = 60
	}
	for iter := 0; iter < cases; iter++ {
		f := soundFixture(rng, 10)
		randJoinView(f, rng, 0)
		if rng.Intn(2) == 0 {
			randJoinView(f, rng, 1)
		}
		def := randQueryDef(rng)
		base := core.DefaultOptions()
		base.IndexedExec = false
		base.ExtendedMasks = rng.Intn(2) == 0

		d0, err := core.NewAuthorizer(f.Store, f.Source, base).Retrieve("u", def)
		if err != nil {
			t.Fatal(err)
		}
		for vi := 0; vi < 5; vi++ {
			opt := base
			switch vi {
			case 0:
				opt.OptimizedExec = false
			case 1:
				opt.IndexedExec = true
			case 2:
				opt.MaskPushdown = true
			case 3:
				opt.MaskPushdown, opt.IndexedExec = true, true
			case 4:
				opt.MaskPushdown, opt.OptimizedExec = true, false
			}
			label := fmt.Sprintf("case %d variant %d (ext=%v) query %s", iter, vi, base.ExtendedMasks, def)
			d, err := core.NewAuthorizer(f.Store, f.Source, opt).Retrieve("u", def)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if !d.Masked.Equal(d0.Masked) {
				t.Fatalf("%s: masked answers differ:\n%s\nvs\n%s", label, d.Masked, d0.Masked)
			}
			if d.FullyAuthorized != d0.FullyAuthorized || d.Denied != d0.Denied {
				t.Fatalf("%s: outcome flags differ", label)
			}
			if permitsKey(d.Permits) != permitsKey(d0.Permits) {
				t.Fatalf("%s: permits differ:\n%s\nvs\n%s", label, permitsKey(d.Permits), permitsKey(d0.Permits))
			}
			if d.Stats.RevealedCells != d0.Stats.RevealedCells ||
				d.Stats.RevealedRows != d0.Stats.RevealedRows ||
				d.Stats.FullRows != d0.Stats.FullRows {
				t.Fatalf("%s: revealed stats differ: %+v vs %+v", label, d.Stats, d0.Stats)
			}
			if !opt.MaskPushdown {
				if !d.Answer.Equal(d0.Answer) {
					t.Fatalf("%s: answers differ without pushdown", label)
				}
				continue
			}
			// Pushdown may prune, never invent or over-prune: the fused
			// answer is a subset of the full one, and every row of the
			// unfused masked output came through.
			for _, tup := range d.Answer.Tuples() {
				if !d0.Answer.Contains(tup) {
					t.Fatalf("%s: fused answer invented row %v", label, tup)
				}
			}
		}
	}
}
