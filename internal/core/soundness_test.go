package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"authdb/internal/algebra"
	"authdb/internal/core"
	"authdb/internal/cview"
	"authdb/internal/relation"
	"authdb/internal/value"
	"authdb/internal/workload"
)

// soundFixture builds a random 2-relation database with a foreign-key-ish
// column so joins produce matches: R(A,B,C), S(D,E) where R.B references
// S.D and payloads are drawn from a tiny domain.
func soundFixture(rng *rand.Rand, rows int) *workload.Fixture {
	f := workload.NewFixture()
	f.MustExec(`
		relation R (A, B, C) key (A);
		relation S (D, E) key (D);
	`)
	for i := 0; i < rows; i++ {
		f.MustExec(fmt.Sprintf("insert into R values (%d, %d, %d);", i, rng.Intn(rows), rng.Intn(6)))
		f.MustExec(fmt.Sprintf("insert into S values (%d, %d);", i, rng.Intn(6)))
	}
	return f
}

// randJoinView defines a random view that may span R and S (joined on
// R.B = S.D) with random projections and range conditions; it retries
// until the definition compiles.
func randJoinView(f *workload.Fixture, rng *rand.Rand, idx int) {
	name := fmt.Sprintf("J%d", idx)
	for {
		joined := rng.Intn(2) == 0
		var cols, conds []string
		for _, a := range []string{"A", "B", "C"} {
			if rng.Intn(2) == 0 {
				cols = append(cols, "R."+a)
			}
		}
		if joined {
			for _, a := range []string{"D", "E"} {
				if rng.Intn(2) == 0 {
					cols = append(cols, "S."+a)
				}
			}
			conds = append(conds, "R.B = S.D")
		}
		if len(cols) == 0 {
			cols = []string{"R.A"}
		}
		if rng.Intn(2) == 0 {
			conds = append(conds, fmt.Sprintf("R.C >= %d", rng.Intn(6)))
		}
		if rng.Intn(3) == 0 {
			conds = append(conds, fmt.Sprintf("R.C <= %d", rng.Intn(6)))
		}
		if rng.Intn(4) == 0 {
			// A symbolic comparison: locked variables end to end.
			ops := []string{"<", "<=", "!="}
			conds = append(conds, "R.B "+ops[rng.Intn(len(ops))]+" R.C")
		}
		if joined && rng.Intn(3) == 0 {
			conds = append(conds, fmt.Sprintf("S.E = %d", rng.Intn(6)))
		}
		stmt := "view " + name + " (" + join(cols) + ")"
		for i, c := range conds {
			if i == 0 {
				stmt += " where " + c
			} else {
				stmt += " and " + c
			}
		}
		if err := tryExec(f, stmt+"; permit "+name+" to u;"); err == nil {
			return
		}
	}
}

// randSelfJoinView defines an EST-style view pairing two occurrences of R
// on a shared attribute.
func randSelfJoinView(f *workload.Fixture, rng *rand.Rand, idx int) {
	name := fmt.Sprintf("SJ%d", idx)
	attrs := []string{"A", "B", "C"}
	shared := attrs[rng.Intn(len(attrs))]
	var cols []string
	cols = append(cols, "R:1.A", "R:2.A")
	if rng.Intn(2) == 0 {
		cols = append(cols, "R:1."+shared)
	}
	stmt := "view " + name + " (" + join(cols) + ") where R:1." + shared + " = R:2." + shared
	if rng.Intn(2) == 0 {
		stmt += fmt.Sprintf(" and R:1.C >= %d", rng.Intn(6))
	}
	if err := tryExec(f, stmt+"; permit "+name+" to u;"); err != nil {
		panic(err)
	}
}

// randSelfJoinQuery builds a query over two occurrences of R.
func randSelfJoinQuery(rng *rand.Rand) *cview.Def {
	def := &cview.Def{}
	for _, alias := range []string{"R:1", "R:2"} {
		for _, a := range []string{"A", "B", "C"} {
			if rng.Intn(3) == 0 {
				def.Cols = append(def.Cols, cview.ColRef{Alias: alias, Attr: a})
			}
		}
	}
	if len(def.Cols) == 0 {
		def.Cols = []cview.ColRef{{Alias: "R:1", Attr: "A"}, {Alias: "R:2", Attr: "A"}}
	}
	shared := []string{"A", "B", "C"}[rng.Intn(3)]
	def.Where = append(def.Where, cview.Cond{
		L: cview.ColRef{Alias: "R:1", Attr: shared}, Op: value.EQ,
		R: cview.ColTerm("R:2", shared),
	})
	if rng.Intn(2) == 0 {
		def.Where = append(def.Where, cview.Cond{
			L: cview.ColRef{Alias: "R:1", Attr: "C"}, Op: value.GE,
			R: cview.ConstTerm(value.Int(int64(rng.Intn(6)))),
		})
	}
	// Aliases in conditions must appear in columns too for both scans to
	// register; the shared condition references both.
	return def
}

// randQueryDef builds a random conjunctive query over R and S.
func randQueryDef(rng *rand.Rand) *cview.Def {
	def := &cview.Def{}
	useS := rng.Intn(2) == 0
	for _, a := range []string{"A", "B", "C"} {
		if rng.Intn(2) == 0 {
			def.Cols = append(def.Cols, cview.ColRef{Alias: "R", Attr: a})
		}
	}
	if useS {
		for _, a := range []string{"D", "E"} {
			if rng.Intn(2) == 0 {
				def.Cols = append(def.Cols, cview.ColRef{Alias: "S", Attr: a})
			}
		}
	}
	if len(def.Cols) == 0 {
		def.Cols = []cview.ColRef{{Alias: "R", Attr: "A"}}
	}
	if useS && rng.Intn(4) != 0 {
		def.Where = append(def.Where, cview.Cond{
			L: cview.ColRef{Alias: "R", Attr: "B"}, Op: value.EQ, R: cview.ColTerm("S", "D"),
		})
	}
	if rng.Intn(2) == 0 {
		op := []value.Cmp{value.GE, value.LE, value.GT, value.LT, value.EQ, value.NE}[rng.Intn(6)]
		def.Where = append(def.Where, cview.Cond{
			L: cview.ColRef{Alias: "R", Attr: "C"}, Op: op,
			R: cview.ConstTerm(value.Int(int64(rng.Intn(6)))),
		})
	}
	if rng.Intn(4) == 0 {
		op := []value.Cmp{value.LT, value.LE, value.NE}[rng.Intn(3)]
		def.Where = append(def.Where, cview.Cond{
			L: cview.ColRef{Alias: "R", Attr: "B"}, Op: op,
			R: cview.ColTerm("R", "C"),
		})
	}
	// Ensure every alias used in conditions is present in some column —
	// aliases are derived from both, so a condition-only S is fine.
	return def
}

// viewImages evaluates every view permitted to u on the current instance.
func viewImages(t *testing.T, f *workload.Fixture) map[string]*relation.Relation {
	t.Helper()
	out := make(map[string]*relation.Relation)
	for _, name := range f.Store.ViewsFor("u") {
		v := f.Store.View(name)
		an, err := cview.Analyze(v.Def, f.Schema)
		if err != nil {
			t.Fatal(err)
		}
		img, err := algebra.EvalOptimized(an.PSJ, f.Source)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = img
	}
	return out
}

func sameImages(a, b map[string]*relation.Relation) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || !v.Equal(w) {
			return false
		}
	}
	return true
}

// randOptions draws a random refinement configuration — soundness must
// hold under every combination.
func randOptions(rng *rand.Rand) core.Options {
	opt := core.DefaultOptions()
	opt.Padding = rng.Intn(2) == 0
	opt.FourCase = rng.Intn(2) == 0
	opt.SelfJoins = rng.Intn(2) == 0
	opt.Subsume = rng.Intn(2) == 0
	opt.OptimizedExec = rng.Intn(2) == 0
	opt.IndexedExec = rng.Intn(2) == 0
	opt.MaskPushdown = rng.Intn(2) == 0
	opt.ExtendedMasks = rng.Intn(2) == 0
	return opt
}

// TestPerturbationSoundness is the model's security property, checked by
// falsification: whatever the user can see must be a function of their
// permitted views' contents. For random databases, views, queries, and
// refinement configurations, mutate the database in a way that leaves
// every permitted view image unchanged; the masked answer must not change
// either. A failure here is a data leak.
func TestPerturbationSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	leaks := 0
	for iter := 0; iter < 150; iter++ {
		f := soundFixture(rng, 8)
		nViews := 1 + rng.Intn(3)
		for i := 0; i < nViews; i++ {
			randJoinView(f, rng, i)
		}
		selfJoinCase := iter%3 == 2
		if selfJoinCase {
			randSelfJoinView(f, rng, nViews)
		}
		def := randQueryDef(rng)
		if selfJoinCase {
			def = randSelfJoinQuery(rng)
		}
		opt := randOptions(rng)
		auth := core.NewAuthorizer(f.Store, f.Source, opt)
		before, err := auth.Retrieve("u", def)
		if err != nil {
			t.Fatal(err)
		}
		imagesBefore := viewImages(t, f)

		// Try a handful of random single-cell mutations.
		for m := 0; m < 6; m++ {
			g := soundFixture(rand.New(rand.NewSource(0)), 0) // fresh empty container
			_ = g
			mutated := cloneFixture(f)
			if !mutateCell(mutated, rng) {
				continue
			}
			imagesAfter := viewImages(t, mutated)
			if !sameImages(imagesBefore, imagesAfter) {
				continue // the mutation was visible through some view
			}
			authM := core.NewAuthorizer(mutated.Store, mutated.Source, opt)
			after, err := authM.Retrieve("u", def)
			if err != nil {
				t.Fatal(err)
			}
			if !before.Masked.Equal(after.Masked) {
				leaks++
				t.Errorf("iter %d: masked answer changed although no permitted view did\nquery: %s\nbefore:\n%s\nafter:\n%s",
					iter, def, before.Masked, after.Masked)
				if leaks > 3 {
					t.FailNow()
				}
			}
		}
	}
}

// cloneFixture deep-copies relations, sharing the (immutable) store.
func cloneFixture(f *workload.Fixture) *workload.Fixture {
	out := &workload.Fixture{
		Schema: f.Schema,
		Rels:   make(map[string]*relation.Relation, len(f.Rels)),
		Store:  f.Store,
	}
	for k, v := range f.Rels {
		out.Rels[k] = v.Clone()
	}
	return out
}

// mutateCell changes one random payload cell of one tuple (rebuilding the
// tuple under set semantics); it reports whether a mutation happened.
func mutateCell(f *workload.Fixture, rng *rand.Rand) bool {
	names := []string{"R", "S"}
	rel := f.Rels[names[rng.Intn(len(names))]]
	tuples := rel.Tuples()
	if len(tuples) == 0 {
		return false
	}
	old := tuples[rng.Intn(len(tuples))].Clone()
	col := rng.Intn(len(old))
	mutated := old.Clone()
	mutated[col] = value.Int(old[col].AsInt() + 1 + int64(rng.Intn(3)))
	rel.Delete(func(t relation.Tuple) bool { return t.Equal(old) })
	rel.Insert(mutated) //nolint:errcheck // arity preserved
	return true
}

// TestMaskedWithinAnswer: the delivered relation never contains a value
// absent from the true answer at that position, and never contains a row
// not derived from an answer row.
func TestMaskedWithinAnswer(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for iter := 0; iter < 60; iter++ {
		f := soundFixture(rng, 8)
		for i := 0; i < 2; i++ {
			randJoinView(f, rng, i)
		}
		def := randQueryDef(rng)
		auth := core.NewAuthorizer(f.Store, f.Source, randOptions(rng))
		d, err := auth.Retrieve("u", def)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range d.Masked.Tuples() {
			matched := false
			for _, ans := range d.Answer.Tuples() {
				ok := true
				for i := range row {
					if !row[i].IsNull() && !row[i].Equal(ans[i]) {
						ok = false
						break
					}
				}
				if ok {
					matched = true
					break
				}
			}
			if !matched {
				t.Fatalf("masked row %v has no source in the answer\n%s", row, d.Answer)
			}
		}
		if d.Stats.RevealedCells > d.Stats.Cells {
			t.Fatal("stats overflow")
		}
	}
}

// TestDualExecutorsAgreeUnderAuthorization: the answer side must be
// identical whichever executor computed it, so masking sees the same A.
func TestDualExecutorsAgreeUnderAuthorization(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for iter := 0; iter < 60; iter++ {
		f := soundFixture(rng, 8)
		randJoinView(f, rng, 0)
		def := randQueryDef(rng)
		optA := core.DefaultOptions()
		optB := core.DefaultOptions()
		optB.OptimizedExec = false
		a := core.NewAuthorizer(f.Store, f.Source, optA)
		b := core.NewAuthorizer(f.Store, f.Source, optB)
		da, err := a.Retrieve("u", def)
		if err != nil {
			t.Fatal(err)
		}
		db, err := b.Retrieve("u", def)
		if err != nil {
			t.Fatal(err)
		}
		if !da.Answer.Equal(db.Answer) || !da.Masked.Equal(db.Masked) {
			t.Fatalf("executors disagree under authorization for %s", def)
		}
	}
}
