package core_test

import (
	"strings"
	"testing"

	"authdb/internal/core"
	"authdb/internal/workload"
)

// TestExtendedMasksHiddenCondition is the motivating §6(3) case: Brown
// holds PSA (all of PROJECT where SPONSOR = Acme) and asks for NUMBER and
// BUDGET without requesting SPONSOR. The base model loses the mask at
// projection time (the SPONSOR cell is a constant, not a blank); the
// extension keeps it as a hidden condition and delivers the Acme rows.
func TestExtendedMasksHiddenCondition(t *testing.T) {
	query := `retrieve (PROJECT.NUMBER, PROJECT.BUDGET)`

	base := core.DefaultOptions()
	f := workload.Paper()
	d, err := core.NewAuthorizer(f.Store, f.Source, base).Retrieve("Brown", workload.MustQuery(query))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Denied {
		t.Fatalf("base model should lose the PSA mask here, got %d mask tuples", len(d.Mask.Tuples))
	}

	ext := base
	ext.ExtendedMasks = true
	d, err = core.NewAuthorizer(f.Store, f.Source, ext).Retrieve("Brown", workload.MustQuery(query))
	if err != nil {
		t.Fatal(err)
	}
	if d.Denied || d.FullyAuthorized {
		t.Fatalf("extension: denied=%v full=%v", d.Denied, d.FullyAuthorized)
	}
	if d.Masked.Len() != 1 {
		t.Fatalf("delivered rows = %d, want 1 (the Acme project)\n%s", d.Masked.Len(), d.Masked)
	}
	row := d.Masked.Tuples()[0]
	if row[0].String() != "bq-45" || row[1].AsInt() != 300000 {
		t.Fatalf("delivered row = %v", row)
	}
	// The inferred permit names the hidden condition.
	found := false
	for _, p := range d.Permits {
		if strings.Contains(p.String(), "SPONSOR = Acme") &&
			strings.Contains(p.String(), "permit (NUMBER, BUDGET)") {
			found = true
		}
	}
	if !found {
		t.Fatalf("permits = %v", d.Permits)
	}
}

// TestExtendedMasksPreserveExamples: with the extension on, the paper's
// three worked examples still produce their §5 outcomes.
func TestExtendedMasksPreserveExamples(t *testing.T) {
	opt := core.DefaultOptions()
	opt.ExtendedMasks = true
	f := workload.Paper()
	auth := core.NewAuthorizer(f.Store, f.Source, opt)

	// Example 1: Brown gets the Acme project, full row.
	d, err := auth.Retrieve("Brown", workload.MustQuery(workload.Example1Query))
	if err != nil {
		t.Fatal(err)
	}
	if d.Masked.Len() != 1 || d.Masked.Tuples()[0][1].String() != "Acme" {
		t.Fatalf("example 1 delivered:\n%s", d.Masked)
	}

	// Example 2: Klein gets the name, not the salary.
	d, err = auth.Retrieve("Klein", workload.MustQuery(workload.Example2Query))
	if err != nil {
		t.Fatal(err)
	}
	if d.Masked.Len() != 1 {
		t.Fatalf("example 2 delivered:\n%s", d.Masked)
	}
	if d.Masked.Tuples()[0][0].String() != "Brown" || !d.Masked.Tuples()[0][1].IsNull() {
		t.Fatalf("example 2 row = %v", d.Masked.Tuples()[0])
	}

	// Example 3: full grant, everything delivered.
	d, err = auth.Retrieve("Brown", workload.MustQuery(workload.Example3Query))
	if err != nil {
		t.Fatal(err)
	}
	if !d.FullyAuthorized || len(d.Permits) != 0 {
		t.Fatalf("example 3: full=%v permits=%v", d.FullyAuthorized, d.Permits)
	}
	if !d.Masked.Equal(d.Answer) {
		t.Fatal("example 3 delivery differs from the answer")
	}
}

// TestExtendedMasksNeverDeliverLess: on a workload sweep the extension
// delivers at least as many cells as the base model.
func TestExtendedMasksNeverDeliverLess(t *testing.T) {
	cfg := workload.DefaultGen()
	cfg.Views, cfg.Relations = 6, 3
	g := workload.Generate(cfg)
	qs := workload.GenQueries(cfg, workload.QueryConfig{
		Seed: 19, Count: 40, JoinWidth: 2, ExtraAttrProb: 0.3,
		RangeFraction: 0.6, DropSelAttrProb: 0.5, InsideProb: 0.5,
	}, g.ViewDefsFor("u0")...)
	base := core.NewAuthorizer(g.Store, g.Source, core.DefaultOptions())
	extOpt := core.DefaultOptions()
	extOpt.ExtendedMasks = true
	ext := core.NewAuthorizer(g.Store, g.Source, extOpt)
	var baseCells, extCells int
	for _, q := range qs {
		db, err := base.Retrieve("u0", q)
		if err != nil {
			t.Fatal(err)
		}
		de, err := ext.Retrieve("u0", q)
		if err != nil {
			t.Fatal(err)
		}
		baseCells += db.Stats.RevealedCells
		extCells += de.Stats.RevealedCells
		if de.Stats.RevealedCells < db.Stats.RevealedCells {
			t.Fatalf("extension delivered less on %s: %d < %d",
				q, de.Stats.RevealedCells, db.Stats.RevealedCells)
		}
	}
	if extCells <= baseCells {
		t.Logf("note: extension added no cells on this workload (%d == %d)", extCells, baseCells)
	}
}
