package core_test

import (
	"strings"
	"testing"

	"authdb/internal/core"
	"authdb/internal/workload"
)

func paperAuthorizer(t testing.TB, opt core.Options) (*workload.Fixture, *core.Authorizer) {
	t.Helper()
	f := workload.Paper()
	return f, core.NewAuthorizer(f.Store, f.Source, opt)
}

// TestExample1 reproduces §5 Example 1: Brown retrieves the numbers and
// sponsors of large projects; the mask restricts him to projects sponsored
// by Acme and the inferred permit says so.
func TestExample1(t *testing.T) {
	_, a := paperAuthorizer(t, core.DefaultOptions())
	d, err := a.Retrieve("Brown", workload.MustQuery(workload.Example1Query))
	if err != nil {
		t.Fatal(err)
	}
	if d.Denied || d.FullyAuthorized {
		t.Fatalf("expected a partial grant, got denied=%v full=%v", d.Denied, d.FullyAuthorized)
	}
	// The full answer has two rows (bq-45 and sv-72); only the Acme
	// project survives the mask, entirely revealed.
	if d.Answer.Len() != 2 {
		t.Fatalf("answer rows = %d, want 2\n%s", d.Answer.Len(), d.Answer)
	}
	if d.Masked.Len() != 1 {
		t.Fatalf("masked rows = %d, want 1\n%s", d.Masked.Len(), d.Masked)
	}
	row := d.Masked.Tuples()[0]
	if row[0].String() != "bq-45" || row[1].String() != "Acme" {
		t.Fatalf("masked row = %v, want (bq-45, Acme)", row)
	}
	if len(d.Permits) != 1 {
		t.Fatalf("permits = %v, want exactly one", d.Permits)
	}
	want := "permit (NUMBER, SPONSOR) where SPONSOR = Acme"
	if got := d.Permits[0].String(); got != want {
		t.Fatalf("permit = %q, want %q", got, want)
	}
}

// TestExample2 reproduces §5 Example 2: Klein retrieves names and salaries
// of engineers on very large projects; the mask reveals names only.
func TestExample2(t *testing.T) {
	_, a := paperAuthorizer(t, core.DefaultOptions())
	d, err := a.Retrieve("Klein", workload.MustQuery(workload.Example2Query))
	if err != nil {
		t.Fatal(err)
	}
	if d.Denied || d.FullyAuthorized {
		t.Fatalf("expected a partial grant, got denied=%v full=%v", d.Denied, d.FullyAuthorized)
	}
	// Engineers on projects with budget > 300,000: Brown (sv-72).
	if d.Answer.Len() != 1 {
		t.Fatalf("answer rows = %d, want 1\n%s", d.Answer.Len(), d.Answer)
	}
	if d.Masked.Len() != 1 {
		t.Fatalf("masked rows = %d, want 1\n%s", d.Masked.Len(), d.Masked)
	}
	row := d.Masked.Tuples()[0]
	if row[0].String() != "Brown" {
		t.Fatalf("masked NAME = %v, want Brown", row[0])
	}
	if !row[1].IsNull() {
		t.Fatalf("SALARY %v should be masked", row[1])
	}
	found := false
	for _, p := range d.Permits {
		if p.String() == "permit (NAME)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("permits = %v, want to include %q", d.Permits, "permit (NAME)")
	}
}

// TestExample3 reproduces §5 Example 3: Brown retrieves names and salaries
// of employees with the same title; the self-join of SAE and EST grants
// the entire answer, with no accompanying permit statements.
func TestExample3(t *testing.T) {
	_, a := paperAuthorizer(t, core.DefaultOptions())
	d, err := a.Retrieve("Brown", workload.MustQuery(workload.Example3Query))
	if err != nil {
		t.Fatal(err)
	}
	if !d.FullyAuthorized {
		var b strings.Builder
		d.Mask.Apply(d.Answer)
		for _, mt := range d.Mask.Tuples {
			b.WriteString(strings.Join(mt.Views, ",") + "\n")
		}
		t.Fatalf("expected a full grant; mask tuples:\n%s", b.String())
	}
	if len(d.Permits) != 0 {
		t.Fatalf("permits = %v, want none on a full grant", d.Permits)
	}
	if !d.Masked.Equal(d.Answer) {
		t.Fatalf("masked answer differs from answer:\n%s\nvs\n%s", d.Masked, d.Answer)
	}
	// Pairs of employees with the same title: only self-pairs here
	// (all three titles are distinct), so 3 rows.
	if d.Answer.Len() != 3 {
		t.Fatalf("answer rows = %d, want 3\n%s", d.Answer.Len(), d.Answer)
	}
}

// TestExample2WithoutSelfJoins checks Example 2 is insensitive to the
// self-join refinement (no key-complete pair exists for Klein's views).
func TestExample2WithoutSelfJoins(t *testing.T) {
	opt := core.DefaultOptions()
	opt.SelfJoins = false
	_, a := paperAuthorizer(t, opt)
	d, err := a.Retrieve("Klein", workload.MustQuery(workload.Example2Query))
	if err != nil {
		t.Fatal(err)
	}
	if d.Masked.Len() != 1 || !d.Masked.Tuples()[0][1].IsNull() {
		t.Fatalf("unexpected masked answer\n%s", d.Masked)
	}
}

// TestExample3NeedsSelfJoins checks that disabling the self-join
// refinement loses the salaries in Example 3 — the ablation the paper's
// §4.2 motivates.
func TestExample3NeedsSelfJoins(t *testing.T) {
	opt := core.DefaultOptions()
	opt.SelfJoins = false
	_, a := paperAuthorizer(t, opt)
	d, err := a.Retrieve("Brown", workload.MustQuery(workload.Example3Query))
	if err != nil {
		t.Fatal(err)
	}
	if d.FullyAuthorized {
		t.Fatal("full grant without self-joins should be impossible")
	}
	for _, row := range d.Masked.Tuples() {
		if !row[1].IsNull() || !row[3].IsNull() {
			t.Fatalf("salaries should be masked without self-joins: %v", row)
		}
	}
}
