package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"authdb/internal/core"
	"authdb/internal/cview"
	"authdb/internal/relation"
	"authdb/internal/value"
	"authdb/internal/workload"
)

// mvccFixture wraps a fixture's relations in Versioned lineages so data
// churn follows the engine's MVCC discipline the closure relies on:
// every mutation publishes a successor revision (a fresh *Relation),
// never mutating a pointer the closure may have stamped.
type mvccFixture struct {
	f    *workload.Fixture
	vers map[string]*relation.Versioned
}

func newMVCCFixture(f *workload.Fixture) *mvccFixture {
	m := &mvccFixture{f: f, vers: make(map[string]*relation.Versioned)}
	for name, r := range f.Rels {
		m.vers[name] = relation.VersionedOf(r)
	}
	m.sync()
	return m
}

func (m *mvccFixture) sync() {
	for name, v := range m.vers {
		m.f.Rels[name] = v.Head()
	}
}

func (m *mvccFixture) insert(rel string, vals ...int64) {
	t := make(relation.Tuple, len(vals))
	for i, v := range vals {
		t[i] = value.Int(v)
	}
	if _, err := m.vers[rel].Insert(t); err != nil {
		panic(err)
	}
	m.sync()
}

func (m *mvccFixture) deleteWhere(rel string, pred func(relation.Tuple) bool) int {
	n := m.vers[rel].Delete(pred)
	m.sync()
	return n
}

// compareDecisions fails unless the two decisions agree on everything a
// user can observe: the delivered relation (set equality — rendering is
// canonical, so this is byte-identical output), the permit statements,
// the grant/deny flags, and the revealed statistics.
func compareDecisions(t *testing.T, label string, got, want *core.Decision) {
	t.Helper()
	if !got.Masked.Equal(want.Masked) {
		t.Fatalf("%s: masked answers differ:\n%s\nvs\n%s", label, got.Masked, want.Masked)
	}
	if got.FullyAuthorized != want.FullyAuthorized || got.Denied != want.Denied {
		t.Fatalf("%s: outcome flags differ: (%v,%v) vs (%v,%v)", label,
			got.FullyAuthorized, got.Denied, want.FullyAuthorized, want.Denied)
	}
	if permitsKey(got.Permits) != permitsKey(want.Permits) {
		t.Fatalf("%s: permits differ:\n%s\nvs\n%s", label, permitsKey(got.Permits), permitsKey(want.Permits))
	}
	if got.Stats.RevealedCells != want.Stats.RevealedCells ||
		got.Stats.RevealedRows != want.Stats.RevealedRows ||
		got.Stats.FullRows != want.Stats.FullRows {
		t.Fatalf("%s: revealed stats differ: %+v vs %+v", label, got.Stats, want.Stats)
	}
}

// TestClosureDecisionsIdentical is the sixth differential variant: a
// closure-backed authorizer must deliver byte-identical answers to a
// fresh recompute — cold, warm (exact hit), under append churn
// (incremental refresh), after deletions (data invalidation), and after
// definition changes (generation invalidation) — across randomized
// databases, views, queries, and option mixes, including the naive
// evaluator and extended masks.
func TestClosureDecisionsIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	cases := 300
	if testing.Short() {
		cases = 60
	}
	var served core.ClosureStats
	for iter := 0; iter < cases; iter++ {
		f := soundFixture(rng, 10)
		randJoinView(f, rng, 0)
		if rng.Intn(2) == 0 {
			randJoinView(f, rng, 1)
		}
		def := randQueryDef(rng)
		base := core.DefaultOptions()
		base.ExtendedMasks = rng.Intn(2) == 0
		base.MaskPushdown = rng.Intn(2) == 0
		base.IndexedExec = rng.Intn(2) == 0
		if rng.Intn(4) == 0 {
			base.OptimizedExec = false
		}
		m := newMVCCFixture(f)

		ca := core.NewAuthorizer(f.Store, f.Source, base)
		ca.Cache = core.NewMaskCache(0)
		ca.Closure = core.NewClosure(0)

		naive := base
		naive.OptimizedExec = false
		naive.IndexedExec = false
		naive.MaskPushdown = false

		check := func(step string) {
			t.Helper()
			label := fmt.Sprintf("case %d %s (ext=%v push=%v opt=%v) query %s",
				iter, step, base.ExtendedMasks, base.MaskPushdown, base.OptimizedExec, def)
			got, err := ca.Retrieve("u", def)
			if err != nil {
				t.Fatalf("%s: closure-backed: %v", label, err)
			}
			want, err := core.NewAuthorizer(f.Store, f.Source, base).Retrieve("u", def)
			if err != nil {
				t.Fatalf("%s: recompute: %v", label, err)
			}
			compareDecisions(t, label, got, want)
			nd, err := core.NewAuthorizer(f.Store, f.Source, naive).Retrieve("u", def)
			if err != nil {
				t.Fatalf("%s: naive: %v", label, err)
			}
			if !got.Masked.Equal(nd.Masked) {
				t.Fatalf("%s: closure-backed masked differs from naive:\n%s\nvs\n%s",
					label, got.Masked, nd.Masked)
			}
		}

		check("cold")
		check("warm")
		for j := 0; j < 3; j++ {
			m.insert("R", int64(100+j), int64(rng.Intn(10)), int64(rng.Intn(6)))
			if rng.Intn(2) == 0 {
				m.insert("S", int64(100+j), int64(rng.Intn(6)))
			}
			check(fmt.Sprintf("append %d", j))
		}
		cut := int64(rng.Intn(6))
		m.deleteWhere("R", func(tp relation.Tuple) bool { return tp[2].Equal(value.Int(cut)) })
		check("after delete")
		m.insert("R", 200, int64(rng.Intn(10)), int64(rng.Intn(6)))
		check("append after delete")
		// Definition churn: a new permit moves the permission generation.
		randJoinView(f, rng, 7)
		check("after new view+permit")
		f.Store.Revoke("J7", "u")
		check("after revoke")

		s := ca.Closure.Stats()
		served.Hits += s.Hits
		served.Refreshes += s.Refreshes
		served.InvalidDef += s.InvalidDef
		served.InvalidData += s.InvalidData
	}
	// The run must actually have exercised every closure path.
	if served.Hits == 0 || served.Refreshes == 0 || served.InvalidDef == 0 || served.InvalidData == 0 {
		t.Fatalf("differential did not exercise all closure paths: %+v", served)
	}
}

// closureMatrixFixture: one relation, one partial view, a single-scan
// query — the incremental-eligible shape.
func closureMatrixFixture(t *testing.T) (*workload.Fixture, *mvccFixture, *cview.Def) {
	t.Helper()
	f := workload.NewFixture()
	f.MustExec(`
		relation R (A, B, C) key (A);
		insert into R values (1, 10, 1);
		insert into R values (2, 20, 3);
		insert into R values (3, 30, 5);
		view V (R.A, R.B) where R.B >= 15;
		permit V to u;
	`)
	def := &cview.Def{Cols: []cview.ColRef{{Alias: "R", Attr: "A"}, {Alias: "R", Attr: "B"}}}
	return f, newMVCCFixture(f), def
}

// TestClosureInvalidationMatrix drives each closure transition and
// asserts the counters and the retained state: exact hits on unchanged
// state, incremental refreshes on pure appends, data invalidation (with
// the predicate side surviving in the mask cache) on deletes, and
// definition invalidation on each of permit, revoke, define view, and
// drop view — but not on another user's permit.
func TestClosureInvalidationMatrix(t *testing.T) {
	f, m, def := closureMatrixFixture(t)
	opt := core.DefaultOptions()
	opt.MaskPushdown = true
	ca := core.NewAuthorizer(f.Store, f.Source, opt)
	ca.Cache = core.NewMaskCache(0)
	ca.Closure = core.NewClosure(0)

	retrieve := func(step string) *core.Decision {
		t.Helper()
		d, err := ca.Retrieve("u", def)
		if err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		want, err := core.NewAuthorizer(f.Store, f.Source, opt).Retrieve("u", def)
		if err != nil {
			t.Fatalf("%s recompute: %v", step, err)
		}
		compareDecisions(t, step, d, want)
		return d
	}
	assertStats := func(step string, want core.ClosureStats) {
		t.Helper()
		got := ca.Closure.Stats()
		got.Entries, got.ResidentRows = 0, 0 // counters only
		if got != want {
			t.Fatalf("%s: closure stats %+v, want %+v", step, got, want)
		}
	}

	retrieve("cold")
	assertStats("cold", core.ClosureStats{Misses: 1})
	retrieve("warm")
	assertStats("warm", core.ClosureStats{Hits: 1, Misses: 1})

	// Pure appends: incremental refresh, then exact hits again.
	m.insert("R", 4, 40, 4) // delivered (B >= 15)
	m.insert("R", 5, 5, 0)  // withheld
	d := retrieve("after append")
	assertStats("after append", core.ClosureStats{Hits: 2, Misses: 1, Refreshes: 1})
	if d.Masked.Len() != 3 {
		t.Fatalf("after append: delivered %d rows, want 3", d.Masked.Len())
	}
	retrieve("warm after append")
	assertStats("warm after append", core.ClosureStats{Hits: 3, Misses: 1, Refreshes: 1})

	// Deletion: the materialization is unrepairable, but the mask plan
	// survives in the cache — data churn never touches the predicate
	// side.
	ch0, cm0, _ := ca.Cache.Stats()
	if m.deleteWhere("R", func(tp relation.Tuple) bool { return tp[0].Equal(value.Int(2)) }) != 1 {
		t.Fatal("delete removed nothing")
	}
	d = retrieve("after delete")
	assertStats("after delete", core.ClosureStats{Hits: 3, Misses: 2, Refreshes: 1, InvalidData: 1})
	if d.Masked.Len() != 2 {
		t.Fatalf("after delete: delivered %d rows, want 2", d.Masked.Len())
	}
	ch1, cm1, _ := ca.Cache.Stats()
	if ch1 != ch0+1 || cm1 != cm0 {
		t.Fatalf("delete should recompute through the cached mask plan: cache hits %d→%d misses %d→%d",
			ch0, ch1, cm0, cm1)
	}

	// Another principal's permit must not invalidate u's entry.
	if err := tryExec(f, "view W (R.A); permit W to other;"); err != nil {
		t.Fatal(err)
	}
	// (the view definition moves the view generation — a real
	// invalidation for everyone; re-warm first)
	retrieve("rewarm after foreign view")
	assertStats("rewarm after foreign view", core.ClosureStats{Hits: 3, Misses: 3, Refreshes: 1, InvalidData: 1, InvalidDef: 1})
	if err := f.Store.Permit("W", "stranger"); err != nil {
		t.Fatal(err)
	}
	retrieve("after foreign permit")
	assertStats("after foreign permit", core.ClosureStats{Hits: 4, Misses: 3, Refreshes: 1, InvalidData: 1, InvalidDef: 1})

	// Each definition statement touching u or the view set invalidates.
	steps := []struct {
		name string
		mut  func()
	}{
		{"permit", func() {
			if err := f.Store.Permit("W", "u"); err != nil {
				t.Fatal(err)
			}
		}},
		{"revoke", func() {
			if !f.Store.Revoke("W", "u") {
				t.Fatal("revoke failed")
			}
		}},
		{"define view", func() {
			if err := tryExec(f, "view X (R.C);"); err != nil {
				t.Fatal(err)
			}
		}},
		{"drop view", func() {
			if !f.Store.DropView("X") {
				t.Fatal("drop failed")
			}
		}},
	}
	base := ca.Closure.Stats()
	for _, st := range steps {
		st.mut()
		retrieve(st.name)
		base.InvalidDef++
		base.Misses++
		assertStats(st.name, core.ClosureStats{
			Hits: base.Hits, Misses: base.Misses, Refreshes: base.Refreshes,
			InvalidDef: base.InvalidDef, InvalidData: base.InvalidData,
		})
	}
}

// TestClosureResidentBitmaps checks the materialized artifact itself:
// the per-tuple row bitmaps partition the delivered rows (one mask
// tuple per row — the soundness requirement), and their total matches
// the revealed row count through appends.
func TestClosureResidentBitmaps(t *testing.T) {
	f, m, def := closureMatrixFixture(t)
	opt := core.DefaultOptions()
	ca := core.NewAuthorizer(f.Store, f.Source, opt)
	ca.Closure = core.NewClosure(0)

	d, err := ca.Retrieve("u", def)
	if err != nil {
		t.Fatal(err)
	}
	if got := ca.Closure.Stats().ResidentRows; got != d.Stats.RevealedRows {
		t.Fatalf("resident bitmap rows %d, want RevealedRows %d", got, d.Stats.RevealedRows)
	}
	for i := 0; i < 5; i++ {
		m.insert("R", int64(10+i), int64(i), int64(i%6))
		d, err = ca.Retrieve("u", def)
		if err != nil {
			t.Fatal(err)
		}
		if got := ca.Closure.Stats().ResidentRows; got != d.Stats.RevealedRows {
			t.Fatalf("append %d: resident bitmap rows %d, want RevealedRows %d",
				i, got, d.Stats.RevealedRows)
		}
	}
	if ca.Closure.Stats().Refreshes == 0 {
		t.Fatal("appends never refreshed incrementally")
	}
}
