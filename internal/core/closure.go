package core

import (
	"sync"

	"authdb/internal/algebra"
	"authdb/internal/relation"
	"authdb/internal/value"
)

// Closure is the materialized mask closure: where MaskCache memoizes
// the compiled meta-side *plan* per (user, query), the closure keeps
// the plan's materialized *result* — the evaluated answer, the masked
// relation actually delivered, the masking statistics, and per-mask-
// tuple row bitmaps — resident per (user, query, options), so a
// steady-state retrieve pays one map lookup and a handful of pointer
// comparisons instead of re-running either pipeline.
//
// Validity is two-sided, mirroring the two things a result depends on:
//
//   - Definitions: each entry is stamped with the store's view and
//     per-user permission generations, exactly like MaskCache entries.
//     Permit, revoke, define view, and drop view move a generation, and
//     a mismatched entry is discarded (a definition invalidation) — the
//     mask itself is stale, so nothing survives.
//   - Data: each entry is stamped with the pointer identity of every
//     scanned relation revision (MVCC revisions are immutable, so
//     pointer equality is revision equality). Data changes leave the
//     generations — and therefore the predicate side of the artifact —
//     untouched; only the materialized rows and bitmaps go stale.
//
// On a data-side mismatch the entry can often be repaired instead of
// rebuilt: for a single-scan, non-extended plan whose new revision
// extends the cached one by pure appends (relation.ExtendsByAppend —
// the common insert-only churn), only the appended window is evaluated
// through the retained executable plan, its rows are masked through the
// retained compiled mask, and the answer/masked accumulators and row
// bitmaps grow in place. Deletions, reallocation, multi-scan plans, and
// extended masks fall back to a full recompute (which re-Stores).
//
// One-mask-tuple-per-row soundness is preserved by construction: the
// bitmaps are populated from the same bestIndex decision Apply makes —
// each answer row sets a bit in exactly one tuple's bitmap (the
// matching tuple starring the most attributes, first on ties), so the
// materialized masked relation is identical to applying the mask row by
// row, and no row ever discloses the union of several tuples' reveals.
//
// Like MaskCache, the closure is engine-global while stores and
// revisions are per-version: generation stamps stay coherent because
// the counters are monotone along the store's clone lineage, and
// revision stamps are exact by pointer identity. A reader pinned to an
// older version never matches a newer entry's stamps (and vice versa) —
// concurrent readers at different versions may displace each other's
// entries, which costs recomputation, never staleness.
type Closure struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*closureEntry
	// order lists live keys oldest-first for FIFO eviction.
	order []string

	hits          uint64 // lookups served from the closure (incl. refreshes)
	misses        uint64 // lookups that fell through to full computation
	refreshes     uint64 // hits that first replayed an appended window
	invalidDef    uint64 // entries dropped because a definition generation moved
	invalidData   uint64 // lookups that missed because revisions moved irreparably
	invalidDelete uint64 // entries dropped eagerly by InvalidateRelation
}

// closureEntry is one resident materialization. The plan side (plan,
// psjExec, fused) survives data churn; the result side (revs, res, and
// the incremental accumulators) is keyed to the stamped revisions.
type closureEntry struct {
	viewGen uint64
	permGen uint64
	// plan is the compiled meta side; psjExec the actual-side plan that
	// was executed (pushdown-fused when fused is set).
	plan    *MaskPlan
	psjExec *algebra.PSJ
	fused   bool
	// rels names the scanned base relations, in scan order —
	// InvalidateRelation's match set.
	rels []string
	// revs pins the scanned relation revisions the result was built
	// against, in scan order.
	revs []*relation.Relation
	// res is the published result snapshot; immutable once set (refresh
	// replaces it wholesale).
	res *closureResult

	// Incremental state, present for single-scan non-extended plans.
	// va and vm accumulate the answer and masked relations grow-only
	// (MVCC-style: published heads are immutable, appends build
	// successors); bits holds one row bitmap per mask tuple over va's
	// row positions; stats tracks the masking statistics for va's rows.
	incremental bool
	va, vm      *relation.Versioned
	bits        []*relation.Bitmap
	stats       MaskStats
}

// closureResult is the served snapshot: relations must be treated as
// read-only by every consumer (the same contract as published MVCC
// revisions — read via Tuples, Sorted, Len; never Insert or Contains).
type closureResult struct {
	answer *relation.Relation
	masked *relation.Relation
	stats  MaskStats
}

// DefaultClosureCap bounds an engine's mask closure. Entries hold
// materialized rows (unlike MaskCache's small plans), so the cap is an
// order of magnitude tighter; FIFO eviction also bounds how many
// superseded revisions the stamped pointers keep alive.
const DefaultClosureCap = 256

// NewClosure creates a closure holding at most capacity entries;
// capacity <= 0 selects DefaultClosureCap.
func NewClosure(capacity int) *Closure {
	if capacity <= 0 {
		capacity = DefaultClosureCap
	}
	return &Closure{cap: capacity, entries: make(map[string]*closureEntry)}
}

// ClosureStats is a snapshot of the closure's effectiveness counters.
type ClosureStats struct {
	// Hits counts lookups served from resident state, including
	// incremental refreshes; Misses counts lookups that fell through to
	// the full dual-pipeline computation.
	Hits, Misses uint64
	// Refreshes counts the subset of hits that first replayed an
	// appended window through the retained plan.
	Refreshes uint64
	// InvalidDef counts entries dropped because a view or permission
	// generation moved; InvalidData counts lookups whose revisions had
	// moved beyond repair (also counted in Misses); InvalidDelete counts
	// entries dropped eagerly because a scanned relation was deleted
	// from (InvalidateRelation).
	InvalidDef, InvalidData, InvalidDelete uint64
	// Entries is the current resident entry count; ResidentRows the
	// total set bits across all row bitmaps.
	Entries, ResidentRows int
}

// Invalidations returns the combined invalidation count.
func (s ClosureStats) Invalidations() uint64 {
	return s.InvalidDef + s.InvalidData + s.InvalidDelete
}

// Stats reports the closure's counters. Safe on a nil closure.
func (c *Closure) Stats() ClosureStats {
	if c == nil {
		return ClosureStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := ClosureStats{
		Hits: c.hits, Misses: c.misses, Refreshes: c.refreshes,
		InvalidDef: c.invalidDef, InvalidData: c.invalidData,
		InvalidDelete: c.invalidDelete,
		Entries:       len(c.entries),
	}
	for _, e := range c.entries {
		for _, b := range e.bits {
			s.ResidentRows += b.Count()
		}
	}
	return s
}

// sameRevs reports pointer-wise revision equality.
func sameRevs(a, b []*relation.Relation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// decisionFor assembles a Decision from resident state. Each hit gets a
// fresh Decision struct; the relations and plan fields are shared,
// read-only.
func decisionFor(e *closureEntry, psj *algebra.PSJ) *Decision {
	p := e.plan
	return &Decision{
		PSJ:             psj,
		Answer:          e.res.answer,
		Masked:          e.res.masked,
		Mask:            p.Mask,
		Permits:         p.Permits,
		Stats:           e.res.stats,
		FullyAuthorized: p.FullyAuthorized,
		Denied:          p.Denied,
		Views:           p.Views,
		Inst:            p.Inst,
		Pushdown:        p.Pushdown,
		PushdownApplied: e.fused,
	}
}

// Lookup serves a retrieve from resident state when possible. revs are
// the pinned revisions of the query's scans, in scan order. It returns
// (decision, true, nil) on a closure hit — exact or after an
// incremental refresh — and (nil, false, nil) when the caller must run
// the full computation (and then Store the outcome). A non-nil error
// arises only from a guard trip during a refresh's window evaluation.
//
// The incremental window is evaluated outside the closure lock (so slow
// refreshes never serialize unrelated lookups) and applied under it
// after revalidating that no concurrent refresh won; a lost race simply
// degrades to a miss.
func (c *Closure) Lookup(a *Authorizer, user string, psj *algebra.PSJ, revs []*relation.Relation) (*Decision, bool, error) {
	if c == nil {
		return nil, false, nil
	}
	st := a.Store
	key := cacheKey(user, psj, a.Opt)

	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		c.mu.Unlock()
		return nil, false, nil
	}
	if e.viewGen != st.ViewGen() || e.permGen != st.PermGen(user) {
		// The mask itself is stale: drop everything.
		c.removeLocked(key)
		c.invalidDef++
		c.misses++
		c.mu.Unlock()
		return nil, false, nil
	}
	if sameRevs(e.revs, revs) {
		c.hits++
		d := decisionFor(e, psj)
		c.mu.Unlock()
		return d, true, nil
	}
	if !e.incremental || len(revs) != 1 || !relation.ExtendsByAppend(e.revs[0], revs[0]) {
		// Data moved beyond repair for this entry; the predicate side
		// still lives on in the MaskCache, so the recompute skips the
		// meta pipeline. The entry stays resident meanwhile — readers
		// pinned to its revisions keep hitting it until Store replaces.
		c.invalidData++
		c.misses++
		c.mu.Unlock()
		return nil, false, nil
	}
	oldRev := e.revs[0]
	base := oldRev.Len()
	plan, psjExec := e.plan, e.psjExec
	c.mu.Unlock()

	// Evaluate just the appended window through the retained plan,
	// unlocked: the window and the old revision are immutable.
	tail := revs[0].Suffix(base)
	src := algebra.MapSource(map[string]*relation.Relation{psj.Scans[0].Rel: tail})
	tailAns, err := a.evalActual(psjExec, src)
	if err != nil {
		return nil, false, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	e2, ok := c.entries[key]
	if !ok || e2 != e || e.viewGen != st.ViewGen() || e.permGen != st.PermGen(user) {
		c.misses++
		return nil, false, nil
	}
	if sameRevs(e.revs, revs) {
		// A concurrent refresh reached our target revision first.
		c.hits++
		return decisionFor(e, psj), true, nil
	}
	if e.revs[0] != oldRev {
		// Refreshed past a different revision; our window basis is gone.
		c.invalidData++
		c.misses++
		return nil, false, nil
	}
	ex := plan.Mask.compiled()
	width := e.va.Arity()
	for _, t := range tailAns.Tuples() {
		// Projection can collapse an appended base row onto an answer
		// row already delivered; the answer is a set.
		if e.va.Contains(t) {
			continue
		}
		pos := e.va.Len()
		e.va.Insert(t) //nolint:errcheck // arity correct by construction
		bi := plan.Mask.bestIndex(ex, t)
		if bi < 0 {
			continue
		}
		e.bits[bi].Set(pos)
		revealed := ex.reveal[bi]
		row := make(relation.Tuple, width)
		full := true
		for k := range row {
			if revealed[k] {
				row[k] = t[k]
				e.stats.RevealedCells++
			} else {
				row[k] = value.Null()
				full = false
			}
		}
		e.stats.RevealedRows++
		if full {
			e.stats.FullRows++
		}
		e.vm.Insert(row) //nolint:errcheck // arity correct by construction
	}
	e.stats.Rows = e.va.Len()
	e.stats.Cells = e.stats.Rows * width
	e.revs = append([]*relation.Relation(nil), revs...)
	e.res = &closureResult{answer: e.va.Head(), masked: e.vm.Head(), stats: e.stats}
	c.refreshes++
	c.hits++
	return decisionFor(e, psj), true, nil
}

// Store materializes a freshly computed decision: the executed plan,
// the revision stamps, the result snapshot, and — for single-scan
// non-extended plans — the incremental accumulators and per-tuple row
// bitmaps (pick is applyIndexed's row-to-tuple assignment; nil on the
// extended path). Store takes ownership of d.Answer and d.Masked in the
// MVCC sense: their published prefixes stay immutable, later refreshes
// extend the shared backing arrays past them.
func (c *Closure) Store(st *Store, user string, psj *algebra.PSJ, opt Options, revs []*relation.Relation, mp *MaskPlan, d *Decision, psjExec *algebra.PSJ, pick []int) {
	if c == nil || mp == nil || d == nil {
		return
	}
	rels := make([]string, len(psj.Scans))
	for i, sc := range psj.Scans {
		rels[i] = sc.Rel
	}
	e := &closureEntry{
		viewGen: st.ViewGen(),
		permGen: st.PermGen(user),
		plan:    mp,
		psjExec: psjExec,
		fused:   d.PushdownApplied,
		rels:    rels,
		revs:    append([]*relation.Relation(nil), revs...),
		res:     &closureResult{answer: d.Answer, masked: d.Masked, stats: d.Stats},
		stats:   d.Stats,
	}
	if len(psj.Scans) == 1 && !opt.ExtendedMasks && pick != nil {
		e.incremental = true
		e.va = relation.VersionedOf(d.Answer)
		e.vm = relation.VersionedOf(d.Masked)
		e.bits = make([]*relation.Bitmap, len(mp.Mask.Tuples))
		for i := range e.bits {
			e.bits[i] = relation.NewBitmap()
		}
		for pos, bi := range pick {
			if bi >= 0 {
				e.bits[bi].Set(pos)
			}
		}
	}
	key := cacheKey(user, psj, opt)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		c.removeLocked(key)
	}
	for len(c.entries) >= c.cap && len(c.order) > 0 {
		c.removeLocked(c.order[0])
	}
	c.entries[key] = e
	c.order = append(c.order, key)
}

// InvalidateRelation eagerly drops every entry whose masked relations
// include rel. Deletes cannot be repaired by the append-window refresh
// (the accumulators only grow), so the engine calls this after a delete
// commits: entries over other relations stay resident, and the doomed
// ones release their materialized rows immediately instead of lingering
// until their next lookup misses. Safe on a nil closure.
func (c *Closure) InvalidateRelation(rel string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, e := range c.entries {
		for _, r := range e.rels {
			if r == rel {
				c.removeLocked(key)
				c.invalidDelete++
				break
			}
		}
	}
}

// removeLocked deletes key from the map and the FIFO order; callers
// hold c.mu.
func (c *Closure) removeLocked(key string) {
	delete(c.entries, key)
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}
