package core_test

import (
	"strings"
	"testing"

	"authdb/internal/core"
	"authdb/internal/relation"
	"authdb/internal/value"
	"authdb/internal/workload"
)

// TestEmptyRelations: authorization over empty instances never errors and
// the full-grant classification stays structural (mask-based), not
// data-based.
func TestEmptyRelations(t *testing.T) {
	f := workload.NewFixture()
	f.MustExec(`
		relation R (A, B) key (A);
		view V (R.A, R.B);
		permit V to u;
	`)
	auth := core.NewAuthorizer(f.Store, f.Source, core.DefaultOptions())
	d, err := auth.Retrieve("u", workload.MustQuery(`retrieve (R.A, R.B)`))
	if err != nil {
		t.Fatal(err)
	}
	if !d.FullyAuthorized {
		t.Fatal("full grant must be recognised on an empty instance")
	}
	if d.Answer.Len() != 0 || d.Masked.Len() != 0 {
		t.Fatal("empty instance must yield empty relations")
	}
}

// TestNullDataInBaseRelation: nulls can enter base relations through CSV
// loading; masks must treat them as ordinary (smallest) values, never
// crash, and never confuse them with masked cells in a way that reveals
// more.
func TestNullDataInBaseRelation(t *testing.T) {
	f := workload.NewFixture()
	f.MustExec(`
		relation R (A, B) key (A);
		view V (R.A) where R.B >= 0;
		permit V to u;
	`)
	// Insert a tuple with a null B directly (the statement language has
	// no null literal; CSV loading can produce one).
	r := f.Rels["R"]
	if _, err := r.Insert(relation.Tuple{value.Int(1), value.Null()}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Insert(relation.Tuple{value.Int(2), value.Int(5)}); err != nil {
		t.Fatal(err)
	}
	auth := core.NewAuthorizer(f.Store, f.Source, core.DefaultOptions())
	d, err := auth.Retrieve("u", workload.MustQuery(`retrieve (R.A) where R.B >= 0`))
	if err != nil {
		t.Fatal(err)
	}
	// Null orders below every int, so the null row fails B >= 0; only
	// A=2 comes back.
	if d.Answer.Len() != 1 || d.Answer.Tuples()[0][0].AsInt() != 2 {
		t.Fatalf("answer:\n%s", d.Answer)
	}
	if !d.Masked.Equal(d.Answer) {
		t.Fatalf("masked:\n%s", d.Masked)
	}
}

// TestAmbiguousAttributeRejected: a query whose bare attribute resolves
// to two scans must fail cleanly, not guess.
func TestAmbiguousAttributeRejected(t *testing.T) {
	f := workload.Paper()
	auth := core.NewAuthorizer(f.Store, f.Source, core.DefaultOptions())
	_, err := auth.Retrieve("Brown", workload.MustQuery(`
		retrieve (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME)
		  where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE`))
	if err != nil {
		t.Fatalf("disambiguated self-join must work: %v", err)
	}
}

// TestUnknownRelationInQuery surfaces as an error from analysis.
func TestUnknownRelationInQuery(t *testing.T) {
	f := workload.Paper()
	auth := core.NewAuthorizer(f.Store, f.Source, core.DefaultOptions())
	if _, err := auth.Retrieve("Brown", workload.MustQuery(`retrieve (NOPE.X)`)); err == nil {
		t.Fatal("unknown relation accepted")
	}
}

// TestDeepJoinChain exercises a 4-way product pipeline end to end.
func TestDeepJoinChain(t *testing.T) {
	f := workload.NewFixture()
	f.MustExec(`
		relation T0 (K, F) key (K);
		relation T1 (K, F) key (K);
		relation T2 (K, F) key (K);
		relation T3 (K, F) key (K);
	`)
	for i := 0; i < 8; i++ {
		for _, rel := range []string{"T0", "T1", "T2", "T3"} {
			f.MustExec("insert into " + rel + " values (" + itoa(i) + ", " + itoa((i+1)%8) + ");")
		}
	}
	f.MustExec(`
		view CHAIN (T0.K, T1.K, T2.K, T3.K)
		  where T0.F = T1.K and T1.F = T2.K and T2.F = T3.K;
		permit CHAIN to u;
	`)
	auth := core.NewAuthorizer(f.Store, f.Source, core.DefaultOptions())
	d, err := auth.Retrieve("u", workload.MustQuery(`
		retrieve (T0.K, T3.K)
		  where T0.F = T1.K and T1.F = T2.K and T2.F = T3.K`))
	if err != nil {
		t.Fatal(err)
	}
	if !d.FullyAuthorized {
		t.Fatalf("chain query within CHAIN must be fully granted: %+v", d.Stats)
	}
	if d.Answer.Len() != 8 {
		t.Fatalf("chain answer rows = %d, want 8", d.Answer.Len())
	}
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + string(rune('0'+i%10))
}

// TestInequalityConditionView: a view with a ≠ condition survives the
// pipeline and its exclusion shows in the permit statement.
func TestInequalityConditionView(t *testing.T) {
	f := workload.NewFixture()
	f.MustExec(`
		relation R (A, B) key (A);
		insert into R values (1, 5);
		insert into R values (2, 7);
		view V (R.A, R.B) where R.B != 5;
		permit V to u;
	`)
	auth := core.NewAuthorizer(f.Store, f.Source, core.DefaultOptions())
	d, err := auth.Retrieve("u", workload.MustQuery(`retrieve (R.A, R.B)`))
	if err != nil {
		t.Fatal(err)
	}
	if d.Masked.Len() != 1 || d.Masked.Tuples()[0][1].AsInt() != 7 {
		t.Fatalf("masked:\n%s", d.Masked)
	}
	found := false
	for _, p := range d.Permits {
		if strings.Contains(p.String(), "B != 5") {
			found = true
		}
	}
	if !found {
		t.Fatalf("permits = %v", d.Permits)
	}
}

// TestSymbolicViewEndToEnd: a view whose condition compares two
// attributes symbolically (locked variables) masks correctly and renders
// its comparison.
func TestSymbolicViewEndToEnd(t *testing.T) {
	f := workload.NewFixture()
	f.MustExec(`
		relation R (A, LO, HI) key (A);
		insert into R values (1, 2, 9);
		insert into R values (2, 8, 3);
		view V (R.A, R.LO, R.HI) where R.LO < R.HI;
		permit V to u;
	`)
	auth := core.NewAuthorizer(f.Store, f.Source, core.DefaultOptions())
	d, err := auth.Retrieve("u", workload.MustQuery(`retrieve (R.A, R.LO, R.HI)`))
	if err != nil {
		t.Fatal(err)
	}
	if d.Masked.Len() != 1 || d.Masked.Tuples()[0][0].AsInt() != 1 {
		t.Fatalf("masked:\n%s", d.Masked)
	}
	found := false
	for _, p := range d.Permits {
		if strings.Contains(p.String(), "LO < HI") {
			found = true
		}
	}
	if !found {
		t.Fatalf("permits = %v", d.Permits)
	}
	// Querying with the same symbolic condition must also deliver,
	// keeping the symbolic residual (never cleared: the variables are
	// locked).
	d, err = auth.Retrieve("u", workload.MustQuery(`retrieve (R.A) where R.LO < R.HI`))
	if err != nil {
		t.Fatal(err)
	}
	if d.Masked.Len() != 1 {
		t.Fatalf("symbolic self-query masked:\n%s", d.Masked)
	}
}

// TestRepeatedColumnProjection: requesting the same column twice must
// work through the whole pipeline.
func TestRepeatedColumnProjection(t *testing.T) {
	f := workload.Paper()
	auth := core.NewAuthorizer(f.Store, f.Source, core.DefaultOptions())
	d, err := auth.Retrieve("Brown", workload.MustQuery(
		`retrieve (EMPLOYEE.NAME, EMPLOYEE.NAME, EMPLOYEE.SALARY)`))
	if err != nil {
		t.Fatal(err)
	}
	if d.Answer.Arity() != 3 {
		t.Fatalf("arity = %d", d.Answer.Arity())
	}
	for _, row := range d.Masked.Tuples() {
		if row[0].String() != row[1].String() {
			t.Fatalf("duplicated column values differ: %v", row)
		}
	}
}
