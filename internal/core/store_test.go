package core_test

import (
	"strings"
	"testing"

	"authdb/internal/core"
	"authdb/internal/parser"
	"authdb/internal/workload"
)

// storedCellString renders one stored tuple the way Figure 1 prints it.
func storedTupleString(v *core.StoredView, ti int) string {
	var parts []string
	for _, c := range v.Tuples[ti].Cells {
		s := ""
		switch {
		case c.Const != nil:
			s = c.Const.String()
		case c.Var != "":
			s = c.Var
		}
		if c.Star {
			s += "*"
		}
		parts = append(parts, s)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// TestFigure1Compilation checks the compiled meta-tuples against Figure 1
// cell for cell: stars, variables, constants, and blanks.
func TestFigure1Compilation(t *testing.T) {
	f := workload.Paper()
	want := map[string][]struct {
		rel   string
		cells string
	}{
		"SAE": {{"EMPLOYEE", "(*, , *)"}},
		"ELP": {
			{"EMPLOYEE", "(x1*, *, )"},
			{"PROJECT", "(x2*, , x3*)"},
			{"ASSIGNMENT", "(x1*, x2*)"},
		},
		"EST": {
			{"EMPLOYEE", "(*, x4*, )"},
			{"EMPLOYEE", "(*, x4*, )"},
		},
		"PSA": {{"PROJECT", "(*, Acme*, *)"}},
	}
	for name, tuples := range want {
		v := f.Store.View(name)
		if v == nil {
			t.Fatalf("view %s missing", name)
		}
		if len(v.Tuples) != len(tuples) {
			t.Fatalf("view %s has %d tuples, want %d", name, len(v.Tuples), len(tuples))
		}
		for i, wantTuple := range tuples {
			if v.Tuples[i].Rel != wantTuple.rel {
				t.Errorf("%s tuple %d over %s, want %s", name, i, v.Tuples[i].Rel, wantTuple.rel)
			}
			got := storedTupleString(v, i)
			got = strings.ReplaceAll(got, ", ,", ", ,") // keep literal blanks
			if got != wantTuple.cells {
				t.Errorf("%s tuple %d = %s, want %s", name, i, got, wantTuple.cells)
			}
		}
	}
	// ELP's x3 carries the COMPARISON constraint x3 >= 250000.
	elp := f.Store.View("ELP")
	iv, ok := elp.VarIv["x3"]
	if !ok {
		t.Fatal("x3 has no interval")
	}
	if !iv.Lo.Bounded || iv.Lo.V.AsInt() != 250000 || iv.Hi.Bounded {
		t.Fatalf("x3 interval = %v", iv)
	}
	// x4 links EST's two tuples.
	est := f.Store.View("EST")
	if occs := est.VarOccs["x4"]; len(occs) != 2 {
		t.Fatalf("x4 occurrences = %v", occs)
	}
}

func TestFigure1Rendering(t *testing.T) {
	f := workload.Paper()
	var b strings.Builder
	f.Store.RenderMeta(&b, "PROJECT")
	out := b.String()
	for _, want := range []string{"PROJECT'", "VIEW", "PSA", "Acme*", "ELP", "x2*", "x3*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("meta rendering misses %q:\n%s", want, out)
		}
	}
	b.Reset()
	f.Store.RenderComparison(&b)
	if !strings.Contains(b.String(), "x3") || !strings.Contains(b.String(), ">=") ||
		!strings.Contains(b.String(), "250000") {
		t.Fatalf("COMPARISON rendering:\n%s", b.String())
	}
	b.Reset()
	f.Store.RenderPermission(&b)
	for _, want := range []string{"Brown", "Klein", "SAE", "ELP", "EST", "PSA"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("PERMISSION rendering misses %q:\n%s", want, b.String())
		}
	}
}

func mustView(t *testing.T, f *workload.Fixture, stmt string) {
	t.Helper()
	s, err := parser.Parse(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Store.DefineView(s.(parser.ViewStmt).Def); err != nil {
		t.Fatal(err)
	}
}

func viewErr(t *testing.T, f *workload.Fixture, stmt string) error {
	t.Helper()
	s, err := parser.Parse(stmt)
	if err != nil {
		t.Fatal(err)
	}
	return f.Store.DefineView(s.(parser.ViewStmt).Def)
}

func TestDefineViewErrors(t *testing.T) {
	f := workload.Paper()
	cases := []string{
		// Redefinition.
		`view SAE (EMPLOYEE.NAME)`,
		// Contradictory constant equalities.
		`view C1 (PROJECT.NUMBER) where PROJECT.SPONSOR = Acme and PROJECT.SPONSOR = Apex`,
		// Contradictory comparative against a pinned constant.
		`view C2 (PROJECT.NUMBER) where PROJECT.BUDGET = 100 and PROJECT.BUDGET > 200`,
		// Contradictory interval.
		`view C3 (PROJECT.NUMBER) where PROJECT.BUDGET > 200 and PROJECT.BUDGET < 100`,
		// A < A is unsatisfiable.
		`view C4 (PROJECT.NUMBER) where PROJECT.BUDGET < PROJECT.BUDGET`,
		// Unknown relation.
		`view C5 (NOPE.X)`,
	}
	for _, stmt := range cases {
		if err := viewErr(t, f, stmt); err == nil {
			t.Errorf("%s: accepted", stmt)
		}
	}
	// A ≤ A is trivially satisfiable and fine.
	mustView(t, f, `view OK1 (PROJECT.NUMBER) where PROJECT.BUDGET <= PROJECT.BUDGET`)
}

func TestSymbolicComparisonCompiles(t *testing.T) {
	f := workload.Paper()
	mustView(t, f, `view RICH (EMPLOYEE.NAME, EMPLOYEE.SALARY, PROJECT.BUDGET)
		where EMPLOYEE.SALARY > PROJECT.BUDGET`)
	v := f.Store.View("RICH")
	if len(v.VarCmps) != 1 {
		t.Fatalf("VarCmps = %v", v.VarCmps)
	}
}

func TestPermitRevokeDrop(t *testing.T) {
	f := workload.Paper()
	if err := f.Store.Permit("NOPE", "Brown"); err == nil {
		t.Error("permit on unknown view accepted")
	}
	// Idempotent permit.
	if err := f.Store.Permit("SAE", "Brown"); err != nil {
		t.Fatal(err)
	}
	if n := len(f.Store.ViewsFor("Brown")); n != 3 {
		t.Fatalf("Brown has %d views, want 3", n)
	}
	if !f.Store.Revoke("SAE", "Brown") {
		t.Error("revoke failed")
	}
	if f.Store.Revoke("SAE", "Brown") {
		t.Error("double revoke succeeded")
	}
	if !f.Store.DropView("EST") {
		t.Error("drop failed")
	}
	if f.Store.DropView("EST") {
		t.Error("double drop succeeded")
	}
	for _, u := range []string{"Brown", "Klein"} {
		for _, v := range f.Store.ViewsFor(u) {
			if v == "EST" {
				t.Errorf("%s still permitted the dropped EST", u)
			}
		}
	}
	if got := f.Store.ViewNames(); len(got) != 3 {
		t.Fatalf("ViewNames = %v", got)
	}
}

func TestUsersSorted(t *testing.T) {
	f := workload.Paper()
	users := f.Store.Users()
	if len(users) != 2 || users[0] != "Brown" || users[1] != "Klein" {
		t.Fatalf("Users = %v", users)
	}
}

func TestVarNamesGloballySequential(t *testing.T) {
	// Figure 1 numbers variables across views in definition order:
	// ELP gets x1..x3, EST gets x4.
	f := workload.Paper()
	if _, ok := f.Store.View("EST").VarIv["x4"]; !ok {
		t.Fatalf("EST variables: %v", f.Store.View("EST").VarIv)
	}
	for _, x := range []string{"x1", "x2", "x3"} {
		if _, ok := f.Store.View("ELP").VarIv[x]; !ok {
			t.Fatalf("ELP misses %s: %v", x, f.Store.View("ELP").VarIv)
		}
	}
}
