package core_test

import (
	"strings"
	"testing"

	"authdb/internal/core"
	"authdb/internal/parser"
	"authdb/internal/workload"
)

// disjFixture grants u a disjunctive view over PROJECT: Acme's projects,
// or any project with a budget of at least 400,000.
func disjFixture(t *testing.T) *workload.Fixture {
	t.Helper()
	f := workload.NewFixture()
	f.MustExec(`
		relation PROJECT (NUMBER, SPONSOR, BUDGET) key (NUMBER);
		insert into PROJECT values (bq-45, Acme, 300000);
		insert into PROJECT values (sv-72, Apex, 450000);
		insert into PROJECT values (vg-13, Summit, 150000);
	`)
	stmt, err := parser.Parse(`
		view BIG_OR_ACME (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET)
		  where PROJECT.SPONSOR = Acme
		  or PROJECT.BUDGET >= 400000`)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Store.DefineView(stmt.(parser.ViewStmt).Def); err != nil {
		t.Fatal(err)
	}
	if err := f.Store.Permit("BIG_OR_ACME", "u"); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestDisjunctiveViewParses(t *testing.T) {
	s, err := parser.Parse(`
		view V (R.A) where R.A >= 1 and R.A <= 5 or R.A = 9 or R.A = 12`)
	if err != nil {
		t.Fatal(err)
	}
	def := s.(parser.ViewStmt).Def
	if len(def.Where) != 2 || len(def.Or) != 2 {
		t.Fatalf("branches: where=%v or=%v", def.Where, def.Or)
	}
	if !strings.Contains(def.String(), "or R.A = 9") {
		t.Fatalf("String() misses the disjunct:\n%s", def.String())
	}
}

func TestDisjunctiveQueryRejected(t *testing.T) {
	// Queries stay conjunctive — "or" after a retrieve is a parse error.
	if _, err := parser.Parse(`retrieve (R.A) where R.A = 1 or R.A = 2`); err == nil {
		t.Fatal("disjunctive retrieve accepted")
	}
}

func TestDisjunctiveViewBranches(t *testing.T) {
	f := disjFixture(t)
	bs := f.Store.Branches("BIG_OR_ACME")
	if len(bs) != 2 {
		t.Fatalf("branches = %d, want 2", len(bs))
	}
	if bs[0].Key == bs[1].Key {
		t.Fatal("branch provenance keys must differ")
	}
	if bs[0].Name != "BIG_OR_ACME" || bs[1].Name != "BIG_OR_ACME" {
		t.Fatal("branch names must stay the view's name")
	}
	if f.Store.ViewDef("BIG_OR_ACME") == nil {
		t.Fatal("original definition lost")
	}
}

func TestDisjunctiveViewMasksUnion(t *testing.T) {
	f := disjFixture(t)
	auth := core.NewAuthorizer(f.Store, f.Source, core.DefaultOptions())
	d, err := auth.Retrieve("u", workload.MustQuery(
		`retrieve (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET)`))
	if err != nil {
		t.Fatal(err)
	}
	// bq-45 via the Acme branch, sv-72 via the budget branch; vg-13
	// matches neither.
	if d.Masked.Len() != 2 {
		t.Fatalf("delivered rows:\n%s", d.Masked)
	}
	got := map[string]bool{}
	for _, row := range d.Masked.Tuples() {
		got[row[0].String()] = true
		for _, v := range row {
			if v.IsNull() {
				t.Fatalf("all columns are in the view head; none may be masked: %v", row)
			}
		}
	}
	if !got["bq-45"] || !got["sv-72"] || got["vg-13"] {
		t.Fatalf("delivered project set wrong: %v", got)
	}
	// Two permit statements, one per branch.
	var acme, budget bool
	for _, p := range d.Permits {
		if strings.Contains(p.String(), "SPONSOR = Acme") {
			acme = true
		}
		if strings.Contains(p.String(), "BUDGET >= 400000") {
			budget = true
		}
	}
	if !acme || !budget {
		t.Fatalf("permits = %v", d.Permits)
	}
}

func TestDisjunctiveViewWithSelection(t *testing.T) {
	f := disjFixture(t)
	auth := core.NewAuthorizer(f.Store, f.Source, core.DefaultOptions())
	// The query's own selection composes with both branches.
	d, err := auth.Retrieve("u", workload.MustQuery(`
		retrieve (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET)
		  where PROJECT.BUDGET >= 440000`))
	if err != nil {
		t.Fatal(err)
	}
	// Only sv-72 satisfies the query; the budget branch clears
	// (λ ⇒ μ), so the row is fully delivered.
	if d.Masked.Len() != 1 || d.Masked.Tuples()[0][0].String() != "sv-72" {
		t.Fatalf("delivered:\n%s", d.Masked)
	}
}

func TestDisjunctiveViewCrossRelationBranches(t *testing.T) {
	// Branches may reference different relation sets; each is
	// entirety-pruned independently.
	f := workload.Paper()
	stmt, err := parser.Parse(`
		view MIX (EMPLOYEE.NAME, EMPLOYEE.TITLE)
		  where EMPLOYEE.TITLE = engineer
		  or EMPLOYEE.NAME = ASSIGNMENT.E_NAME and ASSIGNMENT.P_NO = bq-45`)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Store.DefineView(stmt.(parser.ViewStmt).Def); err != nil {
		t.Fatal(err)
	}
	if err := f.Store.Permit("MIX", "u"); err != nil {
		t.Fatal(err)
	}
	auth := core.NewAuthorizer(f.Store, f.Source, core.DefaultOptions())
	// An EMPLOYEE-only query: only the first branch participates.
	d, err := auth.Retrieve("u", workload.MustQuery(`retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE)`))
	if err != nil {
		t.Fatal(err)
	}
	if d.Masked.Len() != 1 || d.Masked.Tuples()[0][0].String() != "Brown" {
		t.Fatalf("engineer branch delivery:\n%s", d.Masked)
	}
	// The full join query lets the second branch deliver bq-45's staff.
	d, err = auth.Retrieve("u", workload.MustQuery(`
		retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE)
		  where EMPLOYEE.NAME = ASSIGNMENT.E_NAME
		  and ASSIGNMENT.P_NO = bq-45`))
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, row := range d.Masked.Tuples() {
		names[row[0].String()] = true
	}
	if !names["Jones"] || !names["Smith"] {
		t.Fatalf("assignment branch delivery:\n%s", d.Masked)
	}
}

func TestDisjunctiveUpdateAuthorization(t *testing.T) {
	// Updates are authorized when ANY branch covers the tuple.
	f := disjFixture(t)
	// Build an engine over the same statements to exercise the session
	// path.
	db := newEngineFromFixtureScripts(t)
	u := db.NewSession("u", false)
	if _, err := u.Exec(`insert into PROJECT values (zz-1, Acme, 10)`); err != nil {
		t.Fatalf("Acme branch insert failed: %v", err)
	}
	if _, err := u.Exec(`insert into PROJECT values (zz-2, Apex, 500000)`); err != nil {
		t.Fatalf("budget branch insert failed: %v", err)
	}
	if _, err := u.Exec(`insert into PROJECT values (zz-3, Apex, 10)`); err == nil {
		t.Fatal("tuple outside both branches accepted")
	}
	_ = f
}
