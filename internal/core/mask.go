package core

import (
	"sort"
	"strings"
	"sync/atomic"

	"authdb/internal/relation"
	"authdb/internal/value"
)

// PermitStatement is one inferred permit accompanying a delivered answer
// (§5): the attributes the user may see and the conditions under which.
// The certifier reuses the form with a different verb ("certified").
type PermitStatement struct {
	Attrs []string
	Conds []string
	// Verb replaces "permit" when set.
	Verb string
}

// String renders the statement, e.g.
// "permit (NUMBER, SPONSOR) where SPONSOR = Acme".
func (p PermitStatement) String() string {
	verb := p.Verb
	if verb == "" {
		verb = "permit"
	}
	s := verb + " (" + strings.Join(p.Attrs, ", ") + ")"
	if len(p.Conds) > 0 {
		s += " where " + strings.Join(p.Conds, " and ")
	}
	return s
}

// DisplayNames maps qualified answer attributes to the paper's display
// names: the bare attribute when unique, otherwise "ATTR:i" numbered by
// occurrence (§5, footnote 4).
func DisplayNames(attrs []string) []string {
	count := make(map[string]int, len(attrs))
	for _, a := range attrs {
		_, bare := relation.SplitQualified(a)
		count[bare]++
	}
	seen := make(map[string]int, len(attrs))
	out := make([]string, len(attrs))
	for i, a := range attrs {
		_, bare := relation.SplitQualified(a)
		if count[bare] == 1 {
			out[i] = bare
			continue
		}
		seen[bare]++
		out[i] = bare + ":" + itoa(seen[bare])
	}
	return out
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + string(rune('0'+i%10))
}

// Matches reports whether an answer tuple satisfies the meta-tuple's
// residual selection: every cell constraint holds, cells sharing a
// variable hold equal values, and every symbolic comparison evaluates
// true. A comparison whose variable has no cell cannot be verified and
// fails closed.
func (m *MetaTuple) Matches(t relation.Tuple) bool {
	for k, c := range m.Cells {
		if !c.Cons.Contains(t[k]) {
			return false
		}
	}
	varVal := make(map[VarID]value.Value)
	for k, c := range m.Cells {
		if c.Var == 0 {
			continue
		}
		if prev, ok := varVal[c.Var]; ok {
			if !prev.Equal(t[k]) {
				return false
			}
		} else {
			varVal[c.Var] = t[k]
		}
	}
	for _, c := range m.Cmps {
		x, xok := varVal[c.X]
		y, yok := varVal[c.Y]
		if !xok || !yok || !c.Op.Eval(x, y) {
			return false
		}
	}
	return true
}

// EvalOn evaluates the meta-tuple as the subview it defines over a
// relation with matching attributes: the selection of its constraints
// followed by the projection onto its starred attributes. This realises
// the paper's reading of a meta-tuple as "defining a subview of the
// corresponding relation" (§3) and backs the Proposition 1–3 property
// tests.
func (m *MetaTuple) EvalOn(r *relation.Relation) *relation.Relation {
	var idx []int
	for k, c := range m.Cells {
		if c.Star {
			idx = append(idx, k)
		}
	}
	return r.Select(m.Matches).Project(idx)
}

// Mask is the meta-answer A' interpreted as a mask over the answer A.
type Mask struct {
	Attrs  []string
	Tuples []*MetaTuple
	// names resolves variable display names for rendering.
	names func(VarID) string
	// exec caches the compiled application order (star counts, reveal
	// templates, tuples sorted most-revealing-first); built lazily on
	// first Apply, atomically so masks shared across concurrent readers
	// need no lock. Subsume resets it.
	exec atomic.Pointer[maskExec]
}

// maskExec is the compiled form of a mask for application: per-tuple
// star counts and reveal templates computed once instead of inside the
// row loop, and the tuple order to probe. Tuples are stably sorted by
// descending star count, so the first match *is* the best match — the
// original scan kept the first tuple achieving the maximum star count
// among matchers, which is exactly the first matcher in (count desc,
// original position asc) order. Zero-star tuples are excluded: they can
// never be selected (revealing nothing is the same as not matching).
type maskExec struct {
	// order lists indices into Mask.Tuples, descending star count,
	// original order within equal counts.
	order []int
	// stars and reveal are indexed by original tuple position.
	stars  []int
	reveal [][]bool
}

// compiled returns the mask's compiled form, building it on first use.
// A concurrent race builds identical values; the last store wins and
// every caller proceeds with a correct copy.
func (m *Mask) compiled() *maskExec {
	if e := m.exec.Load(); e != nil {
		return e
	}
	e := &maskExec{
		stars:  make([]int, len(m.Tuples)),
		reveal: make([][]bool, len(m.Tuples)),
	}
	for i, mt := range m.Tuples {
		rv := make([]bool, len(mt.Cells))
		n := 0
		for k, c := range mt.Cells {
			if c.Star {
				rv[k] = true
				n++
			}
		}
		e.stars[i] = n
		e.reveal[i] = rv
		if n > 0 {
			e.order = append(e.order, i)
		}
	}
	sort.SliceStable(e.order, func(a, b int) bool {
		return e.stars[e.order[a]] > e.stars[e.order[b]]
	})
	m.exec.Store(e)
	return e
}

// bestIndex returns the position in m.Tuples of the tuple that delivers
// answer row t — the matching tuple starring the most attributes, first
// occurrence on ties — or -1 when no revealing tuple matches.
func (m *Mask) bestIndex(ex *maskExec, t relation.Tuple) int {
	for _, i := range ex.order {
		if m.Tuples[i].Matches(t) {
			return i
		}
	}
	return -1
}

// NewMask wraps the final meta-relation; inst may be nil.
func NewMask(mr *MetaRel, inst *Instance) *Mask {
	m := &Mask{Attrs: mr.Attrs, Tuples: mr.Tuples}
	if inst != nil {
		m.names = inst.VarName
	}
	return m
}

// MaskStats summarises what a mask delivered, for the experiment harness.
type MaskStats struct {
	// Rows and Cells count the full answer.
	Rows, Cells int
	// RevealedCells counts delivered values; RevealedRows rows with at
	// least one delivered value.
	RevealedCells, RevealedRows int
	// FullRows counts rows delivered in their entirety.
	FullRows int
}

// Full reports whether the entire answer was delivered.
func (s MaskStats) Full() bool { return s.RevealedCells == s.Cells }

// Empty reports whether nothing was delivered.
func (s MaskStats) Empty() bool { return s.RevealedCells == 0 }

// Apply masks the answer: each row is delivered through the single
// best-matching mask tuple (the one starring the most attributes), with
// every other value withheld (null). Rows no tuple matches are dropped,
// per §6: the user receives "a derived relation, whose structure
// corresponds to the request but whose tuples include only permitted
// values".
//
// One tuple per row is a soundness requirement, not a simplification:
// every delivered row is then a tuple of one inferred permitted subview.
// Unioning the starred sets of several matching mask tuples into one row
// would disclose the *correlation* between their columns — information
// derivable from no permitted view (the perturbation property test
// catches exactly this). When the correlation is legitimately available
// the §4.2 self-join refinement produces a single merged tuple that
// reveals the union by itself.
func (m *Mask) Apply(ans *relation.Relation) (*relation.Relation, MaskStats) {
	out, stats, _ := m.applyIndexed(ans)
	return out, stats
}

// applyIndexed is Apply returning, additionally, the index in m.Tuples
// of the delivering mask tuple per answer row (-1 for dropped rows), in
// answer order — the raw material for the closure's per-tuple row
// bitmaps. Star counts and reveal templates come precomputed from the
// compiled form rather than being recounted inside the row loop.
func (m *Mask) applyIndexed(ans *relation.Relation) (*relation.Relation, MaskStats, []int) {
	ex := m.compiled()
	stats := MaskStats{Rows: ans.Len(), Cells: ans.Len() * ans.Arity()}
	out := relation.New(ans.Attrs)
	width := ans.Arity()
	pick := make([]int, 0, ans.Len())
	for _, t := range ans.Tuples() {
		bi := m.bestIndex(ex, t)
		pick = append(pick, bi)
		if bi < 0 {
			continue
		}
		revealed := ex.reveal[bi]
		stats.RevealedRows++
		row := make(relation.Tuple, width)
		full := true
		for k := range row {
			if revealed[k] {
				row[k] = t[k]
				stats.RevealedCells++
			} else {
				row[k] = value.Null()
				full = false
			}
		}
		if full {
			stats.FullRows++
		}
		out.Insert(row) //nolint:errcheck // arity correct by construction
	}
	return out, stats, pick
}

// Permits renders one inferred permit statement per mask tuple, after
// subsumption (when enabled by the caller) has removed redundant tuples.
// A mask tuple that stars every attribute unconditionally yields no
// statement only when it is the mask's sole tuple and covers everything —
// the §5 Example 3 case is handled by the caller via MaskStats.Full.
func (m *Mask) Permits() []PermitStatement {
	names := DisplayNames(m.Attrs)
	var out []PermitStatement
	for _, mt := range m.Tuples {
		out = append(out, m.permitOf(mt, names))
	}
	return out
}

func (m *Mask) permitOf(mt *MetaTuple, names []string) PermitStatement {
	var p PermitStatement
	for k, c := range mt.Cells {
		if c.Star {
			p.Attrs = append(p.Attrs, names[k])
		}
	}
	// Variable groups: equalities between member attributes plus the
	// shared interval rendered on the first member.
	groups := make(map[VarID][]int)
	var order []VarID
	for k, c := range mt.Cells {
		if c.Var != 0 {
			if _, ok := groups[c.Var]; !ok {
				order = append(order, c.Var)
			}
			groups[c.Var] = append(groups[c.Var], k)
		}
	}
	seen := make(map[string]bool)
	add := func(cond string) {
		if !seen[cond] {
			seen[cond] = true
			p.Conds = append(p.Conds, cond)
		}
	}
	for _, v := range order {
		cells := groups[v]
		for _, k := range cells[1:] {
			add(names[cells[0]] + " = " + names[k])
		}
		for _, cond := range mt.Cells[cells[0]].Cons.Conds(names[cells[0]]) {
			add(cond)
		}
	}
	for k, c := range mt.Cells {
		if c.Var != 0 {
			continue
		}
		for _, cond := range c.Cons.Conds(names[k]) {
			add(cond)
		}
	}
	for _, c := range mt.Cmps {
		x, xok := groups[c.X]
		y, yok := groups[c.Y]
		if xok && yok {
			add(names[x[0]] + " " + c.Op.String() + " " + names[y[0]])
		}
	}
	return p
}

// Subsume removes mask tuples whose reveal is covered by another tuple:
// the survivor stars at least the same attributes and matches at least the
// same rows. Equal tuples keep their first occurrence.
func (m *Mask) Subsume() {
	kept := m.Tuples[:0]
	for i, t := range m.Tuples {
		dominated := false
		for j, u := range m.Tuples {
			if i == j {
				continue
			}
			if covers(u, t) {
				// Break ties on mutual coverage by position.
				if !covers(t, u) || j < i {
					dominated = true
					break
				}
			}
		}
		if !dominated {
			kept = append(kept, t)
		}
	}
	m.Tuples = kept
	// The compiled form indexes into Tuples; discard any built against
	// the pre-subsumption list. (Plans subsume before publication, so in
	// practice nothing has compiled yet.)
	m.exec.Store(nil)
}

// covers reports whether mask tuple a reveals at least as much as b on
// every possible answer tuple: a stars a superset of b's attributes, a's
// constraints are implied by b's, a requires no variable equality beyond
// b's, and a has no symbolic comparisons unless b carries the same ones.
func covers(a, b *MetaTuple) bool {
	for k := range a.Cells {
		if b.Cells[k].Star && !a.Cells[k].Star {
			return false
		}
		if !b.Cells[k].Cons.Implies(a.Cells[k].Cons) {
			return false
		}
	}
	// Every pair of cells a equates must be equated by b.
	for k := range a.Cells {
		if a.Cells[k].Var == 0 {
			continue
		}
		for l := k + 1; l < len(a.Cells); l++ {
			if a.Cells[l].Var == a.Cells[k].Var {
				if b.Cells[k].Var == 0 || b.Cells[k].Var != b.Cells[l].Var {
					return false
				}
			}
		}
	}
	// Symbolic comparisons on a must appear on b verbatim after mapping
	// through cell positions; require exact structural presence.
	for _, c := range a.Cmps {
		ka := firstCellOf(a, c.X)
		la := firstCellOf(a, c.Y)
		if ka < 0 || la < 0 {
			return false
		}
		found := false
		for _, d := range b.Cmps {
			if d.Op == c.Op && firstCellOf(b, d.X) == ka && firstCellOf(b, d.Y) == la {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func firstCellOf(m *MetaTuple, v VarID) int {
	for k, c := range m.Cells {
		if c.Var == v {
			return k
		}
	}
	return -1
}
