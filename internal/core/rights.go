package core

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Right summarises one membership meta-tuple of a permitted view from one
// relation's perspective: which of its attributes the view exposes and
// under which local conditions. It is a human audit surface; the
// authoritative semantics remain the meta-tuples themselves.
type Right struct {
	View string
	// Branch is the disjunct index of the view (0 for conjunctive).
	Branch int
	// Relation is the base relation the right applies to.
	Relation string
	// Attrs are the exposed (starred) attributes.
	Attrs []string
	// Conds renders the constant restrictions on this relation's
	// attributes; join conditions to other relations are summarised in
	// Joins.
	Conds []string
	// Joins lists attributes whose values must match attributes of the
	// view's other membership tuples.
	Joins []string
}

// RightsFor enumerates, per relation, what the user's permits expose —
// the flattened content of the meta-relations restricted to the user.
func (s *Store) RightsFor(user string) []Right {
	var out []Right
	for _, name := range s.ViewsFor(user) {
		for _, v := range s.Branches(name) {
			for _, t := range v.Tuples {
				rs := s.sch.Lookup(t.Rel)
				if rs == nil {
					continue
				}
				r := Right{View: name, Branch: v.Branch, Relation: t.Rel}
				for ci, c := range t.Cells {
					attr := rs.Attrs[ci]
					if c.Star {
						r.Attrs = append(r.Attrs, attr)
					}
					switch {
					case c.Const != nil:
						r.Conds = append(r.Conds, attr+" = "+c.Const.String())
					case c.Var != "":
						if iv, ok := v.VarIv[c.Var]; ok && !iv.IsFull() {
							r.Conds = append(r.Conds, iv.Conds(attr)...)
						}
						if len(v.VarOccs[c.Var]) > 1 {
							r.Joins = append(r.Joins, attr)
						}
					}
				}
				out = append(out, r)
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Relation != out[j].Relation {
			return out[i].Relation < out[j].Relation
		}
		return out[i].View < out[j].View
	})
	return out
}

// RenderRights writes the audit table for one user.
func (s *Store) RenderRights(w io.Writer, user string) {
	rights := s.RightsFor(user)
	if len(rights) == 0 {
		fmt.Fprintf(w, "user %s holds no permits\n", user)
		return
	}
	fmt.Fprintf(w, "rights of %s:\n", user)
	for _, r := range rights {
		name := r.View
		if r.Branch > 0 {
			name = fmt.Sprintf("%s (branch %d)", r.View, r.Branch+1)
		}
		fmt.Fprintf(w, "  %-12s via %-16s exposes (%s)", r.Relation, name, strings.Join(r.Attrs, ", "))
		if len(r.Conds) > 0 {
			fmt.Fprintf(w, " where %s", strings.Join(r.Conds, " and "))
		}
		if len(r.Joins) > 0 {
			fmt.Fprintf(w, " joined on (%s)", strings.Join(r.Joins, ", "))
		}
		fmt.Fprintln(w)
	}
}
