package core

import (
	"fmt"
	"io"
	"sort"

	"authdb/internal/cview"
	"authdb/internal/interval"
	"authdb/internal/relation"
	"authdb/internal/value"
)

// StoredCell is a compiled meta-tuple cell at rest: the variable is still
// a display name and its COMPARISON constraints live in the view's VarIv
// table, mirroring the paper's storage scheme where comparative
// subformulas sit in the auxiliary COMPARISON relation.
type StoredCell struct {
	Star bool
	Var  string
	// Const holds the constant for substituted equalities; nil otherwise.
	Const *value.Value
}

// StoredTuple is one membership subformula of a view, compiled to a
// meta-tuple over relation Rel (the row the paper stores in R').
type StoredTuple struct {
	Alias string
	Rel   string
	Cells []StoredCell
}

// StoredVarCmp is a COMPARISON row relating two variables.
type StoredVarCmp struct {
	X  string
	Op value.Cmp
	Y  string
}

// StoredView is one compiled conjunctive branch of a view definition: its
// meta-tuples, the interval form of its variable constraints, and where
// each variable occurs. Conjunctive views have exactly one branch;
// disjunctive views (§6 extension) one per disjunct.
type StoredView struct {
	Name string
	// Branch is the disjunct index (0 for conjunctive views).
	Branch int
	// Key identifies the branch in provenance references.
	Key    string
	Def    *cview.Def
	Tuples []StoredTuple
	// VarIv maps variable names to the conjunction of their constant
	// comparisons from COMPARISON, in interval form.
	VarIv map[string]interval.Interval
	// VarOccs maps variable names to the indices of Tuples mentioning
	// them.
	VarOccs map[string][]int
	// VarCmps holds the symbolic variable-to-variable comparisons.
	VarCmps []StoredVarCmp
}

// viewEntry binds a view's original definition to its compiled branches.
type viewEntry struct {
	def      *cview.Def
	branches []*StoredView
}

// Store holds the authorization state the paper adds to the database: the
// meta-relations R' (grouped here by view), the COMPARISON relation (as
// per-view variable constraints), and the PERMISSION relation.
type Store struct {
	sch      *relation.DBSchema
	views    map[string]*viewEntry
	order    []string
	perms    map[string][]string // user -> view names in grant order
	varCount int
	// viewGen counts view-set mutations (define, drop) and permGen
	// per-user permit mutations (permit, revoke). Masks derive from
	// nothing else — never from relation instances — so a MaskCache
	// entry stamped with both generations stays valid exactly as long
	// as the mask it holds. The store itself is not synchronized (the
	// engine's lock serializes mutations), so these are plain counters.
	viewGen uint64
	permGen map[string]uint64
}

// NewStore creates an empty authorization store over a database scheme.
func NewStore(sch *relation.DBSchema) *Store {
	return &Store{
		sch:     sch,
		views:   make(map[string]*viewEntry),
		perms:   make(map[string][]string),
		permGen: make(map[string]uint64),
	}
}

// Clone returns a copy of the store bound to sch that can be mutated
// without affecting the original — the copy-on-write step a versioned
// engine takes before a definition change (define/drop view, permit,
// revoke), so readers pinned to the old store keep a stable
// meta-database. Compiled view entries are shared (immutable once
// DefineView built them); the maps, the order, and every permission
// slice are copied because DropView and Revoke splice them in place.
// The generation counters carry over, keeping them monotone along the
// clone lineage — which is what lets one MaskCache serve every version:
// an entry whose (viewGen, permGen) stamps match a pinned store was
// compiled from identical definitions.
func (s *Store) Clone(sch *relation.DBSchema) *Store {
	ns := &Store{
		sch:      sch,
		views:    make(map[string]*viewEntry, len(s.views)),
		order:    append([]string(nil), s.order...),
		perms:    make(map[string][]string, len(s.perms)),
		varCount: s.varCount,
		viewGen:  s.viewGen,
		permGen:  make(map[string]uint64, len(s.permGen)),
	}
	for n, e := range s.views {
		ns.views[n] = e
	}
	for u, vs := range s.perms {
		ns.perms[u] = append([]string(nil), vs...)
	}
	for u, g := range s.permGen {
		ns.permGen[u] = g
	}
	return ns
}

// ViewGen returns the view-set mutation generation; it advances on every
// DefineView and DropView.
func (s *Store) ViewGen() uint64 { return s.viewGen }

// PermGen returns user's permit mutation generation; it advances on
// every Permit and Revoke affecting that user.
func (s *Store) PermGen(user string) uint64 { return s.permGen[user] }

// Schema returns the database scheme the store is defined over.
func (s *Store) Schema() *relation.DBSchema { return s.sch }

// ViewNames returns the defined views in definition order.
func (s *Store) ViewNames() []string { return append([]string(nil), s.order...) }

// View returns the first compiled branch of a view, or nil. Conjunctive
// views have exactly this one branch; use Branches for disjunctive views.
func (s *Store) View(name string) *StoredView {
	e := s.views[name]
	if e == nil {
		return nil
	}
	return e.branches[0]
}

// Branches returns every compiled branch of a view (one for conjunctive
// views, one per disjunct otherwise), or nil.
func (s *Store) Branches(name string) []*StoredView {
	e := s.views[name]
	if e == nil {
		return nil
	}
	return e.branches
}

// ViewDef returns a view's original definition, or nil.
func (s *Store) ViewDef(name string) *cview.Def {
	e := s.views[name]
	if e == nil {
		return nil
	}
	return e.def
}

// Users returns the users holding any permit, sorted.
func (s *Store) Users() []string {
	out := make([]string, 0, len(s.perms))
	for u := range s.perms {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// DefineView compiles a view definition into meta-tuples and stores it.
// This is the automatic translation the paper's §6 front-end performs:
// "the system will insert automatically the appropriate meta-tuples into
// the meta-relations".
func (s *Store) DefineView(def *cview.Def) error {
	if def.Name == "" {
		return fmt.Errorf("view definition must be named")
	}
	if _, ok := s.views[def.Name]; ok {
		return fmt.Errorf("view %s already defined", def.Name)
	}
	entry := &viewEntry{def: def}
	for bi := range def.Branches() {
		v, used, err := s.compile(def.Branch(bi))
		if err != nil {
			return err
		}
		v.Branch = bi
		v.Key = def.Name
		if bi > 0 {
			v.Key = fmt.Sprintf("%s#%d", def.Name, bi)
		}
		// Variable names must stay unique across branches.
		s.varCount += used
		entry.branches = append(entry.branches, v)
	}
	s.views[def.Name] = entry
	s.order = append(s.order, def.Name)
	s.viewGen++
	return nil
}

// DropView removes a view and every permit referencing it.
func (s *Store) DropView(name string) bool {
	if _, ok := s.views[name]; !ok {
		return false
	}
	delete(s.views, name)
	for i, n := range s.order {
		if n == name {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	for u, vs := range s.perms {
		kept := vs[:0]
		for _, v := range vs {
			if v != name {
				kept = append(kept, v)
			}
		}
		if len(kept) == 0 {
			delete(s.perms, u)
		} else {
			s.perms[u] = kept
		}
	}
	s.viewGen++
	return true
}

// Permit records a (user, view) row in PERMISSION.
func (s *Store) Permit(view, user string) error {
	if _, ok := s.views[view]; !ok {
		return fmt.Errorf("unknown view %s", view)
	}
	for _, v := range s.perms[user] {
		if v == view {
			return nil // idempotent
		}
	}
	s.perms[user] = append(s.perms[user], view)
	s.permGen[user]++
	return nil
}

// Revoke removes a (user, view) row; it reports whether one existed.
func (s *Store) Revoke(view, user string) bool {
	vs := s.perms[user]
	for i, v := range vs {
		if v == view {
			s.perms[user] = append(vs[:i], vs[i+1:]...)
			if len(s.perms[user]) == 0 {
				delete(s.perms, user)
			}
			s.permGen[user]++
			return true
		}
	}
	return false
}

// ViewsFor returns the views permitted to user, in grant order.
func (s *Store) ViewsFor(user string) []string {
	return append([]string(nil), s.perms[user]...)
}

// compile translates a conjunctive view definition into stored meta-tuples
// following §3: membership subformulas become meta-tuples (projected
// positions starred, once-occurring variables blanked); equality
// comparisons are substituted away; the remaining comparisons become
// COMPARISON entries (constant ones folded to intervals, symbolic ones
// kept). It returns the number of variable names consumed.
func (s *Store) compile(def *cview.Def) (*StoredView, int, error) {
	an, err := cview.Analyze(def, s.sch)
	if err != nil {
		return nil, 0, err
	}
	v := &StoredView{
		Name:    def.Name,
		Key:     def.Name,
		Def:     def,
		VarIv:   make(map[string]interval.Interval),
		VarOccs: make(map[string][]int),
	}
	tupleOf := make(map[string]int, len(an.Scans))
	for i, sc := range an.Scans {
		rs := s.sch.Lookup(sc.Rel)
		cells := make([]StoredCell, rs.Arity())
		v.Tuples = append(v.Tuples, StoredTuple{Alias: sc.Alias, Rel: sc.Rel, Cells: cells})
		tupleOf[sc.Alias] = i
	}
	// Union-find over qualified attribute positions, driven by the
	// equality conditions ("all occurrences of d1 are substituted with
	// d2", §3).
	parent := make(map[string]string)
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b string) { parent[find(a)] = find(b) }
	consts := make(map[string]value.Value) // root -> pinned constant
	for _, c := range def.Where {
		if c.Op != value.EQ {
			continue
		}
		lq := c.L.Qualified()
		if c.R.IsCol {
			ra, rb := find(lq), find(c.R.Col.Qualified())
			if ra == rb {
				continue
			}
			cv, cok := consts[ra]
			dv, dok := consts[rb]
			if cok && dok && !cv.Equal(dv) {
				return nil, 0, fmt.Errorf("view %s: contradictory equalities (%s vs %s)", def.Name, cv, dv)
			}
			union(ra, rb)
			r := find(ra)
			if cok {
				consts[r] = cv
			} else if dok {
				consts[r] = dv
			}
		} else {
			r := find(lq)
			if prev, ok := consts[r]; ok && !prev.Equal(c.R.Const) {
				return nil, 0, fmt.Errorf("view %s: attribute %s equated to both %s and %s", def.Name, lq, prev, c.R.Const)
			}
			consts[r] = c.R.Const
		}
	}

	// Projection stars apply to whole equality groups: in the calculus
	// form the equated occurrences are one projected variable, so every
	// occurrence is suffixed with * (Figure 1 stars ASSIGNMENT's x1 and
	// x2 although the view projects EMPLOYEE.NAME and PROJECT.NUMBER).
	starred := make(map[string]bool, len(def.Cols))
	for _, c := range def.Cols {
		starred[find(c.Qualified())] = true
	}

	// Count group membership to distinguish join variables from
	// once-occurring ones.
	members := make(map[string][]string)
	for ti := range v.Tuples {
		rs := s.sch.Lookup(v.Tuples[ti].Rel)
		for ci := range v.Tuples[ti].Cells {
			q := v.Tuples[ti].Alias + "." + rs.Attrs[ci]
			r := find(q)
			members[r] = append(members[r], q)
		}
	}

	// Allocate variable names in condition order, so the compiled form
	// matches the paper's figure (x1, x2, x3 for ELP; x4 for EST; …).
	varName := make(map[string]string) // root -> variable
	next := 0
	alloc := func(root string) string {
		if n, ok := varName[root]; ok {
			return n
		}
		if _, ok := consts[root]; ok {
			return "" // substituted by a constant
		}
		next++
		n := fmt.Sprintf("x%d", s.varCount+next)
		varName[root] = n
		v.VarIv[n] = interval.Full()
		return n
	}
	for _, c := range def.Where {
		switch {
		case c.Op == value.EQ && c.R.IsCol:
			r := find(c.L.Qualified())
			if len(members[r]) > 1 {
				alloc(r)
			}
		case c.Op != value.EQ:
			alloc(find(c.L.Qualified()))
			if c.R.IsCol {
				alloc(find(c.R.Col.Qualified()))
			}
		}
	}

	// Fold the non-equality comparisons into variable intervals or keep
	// them as symbolic COMPARISON rows.
	for _, c := range def.Where {
		if c.Op == value.EQ {
			continue
		}
		lr := find(c.L.Qualified())
		lc, lIsConst := consts[lr]
		if !c.R.IsCol {
			if lIsConst {
				if !c.Op.Eval(lc, c.R.Const) {
					return nil, 0, fmt.Errorf("view %s: condition %s is contradictory", def.Name, c)
				}
				continue
			}
			x := varName[lr]
			iv := interval.Intersect(v.VarIv[x], interval.FromCmp(c.Op, c.R.Const))
			if iv.IsEmpty() {
				return nil, 0, fmt.Errorf("view %s: conditions on %s are contradictory", def.Name, c.L.Qualified())
			}
			v.VarIv[x] = iv
			continue
		}
		rr := find(c.R.Col.Qualified())
		rc, rIsConst := consts[rr]
		switch {
		case lIsConst && rIsConst:
			if !c.Op.Eval(lc, rc) {
				return nil, 0, fmt.Errorf("view %s: condition %s is contradictory", def.Name, c)
			}
		case lIsConst:
			y := varName[rr]
			iv := interval.Intersect(v.VarIv[y], interval.FromCmp(c.Op.Flip(), lc))
			if iv.IsEmpty() {
				return nil, 0, fmt.Errorf("view %s: conditions on %s are contradictory", def.Name, c.R.Col.Qualified())
			}
			v.VarIv[y] = iv
		case rIsConst:
			x := varName[lr]
			iv := interval.Intersect(v.VarIv[x], interval.FromCmp(c.Op, rc))
			if iv.IsEmpty() {
				return nil, 0, fmt.Errorf("view %s: conditions on %s are contradictory", def.Name, c.L.Qualified())
			}
			v.VarIv[x] = iv
		case lr == rr:
			// Same group on both sides: A θ A is contradictory unless θ
			// admits equality.
			if c.Op == value.LT || c.Op == value.GT || c.Op == value.NE {
				return nil, 0, fmt.Errorf("view %s: condition %s is contradictory", def.Name, c)
			}
		default:
			v.VarCmps = append(v.VarCmps, StoredVarCmp{X: varName[lr], Op: c.Op, Y: varName[rr]})
		}
	}

	// Fill the cells and the occurrence index.
	occSeen := make(map[string]map[int]bool)
	for ti := range v.Tuples {
		rs := s.sch.Lookup(v.Tuples[ti].Rel)
		for ci := range v.Tuples[ti].Cells {
			q := v.Tuples[ti].Alias + "." + rs.Attrs[ci]
			r := find(q)
			v.Tuples[ti].Cells[ci].Star = starred[r]
			if cv, ok := consts[r]; ok {
				c := cv
				v.Tuples[ti].Cells[ci].Const = &c
				continue
			}
			if n, ok := varName[r]; ok {
				v.Tuples[ti].Cells[ci].Var = n
				if occSeen[n] == nil {
					occSeen[n] = make(map[int]bool)
				}
				if !occSeen[n][ti] {
					occSeen[n][ti] = true
					v.VarOccs[n] = append(v.VarOccs[n], ti)
				}
			}
		}
	}
	return v, next, nil
}

// RenderMeta writes the stored meta-relation R' for one base relation in
// the notation of Figure 1 (VIEW column plus one column per attribute).
func (s *Store) RenderMeta(w io.Writer, rel string) {
	rs := s.sch.Lookup(rel)
	if rs == nil {
		return
	}
	var rows [][]string
	for _, name := range s.order {
		for _, v := range s.views[name].branches {
			for _, t := range v.Tuples {
				if t.Rel != rel {
					continue
				}
				row := []string{name}
				for _, c := range t.Cells {
					row = append(row, renderStoredCell(c))
				}
				rows = append(rows, row)
			}
		}
	}
	relation.RenderTable(w, rel+"'", append([]string{"VIEW"}, rs.Attrs...), rows, false)
}

func renderStoredCell(c StoredCell) string {
	s := ""
	switch {
	case c.Const != nil:
		s = c.Const.String()
	case c.Var != "":
		s = c.Var
	}
	if c.Star {
		s += "*"
	}
	return s
}

// RenderComparison writes the COMPARISON relation: one row per constant
// bound of each constrained variable plus the symbolic rows.
func (s *Store) RenderComparison(w io.Writer) {
	var rows [][]string
	for _, name := range s.order {
		for _, v := range s.views[name].branches {
			vars := make([]string, 0, len(v.VarIv))
			for x := range v.VarIv {
				vars = append(vars, x)
			}
			sort.Strings(vars)
			for _, x := range vars {
				for _, cond := range comparisonRows(x, v.VarIv[x]) {
					rows = append(rows, append([]string{name}, cond...))
				}
			}
			for _, c := range v.VarCmps {
				rows = append(rows, []string{name, c.X, c.Op.String(), c.Y})
			}
		}
	}
	relation.RenderTable(w, "COMPARISON", []string{"VIEW", "X", "COMPARE", "Y"}, rows, false)
}

// comparisonRows decomposes an interval back into COMPARISON triples.
func comparisonRows(x string, iv interval.Interval) [][]string {
	var out [][]string
	if v, ok := iv.IsPoint(); ok {
		return [][]string{{x, "=", v.String()}}
	}
	if iv.Lo.Bounded {
		op := ">="
		if iv.Lo.Open {
			op = ">"
		}
		out = append(out, []string{x, op, iv.Lo.V.String()})
	}
	if iv.Hi.Bounded {
		op := "<="
		if iv.Hi.Open {
			op = "<"
		}
		out = append(out, []string{x, op, iv.Hi.V.String()})
	}
	for _, n := range iv.Excluded() {
		out = append(out, []string{x, "!=", n.String()})
	}
	return out
}

// RenderPermission writes the PERMISSION relation in grant order.
func (s *Store) RenderPermission(w io.Writer) {
	var rows [][]string
	users := s.Users()
	for _, u := range users {
		for _, v := range s.perms[u] {
			rows = append(rows, []string{u, v})
		}
	}
	relation.RenderTable(w, "PERMISSION", []string{"USER", "VIEW"}, rows, false)
}
