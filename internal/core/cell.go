// Package core implements the paper's primary contribution: the
// representation of conjunctive view definitions in meta-relations, the
// extension of the algebraic operators (product, selection, projection) to
// meta-relations (§4.1, Definitions 1–3), the refinements of §4.2 (product
// padding, four-case selection with clearing, self-join inference), and
// the authorization process of §5 that turns the meta-answer A' into a
// mask over the answer A plus inferred permit statements.
package core

import (
	"strings"

	"authdb/internal/interval"
	"authdb/internal/value"
)

// VarID identifies a view variable (the paper's x1, x2, …) within one
// Instance. Zero means "no variable".
type VarID int

// Cell is one component of a meta-tuple. The paper's cell forms map to:
//
//	⊔ (blank)      Var == 0 and Cons is full
//	constant c     Var == 0 and Cons is the point interval [c,c]
//	variable x     Var != 0; Cons carries the variable's COMPARISON
//	               constraints folded into interval form
//	suffix *       Star
//
// Cells sharing a VarID within a meta-tuple denote equal values (the join
// conditions of the view).
type Cell struct {
	Star bool
	Var  VarID
	Cons interval.Interval
}

// Blank returns the unconstrained, unprojected cell ⊔.
func Blank() Cell { return Cell{Cons: interval.Full()} }

// StarBlank returns the projected, unconstrained cell *.
func StarBlank() Cell { return Cell{Star: true, Cons: interval.Full()} }

// Const returns the constant cell c (starred or not).
func Const(v value.Value, star bool) Cell {
	return Cell{Star: star, Cons: interval.Point(v)}
}

// IsBlank reports whether the cell is ⊔, possibly starred: no variable and
// no constraint. Per Definition 3 these are exactly the cells whose
// attribute a projection may remove.
func (c Cell) IsBlank() bool { return c.Var == 0 && c.Cons.IsFull() }

// render prints the cell in the figure notation; name resolves variable
// display names ("x1"). A variable pinned to a point renders as the
// constant.
func (c Cell) render(name func(VarID) string) string {
	var b strings.Builder
	switch {
	case c.Var != 0:
		b.WriteString(name(c.Var))
	default:
		if v, ok := c.Cons.IsPoint(); ok {
			b.WriteString(v.String())
		} else if !c.Cons.IsFull() {
			b.WriteString(c.Cons.String())
		}
	}
	if c.Star {
		b.WriteString("*")
	}
	return b.String()
}

// equal reports structural cell equality (used by replication removal).
func (c Cell) equal(d Cell) bool {
	return c.Star == d.Star && c.Var == d.Var && c.Cons.Equal(d.Cons)
}
