package core

import (
	"authdb/internal/algebra"
	"authdb/internal/interval"
	"authdb/internal/value"
)

// PushdownAtoms derives, from the mask alone, a selection every delivered
// cell's row must satisfy — a necessary condition for delivery that the
// authorizer may conjoin with the actual-side plan so withheld rows are
// pruned before materialization instead of masked afterwards.
//
// The derivation is the per-attribute disjunction hull: Matches requires
// Cons.Contains(t[k]) for EVERY cell of a mask tuple (starred or not), so
// a row delivered through any tuple has t[k] inside that tuple's k-th
// interval, hence inside the hull of all tuples' k-th intervals. A full
// hull contributes nothing; a point hull one equality; a bounded hull its
// endpoint comparisons plus a ≠ per commonly excluded point. Atoms name
// the mask's own attributes, which are exactly the plan's output columns
// (or, under extended masks, the wide columns), so they resolve against
// the evaluator's scans.
//
// Soundness (fused = mask-then-filter): rows failing some atom fail the
// hull on that attribute, so no mask tuple matches them and Apply (or
// ApplyExtended, where unmatched pre-images contribute zero revealed
// cells) delivers nothing from them — pruning them changes no delivered
// cell, no inferred permit (permits derive from the mask, not the data),
// and no grant/deny flag. Only MaskStats.Rows/Cells, which count the
// materialized answer, shrink.
//
// The atoms depend on definitions only — never on relation instances —
// so they are computed once per MaskPlan and cached with it.
func (m *Mask) PushdownAtoms() []algebra.Atom {
	if len(m.Tuples) == 0 {
		return nil
	}
	var out []algebra.Atom
	for k, attr := range m.Attrs {
		hull := m.Tuples[0].Cells[k].Cons
		for _, t := range m.Tuples[1:] {
			hull = interval.Hull(hull, t.Cells[k].Cons)
			if hull.IsFull() {
				break
			}
		}
		if hull.IsFull() {
			continue
		}
		if v, ok := hull.IsPoint(); ok {
			out = append(out, algebra.Atom{L: attr, Op: value.EQ, R: algebra.ConstOp(v)})
			continue
		}
		if hull.Lo.Bounded {
			op := value.GE
			if hull.Lo.Open {
				op = value.GT
			}
			out = append(out, algebra.Atom{L: attr, Op: op, R: algebra.ConstOp(hull.Lo.V)})
		}
		if hull.Hi.Bounded {
			op := value.LE
			if hull.Hi.Open {
				op = value.LT
			}
			out = append(out, algebra.Atom{L: attr, Op: op, R: algebra.ConstOp(hull.Hi.V)})
		}
		for _, n := range hull.Excluded() {
			out = append(out, algebra.Atom{L: attr, Op: value.NE, R: algebra.ConstOp(n)})
		}
	}
	return out
}

// fusePushdown conjoins pushdown atoms with a plan, leaving the original
// untouched (plans are shared through the mask cache).
func fusePushdown(p *algebra.PSJ, atoms []algebra.Atom) *algebra.PSJ {
	preds := make([]algebra.Atom, 0, len(p.Preds)+len(atoms))
	preds = append(append(preds, p.Preds...), atoms...)
	return &algebra.PSJ{Scans: p.Scans, Preds: preds, Cols: p.Cols}
}
