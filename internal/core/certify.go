package core

import (
	"authdb/internal/cview"
	"authdb/internal/relation"
)

// Certification is the outcome of the §1 generalization of the model:
// "Given a query and set of database views that possess a particular
// property, what views of the answer possess this property?" The paper's
// companion instance (Motro's "Integrity = Validity + Completeness")
// tags views as having guaranteed integrity; the certifier then
// accompanies every answer with statements defining the portions whose
// integrity is guaranteed — "resembling a certification of quality" —
// without masking anything.
type Certification struct {
	// Answer is the full answer; certification never withholds data.
	Answer *relation.Relation
	// Statements describes the certified portions, one per meta-tuple of
	// the quality's meta-answer; empty when the whole answer (Full) or
	// none of it carries the property.
	Statements []PermitStatement
	// Full reports that the entire answer carries the property.
	Full bool
	// Stats counts the certified cells exactly as masking would have.
	Stats MaskStats
}

// Certify runs the meta-side pipeline for a pseudo-principal naming a
// quality rather than a user (tag views with Store.Permit(view, quality))
// and returns the full answer together with inferred statements about the
// portions possessing the property. It is the paper's integrity
// instance of the machinery: same meta-relations, same extended
// operators, no masking.
func (a *Authorizer) Certify(quality string, def *cview.Def) (*Certification, error) {
	// Certification delivers the full answer, so the mask may never prune
	// rows from it — uncertified rows are annotated, not withheld.
	ac := *a
	ac.Opt.MaskPushdown = false
	d, err := ac.Retrieve(quality, def)
	if err != nil {
		return nil, err
	}
	c := &Certification{
		Answer: d.Answer,
		Full:   d.FullyAuthorized,
		Stats:  d.Stats,
	}
	if !d.FullyAuthorized {
		c.Statements = d.Mask.Permits()
		for i := range c.Statements {
			c.Statements[i].Verb = "certified"
		}
	}
	return c, nil
}
