package core

import (
	"fmt"

	"authdb/internal/algebra"
	"authdb/internal/cview"
	"authdb/internal/guard"
	"authdb/internal/interval"
	"authdb/internal/relation"
)

// Snapshot records the meta-relation after one phase of the meta-side
// execution, for the paper's worked examples and for debugging.
type Snapshot struct {
	Phase string
	Meta  *MetaRel
}

// Decision is the outcome of the authorization process of §5: the answer
// A, the meta-answer A' as a mask, the masked answer actually delivered,
// and the inferred permit statements describing the portions delivered.
type Decision struct {
	// PSJ is the normal-form plan of the request.
	PSJ *algebra.PSJ
	// Answer is the unmasked answer A; callers must not deliver it to
	// the user. When PushdownApplied is set it omits the rows the mask
	// provably withholds entirely (they were pruned before
	// materialization); the delivered Masked relation is unaffected.
	Answer *relation.Relation
	// Masked is the deliverable relation: permitted values only, other
	// cells null, fully-withheld rows dropped.
	Masked *relation.Relation
	// Mask is the meta-answer A'.
	Mask *Mask
	// Permits describes the delivered portions; empty when the entire
	// answer is delivered (§5 Example 3) or when nothing is.
	Permits []PermitStatement
	// Stats summarises the masking.
	Stats MaskStats
	// FullyAuthorized reports that the mask grants the entire answer
	// unconditionally.
	FullyAuthorized bool
	// Denied reports that the mask grants nothing.
	Denied bool
	// Views lists the user's permitted views that participated (after
	// entirety pruning).
	Views []string
	// Intermediates holds the per-phase meta-relations when requested.
	Intermediates []Snapshot
	// Inst is the per-request view instantiation (variable names,
	// provenance); useful for rendering intermediate meta-relations.
	Inst *Instance
	// Pushdown holds the mask-derived necessary delivery condition
	// (possibly empty); PushdownApplied reports whether it was fused
	// into the actual-side plan for this retrieval.
	Pushdown        []algebra.Atom
	PushdownApplied bool
}

// MaskPlan is the meta-side half of a Decision: everything the
// authorization process derives from the user's definitions (permitted
// views and their meta-tuples) and the query alone — never from the
// relation instances. It is therefore cacheable per (user, query) and
// shareable across concurrent read sessions: every application path
// (Apply, ApplyExtended, Permits, the grant/deny flags) treats the mask
// as read-only.
type MaskPlan struct {
	// Mask is the compiled meta-answer A'.
	Mask *Mask
	// Views lists the permitted views that participated.
	Views []string
	// Inst is the per-request view instantiation.
	Inst *Instance
	// Permits describes the delivered portions when the outcome is
	// partial; empty on full grant or full denial.
	Permits []PermitStatement
	// FullyAuthorized and Denied classify the mask.
	FullyAuthorized bool
	Denied          bool
	// WidePSJ and OutIdx are set under Options.ExtendedMasks: the plan
	// without its final projection, and the positions of the requested
	// columns within the wide answer.
	WidePSJ *algebra.PSJ
	OutIdx  []int
	// Pushdown is the mask-derived necessary delivery condition: atoms
	// over the mask's attributes that every delivered row satisfies
	// (Mask.PushdownAtoms). Definition-derived, so cached with the plan;
	// Options.MaskPushdown decides whether retrieval actually fuses it.
	Pushdown []algebra.Atom
	// Intermediates holds the per-phase meta-relations when
	// Options.CollectIntermediates is set (such plans bypass the cache).
	Intermediates []Snapshot
}

// Authorizer binds a database scheme, its relation instances, and an
// authorization store; it implements the commutative diagram of Figure 2:
// the query runs on the relations to yield A and, mirrored operator by
// operator, on the meta-relations to yield A'.
type Authorizer struct {
	Store  *Store
	Source algebra.Source
	Opt    Options
	// Guard, when non-nil, bounds both the actual-side evaluation and
	// the meta-side operators with a cancellation-and-budget check at
	// tuple-batch granularity.
	Guard *guard.Guard
	// Cache, when non-nil, memoizes the meta-side MaskPlan per
	// (user, query), validated against the store's definition
	// generations. Plans that collect intermediates bypass it.
	Cache *MaskCache
	// Closure, when non-nil, serves whole retrieves from materialized
	// resident state (answer, masked relation, statistics, row bitmaps)
	// validated against both the definition generations and the pinned
	// relation revisions; see Closure. Plans that collect intermediates
	// or trace access paths bypass it.
	Closure *Closure
	// Trace, when non-nil, collects the access paths the actual-side
	// evaluator chose (for EXPLAIN).
	Trace *algebra.Trace
}

// NewAuthorizer builds an authorizer with the given options.
func NewAuthorizer(store *Store, src algebra.Source, opt Options) *Authorizer {
	return &Authorizer{Store: store, Source: src, Opt: opt}
}

// Retrieve authorizes and answers the query def for user.
func (a *Authorizer) Retrieve(user string, def *cview.Def) (*Decision, error) {
	an, err := cview.Analyze(def, a.Store.Schema())
	if err != nil {
		return nil, err
	}
	return a.RetrievePlan(user, an.PSJ)
}

// RetrievePlan runs the dual pipelines for an already-compiled plan.
// The meta side is obtained as a MaskPlan — from the cache when one is
// attached and holds a plan stamped with the store's current definition
// generations, recomputed by maskPlanFor otherwise — and the actual side
// is then evaluated and masked by it.
func (a *Authorizer) RetrievePlan(user string, psj *algebra.PSJ) (*Decision, error) {
	if len(psj.Scans) == 0 {
		return nil, fmt.Errorf("query scans no relations")
	}
	cache := a.Cache
	if cache != nil && a.Opt.CollectIntermediates {
		// Explain wants the per-phase snapshots, which a hit would skip.
		cache = nil
	}
	closure := a.Closure
	if closure != nil && (a.Opt.CollectIntermediates || a.Trace != nil) {
		// Explain wants snapshots and access paths; a closure hit
		// evaluates nothing.
		closure = nil
	}
	var revs []*relation.Relation
	if closure != nil {
		// Pin the scanned revisions once: they stamp both the lookup
		// and the eventual Store, so the materialization is keyed to
		// exactly the data this statement reads.
		revs = a.scanRevs(psj)
		if revs == nil {
			closure = nil // unknown relation: let the evaluator report it
		} else if d, ok, err := closure.Lookup(a, user, psj, revs); ok || err != nil {
			return d, err
		}
	}
	var mp *MaskPlan
	if cache != nil {
		mp = cache.Get(a.Store, user, psj, a.Opt)
	}
	if mp == nil {
		var err error
		mp, err = a.maskPlanFor(user, psj)
		if err != nil {
			return nil, err
		}
		if cache != nil {
			cache.Put(a.Store, user, psj, a.Opt, mp)
		}
	}

	d := &Decision{
		PSJ:             psj,
		Mask:            mp.Mask,
		Views:           mp.Views,
		Inst:            mp.Inst,
		Permits:         mp.Permits,
		FullyAuthorized: mp.FullyAuthorized,
		Denied:          mp.Denied,
		Intermediates:   mp.Intermediates,
		Pushdown:        mp.Pushdown,
	}

	// Fuse the mask-derived necessary delivery condition into the actual
	// side when enabled: rows failing it match no mask tuple, so masking
	// would drop them anyway and pruning early changes nothing delivered.
	// Explain (CollectIntermediates) keeps the unfused plan so the
	// rendered answer matches the paper's worked examples, and a full
	// grant has nothing to prune.
	fuse := a.Opt.MaskPushdown && !a.Opt.CollectIntermediates &&
		len(mp.Pushdown) > 0 && !mp.FullyAuthorized
	d.PushdownApplied = fuse

	// Actual side. The §6(3) extension masks the wide (pre-projection)
	// answer, so it executes the query without the final projection and
	// derives the requested columns from it.
	var err error
	if a.Opt.ExtendedMasks {
		widePSJ := mp.WidePSJ
		if fuse {
			widePSJ = fusePushdown(widePSJ, mp.Pushdown)
		}
		wideAns, err := a.evalActual(widePSJ, a.Source)
		if err != nil {
			return nil, err
		}
		d.Answer = wideAns.Project(mp.OutIdx)
		d.Masked, d.Stats = mp.Mask.ApplyExtended(wideAns, mp.OutIdx, psj.Cols)
		closure.Store(a.Store, user, psj, a.Opt, revs, mp, d, widePSJ, nil)
		return d, nil
	}
	psjExec := psj
	if fuse {
		psjExec = fusePushdown(psjExec, mp.Pushdown)
	}
	d.Answer, err = a.evalActual(psjExec, a.Source)
	if err != nil {
		return nil, err
	}
	var pick []int
	d.Masked, d.Stats, pick = mp.Mask.applyIndexed(d.Answer)
	closure.Store(a.Store, user, psj, a.Opt, revs, mp, d, psjExec, pick)
	return d, nil
}

// evalActual evaluates an actual-side plan against src under the
// authorizer's execution options and guard.
func (a *Authorizer) evalActual(p *algebra.PSJ, src algebra.Source) (*relation.Relation, error) {
	if a.Opt.OptimizedExec {
		exec := algebra.ExecOptions{UseIndexes: a.Opt.IndexedExec}
		return algebra.EvalPSJ(p, src, a.Guard, exec, a.Trace)
	}
	return algebra.EvalNaiveGuarded(p.Node(), src, a.Guard)
}

// scanRevs resolves the revision each of the plan's scans reads, in
// scan order; nil when any scan fails to resolve.
func (a *Authorizer) scanRevs(psj *algebra.PSJ) []*relation.Relation {
	revs := make([]*relation.Relation, len(psj.Scans))
	for i, s := range psj.Scans {
		r, err := a.Source(s.Rel)
		if err != nil {
			return nil
		}
		revs[i] = r
	}
	return revs
}

// maskPlanFor runs the meta-side pipeline alone: instantiate the user's
// permitted views, mirror the query's products, selections, and (unless
// extended) projection over the meta-relations, and compile the result
// into a mask plus its derived outcome flags and permit statements.
func (a *Authorizer) maskPlanFor(user string, psj *algebra.PSJ) (*MaskPlan, error) {
	mp := &MaskPlan{}
	if a.Opt.ExtendedMasks {
		wideAttrs, err := psj.Attrs(a.Store.Schema())
		if err != nil {
			return nil, err
		}
		mp.WidePSJ = &algebra.PSJ{Scans: psj.Scans, Preds: psj.Preds, Cols: wideAttrs}
		wide := relation.New(wideAttrs)
		mp.OutIdx = make([]int, len(psj.Cols))
		for i, c := range psj.Cols {
			j := wide.AttrIndex(c)
			if j < 0 {
				return nil, fmt.Errorf("unknown output attribute %s", c)
			}
			mp.OutIdx[i] = j
		}
	}

	// Instantiate the user's permitted views against the relations the
	// query scans.
	scanCount := make(map[string]int)
	for _, s := range psj.Scans {
		scanCount[s.Rel]++
	}
	inst := a.Store.Instantiate(user, scanCount, a.Opt)
	mp.Views = inst.Views()
	mp.Inst = inst

	snap := func(phase string, mr *MetaRel) {
		if a.Opt.CollectIntermediates {
			mp.Intermediates = append(mp.Intermediates, Snapshot{Phase: phase, Meta: mr.clone()})
		}
	}

	var err error
	mr := inst.MetaRelFor(psj.Scans[0].Rel, psj.Scans[0].Alias)
	snap("scan "+psj.Scans[0].Alias, mr)
	for _, s := range psj.Scans[1:] {
		next := inst.MetaRelFor(s.Rel, s.Alias)
		snap("scan "+s.Alias, next)
		mr, err = MetaProductGuarded(mr, next, a.Opt.Padding, a.Guard)
		if err != nil {
			return nil, err
		}
	}
	if len(psj.Scans) > 1 {
		snap("product", mr)
	}
	if a.Opt.PruneDangling {
		mr.PruneDangling(inst)
		mr.DedupeLoose()
		if len(psj.Scans) > 1 {
			snap("pruned", mr)
		}
	}
	for _, sel := range groupSelections(psj.Preds) {
		if sel.isConst {
			mr, err = MetaSelectConst(mr, sel.attr, sel.lam, inst, a.Opt.FourCase)
		} else {
			mr, err = MetaSelect(mr, sel.atom, inst, a.Opt.FourCase)
		}
		if err != nil {
			return nil, err
		}
		// Tuple-batch granularity on the meta side: each selection pass
		// re-accounts the surviving meta-tuples.
		if err := a.Guard.Add(len(mr.Tuples)); err != nil {
			return nil, err
		}
		snap("select "+sel.label, mr)
	}
	if a.Opt.ExtendedMasks {
		// §6(3): skip the meta projection so residual conditions on
		// unrequested attributes survive; the wide answer gets masked.
		mr.PruneDangling(inst)
		mr.DedupeLoose()
		snap("extended mask", mr)
		mp.Mask = NewMask(mr, inst)
		if a.Opt.Subsume {
			mp.Mask.Subsume()
		}
		mp.Pushdown = mp.Mask.PushdownAtoms()
		mp.FullyAuthorized = fullGrantExtended(mp.Mask, mp.OutIdx)
		mp.Denied = !revealsAnything(mp.Mask, mp.OutIdx)
		if !mp.FullyAuthorized && !mp.Denied {
			mp.Permits = mp.Mask.ExtendedPermits(mp.OutIdx)
		}
		return mp, nil
	}

	mr, err = MetaProject(mr, psj.Cols)
	if err != nil {
		return nil, err
	}
	snap("project", mr)

	// Fail closed: a meta-tuple still referencing absent membership
	// tuples is not expressible within A' and must never mask data in,
	// whatever the display options were.
	mr.PruneDangling(inst)
	mr.DedupeLoose()

	mp.Mask = NewMask(mr, inst)
	if a.Opt.Subsume {
		mp.Mask.Subsume()
	}
	mp.Pushdown = mp.Mask.PushdownAtoms()
	mp.FullyAuthorized = a.fullGrant(mp.Mask)
	mp.Denied = len(mp.Mask.Tuples) == 0
	if !mp.FullyAuthorized && !mp.Denied {
		mp.Permits = mp.Mask.Permits()
	}
	return mp, nil
}

// selection is one meta-side selection step: either an attribute-constant
// restriction in combined interval form, or a single attribute-attribute
// atom.
type selection struct {
	isConst bool
	attr    string
	lam     interval.Interval
	atom    algebra.Atom
	label   string
}

// groupSelections merges every attribute-constant predicate on the same
// attribute into one interval λ (applied at the first occurrence's
// position); attribute-attribute predicates pass through in order. The
// §4.2 four-case analysis needs the whole per-attribute restriction to
// recognise clearing (λ ⇒ μ) and contradiction.
func groupSelections(preds []algebra.Atom) []selection {
	var out []selection
	at := make(map[string]int)
	for _, a := range preds {
		if a.R.IsAttr {
			out = append(out, selection{atom: a, label: a.String()})
			continue
		}
		if i, ok := at[a.L]; ok {
			out[i].lam = interval.Intersect(out[i].lam, interval.FromCmp(a.Op, a.R.Const))
			out[i].label = a.L + " in " + out[i].lam.String()
			continue
		}
		at[a.L] = len(out)
		out = append(out, selection{
			isConst: true,
			attr:    a.L,
			lam:     interval.FromCmp(a.Op, a.R.Const),
			label:   a.String(),
		})
	}
	return out
}

// fullGrant reports whether some mask tuple grants every attribute
// unconditionally, in which case the answer is delivered without permit
// statements (§5, Example 3).
func (a *Authorizer) fullGrant(m *Mask) bool {
	for _, t := range m.Tuples {
		all := true
		for _, c := range t.Cells {
			if !c.Star || !c.IsBlank() {
				all = false
				break
			}
		}
		if all && len(t.Cmps) == 0 {
			return true
		}
	}
	return false
}
