package core

import (
	"fmt"

	"authdb/internal/algebra"
	"authdb/internal/cview"
	"authdb/internal/guard"
	"authdb/internal/interval"
	"authdb/internal/relation"
)

// Snapshot records the meta-relation after one phase of the meta-side
// execution, for the paper's worked examples and for debugging.
type Snapshot struct {
	Phase string
	Meta  *MetaRel
}

// Decision is the outcome of the authorization process of §5: the answer
// A, the meta-answer A' as a mask, the masked answer actually delivered,
// and the inferred permit statements describing the portions delivered.
type Decision struct {
	// PSJ is the normal-form plan of the request.
	PSJ *algebra.PSJ
	// Answer is the full (unmasked) answer A; callers must not deliver
	// it to the user.
	Answer *relation.Relation
	// Masked is the deliverable relation: permitted values only, other
	// cells null, fully-withheld rows dropped.
	Masked *relation.Relation
	// Mask is the meta-answer A'.
	Mask *Mask
	// Permits describes the delivered portions; empty when the entire
	// answer is delivered (§5 Example 3) or when nothing is.
	Permits []PermitStatement
	// Stats summarises the masking.
	Stats MaskStats
	// FullyAuthorized reports that the mask grants the entire answer
	// unconditionally.
	FullyAuthorized bool
	// Denied reports that the mask grants nothing.
	Denied bool
	// Views lists the user's permitted views that participated (after
	// entirety pruning).
	Views []string
	// Intermediates holds the per-phase meta-relations when requested.
	Intermediates []Snapshot
	// Inst is the per-request view instantiation (variable names,
	// provenance); useful for rendering intermediate meta-relations.
	Inst *Instance
}

// Authorizer binds a database scheme, its relation instances, and an
// authorization store; it implements the commutative diagram of Figure 2:
// the query runs on the relations to yield A and, mirrored operator by
// operator, on the meta-relations to yield A'.
type Authorizer struct {
	Store  *Store
	Source algebra.Source
	Opt    Options
	// Guard, when non-nil, bounds both the actual-side evaluation and
	// the meta-side operators with a cancellation-and-budget check at
	// tuple-batch granularity.
	Guard *guard.Guard
}

// NewAuthorizer builds an authorizer with the given options.
func NewAuthorizer(store *Store, src algebra.Source, opt Options) *Authorizer {
	return &Authorizer{Store: store, Source: src, Opt: opt}
}

// Retrieve authorizes and answers the query def for user.
func (a *Authorizer) Retrieve(user string, def *cview.Def) (*Decision, error) {
	an, err := cview.Analyze(def, a.Store.Schema())
	if err != nil {
		return nil, err
	}
	return a.RetrievePlan(user, an.PSJ)
}

// RetrievePlan runs the dual pipelines for an already-compiled plan.
func (a *Authorizer) RetrievePlan(user string, psj *algebra.PSJ) (*Decision, error) {
	if len(psj.Scans) == 0 {
		return nil, fmt.Errorf("query scans no relations")
	}
	d := &Decision{PSJ: psj}

	// Actual side. The §6(3) extension masks the wide (pre-projection)
	// answer, so it executes the query without the final projection and
	// derives the requested columns from it.
	var err error
	var wideAns *relation.Relation
	var outIdx []int
	if a.Opt.ExtendedMasks {
		wideAttrs, aerr := psj.Attrs(a.Store.Schema())
		if aerr != nil {
			return nil, aerr
		}
		widePSJ := &algebra.PSJ{Scans: psj.Scans, Preds: psj.Preds, Cols: wideAttrs}
		if a.Opt.OptimizedExec {
			wideAns, err = algebra.EvalOptimizedGuarded(widePSJ, a.Source, a.Guard)
		} else {
			wideAns, err = algebra.EvalNaiveGuarded(widePSJ.Node(), a.Source, a.Guard)
		}
		if err != nil {
			return nil, err
		}
		outIdx = make([]int, len(psj.Cols))
		for i, c := range psj.Cols {
			j := wideAns.AttrIndex(c)
			if j < 0 {
				return nil, fmt.Errorf("unknown output attribute %s", c)
			}
			outIdx[i] = j
		}
		d.Answer = wideAns.Project(outIdx)
	} else if a.Opt.OptimizedExec {
		d.Answer, err = algebra.EvalOptimizedGuarded(psj, a.Source, a.Guard)
	} else {
		d.Answer, err = algebra.EvalNaiveGuarded(psj.Node(), a.Source, a.Guard)
	}
	if err != nil {
		return nil, err
	}

	// Meta side: instantiate the user's permitted views against the
	// relations the query scans.
	scanCount := make(map[string]int)
	for _, s := range psj.Scans {
		scanCount[s.Rel]++
	}
	inst := a.Store.Instantiate(user, scanCount, a.Opt)
	d.Views = inst.Views()
	d.Inst = inst

	snap := func(phase string, mr *MetaRel) {
		if a.Opt.CollectIntermediates {
			d.Intermediates = append(d.Intermediates, Snapshot{Phase: phase, Meta: mr.clone()})
		}
	}

	mr := inst.MetaRelFor(psj.Scans[0].Rel, psj.Scans[0].Alias)
	snap("scan "+psj.Scans[0].Alias, mr)
	for _, s := range psj.Scans[1:] {
		next := inst.MetaRelFor(s.Rel, s.Alias)
		snap("scan "+s.Alias, next)
		mr, err = MetaProductGuarded(mr, next, a.Opt.Padding, a.Guard)
		if err != nil {
			return nil, err
		}
	}
	if len(psj.Scans) > 1 {
		snap("product", mr)
	}
	if a.Opt.PruneDangling {
		mr.PruneDangling(inst)
		mr.DedupeLoose()
		if len(psj.Scans) > 1 {
			snap("pruned", mr)
		}
	}
	for _, sel := range groupSelections(psj.Preds) {
		if sel.isConst {
			mr, err = MetaSelectConst(mr, sel.attr, sel.lam, inst, a.Opt.FourCase)
		} else {
			mr, err = MetaSelect(mr, sel.atom, inst, a.Opt.FourCase)
		}
		if err != nil {
			return nil, err
		}
		// Tuple-batch granularity on the meta side: each selection pass
		// re-accounts the surviving meta-tuples.
		if err := a.Guard.Add(len(mr.Tuples)); err != nil {
			return nil, err
		}
		snap("select "+sel.label, mr)
	}
	if a.Opt.ExtendedMasks {
		// §6(3): skip the meta projection so residual conditions on
		// unrequested attributes survive, and mask the wide answer.
		mr.PruneDangling(inst)
		mr.DedupeLoose()
		snap("extended mask", mr)
		d.Mask = NewMask(mr, inst)
		if a.Opt.Subsume {
			d.Mask.Subsume()
		}
		d.Masked, d.Stats = d.Mask.ApplyExtended(wideAns, outIdx, psj.Cols)
		d.FullyAuthorized = fullGrantExtended(d.Mask, outIdx)
		d.Denied = !revealsAnything(d.Mask, outIdx)
		if !d.FullyAuthorized && !d.Denied {
			d.Permits = d.Mask.ExtendedPermits(outIdx)
		}
		return d, nil
	}

	mr, err = MetaProject(mr, psj.Cols)
	if err != nil {
		return nil, err
	}
	snap("project", mr)

	// Fail closed: a meta-tuple still referencing absent membership
	// tuples is not expressible within A' and must never mask data in,
	// whatever the display options were.
	mr.PruneDangling(inst)
	mr.DedupeLoose()

	d.Mask = NewMask(mr, inst)
	if a.Opt.Subsume {
		d.Mask.Subsume()
	}
	d.Masked, d.Stats = d.Mask.Apply(d.Answer)
	d.FullyAuthorized = a.fullGrant(d.Mask)
	d.Denied = len(d.Mask.Tuples) == 0
	if !d.FullyAuthorized && !d.Denied {
		d.Permits = d.Mask.Permits()
	}
	return d, nil
}

// selection is one meta-side selection step: either an attribute-constant
// restriction in combined interval form, or a single attribute-attribute
// atom.
type selection struct {
	isConst bool
	attr    string
	lam     interval.Interval
	atom    algebra.Atom
	label   string
}

// groupSelections merges every attribute-constant predicate on the same
// attribute into one interval λ (applied at the first occurrence's
// position); attribute-attribute predicates pass through in order. The
// §4.2 four-case analysis needs the whole per-attribute restriction to
// recognise clearing (λ ⇒ μ) and contradiction.
func groupSelections(preds []algebra.Atom) []selection {
	var out []selection
	at := make(map[string]int)
	for _, a := range preds {
		if a.R.IsAttr {
			out = append(out, selection{atom: a, label: a.String()})
			continue
		}
		if i, ok := at[a.L]; ok {
			out[i].lam = interval.Intersect(out[i].lam, interval.FromCmp(a.Op, a.R.Const))
			out[i].label = a.L + " in " + out[i].lam.String()
			continue
		}
		at[a.L] = len(out)
		out = append(out, selection{
			isConst: true,
			attr:    a.L,
			lam:     interval.FromCmp(a.Op, a.R.Const),
			label:   a.String(),
		})
	}
	return out
}

// fullGrant reports whether some mask tuple grants every attribute
// unconditionally, in which case the answer is delivered without permit
// statements (§5, Example 3).
func (a *Authorizer) fullGrant(m *Mask) bool {
	for _, t := range m.Tuples {
		all := true
		for _, c := range t.Cells {
			if !c.Star || !c.IsBlank() {
				all = false
				break
			}
		}
		if all && len(t.Cmps) == 0 {
			return true
		}
	}
	return false
}
