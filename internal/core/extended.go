package core

import (
	"strings"

	"authdb/internal/relation"
)

// ApplyExtended implements the §6(3) extension: the mask tuples are still
// defined over the full pre-projection width (so their residual
// conditions may mention attributes the query does not request), and they
// are applied to the *wide* answer — the query after products and
// selections, before the final projection. outIdx maps each requested
// output column to its wide position.
//
// Per-row delivery keeps the single-tuple soundness rule of Apply: for
// each group of wide rows sharing the same projected values, the reveal
// with the most delivered output cells — obtained from ONE mask tuple
// matching ONE wide pre-image — wins; the delivered row is then the
// projection of a tuple of one inferred permitted subview.
func (m *Mask) ApplyExtended(wide *relation.Relation, outIdx []int, outAttrs []string) (*relation.Relation, MaskStats) {
	type groupState struct {
		vals   relation.Tuple
		reveal []bool
		count  int
	}
	groups := make(map[string]*groupState)
	var order []string
	key := func(t relation.Tuple) string {
		var b strings.Builder
		for _, i := range outIdx {
			b.WriteByte(byte(t[i].Kind()))
			b.WriteString(t[i].String())
			b.WriteByte(0)
		}
		return b.String()
	}
	for _, t := range wide.Tuples() {
		k := key(t)
		g, ok := groups[k]
		if !ok {
			vals := make(relation.Tuple, len(outIdx))
			for j, i := range outIdx {
				vals[j] = t[i]
			}
			g = &groupState{vals: vals, reveal: make([]bool, len(outIdx))}
			groups[k] = g
			order = append(order, k)
		}
		// Best single mask tuple for this wide pre-image, measured in
		// delivered output cells.
		for _, mt := range m.Tuples {
			if !mt.Matches(t) {
				continue
			}
			count := 0
			for j, i := range outIdx {
				_ = j
				if mt.Cells[i].Star {
					count++
				}
			}
			if count > g.count {
				g.count = count
				for j, i := range outIdx {
					g.reveal[j] = mt.Cells[i].Star
				}
			}
		}
	}
	stats := MaskStats{Rows: len(groups), Cells: len(groups) * len(outIdx)}
	out := relation.New(outAttrs)
	for _, k := range order {
		g := groups[k]
		if g.count == 0 {
			continue
		}
		stats.RevealedRows++
		row := make(relation.Tuple, len(outIdx))
		full := true
		for j := range outIdx {
			if g.reveal[j] {
				row[j] = g.vals[j]
				stats.RevealedCells++
			} else {
				full = false
			}
		}
		if full {
			stats.FullRows++
		}
		out.Insert(row) //nolint:errcheck // arity correct by construction
	}
	return out, stats
}

// ExtendedPermits renders one inferred permit per mask tuple that reveals
// at least one requested column; listed attributes are the revealed
// output columns, while conditions may mention the additional attributes
// the extension retains.
func (m *Mask) ExtendedPermits(outIdx []int) []PermitStatement {
	names := DisplayNames(m.Attrs)
	isOut := make(map[int]bool, len(outIdx))
	for _, i := range outIdx {
		isOut[i] = true
	}
	var out []PermitStatement
	for _, mt := range m.Tuples {
		revealsOutput := false
		for _, i := range outIdx {
			if mt.Cells[i].Star {
				revealsOutput = true
				break
			}
		}
		if !revealsOutput {
			continue
		}
		p := m.permitOf(mt, names)
		// Restrict the attribute list to the requested columns; hidden
		// starred attributes are not delivered.
		var attrs []string
		for i, c := range mt.Cells {
			if c.Star && isOut[i] {
				attrs = append(attrs, names[i])
			}
		}
		p.Attrs = attrs
		out = append(out, p)
	}
	return out
}

// fullGrantExtended reports whether some mask tuple unconditionally
// grants every requested column.
func fullGrantExtended(m *Mask, outIdx []int) bool {
	for _, t := range m.Tuples {
		if len(t.Cmps) != 0 {
			continue
		}
		ok := true
		for _, c := range t.Cells {
			if !c.IsBlank() {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, i := range outIdx {
			if !t.Cells[i].Star {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// revealsAnything reports whether any mask tuple stars a requested column.
func revealsAnything(m *Mask, outIdx []int) bool {
	for _, t := range m.Tuples {
		for _, i := range outIdx {
			if t.Cells[i].Star {
				return true
			}
		}
	}
	return false
}
