// Package metrics is a dependency-free counters/gauges/histograms
// registry for operating the engine and the network server. Metrics are
// registered lazily by name plus an optional label set, updated with
// atomic operations on the hot paths, and exposed in the Prometheus text
// format (via Registry.WriteText) so any scraper — or a human reading
// the `\stats` output — can consume them.
//
// The registry deliberately implements only what the repository needs:
// monotonic counters, settable gauges, fixed-bucket latency histograms,
// and callback metrics whose value is read at exposition time (used for
// stats another subsystem already tracks, like the mask cache's hit and
// miss counts).
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the exposition type of a metric family.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is a programming error and is ignored).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one; Dec subtracts one.
func (g *Gauge) Inc() { g.v.Add(1) }
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default histogram bucket upper bounds in seconds,
// spanning 100µs to ~100s exponentially — wide enough for both cached
// retrievals and guarded runaway queries.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// Histogram counts observations into fixed upper-bound buckets and
// tracks their sum; Observe is lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // one per bound, plus +Inf at the end
	sum    atomic.Uint64  // float64 bits, CAS-updated
	count  atomic.Int64
}

// Observe records one observation (typically seconds of latency).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations; Sum their total.
func (h *Histogram) Count() int64 { return h.count.Load() }
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// series is one registered metric instance (a family member with a
// concrete label set).
type series struct {
	name   string // family name
	labels string // rendered {k="v",…} or ""
	ctr    *Counter
	gau    *Gauge
	his    *Histogram
	fn     func() float64
}

// Registry holds metric families. The zero value is not usable; create
// one with NewRegistry. All methods are safe for concurrent use; the
// get-or-create methods are cheap enough for per-statement paths but
// callers on hot loops should retain the returned handle.
type Registry struct {
	mu     sync.Mutex
	kinds  map[string]Kind    // family name → kind
	series map[string]*series // name+labels → series
	order  []string           // registration order of series keys
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:  make(map[string]Kind),
		series: make(map[string]*series),
	}
}

// renderLabels renders alternating key, value pairs as {k="v",…};
// it panics on an odd count (a programming error).
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("metrics: odd label list")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup returns the series for (name, labels), creating it with mk if
// absent, and panics if the family already exists with another kind.
func (r *Registry) lookup(name string, kind Kind, labels []string, mk func() *series) *series {
	key := name + renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if k, ok := r.kinds[name]; ok && k != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, k, kind))
	}
	if s, ok := r.series[key]; ok {
		return s
	}
	r.kinds[name] = kind
	s := mk()
	s.name = name
	s.labels = renderLabels(labels)
	r.series[key] = s
	r.order = append(r.order, key)
	return s
}

// Counter returns the counter for name and the alternating key, value
// label pairs, creating it on first use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	s := r.lookup(name, KindCounter, labels, func() *series { return &series{ctr: &Counter{}} })
	return s.ctr
}

// Gauge returns the gauge for name and labels, creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	s := r.lookup(name, KindGauge, labels, func() *series { return &series{gau: &Gauge{}} })
	return s.gau
}

// Histogram returns the histogram for name and labels with DefBuckets,
// creating it on first use.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	s := r.lookup(name, KindHistogram, labels, func() *series {
		return &series{his: &Histogram{bounds: DefBuckets, counts: make([]atomic.Int64, len(DefBuckets)+1)}}
	})
	return s.his
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time; use it for monotonic stats another subsystem already
// tracks. Re-registering the same (name, labels) replaces the callback.
func (r *Registry) CounterFunc(name string, fn func() float64, labels ...string) {
	s := r.lookup(name, KindCounter, labels, func() *series { return &series{} })
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	s := r.lookup(name, KindGauge, labels, func() *series { return &series{} })
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText writes every registered metric in the Prometheus text
// exposition format, families sorted by name, series in registration
// order within a family.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	keys := make([]string, len(r.order))
	copy(keys, r.order)
	byFamily := make(map[string][]*series)
	for _, k := range keys {
		s := r.series[k]
		byFamily[s.name] = append(byFamily[s.name], s)
	}
	kinds := make(map[string]Kind, len(r.kinds))
	for n, k := range r.kinds {
		kinds[n] = k
	}
	r.mu.Unlock()

	families := make([]string, 0, len(byFamily))
	for n := range byFamily {
		families = append(families, n)
	}
	sort.Strings(families)
	for _, fam := range families {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, kinds[fam]); err != nil {
			return err
		}
		for _, s := range byFamily[fam] {
			if err := s.write(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// write renders one series. Histograms expand to the cumulative
// _bucket/_sum/_count triplet.
func (s *series) write(w io.Writer) error {
	switch {
	case s.his != nil:
		var cum int64
		for i, b := range s.his.bounds {
			cum += s.his.counts[i].Load()
			if err := histLine(w, s.name, s.labels, formatFloat(b), cum); err != nil {
				return err
			}
		}
		cum += s.his.counts[len(s.his.bounds)].Load()
		if err := histLine(w, s.name, s.labels, "+Inf", cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.name, s.labels, formatFloat(s.his.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.name, s.labels, s.his.Count())
		return err
	case s.fn != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", s.name, s.labels, formatFloat(s.fn()))
		return err
	case s.ctr != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", s.name, s.labels, s.ctr.Value())
		return err
	case s.gau != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", s.name, s.labels, s.gau.Value())
		return err
	}
	return nil
}

// histLine writes one cumulative bucket line, splicing le into any
// existing label set.
func histLine(w io.Writer, name, labels, le string, cum int64) error {
	var lab string
	if labels == "" {
		lab = `{le="` + le + `"}`
	} else {
		lab = labels[:len(labels)-1] + `,le="` + le + `"}`
	}
	_, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, lab, cum)
	return err
}

// Text returns WriteText's output as a string.
func (r *Registry) Text() string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}
