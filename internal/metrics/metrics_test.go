package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "kind", "retrieve")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("reqs_total", "kind", "retrieve"); again != c {
		t.Fatalf("get-or-create returned a different counter")
	}
	g := r.Gauge("conns_active")
	g.Set(7)
	g.Dec()
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds")
	h.Observe(0.0002)
	h.Observe(0.0002)
	h.Observe(3)
	h.Observe(1000) // beyond the last bound → +Inf bucket
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 0.0004+3+1000; got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	text := r.Text()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.00025"} 2`,
		`lat_seconds_bucket{le="5"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		`lat_seconds_count 4`,
		"# TYPE lat_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestFuncMetricsAndText(t *testing.T) {
	r := NewRegistry()
	hits := 0.0
	r.CounterFunc("cache_hits_total", func() float64 { return hits })
	r.GaugeFunc("cache_entries", func() float64 { return 2 })
	r.Counter("b_total", "kind", "x").Inc()
	r.Counter("b_total", "kind", "y").Add(2)
	hits = 9
	text := r.Text()
	for _, want := range []string{
		"# TYPE cache_hits_total counter",
		"cache_hits_total 9",
		"cache_entries 2",
		`b_total{kind="x"} 1`,
		`b_total{kind="y"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// Families are sorted: b_total precedes cache_entries.
	if strings.Index(text, "b_total") > strings.Index(text, "cache_entries") {
		t.Fatalf("families not sorted:\n%s", text)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("e_total", "q", `say "hi"\`+"\n").Inc()
	text := r.Text()
	if !strings.Contains(text, `e_total{q="say \"hi\"\\\n"} 1`) {
		t.Fatalf("unescaped label:\n%s", text)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on kind conflict")
		}
	}()
	r.Gauge("m")
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c_total", "w", string(rune('a'+w%4))).Inc()
				r.Histogram("h_seconds").Observe(0.001)
				r.Gauge("g").Add(1)
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, l := range []string{"a", "b", "c", "d"} {
		total += r.Counter("c_total", "w", l).Value()
	}
	if total != 8000 {
		t.Fatalf("counters lost updates: %d", total)
	}
	if got := r.Histogram("h_seconds").Count(); got != 8000 {
		t.Fatalf("histogram lost updates: %d", got)
	}
	if got := r.Gauge("g").Value(); got != 8000 {
		t.Fatalf("gauge lost updates: %d", got)
	}
}
