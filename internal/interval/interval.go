// Package interval implements constraint reasoning over single attributes:
// intervals of the value total order with open/closed endpoints plus a set
// of excluded points (for ≠).
//
// This is the machinery behind the paper's §4.2 selection refinement: for a
// query predicate λ and a meta-tuple predicate μ it decides, case by case,
// whether λ implies μ (clear the field), μ implies λ (keep unmodified),
// λ ∧ μ is contradictory (discard the meta-tuple), or neither (conjoin).
// In the paper these decisions "may require consulting relation COMPARISON";
// here the comparative subformulas are folded into interval form up front.
package interval

import (
	"sort"
	"strings"

	"authdb/internal/value"
)

// Bound is one endpoint of an interval. The zero Bound is unbounded
// (−∞ for a low bound, +∞ for a high bound).
type Bound struct {
	// Bounded marks the endpoint as finite; V and Open are meaningless
	// otherwise.
	Bounded bool
	// V is the endpoint value.
	V value.Value
	// Open excludes the endpoint itself (strict comparison).
	Open bool
}

// At returns a closed finite bound at v.
func At(v value.Value) Bound { return Bound{Bounded: true, V: v} }

// Above returns an open finite bound at v.
func Above(v value.Value) Bound { return Bound{Bounded: true, V: v, Open: true} }

// Interval is a (possibly unbounded) interval of the value order minus a
// finite set of excluded points. The zero Interval is the full line
// (no constraint at all), matching the paper's blank ⊔.
type Interval struct {
	Lo, Hi Bound
	// not is the sorted set of excluded points.
	not []value.Value
}

// Full returns the unconstrained interval (the blank predicate "true").
func Full() Interval { return Interval{} }

// Point returns the interval holding exactly v (the predicate A = v).
func Point(v value.Value) Interval {
	return Interval{Lo: At(v), Hi: At(v)}
}

// FromCmp returns the interval for the primitive predicate A θ c.
func FromCmp(c value.Cmp, v value.Value) Interval {
	switch c {
	case value.EQ:
		return Point(v)
	case value.NE:
		return Interval{not: []value.Value{v}}
	case value.LT:
		return Interval{Hi: Above(v)}
	case value.LE:
		return Interval{Hi: At(v)}
	case value.GT:
		return Interval{Lo: Above(v)}
	default: // GE
		return Interval{Lo: At(v)}
	}
}

// IsFull reports whether the interval is completely unconstrained; such a
// constraint renders as the paper's blank ⊔.
func (iv Interval) IsFull() bool {
	return !iv.Lo.Bounded && !iv.Hi.Bounded && len(iv.not) == 0
}

// IsPoint reports whether the interval admits exactly one representable
// value, returning it. (Open endpoints over a dense-looking order are
// treated conservatively: only closed equal endpoints count.)
func (iv Interval) IsPoint() (value.Value, bool) {
	if !iv.Lo.Bounded || !iv.Hi.Bounded || iv.Lo.Open || iv.Hi.Open {
		return value.Value{}, false
	}
	if iv.Lo.V.Compare(iv.Hi.V) != 0 {
		return value.Value{}, false
	}
	for _, n := range iv.not {
		if n.Equal(iv.Lo.V) {
			return value.Value{}, false
		}
	}
	return iv.Lo.V, true
}

// IsEmpty reports whether no value can satisfy the interval. Because the
// value order is not dense in general (integers) we only detect the
// syntactic cases: crossed bounds, an open/closed point, and a point
// excluded by ≠. That is sound: an interval reported non-empty may still
// be unsatisfiable over a sparse domain, which costs completeness, never
// soundness.
func (iv Interval) IsEmpty() bool {
	if iv.Lo.Bounded && iv.Hi.Bounded {
		d := iv.Lo.V.Compare(iv.Hi.V)
		if d > 0 {
			return true
		}
		if d == 0 {
			if iv.Lo.Open || iv.Hi.Open {
				return true
			}
			for _, n := range iv.not {
				if n.Equal(iv.Lo.V) {
					return true
				}
			}
		}
	}
	return false
}

// Contains reports whether v satisfies the interval constraint.
func (iv Interval) Contains(v value.Value) bool {
	if iv.Lo.Bounded {
		d := v.Compare(iv.Lo.V)
		if d < 0 || (d == 0 && iv.Lo.Open) {
			return false
		}
	}
	if iv.Hi.Bounded {
		d := v.Compare(iv.Hi.V)
		if d > 0 || (d == 0 && iv.Hi.Open) {
			return false
		}
	}
	for _, n := range iv.not {
		if n.Equal(v) {
			return false
		}
	}
	return true
}

// loLess reports whether low bound a admits values that b rejects
// (a starts strictly before b).
func loLess(a, b Bound) bool {
	if !a.Bounded {
		return b.Bounded
	}
	if !b.Bounded {
		return false
	}
	d := a.V.Compare(b.V)
	if d != 0 {
		return d < 0
	}
	return !a.Open && b.Open
}

// hiGreater reports whether high bound a admits values that b rejects
// (a ends strictly after b).
func hiGreater(a, b Bound) bool {
	if !a.Bounded {
		return b.Bounded
	}
	if !b.Bounded {
		return false
	}
	d := a.V.Compare(b.V)
	if d != 0 {
		return d > 0
	}
	return !a.Open && b.Open
}

// Intersect returns the conjunction λ ∧ μ of two interval constraints.
func Intersect(a, b Interval) Interval {
	out := a
	if loLess(a.Lo, b.Lo) {
		out.Lo = b.Lo
	}
	if hiGreater(a.Hi, b.Hi) {
		out.Hi = b.Hi
	}
	merged := mergeNot(a.not, b.not)
	// Drop exclusions that fall outside the final bounds; they carry no
	// information and would spoil canonical comparison.
	var kept []value.Value
	probe := Interval{Lo: out.Lo, Hi: out.Hi}
	for _, n := range merged {
		if probe.Contains(n) {
			kept = append(kept, n)
		}
	}
	out.not = kept
	return out
}

func mergeNot(a, b []value.Value) []value.Value {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	m := append(append([]value.Value(nil), a...), b...)
	sort.Slice(m, func(i, j int) bool { return m[i].Less(m[j]) })
	out := m[:0]
	for i, v := range m {
		if i == 0 || !v.Equal(m[i-1]) {
			out = append(out, v)
		}
	}
	return out
}

// Hull returns a constraint implied by the disjunction a ∨ b: the weaker
// bound on each side, excluding only the points neither operand admits.
// Every value satisfying a or b satisfies Hull(a, b); the converse need
// not hold (the hull over-approximates, soundly for necessary-condition
// uses like mask-predicate pushdown).
func Hull(a, b Interval) Interval {
	if a.IsEmpty() {
		return b
	}
	if b.IsEmpty() {
		return a
	}
	out := Interval{Lo: a.Lo, Hi: a.Hi}
	if loLess(b.Lo, a.Lo) {
		out.Lo = b.Lo
	}
	if hiGreater(b.Hi, a.Hi) {
		out.Hi = b.Hi
	}
	// A point stays excluded only when both operands reject it; points
	// outside the hull bounds are already rejected and stay out of the
	// canonical form.
	probe := Interval{Lo: out.Lo, Hi: out.Hi}
	var kept []value.Value
	for _, n := range mergeNot(a.not, b.not) {
		if !a.Contains(n) && !b.Contains(n) && probe.Contains(n) {
			kept = append(kept, n)
		}
	}
	out.not = kept
	return out
}

// Implies reports whether a ⇒ b, i.e. every value satisfying a satisfies b.
// It must never report true incorrectly (that would leak data by clearing a
// restriction); reporting false when true only costs completeness.
func (a Interval) Implies(b Interval) bool {
	if a.IsEmpty() {
		return true
	}
	if loLess(a.Lo, b.Lo) || hiGreater(a.Hi, b.Hi) {
		return false
	}
	// Every point b excludes must be rejected by a as well.
	for _, n := range b.not {
		if a.Contains(n) {
			return false
		}
	}
	return true
}

// Equal reports structural equality of the canonical forms.
func (a Interval) Equal(b Interval) bool {
	if a.Lo != b.Lo || a.Hi != b.Hi || len(a.not) != len(b.not) {
		return false
	}
	for i := range a.not {
		if !a.not[i].Equal(b.not[i]) {
			return false
		}
	}
	return true
}

// Excluded returns the ≠-excluded points (read-only).
func (a Interval) Excluded() []value.Value { return a.not }

// Conds renders the constraint as a conjunction of primitive predicates on
// the attribute named attr, e.g. "BUDGET >= 250000". A full interval
// renders as no conditions; a point as a single equality.
func (a Interval) Conds(attr string) []string {
	if v, ok := a.IsPoint(); ok {
		return []string{attr + " = " + v.String()}
	}
	var out []string
	if a.Lo.Bounded {
		op := ">="
		if a.Lo.Open {
			op = ">"
		}
		out = append(out, attr+" "+op+" "+a.Lo.V.String())
	}
	if a.Hi.Bounded {
		op := "<="
		if a.Hi.Open {
			op = "<"
		}
		out = append(out, attr+" "+op+" "+a.Hi.V.String())
	}
	for _, n := range a.not {
		out = append(out, attr+" != "+n.String())
	}
	return out
}

// String renders the interval for debugging, e.g. "[250000, +inf)".
func (a Interval) String() string {
	if a.IsFull() {
		return "(-inf, +inf)"
	}
	var b strings.Builder
	switch {
	case !a.Lo.Bounded:
		b.WriteString("(-inf")
	case a.Lo.Open:
		b.WriteString("(" + a.Lo.V.String())
	default:
		b.WriteString("[" + a.Lo.V.String())
	}
	b.WriteString(", ")
	switch {
	case !a.Hi.Bounded:
		b.WriteString("+inf)")
	case a.Hi.Open:
		b.WriteString(a.Hi.V.String() + ")")
	default:
		b.WriteString(a.Hi.V.String() + "]")
	}
	for _, n := range a.not {
		b.WriteString(" \\ " + n.String())
	}
	return b.String()
}
