package interval

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"authdb/internal/value"
)

// domain is the finite probe set the property tests quantify over; with
// integer endpoints drawn from the same range, it exercises every
// boundary relationship.
var domain = func() []value.Value {
	var out []value.Value
	for i := -2; i <= 12; i++ {
		out = append(out, value.Int(int64(i)))
	}
	return append(out, value.String("a"), value.String("b"))
}()

func randInterval(r *rand.Rand) Interval {
	pick := func() value.Value { return value.Int(int64(r.Intn(11))) }
	var iv Interval
	switch r.Intn(4) {
	case 0:
		iv = Full()
	case 1:
		iv = Point(pick())
	case 2:
		iv = FromCmp(value.Comparators[r.Intn(len(value.Comparators))], pick())
	default:
		iv = Intersect(
			FromCmp(value.GE, pick()),
			FromCmp(value.LE, pick()),
		)
	}
	if r.Intn(3) == 0 {
		iv = Intersect(iv, FromCmp(value.NE, pick()))
	}
	return iv
}

func TestZeroIntervalIsFull(t *testing.T) {
	var iv Interval
	if !iv.IsFull() {
		t.Fatal("the zero Interval must be the full line")
	}
	for _, v := range domain {
		if !iv.Contains(v) {
			t.Fatalf("full interval must contain %v", v)
		}
	}
}

func TestFromCmpMatchesEval(t *testing.T) {
	for _, op := range value.Comparators {
		for _, c := range domain {
			iv := FromCmp(op, c)
			for _, v := range domain {
				if iv.Contains(v) != op.Eval(v, c) {
					t.Fatalf("FromCmp(%v, %v).Contains(%v) = %v, want %v",
						op, c, v, iv.Contains(v), op.Eval(v, c))
				}
			}
		}
	}
}

func TestIntersectIsConjunction(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a, b := randInterval(r), randInterval(r)
		ab := Intersect(a, b)
		for _, v := range domain {
			if ab.Contains(v) != (a.Contains(v) && b.Contains(v)) {
				t.Fatalf("Intersect(%v, %v).Contains(%v) wrong", a, b, v)
			}
		}
	}
}

func TestHullContainsUnion(t *testing.T) {
	// Soundness of the disjunction hull: every value either operand
	// admits must be admitted by the hull (the mask-pushdown direction —
	// the hull may only over-approximate, never exclude a permitted
	// value).
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		a, b := randInterval(r), randInterval(r)
		h := Hull(a, b)
		for _, v := range domain {
			if (a.Contains(v) || b.Contains(v)) && !h.Contains(v) {
				t.Fatalf("Hull(%v, %v) = %v excludes %v admitted by an operand", a, b, h, v)
			}
		}
	}
}

func TestHullKeepsCommonExclusions(t *testing.T) {
	// Tightness where it is sound: a point both operands exclude stays
	// excluded, and bounds shared by both operands survive.
	a := Intersect(FromCmp(value.GE, value.Int(2)), FromCmp(value.NE, value.Int(5)))
	b := Intersect(FromCmp(value.GE, value.Int(3)), FromCmp(value.NE, value.Int(5)))
	h := Hull(a, b)
	if h.Contains(value.Int(5)) {
		t.Fatalf("Hull %v must keep the shared exclusion of 5", h)
	}
	if h.Contains(value.Int(1)) {
		t.Fatalf("Hull %v must keep the shared lower bound", h)
	}
	// An exclusion only one operand carries must be dropped.
	c := FromCmp(value.GE, value.Int(2))
	if h2 := Hull(a, c); !h2.Contains(value.Int(5)) {
		t.Fatalf("Hull %v must drop the one-sided exclusion of 5", h2)
	}
	// An empty operand contributes nothing.
	empty := Intersect(Point(value.Int(1)), Point(value.Int(2)))
	if h3 := Hull(empty, a); !h3.Equal(a) {
		t.Fatalf("Hull(empty, a) = %v, want %v", h3, a)
	}
}

func TestImpliesIsSound(t *testing.T) {
	// Soundness is the security-critical direction: Implies=true must
	// never admit a value of a outside b (that would clear a restriction
	// it shouldn't).
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		a, b := randInterval(r), randInterval(r)
		if !a.Implies(b) {
			continue
		}
		for _, v := range domain {
			if a.Contains(v) && !b.Contains(v) {
				t.Fatalf("%v implies %v claimed, but %v separates them", a, b, v)
			}
		}
	}
}

func TestImpliesCompleteOnBounds(t *testing.T) {
	// Bound-only intervals (no exclusions): Implies should be exact.
	ge5 := FromCmp(value.GE, value.Int(5))
	ge3 := FromCmp(value.GE, value.Int(3))
	if !ge5.Implies(ge3) || ge3.Implies(ge5) {
		t.Fatal("containment of one-sided bounds wrong")
	}
	in46 := Intersect(FromCmp(value.GE, value.Int(4)), FromCmp(value.LE, value.Int(6)))
	in07 := Intersect(FromCmp(value.GE, value.Int(0)), FromCmp(value.LE, value.Int(7)))
	if !in46.Implies(in07) || in07.Implies(in46) {
		t.Fatal("containment of two-sided bounds wrong")
	}
	if !in46.Implies(Full()) || Full().Implies(in46) {
		t.Fatal("full-interval containment wrong")
	}
}

func TestIsEmpty(t *testing.T) {
	cases := []struct {
		iv   Interval
		want bool
	}{
		{Full(), false},
		{Point(value.Int(3)), false},
		{Intersect(FromCmp(value.GE, value.Int(5)), FromCmp(value.LE, value.Int(3))), true},
		{Intersect(FromCmp(value.GT, value.Int(3)), FromCmp(value.LE, value.Int(3))), true},
		{Intersect(Point(value.Int(3)), FromCmp(value.NE, value.Int(3))), true},
		{Intersect(FromCmp(value.GE, value.Int(3)), FromCmp(value.LE, value.Int(3))), false},
	}
	for _, c := range cases {
		if c.iv.IsEmpty() != c.want {
			t.Errorf("IsEmpty(%v) = %v, want %v", c.iv, c.iv.IsEmpty(), c.want)
		}
	}
}

func TestEmptyContainsNothing(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 500; i++ {
		iv := randInterval(r)
		if !iv.IsEmpty() {
			continue
		}
		for _, v := range domain {
			if iv.Contains(v) {
				t.Fatalf("empty interval %v contains %v", iv, v)
			}
		}
	}
}

func TestIsPoint(t *testing.T) {
	if v, ok := Point(value.Int(9)).IsPoint(); !ok || v.AsInt() != 9 {
		t.Fatal("Point not detected")
	}
	if _, ok := Full().IsPoint(); ok {
		t.Fatal("Full is not a point")
	}
	if _, ok := FromCmp(value.GE, value.Int(1)).IsPoint(); ok {
		t.Fatal("one-sided bound is not a point")
	}
	notted := Intersect(Point(value.Int(9)), FromCmp(value.NE, value.Int(9)))
	if _, ok := notted.IsPoint(); ok {
		t.Fatal("excluded point is not a point")
	}
}

func TestIntersectCanonicalizesExclusions(t *testing.T) {
	// An exclusion outside the bounds carries no information and must be
	// dropped so Equal works structurally.
	a := Intersect(FromCmp(value.GE, value.Int(5)), FromCmp(value.NE, value.Int(1)))
	b := FromCmp(value.GE, value.Int(5))
	if !a.Equal(b) {
		t.Fatalf("out-of-range exclusion kept: %v vs %v", a, b)
	}
}

func TestEqualAndExcluded(t *testing.T) {
	a := Intersect(Full(), FromCmp(value.NE, value.Int(4)))
	b := Intersect(Full(), FromCmp(value.NE, value.Int(4)))
	if !a.Equal(b) {
		t.Fatal("identical intervals unequal")
	}
	if len(a.Excluded()) != 1 || a.Excluded()[0].AsInt() != 4 {
		t.Fatal("Excluded() wrong")
	}
	if a.Equal(Full()) {
		t.Fatal("exclusion ignored by Equal")
	}
}

func TestConds(t *testing.T) {
	cases := []struct {
		iv   Interval
		want []string
	}{
		{Full(), nil},
		{Point(value.String("Acme")), []string{"SPONSOR = Acme"}},
		{FromCmp(value.GE, value.Int(250000)), []string{"SPONSOR >= 250000"}},
		{FromCmp(value.LT, value.Int(10)), []string{"SPONSOR < 10"}},
		{FromCmp(value.NE, value.Int(3)), []string{"SPONSOR != 3"}},
		{Intersect(FromCmp(value.GT, value.Int(1)), FromCmp(value.LE, value.Int(5))),
			[]string{"SPONSOR > 1", "SPONSOR <= 5"}},
	}
	for _, c := range cases {
		got := c.iv.Conds("SPONSOR")
		if strings.Join(got, "|") != strings.Join(c.want, "|") {
			t.Errorf("Conds(%v) = %v, want %v", c.iv, got, c.want)
		}
	}
}

func TestString(t *testing.T) {
	if Full().String() != "(-inf, +inf)" {
		t.Error(Full().String())
	}
	iv := Intersect(FromCmp(value.GE, value.Int(3)), FromCmp(value.LT, value.Int(8)))
	if iv.String() != "[3, 8)" {
		t.Error(iv.String())
	}
}

func TestQuickIntersectCommutes(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	cfg := &quick.Config{Rand: r, MaxCount: 300}
	if err := quick.Check(func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b := randInterval(rr), randInterval(rr)
		x, y := Intersect(a, b), Intersect(b, a)
		for _, v := range domain {
			if x.Contains(v) != y.Contains(v) {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}
