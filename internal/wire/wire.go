// Package wire defines the network protocol shared by the server
// (internal/server) and the Go client (pkg/client): length-prefixed JSON
// frames carrying an authentication handshake followed by
// request/response pairs, plus the mapping from engine errors to stable
// machine-readable codes.
//
// Framing is deliberately dumb, mirroring the WAL's record format:
//
//	uint32le payload length | payload (JSON)
//
// A frame larger than the agreed maximum is a protocol error and closes
// the connection. Within one connection, requests execute strictly in
// order and every request produces exactly one response carrying the
// request's ID.
package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// ProtoVersion identifies the protocol; the handshake rejects mismatches
// so both sides fail loudly instead of mis-parsing frames.
const ProtoVersion = 1

// MaxFrame bounds one frame's payload (requests and responses): larger
// length words are treated as a protocol error rather than allocated.
const MaxFrame = 16 << 20

// WriteFrame writes one length-prefixed payload.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit %d", len(payload), MaxFrame)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed payload, failing on frames larger
// than MaxFrame.
func ReadFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit %d", n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// WriteMsg marshals v and writes it as one frame.
func WriteMsg(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return WriteFrame(w, payload)
}

// ReadMsg reads one frame and unmarshals it into v.
func ReadMsg(r *bufio.Reader, v any) error {
	payload, err := ReadFrame(r)
	if err != nil {
		return err
	}
	return json.Unmarshal(payload, v)
}

// Hello opens a connection: the client announces the protocol version
// and authenticates as a principal. Administrator sessions additionally
// present the server's admin token when one is configured.
type Hello struct {
	Proto int    `json:"proto"`
	User  string `json:"user"`
	Admin bool   `json:"admin,omitempty"`
	Token string `json:"token,omitempty"`
}

// HelloReply acknowledges (or rejects) the handshake.
type HelloReply struct {
	OK     bool   `json:"ok"`
	Server string `json:"server,omitempty"`
	Error  *Error `json:"error,omitempty"`
}

// Request is one statement (or shared meta-command, e.g. `\stats`) to
// execute under the connection's principal.
type Request struct {
	// ID is echoed in the response; the client uses it to pair them.
	ID uint64 `json:"id"`
	// Stmt is the statement text.
	Stmt string `json:"stmt"`
	// TimeoutMS, when positive, bounds this request's execution; the
	// server composes it with (never extends) its configured limits.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Table is a delivered relation: display column names and rendered cell
// values, withheld cells as "-" — the same canonical rendering the REPL
// prints.
type Table struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// Response answers one request: the rendered result (what the REPL
// would print), the structured pieces for programmatic use, or a coded
// error.
type Response struct {
	ID uint64 `json:"id"`
	// Text carries acknowledgements and show/meta-command output.
	Text string `json:"text,omitempty"`
	// Rendered is the complete human-readable result, identical to the
	// REPL's output for the same statement.
	Rendered string `json:"rendered,omitempty"`
	// Table is the delivered relation of a retrieve.
	Table *Table `json:"table,omitempty"`
	// Permits are the inferred permit statements accompanying a
	// partially delivered answer.
	Permits []string `json:"permits,omitempty"`
	// FullyAuthorized and Denied classify a retrieve's outcome.
	FullyAuthorized bool `json:"fully_authorized,omitempty"`
	Denied          bool `json:"denied,omitempty"`
	// Error is set instead of the result fields when execution failed.
	Error *Error `json:"error,omitempty"`
}

// Error is a structured statement failure. Code is stable and
// machine-readable; Retryable tells clients whether the same request
// could succeed later (canceled/timed out work, a draining server)
// as opposed to deterministic failures (parse errors, budget, denial).
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Line and Col locate parse errors (1-based; zero otherwise).
	Line int `json:"line,omitempty"`
	Col  int `json:"col,omitempty"`
	// Retryable reports the failure is transient.
	Retryable bool `json:"retryable,omitempty"`
	// Leader, set on READ_ONLY and STALE_PRIMARY failures when the node
	// knows (or believes it knows) the current leader's wire address,
	// lets clients redirect writes without re-polling every node.
	Leader string `json:"leader,omitempty"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}
