// Replication messages. A replica dials the primary's ordinary listen
// address; its first frame is a ReplHello instead of a Hello, and the
// server routes on the "kind" field (MsgKind) — regular handshakes have
// none. After the primary's ReplHelloReply the connection becomes a
// one-way statement stream (ReplBatch frames, primary → replica) with
// an ack stream (ReplAck frames, replica → primary) riding the other
// direction; both sides use the same framing as the rest of the
// protocol.
package wire

import "encoding/json"

// Replication message kinds, carried in the "kind" field.
const (
	KindReplHello = "repl_hello"
	KindReplBatch = "repl_batch"
	KindReplAck   = "repl_ack"
	KindReplFence = "repl_fence"
)

// MsgKind probes a frame's "kind" field without committing to a message
// type; it returns "" for frames without one (every pre-replication
// message, notably the regular Hello) or for payloads that are not a
// JSON object.
func MsgKind(payload []byte) string {
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(payload, &probe); err != nil {
		return ""
	}
	return probe.Kind
}

// ReplHello opens a replication stream: the replica announces the
// protocol version, authenticates with the primary's admin token, and
// states the last LSN it has durably applied (zero for an empty
// replica). The primary decides how to bring it current.
type ReplHello struct {
	Kind  string `json:"kind"` // KindReplHello
	Proto int    `json:"proto"`
	Token string `json:"token,omitempty"`
	// From is the replica's last durably applied LSN; the stream resumes
	// at From+1.
	From uint64 `json:"from"`
	// Name labels the follower in the primary's metrics and \stats.
	Name string `json:"name,omitempty"`
	// Epoch is the highest fencing epoch the follower has adopted. A
	// primary whose own epoch is lower has been superseded: it must
	// demote itself instead of serving the stream. Zero (a pre-epoch
	// follower) is treated as epoch 1, the epoch every engine starts in.
	Epoch uint64 `json:"epoch,omitempty"`
	// Leader, when set, names the wire address the follower believes the
	// current leader serves on — a hint a fenced ex-primary can hand to
	// its own clients.
	Leader string `json:"leader,omitempty"`
}

// EpochEntry is one step of the cluster's fencing-epoch history: the
// epoch number and the LSN at which it began (the position of the
// promoting node at promotion). Followers adopt the primary's history so
// a later rejoin can locate the fork point of any stale epoch.
type EpochEntry struct {
	Epoch    uint64 `json:"epoch"`
	StartLSN uint64 `json:"start_lsn"`
}

// Modes a primary answers a ReplHello with.
const (
	// ReplModeTail: the replica's position is recent enough that the
	// stream alone brings it current; no snapshot follows.
	ReplModeTail = "tail"
	// ReplModeSnapshot: the reply carries a full state snapshot the
	// replica must install before applying the stream.
	ReplModeSnapshot = "snapshot"
)

// ReplHelloReply accepts (or rejects) a replication stream. On success
// Mode says whether Snapshot is present; the batch stream follows
// immediately after this frame.
type ReplHelloReply struct {
	OK   bool   `json:"ok"`
	Mode string `json:"mode,omitempty"`
	// Snapshot is the primary's complete state in the flat snapshot file
	// layout (JSON encodes the file bodies as base64); set in snapshot
	// mode only. SnapshotLSN is the LSN the snapshot embodies — the
	// stream resumes at SnapshotLSN+1.
	Snapshot    map[string][]byte `json:"snapshot,omitempty"`
	SnapshotLSN uint64            `json:"snapshot_lsn,omitempty"`
	// Gen is the primary's snapshot generation at handshake, for
	// diagnostics.
	Gen   uint64 `json:"gen,omitempty"`
	Error *Error `json:"error,omitempty"`
	// Epoch is the primary's current fencing epoch and EpochHist its full
	// (epoch, start-LSN) history; the follower adopts both. A follower
	// whose own epoch is higher must refuse the stream and fence this
	// primary instead.
	Epoch     uint64       `json:"epoch,omitempty"`
	EpochHist []EpochEntry `json:"epoch_hist,omitempty"`
	// Diverged reports that the follower's history forked from the
	// primary's: the follower holds statements past Fork that the
	// primary's history does not contain (it accepted them under a stale
	// epoch). The follower must quarantine its suffix past Fork before
	// installing the accompanying snapshot — the reply is always in
	// snapshot mode when Diverged is set.
	Diverged bool   `json:"diverged,omitempty"`
	Fork     uint64 `json:"fork,omitempty"`
}

// ReplBatch carries a contiguous run of durably committed statements:
// Stmts[i] has LSN From+i. The replica applies them in order and must
// never see a gap — a hole is a protocol error that forces reconnect.
type ReplBatch struct {
	Kind string `json:"kind"` // KindReplBatch
	// From is the LSN of Stmts[0].
	From  uint64   `json:"from"`
	Stmts []string `json:"stmts"`
	// Epoch is the epoch the primary committed these statements under; a
	// follower that has adopted a higher epoch rejects the batch with a
	// fatal ReplFence — the sender is a stale primary.
	Epoch uint64 `json:"epoch,omitempty"`
	// SentUnixNano is the primary's clock when the batch was written;
	// the replica derives its seconds-behind lag from it (meaningful to
	// the extent the two clocks agree).
	SentUnixNano int64 `json:"sent_unix_nano,omitempty"`
}

// ReplAck reports the replica's durable progress; the primary uses it
// for lag accounting and to decide when a graceful shutdown may stop
// waiting for a follower.
type ReplAck struct {
	Kind string `json:"kind"` // KindReplAck
	// Applied is the highest LSN the replica has durably applied.
	Applied uint64 `json:"applied"`
}

// ReplFence travels follower → primary on the ack stream when the
// follower has adopted an epoch higher than the one stamped on the
// stream: the sender is a stale primary and must demote itself to
// read-only. Epoch is the follower's (higher) epoch; Leader, when
// known, is where the current leader serves.
type ReplFence struct {
	Kind   string `json:"kind"` // KindReplFence
	Epoch  uint64 `json:"epoch"`
	Leader string `json:"leader,omitempty"`
}
