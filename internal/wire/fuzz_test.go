package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
)

// seedFrames builds the seed corpus: one well-formed frame per message
// type (replication kinds included), plus malformed inputs a hostile or
// broken peer could send.
func seedFrames(tb testing.TB) [][]byte {
	tb.Helper()
	frame := func(v any) []byte {
		var buf bytes.Buffer
		if err := WriteMsg(&buf, v); err != nil {
			tb.Fatalf("seed frame: %v", err)
		}
		return buf.Bytes()
	}
	return [][]byte{
		frame(Hello{Proto: ProtoVersion, User: "Brown", Admin: true, Token: "t"}),
		frame(HelloReply{OK: true, Server: "authdb"}),
		frame(Request{ID: 9, Stmt: "retrieve (EMPLOYEE.NAME)", TimeoutMS: 100}),
		frame(Response{ID: 9, Rendered: "…", Permits: []string{"permit (NAME)"},
			Error: &Error{Code: CodeExec, Message: "nope"}}),
		frame(ReplHello{Kind: KindReplHello, Proto: ProtoVersion, Token: "t", From: 41, Name: "r1",
			Epoch: 3, Leader: "127.0.0.1:4100"}),
		frame(ReplHelloReply{OK: true, Mode: ReplModeSnapshot,
			Snapshot: map[string][]byte{"schema.authdb": []byte("relation R (A);\n")}, SnapshotLSN: 41, Gen: 3}),
		frame(ReplHelloReply{OK: true, Mode: ReplModeSnapshot, Epoch: 4,
			EpochHist: []EpochEntry{{Epoch: 1, StartLSN: 0}, {Epoch: 4, StartLSN: 41}},
			Diverged:  true, Fork: 41, SnapshotLSN: 50}),
		frame(ReplHelloReply{OK: false, Error: &Error{Code: CodeProtocol, Message: "bad token"}}),
		frame(ReplBatch{Kind: KindReplBatch, From: 42, Epoch: 2, Stmts: []string{"insert into R values (x)", "permit V to U"}}),
		frame(ReplAck{Kind: KindReplAck, Applied: 43}),
		frame(ReplFence{Kind: KindReplFence, Epoch: 5, Leader: "127.0.0.1:4100"}),
		frame(Response{ID: 3, Error: &Error{Code: CodeStalePrimary,
			Message: "fenced at epoch 5", Leader: "127.0.0.1:4100"}}),
		// Two frames back to back.
		append(frame(ReplBatch{Kind: KindReplBatch, From: 1, Stmts: []string{"a"}}),
			frame(ReplAck{Kind: KindReplAck, Applied: 1})...),
		// Malformed: truncated header, truncated payload, not-JSON,
		// oversize length word, unknown kind.
		{0x05, 0x00},
		{0x05, 0x00, 0x00, 0x00, '{', '"'},
		{0x03, 0x00, 0x00, 0x00, 'x', 'y', 'z'},
		{0xff, 0xff, 0xff, 0xff},
		frame(map[string]any{"kind": "mystery", "from": -1}),
	}
}

// FuzzDecode feeds arbitrary bytes through the frame reader and the
// kind-probed message decoding exactly the way a server connection
// does, checking nothing panics and limits hold.
func FuzzDecode(f *testing.F) {
	for _, seed := range seedFrames(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		decodeStream(t, data)
	})
}

// TestDecodeCorpus runs the fuzz body over the seeds in ordinary test
// runs, and checks the well-formed ones round-trip.
func TestDecodeCorpus(t *testing.T) {
	for _, seed := range seedFrames(t) {
		decodeStream(t, seed)
	}

	var buf bytes.Buffer
	in := ReplBatch{Kind: KindReplBatch, From: 7, Stmts: []string{"insert into R values (x, y)"}}
	if err := WriteMsg(&buf, in); err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got := MsgKind(payload); got != KindReplBatch {
		t.Fatalf("MsgKind = %q, want %q", got, KindReplBatch)
	}
	var out ReplBatch
	if err := json.Unmarshal(payload, &out); err != nil {
		t.Fatal(err)
	}
	if out.From != in.From || len(out.Stmts) != 1 || out.Stmts[0] != in.Stmts[0] {
		t.Fatalf("round trip = %+v", out)
	}
}

// decodeStream is the shared fuzz body: read frames until the input
// runs out, probing each frame's kind and decoding it as its message
// type (and, kind-less, as each pre-replication type).
func decodeStream(t *testing.T, data []byte) {
	t.Helper()
	r := bufio.NewReader(bytes.NewReader(data))
	for i := 0; i < 16; i++ {
		payload, err := ReadFrame(r)
		if err != nil {
			return
		}
		switch MsgKind(payload) {
		case KindReplHello:
			var m ReplHello
			_ = json.Unmarshal(payload, &m)
		case KindReplBatch:
			var m ReplBatch
			_ = json.Unmarshal(payload, &m)
		case KindReplAck:
			var m ReplAck
			_ = json.Unmarshal(payload, &m)
		case KindReplFence:
			var m ReplFence
			_ = json.Unmarshal(payload, &m)
		default:
			var h Hello
			_ = json.Unmarshal(payload, &h)
			var req Request
			_ = json.Unmarshal(payload, &req)
			var resp Response
			_ = json.Unmarshal(payload, &resp)
			var hr ReplHelloReply
			_ = json.Unmarshal(payload, &hr)
		}
	}
}
