package wire

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"testing"

	"authdb/internal/core"
	"authdb/internal/engine"
	"authdb/internal/guard"
	"authdb/internal/parser"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []any{
		Hello{Proto: ProtoVersion, User: "Brown"},
		Request{ID: 7, Stmt: "retrieve (EMPLOYEE.NAME)", TimeoutMS: 250},
		Response{ID: 7, Rendered: "table…", Permits: []string{"permit (NAME)"}},
	}
	for _, m := range msgs {
		if err := WriteMsg(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	var h Hello
	if err := ReadMsg(r, &h); err != nil || h.User != "Brown" || h.Proto != ProtoVersion {
		t.Fatalf("hello round trip = %+v, %v", h, err)
	}
	var req Request
	if err := ReadMsg(r, &req); err != nil || req.ID != 7 || req.TimeoutMS != 250 {
		t.Fatalf("request round trip = %+v, %v", req, err)
	}
	var resp Response
	if err := ReadMsg(r, &resp); err != nil || resp.ID != 7 || len(resp.Permits) != 1 {
		t.Fatalf("response round trip = %+v, %v", resp, err)
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], MaxFrame+1)
	buf.Write(hdr[:])
	if _, err := ReadFrame(bufio.NewReader(&buf)); err == nil {
		t.Fatal("oversize frame accepted")
	}
}

func TestErrorFor(t *testing.T) {
	// A real parse error carries line and column through to the code.
	_, perr := parser.Parse("retrieve !")
	cases := []struct {
		err       error
		code      string
		retryable bool
	}{
		{perr, CodeParse, false},
		{fmt.Errorf("wrapped: %w", guard.ErrCanceled), CodeCanceled, true},
		{fmt.Errorf("wrapped: %w", guard.ErrBudgetExceeded), CodeBudget, false},
		{fmt.Errorf("wrapped: %w", engine.ErrNotAuthorized), CodeNotAuthorized, false},
		{fmt.Errorf("wrapped: %w", engine.ErrInternal), CodeInternal, false},
		{fmt.Errorf("unknown relation NOPE"), CodeExec, false},
	}
	for _, c := range cases {
		we := ErrorFor(c.err)
		if we.Code != c.code || we.Retryable != c.retryable {
			t.Fatalf("ErrorFor(%v) = %+v, want code %s retryable %v", c.err, we, c.code, c.retryable)
		}
	}
	if we := ErrorFor(perr); we.Line != 1 || we.Col != 10 {
		t.Fatalf("parse error position = %d:%d, want 1:10", we.Line, we.Col)
	}
	if ErrorFor(nil) != nil {
		t.Fatal("ErrorFor(nil) != nil")
	}
}

func TestErrorForRealEngineErrors(t *testing.T) {
	// End to end: errors produced by actual session executions map to
	// the intended codes.
	e := engine.New(core.DefaultOptions())
	admin := e.NewSession("admin", true)
	mustExec(t, admin, `relation R (A, B) key (A)`)
	mustExec(t, admin, `insert into R values (x, y)`)

	user := e.NewSession("u", false)
	if _, err := user.Exec(`view V (R.A)`); ErrorFor(err).Code != CodeNotAuthorized {
		t.Fatalf("admin-only statement code = %v", ErrorFor(err))
	}
	big := e.NewSession("admin", true)
	big.SetLimits(guard.Limits{MaxIntermediateRows: 1})
	mustExec(t, admin, `insert into R values (x2, y2)`)
	if _, err := big.Exec(`retrieve (R:1.A, R:2.A)`); ErrorFor(err).Code != CodeBudget {
		t.Fatalf("budget code = %v", ErrorFor(err))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := admin.ExecContext(ctx, `retrieve (R.A)`); ErrorFor(err).Code != CodeCanceled {
		t.Fatalf("cancel code = %v", ErrorFor(err))
	}
	if _, err := admin.Exec(`retrieve (NOPE.A)`); ErrorFor(err).Code != CodeExec {
		t.Fatalf("exec code = %v", ErrorFor(err))
	}
}

func mustExec(t *testing.T, s *engine.Session, stmt string) {
	t.Helper()
	if _, err := s.Exec(stmt); err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
}
