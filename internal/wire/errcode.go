package wire

import (
	"errors"

	"authdb/internal/engine"
	"authdb/internal/guard"
	"authdb/internal/parser"
)

// Stable error codes carried in Error.Code. Clients branch on these,
// never on message text.
const (
	// CodeParse: the statement did not parse; Line/Col point at the spot.
	CodeParse = "PARSE"
	// CodeCanceled: the request's context was canceled or its deadline
	// (or the server's per-statement timeout) passed. Retryable.
	CodeCanceled = "CANCELED"
	// CodeBudget: the statement exceeded the connection's resource
	// limits; retrying the same statement fails the same way.
	CodeBudget = "BUDGET_EXCEEDED"
	// CodeNotAuthorized: the principal lacks the authority (admin-only
	// statement, or an update outside every permitted view).
	CodeNotAuthorized = "NOT_AUTHORIZED"
	// CodeInternal: a panic recovered at the session boundary.
	CodeInternal = "INTERNAL"
	// CodeShuttingDown: the server is draining; retry elsewhere/later.
	CodeShuttingDown = "SHUTTING_DOWN"
	// CodeProtocol: a malformed frame or handshake.
	CodeProtocol = "PROTOCOL"
	// CodeReadOnly: a mutating statement reached a read-only replica; the
	// message names the primary to send writes to. Deterministic here —
	// clients must redial the primary, not retry.
	CodeReadOnly = "READ_ONLY"
	// CodeStalePrimary: the node was the primary but has been fenced by a
	// higher epoch (a replica was promoted over it); it now refuses
	// writes. Error.Leader carries the new leader when known.
	CodeStalePrimary = "STALE_PRIMARY"
	// CodeExec: any other execution failure (unknown relation or view,
	// arity mismatch, duplicate definitions, …). Deterministic.
	CodeExec = "EXEC"
)

// ErrorFor maps an execution error to its structured wire form.
func ErrorFor(err error) *Error {
	if err == nil {
		return nil
	}
	var se *parser.SyntaxError
	switch {
	case errors.As(err, &se):
		return &Error{Code: CodeParse, Message: err.Error(), Line: se.Line, Col: se.Col}
	case errors.Is(err, guard.ErrCanceled):
		return &Error{Code: CodeCanceled, Message: err.Error(), Retryable: true}
	case errors.Is(err, guard.ErrBudgetExceeded):
		return &Error{Code: CodeBudget, Message: err.Error()}
	case errors.Is(err, engine.ErrNotAuthorized):
		return &Error{Code: CodeNotAuthorized, Message: err.Error()}
	case errors.Is(err, engine.ErrReadOnly):
		return &Error{Code: CodeReadOnly, Message: err.Error()}
	case errors.Is(err, engine.ErrInternal):
		return &Error{Code: CodeInternal, Message: err.Error()}
	default:
		return &Error{Code: CodeExec, Message: err.Error()}
	}
}
