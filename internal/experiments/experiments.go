// Package experiments implements the comparison and performance
// experiments of EXPERIMENTS.md (E6–E9, E11): System R versus masking,
// INGRES query modification versus masking, the §4.2 refinement
// ablations, the overhead sweeps, and the §6(3) extension. Each
// experiment writes its table to an io.Writer; the authbench command
// prints them and the tests assert their deterministic content.
package experiments

import (
	"fmt"
	"io"
	"time"

	"authdb/internal/algebra"
	"authdb/internal/core"
	"authdb/internal/cview"
	"authdb/internal/qmod"
	"authdb/internal/relation"
	"authdb/internal/sysr"
	"authdb/internal/value"
	"authdb/internal/workload"
)

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "================ %s ================\n\n", title)
}

// outcome classifies a Motro decision.
func outcome(d *core.Decision) string {
	switch {
	case d.FullyAuthorized || (d.Stats.Full() && d.Stats.Rows > 0):
		return "full"
	case d.Denied || d.Stats.Empty():
		return "denied"
	default:
		return "partial"
	}
}

// expSysR demonstrates the §1 System R claim: with permission granted on a
// view V of A and B (but not on A or B), System R rejects every query that
// addresses A or B directly — even requests entirely within V — while the
// masking model delivers the permitted portion.
func SysR(w io.Writer) {
	header(w, "E6: System R (views as access windows) vs masking")
	f := workload.Paper()
	sr := sysr.New(f.Schema, f.Source, "dba")
	for _, name := range f.Store.ViewNames() {
		if err := sr.DefineView("dba", f.Store.ViewDef(name)); err != nil {
			panic(err)
		}
	}
	for _, u := range f.Store.Users() {
		for _, v := range f.Store.ViewsFor(u) {
			if err := sr.GrantSelect("dba", u, v, false); err != nil {
				panic(err)
			}
		}
	}
	auth := core.NewAuthorizer(f.Store, f.Source, core.DefaultOptions())

	queries := []struct {
		label string
		user  string
		stmt  string
	}{
		{"Q1 within ELP, on base relations (paper §1)", "Klein", `
			retrieve (EMPLOYEE.NAME)
			  where EMPLOYEE.NAME = ASSIGNMENT.E_NAME
			  and ASSIGNMENT.P_NO = PROJECT.NUMBER
			  and PROJECT.BUDGET >= 400000`},
		{"Q2 Example 1 on base relation", "Brown", workload.Example1Query},
		{"Q3 Example 2 on base relations", "Klein", workload.Example2Query},
		{"Q4 against the view ELP itself", "Klein", `
			retrieve (ELP.NAME) where ELP.BUDGET >= 500000`},
		{"Q5 all salaries on base relation", "Brown", `
			retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY)`},
	}
	fmt.Fprintf(w, "%-45s %-8s %-12s %-s\n", "query", "user", "System R", "mask model (cells delivered)")
	for _, q := range queries {
		def := workload.MustQuery(q.stmt)
		srOut := "answered"
		if _, err := sr.Query(q.user, def); err != nil {
			srOut = "DENIED"
		}
		motro := "n/a (view reference)"
		if viewFree(f.Schema, def) {
			d, err := auth.Retrieve(q.user, def)
			if err != nil {
				panic(err)
			}
			motro = fmt.Sprintf("%s (%d/%d)", outcome(d), d.Stats.RevealedCells, d.Stats.Cells)
		}
		fmt.Fprintf(w, "%-45s %-8s %-12s %-s\n", q.label, q.user, srOut, motro)
	}

	// Aggregate over a synthetic workload of base-relation queries.
	cfg := workload.DefaultGen()
	cfg.Views, cfg.Relations, cfg.RowsPerRel = 6, 4, 128
	g := workload.Generate(cfg)
	gsr := sysr.New(g.Schema, g.Source, "dba")
	for _, name := range g.Store.ViewNames() {
		if err := gsr.DefineView("dba", g.Store.ViewDef(name)); err != nil {
			panic(err)
		}
	}
	for _, u := range g.Store.Users() {
		for _, v := range g.Store.ViewsFor(u) {
			if err := gsr.GrantSelect("dba", u, v, false); err != nil {
				panic(err)
			}
		}
	}
	gauth := core.NewAuthorizer(g.Store, g.Source, core.DefaultOptions())
	qs := workload.GenQueries(cfg, workload.QueryConfig{Seed: 7, Count: 40, JoinWidth: 2, ExtraAttrProb: 0.3, RangeFraction: 0.6, InsideProb: 0.6}, g.ViewDefsFor("u0")...)
	var srDenied, mFull, mPartial, mDenied int
	var cellsDelivered, cellsTotal int
	for _, def := range qs {
		if _, err := gsr.Query("u0", def); err != nil {
			srDenied++
		}
		d, err := gauth.Retrieve("u0", def)
		if err != nil {
			panic(err)
		}
		switch outcome(d) {
		case "full":
			mFull++
		case "partial":
			mPartial++
		default:
			mDenied++
		}
		cellsDelivered += d.Stats.RevealedCells
		cellsTotal += d.Stats.Cells
	}
	fmt.Fprintf(w, "\nsynthetic workload (%d base-relation queries, user u0):\n", len(qs))
	fmt.Fprintf(w, "  System R:   %3d answered, %3d denied\n", len(qs)-srDenied, srDenied)
	fmt.Fprintf(w, "  mask model: %3d full, %3d partial, %3d denied; %.1f%% of cells delivered\n\n",
		mFull, mPartial, mDenied, pct(cellsDelivered, cellsTotal))
}

func viewFree(sch *relation.DBSchema, def *cview.Def) bool {
	for _, a := range def.Aliases() {
		if sch.Lookup(relation.BaseOfAlias(a)) == nil {
			return false
		}
	}
	return true
}

// expIngres demonstrates the §1 INGRES claims: (a) the row/column
// asymmetry — a request exceeding the permitted columns is denied
// outright instead of reduced; (b) permissions cannot span relations.
func Ingres(w io.Writer) {
	header(w, "E7: INGRES query modification vs masking")
	f := workload.Paper()
	ing := qmod.New(f.Schema, f.Source)
	// Brown's SAE as an INGRES permission: NAME and SALARY, all rows.
	must(ing.Permit(qmod.Permission{User: "Brown", Rel: "EMPLOYEE", Attrs: []string{"NAME", "SALARY"}}))
	// Brown's PSA: all attributes of PROJECT where SPONSOR = Acme.
	must(ing.Permit(qmod.Permission{User: "Brown", Rel: "PROJECT",
		Attrs: []string{"NUMBER", "SPONSOR", "BUDGET"},
		Quals: []qmod.Qual{{Attr: "SPONSOR", Op: value.EQ, Const: value.String("Acme")}}}))
	auth := core.NewAuthorizer(f.Store, f.Source, core.DefaultOptions())

	queries := []struct {
		label string
		user  string
		stmt  string
	}{
		{"Q1 permitted columns (NAME, SALARY)", "Brown", `retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY)`},
		{"Q2 one column too many (+TITLE)", "Brown", `retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY, EMPLOYEE.TITLE)`},
		{"Q3 rows reduced by qualification", "Brown", `retrieve (PROJECT.NUMBER, PROJECT.BUDGET)`},
		{"Q4 multi-relation view needed (ELP)", "Klein", workload.Example2Query},
	}
	fmt.Fprintf(w, "%-40s %-8s %-18s %-s\n", "query", "user", "INGRES", "mask model (cells delivered)")
	for _, q := range queries {
		def := workload.MustQuery(q.stmt)
		ingOut := "answered"
		if rel, _, err := ing.Query(q.user, def); err != nil {
			ingOut = "DENIED"
		} else {
			ingOut = fmt.Sprintf("answered (%d rows)", rel.Len())
		}
		d, err := auth.Retrieve(q.user, def)
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(w, "%-40s %-8s %-18s %s (%d/%d)\n", q.label, q.user, ingOut,
			outcome(d), d.Stats.RevealedCells, d.Stats.Cells)
	}
	fmt.Fprintf(w, "\nnote: Klein's ELP (a view of EMPLOYEE, ASSIGNMENT, and PROJECT) has no INGRES\n")
	fmt.Fprintf(w, "encoding at all — permissions there are views of single relations (§1).\n\n")
}

// expAblation toggles the §4.2 refinements one at a time over the paper's
// examples and a synthetic workload, reporting delivered cells.
func Ablation(w io.Writer) {
	header(w, "E8: ablation of the §4.2 refinements")
	variants := []struct {
		label string
		mod   func(*core.Options)
	}{
		{"all refinements (default)", func(*core.Options) {}},
		{"no product padding", func(o *core.Options) { o.Padding = false }},
		{"no four-case selection", func(o *core.Options) { o.FourCase = false }},
		{"no self-joins", func(o *core.Options) { o.SelfJoins = false }},
		{"bare Definitions 1-3", func(o *core.Options) {
			o.Padding, o.FourCase, o.SelfJoins = false, false, false
		}},
	}
	type job struct {
		label string
		user  string
		def   *cview.Def
	}
	jobs := []job{
		{"Example 1", "Brown", workload.MustQuery(workload.Example1Query)},
		{"Example 2", "Klein", workload.MustQuery(workload.Example2Query)},
		{"Example 3", "Brown", workload.MustQuery(workload.Example3Query)},
	}
	cfg := workload.DefaultGen()
	cfg.Views, cfg.Relations, cfg.RowsPerRel = 6, 4, 96
	g := workload.Generate(cfg)
	gqs := workload.GenQueries(cfg, workload.QueryConfig{Seed: 11, Count: 30, JoinWidth: 2, ExtraAttrProb: 0.3, RangeFraction: 0.7, DropSelAttrProb: 0.5, InsideProb: 0.6}, g.ViewDefsFor("u0")...)

	fmt.Fprintf(w, "%-28s %-12s %-12s %-12s %-s\n", "variant", "Example 1", "Example 2", "Example 3", "synthetic cells delivered")
	for _, v := range variants {
		opt := core.DefaultOptions()
		v.mod(&opt)
		f := workload.Paper()
		auth := core.NewAuthorizer(f.Store, f.Source, opt)
		cells := make([]string, len(jobs))
		for i, j := range jobs {
			d, err := auth.Retrieve(j.user, j.def)
			if err != nil {
				panic(err)
			}
			cells[i] = fmt.Sprintf("%d/%d", d.Stats.RevealedCells, d.Stats.Cells)
		}
		gauth := core.NewAuthorizer(g.Store, g.Source, opt)
		var delivered, total int
		for _, def := range gqs {
			d, err := gauth.Retrieve("u0", def)
			if err != nil {
				panic(err)
			}
			delivered += d.Stats.RevealedCells
			total += d.Stats.Cells
		}
		fmt.Fprintf(w, "%-28s %-12s %-12s %-12s %d/%d (%.1f%%)\n",
			v.label, cells[0], cells[1], cells[2], delivered, total, pct(delivered, total))
	}

	// Padding micro-demonstration (§4.2 first refinement): the query is a
	// product of EMPLOYEE with PROJECT followed by a projection keeping
	// only EMPLOYEE attributes; the user's only view is over EMPLOYEE, so
	// every mask must ride a padding tuple across the product.
	pf := workload.NewFixture()
	pf.MustExec(`
		relation EMPLOYEE (NAME, TITLE, SALARY) key (NAME);
		relation PROJECT (NUMBER, SPONSOR, BUDGET) key (NUMBER);
		insert into EMPLOYEE values (Jones, manager, 26000);
		insert into PROJECT values (bq-45, Acme, 300000);
		view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY);
		permit SAE to Brown;
	`)
	pq := workload.MustQuery(`
		retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY, PROJECT.SPONSOR)`)
	fmt.Fprintf(w, "\npadding micro-demo (product with an uncovered relation, project EMPLOYEE side):\n")
	for _, pad := range []bool{true, false} {
		opt := core.DefaultOptions()
		opt.Padding = pad
		auth := core.NewAuthorizer(pf.Store, pf.Source, opt)
		d, err := auth.Retrieve("Brown", pq)
		must(err)
		fmt.Fprintf(w, "  padding=%-5v -> %s (%d/%d cells)\n", pad, outcome(d), d.Stats.RevealedCells, d.Stats.Cells)
	}
	fmt.Fprintln(w)
}

// expOverhead measures the cost the paper waves at in §4.1: the
// meta-relations are small, so the dual pipeline adds modest overhead to
// query execution; and the actual side benefits from the optimized
// strategy.
func Overhead(w io.Writer) {
	header(w, "E9: mask-derivation overhead and executor comparison")
	fmt.Fprintf(w, "%-32s %12s %12s %10s %12s\n", "configuration", "exec only", "exec+mask", "overhead", "naive exec")
	for _, rows := range []int{100, 1000, 5000} {
		for _, views := range []int{2, 8, 32} {
			cfg := workload.DefaultGen()
			cfg.Relations, cfg.RowsPerRel, cfg.Views, cfg.ViewJoinWidth = 3, rows, views, 2
			cfg.Users = []string{"u0"}
			g := workload.Generate(cfg)
			def := workload.GenQueries(cfg, workload.QueryConfig{Seed: 3, Count: 1, JoinWidth: 2, RangeFraction: 0.5})[0]
			an, err := cview.Analyze(def, g.Schema)
			must(err)

			execOnly := timeIt(func() {
				_, err := algebra.EvalOptimized(an.PSJ, g.Source)
				must(err)
			})
			auth := core.NewAuthorizer(g.Store, g.Source, core.DefaultOptions())
			execMask := timeIt(func() {
				_, err := auth.RetrievePlan("u0", an.PSJ)
				must(err)
			})
			naive := timeIt(func() {
				_, err := algebra.EvalNaive(an.PSJ.Node(), g.Source)
				must(err)
			})
			fmt.Fprintf(w, "rows=%-6d views=%-14d %12s %12s %9.2fx %12s\n",
				rows, views, execOnly, execMask,
				float64(execMask)/float64(execOnly), naive)
		}
	}
	fmt.Fprintln(w)
}

// expExtended measures E11: the §6(3) extension recovers masks whose
// conditions mention attributes the query never requested, on the paper's
// fixture and on the synthetic workload.
func Extended(w io.Writer) {
	header(w, "E11: §6(3) extension — masks with additional attributes")
	f := workload.Paper()
	queries := []struct {
		label string
		user  string
		stmt  string
	}{
		{"PSA without requesting SPONSOR", "Brown", `retrieve (PROJECT.NUMBER, PROJECT.BUDGET)`},
		{"Example 1 (SPONSOR requested)", "Brown", workload.Example1Query},
		{"Example 2", "Klein", workload.Example2Query},
	}
	fmt.Fprintf(w, "%-36s %-8s %-16s %-s\n", "query", "user", "base model", "extended")
	for _, q := range queries {
		def := workload.MustQuery(q.stmt)
		base := core.NewAuthorizer(f.Store, f.Source, core.DefaultOptions())
		extOpt := core.DefaultOptions()
		extOpt.ExtendedMasks = true
		ext := core.NewAuthorizer(f.Store, f.Source, extOpt)
		db, err := base.Retrieve(q.user, def)
		must(err)
		de, err := ext.Retrieve(q.user, def)
		must(err)
		fmt.Fprintf(w, "%-36s %-8s %-16s %s (%d/%d)\n", q.label, q.user,
			fmt.Sprintf("%s (%d/%d)", outcome(db), db.Stats.RevealedCells, db.Stats.Cells),
			outcome(de), de.Stats.RevealedCells, de.Stats.Cells)
	}

	cfg := workload.DefaultGen()
	cfg.Views, cfg.Relations = 6, 3
	g := workload.Generate(cfg)
	qs := workload.GenQueries(cfg, workload.QueryConfig{
		Seed: 19, Count: 40, JoinWidth: 2, ExtraAttrProb: 0.3,
		RangeFraction: 0.6, DropSelAttrProb: 0.5, InsideProb: 0.5,
	}, g.ViewDefsFor("u0")...)
	var baseCells, extCells, total int
	for _, def := range qs {
		base := core.NewAuthorizer(g.Store, g.Source, core.DefaultOptions())
		extOpt := core.DefaultOptions()
		extOpt.ExtendedMasks = true
		ext := core.NewAuthorizer(g.Store, g.Source, extOpt)
		db, err := base.Retrieve("u0", def)
		must(err)
		de, err := ext.Retrieve("u0", def)
		must(err)
		baseCells += db.Stats.RevealedCells
		extCells += de.Stats.RevealedCells
		total += db.Stats.Cells
	}
	fmt.Fprintf(w, "\nsynthetic workload (%d queries): base %d cells, extended %d cells (of %d)\n\n",
		len(qs), baseCells, extCells, total)
}

func timeIt(f func()) time.Duration {
	// Warm once, then take the best of three runs to damp noise.
	f()
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best.Round(time.Microsecond)
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
