package experiments_test

import (
	"bytes"
	"regexp"
	"strings"
	"testing"

	"authdb/internal/experiments"
)

// TestSysRTable pins the deterministic content of E6: System R denies
// every base-relation query while the mask model answers within the
// permissions.
func TestSysRTable(t *testing.T) {
	var b bytes.Buffer
	experiments.SysR(&b)
	out := b.String()
	for _, want := range []string{
		"Q1 within ELP, on base relations (paper §1)   Klein    DENIED       full (2/2)",
		"Q2 Example 1 on base relation                 Brown    DENIED       partial (2/4)",
		"Q3 Example 2 on base relations                Klein    DENIED       partial (1/2)",
		"Q4 against the view ELP itself                Klein    answered",
		"Q5 all salaries on base relation              Brown    DENIED       full (6/6)",
		"System R:     0 answered,  40 denied",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("E6 output misses %q:\n%s", want, out)
		}
	}
	// The mask model must answer a nonzero share of the synthetic
	// workload.
	if regexp.MustCompile(`mask model:\s+0 full,\s+0 partial`).MatchString(out) {
		t.Fatalf("mask model answered nothing:\n%s", out)
	}
}

// TestIngresTable pins E7: the column asymmetry and the inexpressible
// multi-relation view.
func TestIngresTable(t *testing.T) {
	var b bytes.Buffer
	experiments.Ingres(&b)
	out := b.String()
	for _, want := range []string{
		"Q1 permitted columns (NAME, SALARY)      Brown    answered (3 rows)  full (6/6)",
		"Q2 one column too many (+TITLE)          Brown    DENIED             partial (6/9)",
		"Q3 rows reduced by qualification         Brown    answered (1 rows)  denied (0/6)",
		"Q4 multi-relation view needed (ELP)      Klein    DENIED             partial (1/2)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("E7 output misses %q:\n%s", want, out)
		}
	}
}

// TestAblationTable pins E8: each refinement's effect on the paper's
// examples and the padding micro-demo.
func TestAblationTable(t *testing.T) {
	var b bytes.Buffer
	experiments.Ablation(&b)
	out := b.String()
	for _, want := range []string{
		"all refinements (default)    2/4          1/2          12/12",
		"no four-case selection       0/4          0/2          0/12",
		"no self-joins                2/4          1/2          6/12",
		"bare Definitions 1-3         0/4          0/2          0/12",
		"padding=true  -> partial (2/3 cells)",
		"padding=false -> denied (0/3 cells)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("E8 output misses %q:\n%s", want, out)
		}
	}
}

// TestExtendedTable pins E11: the extension recovers the hidden-condition
// mask and never delivers less on the synthetic workload.
func TestExtendedTable(t *testing.T) {
	var b bytes.Buffer
	experiments.Extended(&b)
	out := b.String()
	if !strings.Contains(out, "PSA without requesting SPONSOR       Brown    denied (0/6)     partial (2/6)") {
		t.Fatalf("E11 headline row missing:\n%s", out)
	}
	m := regexp.MustCompile(`base (\d+) cells, extended (\d+) cells`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("E11 synthetic summary missing:\n%s", out)
	}
	if m[1] > m[2] && len(m[1]) >= len(m[2]) { // lexicographic guard is enough at equal widths
		t.Fatalf("extension delivered less: %s vs %s", m[2], m[1])
	}
}

// TestOverheadRuns smoke-tests E9 (timings vary; only the structure is
// asserted).
func TestOverheadRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep")
	}
	var b bytes.Buffer
	experiments.Overhead(&b)
	out := b.String()
	if strings.Count(out, "rows=") != 9 {
		t.Fatalf("expected 9 sweep rows:\n%s", out)
	}
}
