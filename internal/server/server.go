// Package server is the network front door of the engine: a concurrent
// TCP server speaking the length-prefixed protocol of internal/wire.
// Each connection authenticates as a principal (Motro's model is
// inherently multi-principal — the connection's user decides the masks)
// and gets its own engine session with the server's per-connection
// resource limits; statements execute under a per-request context so
// deadlines and the drain path cancel cleanly at tuple-batch
// granularity.
//
// Operational properties:
//
//   - Connection cap with accept backpressure: at most MaxConns
//     connections are served; further dials wait in the kernel's accept
//     backlog until a slot frees, instead of being accepted and dropped.
//   - Idle timeout: a connection that sends nothing for IdleTimeout is
//     closed.
//   - Graceful drain: Shutdown stops accepting, lets in-flight
//     statements run for a grace period, then cancels their contexts
//     (they fail with the retryable CANCELED code); every completed
//     response is flushed before its connection closes. The WAL layer
//     guarantees acknowledged mutations survive the drain.
//   - Observability: the engine's metrics registry gains the server's
//     connection and protocol series and is exposed over HTTP at
//     /metrics (Prometheus text format) with a /healthz that reports
//     draining.
package server

import (
	"bufio"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"authdb"
	"authdb/internal/metrics"
	"authdb/internal/replica"
	"authdb/internal/wire"
)

// Defaults for Config's zero fields.
const (
	DefaultMaxConns    = 256
	DefaultIdleTimeout = 5 * time.Minute
	DefaultGrace       = 5 * time.Second

	// handshakeTimeout bounds the hello exchange; a dialer that never
	// authenticates must not hold a connection slot.
	handshakeTimeout = 10 * time.Second
	// writeTimeout bounds one response write, so a client that stops
	// reading cannot wedge a handler.
	writeTimeout = 30 * time.Second
)

// Config tunes a Server. The zero value listens on an ephemeral local
// port with defaults and no admin token.
type Config struct {
	// Addr is the wire-protocol listen address ("host:port");
	// empty means "127.0.0.1:0".
	Addr string
	// MetricsAddr, when non-empty, serves HTTP /metrics and /healthz.
	MetricsAddr string
	// MaxConns caps concurrently served connections (accept
	// backpressure beyond it); <= 0 means DefaultMaxConns.
	MaxConns int
	// IdleTimeout closes connections with no request for this long;
	// <= 0 means DefaultIdleTimeout.
	IdleTimeout time.Duration
	// Grace is how long Shutdown lets in-flight statements finish
	// before canceling their contexts; <= 0 means DefaultGrace.
	Grace time.Duration
	// Limits bounds every connection's statements, applied verbatim
	// (the zero value is unlimited — servers should normally pass
	// authdb.DefaultLimits()).
	Limits authdb.Limits
	// AdminToken, when non-empty, is required of administrator
	// handshakes and of replication streams. When empty, administrator
	// connections are accepted as-is; only deploy that on a trusted
	// network.
	AdminToken string
	// ReadOnlyPrimary, when non-empty, marks this server a replica:
	// every session is read-only and mutating statements fail with the
	// READ_ONLY code naming this primary address.
	ReadOnlyPrimary string
	// AdvertiseAddr is the wire address this node hands out in leader
	// hints (READ_ONLY/STALE_PRIMARY errors, replication fences); empty
	// means the actual listen address. Set it when clients reach the
	// node through a proxy or a different interface.
	AdvertiseAddr string
	// Peers lists the other nodes' wire addresses; a fenced ex-primary
	// uses them (leader hint first) to rejoin the cluster as a follower
	// automatically.
	Peers []string
	// ReadyMaxLagLSNs is the /readyz threshold: a replica lagging more
	// LSNs than this answers 503. <= 0 means 1024.
	ReadyMaxLagLSNs int
	// UnsafeNoFencing disables epoch fencing on this node — promotion
	// skips the epoch bump and the hub skips every epoch check. Exists
	// solely so the chaos harness can demonstrate the split-brain its
	// checks must catch; never enable in production.
	UnsafeNoFencing bool
}

// Server serves one database over the wire protocol.
type Server struct {
	db  *authdb.DB
	cfg Config
	met *metrics.Registry

	ln       net.Listener
	slots    chan struct{}
	shutCh   chan struct{}
	shutOnce sync.Once
	draining atomic.Bool
	wg       sync.WaitGroup // accept loop + connection handlers

	baseCtx        context.Context
	cancelInflight context.CancelFunc

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	metricsLn net.Listener // see http.go

	activeConns *metrics.Gauge

	// hub owns the replication follower streams (see internal/replica);
	// connections whose first frame is a REPL_HELLO are routed to it.
	hub *replica.Hub

	// Role state. A server is either the serving primary or a read-only
	// replica; the role can flip at runtime (Promote, or a fence
	// demotion) and is enforced engine-wide via SetRoleReadOnly so
	// existing sessions feel it too.
	roleMu     sync.Mutex
	isReplica  bool
	fenced     bool   // demoted by a fence: answer STALE_PRIMARY, not READ_ONLY
	leaderAddr string // best-known leader, for hints ("" when unknown)
	rep        *replica.Replica
}

// Hub exposes the server's replication hub (follower streams).
func (s *Server) Hub() *replica.Hub { return s.hub }

// New builds a server for db; call Start to begin serving.
func New(db *authdb.DB, cfg Config) *Server {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = DefaultMaxConns
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	if cfg.Grace <= 0 {
		cfg.Grace = DefaultGrace
	}
	met := db.Metrics()
	s := &Server{
		db:          db,
		cfg:         cfg,
		met:         met,
		slots:       make(chan struct{}, cfg.MaxConns),
		shutCh:      make(chan struct{}),
		conns:       make(map[net.Conn]struct{}),
		activeConns: met.Gauge("authdb_server_connections_active"),
	}
	s.hub = replica.NewHub(db.Engine())
	s.hub.SetUnsafeNoFencing(cfg.UnsafeNoFencing)
	s.hub.SetOnFence(s.demote)
	if cfg.ReadOnlyPrimary != "" {
		// Born a replica: the engine-wide role fence makes every session
		// read-only, including ones opened before a later promotion flips
		// the role back.
		s.isReplica = true
		s.leaderAddr = cfg.ReadOnlyPrimary
		db.Engine().SetRoleReadOnly(true)
	}
	met.GaugeFunc("authdb_role", func() float64 { return roleBit(s.Role() == "primary") }, "role", "primary")
	met.GaugeFunc("authdb_role", func() float64 { return roleBit(s.Role() == "replica") }, "role", "replica")
	s.baseCtx, s.cancelInflight = context.WithCancel(context.Background())
	return s
}

func roleBit(on bool) float64 {
	if on {
		return 1
	}
	return 0
}

// Role reports the node's current role: "primary" or "replica".
func (s *Server) Role() string {
	s.roleMu.Lock()
	defer s.roleMu.Unlock()
	if s.isReplica {
		return "replica"
	}
	return "primary"
}

// Leader returns the node's best knowledge of the current leader's
// address: its own advertise address when primary, the followed (or
// fence-announced) leader when a replica, "" when unknown.
func (s *Server) Leader() string {
	s.roleMu.Lock()
	defer s.roleMu.Unlock()
	return s.leaderLocked()
}

func (s *Server) leaderLocked() string {
	if !s.isReplica {
		return s.advertise()
	}
	if s.rep != nil {
		if l := s.rep.Leader(); l != "" {
			return l
		}
	}
	return s.leaderAddr
}

// advertise is the address this node hands out in leader hints.
func (s *Server) advertise() string {
	if s.cfg.AdvertiseAddr != "" {
		return s.cfg.AdvertiseAddr
	}
	if s.ln != nil {
		return s.ln.Addr().String()
	}
	return s.cfg.Addr
}

// AttachReplica hands the server the follower loop that feeds its
// engine, so /readyz can report bootstrap and lag, leader hints can
// name the live primary, and Promote/Shutdown can stop it.
func (s *Server) AttachReplica(rep *replica.Replica) {
	s.roleMu.Lock()
	s.rep = rep
	s.roleMu.Unlock()
}

// Promote turns a replica into the serving primary: stop the follower
// loop (draining its applier), bump the fencing epoch — durably, so
// the claim survives a crash — and lift the engine's role fence. The
// old primary learns it was superseded the moment it next touches this
// node or any follower that adopted the new epoch. Promoting a primary
// is a harmless no-op.
func (s *Server) Promote(ctx context.Context) (uint64, error) {
	s.roleMu.Lock()
	defer s.roleMu.Unlock()
	if !s.isReplica {
		return s.db.Engine().Epoch(), nil
	}
	if s.rep != nil {
		if err := s.rep.Stop(ctx); err != nil {
			return 0, fmt.Errorf("stopping follower loop: %w", err)
		}
		s.rep = nil
	}
	epoch := s.db.Engine().Epoch()
	if !s.cfg.UnsafeNoFencing {
		var err error
		if epoch, err = s.db.Engine().BumpEpoch(); err != nil {
			return 0, fmt.Errorf("bumping epoch: %w", err)
		}
	}
	s.db.Engine().SetRoleReadOnly(false)
	s.isReplica = false
	s.fenced = false
	s.leaderAddr = ""
	s.met.Counter("authdb_failover_total", "kind", "promote").Inc()
	return epoch, nil
}

// demote is the hub's fence callback: a follower (or new primary) on a
// higher epoch told this node it has been superseded. Re-fence the
// engine read-only, remember the announced leader, and rejoin the
// cluster as a follower so the divergence-quarantine handshake runs
// against the new primary.
func (s *Server) demote(epoch uint64, leader string) {
	s.roleMu.Lock()
	defer s.roleMu.Unlock()
	if s.isReplica {
		return
	}
	s.db.Engine().SetRoleReadOnly(true)
	s.isReplica = true
	s.fenced = true
	s.leaderAddr = leader
	s.met.Counter("authdb_failover_total", "kind", "demote").Inc()
	// Followers of the dead timeline must re-home, not keep tailing us.
	s.hub.DropFollowers()
	if s.draining.Load() {
		return
	}
	// Rejoin as a follower over the known peers, the announced leader
	// first. Without peers (or a leader) the node stays a fenced,
	// read-only island until an operator intervenes.
	addrs := s.cfg.Peers
	if leader != "" {
		addrs = append([]string{leader}, addrs...)
	}
	if len(addrs) == 0 {
		return
	}
	s.rep = replica.Start(s.db.Engine(), replica.Config{
		Primaries: addrs,
		Token:     s.cfg.AdminToken,
		Name:      s.advertise(),
	})
}

// Start listens on the configured addresses and begins serving in
// background goroutines; it returns once both listeners are bound, so
// Addr reports the actual port even for ":0".
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	if s.cfg.MetricsAddr != "" {
		if err := s.startMetrics(); err != nil {
			ln.Close()
			return err
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the wire listener's actual address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// acceptLoop admits connections under the cap: a slot is taken before
// Accept, so when all slots are busy new dials queue in the kernel
// backlog (backpressure) instead of being served and dropped.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		select {
		case s.slots <- struct{}{}:
		case <-s.shutCh:
			return
		}
		nc, err := s.ln.Accept()
		if err != nil {
			<-s.slots
			if errors.Is(err, net.ErrClosed) {
				return
			}
			select {
			case <-s.shutCh:
				return
			default:
			}
			// Transient accept failure (e.g. EMFILE): back off briefly.
			s.met.Counter("authdb_server_accept_errors_total").Inc()
			time.Sleep(10 * time.Millisecond)
			continue
		}
		s.met.Counter("authdb_server_accepted_total").Inc()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() { <-s.slots }()
			s.handle(nc)
		}()
	}
}

// track registers a live connection so Shutdown can kick idle readers.
func (s *Server) track(nc net.Conn) {
	s.mu.Lock()
	s.conns[nc] = struct{}{}
	s.mu.Unlock()
}

func (s *Server) untrack(nc net.Conn) {
	s.mu.Lock()
	delete(s.conns, nc)
	s.mu.Unlock()
}

// kickAll wakes every reader blocked between requests; connections
// mid-statement are unaffected until they next touch the socket.
func (s *Server) kickAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	past := time.Unix(1, 0)
	for nc := range s.conns {
		nc.SetReadDeadline(past)
	}
}

// closeAll force-closes every remaining connection (the shutdown
// context expired before the drain finished).
func (s *Server) closeAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for nc := range s.conns {
		nc.Close()
	}
}

// Shutdown drains the server: stop accepting, give in-flight statements
// cfg.Grace to finish, then cancel their contexts (they fail with the
// retryable CANCELED code and the response is still flushed), and wait
// for every connection to close. ctx bounds the total wait; when it
// expires remaining connections are force-closed. Safe to call more
// than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.shutOnce.Do(func() { close(s.shutCh) })
	if s.ln != nil {
		s.ln.Close()
	}
	// Stop the follower loop (if this node is a replica) so its applier
	// finishes cleanly before the engine quiesces.
	s.roleMu.Lock()
	rep := s.rep
	s.rep = nil
	s.roleMu.Unlock()
	if rep != nil {
		rep.Stop(ctx)
	}
	// Drain follower streams first: each stops at its current batch and
	// gets a bounded window to ack what was already sent, so a restart
	// of the fleet resumes with no re-sent work. Must run before
	// kickAll, which would kill the ack readers.
	s.hub.Shutdown(ctx)
	s.kickAll()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	grace := time.NewTimer(s.cfg.Grace)
	defer grace.Stop()
	var err error
	select {
	case <-done:
	case <-grace.C:
		s.cancelInflight()
		select {
		case <-done:
		case <-ctx.Done():
			err = ctx.Err()
			s.closeAll()
			<-done
		}
	case <-ctx.Done():
		err = ctx.Err()
		s.cancelInflight()
		s.closeAll()
		<-done
	}
	s.stopMetrics()
	return err
}

// handle serves one connection: handshake, then a request/response loop
// on the connection's own session.
func (s *Server) handle(nc net.Conn) {
	defer nc.Close()
	s.track(nc)
	defer s.untrack(nc)
	s.activeConns.Inc()
	defer s.activeConns.Dec()

	br := newReader(nc)
	bw := newWriter(nc)

	nc.SetReadDeadline(time.Now().Add(handshakeTimeout))
	// The first frame decides the connection's protocol: a regular
	// Hello (no "kind" field) opens a statement session, a REPL_HELLO
	// opens a replication stream served by the hub.
	first, err := wire.ReadFrame(br)
	if err != nil {
		return
	}
	if wire.MsgKind(first) == wire.KindReplHello {
		s.handleRepl(nc, br, first)
		return
	}
	var hello wire.Hello
	if err := json.Unmarshal(first, &hello); err != nil {
		return
	}
	sess, herr := s.authenticate(hello)
	reply := wire.HelloReply{OK: herr == nil, Server: "authdb/1", Error: herr}
	nc.SetWriteDeadline(time.Now().Add(writeTimeout))
	if err := wire.WriteMsg(bw, reply); err != nil {
		return
	}
	if err := bw.Flush(); err != nil || herr != nil {
		return
	}

	for {
		nc.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		var req wire.Request
		if err := wire.ReadMsg(br, &req); err != nil {
			// EOF, idle timeout, a shutdown kick, or garbage: close. A
			// malformed frame cannot be answered in-protocol (framing is
			// lost), so closing is the error signal.
			return
		}
		resp := s.execute(sess, hello.Admin, req)
		nc.SetWriteDeadline(time.Now().Add(writeTimeout))
		if err := wire.WriteMsg(bw, &resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		if s.draining.Load() {
			// The response above was flushed; drain the connection now.
			return
		}
	}
}

// handleRepl authenticates a replication handshake and hands the
// connection to the hub for the life of the stream.
func (s *Server) handleRepl(nc net.Conn, br *bufio.Reader, first []byte) {
	refuse := func(we *wire.Error) {
		bw := newWriter(nc)
		nc.SetWriteDeadline(time.Now().Add(writeTimeout))
		if wire.WriteMsg(bw, wire.ReplHelloReply{OK: false, Error: we}) == nil {
			bw.Flush()
		}
	}
	var hello wire.ReplHello
	if err := json.Unmarshal(first, &hello); err != nil {
		refuse(&wire.Error{Code: wire.CodeProtocol, Message: "malformed repl_hello"})
		return
	}
	if hello.Proto != wire.ProtoVersion {
		refuse(&wire.Error{Code: wire.CodeProtocol,
			Message: fmt.Sprintf("protocol version %d, server speaks %d", hello.Proto, wire.ProtoVersion)})
		return
	}
	// Replication reads everything unmasked; it carries the same
	// authority as an administrator connection.
	if s.cfg.AdminToken != "" &&
		subtle.ConstantTimeCompare([]byte(hello.Token), []byte(s.cfg.AdminToken)) != 1 {
		refuse(&wire.Error{Code: wire.CodeNotAuthorized, Message: "bad replication token"})
		return
	}
	// A replica does not feed followers (no chained replication — a
	// cycle of replicas would tail each other forever); point the dialer
	// at the leader instead.
	s.roleMu.Lock()
	isRep, leader := s.isReplica, s.leaderLocked()
	s.roleMu.Unlock()
	if isRep {
		refuse(&wire.Error{Code: wire.CodeReadOnly, Retryable: true, Leader: leader,
			Message: "node is a replica; replicate from the leader"})
		return
	}
	s.met.Counter("authdb_server_repl_streams_total").Inc()
	s.hub.HandleConn(nc, br, hello)
}

// authenticate validates the hello and opens the connection's session
// with the server's per-connection limits.
func (s *Server) authenticate(h wire.Hello) (*authdb.Session, *wire.Error) {
	if h.Proto != wire.ProtoVersion {
		return nil, &wire.Error{Code: wire.CodeProtocol,
			Message: fmt.Sprintf("protocol version %d, server speaks %d", h.Proto, wire.ProtoVersion)}
	}
	if h.User == "" || strings.ContainsAny(h.User, " \t\r\n") {
		return nil, &wire.Error{Code: wire.CodeProtocol, Message: "missing or malformed user name"}
	}
	if h.Admin && s.cfg.AdminToken != "" &&
		subtle.ConstantTimeCompare([]byte(h.Token), []byte(s.cfg.AdminToken)) != 1 {
		return nil, &wire.Error{Code: wire.CodeNotAuthorized, Message: "bad admin token"}
	}
	// No per-session SetReadOnly here: replica read-onlyness is the
	// engine-wide role fence, so promotion and demotion reach sessions
	// opened before the role changed.
	return s.db.SessionFor(h.User, h.Admin).SetLimits(s.cfg.Limits), nil
}

// execute runs one request on the connection's session under the
// server's drain context plus the request's own deadline.
func (s *Server) execute(sess *authdb.Session, admin bool, req wire.Request) wire.Response {
	if s.draining.Load() {
		return wire.Response{ID: req.ID, Error: &wire.Error{
			Code: wire.CodeShuttingDown, Message: "server is shutting down", Retryable: true}}
	}
	ctx := s.baseCtx
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	s.met.Counter("authdb_server_requests_total").Inc()
	if strings.TrimSpace(req.Stmt) == `\promote` {
		return s.executePromote(ctx, admin, req.ID)
	}
	res, err := sess.Dispatch(ctx, req.Stmt)
	if err != nil {
		we := wire.ErrorFor(err)
		if we.Code == wire.CodeReadOnly {
			s.roleMu.Lock()
			fenced, leader := s.fenced, s.leaderLocked()
			s.roleMu.Unlock()
			we.Leader = leader
			if fenced {
				// A fenced ex-primary refusing a write is not merely
				// read-only — it was superseded; the distinct code tells
				// clients their leader cache is stale, not just wrong.
				we.Code = wire.CodeStalePrimary
			}
			if leader != "" {
				we.Message = fmt.Sprintf("%s; send writes to the primary at %s", we.Message, leader)
			}
		}
		s.met.Counter("authdb_server_errors_total", "code", we.Code).Inc()
		return wire.Response{ID: req.ID, Error: we}
	}
	return responseOf(req.ID, res)
}

// executePromote serves the admin-only \promote statement.
func (s *Server) executePromote(ctx context.Context, admin bool, id uint64) wire.Response {
	if !admin {
		return wire.Response{ID: id, Error: &wire.Error{
			Code: wire.CodeNotAuthorized, Message: "\\promote requires an administrator connection"}}
	}
	epoch, err := s.Promote(ctx)
	if err != nil {
		return wire.Response{ID: id, Error: wire.ErrorFor(err)}
	}
	text := fmt.Sprintf("promoted to primary (epoch %d)", epoch)
	return wire.Response{ID: id, Text: text, Rendered: text + "\n"}
}

// responseOf converts a session result to its wire form, including the
// REPL-identical rendering.
func responseOf(id uint64, res *authdb.Result) wire.Response {
	resp := wire.Response{
		ID:              id,
		Text:            res.Text,
		Rendered:        res.Render(),
		Permits:         res.Permits,
		FullyAuthorized: res.FullyAuthorized,
		Denied:          res.Denied,
	}
	if res.Table != nil {
		wt := &wire.Table{Columns: res.Table.Columns}
		for _, row := range res.Table.Rows {
			cells := make([]string, len(row))
			for i, c := range row {
				cells[i] = c.String()
			}
			wt.Rows = append(wt.Rows, cells)
		}
		resp.Table = wt
	}
	return resp
}
