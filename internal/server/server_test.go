// End-to-end tests of the network server, driven through pkg/client:
// masking parity with local sessions per authenticated principal,
// concurrent connections, structured error codes over the wire,
// backpressure, idle-timeout reconnects, graceful-shutdown durability,
// and the metrics endpoints.
package server_test

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"authdb"
	"authdb/internal/server"
	"authdb/internal/wire"
	"authdb/internal/workload"
	"authdb/pkg/client"
)

// startServer boots a server for db and tears it down with the test.
func startServer(t *testing.T, db *authdb.DB, cfg server.Config) *server.Server {
	t.Helper()
	s := server.New(db, cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// paperDB loads the paper's Figure 1 fixture (EMPLOYEE/PROJECT/
// ASSIGNMENT, views SAE/ELP/EST/PSA, permits for Brown and Klein).
func paperDB(t *testing.T) *authdb.DB {
	t.Helper()
	db := authdb.Open()
	db.Admin().MustExecScript(workload.PaperScript)
	return db
}

func dial(t *testing.T, addr string, opts ...client.Option) *client.Client {
	t.Helper()
	c, err := client.Dial(addr, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func exec(t *testing.T, c *client.Client, stmt string) *client.Result {
	t.Helper()
	res, err := c.Exec(context.Background(), stmt)
	if err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
	return res
}

// TestServeMatchesLocalPerUser is the core authorization property over
// the network: each connection's answers are exactly what a local
// session for that principal gets — same masks, same rendering.
func TestServeMatchesLocalPerUser(t *testing.T) {
	db := paperDB(t)
	s := startServer(t, db, server.Config{})
	addr := s.Addr().String()

	queries := []string{
		"retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY)",
		"retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE, EMPLOYEE.SALARY)",
		"retrieve (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET)",
		"retrieve (EMPLOYEE.NAME, PROJECT.NUMBER) where EMPLOYEE.NAME = ASSIGNMENT.E_NAME and PROJECT.NUMBER = ASSIGNMENT.P_NO",
	}
	for _, user := range []string{"Brown", "Klein", "Nobody"} {
		c := dial(t, addr, client.WithUser(user))
		for _, q := range queries {
			got := exec(t, c, q)
			want, err := db.Session(user).Exec(q)
			if err != nil {
				t.Fatalf("local %s for %s: %v", q, user, err)
			}
			if got.Rendered != want.Render() {
				t.Errorf("user %s, %s:\nserver:\n%s\nlocal:\n%s", user, q, got.Rendered, want.Render())
			}
			if got.Denied != want.Denied || got.FullyAuthorized != want.FullyAuthorized {
				t.Errorf("user %s, %s: flags (denied %v, full %v) want (%v, %v)",
					user, q, got.Denied, got.FullyAuthorized, want.Denied, want.FullyAuthorized)
			}
		}
	}

	// The unmasked administrator view, for contrast.
	admin := dial(t, addr, client.WithAdmin("root", ""))
	res := exec(t, admin, "retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY)")
	if !res.FullyAuthorized {
		t.Errorf("admin retrieve not fully authorized: %+v", res)
	}
	if len(res.Rows) != 3 {
		t.Errorf("admin rows = %d, want 3", len(res.Rows))
	}
	// And a denied principal really gets nothing.
	nobody := dial(t, addr, client.WithUser("Nobody"))
	if res := exec(t, nobody, "retrieve (EMPLOYEE.SALARY)"); !res.Denied {
		t.Errorf("unpermitted principal not denied: %+v", res)
	}
}

// TestServeConcurrentConnections drives 64 simultaneous clients, a mix
// of principals, each issuing several statements. Run under -race this
// is the concurrency audit of the whole stack (accept loop, sessions,
// mask cache, metrics).
func TestServeConcurrentConnections(t *testing.T) {
	db := paperDB(t)
	s := startServer(t, db, server.Config{MaxConns: 128})
	addr := s.Addr().String()

	const conns = 64
	users := []string{"Brown", "Klein", "Nobody"}
	var wg sync.WaitGroup
	errCh := make(chan error, conns)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var c *client.Client
			var err error
			if i%8 == 0 {
				c, err = client.Dial(addr, client.WithAdmin("root", ""))
			} else {
				c, err = client.Dial(addr, client.WithUser(users[i%len(users)]))
			}
			if err != nil {
				errCh <- fmt.Errorf("conn %d: dial: %w", i, err)
				return
			}
			defer c.Close()
			stmts := []string{
				"retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY)",
				"retrieve (PROJECT.NUMBER, PROJECT.SPONSOR)",
				"retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE) where EMPLOYEE.SALARY >= 25000",
			}
			if i%8 == 0 {
				// Administrators also mutate, exercising the write path
				// and mask-cache invalidation under load.
				stmts = append(stmts, fmt.Sprintf("insert into EMPLOYEE values (extra%d, clerk, %d)", i, 20000+i))
			}
			for _, q := range stmts {
				if _, err := c.Exec(context.Background(), q); err != nil {
					errCh <- fmt.Errorf("conn %d: %s: %w", i, q, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestWireErrorCodes checks the statement-failure taxonomy as clients
// observe it: structured codes, parse positions, retryability.
func TestWireErrorCodes(t *testing.T) {
	db := paperDB(t)
	s := startServer(t, db, server.Config{})
	c := dial(t, s.Addr().String(), client.WithUser("Brown"))

	wantCode := func(stmt, code string) *client.ServerError {
		t.Helper()
		_, err := c.Exec(context.Background(), stmt)
		var se *client.ServerError
		if !errors.As(err, &se) || se.Code != code {
			t.Fatalf("%s: error = %v, want code %s", stmt, err, code)
		}
		return se
	}

	if se := wantCode("retrieve !", wire.CodeParse); se.Line != 1 || se.Col == 0 || se.Retryable {
		t.Errorf("parse error = %+v, want line 1 with a column, not retryable", se)
	}
	wantCode("view V (EMPLOYEE.NAME)", wire.CodeNotAuthorized)
	wantCode("retrieve (NOPE.A)", wire.CodeExec)
	wantCode(`\nonsense`, wire.CodeExec)

	// A server with a one-row budget turns any product into a
	// BUDGET_EXCEEDED; one with an already-expired statement timeout
	// turns everything into a retryable CANCELED.
	tight := startServer(t, paperDB(t), server.Config{Limits: authdb.Limits{MaxIntermediateRows: 1}})
	ct := dial(t, tight.Addr().String(), client.WithUser("Brown"))
	_, err := ct.Exec(context.Background(), "retrieve (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME)")
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != wire.CodeBudget || se.Retryable {
		t.Errorf("budget error = %v, want %s, not retryable", err, wire.CodeBudget)
	}
	// The guard consults deadlines at tuple-batch (1024-row) granularity,
	// so the statement must produce more than one batch: ASSIGNMENT has 6
	// rows, a four-way self product is 1296.
	slow := startServer(t, paperDB(t), server.Config{Limits: authdb.Limits{Timeout: time.Nanosecond}})
	cs := dial(t, slow.Addr().String(), client.WithUser("Brown"))
	_, err = cs.Exec(context.Background(),
		"retrieve (ASSIGNMENT:1.E_NAME, ASSIGNMENT:2.E_NAME, ASSIGNMENT:3.E_NAME, ASSIGNMENT:4.E_NAME)")
	if !errors.As(err, &se) || se.Code != wire.CodeCanceled || !se.Retryable {
		t.Errorf("canceled error = %v, want retryable %s", err, wire.CodeCanceled)
	}
}

// TestHandshakeRejections covers the authentication gate: bad protocol
// version, malformed user, bad admin token, good admin token.
func TestHandshakeRejections(t *testing.T) {
	db := paperDB(t)
	s := startServer(t, db, server.Config{AdminToken: "s3cret"})
	addr := s.Addr().String()

	// Wrong protocol version, spoken raw.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := wire.WriteMsg(nc, wire.Hello{Proto: 99, User: "x"}); err != nil {
		t.Fatal(err)
	}
	var reply wire.HelloReply
	if err := wire.ReadMsg(bufio.NewReader(nc), &reply); err != nil {
		t.Fatal(err)
	}
	if reply.OK || reply.Error == nil || reply.Error.Code != wire.CodeProtocol {
		t.Errorf("version-mismatch reply = %+v, want %s", reply, wire.CodeProtocol)
	}

	if _, err := client.Dial(addr, client.WithUser("two words")); err == nil {
		t.Error("malformed user accepted")
	}
	var se *client.ServerError
	if _, err := client.Dial(addr, client.WithAdmin("root", "wrong")); !errors.As(err, &se) || se.Code != wire.CodeNotAuthorized {
		t.Errorf("bad admin token error = %v, want %s", err, wire.CodeNotAuthorized)
	}
	good := dial(t, addr, client.WithAdmin("root", "s3cret"))
	exec(t, good, "retrieve (EMPLOYEE.NAME)")
}

// TestAcceptBackpressure: with a single connection slot, a second dial
// waits in the kernel backlog (its handshake never answered) until the
// first connection departs.
func TestAcceptBackpressure(t *testing.T) {
	db := paperDB(t)
	s := startServer(t, db, server.Config{MaxConns: 1})
	addr := s.Addr().String()

	c1 := dial(t, addr, client.WithUser("Brown"))
	exec(t, c1, "retrieve (EMPLOYEE.NAME)")

	if _, err := client.Dial(addr, client.WithUser("Klein"),
		client.WithDialTimeout(250*time.Millisecond)); err == nil {
		t.Fatal("second connection served past the cap")
	}
	c1.Close()
	c3 := dial(t, addr, client.WithUser("Klein"))
	exec(t, c3, "retrieve (PROJECT.NUMBER)")
}

// TestIdleTimeoutAndReconnect: the server drops a silent connection;
// the client's next Exec transparently redials and succeeds.
func TestIdleTimeoutAndReconnect(t *testing.T) {
	db := paperDB(t)
	s := startServer(t, db, server.Config{IdleTimeout: 60 * time.Millisecond})
	c := dial(t, s.Addr().String(), client.WithUser("Brown"))

	first := exec(t, c, "retrieve (EMPLOYEE.NAME)")
	time.Sleep(250 * time.Millisecond) // let the server close the idle conn
	second := exec(t, c, "retrieve (EMPLOYEE.NAME)")
	if first.Rendered != second.Rendered {
		t.Errorf("answers diverged across reconnect:\n%s\nvs\n%s", first.Rendered, second.Rendered)
	}
}

// TestStatsOverWire: the \stats admin statement works over the wire and
// is refused to non-administrators — the same dispatch path the REPL
// uses.
func TestStatsOverWire(t *testing.T) {
	db := paperDB(t)
	s := startServer(t, db, server.Config{})
	addr := s.Addr().String()

	admin := dial(t, addr, client.WithAdmin("root", ""))
	exec(t, admin, "retrieve (EMPLOYEE.NAME)")
	res := exec(t, admin, `\stats`)
	for _, want := range []string{"authdb_requests_total", "authdb_server_connections_active", "authdb_exec_seconds"} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("\\stats output missing %s", want)
		}
	}
	user := dial(t, addr, client.WithUser("Brown"))
	var se *client.ServerError
	if _, err := user.Exec(context.Background(), `\stats`); !errors.As(err, &se) || se.Code != wire.CodeNotAuthorized {
		t.Errorf("\\stats as user = %v, want %s", err, wire.CodeNotAuthorized)
	}
}

// TestMetricsHTTP scrapes /metrics and /healthz.
func TestMetricsHTTP(t *testing.T) {
	db := paperDB(t)
	s := startServer(t, db, server.Config{MetricsAddr: "127.0.0.1:0"})
	c := dial(t, s.Addr().String(), client.WithUser("Brown"))
	exec(t, c, "retrieve (EMPLOYEE.NAME)")

	base := "http://" + s.MetricsAddr().String()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	for _, want := range []string{
		"authdb_server_accepted_total", "authdb_requests_total{kind=\"retrieve\"}",
		"authdb_exec_seconds_bucket", "authdb_mask_cache_hits_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	hz, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hzBody, _ := io.ReadAll(hz.Body)
	hz.Body.Close()
	if hz.StatusCode != 200 || !strings.Contains(string(hzBody), "ok") {
		t.Errorf("/healthz = %d %q, want 200 ok", hz.StatusCode, hzBody)
	}
}

// TestGracefulShutdownDurability is the drain contract end to end: a
// long statement in flight at Shutdown is canceled after the grace
// period with a retryable CANCELED whose response is still flushed, and
// every acknowledged mutation is present after reopening the same data
// directory.
func TestGracefulShutdownDurability(t *testing.T) {
	dir := t.TempDir()
	db, err := authdb.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(db, server.Config{Grace: 100 * time.Millisecond})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	addr := s.Addr().String()

	admin, err := client.Dial(addr, client.WithAdmin("root", ""))
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	const acked = 60
	if _, err := admin.Exec(context.Background(), "relation R (A) key (A)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < acked; i++ {
		if _, err := admin.Exec(context.Background(), fmt.Sprintf("insert into R values (r%03d)", i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}

	// A four-way self product (60^4 ≈ 13M tuples) cannot finish inside
	// the grace period; it must come back as a flushed, retryable
	// CANCELED response.
	long, err := client.Dial(addr, client.WithAdmin("root", ""))
	if err != nil {
		t.Fatal(err)
	}
	defer long.Close()
	longErr := make(chan error, 1)
	go func() {
		_, err := long.Exec(context.Background(), "retrieve (R:1.A, R:2.A, R:3.A, R:4.A)")
		longErr <- err
	}()
	time.Sleep(150 * time.Millisecond) // let the statement reach the engine

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	select {
	case err := <-longErr:
		var se *client.ServerError
		if !errors.As(err, &se) || se.Code != wire.CodeCanceled || !se.Retryable {
			t.Errorf("in-flight statement error = %v, want retryable %s", err, wire.CodeCanceled)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight statement never resolved after shutdown")
	}
	if _, err := admin.Exec(context.Background(), "retrieve (R.A)"); err == nil {
		t.Error("statement succeeded after shutdown")
	}

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := authdb.OpenDir(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	res, err := db2.Admin().Exec("retrieve (R.A)")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Table.Rows); got != acked {
		t.Errorf("recovered %d acknowledged rows, want %d", got, acked)
	}
}
