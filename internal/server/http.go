package server

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
)

// newReader and newWriter size the per-connection buffers; statements
// are small, responses can carry whole tables.
func newReader(nc net.Conn) *bufio.Reader { return bufio.NewReaderSize(nc, 4096) }
func newWriter(nc net.Conn) *bufio.Writer { return bufio.NewWriterSize(nc, 16384) }

// startMetrics serves /metrics (the registry in Prometheus text format)
// and /healthz on cfg.MetricsAddr.
func (s *Server) startMetrics() error {
	ln, err := net.Listen("tcp", s.cfg.MetricsAddr)
	if err != nil {
		return fmt.Errorf("server: metrics listen %s: %w", s.cfg.MetricsAddr, err)
	}
	s.metricsLn = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.met.WriteText(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", s.handleReadyz)
	hs := &http.Server{Handler: mux}
	go hs.Serve(ln)
	return nil
}

// handleReadyz answers whether this node should receive traffic:
// primaries are ready unless draining (the body reports role and
// epoch); replicas are ready only once bootstrapped and within the
// configured LSN lag of their primary — a load balancer pointed here
// never routes reads to a replica still installing a snapshot or
// trailing far behind.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	role := s.Role()
	epoch := s.db.Engine().Epoch()
	if role == "primary" {
		fmt.Fprintf(w, "ok role=primary epoch=%d\n", epoch)
		return
	}
	s.roleMu.Lock()
	rep := s.rep
	s.roleMu.Unlock()
	maxLag := s.cfg.ReadyMaxLagLSNs
	if maxLag <= 0 {
		maxLag = 1024
	}
	switch {
	case rep == nil:
		http.Error(w, fmt.Sprintf("no follower loop attached role=replica epoch=%d", epoch),
			http.StatusServiceUnavailable)
	case !rep.Bootstrapped():
		http.Error(w, fmt.Sprintf("bootstrapping role=replica epoch=%d", epoch),
			http.StatusServiceUnavailable)
	default:
		lag, _ := rep.Lag()
		if lag > uint64(maxLag) {
			http.Error(w, fmt.Sprintf("lagging %d lsns (max %d) role=replica epoch=%d", lag, maxLag, epoch),
				http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintf(w, "ok role=replica epoch=%d lag=%d\n", epoch, lag)
	}
}

// MetricsAddr returns the HTTP listener's actual address (nil when no
// metrics address was configured).
func (s *Server) MetricsAddr() net.Addr {
	if s.metricsLn == nil {
		return nil
	}
	return s.metricsLn.Addr()
}

// stopMetrics closes the HTTP listener; in-flight scrapes finish on
// their own connections.
func (s *Server) stopMetrics() {
	if s.metricsLn != nil {
		s.metricsLn.Close()
	}
}
