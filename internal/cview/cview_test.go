package cview

import (
	"strings"
	"testing"

	"authdb/internal/relation"
	"authdb/internal/value"
)

func paperSchema() *relation.DBSchema {
	sch := relation.NewDBSchema()
	sch.Add(relation.MustSchema("EMPLOYEE", []string{"NAME", "TITLE", "SALARY"}, "NAME"))      //nolint:errcheck
	sch.Add(relation.MustSchema("PROJECT", []string{"NUMBER", "SPONSOR", "BUDGET"}, "NUMBER")) //nolint:errcheck
	sch.Add(relation.MustSchema("ASSIGNMENT", []string{"E_NAME", "P_NO"}, "E_NAME", "P_NO"))   //nolint:errcheck
	return sch
}

func elp() *Def {
	return &Def{
		Name: "ELP",
		Cols: []ColRef{
			{"EMPLOYEE", "NAME"}, {"EMPLOYEE", "TITLE"},
			{"PROJECT", "NUMBER"}, {"PROJECT", "BUDGET"},
		},
		Where: []Cond{
			{L: ColRef{"EMPLOYEE", "NAME"}, Op: value.EQ, R: ColTerm("ASSIGNMENT", "E_NAME")},
			{L: ColRef{"PROJECT", "NUMBER"}, Op: value.EQ, R: ColTerm("ASSIGNMENT", "P_NO")},
			{L: ColRef{"PROJECT", "BUDGET"}, Op: value.GE, R: ConstTerm(value.Int(250000))},
		},
	}
}

func TestAnalyzeELP(t *testing.T) {
	an, err := Analyze(elp(), paperSchema())
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Scans) != 3 {
		t.Fatalf("scans = %v", an.Scans)
	}
	// First-mention order: EMPLOYEE (cols), PROJECT (cols), ASSIGNMENT
	// (first condition).
	wantOrder := []string{"EMPLOYEE", "PROJECT", "ASSIGNMENT"}
	for i, s := range an.Scans {
		if s.Alias != wantOrder[i] {
			t.Fatalf("scan order = %v", an.Scans)
		}
	}
	if len(an.PSJ.Preds) != 3 || len(an.PSJ.Cols) != 4 {
		t.Fatalf("psj = %+v", an.PSJ)
	}
	if an.PSJ.Cols[0] != "EMPLOYEE.NAME" {
		t.Fatalf("cols = %v", an.PSJ.Cols)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	sch := paperSchema()
	cases := []struct {
		name string
		def  *Def
	}{
		{"empty projection", &Def{Name: "V"}},
		{"unknown relation", &Def{Name: "V", Cols: []ColRef{{"NOPE", "X"}}}},
		{"unknown attribute", &Def{Name: "V", Cols: []ColRef{{"EMPLOYEE", "WAGE"}}}},
		{"unknown attr in cond", &Def{Name: "V",
			Cols:  []ColRef{{"EMPLOYEE", "NAME"}},
			Where: []Cond{{L: ColRef{"EMPLOYEE", "WAGE"}, Op: value.EQ, R: ConstTerm(value.Int(1))}}}},
		{"unknown attr in cond RHS", &Def{Name: "V",
			Cols:  []ColRef{{"EMPLOYEE", "NAME"}},
			Where: []Cond{{L: ColRef{"EMPLOYEE", "NAME"}, Op: value.EQ, R: ColTerm("EMPLOYEE", "WAGE")}}}},
		{"mixed bare and numbered", &Def{Name: "V",
			Cols: []ColRef{{"EMPLOYEE", "NAME"}, {"EMPLOYEE:1", "TITLE"}}}},
		{"bad suffix", &Def{Name: "V", Cols: []ColRef{{"EMPLOYEE:x", "NAME"}}}},
	}
	for _, c := range cases {
		if _, err := Analyze(c.def, sch); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestAnalyzeSelfJoin(t *testing.T) {
	est := &Def{
		Name: "EST",
		Cols: []ColRef{{"EMPLOYEE:1", "NAME"}, {"EMPLOYEE:2", "NAME"}, {"EMPLOYEE:1", "TITLE"}},
		Where: []Cond{
			{L: ColRef{"EMPLOYEE:1", "TITLE"}, Op: value.EQ, R: ColTerm("EMPLOYEE:2", "TITLE")},
		},
	}
	an, err := Analyze(est, paperSchema())
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Scans) != 2 || an.Scans[0].Rel != "EMPLOYEE" || an.Scans[1].Rel != "EMPLOYEE" {
		t.Fatalf("scans = %v", an.Scans)
	}
	if an.Scans[0].Alias == an.Scans[1].Alias {
		t.Fatal("self-join aliases must differ")
	}
}

func TestDefString(t *testing.T) {
	s := elp().String()
	for _, want := range []string{
		"view ELP (EMPLOYEE.NAME",
		"where EMPLOYEE.NAME = ASSIGNMENT.E_NAME",
		"and PROJECT.BUDGET >= 250000",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q:\n%s", want, s)
		}
	}
	q := &Def{Cols: []ColRef{{"R", "A"}}}
	if !strings.HasPrefix(q.String(), "retrieve (") {
		t.Errorf("query form: %q", q.String())
	}
}

func TestAliases(t *testing.T) {
	got := elp().Aliases()
	if len(got) != 3 {
		t.Fatalf("aliases = %v", got)
	}
	seen := map[string]bool{}
	for _, a := range got {
		if seen[a] {
			t.Fatalf("duplicate alias in %v", got)
		}
		seen[a] = true
	}
}

func TestCalculusELP(t *testing.T) {
	calc, err := Calculus(elp(), paperSchema())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"in EMPLOYEE", "in PROJECT", "in ASSIGNMENT",
		">= 250000", "a1", "(exists b",
	} {
		if !strings.Contains(calc, want) {
			t.Fatalf("calculus missing %q:\n%s", want, calc)
		}
	}
}

func TestCalculusConstantFolding(t *testing.T) {
	psa := &Def{
		Name: "PSA",
		Cols: []ColRef{{"PROJECT", "NUMBER"}, {"PROJECT", "SPONSOR"}, {"PROJECT", "BUDGET"}},
		Where: []Cond{
			{L: ColRef{"PROJECT", "SPONSOR"}, Op: value.EQ, R: ConstTerm(value.String("Acme"))},
		},
	}
	calc, err := Calculus(psa, paperSchema())
	if err != nil {
		t.Fatal(err)
	}
	// SPONSOR is projected, so the equality surfaces as a comparative on
	// its head variable rather than being substituted silently.
	if !strings.Contains(calc, "= Acme") {
		t.Fatalf("calculus: %s", calc)
	}
}

func TestTermAndCondString(t *testing.T) {
	c := Cond{L: ColRef{"R", "A"}, Op: value.LT, R: ConstTerm(value.Int(5))}
	if c.String() != "R.A < 5" {
		t.Errorf("Cond.String = %q", c.String())
	}
	if ColTerm("R", "B").String() != "R.B" {
		t.Error("ColTerm.String wrong")
	}
}

// TestCalculusPaperViews renders all four Figure 1 views in the §2
// domain-calculus notation and checks their shapes.
func TestCalculusPaperViews(t *testing.T) {
	sch := paperSchema()
	sae := &Def{Name: "SAE", Cols: []ColRef{{"EMPLOYEE", "NAME"}, {"EMPLOYEE", "SALARY"}}}
	est := &Def{
		Name:  "EST",
		Cols:  []ColRef{{"EMPLOYEE:1", "NAME"}, {"EMPLOYEE:2", "NAME"}, {"EMPLOYEE:1", "TITLE"}},
		Where: []Cond{{L: ColRef{"EMPLOYEE:1", "TITLE"}, Op: value.EQ, R: ColTerm("EMPLOYEE:2", "TITLE")}},
	}
	cases := []struct {
		def  *Def
		want []string
	}{
		{sae, []string{"{a1, a2 |", "(exists b1)", "in EMPLOYEE"}},
		{est, []string{"a1", "a2", "a3", "in EMPLOYEE"}},
	}
	for _, c := range cases {
		got, err := Calculus(c.def, sch)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range c.want {
			if !strings.Contains(got, w) {
				t.Fatalf("calculus of %s misses %q:\n%s", c.def.Name, w, got)
			}
		}
	}
	// EST's shared TITLE variable appears in both membership subformulas.
	got, _ := Calculus(est, sch)
	title := got[strings.Index(got, "|"):]
	if strings.Count(title, "a3") < 2 {
		t.Fatalf("EST's projected title variable must appear in both memberships:\n%s", got)
	}
}

func TestBranchesHelpers(t *testing.T) {
	d := &Def{Name: "V", Cols: []ColRef{{"R", "A"}},
		Where: []Cond{{L: ColRef{"R", "A"}, Op: value.EQ, R: ConstTerm(value.Int(1))}},
		Or:    [][]Cond{{{L: ColRef{"R", "A"}, Op: value.EQ, R: ConstTerm(value.Int(2))}}}}
	if len(d.Branches()) != 2 {
		t.Fatalf("branches = %d", len(d.Branches()))
	}
	b1 := d.Branch(1)
	if len(b1.Where) != 1 || b1.Where[0].R.Const != value.Int(2) || b1.Or != nil {
		t.Fatalf("branch 1 = %+v", b1)
	}
	if _, err := Analyze(d, paperSchema()); err == nil {
		t.Fatal("whole disjunctive definitions must not analyze directly")
	}
}
