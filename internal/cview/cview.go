// Package cview represents conjunctive views and queries — the language of
// the paper's §2. A view is a conjunctive relational calculus expression;
// equivalently (and this is the form the package keeps) a
// product–selection–projection expression: a projection list of
// relation-occurrence attributes and a conjunction of primitive
// conditions. Queries ("retrieve" statements) are unnamed views.
//
// Relation occurrences are addressed by alias: a bare relation name when
// the relation appears once, or "R:1", "R:2", … when several membership
// subformulas reference the same relation (paper §2, the EST example, and
// §5 footnote 4).
package cview

import (
	"fmt"
	"sort"
	"strings"

	"authdb/internal/algebra"
	"authdb/internal/relation"
	"authdb/internal/value"
)

// ColRef names an attribute of a relation occurrence, e.g.
// {Alias: "EMPLOYEE:1", Attr: "NAME"}.
type ColRef struct {
	Alias string
	Attr  string
}

// Qualified returns the "alias.ATTR" form used throughout query processing.
func (c ColRef) Qualified() string { return c.Alias + "." + c.Attr }

// String renders the reference as written in statements.
func (c ColRef) String() string { return c.Qualified() }

// Term is the right-hand side of a condition: a column or a constant.
type Term struct {
	IsCol bool
	Col   ColRef
	Const value.Value
}

// ColTerm returns a column term.
func ColTerm(alias, attr string) Term { return Term{IsCol: true, Col: ColRef{alias, attr}} }

// ConstTerm returns a constant term.
func ConstTerm(v value.Value) Term { return Term{Const: v} }

// String renders the term. Constants render as reparseable literals
// (quoted when they would not lex as one identifier), so a rendered
// definition round-trips through the parser.
func (t Term) String() string {
	if t.IsCol {
		return t.Col.String()
	}
	return value.Literal(t.Const)
}

// Cond is one primitive condition of a where-clause conjunction.
type Cond struct {
	L  ColRef
	Op value.Cmp
	R  Term
}

// String renders the condition.
func (c Cond) String() string {
	return c.L.String() + " " + c.Op.String() + " " + c.R.String()
}

// Def is a view definition (Name set) or a retrieve query (Name empty):
// a projection list and a conjunction of conditions. A view definition
// may additionally carry alternative conjunctions in Or — the §6
// disjunction extension: the view is the union of the conjunctive
// branches Where, Or[0], Or[1], …, all sharing the projection list.
// Queries must stay conjunctive (the paper's query language).
type Def struct {
	Name  string
	Cols  []ColRef
	Where []Cond
	Or    [][]Cond
}

// Branches returns the conjunctive branches of the definition: just
// Where for a conjunctive view, otherwise Where followed by each
// alternative.
func (d *Def) Branches() [][]Cond {
	out := [][]Cond{d.Where}
	return append(out, d.Or...)
}

// Branch returns a conjunctive definition for one branch.
func (d *Def) Branch(i int) *Def {
	return &Def{Name: d.Name, Cols: d.Cols, Where: d.Branches()[i]}
}

// String renders the definition as a view/retrieve statement in the
// paper's concrete syntax.
func (d *Def) String() string {
	var b strings.Builder
	if d.Name != "" {
		b.WriteString("view " + d.Name + " (")
	} else {
		b.WriteString("retrieve (")
	}
	for i, c := range d.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.String())
	}
	b.WriteString(")")
	for bi, branch := range d.Branches() {
		for i, c := range branch {
			switch {
			case bi == 0 && i == 0:
				b.WriteString("\nwhere " + c.String())
			case i == 0:
				b.WriteString("\nor " + c.String())
			default:
				b.WriteString("\nand " + c.String())
			}
		}
	}
	return b.String()
}

// Aliases returns the relation occurrences referenced by the definition,
// in first-mention order (projection list first, then conditions).
func (d *Def) Aliases() []string {
	var order []string
	seen := make(map[string]bool)
	add := func(a string) {
		if a != "" && !seen[a] {
			seen[a] = true
			order = append(order, a)
		}
	}
	for _, c := range d.Cols {
		add(c.Alias)
	}
	for _, c := range d.Where {
		add(c.L.Alias)
		if c.R.IsCol {
			add(c.R.Col.Alias)
		}
	}
	return order
}

// Analyzed is a validated definition together with its algebra plan.
type Analyzed struct {
	Def *Def
	// Scans lists the relation occurrences in alias order.
	Scans []algebra.Scan
	// PSJ is the paper's products→selections→projections normal form.
	PSJ *algebra.PSJ
}

// Analyze validates the definition against a database scheme and compiles
// it to PSJ normal form. Disjunctive definitions cannot be analyzed as a
// whole; analyze each Branch instead.
func Analyze(d *Def, sch *relation.DBSchema) (*Analyzed, error) {
	if len(d.Or) > 0 {
		return nil, fmt.Errorf("%s: disjunctive definition; analyze its branches individually", defName(d))
	}
	if len(d.Cols) == 0 {
		return nil, fmt.Errorf("%s: empty projection list", defName(d))
	}
	aliases := d.Aliases()
	numbered := make(map[string][]int)
	for _, a := range aliases {
		base := relation.BaseOfAlias(a)
		if sch.Lookup(base) == nil {
			return nil, fmt.Errorf("%s: unknown relation %s", defName(d), base)
		}
		if i := strings.IndexByte(a, ':'); i >= 0 {
			n := 0
			if _, err := fmt.Sscanf(a[i+1:], "%d", &n); err != nil || n < 1 {
				return nil, fmt.Errorf("%s: bad occurrence suffix in %s", defName(d), a)
			}
			numbered[base] = append(numbered[base], n)
		} else {
			numbered[base] = append(numbered[base], 0)
		}
	}
	for base, ns := range numbered {
		sort.Ints(ns)
		if len(ns) > 1 && ns[0] == 0 {
			return nil, fmt.Errorf("%s: relation %s referenced both bare and with :i suffixes", defName(d), base)
		}
	}
	check := func(c ColRef) error {
		rs := sch.Lookup(relation.BaseOfAlias(c.Alias))
		if rs.AttrIndex(c.Attr) < 0 {
			return fmt.Errorf("%s: relation %s has no attribute %s", defName(d), rs.Name, c.Attr)
		}
		return nil
	}
	for _, c := range d.Cols {
		if err := check(c); err != nil {
			return nil, err
		}
	}
	for _, c := range d.Where {
		if err := check(c.L); err != nil {
			return nil, err
		}
		if c.R.IsCol {
			if err := check(c.R.Col); err != nil {
				return nil, err
			}
		}
	}
	a := &Analyzed{Def: d}
	p := &algebra.PSJ{}
	for _, al := range aliases {
		s := algebra.Scan{Rel: relation.BaseOfAlias(al), Alias: al}
		a.Scans = append(a.Scans, s)
		p.Scans = append(p.Scans, s)
	}
	for _, c := range d.Where {
		atom := algebra.Atom{L: c.L.Qualified(), Op: c.Op}
		if c.R.IsCol {
			atom.R = algebra.AttrOp(c.R.Col.Qualified())
		} else {
			atom.R = algebra.ConstOp(c.R.Const)
		}
		p.Preds = append(p.Preds, atom)
	}
	for _, c := range d.Cols {
		p.Cols = append(p.Cols, c.Qualified())
	}
	a.PSJ = p
	return a, nil
}

func defName(d *Def) string {
	if d.Name != "" {
		return "view " + d.Name
	}
	return "retrieve"
}

// Calculus renders the definition as a domain relational calculus
// expression in the notation of §2, for documentation and the REPL's
// "show view" command.
func Calculus(d *Def, sch *relation.DBSchema) (string, error) {
	an, err := Analyze(d, sch)
	if err != nil {
		return "", err
	}
	// Assign a-variables to projected attributes and b-variables to the
	// rest, honouring equality conditions by variable sharing.
	names := make(map[string]string) // qualified attr -> variable or constant
	var as, bs int
	varFor := func(q string, projected bool) string {
		if v, ok := names[q]; ok {
			return v
		}
		var v string
		if projected {
			as++
			v = fmt.Sprintf("a%d", as)
		} else {
			bs++
			v = fmt.Sprintf("b%d", bs)
		}
		names[q] = v
		return v
	}
	for _, c := range d.Cols {
		varFor(c.Qualified(), true)
	}
	// Fold equalities: attr = const pins the constant; attr = attr shares.
	var comparatives []string
	for _, c := range d.Where {
		lq := c.L.Qualified()
		if c.Op == value.EQ {
			if c.R.IsCol {
				rq := c.R.Col.Qualified()
				lv, lok := names[lq]
				rv, rok := names[rq]
				switch {
				case lok && rok:
					comparatives = append(comparatives, lv+" = "+rv)
				case lok:
					names[rq] = lv
				case rok:
					names[lq] = rv
				default:
					names[lq] = varFor(lq, false)
					names[rq] = names[lq]
				}
			} else {
				if v, ok := names[lq]; ok {
					comparatives = append(comparatives, v+" = "+c.R.Const.String())
				} else {
					names[lq] = c.R.Const.String()
				}
			}
			continue
		}
		lv := varFor(lq, false)
		rv := c.R.Const.String()
		if c.R.IsCol {
			rv = varFor(c.R.Col.Qualified(), false)
		}
		comparatives = append(comparatives, lv+" "+c.Op.String()+" "+rv)
	}
	var memb []string
	var existentials []string
	for _, s := range an.Scans {
		rs := sch.Lookup(s.Rel)
		parts := make([]string, len(rs.Attrs))
		for i, attr := range rs.Attrs {
			q := s.Alias + "." + attr
			v, ok := names[q]
			if !ok {
				v = varFor(q, false)
			}
			parts[i] = v
		}
		memb = append(memb, "("+strings.Join(parts, ", ")+") in "+s.Rel)
	}
	for i := 1; i <= bs; i++ {
		existentials = append(existentials, fmt.Sprintf("(exists b%d)", i))
	}
	head := make([]string, len(d.Cols))
	for i, c := range d.Cols {
		head[i] = names[c.Qualified()]
	}
	body := strings.Join(append(memb, comparatives...), " and ")
	return "{" + strings.Join(head, ", ") + " | " + strings.Join(existentials, "") + " " + body + "}", nil
}
