// The jepsen-lite suite: a three-node cluster whose replication links
// run through chaosnet proxies, driven through seeded schedules of
// partitions, latency, mid-message cuts, duplicate connects, and a
// promotion while the old primary is still accepting writes. After the
// network heals and the ex-primary is fenced, three invariants must
// hold:
//
//	(a) durability: every acknowledged write is in the surviving
//	    timeline or preserved in a DIVERGED quarantine — never silently
//	    lost;
//	(b) the paper's property: every surviving node answers every
//	    principal's queries byte-identically (masking is a pure function
//	    of the replicated meta-database);
//	(c) fencing: no two nodes accepted origin writes in the same epoch.
//
// A deliberately un-fenced build (UnsafeNoFencing) must fail check (c)
// — proving the detector has teeth.
//
// Set CHAOS_SEED to replay one schedule; set CHAOS_HISTORY_DIR to dump
// per-schedule operation histories as JSON lines.
package chaosnet_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"authdb"
	"authdb/internal/chaosnet"
	"authdb/internal/engine"
	"authdb/internal/replica"
	"authdb/internal/server"
	"authdb/internal/wire"
	"authdb/internal/workload"
	"authdb/pkg/client"
	"math/rand"
)

const chaosToken = "chaos-token"

// node is one cluster member: a durable engine behind a wire server.
type node struct {
	name string
	dir  string
	db   *authdb.DB
	srv  *server.Server
	rep  *replica.Replica
}

func (n *node) addr() string          { return n.srv.Addr().String() }
func (n *node) eng() *engine.Engine   { return n.db.Engine() }
func (n *node) stop(t *testing.T)     {}
func (n *node) String() string        { return n.name }
func (n *node) epoch() uint64         { return n.eng().Epoch() }
func (n *node) role() (r string)      { return n.srv.Role() }
func (n *node) metricsText() string   { return n.db.Metrics().Text() }
func (n *node) lsn() (lsn uint64)     { return n.eng().LSN() }
func (n *node) origin() map[uint64]uint64 { return n.eng().OriginWritesByEpoch() }

// startNode boots one durable node. cfg.AdminToken is forced.
func startNode(t *testing.T, name string, cfg server.Config) *node {
	t.Helper()
	dir := t.TempDir()
	db, err := authdb.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	cfg.AdminToken = chaosToken
	srv := server.New(db, cfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	// Fast failure detection so schedules converge in test time.
	srv.Hub().SetWriteTimeout(250 * time.Millisecond)
	srv.Hub().SetFollowerBuffer(128)
	return &node{name: name, dir: dir, db: db, srv: srv}
}

// follow attaches a follower loop to n, dialing the given (proxied)
// addresses.
func follow(t *testing.T, n *node, primaries []string) {
	t.Helper()
	n.rep = replica.Start(n.eng(), replica.Config{
		Primaries:   primaries,
		Token:       chaosToken,
		Name:        n.name,
		DialTimeout: time.Second,
		BackoffMin:  10 * time.Millisecond,
		BackoffMax:  250 * time.Millisecond,
	})
	rep := n.rep
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		rep.Stop(ctx)
	})
	n.srv.AttachReplica(rep)
}

// history records every operation of one schedule for post-mortems.
type history struct {
	seed    int64
	entries []histEntry
}

type histEntry struct {
	Phase string `json:"phase"`
	Node  string `json:"node"`
	Stmt  string `json:"stmt,omitempty"`
	Event string `json:"event,omitempty"`
	Acked bool   `json:"acked"`
	Err   string `json:"err,omitempty"`
}

func (h *history) op(phase, node, stmt string, err error) {
	e := histEntry{Phase: phase, Node: node, Stmt: stmt, Acked: err == nil}
	if err != nil {
		e.Err = err.Error()
	}
	h.entries = append(h.entries, e)
}

func (h *history) event(phase, desc string) {
	h.entries = append(h.entries, histEntry{Phase: phase, Event: desc, Acked: true})
}

// dump writes the history as JSON lines into CHAOS_HISTORY_DIR (no-op
// when unset); CI uploads these as artifacts on failure.
func (h *history) dump(t *testing.T) {
	dir := os.Getenv("CHAOS_HISTORY_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("chaos history: %v", err)
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("history-seed-%d.jsonl", h.seed))
	f, err := os.Create(path)
	if err != nil {
		t.Logf("chaos history: %v", err)
		return
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	for _, e := range h.entries {
		enc.Encode(e)
	}
	t.Logf("chaos history written to %s", path)
}

// adminExec runs one statement on addr as an administrator (no hint
// following: the client is pinned to one node so the history records
// which node acked).
func adminExec(addr, stmt string) error {
	c, err := client.Dial(addr, client.WithAdmin("root", chaosToken),
		client.WithDialTimeout(2*time.Second))
	if err != nil {
		return err
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err = c.Exec(ctx, stmt)
	return err
}

// fenceNode delivers the out-of-band fencing signal a monitor would: a
// replication hello announcing the new epoch and leader. The target
// demotes itself and rejoins.
func fenceNode(t *testing.T, target *node, epoch uint64, leader string) {
	t.Helper()
	nc, err := net.Dial("tcp", target.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	bw := bufio.NewWriter(nc)
	if err := wire.WriteMsg(bw, wire.ReplHello{
		Kind: wire.KindReplHello, Proto: wire.ProtoVersion, Token: chaosToken,
		Name: "fence-messenger", Epoch: epoch, Leader: leader,
	}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	var reply wire.ReplHelloReply
	wire.ReadMsg(bufio.NewReader(nc), &reply)
}

// duplicateConnect opens a second replication stream claiming an
// existing follower's identity, then abandons it — the hub must treat
// it as just another stream and survive its death.
func duplicateConnect(t *testing.T, target *node, name string) {
	t.Helper()
	nc, err := net.Dial("tcp", target.addr())
	if err != nil {
		return // target unreachable mid-chaos: that IS chaos
	}
	defer nc.Close()
	bw := bufio.NewWriter(nc)
	wire.WriteMsg(bw, wire.ReplHello{
		Kind: wire.KindReplHello, Proto: wire.ProtoVersion, Token: chaosToken,
		Name: name, From: target.eng().DurableLSN(), Epoch: target.epoch(),
	})
	bw.Flush()
	var reply wire.ReplHelloReply
	wire.ReadMsg(bufio.NewReader(nc), &reply)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// adminQuery runs one retrieve as an administrator and returns the
// rendered answer.
func adminQuery(t *testing.T, addr, stmt string) string {
	t.Helper()
	c, err := client.Dial(addr, client.WithAdmin("root", chaosToken),
		client.WithDialTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := c.Exec(ctx, stmt)
	if err != nil {
		t.Fatalf("%s on %s: %v", stmt, addr, err)
	}
	return res.Rendered
}

// quarantineBlob concatenates everything under a node's diverged-*
// quarantine directories.
func quarantineBlob(t *testing.T, n *node) string {
	t.Helper()
	var b strings.Builder
	matches, err := filepath.Glob(filepath.Join(n.dir, "diverged-*"))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range matches {
		filepath.Walk(q, func(path string, info os.FileInfo, err error) error {
			if err != nil || info.IsDir() {
				return nil
			}
			data, err := os.ReadFile(path)
			if err == nil {
				b.Write(data)
			}
			return nil
		})
	}
	return b.String()
}

// dualPrimaryViolation implements invariant (c): it returns a
// description of any epoch in which more than one node accepted origin
// (non-replicated) writes, or "" when the invariant holds.
func dualPrimaryViolation(nodes []*node) string {
	writers := map[uint64][]string{}
	for _, n := range nodes {
		for ep, cnt := range n.origin() {
			if cnt > 0 {
				writers[ep] = append(writers[ep], n.name)
			}
		}
	}
	for ep, who := range writers {
		if len(who) > 1 {
			return fmt.Sprintf("epoch %d accepted origin writes on %v", ep, who)
		}
	}
	return ""
}

// chaosSeeds returns the schedule seeds: CHAOS_SEED pins one, else the
// five distinct default schedules.
func chaosSeeds(t *testing.T) []int64 {
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED %q: %v", s, err)
		}
		return []int64{v}
	}
	return []int64{1, 2, 3, 4, 5}
}

// TestChaosSchedules runs the fenced build through every seeded
// schedule and checks all three invariants after convergence.
func TestChaosSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos schedules are slow")
	}
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosSchedule(t, seed)
		})
	}
}

func runChaosSchedule(t *testing.T, seed int64) {
	t.Logf("CHAOS_SEED=%d (set the env var to replay this schedule)", seed)
	rng := rand.New(rand.NewSource(seed))
	hist := &history{seed: seed}
	defer hist.dump(t)

	// Topology: A starts as primary; B and C follow it through chaos
	// proxies. C also knows B's (proxied) address for re-homing after
	// the failover.
	a := startNode(t, "A", server.Config{})
	b := startNode(t, "B", server.Config{ReadOnlyPrimary: a.addr(), Peers: []string{a.addr()}})
	pBA, err := chaosnet.New("B->A", a.addr(), seed)
	if err != nil {
		t.Fatal(err)
	}
	defer pBA.Close()
	pCA, err := chaosnet.New("C->A", a.addr(), seed+1)
	if err != nil {
		t.Fatal(err)
	}
	defer pCA.Close()
	pCB, err := chaosnet.New("C->B", b.addr(), seed+2)
	if err != nil {
		t.Fatal(err)
	}
	defer pCB.Close()
	c := startNode(t, "C", server.Config{ReadOnlyPrimary: a.addr(), Peers: []string{a.addr(), b.addr()}})
	follow(t, b, []string{pBA.Addr()})
	follow(t, c, []string{pCA.Addr(), pCB.Addr()})
	nodes := []*node{a, b, c}

	// Phase 1: baseline load — the paper's schema plus a write feed —
	// replicated to everyone, under mild random chaos.
	a.db.Admin().MustExecScript(workload.PaperScript)
	a.db.Admin().MustExecScript("relation FEED (K, V) key (K);\n")
	if rng.Intn(2) == 0 {
		lat := time.Duration(rng.Intn(10)+1) * time.Millisecond
		pBA.SetLatency(lat, lat)
		hist.event("p1", fmt.Sprintf("latency %v on B->A", lat))
	}
	if rng.Intn(2) == 0 {
		pCA.CutAfter(int64(rng.Intn(200) + 50))
		hist.event("p1", "armed mid-message cut on C->A")
	}
	var acked []string
	write := func(phase, addr, nodeName, key string) {
		stmt := fmt.Sprintf("insert into FEED values (%s, v)", key)
		err := adminExec(addr, stmt)
		hist.op(phase, nodeName, stmt, err)
		if err == nil {
			acked = append(acked, key)
		}
	}
	for i := 0; i < 5+rng.Intn(5); i++ {
		write("p1", a.addr(), "A", fmt.Sprintf("p1-%d", i))
	}
	if rng.Intn(2) == 0 {
		duplicateConnect(t, a, "C")
		hist.event("p1", "duplicate follower connect to A")
	}
	waitFor(t, "replicas catching up", 20*time.Second, func() bool {
		return b.lsn() == a.lsn() && c.lsn() == a.lsn()
	})
	pBA.Heal()
	pCA.Heal()

	// Phase 2: partition A away from both followers, then keep writing
	// to it — acknowledged writes that can no longer replicate.
	pBA.Partition()
	pCA.Partition()
	hist.event("p2", "partitioned A from B and C")
	for i := 0; i < 3+rng.Intn(4); i++ {
		write("p2", a.addr(), "A", fmt.Sprintf("split-%d", i))
	}

	// Phase 3: promote B; the cluster moves on without A.
	if err := adminExec(b.addr(), `\promote`); err != nil {
		t.Fatalf("promoting B: %v", err)
	}
	hist.event("p3", "promoted B")
	waitFor(t, "B serving as primary", 10*time.Second, func() bool { return b.role() == "primary" })
	for i := 0; i < 3+rng.Intn(4); i++ {
		write("p3", b.addr(), "B", fmt.Sprintf("new-%d", i))
	}
	if rng.Intn(2) == 0 {
		pCB.CutAfter(int64(rng.Intn(300) + 100))
		hist.event("p3", "armed mid-message cut on C->B")
	}
	if rng.Intn(2) == 0 {
		duplicateConnect(t, b, "C")
		hist.event("p3", "duplicate follower connect to B")
	}

	// Phase 4: heal the network and fence the stale primary. A must
	// demote, quarantine its divergent suffix, and rejoin under B.
	pBA.Heal()
	pCA.Heal()
	pCB.Heal()
	hist.event("p4", "healed all links")
	fenceNode(t, a, b.epoch(), b.addr())
	hist.event("p4", "fenced A")

	// Phase 5: convergence. Every node ends on B's epoch with
	// byte-identical state.
	waitFor(t, "cluster convergence", 30*time.Second, func() bool {
		if a.role() != "replica" || b.role() != "primary" || c.role() != "replica" {
			return false
		}
		if a.epoch() != b.epoch() || c.epoch() != b.epoch() {
			return false
		}
		if a.lsn() != b.lsn() || c.lsn() != b.lsn() {
			return false
		}
		return true
	})
	const feedQuery = "retrieve (FEED.K, FEED.V)"
	feedB := adminQuery(t, b.addr(), feedQuery)
	if got := adminQuery(t, a.addr(), feedQuery); got != feedB {
		t.Fatalf("A's FEED differs from B's after convergence:\nA: %s\nB: %s", got, feedB)
	}
	if got := adminQuery(t, c.addr(), feedQuery); got != feedB {
		t.Fatalf("C's FEED differs from B's after convergence:\nC: %s\nB: %s", got, feedB)
	}

	// Invariant (a): every acked write survives — in the final timeline
	// or in a quarantine.
	quarantines := quarantineBlob(t, a) + quarantineBlob(t, b) + quarantineBlob(t, c)
	for _, key := range acked {
		if !strings.Contains(feedB, key) && !strings.Contains(quarantines, key) {
			t.Errorf("acked write %q lost: not in the final state nor any quarantine", key)
		}
	}

	// Invariant (b): byte-identical masked answers per principal on
	// every node.
	queries := []string{
		"retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY)",
		"retrieve (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET)",
	}
	for _, user := range []string{"Brown", "Klein", "Nobody"} {
		for _, q := range queries {
			var want string
			for i, n := range nodes {
				cl, err := client.Dial(n.addr(), client.WithUser(user))
				if err != nil {
					t.Fatalf("dial %s: %v", n.name, err)
				}
				res, err := cl.Exec(context.Background(), q)
				cl.Close()
				if err != nil {
					t.Fatalf("%s on %s for %s: %v", q, n.name, user, err)
				}
				if i == 0 {
					want = res.Rendered
				} else if res.Rendered != want {
					t.Errorf("node %s answers %q differently for %s", n.name, q, user)
				}
			}
		}
	}

	// Invariant (c): no epoch has two origin-writers.
	if v := dualPrimaryViolation(nodes); v != "" {
		t.Errorf("dual primary: %s", v)
	}

	// The fenced ex-primary must have quarantined its split-brain
	// writes (they were acked under epoch 1 past the fork).
	if strings.Contains(strings.Join(acked, " "), "split-") &&
		!strings.Contains(quarantineBlob(t, a), "split-") {
		t.Error("A's divergent split-brain writes left no quarantine")
	}

	// Failover observability: epoch and role visible in metrics.
	if !strings.Contains(b.metricsText(), "authdb_repl_epoch 2") {
		t.Error("B's metrics do not report epoch 2")
	}
	if !strings.Contains(b.metricsText(), `authdb_role{role="primary"} 1`) {
		t.Error("B's metrics do not report the primary role")
	}
}

// TestChaosUnfencedBuildFailsDualPrimaryCheck proves the detector has
// teeth: with fencing disabled, a promotion during a partition yields
// two nodes accepting writes in the same epoch, and invariant (c)
// flags it.
func TestChaosUnfencedBuildFailsDualPrimaryCheck(t *testing.T) {
	a := startNode(t, "A", server.Config{UnsafeNoFencing: true})
	p, err := chaosnet.New("B->A", a.addr(), 42)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	b := startNode(t, "B", server.Config{
		ReadOnlyPrimary: a.addr(), UnsafeNoFencing: true,
	})
	follow(t, b, []string{p.Addr()})

	a.db.Admin().MustExecScript("relation FEED (K, V) key (K);\n")
	if err := adminExec(a.addr(), "insert into FEED values (base, v)"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "B catching up", 20*time.Second, func() bool { return b.lsn() == a.lsn() })

	p.Partition()
	// Promote B with no epoch bump (the unsafe build), then write on
	// BOTH sides of the partition.
	if err := adminExec(b.addr(), `\promote`); err != nil {
		t.Fatalf("promoting B: %v", err)
	}
	if err := adminExec(a.addr(), "insert into FEED values (a-side, v)"); err != nil {
		t.Fatalf("write on A: %v", err)
	}
	if err := adminExec(b.addr(), "insert into FEED values (b-side, v)"); err != nil {
		t.Fatalf("write on B: %v", err)
	}
	if a.epoch() != b.epoch() {
		t.Fatalf("unsafe build bumped the epoch (%d vs %d)", a.epoch(), b.epoch())
	}

	v := dualPrimaryViolation([]*node{a, b})
	if v == "" {
		t.Fatal("un-fenced split brain was NOT detected by the dual-primary check")
	}
	t.Logf("dual-primary check correctly flagged: %s", v)
}
