// Package chaosnet is a fault-injecting TCP proxy for testing the
// replication and failover machinery under network chaos. A Proxy sits
// on one link (typically follower → primary) and can, at any moment:
//
//   - Partition: hold traffic in both directions. Connections stay
//     open and data is delivered after Heal — TCP semantics for a
//     dropped link: delay, not corruption. Senders hit their write
//     timeouts, which is exactly the path under test.
//   - Blackhole one direction only (asymmetric partitions: acks lost
//     while batches still flow, and vice versa).
//   - Add latency with seeded jitter.
//   - Cut a connection mid-message after a byte budget — the torn-frame
//     shape of a crashed peer.
//   - CutNow: abruptly close every proxied connection.
//
// Every random choice comes from a caller-provided seed, so a failing
// schedule replays exactly.
package chaosnet

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// pollInterval is how often a blocked pump re-checks a partition.
const pollInterval = 5 * time.Millisecond

// Direction selects a traffic direction through the proxy.
type Direction int

const (
	// ToTarget is client→target traffic (a follower's hellos and acks).
	ToTarget Direction = iota
	// FromTarget is target→client traffic (the primary's batches).
	FromTarget
)

// Proxy forwards TCP between its listener and a fixed target, with
// injectable faults. All methods are safe for concurrent use.
type Proxy struct {
	name   string
	target string
	ln     net.Listener

	mu       sync.Mutex
	dropTo   bool // hold client→target
	dropFrom bool // hold target→client
	latency  time.Duration
	jitter   time.Duration
	cutLeft  int64 // >0: bytes toward target until a mid-message cut
	rng      *rand.Rand
	conns    map[net.Conn]struct{}
	closed   bool
}

// New starts a proxy to target on an ephemeral localhost port. name
// labels errors; seed drives the jitter.
func New(name, target string, seed int64) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaosnet %s: listen: %w", name, err)
	}
	p := &Proxy{
		name: name, target: target, ln: ln,
		rng:   rand.New(rand.NewSource(seed)),
		conns: make(map[net.Conn]struct{}),
	}
	go p.acceptLoop()
	return p, nil
}

// Addr is the address to dial instead of the target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Partition holds traffic in both directions until Heal.
func (p *Proxy) Partition() {
	p.mu.Lock()
	p.dropTo, p.dropFrom = true, true
	p.mu.Unlock()
}

// Blackhole holds one direction only.
func (p *Proxy) Blackhole(dir Direction) {
	p.mu.Lock()
	if dir == ToTarget {
		p.dropTo = true
	} else {
		p.dropFrom = true
	}
	p.mu.Unlock()
}

// Heal clears every fault: partitions, blackholes, latency, and any
// un-triggered cut budget.
func (p *Proxy) Heal() {
	p.mu.Lock()
	p.dropTo, p.dropFrom = false, false
	p.latency, p.jitter = 0, 0
	p.cutLeft = 0
	p.mu.Unlock()
}

// SetLatency delays every chunk by d plus a seeded uniform jitter.
func (p *Proxy) SetLatency(d, jitter time.Duration) {
	p.mu.Lock()
	p.latency, p.jitter = d, jitter
	p.mu.Unlock()
}

// CutAfter arms a mid-message cut: after n more bytes toward the
// target, the connection carrying the n-th byte is closed abruptly in
// both directions. Choose n to land inside a frame.
func (p *Proxy) CutAfter(n int64) {
	p.mu.Lock()
	p.cutLeft = n
	p.mu.Unlock()
}

// CutNow abruptly closes every currently proxied connection. New
// connections proceed normally.
func (p *Proxy) CutNow() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

// Close shuts the proxy down: the listener and every proxied
// connection.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.CutNow()
}

func (p *Proxy) acceptLoop() {
	for {
		cc, err := p.ln.Accept()
		if err != nil {
			return
		}
		go p.serve(cc)
	}
}

// serve proxies one accepted connection to the target.
func (p *Proxy) serve(cc net.Conn) {
	tc, err := net.Dial("tcp", p.target)
	if err != nil {
		cc.Close()
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		cc.Close()
		tc.Close()
		return
	}
	p.conns[cc] = struct{}{}
	p.conns[tc] = struct{}{}
	p.mu.Unlock()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); p.pump(cc, tc, ToTarget) }()
	go func() { defer wg.Done(); p.pump(tc, cc, FromTarget) }()
	wg.Wait()
	p.mu.Lock()
	delete(p.conns, cc)
	delete(p.conns, tc)
	p.mu.Unlock()
	cc.Close()
	tc.Close()
}

// pump copies src→dst chunk by chunk, applying the current faults to
// each chunk: latency first, then the partition hold, then the cut
// budget. A held chunk is delivered after Heal (delay, not loss).
func (p *Proxy) pump(src, dst net.Conn, dir Direction) {
	defer dst.Close() // propagate EOF/cuts to the other side
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if !p.admit(int64(n), dir, src, dst) {
				return
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// admit applies latency, partition holds, and the cut budget to one
// chunk of n bytes; it returns false when the connection was cut.
func (p *Proxy) admit(n int64, dir Direction, src, dst net.Conn) bool {
	p.mu.Lock()
	delay := p.latency
	if p.jitter > 0 {
		delay += time.Duration(p.rng.Int63n(int64(p.jitter)))
	}
	p.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	for {
		p.mu.Lock()
		dropped := (dir == ToTarget && p.dropTo) || (dir == FromTarget && p.dropFrom)
		p.mu.Unlock()
		if !dropped {
			break
		}
		// Hold the chunk; deliver when healed, bail when the connection
		// dies under us (the sender's timeout fired and closed it).
		time.Sleep(pollInterval)
		if closedConn(src) || closedConn(dst) {
			return false
		}
	}
	if dir == ToTarget {
		p.mu.Lock()
		if p.cutLeft > 0 {
			p.cutLeft -= n
			if p.cutLeft <= 0 {
				p.cutLeft = 0
				p.mu.Unlock()
				src.Close()
				dst.Close()
				return false
			}
		}
		p.mu.Unlock()
	}
	return true
}

// closedConn probes whether a connection is already closed by
// attempting a zero-byte write.
func closedConn(c net.Conn) bool {
	if _, err := c.Write(nil); err != nil {
		return err != io.ErrShortWrite
	}
	return false
}
