package chaosnet

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// startEcho runs a TCP echo server and returns its address.
func startEcho(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(nc, nc); nc.Close() }()
		}
	}()
	return ln.Addr().String()
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return nc
}

func roundTrip(t *testing.T, nc net.Conn, msg string, timeout time.Duration) (string, error) {
	t.Helper()
	nc.SetDeadline(time.Now().Add(timeout))
	if _, err := nc.Write([]byte(msg)); err != nil {
		return "", err
	}
	buf := make([]byte, len(msg))
	_, err := io.ReadFull(nc, buf)
	return string(buf), err
}

func TestProxyForwards(t *testing.T) {
	p, err := New("t", startEcho(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	nc := dialProxy(t, p)
	got, err := roundTrip(t, nc, "hello", 2*time.Second)
	if err != nil || got != "hello" {
		t.Fatalf("echo through proxy = %q, %v", got, err)
	}
}

func TestProxyPartitionHoldsThenHealDelivers(t *testing.T) {
	p, err := New("t", startEcho(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	nc := dialProxy(t, p)
	if _, err := roundTrip(t, nc, "warm", 2*time.Second); err != nil {
		t.Fatal(err)
	}

	p.Partition()
	if _, err := roundTrip(t, nc, "lost", 150*time.Millisecond); err == nil {
		t.Fatal("read succeeded across a partition")
	}
	// Heal: the held chunk is delivered — delay, not loss.
	p.Heal()
	nc.SetDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(nc, buf); err != nil || !bytes.Equal(buf, []byte("lost")) {
		t.Fatalf("post-heal delivery = %q, %v; want the held chunk", buf, err)
	}
}

func TestProxyBlackholeIsOneWay(t *testing.T) {
	p, err := New("t", startEcho(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	nc := dialProxy(t, p)

	// Returning traffic is dropped: the request reaches the echo server
	// but the reply never comes back.
	p.Blackhole(FromTarget)
	if _, err := roundTrip(t, nc, "ping", 150*time.Millisecond); err == nil {
		t.Fatal("reply crossed a from-target blackhole")
	}
	p.Heal()
	nc.SetDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(nc, buf); err != nil {
		t.Fatalf("post-heal reply: %v", err)
	}
}

func TestProxyCutAfterSeversMidStream(t *testing.T) {
	p, err := New("t", startEcho(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	nc := dialProxy(t, p)
	if _, err := roundTrip(t, nc, "aa", 2*time.Second); err != nil {
		t.Fatal(err)
	}
	p.CutAfter(3) // lands inside the next 4-byte message
	nc.SetDeadline(time.Now().Add(2 * time.Second))
	nc.Write([]byte("bbbb"))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(nc, buf); err == nil {
		t.Fatal("message survived a mid-stream cut")
	}
}

func TestProxyLatencyDelays(t *testing.T) {
	p, err := New("t", startEcho(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	nc := dialProxy(t, p)
	p.SetLatency(60*time.Millisecond, 10*time.Millisecond)
	start := time.Now()
	if _, err := roundTrip(t, nc, "slow", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Two directions, each delayed at least 60ms.
	if d := time.Since(start); d < 120*time.Millisecond {
		t.Fatalf("round trip took %v, want >= 120ms of injected latency", d)
	}
}

func TestProxyCutNow(t *testing.T) {
	p, err := New("t", startEcho(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	nc := dialProxy(t, p)
	if _, err := roundTrip(t, nc, "up", 2*time.Second); err != nil {
		t.Fatal(err)
	}
	p.CutNow()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := roundTrip(t, nc, "??", 100*time.Millisecond); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("connection survived CutNow")
		}
	}
	// The proxy itself is still alive for new connections.
	nc2 := dialProxy(t, p)
	if got, err := roundTrip(t, nc2, "new!", 2*time.Second); err != nil || got != "new!" {
		t.Fatalf("new connection after CutNow = %q, %v", got, err)
	}
}
