// Package report renders the paper's reproduced artifacts as text:
// Figure 1, the worked Examples 1–3 of §5 with their intermediate
// meta-relations, and the §4.2 four-case selection walkthrough. The
// paperrepro command prints these; the golden tests pin them.
package report

import (
	"fmt"
	"io"

	"authdb/internal/core"
	"authdb/internal/interval"
	"authdb/internal/value"
	"authdb/internal/workload"
)

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "================ %s ================\n\n", title)
}

// Figure1 prints the example database extended with access permissions:
// each base relation with its meta-relation, then COMPARISON and
// PERMISSION.
func Figure1(w io.Writer) {
	header(w, "Figure 1: Database Extended with Access Permissions")
	f := workload.Paper()
	for _, rel := range []string{"EMPLOYEE", "PROJECT", "ASSIGNMENT"} {
		f.Rels[rel].Render(w, rel)
		f.Store.RenderMeta(w, rel)
		fmt.Fprintln(w)
	}
	f.Store.RenderComparison(w)
	fmt.Fprintln(w)
	f.Store.RenderPermission(w)
	fmt.Fprintln(w)
}

// Example runs one §5 worked example, printing the request, the pruned
// per-scan meta-relations, the intermediate meta-relations after each
// phase, the final mask, the inferred permits, and the delivered answer.
// It returns an error instead of printing on failure.
func Example(w io.Writer, n int, user, query string) error {
	header(w, fmt.Sprintf("Example %d (user %s)", n, user))
	def := workload.MustQuery(query)
	fmt.Fprintln(w, def.String())
	fmt.Fprintln(w)

	f := workload.Paper()
	opt := core.DefaultOptions()
	opt.CollectIntermediates = true
	// The paper instantiates each view once; extra fresh-variable copies
	// (useful for completeness on repeated-relation queries) only add
	// display noise here and never change these examples' outcomes —
	// TestExample1–3 run with the default options and agree.
	opt.ViewCopies = 1
	auth := core.NewAuthorizer(f.Store, f.Source, opt)
	d, err := auth.Retrieve(user, def)
	if err != nil {
		return fmt.Errorf("example %d: %w", n, err)
	}

	for _, s := range d.Intermediates {
		s.Meta.Render(w, "after "+s.Phase+":", d.Inst)
		fmt.Fprintln(w)
	}

	maskRel := &core.MetaRel{Attrs: d.Mask.Attrs, Tuples: d.Mask.Tuples}
	maskRel.Render(w, "mask A':", d.Inst)
	fmt.Fprintln(w)

	switch {
	case d.FullyAuthorized:
		fmt.Fprintln(w, "The entire answer is delivered without any accompanying permit statements.")
	case d.Denied:
		fmt.Fprintln(w, "No portion of the answer is permitted; nothing is delivered.")
	default:
		for _, p := range d.Permits {
			fmt.Fprintln(w, p.String())
		}
	}
	fmt.Fprintln(w)
	d.Masked.Render(w, "delivered answer:")
	fmt.Fprintln(w)
	return nil
}

// Cases walks the §4.2 selection refinement example: a view of the
// projects whose budgets are between $300,000 and $600,000, against four
// query selections.
func Cases(w io.Writer) {
	header(w, "§4.2 four-case selection walkthrough")
	mu := interval.Intersect(
		interval.FromCmp(value.GE, value.Int(300000)),
		interval.FromCmp(value.LE, value.Int(600000)),
	)
	fmt.Fprintf(w, "view predicate mu: BUDGET in %s\n\n", mu)
	queries := []struct {
		label string
		lam   interval.Interval
	}{
		{"(1) budgets between 200,000 and 400,000", interval.Intersect(
			interval.FromCmp(value.GE, value.Int(200000)), interval.FromCmp(value.LE, value.Int(400000)))},
		{"(2) budgets between 200,000 and 700,000", interval.Intersect(
			interval.FromCmp(value.GE, value.Int(200000)), interval.FromCmp(value.LE, value.Int(700000)))},
		{"(3) budgets between 400,000 and 500,000", interval.Intersect(
			interval.FromCmp(value.GE, value.Int(400000)), interval.FromCmp(value.LE, value.Int(500000)))},
		{"(4) budgets under 300,000", interval.FromCmp(value.LT, value.Int(300000))},
	}
	for _, q := range queries {
		lam := q.lam
		var outcome string
		inter := interval.Intersect(mu, lam)
		switch {
		case inter.IsEmpty():
			outcome = "contradictory: the meta-tuple is discarded"
		case lam.Implies(mu):
			outcome = "lambda implies mu: selected, field cleared (no restriction)"
		case mu.Implies(lam):
			outcome = "mu implies lambda: selected without modification"
		default:
			outcome = fmt.Sprintf("conjoined: field modified to BUDGET in %s", inter)
		}
		fmt.Fprintf(w, "%s\n  lambda: BUDGET in %s\n  -> %s\n\n", q.label, lam, outcome)
	}
}

// All prints every artifact in order.
func All(w io.Writer) error {
	Figure1(w)
	if err := Example(w, 1, "Brown", workload.Example1Query); err != nil {
		return err
	}
	if err := Example(w, 2, "Klein", workload.Example2Query); err != nil {
		return err
	}
	if err := Example(w, 3, "Brown", workload.Example3Query); err != nil {
		return err
	}
	Cases(w)
	return nil
}
