package report_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"authdb/internal/report"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestGolden pins the complete reproduced paper output — Figure 1, the
// three worked examples with every intermediate meta-relation, and the
// §4.2 walkthrough — against testdata/paper.golden. Run with -update
// after an intentional change.
func TestGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := report.All(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "paper.golden")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(want) {
		t.Fatalf("output diverged from %s (run with -update after intentional changes)\n%s",
			path, firstDiff(buf.String(), string(want)))
	}
}

func firstDiff(got, want string) string {
	g := strings.Split(got, "\n")
	w := strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return "line " + itoa(i+1) + ":\n got: " + g[i] + "\nwant: " + w[i]
		}
	}
	return "length differs: got " + itoa(len(g)) + " lines, want " + itoa(len(w))
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// TestPaperLandmarks asserts the presence of the paper's headline lines
// independent of the golden file, so a stale golden cannot hide a
// regression in the artifacts themselves.
func TestPaperLandmarks(t *testing.T) {
	var buf bytes.Buffer
	if err := report.All(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		// Figure 1
		"| ELP  | x1*    | x2*  |", // ASSIGNMENT' row
		"| PSA  | *      | Acme*   | *      |",
		"| ELP  | x3 | >=      | 250000 |",
		"| Brown | SAE  |",
		"| Klein | ELP  |",
		// Example 1
		"permit (NUMBER, SPONSOR) where SPONSOR = Acme",
		// Example 2
		"permit (NAME)",
		// Example 3
		"The entire answer is delivered without any accompanying permit statements.",
		// §4.2 cases
		"conjoined: field modified to BUDGET in [300000, 400000]",
		"mu implies lambda: selected without modification",
		"lambda implies mu: selected, field cleared (no restriction)",
		"contradictory: the meta-tuple is discarded",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("reproduced output misses %q", want)
		}
	}
}
