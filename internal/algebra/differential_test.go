package algebra

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"authdb/internal/guard"
	"authdb/internal/relation"
	"authdb/internal/value"
)

// The differential harness: randomized databases and PSJ plans, each
// evaluated four ways — naive and optimized, serial and parallel — with
// every pair of results cross-checked. Within one evaluator family the
// parallel result must be tuple-for-tuple identical to the serial one
// (the workers own contiguous partitions merged in order), and under a
// tight budget the two must fail or succeed together. Across families
// only set equality holds (the evaluators materialize different
// intermediates by design, so their budget trip points differ).

// diffCase is one randomized database plus a plan over it.
type diffCase struct {
	rels map[string]*relation.Relation
	plan *PSJ
}

const diffDomain = 8

// genRel builds a relation with a sequential key attribute and random
// payloads, so row counts are exact and joins hit.
func genRel(rng *rand.Rand, name string, arity, rows int) *relation.Relation {
	attrs := make([]string, arity)
	for j := range attrs {
		attrs[j] = fmt.Sprintf("A%d", j)
	}
	r := relation.New(attrs)
	for i := 0; i < rows; i++ {
		t := make(relation.Tuple, arity)
		t[0] = value.Int(int64(i))
		for j := 1; j < arity; j++ {
			t[j] = value.Int(int64(rng.Intn(diffDomain)))
		}
		r.MustInsert(t...)
	}
	return r
}

var diffOps = []value.Cmp{value.EQ, value.LT, value.LE, value.GT, value.GE}

// genCase builds a random plan: 1–3 scans (relations may repeat, so
// self-products occur), equality atoms between adjacent scans, constant
// atoms, and a random projection.
func genCase(rng *rand.Rand, bigRows int) diffCase {
	nRels := 2 + rng.Intn(2)
	rels := make(map[string]*relation.Relation, nRels)
	names := make([]string, nRels)
	rowCounts := make([]int, nRels)
	for i := 0; i < nRels; i++ {
		names[i] = fmt.Sprintf("R%d", i)
		arity := 2 + rng.Intn(3)
		rows := 4 + rng.Intn(16)
		if bigRows > 0 && i == 0 {
			arity = 3
			rows = bigRows
		}
		rels[names[i]] = genRel(rng, names[i], arity, rows)
		rowCounts[i] = rows
	}
	nScans := 1 + rng.Intn(3)
	if bigRows > 0 {
		nScans = 2
	}
	p := &PSJ{}
	var attrs []string
	scanRel := make([]int, nScans)
	for s := 0; s < nScans; s++ {
		ri := rng.Intn(nRels)
		if bigRows > 0 {
			// Exactly one scan of the big relation; the rest stay small.
			if s == 0 {
				ri = 0
			} else {
				ri = 1 + rng.Intn(nRels-1)
			}
		}
		scanRel[s] = ri
		alias := fmt.Sprintf("T%d", s)
		p.Scans = append(p.Scans, Scan{Rel: names[ri], Alias: alias})
		attrs = append(attrs, relation.QualifyAttrs(alias, rels[names[ri]].Attrs)...)
	}
	qual := func(s int, a int) string {
		return fmt.Sprintf("T%d.A%d", s, a)
	}
	arityOf := func(s int) int { return rels[names[scanRel[s]]].Arity() }
	for s := 1; s < nScans; s++ {
		if rng.Float64() < 0.7 {
			p.Preds = append(p.Preds, Atom{
				L:  qual(s-1, rng.Intn(arityOf(s-1))),
				Op: value.EQ,
				R:  AttrOp(qual(s, rng.Intn(arityOf(s)))),
			})
		}
	}
	for k := rng.Intn(4); k > 0; k-- {
		s := rng.Intn(nScans)
		a := rng.Intn(arityOf(s))
		dom := diffDomain
		if a == 0 {
			dom = rowCounts[scanRel[s]]
		}
		p.Preds = append(p.Preds, Atom{
			L:  qual(s, a),
			Op: diffOps[rng.Intn(len(diffOps))],
			R:  ConstOp(value.Int(int64(rng.Intn(dom)))),
		})
	}
	perm := rng.Perm(len(attrs))
	nCols := 1 + rng.Intn(len(attrs))
	for _, i := range perm[:nCols] {
		p.Cols = append(p.Cols, attrs[i])
	}
	return diffCase{rels: rels, plan: p}
}

// evalWays runs the plan with the given limits through one family.
func evalWays(c diffCase, optimized bool, limits guard.Limits) (*relation.Relation, error) {
	g := guard.New(context.Background(), limits)
	defer g.Close()
	src := MapSource(c.rels)
	if optimized {
		return EvalOptimizedGuarded(c.plan, src, g)
	}
	return EvalNaiveGuarded(c.plan.Node(), src, g)
}

// sameRelation asserts tuple-for-tuple identity (attributes, order,
// values), the determinism contract of the parallel evaluators.
func sameRelation(t *testing.T, label string, a, b *relation.Relation) {
	t.Helper()
	if len(a.Attrs) != len(b.Attrs) {
		t.Fatalf("%s: attrs differ: %v vs %v", label, a.Attrs, b.Attrs)
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			t.Fatalf("%s: attrs differ: %v vs %v", label, a.Attrs, b.Attrs)
		}
	}
	at, bt := a.Tuples(), b.Tuples()
	if len(at) != len(bt) {
		t.Fatalf("%s: cardinality differs: %d vs %d", label, len(at), len(bt))
	}
	for i := range at {
		if !at[i].Equal(bt[i]) {
			t.Fatalf("%s: tuple %d differs: %v vs %v", label, i, at[i], bt[i])
		}
	}
}

// checkCase cross-checks the four evaluations of one case and, when
// budgets is non-empty, the serial/parallel budget parity per family.
func checkCase(t *testing.T, c diffCase, budgets []int64) {
	t.Helper()
	serial := guard.Limits{Parallelism: 1}
	par := guard.Limits{Parallelism: 8}

	sn, err := evalWays(c, false, serial)
	if err != nil {
		t.Fatalf("naive serial: %v (plan %s)", err, c.plan)
	}
	pn, err := evalWays(c, false, par)
	if err != nil {
		t.Fatalf("naive parallel: %v (plan %s)", err, c.plan)
	}
	so, err := evalWays(c, true, serial)
	if err != nil {
		t.Fatalf("optimized serial: %v (plan %s)", err, c.plan)
	}
	po, err := evalWays(c, true, par)
	if err != nil {
		t.Fatalf("optimized parallel: %v (plan %s)", err, c.plan)
	}
	sameRelation(t, "naive serial vs parallel", sn, pn)
	sameRelation(t, "optimized serial vs parallel", so, po)
	if !sn.Equal(so) {
		t.Fatalf("naive and optimized disagree on plan %s:\nnaive %d tuples, optimized %d tuples",
			c.plan, sn.Len(), so.Len())
	}

	for _, b := range budgets {
		for _, optimized := range []bool{false, true} {
			family := "naive"
			if optimized {
				family = "optimized"
			}
			rs, errS := evalWays(c, optimized, guard.Limits{MaxIntermediateRows: b, Parallelism: 1})
			rp, errP := evalWays(c, optimized, guard.Limits{MaxIntermediateRows: b, Parallelism: 8})
			if (errS == nil) != (errP == nil) {
				t.Fatalf("%s budget %d: serial err %v, parallel err %v (plan %s)",
					family, b, errS, errP, c.plan)
			}
			if errS != nil {
				if !errors.Is(errS, guard.ErrBudgetExceeded) || !errors.Is(errP, guard.ErrBudgetExceeded) {
					t.Fatalf("%s budget %d: unexpected errors %v / %v", family, b, errS, errP)
				}
				continue
			}
			sameRelation(t, family+" under budget", rs, rp)
		}
	}
}

// TestDifferentialRandomized runs 1000 randomized small cases through
// all four evaluation modes, with budget parity probed on every tenth.
func TestDifferentialRandomized(t *testing.T) {
	const cases = 1000
	for i := 0; i < cases; i++ {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		c := genCase(rng, 0)
		var budgets []int64
		if i%10 == 0 {
			budgets = []int64{37, 500}
		}
		checkCase(t, c, budgets)
	}
}

// TestDifferentialLargeParallel runs cases big enough to cross the
// parallel fan-out thresholds (product, selection, and hash-join probe),
// so the chunked code paths — not just their serial fallbacks — are the
// ones being cross-checked, budgets included.
func TestDifferentialLargeParallel(t *testing.T) {
	cases := 24
	if testing.Short() {
		cases = 6
	}
	for i := 0; i < cases; i++ {
		rng := rand.New(rand.NewSource(int64(9000 + i)))
		c := genCase(rng, 1200+rng.Intn(600))
		checkCase(t, c, []int64{1000, 20000})
	}
}
