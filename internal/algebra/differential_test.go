package algebra

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"authdb/internal/guard"
	"authdb/internal/relation"
	"authdb/internal/value"
)

// The differential harness: randomized databases and PSJ plans, each
// evaluated through three evaluator families — naive, plain (pushdown +
// hash join, no indexes), and indexed (secondary-index access paths,
// index joins, stats-informed ordering) — serial and parallel, with
// every pair of results cross-checked. Within one family the parallel
// result must be tuple-for-tuple identical to the serial one (the
// workers own contiguous partitions merged in order), and under a tight
// budget the two must fail or succeed together. Across families only set
// equality holds (the evaluators materialize different intermediates by
// design, so their budget trip points differ). The fused (mask
// pushdown) family is cross-checked at the core layer, where masks
// exist (internal/core/pushdown_test.go).

// diffCase is one randomized database plus a plan over it.
type diffCase struct {
	rels map[string]*relation.Relation
	plan *PSJ
}

const diffDomain = 8

// stringCol reports whether payload column j of a generated relation
// carries strings: odd payload columns do, so plans mix int and string
// comparisons and range atoms cross the kind-major order boundary.
func stringCol(j int) bool { return j > 0 && j%2 == 1 }

// genRel builds a relation with a sequential int key attribute and
// random payloads — int on even columns, string on odd ones — so row
// counts are exact, joins hit, and both value kinds are exercised.
func genRel(rng *rand.Rand, name string, arity, rows int) *relation.Relation {
	attrs := make([]string, arity)
	for j := range attrs {
		attrs[j] = fmt.Sprintf("A%d", j)
	}
	r := relation.New(attrs)
	for i := 0; i < rows; i++ {
		t := make(relation.Tuple, arity)
		t[0] = value.Int(int64(i))
		for j := 1; j < arity; j++ {
			if stringCol(j) {
				t[j] = value.String(fmt.Sprintf("s%d", rng.Intn(diffDomain)))
			} else {
				t[j] = value.Int(int64(rng.Intn(diffDomain)))
			}
		}
		r.MustInsert(t...)
	}
	return r
}

var diffOps = []value.Cmp{value.EQ, value.NE, value.LT, value.LE, value.GT, value.GE}

// genConst picks a constant for an atom over column a: usually of the
// column's kind (so predicates select meaningfully), sometimes of the
// other kind (so comparisons at the int/string boundary are covered).
func genConst(rng *rand.Rand, a, dom int) value.Value {
	crossKind := rng.Float64() < 0.1
	if stringCol(a) != crossKind {
		return value.String(fmt.Sprintf("s%d", rng.Intn(dom)))
	}
	return value.Int(int64(rng.Intn(dom)))
}

// genCase builds a random plan: 1–3 scans (relations may repeat, so
// self-products occur), equality atoms between adjacent scans, constant
// atoms over all six comparators, and a random projection.
func genCase(rng *rand.Rand, bigRows int) diffCase {
	nRels := 2 + rng.Intn(2)
	rels := make(map[string]*relation.Relation, nRels)
	names := make([]string, nRels)
	rowCounts := make([]int, nRels)
	for i := 0; i < nRels; i++ {
		names[i] = fmt.Sprintf("R%d", i)
		arity := 2 + rng.Intn(3)
		rows := 4 + rng.Intn(16)
		if bigRows > 0 && i == 0 {
			arity = 3
			rows = bigRows
		}
		rels[names[i]] = genRel(rng, names[i], arity, rows)
		rowCounts[i] = rows
	}
	nScans := 1 + rng.Intn(3)
	if bigRows > 0 {
		nScans = 2
	}
	p := &PSJ{}
	var attrs []string
	scanRel := make([]int, nScans)
	for s := 0; s < nScans; s++ {
		ri := rng.Intn(nRels)
		if bigRows > 0 {
			// Exactly one scan of the big relation; the rest stay small.
			if s == 0 {
				ri = 0
			} else {
				ri = 1 + rng.Intn(nRels-1)
			}
		}
		scanRel[s] = ri
		alias := fmt.Sprintf("T%d", s)
		p.Scans = append(p.Scans, Scan{Rel: names[ri], Alias: alias})
		attrs = append(attrs, relation.QualifyAttrs(alias, rels[names[ri]].Attrs)...)
	}
	qual := func(s int, a int) string {
		return fmt.Sprintf("T%d.A%d", s, a)
	}
	arityOf := func(s int) int { return rels[names[scanRel[s]]].Arity() }
	for s := 1; s < nScans; s++ {
		if rng.Float64() < 0.7 {
			p.Preds = append(p.Preds, Atom{
				L:  qual(s-1, rng.Intn(arityOf(s-1))),
				Op: value.EQ,
				R:  AttrOp(qual(s, rng.Intn(arityOf(s)))),
			})
		}
	}
	for k := rng.Intn(4); k > 0; k-- {
		s := rng.Intn(nScans)
		a := rng.Intn(arityOf(s))
		dom := diffDomain
		if a == 0 {
			dom = rowCounts[scanRel[s]]
		}
		p.Preds = append(p.Preds, Atom{
			L:  qual(s, a),
			Op: diffOps[rng.Intn(len(diffOps))],
			R:  ConstOp(genConst(rng, a, dom)),
		})
	}
	perm := rng.Perm(len(attrs))
	nCols := 1 + rng.Intn(len(attrs))
	for _, i := range perm[:nCols] {
		p.Cols = append(p.Cols, attrs[i])
	}
	return diffCase{rels: rels, plan: p}
}

// family is one evaluator strategy under differential test.
type family int

const (
	famNaive   family = iota // EvalNaive: bottom-up plan tree
	famPlain                 // EvalPSJ without indexes: pushdown + hash join
	famIndexed               // EvalPSJ with indexes: range scans, index joins, stats
)

var families = []family{famNaive, famPlain, famIndexed}

func (f family) String() string {
	return [...]string{"naive", "plain", "indexed"}[f]
}

// evalWays runs the plan with the given limits through one family.
func evalWays(c diffCase, f family, limits guard.Limits) (*relation.Relation, error) {
	g := guard.New(context.Background(), limits)
	defer g.Close()
	src := MapSource(c.rels)
	switch f {
	case famNaive:
		return EvalNaiveGuarded(c.plan.Node(), src, g)
	case famPlain:
		return EvalPSJ(c.plan, src, g, ExecOptions{}, nil)
	default:
		return EvalPSJ(c.plan, src, g, ExecOptions{UseIndexes: true}, nil)
	}
}

// sameRelation asserts tuple-for-tuple identity (attributes, order,
// values), the determinism contract of the parallel evaluators.
func sameRelation(t *testing.T, label string, a, b *relation.Relation) {
	t.Helper()
	if len(a.Attrs) != len(b.Attrs) {
		t.Fatalf("%s: attrs differ: %v vs %v", label, a.Attrs, b.Attrs)
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			t.Fatalf("%s: attrs differ: %v vs %v", label, a.Attrs, b.Attrs)
		}
	}
	at, bt := a.Tuples(), b.Tuples()
	if len(at) != len(bt) {
		t.Fatalf("%s: cardinality differs: %d vs %d", label, len(at), len(bt))
	}
	for i := range at {
		if !at[i].Equal(bt[i]) {
			t.Fatalf("%s: tuple %d differs: %v vs %v", label, i, at[i], bt[i])
		}
	}
}

// checkCase cross-checks the six evaluations (three families × serial,
// parallel) of one case and, when budgets is non-empty, the
// serial/parallel budget parity per family.
func checkCase(t *testing.T, c diffCase, budgets []int64) {
	t.Helper()
	serial := guard.Limits{Parallelism: 1}
	par := guard.Limits{Parallelism: 8}

	results := make([]*relation.Relation, len(families))
	for _, f := range families {
		s, err := evalWays(c, f, serial)
		if err != nil {
			t.Fatalf("%s serial: %v (plan %s)", f, err, c.plan)
		}
		p, err := evalWays(c, f, par)
		if err != nil {
			t.Fatalf("%s parallel: %v (plan %s)", f, err, c.plan)
		}
		sameRelation(t, f.String()+" serial vs parallel", s, p)
		results[f] = s
	}
	for _, f := range families[1:] {
		if !results[famNaive].Equal(results[f]) {
			t.Fatalf("naive and %s disagree on plan %s:\nnaive %d tuples, %s %d tuples",
				f, c.plan, results[famNaive].Len(), f, results[f].Len())
		}
	}

	for _, b := range budgets {
		for _, f := range families {
			rs, errS := evalWays(c, f, guard.Limits{MaxIntermediateRows: b, Parallelism: 1})
			rp, errP := evalWays(c, f, guard.Limits{MaxIntermediateRows: b, Parallelism: 8})
			if (errS == nil) != (errP == nil) {
				t.Fatalf("%s budget %d: serial err %v, parallel err %v (plan %s)",
					f, b, errS, errP, c.plan)
			}
			if errS != nil {
				if !errors.Is(errS, guard.ErrBudgetExceeded) || !errors.Is(errP, guard.ErrBudgetExceeded) {
					t.Fatalf("%s budget %d: unexpected errors %v / %v", f, b, errS, errP)
				}
				continue
			}
			sameRelation(t, f.String()+" under budget", rs, rp)
		}
	}
}

// TestDifferentialRandomized runs 1000 randomized small cases through
// all six evaluation modes, with budget parity probed on every tenth.
func TestDifferentialRandomized(t *testing.T) {
	const cases = 1000
	for i := 0; i < cases; i++ {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		c := genCase(rng, 0)
		var budgets []int64
		if i%10 == 0 {
			budgets = []int64{37, 500}
		}
		checkCase(t, c, budgets)
	}
}

// relationsEqualExact is sameRelation as an error (callable from reader
// goroutines, where t.Fatalf is not allowed).
func relationsEqualExact(a, b *relation.Relation) error {
	if len(a.Attrs) != len(b.Attrs) {
		return fmt.Errorf("attrs differ: %v vs %v", a.Attrs, b.Attrs)
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return fmt.Errorf("attrs differ: %v vs %v", a.Attrs, b.Attrs)
		}
	}
	at, bt := a.Tuples(), b.Tuples()
	if len(at) != len(bt) {
		return fmt.Errorf("cardinality differs: %d vs %d", len(at), len(bt))
	}
	for i := range at {
		if !at[i].Equal(bt[i]) {
			return fmt.Errorf("tuple %d differs: %v vs %v", i, at[i], bt[i])
		}
	}
	return nil
}

// mutateVersioned applies one random mutation round to the versioned
// database: a handful of inserts with fresh keys (so they always land)
// and occasionally a delete by key residue. seq supplies fresh key
// values and advances past every key ever used.
func mutateVersioned(rng *rand.Rand, vrels map[string]*relation.Versioned, names []string, seq *int64) {
	for k := 2 + rng.Intn(3); k > 0; k-- {
		name := names[rng.Intn(len(names))]
		vr := vrels[name]
		tup := make(relation.Tuple, vr.Arity())
		*seq++
		tup[0] = value.Int(*seq)
		for j := 1; j < vr.Arity(); j++ {
			if stringCol(j) {
				tup[j] = value.String(fmt.Sprintf("s%d", rng.Intn(diffDomain)))
			} else {
				tup[j] = value.Int(int64(rng.Intn(diffDomain)))
			}
		}
		if _, err := vr.Insert(tup); err != nil {
			panic(err)
		}
	}
	if rng.Float64() < 0.4 {
		name := names[rng.Intn(len(names))]
		res := int64(rng.Intn(5))
		vrels[name].Delete(func(t relation.Tuple) bool { return t[0].AsInt()%5 == res })
	}
}

// TestDifferentialSnapshotReaders is the MVCC differential: a versioned
// database advances through a lineage of revisions while concurrent
// readers stay pinned at the version they captured. Every reader's
// answer — through every evaluator family, serial and parallel — must be
// tuple-for-tuple identical to a serial evaluation at that version
// computed before any concurrency began. The writer keeps mutating
// (advancing the shared append frontier past every pinned prefix)
// while the readers run, so under -race this also proves pinned
// evaluation never touches writer state.
func TestDifferentialSnapshotReaders(t *testing.T) {
	cases := 8
	if testing.Short() {
		cases = 3
	}
	const nVersions = 6
	for ci := 0; ci < cases; ci++ {
		rng := rand.New(rand.NewSource(int64(5000 + ci)))
		c := genCase(rng, 0)

		vrels := make(map[string]*relation.Versioned, len(c.rels))
		var names []string
		for n, r := range c.rels {
			vrels[n] = relation.VersionedOf(r)
			names = append(names, n)
		}
		sort.Strings(names)
		seq := int64(10_000) // beyond any generated key

		pin := func() map[string]*relation.Relation {
			heads := make(map[string]*relation.Relation, len(vrels))
			for n, vr := range vrels {
				heads[n] = vr.Head()
			}
			return heads
		}

		versions := []map[string]*relation.Relation{pin()}
		for v := 1; v < nVersions; v++ {
			mutateVersioned(rng, vrels, names, &seq)
			versions = append(versions, pin())
		}

		// Serial ground truth per (version, family), before any concurrency.
		expected := make([][]*relation.Relation, len(versions))
		for vi, heads := range versions {
			expected[vi] = make([]*relation.Relation, len(families))
			for _, f := range families {
				r, err := evalWays(diffCase{rels: heads, plan: c.plan}, f, guard.Limits{Parallelism: 1})
				if err != nil {
					t.Fatalf("case %d version %d %s serial: %v (plan %s)", ci, vi, f, err, c.plan)
				}
				expected[vi][f] = r
			}
		}

		// Concurrency: one writer keeps advancing the lineage; readers
		// re-evaluate at their pinned versions and must reproduce the
		// ground truth exactly.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // writer
			defer wg.Done()
			wrng := rand.New(rand.NewSource(int64(7000 + ci)))
			for i := 0; i < 60; i++ {
				select {
				case <-stop:
					return
				default:
				}
				mutateVersioned(wrng, vrels, names, &seq)
			}
		}()
		errs := make(chan error, 16)
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				rrng := rand.New(rand.NewSource(int64(8000 + 100*ci + r)))
				for i := 0; i < 6; i++ {
					vi := rrng.Intn(len(versions))
					f := families[rrng.Intn(len(families))]
					limits := guard.Limits{Parallelism: 1}
					if rrng.Intn(2) == 1 {
						limits.Parallelism = 8
					}
					got, err := evalWays(diffCase{rels: versions[vi], plan: c.plan}, f, limits)
					if err != nil {
						errs <- fmt.Errorf("case %d version %d %s: %v", ci, vi, f, err)
						return
					}
					if err := relationsEqualExact(expected[vi][f], got); err != nil {
						errs <- fmt.Errorf("case %d version %d %s: pinned read diverged from serial ground truth: %v", ci, vi, f, err)
						return
					}
				}
			}(r)
		}
		wg.Wait()
		close(stop)
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	}
}

// TestDifferentialLargeParallel runs cases big enough to cross the
// parallel fan-out thresholds (product, selection, hash-join probe, and
// index-join probe), so the chunked code paths — not just their serial
// fallbacks — are the ones being cross-checked, budgets included.
func TestDifferentialLargeParallel(t *testing.T) {
	cases := 24
	if testing.Short() {
		cases = 6
	}
	for i := 0; i < cases; i++ {
		rng := rand.New(rand.NewSource(int64(9000 + i)))
		c := genCase(rng, 1200+rng.Intn(600))
		checkCase(t, c, []int64{1000, 20000})
	}
}
