package algebra

import (
	"math/rand"
	"testing"

	"authdb/internal/relation"
	"authdb/internal/value"
)

func vi(i int64) value.Value { return value.Int(i) }

// fixture builds a small two-relation database:
//
//	R(A, B): (1,10) (2,20) (3,30)
//	S(B, C): (10,x) (20,y) (40,z)
func fixture() (*relation.DBSchema, Source) {
	sch := relation.NewDBSchema()
	sch.Add(relation.MustSchema("R", []string{"A", "B"})) //nolint:errcheck
	sch.Add(relation.MustSchema("S", []string{"B", "C"})) //nolint:errcheck
	sch.Add(relation.MustSchema("T", []string{"D"}, "D")) //nolint:errcheck
	r := relation.New([]string{"A", "B"})
	r.MustInsert(vi(1), vi(10))
	r.MustInsert(vi(2), vi(20))
	r.MustInsert(vi(3), vi(30))
	s := relation.New([]string{"B", "C"})
	s.MustInsert(vi(10), value.String("x"))
	s.MustInsert(vi(20), value.String("y"))
	s.MustInsert(vi(40), value.String("z"))
	tt := relation.New([]string{"D"})
	tt.MustInsert(vi(1))
	return sch, MapSource(map[string]*relation.Relation{"R": r, "S": s, "T": tt})
}

func TestScanQualifiesAttrs(t *testing.T) {
	sch, src := fixture()
	out, err := EvalNaive(Scan{Rel: "R", Alias: "R"}, src)
	if err != nil {
		t.Fatal(err)
	}
	if out.Attrs[0] != "R.A" || out.Attrs[1] != "R.B" {
		t.Fatalf("attrs = %v", out.Attrs)
	}
	attrs, err := Scan{Rel: "R", Alias: "R:2"}.Attrs(sch)
	if err != nil || attrs[0] != "R:2.A" {
		t.Fatalf("Attrs = %v, %v", attrs, err)
	}
	if _, err := EvalNaive(Scan{Rel: "Z", Alias: "Z"}, src); err == nil {
		t.Error("unknown relation accepted")
	}
}

func TestSelectProjectProduct(t *testing.T) {
	_, src := fixture()
	plan := Project{
		In: Select{
			In:   Product{L: Scan{Rel: "R", Alias: "R"}, R: Scan{Rel: "S", Alias: "S"}},
			Pred: []Atom{{L: "R.B", Op: value.EQ, R: AttrOp("S.B")}},
		},
		Cols: []string{"R.A", "S.C"},
	}
	out, err := EvalNaive(plan, src)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("join rows = %d, want 2\n%s", out.Len(), out)
	}
	if !out.Contains(relation.Tuple{vi(1), value.String("x")}) ||
		!out.Contains(relation.Tuple{vi(2), value.String("y")}) {
		t.Fatalf("join content wrong\n%s", out)
	}
}

func TestCompilePredErrors(t *testing.T) {
	if _, err := CompilePred([]string{"R.A"}, []Atom{{L: "R.Z", Op: value.EQ, R: ConstOp(vi(1))}}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := CompilePred([]string{"R.A", "S.A"}, []Atom{{L: "A", Op: value.EQ, R: ConstOp(vi(1))}}); err == nil {
		t.Error("ambiguous bare attribute accepted")
	}
	// Unambiguous bare names resolve.
	pred, err := CompilePred([]string{"R.A", "S.B"}, []Atom{{L: "B", Op: value.GT, R: ConstOp(vi(5))}})
	if err != nil {
		t.Fatal(err)
	}
	if !pred(relation.Tuple{vi(0), vi(6)}) || pred(relation.Tuple{vi(0), vi(5)}) {
		t.Error("compiled predicate wrong")
	}
}

func TestNormalizeRoundTrip(t *testing.T) {
	plan := Project{
		In: Select{
			In:   Product{L: Scan{Rel: "R", Alias: "R"}, R: Scan{Rel: "S", Alias: "S"}},
			Pred: []Atom{{L: "R.B", Op: value.EQ, R: AttrOp("S.B")}},
		},
		Cols: []string{"R.A"},
	}
	p, err := Normalize(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Scans) != 2 || len(p.Preds) != 1 || len(p.Cols) != 1 {
		t.Fatalf("normalized = %+v", p)
	}
	_, src := fixture()
	a, err := EvalNaive(plan, src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvalNaive(p.Node(), src)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("Node() round trip changes semantics")
	}
}

func TestNormalizeRejectsInnerProjection(t *testing.T) {
	bad := Product{
		L: Project{In: Scan{Rel: "R", Alias: "R"}, Cols: []string{"R.A"}},
		R: Scan{Rel: "S", Alias: "S"},
	}
	if _, err := Normalize(bad); err == nil {
		t.Error("projection below a product must be rejected")
	}
	bad2 := Select{
		In:   Project{In: Scan{Rel: "R", Alias: "R"}, Cols: []string{"R.A"}},
		Pred: []Atom{{L: "R.A", Op: value.EQ, R: ConstOp(vi(1))}},
	}
	if _, err := Normalize(bad2); err == nil {
		t.Error("projection below a selection must be rejected")
	}
}

func TestPSJHelpers(t *testing.T) {
	sch, _ := fixture()
	p := &PSJ{
		Scans: []Scan{{Rel: "R", Alias: "R"}, {Rel: "S", Alias: "S"}},
		Preds: []Atom{{L: "R.B", Op: value.EQ, R: AttrOp("S.B")}},
		Cols:  []string{"R.A"},
	}
	attrs, err := p.Attrs(sch)
	if err != nil || len(attrs) != 4 {
		t.Fatalf("Attrs = %v, %v", attrs, err)
	}
	rels := p.Relations()
	if !rels["R"] || !rels["S"] || len(rels) != 2 {
		t.Fatalf("Relations = %v", rels)
	}
	if p.String() == "" {
		t.Error("String empty")
	}
}

// randPSJ builds a random conjunctive query over the fixture schema.
func randPSJ(r *rand.Rand) *PSJ {
	p := &PSJ{}
	rels := []string{"R", "S", "T"}
	n := 1 + r.Intn(3)
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		rel := rels[r.Intn(len(rels))]
		counts[rel]++
		alias := rel
		if counts[rel] > 1 {
			alias = rel + ":" + string(rune('0'+counts[rel]))
		}
		p.Scans = append(p.Scans, Scan{Rel: rel, Alias: alias})
	}
	attrsOf := map[string][]string{"R": {"A", "B"}, "S": {"B", "C"}, "T": {"D"}}
	var all []string
	for _, s := range p.Scans {
		for _, a := range attrsOf[s.Rel] {
			all = append(all, s.Alias+"."+a)
		}
	}
	// Random predicates: a mix of attr-const and attr-attr.
	for i := 0; i < r.Intn(3); i++ {
		op := value.Comparators[r.Intn(len(value.Comparators))]
		l := all[r.Intn(len(all))]
		if r.Intn(2) == 0 {
			p.Preds = append(p.Preds, Atom{L: l, Op: op, R: ConstOp(vi(int64(r.Intn(45))))})
		} else {
			p.Preds = append(p.Preds, Atom{L: l, Op: op, R: AttrOp(all[r.Intn(len(all))])})
		}
	}
	// Random non-empty projection.
	k := 1 + r.Intn(len(all))
	perm := r.Perm(len(all))
	for i := 0; i < k; i++ {
		p.Cols = append(p.Cols, all[perm[i]])
	}
	return p
}

// TestNaiveOptimizedAgree is the executor equivalence property: for random
// conjunctive queries the pushdown/hash-join evaluator must produce
// exactly the naive normal-form result.
func TestNaiveOptimizedAgree(t *testing.T) {
	_, src := fixture()
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 400; i++ {
		p := randPSJ(r)
		naive, err := EvalNaive(p.Node(), src)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := EvalOptimized(p, src)
		if err != nil {
			t.Fatal(err)
		}
		if !naive.Equal(opt) {
			t.Fatalf("executors disagree on %s:\nnaive:\n%s\noptimized:\n%s", p, naive, opt)
		}
	}
}

func TestEvalOptimizedCartesianFallback(t *testing.T) {
	_, src := fixture()
	p := &PSJ{
		Scans: []Scan{{Rel: "R", Alias: "R"}, {Rel: "T", Alias: "T"}},
		Cols:  []string{"R.A", "T.D"},
	}
	out, err := EvalOptimized(p, src)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("cartesian rows = %d, want 3", out.Len())
	}
}

func TestEvalOptimizedThetaJoin(t *testing.T) {
	_, src := fixture()
	p := &PSJ{
		Scans: []Scan{{Rel: "R", Alias: "R"}, {Rel: "S", Alias: "S"}},
		Preds: []Atom{{L: "R.B", Op: value.LT, R: AttrOp("S.B")}},
		Cols:  []string{"R.A", "S.B"},
	}
	naive, err := EvalNaive(p.Node(), src)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := EvalOptimized(p, src)
	if err != nil {
		t.Fatal(err)
	}
	if !naive.Equal(opt) {
		t.Fatal("theta join disagrees")
	}
}

func TestEmptyQueryRejected(t *testing.T) {
	_, src := fixture()
	if _, err := EvalOptimized(&PSJ{}, src); err == nil {
		t.Error("empty query accepted")
	}
}
