package algebra

import (
	"fmt"
	"sync"

	"authdb/internal/guard"
	"authdb/internal/relation"
)

// Parallel execution of the guarded operators. Each operator partitions
// its outer (or only) input into contiguous chunks, one bounded worker
// per chunk, and merges the per-chunk outputs in chunk order — so the
// result relation is tuple-for-tuple identical to serial evaluation.
// Every worker accounts its rows against the shared guard, whose
// counters are atomic; the budget therefore trips iff it would trip
// serially (the accounted totals are the same), which the differential
// test suite asserts over randomized plans.
const (
	// parallelMinWork is the minimum number of output rows a product
	// must be about to materialize before fan-out pays for itself.
	parallelMinWork = 2048
	// parallelMinRows is the minimum input size for fanning out a
	// selection or a hash-join probe.
	parallelMinRows = 1024
)

// runChunks splits [0,n) into at most par contiguous chunks and runs fn
// on each concurrently. The first error in chunk order is returned; a
// panicking worker is contained and surfaces as an error rather than
// crashing the process (the session-boundary recover only covers the
// statement goroutine).
func runChunks(n, par int, fn func(chunk, lo, hi int) error) error {
	if par > n {
		par = n
	}
	errs := make([]error, par)
	var wg sync.WaitGroup
	for ci := 0; ci < par; ci++ {
		lo, hi := ci*n/par, (ci+1)*n/par
		wg.Add(1)
		go func(ci, lo, hi int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[ci] = fmt.Errorf("internal error in parallel evaluator: %v", p)
				}
			}()
			errs[ci] = fn(ci, lo, hi)
		}(ci, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// mergeChunks appends the per-chunk row buffers, in chunk order, into a
// fresh relation. Rows are unique by construction (products, joins, and
// selections of proper sets), so the no-dedup Append path applies.
func mergeChunks(attrs []string, parts [][]relation.Tuple) *relation.Relation {
	out := relation.New(attrs)
	for _, rows := range parts {
		for _, row := range rows {
			out.Append(row)
		}
	}
	return out
}

// parallelProduct partitions the outer side of a cartesian product.
func parallelProduct(l, r *relation.Relation, g *guard.Guard, par int) (*relation.Relation, error) {
	lt, rt := l.Tuples(), r.Tuples()
	parts := make([][]relation.Tuple, min(par, len(lt)))
	err := runChunks(len(lt), par, func(ci, lo, hi int) error {
		rows := make([]relation.Tuple, 0, (hi-lo)*len(rt))
		for _, a := range lt[lo:hi] {
			for _, b := range rt {
				if err := g.Add(1); err != nil {
					return err
				}
				row := make(relation.Tuple, 0, len(a)+len(b))
				rows = append(rows, append(append(row, a...), b...))
			}
		}
		parts[ci] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	attrs := append(append([]string(nil), l.Attrs...), r.Attrs...)
	return mergeChunks(attrs, parts), nil
}

// parallelSelect partitions the input of a selection.
func parallelSelect(in *relation.Relation, pred func(relation.Tuple) bool, g *guard.Guard, par int) (*relation.Relation, error) {
	ts := in.Tuples()
	parts := make([][]relation.Tuple, min(par, len(ts)))
	err := runChunks(len(ts), par, func(ci, lo, hi int) error {
		var rows []relation.Tuple
		for _, t := range ts[lo:hi] {
			if err := g.Add(1); err != nil {
				return err
			}
			if pred(t) {
				rows = append(rows, t)
			}
		}
		parts[ci] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mergeChunks(in.Attrs, parts), nil
}

// parallelIndexProbe partitions the probe side of an index nested-loop
// join. The inner relation's index cache is mutex-protected, and the
// first chunk's first probe may build it; after that every worker reads
// the same shared entry.
func parallelIndexProbe(l, r *relation.Relation, li, ri []int, g *guard.Guard, par int) (*relation.Relation, error) {
	lt := l.Tuples()
	parts := make([][]relation.Tuple, min(par, len(lt)))
	err := runChunks(len(lt), par, func(ci, lo, hi int) error {
		var rows []relation.Tuple
		for _, t := range lt[lo:hi] {
			if err := g.Check(); err != nil {
				return err
			}
			for _, u := range r.LookupEq(ri[0], t[li[0]]) {
				if !restEqsMatch(t, u, li, ri) {
					continue
				}
				if err := g.Add(1); err != nil {
					return err
				}
				row := make(relation.Tuple, 0, len(t)+len(u))
				rows = append(rows, append(append(row, t...), u...))
			}
		}
		parts[ci] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	attrs := append(append([]string(nil), l.Attrs...), r.Attrs...)
	return mergeChunks(attrs, parts), nil
}

// parallelProbe partitions the probe side of a hash join over an
// already-built (read-only) hash table.
func parallelProbe(l, r *relation.Relation, li []int, build map[string][]relation.Tuple,
	key func(relation.Tuple, []int) string, g *guard.Guard, par int) (*relation.Relation, error) {
	lt := l.Tuples()
	parts := make([][]relation.Tuple, min(par, len(lt)))
	err := runChunks(len(lt), par, func(ci, lo, hi int) error {
		var rows []relation.Tuple
		for _, t := range lt[lo:hi] {
			if err := g.Check(); err != nil {
				return err
			}
			for _, u := range build[key(t, li)] {
				if err := g.Add(1); err != nil {
					return err
				}
				row := make(relation.Tuple, 0, len(t)+len(u))
				rows = append(rows, append(append(row, t...), u...))
			}
		}
		parts[ci] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	attrs := append(append([]string(nil), l.Attrs...), r.Attrs...)
	return mergeChunks(attrs, parts), nil
}
