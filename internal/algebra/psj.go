package algebra

import (
	"fmt"

	"authdb/internal/relation"
)

// PSJ is a conjunctive query in the paper's normal form: a sequence of
// products (the scans, in order), followed by selections (the conjunction
// of atoms), ending with projections (the output columns). Every
// conjunctive relational calculus expression has this form (§2), and §4.1
// requires the meta-side execution to use exactly this shape.
type PSJ struct {
	Scans []Scan
	Preds []Atom
	Cols  []string
}

// Normalize flattens a conjunctive plan tree into PSJ form. Only trees
// whose projections are outermost and whose selections sit above the
// products they reference can be represented; the trees produced by the
// query compiler always qualify.
func Normalize(n Node) (*PSJ, error) {
	p := &PSJ{}
	cols, err := flatten(n, p)
	if err != nil {
		return nil, err
	}
	p.Cols = cols
	return p, nil
}

// flatten walks the tree; it returns the projection column list if the
// node ends in projections, or nil when the node's natural output is the
// full product width.
func flatten(n Node, p *PSJ) ([]string, error) {
	switch n := n.(type) {
	case Scan:
		p.Scans = append(p.Scans, n)
		return nil, nil
	case Product:
		lc, err := flatten(n.L, p)
		if err != nil {
			return nil, err
		}
		rc, err := flatten(n.R, p)
		if err != nil {
			return nil, err
		}
		if lc != nil || rc != nil {
			return nil, fmt.Errorf("cannot normalize: projection below a product")
		}
		return nil, nil
	case Select:
		c, err := flatten(n.In, p)
		if err != nil {
			return nil, err
		}
		if c != nil {
			return nil, fmt.Errorf("cannot normalize: projection below a selection")
		}
		p.Preds = append(p.Preds, n.Pred...)
		return nil, nil
	case Project:
		if _, err := flatten(n.In, p); err != nil {
			return nil, err
		}
		return n.Cols, nil
	default:
		return nil, fmt.Errorf("unknown plan node %T", n)
	}
}

// Node rebuilds the canonical plan tree: left-deep products, one selection,
// one projection.
func (p *PSJ) Node() Node {
	if len(p.Scans) == 0 {
		panic("algebra: PSJ with no scans")
	}
	var n Node = p.Scans[0]
	for _, s := range p.Scans[1:] {
		n = Product{L: n, R: s}
	}
	if len(p.Preds) > 0 {
		n = Select{In: n, Pred: p.Preds}
	}
	if p.Cols != nil {
		n = Project{In: n, Cols: p.Cols}
	}
	return n
}

// Attrs returns the full product-width attribute list (before projection).
func (p *PSJ) Attrs(sch *relation.DBSchema) ([]string, error) {
	var out []string
	for _, s := range p.Scans {
		a, err := (s).Attrs(sch)
		if err != nil {
			return nil, err
		}
		out = append(out, a...)
	}
	return out, nil
}

// Relations returns the set of distinct base relations the query scans.
func (p *PSJ) Relations() map[string]bool {
	out := make(map[string]bool, len(p.Scans))
	for _, s := range p.Scans {
		out[s.Rel] = true
	}
	return out
}

// String renders the query plan compactly for logs and errors.
func (p *PSJ) String() string {
	s := "π("
	for i, c := range p.Cols {
		if i > 0 {
			s += ", "
		}
		s += c
	}
	s += ") σ("
	for i, a := range p.Preds {
		if i > 0 {
			s += " and "
		}
		s += a.String()
	}
	s += ") ×("
	for i, sc := range p.Scans {
		if i > 0 {
			s += ", "
		}
		if sc.Alias != sc.Rel {
			s += sc.Alias
		} else {
			s += sc.Rel
		}
	}
	return s + ")"
}
