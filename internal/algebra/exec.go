package algebra

import (
	"fmt"
	"strings"
)

// ExecOptions tunes access-path selection in EvalPSJ.
type ExecOptions struct {
	// UseIndexes enables the secondary-index access paths — hash-equality
	// lookups, ordered range scans, index nested-loop joins — and the
	// stats-informed greedy join ordering. Off, EvalPSJ is the plain
	// pushdown + hash-join evaluator (the PR-2 strategy minus index
	// lookups), kept as the comparison baseline for the differential
	// tests and the bench harness.
	UseIndexes bool
}

// Access-path labels recorded per scan in a Trace.
const (
	PathFullScan   = "full scan"
	PathHashEq     = "hash eq"
	PathIndexRange = "index range"
)

// Join-strategy labels recorded per join in a Trace.
const (
	JoinHash    = "hash join"
	JoinIndex   = "index join"
	JoinProduct = "product"
)

// ScanTrace records how one scan of the plan was served.
type ScanTrace struct {
	Alias string
	Rel   string
	Path  string   // PathFullScan, PathHashEq, PathIndexRange
	Atoms []string // atoms served by the access path itself (not residuals)
	In    int      // base relation rows
	Out   int      // rows surviving the scan's local predicates
}

// JoinTrace records one step of the greedy left-deep join.
type JoinTrace struct {
	Kind string // JoinHash, JoinIndex, JoinProduct
	With string // alias of the part joined in
	On   []string
	Out  int
}

// Trace collects the access-path decisions of one EvalPSJ run, for
// EXPLAIN output and tests. A nil *Trace disables collection.
type Trace struct {
	Scans []ScanTrace
	Joins []JoinTrace
}

// Lines renders the trace, one decision per line.
func (t *Trace) Lines() []string {
	out := make([]string, 0, len(t.Scans)+len(t.Joins))
	for _, s := range t.Scans {
		name := s.Alias
		if s.Rel != s.Alias {
			name += " (" + s.Rel + ")"
		}
		atoms := ""
		if len(s.Atoms) > 0 {
			atoms = " [" + strings.Join(s.Atoms, " and ") + "]"
		}
		out = append(out, fmt.Sprintf("scan %s: %s%s — %d of %d rows", name, s.Path, atoms, s.Out, s.In))
	}
	for _, j := range t.Joins {
		on := ""
		if len(j.On) > 0 {
			on = " on " + strings.Join(j.On, " and ")
		}
		out = append(out, fmt.Sprintf("join %s: %s%s — %d rows", j.With, j.Kind, on, j.Out))
	}
	return out
}

func (t *Trace) scan(s ScanTrace) {
	if t != nil {
		t.Scans = append(t.Scans, s)
	}
}

func (t *Trace) join(j JoinTrace) {
	if t != nil {
		t.Joins = append(t.Joins, j)
	}
}

func atomStrings(atoms []Atom) []string {
	out := make([]string, len(atoms))
	for i, a := range atoms {
		out[i] = a.String()
	}
	return out
}
