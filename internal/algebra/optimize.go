package algebra

import (
	"fmt"
	"strings"

	"authdb/internal/guard"
	"authdb/internal/relation"
	"authdb/internal/value"
)

// EvalOptimized evaluates a PSJ query with predicate pushdown and hash
// equi-joins. This is the "different strategy" §4.1 allows for the actual
// relations, where "optimality is essential". The result is identical, as
// a set, to EvalNaive on the same query.
func EvalOptimized(p *PSJ, src Source) (*relation.Relation, error) {
	return EvalOptimizedGuarded(p, src, nil)
}

// EvalOptimizedGuarded is EvalOptimized under a cancellation-and-budget
// guard: local filters, join and product outputs, residual selections,
// and the final projection are accounted per tuple batch, so a hostile
// query (e.g. an unbounded self-product) fails with a typed error while
// the engine keeps serving. A nil guard is unlimited.
func EvalOptimizedGuarded(p *PSJ, src Source, g *guard.Guard) (*relation.Relation, error) {
	if len(p.Scans) == 0 {
		return nil, fmt.Errorf("empty query")
	}
	// Load each scan and push down the atoms local to it.
	parts := make([]*relation.Relation, len(p.Scans))
	aliasOf := make(map[string]int, len(p.Scans))
	for i, s := range p.Scans {
		base, err := src(s.Rel)
		if err != nil {
			return nil, err
		}
		parts[i] = base.Rename(relation.QualifyAttrs(s.Alias, base.Attrs))
		aliasOf[s.Alias] = i
	}
	local := make([][]Atom, len(p.Scans))
	var global []Atom
	for _, a := range p.Preds {
		i, ok := atomScan(a, parts)
		if ok {
			local[i] = append(local[i], a)
		} else {
			global = append(global, a)
		}
	}
	for i := range parts {
		if len(local[i]) == 0 {
			continue
		}
		filtered, err := applyLocal(parts[i], local[i], g)
		if err != nil {
			return nil, err
		}
		parts[i] = filtered
	}

	// Greedy left-deep join: start with the first scan; at each step prefer
	// a part connected to the current result by an equality atom (hash
	// join), falling back to a cartesian product.
	cur := parts[0]
	used := make([]bool, len(parts))
	used[0] = true
	remainingEq, remainingOther := splitEq(global)
	for joined := 1; joined < len(parts); joined++ {
		next, eqs := pickNext(cur, parts, used, remainingEq)
		var err error
		if len(eqs) > 0 {
			cur, err = hashJoin(cur, parts[next], eqs, g)
			remainingEq = removeAtoms(remainingEq, eqs)
		} else {
			cur, err = guardedProduct(cur, parts[next], g)
		}
		if err != nil {
			return nil, err
		}
		used[next] = true
		// Apply any remaining predicates that became resolvable.
		remainingEq, err = applyResolvable(&cur, remainingEq, g)
		if err != nil {
			return nil, err
		}
		remainingOther, err = applyResolvable(&cur, remainingOther, g)
		if err != nil {
			return nil, err
		}
	}
	rest := append(append([]Atom(nil), remainingEq...), remainingOther...)
	if len(rest) > 0 {
		pred, err := CompilePred(cur.Attrs, rest)
		if err != nil {
			return nil, err
		}
		cur, err = guardedSelect(cur, pred, g)
		if err != nil {
			return nil, err
		}
	}
	idx := make([]int, len(p.Cols))
	for i, c := range p.Cols {
		j, err := resolve(cur.Attrs, c)
		if err != nil {
			return nil, err
		}
		idx[i] = j
	}
	return guardedProject(cur, idx, g)
}

// applyLocal filters one scan by its local atoms, serving the first
// equality-with-constant atom from the relation's secondary hash index
// (built lazily, invalidated by mutation) and the remainder by
// evaluation.
func applyLocal(part *relation.Relation, atoms []Atom, g *guard.Guard) (*relation.Relation, error) {
	eqAt := -1
	var eqIdx int
	for k, a := range atoms {
		if a.Op != value.EQ || a.R.IsAttr {
			continue
		}
		j, err := resolve(part.Attrs, a.L)
		if err != nil {
			return nil, err
		}
		eqAt, eqIdx = k, j
		break
	}
	if eqAt < 0 {
		pred, err := CompilePred(part.Attrs, atoms)
		if err != nil {
			return nil, err
		}
		return guardedSelect(part, pred, g)
	}
	rest := append(append([]Atom(nil), atoms[:eqAt]...), atoms[eqAt+1:]...)
	pred := func(relation.Tuple) bool { return true }
	if len(rest) > 0 {
		var err error
		pred, err = CompilePred(part.Attrs, rest)
		if err != nil {
			return nil, err
		}
	}
	out := relation.New(part.Attrs)
	for _, t := range part.LookupEq(eqIdx, atoms[eqAt].R.Const) {
		if err := g.Add(1); err != nil {
			return nil, err
		}
		if pred(t) {
			out.Insert(t) //nolint:errcheck // arity correct by construction
		}
	}
	return out, nil
}

// atomScan reports which single scan an atom is local to, if any.
func atomScan(a Atom, parts []*relation.Relation) (int, bool) {
	li := findPart(parts, a.L)
	if li < 0 {
		return 0, false
	}
	if !a.R.IsAttr {
		return li, true
	}
	ri := findPart(parts, a.R.Attr)
	if ri == li {
		return li, true
	}
	return 0, false
}

func findPart(parts []*relation.Relation, attr string) int {
	for i, p := range parts {
		if hasAttr(p.Attrs, attr) {
			return i
		}
	}
	return -1
}

func hasAttr(attrs []string, a string) bool {
	for _, x := range attrs {
		if x == a {
			return true
		}
	}
	return false
}

func splitEq(atoms []Atom) (eq, other []Atom) {
	for _, a := range atoms {
		if a.Op == value.EQ && a.R.IsAttr {
			eq = append(eq, a)
		} else {
			other = append(other, a)
		}
	}
	return eq, other
}

// pickNext chooses the unused part connected to cur by the most equality
// atoms (0 means a cartesian product is unavoidable this step).
func pickNext(cur *relation.Relation, parts []*relation.Relation, used []bool, eqs []Atom) (int, []Atom) {
	bestIdx, bestEqs := -1, []Atom(nil)
	for i := range parts {
		if used[i] {
			continue
		}
		var conn []Atom
		for _, a := range eqs {
			l, r := a.L, a.R.Attr
			if (hasAttr(cur.Attrs, l) && hasAttr(parts[i].Attrs, r)) ||
				(hasAttr(cur.Attrs, r) && hasAttr(parts[i].Attrs, l)) {
				conn = append(conn, a)
			}
		}
		if bestIdx < 0 || len(conn) > len(bestEqs) {
			bestIdx, bestEqs = i, conn
		}
	}
	return bestIdx, bestEqs
}

func removeAtoms(all, drop []Atom) []Atom {
	out := all[:0:0]
outer:
	for _, a := range all {
		for _, d := range drop {
			if a == d {
				continue outer
			}
		}
		out = append(out, a)
	}
	return out
}

// applyResolvable filters *cur by every atom fully resolvable against its
// attributes and returns the atoms that remain outstanding.
func applyResolvable(cur **relation.Relation, atoms []Atom, g *guard.Guard) ([]Atom, error) {
	var ready, notReady []Atom
	for _, a := range atoms {
		ok := hasAttr((*cur).Attrs, a.L) && (!a.R.IsAttr || hasAttr((*cur).Attrs, a.R.Attr))
		if ok {
			ready = append(ready, a)
		} else {
			notReady = append(notReady, a)
		}
	}
	if len(ready) > 0 {
		pred, err := CompilePred((*cur).Attrs, ready)
		if err == nil {
			sel, serr := guardedSelect(*cur, pred, g)
			if serr != nil {
				return nil, serr
			}
			*cur = sel
		} else {
			// Ambiguity means the atom was not truly resolvable; defer it.
			notReady = append(notReady, ready...)
		}
	}
	return notReady, nil
}

// hashJoin joins l and r on the given equality atoms (each relating an
// attribute of l to an attribute of r, in either order), accounting the
// build side and every output row against the guard.
func hashJoin(l, r *relation.Relation, eqs []Atom, g *guard.Guard) (*relation.Relation, error) {
	li := make([]int, len(eqs))
	ri := make([]int, len(eqs))
	for k, a := range eqs {
		x, y := a.L, a.R.Attr
		if !hasAttr(l.Attrs, x) {
			x, y = y, x
		}
		li[k] = mustIndex(l.Attrs, x)
		ri[k] = mustIndex(r.Attrs, y)
	}
	key := func(t relation.Tuple, idx []int) string {
		var b strings.Builder
		for _, i := range idx {
			b.WriteByte(byte(t[i].Kind()))
			b.WriteString(t[i].String())
			b.WriteByte(0)
		}
		return b.String()
	}
	build := make(map[string][]relation.Tuple)
	for _, t := range r.Tuples() {
		if err := g.Add(1); err != nil {
			return nil, err
		}
		k := key(t, ri)
		build[k] = append(build[k], t)
	}
	// The probe side fans out across the guard's Parallelism; the built
	// hash table is read-only from here on.
	if par := g.Parallelism(); par > 1 && l.Len() >= parallelMinRows {
		return parallelProbe(l, r, li, build, key, g, par)
	}
	out := relation.New(append(append([]string(nil), l.Attrs...), r.Attrs...))
	for _, t := range l.Tuples() {
		if err := g.Check(); err != nil {
			return nil, err
		}
		for _, u := range build[key(t, li)] {
			if err := g.Add(1); err != nil {
				return nil, err
			}
			row := make(relation.Tuple, 0, len(t)+len(u))
			row = append(append(row, t...), u...)
			out.Insert(row) //nolint:errcheck // arity correct by construction
		}
	}
	return out, nil
}

func mustIndex(attrs []string, a string) int {
	for i, x := range attrs {
		if x == a {
			return i
		}
	}
	panic("algebra: attribute vanished: " + a)
}
