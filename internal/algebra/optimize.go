package algebra

import (
	"fmt"
	"strings"

	"authdb/internal/guard"
	"authdb/internal/relation"
	"authdb/internal/value"
)

// indexJoinMinInner is the smallest inner (indexed) side for which an
// index nested-loop join is considered: below it the plain hash build is
// as cheap as the index probe bookkeeping.
const indexJoinMinInner = 64

// EvalOptimized evaluates a PSJ query with predicate pushdown, secondary
// indexes, and hash equi-joins. This is the "different strategy" §4.1
// allows for the actual relations, where "optimality is essential". The
// result is identical, as a set, to EvalNaive on the same query.
func EvalOptimized(p *PSJ, src Source) (*relation.Relation, error) {
	return EvalPSJ(p, src, nil, ExecOptions{UseIndexes: true}, nil)
}

// EvalOptimizedGuarded is EvalOptimized under a cancellation-and-budget
// guard: local filters, join and product outputs, residual selections,
// and the final projection are accounted per tuple batch, so a hostile
// query (e.g. an unbounded self-product) fails with a typed error while
// the engine keeps serving. A nil guard is unlimited.
func EvalOptimizedGuarded(p *PSJ, src Source, g *guard.Guard) (*relation.Relation, error) {
	return EvalPSJ(p, src, g, ExecOptions{UseIndexes: true}, nil)
}

// EvalPSJ evaluates a PSJ query choosing an access path per scan and a
// strategy per join step, recording its decisions in tr (nil disables).
//
// Per scan: an equality-with-constant atom is served from the relation's
// lazily built secondary hash index; otherwise comparison-with-constant
// atoms on one attribute fold into a single ordered-index range lookup;
// otherwise the scan is full, with the local predicate evaluated per row.
// Joins run greedily left-deep, ordered by distinct-count cardinality
// estimates, each step either a hash join, an index nested-loop join
// against an unfiltered base relation's persistent index, or (when no
// equality connects the sides) a guarded cartesian product. All paths
// account rows against the same guard and inherit its Parallelism
// fan-out; with opt.UseIndexes off the evaluator reduces to the plain
// pushdown + hash-join strategy and legacy join order.
func EvalPSJ(p *PSJ, src Source, g *guard.Guard, opt ExecOptions, tr *Trace) (*relation.Relation, error) {
	if len(p.Scans) == 0 {
		return nil, fmt.Errorf("empty query")
	}
	// Load each scan and push down the atoms local to it. A part that
	// keeps no local atoms stays the shared base rename, so later index
	// lookups on it hit the base relation's persistent cache.
	parts := make([]*relation.Relation, len(p.Scans))
	filtered := make([]bool, len(p.Scans))
	for i, s := range p.Scans {
		base, err := src(s.Rel)
		if err != nil {
			return nil, err
		}
		parts[i] = base.Rename(relation.QualifyAttrs(s.Alias, base.Attrs))
	}
	local := make([][]Atom, len(p.Scans))
	var global []Atom
	for _, a := range p.Preds {
		i, ok := atomScan(a, parts)
		if ok {
			local[i] = append(local[i], a)
		} else {
			global = append(global, a)
		}
	}
	for i := range parts {
		if len(local[i]) == 0 {
			tr.scan(ScanTrace{Alias: p.Scans[i].Alias, Rel: p.Scans[i].Rel,
				Path: PathFullScan, In: parts[i].Len(), Out: parts[i].Len()})
			continue
		}
		in := parts[i].Len()
		out, path, served, err := applyLocal(parts[i], local[i], g, opt.UseIndexes)
		if err != nil {
			return nil, err
		}
		parts[i] = out
		filtered[i] = true
		tr.scan(ScanTrace{Alias: p.Scans[i].Alias, Rel: p.Scans[i].Rel,
			Path: path, Atoms: served, In: in, Out: out.Len()})
	}

	// Greedy left-deep join. With indexes the start is the smallest part
	// and each step picks the connected part with the lowest estimated
	// output (|cur|·|part| / distinct values of the part's join key);
	// without, the legacy order (first scan, then most equality atoms).
	start := 0
	if opt.UseIndexes {
		for i := 1; i < len(parts); i++ {
			if parts[i].Len() < parts[start].Len() {
				start = i
			}
		}
	}
	cur := parts[start]
	used := make([]bool, len(parts))
	used[start] = true
	remainingEq, remainingOther := splitEq(global)
	for joined := 1; joined < len(parts); joined++ {
		var next int
		var eqs []Atom
		if opt.UseIndexes {
			next, eqs = pickNextStats(cur, parts, used, remainingEq)
		} else {
			next, eqs = pickNext(cur, parts, used, remainingEq)
		}
		var err error
		kind := JoinProduct
		switch {
		case len(eqs) > 0 && opt.UseIndexes && !filtered[next] &&
			parts[next].Len() >= indexJoinMinInner && cur.Len()*4 <= parts[next].Len():
			// The inner side is an unfiltered base rename: probing its
			// persistent per-attribute index beats building a transient
			// hash table when the probe side is small.
			kind = JoinIndex
			cur, err = indexJoin(cur, parts[next], eqs, g)
			remainingEq = removeAtoms(remainingEq, eqs)
		case len(eqs) > 0:
			kind = JoinHash
			cur, err = hashJoin(cur, parts[next], eqs, g)
			remainingEq = removeAtoms(remainingEq, eqs)
		default:
			cur, err = guardedProduct(cur, parts[next], g)
		}
		if err != nil {
			return nil, err
		}
		used[next] = true
		tr.join(JoinTrace{Kind: kind, With: p.Scans[next].Alias, On: atomStrings(eqs), Out: cur.Len()})
		// Apply any remaining predicates that became resolvable.
		remainingEq, err = applyResolvable(&cur, remainingEq, g)
		if err != nil {
			return nil, err
		}
		remainingOther, err = applyResolvable(&cur, remainingOther, g)
		if err != nil {
			return nil, err
		}
	}
	rest := append(append([]Atom(nil), remainingEq...), remainingOther...)
	if len(rest) > 0 {
		pred, err := CompilePred(cur.Attrs, rest)
		if err != nil {
			return nil, err
		}
		cur, err = guardedSelect(cur, pred, g)
		if err != nil {
			return nil, err
		}
	}
	idx := make([]int, len(p.Cols))
	for i, c := range p.Cols {
		j, err := resolve(cur.Attrs, c)
		if err != nil {
			return nil, err
		}
		idx[i] = j
	}
	return guardedProject(cur, idx, g)
}

// applyLocal filters one scan by its local atoms, choosing an access
// path: the first equality-with-constant atom is served from the
// secondary hash index; failing that, every <,≤,>,≥-with-constant atom
// on one attribute folds into a single ordered-index range lookup; and
// failing that (or with useIdx off) the scan is full. Residual atoms are
// evaluated per retrieved row either way. It reports the path taken and
// the atoms the access path itself served.
func applyLocal(part *relation.Relation, atoms []Atom, g *guard.Guard, useIdx bool) (*relation.Relation, string, []string, error) {
	if useIdx {
		if out, served, err := tryHashPath(part, atoms, g); out != nil || err != nil {
			return out, PathHashEq, served, err
		}
		if out, served, err := tryRangePath(part, atoms, g); out != nil || err != nil {
			return out, PathIndexRange, served, err
		}
	}
	pred, err := CompilePred(part.Attrs, atoms)
	if err != nil {
		return nil, "", nil, err
	}
	out, err := guardedSelect(part, pred, g)
	return out, PathFullScan, nil, err
}

// tryHashPath serves the first equality-with-constant atom from the hash
// index; a nil relation with nil error means no such atom exists.
func tryHashPath(part *relation.Relation, atoms []Atom, g *guard.Guard) (*relation.Relation, []string, error) {
	eqAt := -1
	var eqIdx int
	for k, a := range atoms {
		if a.Op != value.EQ || a.R.IsAttr {
			continue
		}
		j, err := resolve(part.Attrs, a.L)
		if err != nil {
			return nil, nil, err
		}
		eqAt, eqIdx = k, j
		break
	}
	if eqAt < 0 {
		return nil, nil, nil
	}
	rest := append(append([]Atom(nil), atoms[:eqAt]...), atoms[eqAt+1:]...)
	out, err := filterRun(part, part.LookupEq(eqIdx, atoms[eqAt].R.Const), rest, g)
	return out, []string{atoms[eqAt].String()}, err
}

// tryRangePath folds every <,≤,>,≥-with-constant atom on the attribute
// of the first such atom into one ordered-index range lookup; a nil
// relation with nil error means no range atom exists.
func tryRangePath(part *relation.Relation, atoms []Atom, g *guard.Guard) (*relation.Relation, []string, error) {
	isRange := func(op value.Cmp) bool {
		return op == value.LT || op == value.LE || op == value.GT || op == value.GE
	}
	at := -1
	for _, a := range atoms {
		if !a.R.IsAttr && isRange(a.Op) {
			j, err := resolve(part.Attrs, a.L)
			if err != nil {
				return nil, nil, err
			}
			at = j
			break
		}
	}
	if at < 0 {
		return nil, nil, nil
	}
	var lo, hi *relation.RangeEnd
	var served []string
	var rest []Atom
	for _, a := range atoms {
		use := false
		if !a.R.IsAttr && isRange(a.Op) {
			j, err := resolve(part.Attrs, a.L)
			if err != nil {
				return nil, nil, err
			}
			use = j == at
		}
		if !use {
			rest = append(rest, a)
			continue
		}
		served = append(served, a.String())
		v := a.R.Const
		switch a.Op {
		case value.GE:
			lo = tighterLo(lo, &relation.RangeEnd{V: v})
		case value.GT:
			lo = tighterLo(lo, &relation.RangeEnd{V: v, Open: true})
		case value.LE:
			hi = tighterHi(hi, &relation.RangeEnd{V: v})
		case value.LT:
			hi = tighterHi(hi, &relation.RangeEnd{V: v, Open: true})
		}
	}
	out, err := filterRun(part, part.LookupRange(at, lo, hi), rest, g)
	return out, served, err
}

// tighterLo keeps the more restrictive lower bound (higher value; open
// beats closed at equal values).
func tighterLo(cur, cand *relation.RangeEnd) *relation.RangeEnd {
	if cur == nil {
		return cand
	}
	switch d := cand.V.Compare(cur.V); {
	case d > 0, d == 0 && cand.Open:
		return cand
	}
	return cur
}

// tighterHi keeps the more restrictive upper bound (lower value; open
// beats closed at equal values).
func tighterHi(cur, cand *relation.RangeEnd) *relation.RangeEnd {
	if cur == nil {
		return cand
	}
	switch d := cand.V.Compare(cur.V); {
	case d < 0, d == 0 && cand.Open:
		return cand
	}
	return cur
}

// filterRun materializes an index run through the residual atoms,
// accounting every retrieved tuple against the guard.
func filterRun(part *relation.Relation, run []relation.Tuple, rest []Atom, g *guard.Guard) (*relation.Relation, error) {
	pred := func(relation.Tuple) bool { return true }
	if len(rest) > 0 {
		var err error
		pred, err = CompilePred(part.Attrs, rest)
		if err != nil {
			return nil, err
		}
	}
	out := relation.New(part.Attrs)
	for _, t := range run {
		if err := g.Add(1); err != nil {
			return nil, err
		}
		if pred(t) {
			// The run is a subslice of one relation's distinct tuples, so
			// the filtered output is duplicate-free: the no-dedup Append
			// path applies (as in mergeChunks).
			out.Append(t)
		}
	}
	return out, nil
}

// atomScan reports which single scan an atom is local to, if any.
func atomScan(a Atom, parts []*relation.Relation) (int, bool) {
	li := findPart(parts, a.L)
	if li < 0 {
		return 0, false
	}
	if !a.R.IsAttr {
		return li, true
	}
	ri := findPart(parts, a.R.Attr)
	if ri == li {
		return li, true
	}
	return 0, false
}

func findPart(parts []*relation.Relation, attr string) int {
	for i, p := range parts {
		if hasAttr(p.Attrs, attr) {
			return i
		}
	}
	return -1
}

func hasAttr(attrs []string, a string) bool {
	for _, x := range attrs {
		if x == a {
			return true
		}
	}
	return false
}

func splitEq(atoms []Atom) (eq, other []Atom) {
	for _, a := range atoms {
		if a.Op == value.EQ && a.R.IsAttr {
			eq = append(eq, a)
		} else {
			other = append(other, a)
		}
	}
	return eq, other
}

// connAtoms returns the equality atoms relating cur to parts[i].
func connAtoms(cur, part *relation.Relation, eqs []Atom) []Atom {
	var conn []Atom
	for _, a := range eqs {
		l, r := a.L, a.R.Attr
		if (hasAttr(cur.Attrs, l) && hasAttr(part.Attrs, r)) ||
			(hasAttr(cur.Attrs, r) && hasAttr(part.Attrs, l)) {
			conn = append(conn, a)
		}
	}
	return conn
}

// pickNext chooses the unused part connected to cur by the most equality
// atoms (0 means a cartesian product is unavoidable this step).
func pickNext(cur *relation.Relation, parts []*relation.Relation, used []bool, eqs []Atom) (int, []Atom) {
	bestIdx, bestEqs := -1, []Atom(nil)
	for i := range parts {
		if used[i] {
			continue
		}
		conn := connAtoms(cur, parts[i], eqs)
		if bestIdx < 0 || len(conn) > len(bestEqs) {
			bestIdx, bestEqs = i, conn
		}
	}
	return bestIdx, bestEqs
}

// pickNextStats chooses the next part by cardinality estimate: among the
// parts connected to cur by an equality, the one minimizing
// |cur|·|part|/V(part, join key), with V the distinct-count statistic
// from the ordered index; a part with no connecting equality (cartesian
// product) is a last resort, smallest first. Ties break on scan order,
// so the plan is deterministic.
func pickNextStats(cur *relation.Relation, parts []*relation.Relation, used []bool, eqs []Atom) (int, []Atom) {
	bestIdx, bestEqs := -1, []Atom(nil)
	bestEst := 0.0
	for i := range parts {
		if used[i] {
			continue
		}
		conn := connAtoms(cur, parts[i], eqs)
		var est float64
		if len(conn) > 0 {
			distinct := 1
			for _, a := range conn {
				attr := a.R.Attr
				if hasAttr(parts[i].Attrs, a.L) {
					attr = a.L
				}
				if j, err := resolve(parts[i].Attrs, attr); err == nil {
					if d := parts[i].DistinctCount(j); d > distinct {
						distinct = d
					}
				}
			}
			est = float64(cur.Len()) * float64(parts[i].Len()) / float64(distinct)
		} else {
			// No join key: a product. Rank it after every joinable part
			// by estimating the full cross size against the whole input.
			est = 1e18 + float64(cur.Len())*float64(parts[i].Len())
		}
		if bestIdx < 0 || est < bestEst {
			bestIdx, bestEqs, bestEst = i, conn, est
		}
	}
	return bestIdx, bestEqs
}

func removeAtoms(all, drop []Atom) []Atom {
	out := all[:0:0]
outer:
	for _, a := range all {
		for _, d := range drop {
			if a == d {
				continue outer
			}
		}
		out = append(out, a)
	}
	return out
}

// applyResolvable filters *cur by every atom fully resolvable against its
// attributes and returns the atoms that remain outstanding.
func applyResolvable(cur **relation.Relation, atoms []Atom, g *guard.Guard) ([]Atom, error) {
	var ready, notReady []Atom
	for _, a := range atoms {
		ok := hasAttr((*cur).Attrs, a.L) && (!a.R.IsAttr || hasAttr((*cur).Attrs, a.R.Attr))
		if ok {
			ready = append(ready, a)
		} else {
			notReady = append(notReady, a)
		}
	}
	if len(ready) > 0 {
		pred, err := CompilePred((*cur).Attrs, ready)
		if err == nil {
			sel, serr := guardedSelect(*cur, pred, g)
			if serr != nil {
				return nil, serr
			}
			*cur = sel
		} else {
			// Ambiguity means the atom was not truly resolvable; defer it.
			notReady = append(notReady, ready...)
		}
	}
	return notReady, nil
}

// joinCols resolves the equality atoms of a join into column index pairs
// (li in l, ri in r), flipping atoms written in the other orientation.
func joinCols(l, r *relation.Relation, eqs []Atom) (li, ri []int) {
	li = make([]int, len(eqs))
	ri = make([]int, len(eqs))
	for k, a := range eqs {
		x, y := a.L, a.R.Attr
		if !hasAttr(l.Attrs, x) {
			x, y = y, x
		}
		li[k] = mustIndex(l.Attrs, x)
		ri[k] = mustIndex(r.Attrs, y)
	}
	return li, ri
}

// hashJoin joins l and r on the given equality atoms (each relating an
// attribute of l to an attribute of r, in either order), accounting the
// build side and every output row against the guard.
func hashJoin(l, r *relation.Relation, eqs []Atom, g *guard.Guard) (*relation.Relation, error) {
	li, ri := joinCols(l, r, eqs)
	key := func(t relation.Tuple, idx []int) string {
		var b strings.Builder
		for _, i := range idx {
			b.WriteByte(byte(t[i].Kind()))
			b.WriteString(t[i].String())
			b.WriteByte(0)
		}
		return b.String()
	}
	build := make(map[string][]relation.Tuple)
	for _, t := range r.Tuples() {
		if err := g.Add(1); err != nil {
			return nil, err
		}
		k := key(t, ri)
		build[k] = append(build[k], t)
	}
	// The probe side fans out across the guard's Parallelism; the built
	// hash table is read-only from here on.
	if par := g.Parallelism(); par > 1 && l.Len() >= parallelMinRows {
		return parallelProbe(l, r, li, build, key, g, par)
	}
	out := relation.New(append(append([]string(nil), l.Attrs...), r.Attrs...))
	for _, t := range l.Tuples() {
		if err := g.Check(); err != nil {
			return nil, err
		}
		for _, u := range build[key(t, li)] {
			if err := g.Add(1); err != nil {
				return nil, err
			}
			row := make(relation.Tuple, 0, len(t)+len(u))
			row = append(append(row, t...), u...)
			out.Insert(row) //nolint:errcheck // arity correct by construction
		}
	}
	return out, nil
}

// indexJoin is an index nested-loop join: for each row of l it probes r's
// persistent secondary hash index on the first equality's column and
// verifies the remaining equalities per candidate. Unlike hashJoin it
// builds nothing per query, so when r is an unfiltered base relation the
// index amortizes across every query that joins through it. Output rows
// are accounted like hashJoin's; the probe side fans out across the
// guard's Parallelism.
func indexJoin(l, r *relation.Relation, eqs []Atom, g *guard.Guard) (*relation.Relation, error) {
	li, ri := joinCols(l, r, eqs)
	if par := g.Parallelism(); par > 1 && l.Len() >= parallelMinRows {
		return parallelIndexProbe(l, r, li, ri, g, par)
	}
	out := relation.New(append(append([]string(nil), l.Attrs...), r.Attrs...))
	for _, t := range l.Tuples() {
		if err := g.Check(); err != nil {
			return nil, err
		}
		for _, u := range r.LookupEq(ri[0], t[li[0]]) {
			if !restEqsMatch(t, u, li, ri) {
				continue
			}
			if err := g.Add(1); err != nil {
				return nil, err
			}
			row := make(relation.Tuple, 0, len(t)+len(u))
			row = append(append(row, t...), u...)
			out.Insert(row) //nolint:errcheck // arity correct by construction
		}
	}
	return out, nil
}

// restEqsMatch verifies the equality columns beyond the first (the one
// the index served) between a probe row and a candidate.
func restEqsMatch(t, u relation.Tuple, li, ri []int) bool {
	for k := 1; k < len(li); k++ {
		if t[li[k]].Compare(u[ri[k]]) != 0 {
			return false
		}
	}
	return true
}

func mustIndex(attrs []string, a string) int {
	for i, x := range attrs {
		if x == a {
			return i
		}
	}
	panic("algebra: attribute vanished: " + a)
}
