// Package algebra implements conjunctive relational algebra: plan trees of
// product, selection, and projection over base-relation scans, plus two
// evaluators.
//
// The paper (§4.1) implements a conjunctive query Q as "a sequence of
// products, followed by selections, and ending with projections", noting
// that this strategy "is not necessarily optimal. However … optimality is
// not so essential for meta-relations, because they are relatively small.
// For the actual relations, where optimality is essential, a different
// strategy may be implemented." Accordingly this package offers:
//
//   - EvalNaive: literal bottom-up evaluation of the plan tree (and, via
//     PSJ, of the paper's products→selections→projections normal form);
//   - EvalOptimized: predicate pushdown and hash equi-joins for the actual
//     relations.
//
// Both evaluators produce identical relations; the test suite cross-checks
// them and the benchmark harness measures the gap (experiment E9).
package algebra

import (
	"fmt"

	"authdb/internal/guard"
	"authdb/internal/relation"
	"authdb/internal/value"
)

// Source resolves base relation names to instances.
type Source func(name string) (*relation.Relation, error)

// MapSource adapts a map of relations to a Source.
func MapSource(m map[string]*relation.Relation) Source {
	return func(name string) (*relation.Relation, error) {
		r, ok := m[name]
		if !ok {
			return nil, fmt.Errorf("unknown relation %s", name)
		}
		return r, nil
	}
}

// Operand is the right-hand side of a predicate atom: either a (qualified)
// attribute or a constant.
type Operand struct {
	IsAttr bool
	Attr   string
	Const  value.Value
}

// AttrOp returns an attribute operand.
func AttrOp(a string) Operand { return Operand{IsAttr: true, Attr: a} }

// ConstOp returns a constant operand.
func ConstOp(v value.Value) Operand { return Operand{Const: v} }

// String renders the operand.
func (o Operand) String() string {
	if o.IsAttr {
		return o.Attr
	}
	return o.Const.String()
}

// Atom is a primitive conjunctive predicate L θ R, with L a qualified
// attribute and R an attribute or constant (paper §2, "comparative"
// subformulas plus the implicit equalities of membership subformulas).
type Atom struct {
	L  string
	Op value.Cmp
	R  Operand
}

// String renders the atom, e.g. "PROJECT.BUDGET >= 250000".
func (a Atom) String() string {
	return a.L + " " + a.Op.String() + " " + a.R.String()
}

// Node is a relational algebra plan node.
type Node interface {
	isNode()
	// Attrs returns the (qualified) output attribute list of the node,
	// resolving scans against sch.
	Attrs(sch *relation.DBSchema) ([]string, error)
}

// Scan reads a base relation under an alias; its output attributes are the
// relation's attributes qualified by the alias.
type Scan struct {
	Rel   string
	Alias string
}

// Product is the cartesian product of two subplans.
type Product struct{ L, R Node }

// Select filters its input by a conjunction of atoms.
type Select struct {
	In   Node
	Pred []Atom
}

// Project projects its input onto the named columns, in order.
type Project struct {
	In   Node
	Cols []string
}

func (Scan) isNode()    {}
func (Product) isNode() {}
func (Select) isNode()  {}
func (Project) isNode() {}

// Attrs implements Node.
func (s Scan) Attrs(sch *relation.DBSchema) ([]string, error) {
	rs := sch.Lookup(s.Rel)
	if rs == nil {
		return nil, fmt.Errorf("unknown relation %s", s.Rel)
	}
	return relation.QualifyAttrs(s.Alias, rs.Attrs), nil
}

// Attrs implements Node.
func (p Product) Attrs(sch *relation.DBSchema) ([]string, error) {
	l, err := p.L.Attrs(sch)
	if err != nil {
		return nil, err
	}
	r, err := p.R.Attrs(sch)
	if err != nil {
		return nil, err
	}
	return append(l, r...), nil
}

// Attrs implements Node.
func (s Select) Attrs(sch *relation.DBSchema) ([]string, error) { return s.In.Attrs(sch) }

// Attrs implements Node.
func (p Project) Attrs(sch *relation.DBSchema) ([]string, error) {
	return append([]string(nil), p.Cols...), nil
}

// resolve returns the index of qualified attribute a in attrs, trying the
// exact name first and then an unambiguous bare-name match.
func resolve(attrs []string, a string) (int, error) {
	for i, x := range attrs {
		if x == a {
			return i, nil
		}
	}
	found := -1
	for i, x := range attrs {
		if _, bare := relation.SplitQualified(x); bare == a {
			if found >= 0 {
				return -1, fmt.Errorf("ambiguous attribute %s", a)
			}
			found = i
		}
	}
	if found < 0 {
		return -1, fmt.Errorf("unknown attribute %s", a)
	}
	return found, nil
}

// CompilePred resolves a conjunction of atoms against an attribute list,
// returning a tuple predicate.
func CompilePred(attrs []string, pred []Atom) (func(relation.Tuple) bool, error) {
	type cp struct {
		li, ri int
		op     value.Cmp
		c      value.Value
		isAttr bool
	}
	cps := make([]cp, 0, len(pred))
	for _, a := range pred {
		li, err := resolve(attrs, a.L)
		if err != nil {
			return nil, err
		}
		c := cp{li: li, op: a.Op}
		if a.R.IsAttr {
			ri, err := resolve(attrs, a.R.Attr)
			if err != nil {
				return nil, err
			}
			c.ri, c.isAttr = ri, true
		} else {
			c.c = a.R.Const
		}
		cps = append(cps, c)
	}
	return func(t relation.Tuple) bool {
		for _, c := range cps {
			r := c.c
			if c.isAttr {
				r = t[c.ri]
			}
			if !c.op.Eval(t[c.li], r) {
				return false
			}
		}
		return true
	}, nil
}

// EvalNaive evaluates the plan tree bottom-up with nested-loop products.
func EvalNaive(n Node, src Source) (*relation.Relation, error) {
	return EvalNaiveGuarded(n, src, nil)
}

// EvalNaiveGuarded is EvalNaive under a cancellation-and-budget guard:
// every materialized tuple of a product, selection, or projection is
// accounted, so a runaway plan fails with guard.ErrBudgetExceeded or
// guard.ErrCanceled instead of exhausting the process. A nil guard is
// unlimited.
func EvalNaiveGuarded(n Node, src Source, g *guard.Guard) (*relation.Relation, error) {
	switch n := n.(type) {
	case Scan:
		base, err := src(n.Rel)
		if err != nil {
			return nil, err
		}
		if err := g.Check(); err != nil {
			return nil, err
		}
		return base.Rename(relation.QualifyAttrs(n.Alias, base.Attrs)), nil
	case Product:
		l, err := EvalNaiveGuarded(n.L, src, g)
		if err != nil {
			return nil, err
		}
		r, err := EvalNaiveGuarded(n.R, src, g)
		if err != nil {
			return nil, err
		}
		return guardedProduct(l, r, g)
	case Select:
		in, err := EvalNaiveGuarded(n.In, src, g)
		if err != nil {
			return nil, err
		}
		pred, err := CompilePred(in.Attrs, n.Pred)
		if err != nil {
			return nil, err
		}
		return guardedSelect(in, pred, g)
	case Project:
		in, err := EvalNaiveGuarded(n.In, src, g)
		if err != nil {
			return nil, err
		}
		idx := make([]int, len(n.Cols))
		for i, c := range n.Cols {
			j, err := resolve(in.Attrs, c)
			if err != nil {
				return nil, err
			}
			idx[i] = j
		}
		return guardedProject(in, idx, g)
	default:
		return nil, fmt.Errorf("unknown plan node %T", n)
	}
}

// guardedProduct is relation.Product with per-output-row accounting,
// fanned out across the guard's Parallelism when the output is large
// enough to pay for the workers.
func guardedProduct(l, r *relation.Relation, g *guard.Guard) (*relation.Relation, error) {
	if par := g.Parallelism(); par > 1 && l.Len() > 1 && l.Len()*r.Len() >= parallelMinWork {
		return parallelProduct(l, r, g, par)
	}
	if g == nil {
		return l.Product(r), nil
	}
	attrs := append(append([]string(nil), l.Attrs...), r.Attrs...)
	out := relation.New(attrs)
	for _, a := range l.Tuples() {
		for _, b := range r.Tuples() {
			if err := g.Add(1); err != nil {
				return nil, err
			}
			row := make(relation.Tuple, 0, len(a)+len(b))
			row = append(append(row, a...), b...)
			out.Insert(row) //nolint:errcheck // arity is correct by construction
		}
	}
	return out, nil
}

// guardedSelect is relation.Select with per-input-row accounting (the
// scan over the input is the work being bounded), fanned out across the
// guard's Parallelism on large inputs.
func guardedSelect(in *relation.Relation, pred func(relation.Tuple) bool, g *guard.Guard) (*relation.Relation, error) {
	if par := g.Parallelism(); par > 1 && in.Len() >= parallelMinRows {
		return parallelSelect(in, pred, g, par)
	}
	if g == nil {
		return in.Select(pred), nil
	}
	out := relation.New(in.Attrs)
	for _, t := range in.Tuples() {
		if err := g.Add(1); err != nil {
			return nil, err
		}
		if pred(t) {
			// Selections of a proper set are duplicate-free, so the
			// no-dedup Append path applies (parallelSelect already relies
			// on this via mergeChunks).
			out.Append(t)
		}
	}
	return out, nil
}

// guardedProject is relation.Project with per-input-row accounting.
func guardedProject(in *relation.Relation, idx []int, g *guard.Guard) (*relation.Relation, error) {
	if g == nil {
		return in.Project(idx), nil
	}
	attrs := make([]string, len(idx))
	for i, j := range idx {
		attrs[i] = in.Attrs[j]
	}
	out := relation.New(attrs)
	row := make(relation.Tuple, len(idx))
	for _, t := range in.Tuples() {
		if err := g.Add(1); err != nil {
			return nil, err
		}
		for i, j := range idx {
			row[i] = t[j]
		}
		out.Insert(row) //nolint:errcheck // arity is correct by construction
	}
	return out, nil
}
