// Package value defines the atomic values of the relational model used
// throughout the library: typed constants drawn from attribute domains,
// a deterministic total order across them, and the comparators θ that
// appear in conjunctive selection predicates.
//
// The paper (Motro, ICDE 1989, §2) assumes attribute domains that are
// "nonempty, finite or countably infinite sets" with comparators
// <, ≤, ≥, =, ≠. We realise two domains — 64-bit integers and strings —
// which cover every example in the paper (names, titles, sponsors,
// salaries, budgets, project numbers).
package value

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates the domain a Value belongs to.
type Kind uint8

const (
	// KindNull is the absence of a value. It is used for masked cells in
	// delivered answers; base relations never store nulls.
	KindNull Kind = iota
	// KindInt is the domain of 64-bit signed integers.
	KindInt
	// KindString is the domain of strings.
	KindString
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a single constant from an attribute domain. The zero Value is
// the null value. Values are comparable with == and usable as map keys.
type Value struct {
	kind Kind
	i    int64
	s    string
}

// Null returns the null value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// String returns a string value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Kind reports the domain of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload; it is 0 for non-integer values.
func (v Value) AsInt() int64 { return v.i }

// AsString returns the string payload; it is "" for non-string values.
func (v Value) AsString() string { return v.s }

// Compare imposes a deterministic total order over all values, kind-major
// (null < int < string) and natural within a kind. The total order is what
// interval reasoning in the authorization core is built on; cross-kind
// comparisons never arise from well-typed views but must still be
// deterministic for sorting and canonicalization.
func (v Value) Compare(w Value) int {
	if v.kind != w.kind {
		if v.kind < w.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindInt:
		switch {
		case v.i < w.i:
			return -1
		case v.i > w.i:
			return 1
		}
	case KindString:
		return strings.Compare(v.s, w.s)
	}
	return 0
}

// Equal reports v == w under the domain order.
func (v Value) Equal(w Value) bool { return v == w }

// Less reports v < w under the domain order.
func (v Value) Less(w Value) bool { return v.Compare(w) < 0 }

// String renders the value the way the paper prints constants: bare words
// for strings, decimal for integers, and "-" for null (a masked cell).
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "-"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	default:
		return v.s
	}
}

// Parse interprets a literal token as a value: an optionally signed decimal
// integer becomes an int, anything else a string. Surrounding double quotes
// are stripped (and force string interpretation).
func Parse(tok string) Value {
	if len(tok) >= 2 && tok[0] == '"' && tok[len(tok)-1] == '"' {
		return String(tok[1 : len(tok)-1])
	}
	if i, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return Int(i)
	}
	return String(tok)
}
