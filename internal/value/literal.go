package value

import "unicode"

// Literal renders v as a statement-language literal that reparses to an
// equal value: integers in decimal, strings bare when they lex as a
// single identifier and double-quoted otherwise. The null value has no
// literal form (base relations never store nulls) and renders as its
// display form "-"; serializers must check Representable first.
func Literal(v Value) string {
	switch v.kind {
	case KindString:
		if bareWord(v.s) {
			return v.s
		}
		return `"` + v.s + `"`
	default:
		return v.String()
	}
}

// Representable reports whether Literal(v) reparses to a value equal to
// v. It is false for null (no literal form) and for strings containing a
// double quote (the statement language has no escape sequences).
func Representable(v Value) bool {
	if v.kind == KindNull {
		return false
	}
	if v.kind == KindString {
		for i := 0; i < len(v.s); i++ {
			if v.s[i] == '"' {
				return false
			}
		}
	}
	return true
}

// bareWord mirrors the statement lexer's identifier rule: a letter or
// underscore followed by letters, digits, underscores, and interior
// hyphens that glue to a following identifier character ("bq-45"). A word
// failing this must be quoted or it would lex as something else.
func bareWord(s string) bool {
	if s == "" {
		return false
	}
	runes := []rune(s)
	if !unicode.IsLetter(runes[0]) && runes[0] != '_' {
		return false
	}
	for i := 1; i < len(runes); i++ {
		r := runes[i]
		switch {
		case unicode.IsLetter(r) || r == '_':
		case r >= '0' && r <= '9':
		case r == '-':
			if i+1 >= len(runes) {
				return false
			}
			n := runes[i+1]
			if !unicode.IsLetter(n) && n != '_' && !(n >= '0' && n <= '9') {
				return false
			}
		default:
			return false
		}
	}
	return true
}
