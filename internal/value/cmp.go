package value

import "fmt"

// Cmp is a comparator θ from the paper's comparative subformulas d1 θ d2
// (§2): one of =, ≠, <, ≤, >, ≥.
type Cmp uint8

const (
	// EQ is =.
	EQ Cmp = iota
	// NE is ≠.
	NE
	// LT is <.
	LT
	// LE is ≤.
	LE
	// GT is >.
	GT
	// GE is ≥.
	GE
)

// Comparators lists every comparator, useful for exhaustive tests.
var Comparators = []Cmp{EQ, NE, LT, LE, GT, GE}

// String renders the comparator in the ASCII form accepted by the parser.
func (c Cmp) String() string {
	switch c {
	case EQ:
		return "="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return fmt.Sprintf("cmp(%d)", uint8(c))
	}
}

// ParseCmp recognises a comparator token. It accepts both ASCII digraphs
// and the unicode forms the paper typesets (≠, ≤, ≥).
func ParseCmp(tok string) (Cmp, bool) {
	switch tok {
	case "=", "==":
		return EQ, true
	case "!=", "<>", "≠":
		return NE, true
	case "<":
		return LT, true
	case "<=", "≤":
		return LE, true
	case ">":
		return GT, true
	case ">=", "≥":
		return GE, true
	}
	return EQ, false
}

// Eval reports whether a θ b holds under the domain total order.
func (c Cmp) Eval(a, b Value) bool {
	d := a.Compare(b)
	switch c {
	case EQ:
		return d == 0
	case NE:
		return d != 0
	case LT:
		return d < 0
	case LE:
		return d <= 0
	case GT:
		return d > 0
	case GE:
		return d >= 0
	default:
		return false
	}
}

// Flip returns the comparator θ' such that a θ b ⇔ b θ' a. It is used to
// normalise predicates so the constant is always on the right-hand side.
func (c Cmp) Flip() Cmp {
	switch c {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	default: // EQ and NE are symmetric.
		return c
	}
}

// Negate returns the comparator for ¬(a θ b).
func (c Cmp) Negate() Cmp {
	switch c {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	default: // GE
		return LT
	}
}
