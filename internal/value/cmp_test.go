package value

import (
	"testing"
	"testing/quick"
)

func TestCmpEval(t *testing.T) {
	two, three := Int(2), Int(3)
	cases := []struct {
		op   Cmp
		a, b Value
		want bool
	}{
		{EQ, two, two, true}, {EQ, two, three, false},
		{NE, two, three, true}, {NE, two, two, false},
		{LT, two, three, true}, {LT, three, two, false}, {LT, two, two, false},
		{LE, two, two, true}, {LE, three, two, false},
		{GT, three, two, true}, {GT, two, two, false},
		{GE, two, two, true}, {GE, two, three, false},
		{LT, String("a"), String("b"), true},
		{GE, String("b"), String("a"), true},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.a, c.b); got != c.want {
			t.Errorf("%v %v %v = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestCmpFlip(t *testing.T) {
	if err := quick.Check(func(a, b Value) bool {
		for _, op := range Comparators {
			if op.Eval(a, b) != op.Flip().Eval(b, a) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestCmpNegate(t *testing.T) {
	if err := quick.Check(func(a, b Value) bool {
		for _, op := range Comparators {
			if op.Eval(a, b) == op.Negate().Eval(a, b) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestParseCmp(t *testing.T) {
	cases := map[string]Cmp{
		"=": EQ, "==": EQ,
		"!=": NE, "<>": NE, "≠": NE,
		"<": LT, "<=": LE, "≤": LE,
		">": GT, ">=": GE, "≥": GE,
	}
	for in, want := range cases {
		got, ok := ParseCmp(in)
		if !ok || got != want {
			t.Errorf("ParseCmp(%q) = %v,%v want %v", in, got, ok, want)
		}
	}
	if _, ok := ParseCmp("~"); ok {
		t.Error("ParseCmp accepted garbage")
	}
}

func TestCmpStringRoundTrip(t *testing.T) {
	for _, op := range Comparators {
		got, ok := ParseCmp(op.String())
		if !ok || got != op {
			t.Errorf("round trip of %v failed: %v %v", op, got, ok)
		}
	}
	if Cmp(99).String() == "" {
		t.Error("unknown comparator must render")
	}
}
