package value

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randValue draws from a mixed domain of nulls, ints, and strings.
func randValue(r *rand.Rand) Value {
	switch r.Intn(6) {
	case 0:
		return Null()
	case 1, 2, 3:
		return Int(int64(r.Intn(21) - 10))
	default:
		letters := []string{"", "a", "ab", "b", "ba", "z", "Acme", "acme"}
		return String(letters[r.Intn(len(letters))])
	}
}

// Generate implements quick.Generator so Value works with testing/quick.
func (Value) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randValue(r))
}

func TestKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null(), KindNull, "-"},
		{Int(0), KindInt, "0"},
		{Int(-42), KindInt, "-42"},
		{String("Acme"), KindString, "Acme"},
		{String(""), KindString, ""},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("%v renders %q, want %q", c.v, c.v.String(), c.str)
		}
	}
	if !Null().IsNull() || Int(0).IsNull() || String("").IsNull() {
		t.Error("IsNull misclassifies")
	}
}

func TestKindString(t *testing.T) {
	if KindNull.String() != "null" || KindInt.String() != "int" || KindString.String() != "string" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind must still render")
	}
}

func TestCompareTotalOrder(t *testing.T) {
	// Antisymmetry and transitivity over random triples.
	if err := quick.Check(func(a, b, c Value) bool {
		ab, ba := a.Compare(b), b.Compare(a)
		if ab != -ba {
			return false
		}
		if a.Compare(a) != 0 {
			return false
		}
		// Transitivity: a<=b and b<=c implies a<=c.
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
			return false
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareKindMajor(t *testing.T) {
	if !(Null().Less(Int(-1000)) && Int(1000).Less(String(""))) {
		t.Error("kind-major order violated: null < int < string")
	}
}

func TestEqualConsistentWithCompare(t *testing.T) {
	if err := quick.Check(func(a, b Value) bool {
		return a.Equal(b) == (a.Compare(b) == 0)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"26000", Int(26000)},
		{"-5", Int(-5)},
		{"Acme", String("Acme")},
		{"bq-45", String("bq-45")},
		{`"123"`, String("123")},
		{`"two words"`, String("two words")},
	}
	for _, c := range cases {
		if got := Parse(c.in); got != c.want {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAccessors(t *testing.T) {
	if Int(7).AsInt() != 7 || String("x").AsString() != "x" {
		t.Error("payload accessors broken")
	}
	if Int(7).AsString() != "" || String("x").AsInt() != 0 {
		t.Error("cross-kind accessors must zero")
	}
}
