package relation

import (
	"testing"

	"authdb/internal/value"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap()
	if b.Get(0) || b.Get(1000) || b.Count() != 0 {
		t.Fatal("fresh bitmap not empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 500} {
		b.Set(i)
	}
	for _, i := range []int{0, 1, 63, 64, 65, 500} {
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Get(2) || b.Get(499) || b.Get(501) {
		t.Fatal("unset bit reads set")
	}
	if b.Count() != 6 {
		t.Fatalf("count %d, want 6", b.Count())
	}
	b.Set(64) // idempotent
	if b.Count() != 6 {
		t.Fatalf("re-set changed count to %d", b.Count())
	}

	o := NewBitmap()
	o.Set(1)
	o.Set(64)
	o.Set(200)
	and := b.And(o)
	if and.Count() != 2 || !and.Get(1) || !and.Get(64) || and.Get(200) || and.Get(0) {
		t.Fatalf("intersection wrong: count %d", and.Count())
	}

	c := b.Clone()
	c.Set(7)
	if b.Get(7) {
		t.Fatal("clone shares storage")
	}

	var nilB *Bitmap
	if nilB.Get(3) || nilB.Count() != 0 || nilB.And(o).Count() != 0 || nilB.Clone().Count() != 0 {
		t.Fatal("nil bitmap not inert")
	}
}

func tup(vals ...int64) Tuple {
	t := make(Tuple, len(vals))
	for i, v := range vals {
		t[i] = value.Int(v)
	}
	return t
}

// TestExtendsByAppend drives the lineage detector through the cases the
// closure relies on: append sharing, append with reallocation, deletes
// anywhere in the prefix, delete-then-append, and the empty base.
func TestExtendsByAppend(t *testing.T) {
	v := NewVersioned([]string{"A", "B"})
	empty := v.Head()
	for i := int64(0); i < 3; i++ {
		if _, err := v.Insert(tup(i, i*10)); err != nil {
			t.Fatal(err)
		}
	}
	r3 := v.Head()
	if !ExtendsByAppend(empty, r3) {
		t.Fatal("empty base must be extended by anything")
	}
	if !ExtendsByAppend(r3, r3) {
		t.Fatal("a revision extends itself")
	}

	// Many appends force at least one backing-array reallocation; the
	// storage-identity check must survive it.
	for i := int64(3); i < 40; i++ {
		if _, err := v.Insert(tup(i, i*10)); err != nil {
			t.Fatal(err)
		}
	}
	r40 := v.Head()
	if !ExtendsByAppend(r3, r40) {
		t.Fatal("pure appends (with reallocation) not detected")
	}
	if ExtendsByAppend(r40, r3) {
		t.Fatal("a shorter revision cannot extend a longer one")
	}

	// Deleting inside the old prefix breaks the extension.
	if n := v.Delete(func(tp Tuple) bool { return tp[0].Equal(value.Int(1)) }); n != 1 {
		t.Fatalf("delete removed %d", n)
	}
	afterDel := v.Head()
	if ExtendsByAppend(r3, afterDel) {
		t.Fatal("delete within the prefix reported as pure append")
	}
	// ... even after appends push the length past old's again.
	if _, err := v.Insert(tup(100, 0)); err != nil {
		t.Fatal(err)
	}
	if ExtendsByAppend(r3, v.Head()) {
		t.Fatal("delete+append reported as pure append")
	}
	// But the post-delete revision is itself a valid new base.
	if !ExtendsByAppend(afterDel, v.Head()) {
		t.Fatal("appends on the post-delete base not detected")
	}

	// Deleting only rows past the old prefix leaves old extended.
	w := NewVersioned([]string{"A", "B"})
	for i := int64(0); i < 3; i++ {
		w.Insert(tup(i, i)) //nolint:errcheck
	}
	base := w.Head()
	w.Insert(tup(50, 50)) //nolint:errcheck
	w.Insert(tup(60, 60)) //nolint:errcheck
	if n := w.Delete(func(tp Tuple) bool { return tp[0].Equal(value.Int(60)) }); n != 1 {
		t.Fatal("tail delete failed")
	}
	if !ExtendsByAppend(base, w.Head()) {
		t.Fatal("delete strictly past the prefix must keep the base extended")
	}
}

func TestSuffix(t *testing.T) {
	v := NewVersioned([]string{"A", "B"})
	for i := int64(0); i < 5; i++ {
		v.Insert(tup(i, i)) //nolint:errcheck
	}
	r := v.Head()
	s := r.Suffix(3)
	if s.Len() != 2 || !s.Tuples()[0].Equal(tup(3, 3)) || !s.Tuples()[1].Equal(tup(4, 4)) {
		t.Fatalf("suffix rows wrong: %v", s.Tuples())
	}
	if len(s.Attrs) != 2 {
		t.Fatal("suffix lost attributes")
	}
	if r.Suffix(5).Len() != 0 || r.Suffix(99).Len() != 0 || r.Suffix(-1).Len() != 5 {
		t.Fatal("suffix bounds not clamped")
	}
}
