package relation

import (
	"bytes"
	"strings"
	"testing"

	"authdb/internal/value"
)

func vi(i int64) value.Value  { return value.Int(i) }
func vs(s string) value.Value { return value.String(s) }

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema("", []string{"A"}); err == nil {
		t.Error("empty relation name accepted")
	}
	if _, err := NewSchema("R", nil); err == nil {
		t.Error("attribute-less scheme accepted")
	}
	if _, err := NewSchema("R", []string{"A", "A"}); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if _, err := NewSchema("R", []string{"A", ""}); err == nil {
		t.Error("empty attribute accepted")
	}
	if _, err := NewSchema("R", []string{"A"}, "B"); err == nil {
		t.Error("key outside the scheme accepted")
	}
	s, err := NewSchema("R", []string{"A", "B"}, "B")
	if err != nil {
		t.Fatal(err)
	}
	if s.Arity() != 2 || s.AttrIndex("B") != 1 || s.AttrIndex("C") != -1 {
		t.Error("scheme accessors wrong")
	}
	if got := s.KeyAttrs(); len(got) != 1 || got[0] != "B" {
		t.Errorf("KeyAttrs = %v", got)
	}
	if s.String() != "R = (A, B)" {
		t.Errorf("String = %q", s.String())
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSchema must panic on a bad scheme")
		}
	}()
	MustSchema("R", []string{"A", "A"})
}

func TestDBSchema(t *testing.T) {
	d := NewDBSchema()
	if err := d.Add(MustSchema("R", []string{"A"})); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(MustSchema("R", []string{"B"})); err == nil {
		t.Error("duplicate relation accepted")
	}
	if d.Lookup("R") == nil || d.Lookup("S") != nil {
		t.Error("Lookup wrong")
	}
	if names := d.Names(); len(names) != 1 || names[0] != "R" {
		t.Errorf("Names = %v", names)
	}
}

func TestQualification(t *testing.T) {
	q := QualifyAttrs("EMPLOYEE:2", []string{"NAME", "TITLE"})
	if q[0] != "EMPLOYEE:2.NAME" || q[1] != "EMPLOYEE:2.TITLE" {
		t.Errorf("QualifyAttrs = %v", q)
	}
	alias, attr := SplitQualified("EMPLOYEE:2.NAME")
	if alias != "EMPLOYEE:2" || attr != "NAME" {
		t.Errorf("SplitQualified = %q %q", alias, attr)
	}
	if a, b := SplitQualified("NAME"); a != "" || b != "NAME" {
		t.Errorf("SplitQualified bare = %q %q", a, b)
	}
	if BaseOfAlias("EMPLOYEE:2") != "EMPLOYEE" || BaseOfAlias("EMPLOYEE") != "EMPLOYEE" {
		t.Error("BaseOfAlias wrong")
	}
}

func TestInsertSetSemantics(t *testing.T) {
	r := New([]string{"A", "B"})
	added, err := r.Insert(Tuple{vi(1), vs("x")})
	if err != nil || !added {
		t.Fatalf("first insert: %v %v", added, err)
	}
	added, err = r.Insert(Tuple{vi(1), vs("x")})
	if err != nil || added {
		t.Fatalf("duplicate insert: %v %v", added, err)
	}
	if _, err := r.Insert(Tuple{vi(1)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if r.Len() != 1 || !r.Contains(Tuple{vi(1), vs("x")}) {
		t.Error("set semantics broken")
	}
}

func TestInsertDistinguishesKinds(t *testing.T) {
	// Int(1) and String("1") render identically but are distinct values;
	// the set index must not conflate them.
	r := New([]string{"A"})
	r.MustInsert(vi(1))
	r.MustInsert(vs("1"))
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (kind-distinct tuples)", r.Len())
	}
}

func TestDelete(t *testing.T) {
	r := New([]string{"A"})
	for i := int64(0); i < 10; i++ {
		r.MustInsert(vi(i))
	}
	n := r.Delete(func(t Tuple) bool { return t[0].AsInt()%2 == 0 })
	if n != 5 || r.Len() != 5 {
		t.Fatalf("Delete removed %d, left %d", n, r.Len())
	}
	if r.Contains(Tuple{vi(2)}) || !r.Contains(Tuple{vi(3)}) {
		t.Error("Delete removed the wrong tuples")
	}
	// Deleted tuples can be reinserted.
	if added, _ := r.Insert(Tuple{vi(2)}); !added {
		t.Error("reinsert after delete failed")
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := New([]string{"A"})
	r.MustInsert(vi(1))
	c := r.Clone()
	c.MustInsert(vi(2))
	if r.Len() != 1 || c.Len() != 2 {
		t.Error("Clone shares state")
	}
}

func TestProjectSelectProduct(t *testing.T) {
	r := New([]string{"A", "B"})
	r.MustInsert(vi(1), vs("x"))
	r.MustInsert(vi(2), vs("x"))
	r.MustInsert(vi(3), vs("y"))

	p := r.Project([]int{1})
	if p.Len() != 2 { // duplicates collapse
		t.Fatalf("Project len = %d, want 2", p.Len())
	}
	s := r.Select(func(t Tuple) bool { return t[1].AsString() == "x" })
	if s.Len() != 2 {
		t.Fatalf("Select len = %d, want 2", s.Len())
	}
	q := New([]string{"C"})
	q.MustInsert(vi(7))
	q.MustInsert(vi(8))
	prod := r.Product(q)
	if prod.Len() != 6 || prod.Arity() != 3 {
		t.Fatalf("Product: len=%d arity=%d", prod.Len(), prod.Arity())
	}
}

func TestEqualAndSorted(t *testing.T) {
	a := New([]string{"A"})
	b := New([]string{"A"})
	for _, i := range []int64{3, 1, 2} {
		a.MustInsert(vi(i))
	}
	for _, i := range []int64{1, 2, 3} {
		b.MustInsert(vi(i))
	}
	if !a.Equal(b) {
		t.Error("set equality must ignore insertion order")
	}
	b.MustInsert(vi(4))
	if a.Equal(b) {
		t.Error("different sets compare equal")
	}
	sorted := a.Sorted()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].Compare(sorted[i]) >= 0 {
			t.Error("Sorted not ascending")
		}
	}
	if New([]string{"B"}).Equal(New([]string{"A"})) {
		t.Error("attribute lists must match for equality")
	}
}

func TestAttrIndexSuffixFallback(t *testing.T) {
	r := New([]string{"EMPLOYEE.NAME", "PROJECT.NAME", "PROJECT.BUDGET"})
	if r.AttrIndex("PROJECT.BUDGET") != 2 {
		t.Error("exact lookup failed")
	}
	if r.AttrIndex("BUDGET") != 2 {
		t.Error("unambiguous bare lookup failed")
	}
	if r.AttrIndex("NAME") != -1 {
		t.Error("ambiguous bare lookup must fail")
	}
}

func TestRename(t *testing.T) {
	r := New([]string{"A"})
	r.MustInsert(vi(1))
	renamed := r.Rename([]string{"X.A"})
	if renamed.Attrs[0] != "X.A" || renamed.Len() != 1 {
		t.Error("Rename wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Rename with wrong arity must panic")
		}
	}()
	r.Rename([]string{"A", "B"})
}

func TestTupleCompare(t *testing.T) {
	a := Tuple{vi(1), vs("a")}
	b := Tuple{vi(1), vs("b")}
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 || a.Compare(a) != 0 {
		t.Error("lexicographic compare wrong")
	}
	short := Tuple{vi(1)}
	if short.Compare(a) >= 0 {
		t.Error("shorter tuple must order first on equal prefix")
	}
	if !a.Equal(a.Clone()) || a.Equal(b) {
		t.Error("Equal wrong")
	}
}

func TestRender(t *testing.T) {
	r := New([]string{"EMPLOYEE.NAME", "EMPLOYEE.SALARY"})
	r.MustInsert(vs("Jones"), vi(26000))
	var b bytes.Buffer
	r.Render(&b, "EMPLOYEE")
	out := b.String()
	for _, want := range []string{"EMPLOYEE", "NAME", "SALARY", "Jones", "26000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "EMPLOYEE.NAME") {
		t.Error("short mode must strip qualifiers")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := New([]string{"A", "B", "C"})
	r.MustInsert(vi(1), vs("Acme"), value.Null())
	r.MustInsert(vi(2), vs("bq-45"), vi(-7))
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(back) {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", r, back)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input must fail")
	}
	if _, err := ReadCSV(strings.NewReader("A,B\n1\n")); err == nil {
		t.Error("ragged row must fail")
	}
}
