package relation

import (
	"sort"
	"sync"
	"sync/atomic"

	"authdb/internal/value"
)

// indexEntry is one built secondary hash index, remembering how many
// tuples it was built from: a Rename view holds a point-in-time slice
// header, so a shared cache entry is only valid for a reader whose tuple
// count matches.
type indexEntry struct {
	builtLen int
	m        map[string][]Tuple
}

// orderedEntry is one built ordered secondary index: the relation's
// tuples sorted by the value at one attribute position (ties keep the
// original tuple order, so runs are deterministic). It serves range
// lookups by binary search and carries the attribute's distinct-value
// count for the planner's cardinality estimates.
type orderedEntry struct {
	builtLen int
	sorted   []Tuple
	distinct int
}

// indexCache holds lazily built secondary indexes over a relation's
// tuples: hash indexes for equality lookups and ordered runs for range
// lookups. Indexes are built on first lookup and invalidated wholesale
// by any mutation (Insert, Append, Delete all bump); the cache is shared
// across Rename views of the same storage and revalidated per reader by
// tuple count — exactly the membership index's lazy-rebuild contract.
type indexCache struct {
	mu     sync.Mutex
	byAttr map[int]indexEntry
	ord    map[int]orderedEntry
	// built is true while any entry exists. It lets bump — which runs on
	// every mutation — skip the mutex entirely for relations that were
	// never used as an index source, which is most relations during bulk
	// loads. Reads and writes of the maps themselves stay under mu.
	built atomic.Bool
}

func newIndexCache() *indexCache {
	return &indexCache{byAttr: make(map[int]indexEntry), ord: make(map[int]orderedEntry)}
}

// bump invalidates every index.
func (c *indexCache) bump() {
	if !c.built.Load() {
		return
	}
	c.mu.Lock()
	if len(c.byAttr) > 0 {
		c.byAttr = make(map[int]indexEntry)
	}
	if len(c.ord) > 0 {
		c.ord = make(map[int]orderedEntry)
	}
	c.built.Store(false)
	c.mu.Unlock()
}

// valueKey identifies a value for hashing, kind-tagged so Int(1) and
// String("1") stay distinct.
func valueKey(v value.Value) string {
	return string(byte(v.Kind())) + v.String()
}

// LookupEq returns the tuples whose attribute at index i equals v, served
// from a lazily built hash index. The returned slice is shared — callers
// must not mutate it. Mutating the relation invalidates the index.
func (r *Relation) LookupEq(i int, v value.Value) []Tuple {
	if i < 0 || i >= len(r.Attrs) {
		return nil
	}
	c := r.idx
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byAttr[i]
	if !ok || e.builtLen != len(r.tuples) {
		e = indexEntry{builtLen: len(r.tuples), m: make(map[string][]Tuple, len(r.tuples))}
		for _, t := range r.tuples {
			k := valueKey(t[i])
			e.m[k] = append(e.m[k], t)
		}
		c.byAttr[i] = e
		c.built.Store(true)
	}
	return e.m[valueKey(v)]
}

// RangeEnd is one end of a LookupRange scan; a nil *RangeEnd leaves that
// side unbounded. Open excludes the endpoint value itself (strict
// comparison).
type RangeEnd struct {
	V    value.Value
	Open bool
}

// ensureOrdered returns the ordered index for attribute i, building it if
// absent or built from a different tuple count; callers hold c.mu.
func (r *Relation) ensureOrdered(i int) orderedEntry {
	c := r.idx
	e, ok := c.ord[i]
	if ok && e.builtLen == len(r.tuples) {
		return e
	}
	sorted := append([]Tuple(nil), r.tuples...)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a][i].Compare(sorted[b][i]) < 0 })
	distinct := 0
	for k, t := range sorted {
		if k == 0 || t[i].Compare(sorted[k-1][i]) != 0 {
			distinct++
		}
	}
	e = orderedEntry{builtLen: len(r.tuples), sorted: sorted, distinct: distinct}
	c.ord[i] = e
	c.built.Store(true)
	return e
}

// LookupRange returns the tuples whose attribute at index i falls within
// [lo, hi] (either end may be nil for unbounded, Open for strict), served
// from a lazily built ordered index by two binary searches. Within the
// returned run, tuples of equal key keep their original relation order.
// The slice is shared — callers must not mutate it. Mutating the relation
// invalidates the index.
func (r *Relation) LookupRange(i int, lo, hi *RangeEnd) []Tuple {
	if i < 0 || i >= len(r.Attrs) {
		return nil
	}
	c := r.idx
	c.mu.Lock()
	defer c.mu.Unlock()
	e := r.ensureOrdered(i)
	s := e.sorted
	from := 0
	if lo != nil {
		from = sort.Search(len(s), func(k int) bool {
			d := s[k][i].Compare(lo.V)
			if lo.Open {
				return d > 0
			}
			return d >= 0
		})
	}
	to := len(s)
	if hi != nil {
		to = sort.Search(len(s), func(k int) bool {
			d := s[k][i].Compare(hi.V)
			if hi.Open {
				return d >= 0
			}
			return d > 0
		})
	}
	if from >= to {
		return nil
	}
	return s[from:to]
}

// LookupCmp serves the primitive predicate "attr θ v" from a secondary
// index: equality from the hash index, <, ≤, >, ≥ from the ordered index.
// It reports ok=false for comparators no contiguous index run can serve
// (≠, and unknown comparators); callers then fall back to a scan.
func (r *Relation) LookupCmp(i int, op value.Cmp, v value.Value) ([]Tuple, bool) {
	switch op {
	case value.EQ:
		return r.LookupEq(i, v), true
	case value.LT:
		return r.LookupRange(i, nil, &RangeEnd{V: v, Open: true}), true
	case value.LE:
		return r.LookupRange(i, nil, &RangeEnd{V: v}), true
	case value.GT:
		return r.LookupRange(i, &RangeEnd{V: v, Open: true}, nil), true
	case value.GE:
		return r.LookupRange(i, &RangeEnd{V: v}, nil), true
	default:
		return nil, false
	}
}

// DistinctCount returns the number of distinct values at attribute i,
// from the ordered index (built on demand). It backs the planner's join
// cardinality estimates. Out-of-range attributes report 0.
func (r *Relation) DistinctCount(i int) int {
	if i < 0 || i >= len(r.Attrs) {
		return 0
	}
	c := r.idx
	c.mu.Lock()
	defer c.mu.Unlock()
	return r.ensureOrdered(i).distinct
}

// IndexedAttrs reports which attributes currently have a built hash index
// (diagnostics and tests).
func (r *Relation) IndexedAttrs() []int {
	c := r.idx
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, 0, len(c.byAttr))
	for i := range c.byAttr {
		out = append(out, i)
	}
	return out
}

// OrderedAttrs reports which attributes currently have a built ordered
// index (diagnostics and tests).
func (r *Relation) OrderedAttrs() []int {
	c := r.idx
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, 0, len(c.ord))
	for i := range c.ord {
		out = append(out, i)
	}
	return out
}
