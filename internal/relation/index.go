package relation

import (
	"sync"

	"authdb/internal/value"
)

// indexEntry is one built secondary index, remembering how many tuples it
// was built from: a Rename view holds a point-in-time slice header, so a
// shared cache entry is only valid for a reader whose tuple count
// matches.
type indexEntry struct {
	builtLen int
	m        map[string][]Tuple
}

// indexCache holds lazily built secondary hash indexes over a relation's
// tuples. Indexes are built on first equality lookup and invalidated
// wholesale by any mutation; the cache is shared across Rename views of
// the same storage and revalidated per reader by tuple count.
type indexCache struct {
	mu     sync.Mutex
	byAttr map[int]indexEntry
}

func newIndexCache() *indexCache {
	return &indexCache{byAttr: make(map[int]indexEntry)}
}

// bump invalidates every index.
func (c *indexCache) bump() {
	c.mu.Lock()
	if len(c.byAttr) > 0 {
		c.byAttr = make(map[int]indexEntry)
	}
	c.mu.Unlock()
}

// valueKey identifies a value for hashing, kind-tagged so Int(1) and
// String("1") stay distinct.
func valueKey(v value.Value) string {
	return string(byte(v.Kind())) + v.String()
}

// LookupEq returns the tuples whose attribute at index i equals v, served
// from a lazily built hash index. The returned slice is shared — callers
// must not mutate it. Mutating the relation invalidates the index.
func (r *Relation) LookupEq(i int, v value.Value) []Tuple {
	if i < 0 || i >= len(r.Attrs) {
		return nil
	}
	c := r.idx
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byAttr[i]
	if !ok || e.builtLen != len(r.tuples) {
		e = indexEntry{builtLen: len(r.tuples), m: make(map[string][]Tuple, len(r.tuples))}
		for _, t := range r.tuples {
			k := valueKey(t[i])
			e.m[k] = append(e.m[k], t)
		}
		c.byAttr[i] = e
	}
	return e.m[valueKey(v)]
}

// IndexedAttrs reports which attributes currently have a built index
// (diagnostics and tests).
func (r *Relation) IndexedAttrs() []int {
	c := r.idx
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, 0, len(c.byAttr))
	for i := range c.byAttr {
		out = append(out, i)
	}
	return out
}
