package relation

import (
	"encoding/csv"
	"fmt"
	"io"

	"authdb/internal/value"
)

// WriteCSV writes the relation with a header row. Integer values are
// written in decimal; strings verbatim; nulls as empty fields.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Attrs); err != nil {
		return err
	}
	row := make([]string, r.Arity())
	for _, t := range r.Sorted() {
		for i, v := range t {
			if v.IsNull() {
				row[i] = ""
			} else {
				row[i] = v.String()
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a relation written by WriteCSV: the first record is the
// attribute list; each field parses as an integer when it looks like one,
// otherwise as a string; empty fields are null.
func ReadCSV(r io.Reader) (*Relation, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("reading csv header: %w", err)
	}
	rel := New(header)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return rel, nil
		}
		if err != nil {
			return nil, fmt.Errorf("reading csv row: %w", err)
		}
		t := make(Tuple, len(rec))
		for i, f := range rec {
			if f == "" {
				t[i] = value.Null()
			} else {
				t[i] = value.Parse(f)
			}
		}
		if _, err := rel.Insert(t); err != nil {
			return nil, err
		}
	}
}
