package relation

import (
	"fmt"
	"io"
	"strings"
)

// RenderTable writes an ASCII table in the style of the paper's figures:
// a header row of attribute names, a rule, then the rows. Rows are printed
// in the order given. Attribute names are shortened to their bare part
// when short is true.
func RenderTable(w io.Writer, title string, attrs []string, rows [][]string, short bool) {
	header := make([]string, len(attrs))
	for i, a := range attrs {
		if short {
			_, header[i] = SplitQualified(a)
		} else {
			header[i] = a
		}
	}
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if title != "" {
		fmt.Fprintln(w, title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = c + strings.Repeat(" ", widths[i]-len(c))
		}
		fmt.Fprintln(w, "| "+strings.Join(parts, " | ")+" |")
	}
	rule := make([]string, len(header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(header)
	line(rule)
	for _, row := range rows {
		line(row)
	}
}

// Render writes the relation as an ASCII table in canonical tuple order.
func (r *Relation) Render(w io.Writer, title string) {
	rows := make([][]string, 0, r.Len())
	for _, t := range r.Sorted() {
		row := make([]string, len(t))
		for i, v := range t {
			row[i] = v.String()
		}
		rows = append(rows, row)
	}
	RenderTable(w, title, r.Attrs, rows, true)
}

// String renders the relation as a table.
func (r *Relation) String() string {
	var b strings.Builder
	r.Render(&b, "")
	return b.String()
}
