package relation

import (
	"fmt"
	"sync"
	"testing"

	"authdb/internal/value"
)

func vt(vals ...int64) Tuple {
	t := make(Tuple, len(vals))
	for i, v := range vals {
		t[i] = value.Int(v)
	}
	return t
}

// tuplesOf renders a revision's tuples canonically for comparison.
func tuplesOf(r *Relation) []string {
	out := make([]string, 0, r.Len())
	for _, t := range r.Sorted() {
		s := ""
		for _, v := range t {
			s += v.String() + ","
		}
		out = append(out, s)
	}
	return out
}

func sameTuples(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestVersionedCopyOnWrite checks that every mutation publishes a
// successor revision while all previously captured heads keep exactly
// the contents they had when captured.
func TestVersionedCopyOnWrite(t *testing.T) {
	v := NewVersioned([]string{"A", "B"})

	type snap struct {
		head *Relation
		want []string
	}
	var snaps []snap
	pin := func() {
		h := v.Head()
		snaps = append(snaps, snap{head: h, want: tuplesOf(h)})
	}

	pin() // empty
	for i := int64(0); i < 20; i++ {
		ok, err := v.Insert(vt(i, i*10))
		if err != nil || !ok {
			t.Fatalf("insert %d: ok=%v err=%v", i, ok, err)
		}
		pin()
	}
	if ok, err := v.Insert(vt(3, 30)); err != nil || ok {
		t.Fatalf("duplicate insert: ok=%v err=%v (want false, nil)", ok, err)
	}
	if !v.Contains(vt(3, 30)) || v.Contains(vt(99, 0)) {
		t.Fatal("Contains disagrees with inserted membership")
	}

	preDelete := v.Head()
	if n := v.Delete(func(tp Tuple) bool { return tp[0].AsInt()%2 == 0 }); n != 10 {
		t.Fatalf("delete evens: removed %d, want 10", n)
	}
	pin()
	if v.Contains(vt(2, 20)) {
		t.Fatal("Contains still reports deleted tuple")
	}
	if preDelete.Len() != 20 {
		t.Fatalf("pre-delete head mutated: len %d, want 20", preDelete.Len())
	}

	// A delete matching nothing must leave the head pointer unchanged.
	h := v.Head()
	if n := v.Delete(func(Tuple) bool { return false }); n != 0 {
		t.Fatalf("no-op delete removed %d", n)
	}
	if v.Head() != h {
		t.Fatal("no-op delete published a new revision")
	}

	// Re-inserting a deleted tuple must succeed (membership was updated).
	if ok, err := v.Insert(vt(2, 20)); err != nil || !ok {
		t.Fatalf("re-insert after delete: ok=%v err=%v", ok, err)
	}

	for i, s := range snaps {
		if got := tuplesOf(s.head); !sameTuples(got, s.want) {
			t.Fatalf("snapshot %d changed after later mutations:\n got %v\nwant %v", i, got, s.want)
		}
	}
}

// TestVersionedOfAdoptsRelation checks that VersionedOf builds its
// membership set from the adopted revision.
func TestVersionedOfAdoptsRelation(t *testing.T) {
	r := New([]string{"X"})
	for i := int64(0); i < 5; i++ {
		if _, err := r.Insert(vt(i)); err != nil {
			t.Fatal(err)
		}
	}
	v := VersionedOf(r)
	if v.Len() != 5 || v.Arity() != 1 {
		t.Fatalf("adopted len=%d arity=%d", v.Len(), v.Arity())
	}
	if ok, _ := v.Insert(vt(3)); ok {
		t.Fatal("duplicate of adopted tuple accepted")
	}
	if ok, _ := v.Insert(vt(7)); !ok {
		t.Fatal("fresh tuple rejected")
	}
}

// TestVersionedArityMismatch checks the writer-side arity guard.
func TestVersionedArityMismatch(t *testing.T) {
	v := NewVersioned([]string{"A", "B"})
	if _, err := v.Insert(vt(1)); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

// TestVersionedPinnedReadersRace drives one writer (inserts and deletes
// advancing the head) against many readers pinned at whatever revision
// they captured; under -race this proves published revisions are never
// written again. Each reader verifies its revision is internally
// consistent: the same contents however many times it is re-read.
func TestVersionedPinnedReadersRace(t *testing.T) {
	v := NewVersioned([]string{"A", "B"})
	for i := int64(0); i < 64; i++ {
		if _, err := v.Insert(vt(i, i)); err != nil {
			t.Fatal(err)
		}
	}

	var mu sync.Mutex // serializes the writer role only
	heads := make(chan *Relation, 1024)
	done := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		defer close(heads)
		for i := int64(64); i < 2064; i++ {
			mu.Lock()
			if i%17 == 0 {
				v.Delete(func(tp Tuple) bool { return tp[0].AsInt() == i-60 })
			}
			v.Insert(vt(i, i)) //nolint:errcheck
			h := v.Head()
			mu.Unlock()
			select {
			case heads <- h:
			default:
			}
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for h := range heads {
				first := tuplesOf(h)
				for k := 0; k < 3; k++ {
					select {
					case <-done:
					default:
					}
					if again := tuplesOf(h); !sameTuples(first, again) {
						panic(fmt.Sprintf("pinned revision changed between reads: %d vs %d tuples", len(first), len(again)))
					}
				}
			}
		}()
	}
	wg.Wait()
	close(done)
}
