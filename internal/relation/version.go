package relation

import "fmt"

// Versioned is the MVCC wrapper around a base relation: a lineage of
// immutable revisions plus the writer-owned bookkeeping that makes each
// mutation cheap. Head returns the current revision; Insert and Delete
// never modify a published revision, they build a successor and advance
// the head, so any goroutine that captured an earlier Head keeps a
// stable snapshot for as long as it holds the pointer.
//
// Contract: a Versioned has a single serialized writer (the engine's
// statement lock). Inserts extend the newest revision's tuple slice via
// append — the backing array is shared with older revisions, which is
// safe precisely because the append frontier only ever advances at the
// newest revision and readers of an older head see only its own prefix.
// Deletes build a fresh slice (never compacting shared storage, unlike
// Relation.Delete). Published revisions must be treated as immutable:
// read them through Tuples, Len, Sorted, the index cache, or Clone —
// never through Insert, Append, Delete, or Contains, whose lazy
// membership-index rebuild mutates the struct.
//
// The duplicate-check membership set lives here, owned by the writer,
// instead of on the revisions: sharing one map across revisions would
// race with concurrent readers, and copying it per mutation would cost
// O(n) — exactly what copy-on-write avoids. Each mutated revision gets
// a fresh secondary-index cache; a pinned reader keeps the indexes it
// already built for its revision.
type Versioned struct {
	head *Relation
	// memb is the membership set of head, keyed like Relation.index.
	memb map[string]bool
}

// NewVersioned creates an empty versioned relation over the attributes.
func NewVersioned(attrs []string) *Versioned {
	return &Versioned{head: New(attrs), memb: make(map[string]bool)}
}

// VersionedOf adopts r as the initial head revision, taking ownership:
// the caller must not mutate r afterwards.
func VersionedOf(r *Relation) *Versioned {
	m := make(map[string]bool, len(r.tuples))
	for _, t := range r.tuples {
		m[t.key()] = true
	}
	return &Versioned{head: r, memb: m}
}

// Head returns the current revision. The returned relation is immutable;
// it remains a consistent snapshot however many mutations follow.
func (v *Versioned) Head() *Relation { return v.head }

// Len returns the current revision's cardinality.
func (v *Versioned) Len() int { return len(v.head.tuples) }

// Arity returns the number of attributes.
func (v *Versioned) Arity() int { return len(v.head.Attrs) }

// Insert adds a tuple under set semantics by publishing a successor
// revision; it reports whether the tuple was new (a duplicate leaves the
// head unchanged). The tuple's arity must match the relation's.
func (v *Versioned) Insert(t Tuple) (bool, error) {
	if len(t) != len(v.head.Attrs) {
		return false, fmt.Errorf("arity mismatch: tuple has %d values, relation %d attributes", len(t), len(v.head.Attrs))
	}
	k := t.key()
	if v.memb[k] {
		return false, nil
	}
	v.memb[k] = true
	old := v.head
	// Shares old's backing array when capacity allows: the single-writer
	// contract guarantees only the newest revision's frontier is ever
	// appended to, so older heads' prefixes are never overwritten.
	tuples := append(old.tuples, t.Clone())
	v.head = &Relation{Attrs: old.Attrs, tuples: tuples, idx: newIndexCache()}
	return true, nil
}

// Delete removes the tuples satisfying pred by publishing a successor
// revision built from a fresh slice; it returns how many were removed
// (zero leaves the head unchanged).
func (v *Versioned) Delete(pred func(Tuple) bool) int {
	old := v.head
	kept := make([]Tuple, 0, len(old.tuples))
	removed := 0
	for _, t := range old.tuples {
		if pred(t) {
			delete(v.memb, t.key())
			removed++
		} else {
			kept = append(kept, t)
		}
	}
	if removed == 0 {
		return 0
	}
	v.head = &Relation{Attrs: old.Attrs, tuples: kept, idx: newIndexCache()}
	return removed
}

// Contains reports set membership in the current revision without
// touching the revision itself (the writer-owned set answers).
func (v *Versioned) Contains(t Tuple) bool { return v.memb[t.key()] }

// ExtendsByAppend reports whether nw's tuple storage extends old's by
// pure appends — the successor-revision relationship Versioned.Insert
// creates when revisions share a backing array. When true, nw's tuples
// are exactly old's tuples followed by nw.Tuples()[old.Len():], so a
// result materialized against old can be brought forward by evaluating
// only the appended window.
//
// The check compares the storage identity of old's last tuple at the
// same position in nw. Each tuple's value array is unique to it (Insert
// clones), so position n-1 holding the same storage in both means that
// tuple never moved — and since deletions only ever shift tuples left
// while inserts only append, a tuple still at its original index
// implies every tuple before it is intact too. Storage identity (not
// slice-element address) survives the reallocation append performs when
// the shared backing array's capacity is exhausted. An empty old is
// extended by anything — every row of nw is appended.
func ExtendsByAppend(old, nw *Relation) bool {
	n := len(old.tuples)
	if n > len(nw.tuples) {
		return false
	}
	if n == 0 {
		return true
	}
	a, b := old.tuples[n-1], nw.tuples[n-1]
	return len(a) > 0 && len(a) == len(b) && &a[0] == &b[0]
}

// Suffix returns a relation over the same attributes holding the tuples
// from position from on, sharing tuple storage with r. It is the
// "appended window" counterpart of ExtendsByAppend: evaluating a plan
// over nw.Suffix(old.Len()) touches only the rows old lacks.
func (r *Relation) Suffix(from int) *Relation {
	if from < 0 {
		from = 0
	}
	if from > len(r.tuples) {
		from = len(r.tuples)
	}
	return &Relation{Attrs: r.Attrs, tuples: r.tuples[from:], idx: newIndexCache()}
}
