// Package relation implements the relational substrate of the library:
// relation schemes, database schemes, and in-memory relations with set
// semantics, plus table rendering and CSV interchange.
//
// Definitions follow the paper's §2 (after Maier): a relation scheme is a
// finite set of attributes with associated domains; a relation is a subset
// of the product of those domains; a database scheme is a set of relation
// schemes; a database instance assigns a relation to each scheme.
package relation

import (
	"fmt"
	"strings"

	"authdb/internal/value"
)

// Schema is a relation scheme: a named, ordered list of attributes with an
// optional declared key. The key is not required by the base model; it
// enables the paper's §4.2 self-join refinement, which needs a lossless
// join witness ("for example, both subviews include the key").
type Schema struct {
	Name  string
	Attrs []string
	// Key holds the indices into Attrs of a candidate key, or nil when no
	// key is declared.
	Key []int
}

// NewSchema builds a scheme, validating attribute names for uniqueness.
// keyAttrs names the key attributes (may be empty).
func NewSchema(name string, attrs []string, keyAttrs ...string) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("relation: empty relation name")
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("relation %s: no attributes", name)
	}
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("relation %s: empty attribute name", name)
		}
		if seen[a] {
			return nil, fmt.Errorf("relation %s: duplicate attribute %s", name, a)
		}
		seen[a] = true
	}
	s := &Schema{Name: name, Attrs: append([]string(nil), attrs...)}
	for _, k := range keyAttrs {
		i := s.AttrIndex(k)
		if i < 0 {
			return nil, fmt.Errorf("relation %s: key attribute %s not in scheme", name, k)
		}
		s.Key = append(s.Key, i)
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and fixtures.
func MustSchema(name string, attrs []string, keyAttrs ...string) *Schema {
	s, err := NewSchema(name, attrs, keyAttrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// AttrIndex returns the position of attribute a, or -1.
func (s *Schema) AttrIndex(a string) int {
	for i, x := range s.Attrs {
		if x == a {
			return i
		}
	}
	return -1
}

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.Attrs) }

// KeyAttrs returns the names of the declared key attributes.
func (s *Schema) KeyAttrs() []string {
	out := make([]string, len(s.Key))
	for i, k := range s.Key {
		out[i] = s.Attrs[k]
	}
	return out
}

// String renders the scheme the way the paper writes it, e.g.
// "EMPLOYEE = (NAME, TITLE, SALARY)".
func (s *Schema) String() string {
	return s.Name + " = (" + strings.Join(s.Attrs, ", ") + ")"
}

// DBSchema is a database scheme: a set of relation schemes addressed by
// name.
type DBSchema struct {
	order   []string
	schemas map[string]*Schema
}

// NewDBSchema builds an empty database scheme.
func NewDBSchema() *DBSchema {
	return &DBSchema{schemas: make(map[string]*Schema)}
}

// Add registers a relation scheme; duplicate names are rejected.
func (d *DBSchema) Add(s *Schema) error {
	if _, ok := d.schemas[s.Name]; ok {
		return fmt.Errorf("relation %s already defined", s.Name)
	}
	d.schemas[s.Name] = s
	d.order = append(d.order, s.Name)
	return nil
}

// Lookup returns the scheme for name, or nil.
func (d *DBSchema) Lookup(name string) *Schema { return d.schemas[name] }

// Clone returns a copy of the database scheme that can be extended
// without affecting the original. The relation schemes themselves are
// shared — they are immutable once built — so cloning is O(#relations),
// which is what lets a versioned engine publish the old scheme to
// pinned readers while the writer adds a relation to the new one.
func (d *DBSchema) Clone() *DBSchema {
	out := &DBSchema{
		order:   append([]string(nil), d.order...),
		schemas: make(map[string]*Schema, len(d.schemas)),
	}
	for n, s := range d.schemas {
		out.schemas[n] = s
	}
	return out
}

// Names returns the relation names in definition order.
func (d *DBSchema) Names() []string { return append([]string(nil), d.order...) }

// QualifyAttrs returns the attributes of scheme rel qualified with the
// given alias, e.g. alias "EMPLOYEE:1" yields "EMPLOYEE:1.NAME", …. Query
// processing works over qualified names so that self-products stay
// unambiguous (paper §5, footnote 4).
func QualifyAttrs(alias string, attrs []string) []string {
	out := make([]string, len(attrs))
	for i, a := range attrs {
		out[i] = alias + "." + a
	}
	return out
}

// SplitQualified splits "alias.ATTR" into its alias and attribute parts.
// Attribute names cannot contain dots, so the last dot separates.
func SplitQualified(q string) (alias, attr string) {
	if i := strings.LastIndexByte(q, '.'); i >= 0 {
		return q[:i], q[i+1:]
	}
	return "", q
}

// BaseOfAlias strips a ":i" occurrence suffix from an alias: "EMPLOYEE:2"
// yields "EMPLOYEE". An alias without a suffix is its own base.
func BaseOfAlias(alias string) string {
	if i := strings.IndexByte(alias, ':'); i >= 0 {
		return alias[:i]
	}
	return alias
}

// value is referenced here so the package's doc-level dependency is clear;
// Tuple aliases live in relation.go.
var _ = value.Null
