package relation

import (
	"fmt"
	"sort"
	"strings"

	"authdb/internal/value"
)

// Tuple is one row of a relation.
type Tuple []value.Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Equal reports element-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically; used for canonical rendering
// and set comparison.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if d := t[i].Compare(u[i]); d != 0 {
			return d
		}
	}
	return len(t) - len(u)
}

// key returns a map key identifying the tuple for set semantics.
func (t Tuple) key() string {
	var b strings.Builder
	for _, v := range t {
		b.WriteByte(byte(v.Kind()))
		b.WriteString(v.String())
		b.WriteByte(0)
	}
	return b.String()
}

// Relation is a relation instance: a set of tuples over an ordered list of
// (possibly qualified) attribute names. Base relations use bare attribute
// names; intermediate and answer relations use qualified names such as
// "EMPLOYEE:1.NAME".
//
// The membership index (backing Insert's duplicate check and Contains) is
// maintained eagerly by Insert but invalidated by Append; the first
// subsequent operation that needs it rebuilds it. Rebuilding mutates the
// relation, so a relation that may have a stale index must not be shared
// across goroutines; relations populated purely by Insert always have a
// current index and are safe for concurrent reads.
type Relation struct {
	Attrs  []string
	tuples []Tuple
	// index holds the membership set; nil means stale (rebuild before use).
	index map[string]bool
	idx   *indexCache
}

// New creates an empty relation over the given attributes.
func New(attrs []string) *Relation {
	return &Relation{
		Attrs: append([]string(nil), attrs...),
		index: make(map[string]bool),
		idx:   newIndexCache(),
	}
}

// FromSchema creates an empty relation matching a relation scheme.
func FromSchema(s *Schema) *Relation { return New(s.Attrs) }

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.Attrs) }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples returns the tuple slice (callers must not mutate it).
func (r *Relation) Tuples() []Tuple { return r.tuples }

// AttrIndex returns the position of attribute a, or -1. Lookups accept
// either the exact (qualified) name or, when unambiguous, the bare
// attribute name.
func (r *Relation) AttrIndex(a string) int {
	for i, x := range r.Attrs {
		if x == a {
			return i
		}
	}
	// Fall back to an unambiguous suffix match on the bare attribute name.
	found := -1
	for i, x := range r.Attrs {
		if _, bare := SplitQualified(x); bare == a {
			if found >= 0 {
				return -1 // ambiguous
			}
			found = i
		}
	}
	return found
}

// ensureIndex rebuilds the membership index after Append invalidated it.
func (r *Relation) ensureIndex() {
	if r.index != nil {
		return
	}
	idx := make(map[string]bool, len(r.tuples))
	for _, t := range r.tuples {
		idx[t.key()] = true
	}
	r.index = idx
}

// Insert adds a tuple under set semantics; it reports whether the tuple was
// new. The tuple's arity must match the relation's.
func (r *Relation) Insert(t Tuple) (bool, error) {
	if len(t) != len(r.Attrs) {
		return false, fmt.Errorf("arity mismatch: tuple has %d values, relation %d attributes", len(t), len(r.Attrs))
	}
	r.ensureIndex()
	k := t.key()
	if r.index[k] {
		return false, nil
	}
	r.index[k] = true
	r.tuples = append(r.tuples, t.Clone())
	r.idx.bump()
	return true, nil
}

// Append adds a tuple the caller guarantees is not already present —
// outputs of products, joins, and selections over proper sets are unique
// by construction — skipping the duplicate check and taking ownership of
// t (no clone). The membership index goes stale and is rebuilt lazily by
// the next Insert or Contains. The arity must match.
func (r *Relation) Append(t Tuple) {
	r.tuples = append(r.tuples, t)
	r.index = nil
	r.idx.bump()
}

// MustInsert inserts and panics on arity mismatch; for fixtures.
func (r *Relation) MustInsert(vals ...value.Value) {
	if _, err := r.Insert(Tuple(vals)); err != nil {
		panic(err)
	}
}

// Delete removes all tuples satisfying keep==false under pred, returning
// how many were removed.
func (r *Relation) Delete(pred func(Tuple) bool) int {
	kept := r.tuples[:0]
	removed := 0
	for _, t := range r.tuples {
		if pred(t) {
			if r.index != nil {
				delete(r.index, t.key())
			}
			removed++
		} else {
			kept = append(kept, t)
		}
	}
	r.tuples = kept
	if removed > 0 {
		r.idx.bump()
	}
	return removed
}

// Contains reports set membership of the tuple. After an Append, the
// first call rebuilds the membership index (and therefore mutates r).
func (r *Relation) Contains(t Tuple) bool {
	r.ensureIndex()
	return r.index[t.key()]
}

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	out := New(r.Attrs)
	for _, t := range r.tuples {
		out.index[t.key()] = true
		out.tuples = append(out.tuples, t.Clone())
	}
	return out
}

// Sorted returns the tuples in canonical (lexicographic) order without
// mutating the relation.
func (r *Relation) Sorted() []Tuple {
	out := append([]Tuple(nil), r.tuples...)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Equal reports set equality with s: same attribute list and same tuples.
func (r *Relation) Equal(s *Relation) bool {
	if len(r.Attrs) != len(s.Attrs) || len(r.tuples) != len(s.tuples) {
		return false
	}
	for i := range r.Attrs {
		if r.Attrs[i] != s.Attrs[i] {
			return false
		}
	}
	for _, t := range r.tuples {
		if !s.Contains(t) {
			return false
		}
	}
	return true
}

// Project returns the projection of r onto the attributes at the given
// indices, with set semantics (duplicates collapse).
func (r *Relation) Project(idx []int) *Relation {
	attrs := make([]string, len(idx))
	for i, j := range idx {
		attrs[i] = r.Attrs[j]
	}
	out := New(attrs)
	row := make(Tuple, len(idx))
	for _, t := range r.tuples {
		for i, j := range idx {
			row[i] = t[j]
		}
		out.Insert(row) //nolint:errcheck // arity is correct by construction
	}
	return out
}

// Select returns the tuples satisfying pred.
func (r *Relation) Select(pred func(Tuple) bool) *Relation {
	out := New(r.Attrs)
	for _, t := range r.tuples {
		if pred(t) {
			out.Insert(t) //nolint:errcheck // arity is correct by construction
		}
	}
	return out
}

// Product returns the cartesian product r × s with concatenated attribute
// lists.
func (r *Relation) Product(s *Relation) *Relation {
	attrs := append(append([]string(nil), r.Attrs...), s.Attrs...)
	out := New(attrs)
	for _, a := range r.tuples {
		for _, b := range s.tuples {
			row := make(Tuple, 0, len(a)+len(b))
			row = append(append(row, a...), b...)
			out.Insert(row) //nolint:errcheck // arity is correct by construction
		}
	}
	return out
}

// Rename returns a shallow-ish copy of r with a new attribute list (same
// arity), used to qualify base relations with query aliases.
func (r *Relation) Rename(attrs []string) *Relation {
	if len(attrs) != len(r.Attrs) {
		panic("relation: Rename arity mismatch")
	}
	out := &Relation{Attrs: append([]string(nil), attrs...), tuples: r.tuples, index: r.index, idx: r.idx}
	return out
}
