package relation

import (
	"testing"

	"authdb/internal/value"
)

func TestLookupEq(t *testing.T) {
	r := New([]string{"A", "B"})
	for i := int64(0); i < 10; i++ {
		r.MustInsert(vi(i), vi(i%3))
	}
	got := r.LookupEq(1, vi(1))
	if len(got) != 3 {
		t.Fatalf("lookup returned %d tuples, want 3", len(got))
	}
	for _, tp := range got {
		if tp[1].AsInt() != 1 {
			t.Fatalf("wrong tuple %v", tp)
		}
	}
	if len(r.LookupEq(1, vi(99))) != 0 {
		t.Fatal("missing value matched")
	}
	if r.LookupEq(-1, vi(0)) != nil || r.LookupEq(5, vi(0)) != nil {
		t.Fatal("out-of-range attribute must return nil")
	}
	if idx := r.IndexedAttrs(); len(idx) != 1 || idx[0] != 1 {
		t.Fatalf("IndexedAttrs = %v", idx)
	}
}

func TestLookupEqKindDistinct(t *testing.T) {
	r := New([]string{"A"})
	r.MustInsert(vi(1))
	r.MustInsert(vs("1"))
	if len(r.LookupEq(0, vi(1))) != 1 {
		t.Fatal("Int(1) lookup must not match String(\"1\")")
	}
	if len(r.LookupEq(0, vs("1"))) != 1 {
		t.Fatal("String lookup must not match Int")
	}
}

func TestIndexInvalidation(t *testing.T) {
	r := New([]string{"A"})
	r.MustInsert(vi(1))
	if len(r.LookupEq(0, vi(1))) != 1 {
		t.Fatal("initial lookup")
	}
	r.MustInsert(vi(1)) // duplicate: no change, index may stay
	r.MustInsert(vi(2))
	if len(r.LookupEq(0, vi(2))) != 1 {
		t.Fatal("index not refreshed after insert")
	}
	r.Delete(func(t Tuple) bool { return t[0].AsInt() == 1 })
	if len(r.LookupEq(0, vi(1))) != 0 {
		t.Fatal("index not refreshed after delete")
	}
}

func TestLookupRange(t *testing.T) {
	r := New([]string{"A", "B"})
	for i := int64(0); i < 10; i++ {
		r.MustInsert(vi(i), vi(i%3))
	}
	got := r.LookupRange(0, &RangeEnd{V: vi(3)}, &RangeEnd{V: vi(6), Open: true})
	if len(got) != 3 {
		t.Fatalf("[3,6) returned %d tuples, want 3", len(got))
	}
	for k, tp := range got {
		if tp[0].AsInt() != int64(3+k) {
			t.Fatalf("run out of order: %v", got)
		}
	}
	if got := r.LookupRange(0, nil, nil); len(got) != 10 {
		t.Fatalf("unbounded range returned %d tuples, want 10", len(got))
	}
	if got := r.LookupRange(0, &RangeEnd{V: vi(7), Open: true}, nil); len(got) != 2 {
		t.Fatalf("(7,+inf) returned %d tuples, want 2", len(got))
	}
	if r.LookupRange(-1, nil, nil) != nil || r.LookupRange(5, nil, nil) != nil {
		t.Fatal("out-of-range attribute must return nil")
	}
	if idx := r.OrderedAttrs(); len(idx) != 1 || idx[0] != 0 {
		t.Fatalf("OrderedAttrs = %v", idx)
	}
}

func TestLookupRangeEmpty(t *testing.T) {
	r := New([]string{"A"})
	for i := int64(0); i < 5; i++ {
		r.MustInsert(vi(i))
	}
	cases := []struct {
		lo, hi *RangeEnd
	}{
		{&RangeEnd{V: vi(4), Open: true}, nil},              // > max
		{nil, &RangeEnd{V: vi(0), Open: true}},              // < min
		{&RangeEnd{V: vi(3)}, &RangeEnd{V: vi(2)}},          // inverted
		{&RangeEnd{V: vi(2), Open: true}, &RangeEnd{V: vi(3), Open: true}}, // open-open gap
		{&RangeEnd{V: vi(99)}, nil},                         // beyond domain
	}
	for k, c := range cases {
		if got := r.LookupRange(0, c.lo, c.hi); len(got) != 0 {
			t.Fatalf("case %d: empty range returned %v", k, got)
		}
	}
	empty := New([]string{"A"})
	if got := empty.LookupRange(0, nil, nil); len(got) != 0 {
		t.Fatal("empty relation range must be empty")
	}
}

func TestLookupRangeKindBoundary(t *testing.T) {
	// The total order is kind-major: null < every int < every string.
	r := New([]string{"A"})
	r.MustInsert(vi(5))
	r.MustInsert(vi(100))
	r.MustInsert(vs("5"))
	r.MustInsert(vs("abc"))
	// An int-bounded upper range never captures strings.
	if got := r.LookupRange(0, nil, &RangeEnd{V: vi(1000)}); len(got) != 2 {
		t.Fatalf("int range caught strings: %v", got)
	}
	// A string-bounded lower range starts above every int.
	if got := r.LookupRange(0, &RangeEnd{V: vs("")}, nil); len(got) != 2 {
		t.Fatalf("string range caught ints: %v", got)
	}
	// String ordering is lexicographic: "5" > "100" as strings.
	if got := r.LookupRange(0, &RangeEnd{V: vs("2")}, &RangeEnd{V: vs("6")}); len(got) != 1 || got[0][0].String() != "5" {
		t.Fatalf("lexicographic string range wrong: %v", got)
	}
}

func TestLookupCmp(t *testing.T) {
	r := New([]string{"A"})
	for i := int64(0); i < 6; i++ {
		r.MustInsert(vi(i))
	}
	for _, c := range []struct {
		op   value.Cmp
		v    int64
		want int
	}{
		{value.EQ, 3, 1},
		{value.LT, 3, 3},
		{value.LE, 3, 4},
		{value.GT, 3, 2},
		{value.GE, 3, 3},
	} {
		got, ok := r.LookupCmp(0, c.op, vi(c.v))
		if !ok || len(got) != c.want {
			t.Fatalf("%v %d: got %d ok=%v, want %d", c.op, c.v, len(got), ok, c.want)
		}
	}
	// ≠ has no contiguous run: callers must fall back to a scan.
	if _, ok := r.LookupCmp(0, value.NE, vi(3)); ok {
		t.Fatal("NE must not be index-served")
	}
}

func TestDistinctCount(t *testing.T) {
	r := New([]string{"A", "B"})
	for i := int64(0); i < 12; i++ {
		r.MustInsert(vi(i), vi(i%4))
	}
	if got := r.DistinctCount(0); got != 12 {
		t.Fatalf("DistinctCount(0) = %d, want 12", got)
	}
	if got := r.DistinctCount(1); got != 4 {
		t.Fatalf("DistinctCount(1) = %d, want 4", got)
	}
	if got := r.DistinctCount(-1); got != 0 {
		t.Fatalf("DistinctCount(-1) = %d, want 0", got)
	}
	if got := New([]string{"A"}).DistinctCount(0); got != 0 {
		t.Fatalf("empty DistinctCount = %d, want 0", got)
	}
}

// TestOrderedIndexAppendInterleave pins the lazy-rebuild contract: Append
// marks indexes stale (it must not eagerly rebuild), and the next lookup
// — hash or ordered — sees every appended tuple. Run under -race with the
// concurrent read phase at the end.
func TestOrderedIndexAppendInterleave(t *testing.T) {
	r := New([]string{"A"})
	for i := int64(0); i < 8; i++ {
		r.Append(Tuple{vi(i)})
		if got := r.LookupRange(0, &RangeEnd{V: vi(i)}, nil); len(got) != 1 {
			t.Fatalf("after append %d: range missed the new tuple (%v)", i, got)
		}
		if got := r.LookupEq(0, vi(i)); len(got) != 1 {
			t.Fatalf("after append %d: hash index stale", i)
		}
		if got := r.DistinctCount(0); got != int(i)+1 {
			t.Fatalf("after append %d: DistinctCount = %d", i, got)
		}
	}
	// With the data quiescent, concurrent readers share the built entries.
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for k := 0; k < 50; k++ {
				if got := r.LookupRange(0, &RangeEnd{V: vi(2)}, &RangeEnd{V: vi(5)}); len(got) != 4 {
					t.Errorf("concurrent range got %d tuples", len(got))
					return
				}
				if r.DistinctCount(0) != 8 {
					t.Error("concurrent distinct wrong")
					return
				}
			}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}

func TestOrderedIndexSharedThroughRename(t *testing.T) {
	r := New([]string{"A"})
	r.MustInsert(vi(7))
	q := r.Rename([]string{"X.A"})
	if len(q.LookupRange(0, &RangeEnd{V: vi(0)}, nil)) != 1 {
		t.Fatal("renamed view misses shared tuples")
	}
	// Same point-in-time contract as the hash index: after a base
	// mutation, the base must not serve the entry built through the
	// rename's older snapshot, and the snapshot keeps its own view.
	r.MustInsert(vi(8))
	if len(q.LookupRange(0, &RangeEnd{V: vi(0)}, nil)) != 1 {
		t.Fatal("snapshot lost its own tuples")
	}
	if len(r.LookupRange(0, &RangeEnd{V: vi(0)}, nil)) != 2 {
		t.Fatal("base served a stale ordered index built through the rename snapshot")
	}
	if q.DistinctCount(0) != 1 || r.DistinctCount(0) != 2 {
		t.Fatal("distinct counts must follow each reader's snapshot")
	}
}

func TestIndexSharedThroughRename(t *testing.T) {
	r := New([]string{"A"})
	r.MustInsert(vi(7))
	q := r.Rename([]string{"X.A"})
	if len(q.LookupEq(0, vi(7))) != 1 {
		t.Fatal("renamed view misses shared tuples")
	}
	// A Rename is a point-in-time view: it holds the slice header as of
	// its creation. The invariant the shared cache must keep is that the
	// BASE never serves an index built from the rename's older snapshot.
	r.MustInsert(vi(8))
	if len(q.LookupEq(0, vi(7))) != 1 {
		t.Fatal("snapshot lost its own tuples")
	}
	if len(r.LookupEq(0, vi(8))) != 1 {
		t.Fatal("base served a stale index built through the rename snapshot")
	}
	// And a rename taken after the mutation sees everything.
	q2 := r.Rename([]string{"Y.A"})
	if len(q2.LookupEq(0, vi(8))) != 1 {
		t.Fatal("fresh rename misses new tuples")
	}
}
