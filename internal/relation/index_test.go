package relation

import (
	"testing"
)

func TestLookupEq(t *testing.T) {
	r := New([]string{"A", "B"})
	for i := int64(0); i < 10; i++ {
		r.MustInsert(vi(i), vi(i%3))
	}
	got := r.LookupEq(1, vi(1))
	if len(got) != 3 {
		t.Fatalf("lookup returned %d tuples, want 3", len(got))
	}
	for _, tp := range got {
		if tp[1].AsInt() != 1 {
			t.Fatalf("wrong tuple %v", tp)
		}
	}
	if len(r.LookupEq(1, vi(99))) != 0 {
		t.Fatal("missing value matched")
	}
	if r.LookupEq(-1, vi(0)) != nil || r.LookupEq(5, vi(0)) != nil {
		t.Fatal("out-of-range attribute must return nil")
	}
	if idx := r.IndexedAttrs(); len(idx) != 1 || idx[0] != 1 {
		t.Fatalf("IndexedAttrs = %v", idx)
	}
}

func TestLookupEqKindDistinct(t *testing.T) {
	r := New([]string{"A"})
	r.MustInsert(vi(1))
	r.MustInsert(vs("1"))
	if len(r.LookupEq(0, vi(1))) != 1 {
		t.Fatal("Int(1) lookup must not match String(\"1\")")
	}
	if len(r.LookupEq(0, vs("1"))) != 1 {
		t.Fatal("String lookup must not match Int")
	}
}

func TestIndexInvalidation(t *testing.T) {
	r := New([]string{"A"})
	r.MustInsert(vi(1))
	if len(r.LookupEq(0, vi(1))) != 1 {
		t.Fatal("initial lookup")
	}
	r.MustInsert(vi(1)) // duplicate: no change, index may stay
	r.MustInsert(vi(2))
	if len(r.LookupEq(0, vi(2))) != 1 {
		t.Fatal("index not refreshed after insert")
	}
	r.Delete(func(t Tuple) bool { return t[0].AsInt() == 1 })
	if len(r.LookupEq(0, vi(1))) != 0 {
		t.Fatal("index not refreshed after delete")
	}
}

func TestIndexSharedThroughRename(t *testing.T) {
	r := New([]string{"A"})
	r.MustInsert(vi(7))
	q := r.Rename([]string{"X.A"})
	if len(q.LookupEq(0, vi(7))) != 1 {
		t.Fatal("renamed view misses shared tuples")
	}
	// A Rename is a point-in-time view: it holds the slice header as of
	// its creation. The invariant the shared cache must keep is that the
	// BASE never serves an index built from the rename's older snapshot.
	r.MustInsert(vi(8))
	if len(q.LookupEq(0, vi(7))) != 1 {
		t.Fatal("snapshot lost its own tuples")
	}
	if len(r.LookupEq(0, vi(8))) != 1 {
		t.Fatal("base served a stale index built through the rename snapshot")
	}
	// And a rename taken after the mutation sees everything.
	q2 := r.Rename([]string{"Y.A"})
	if len(q2.LookupEq(0, vi(8))) != 1 {
		t.Fatal("fresh rename misses new tuples")
	}
}
