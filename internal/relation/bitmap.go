package relation

import "math/bits"

// Bitmap is a growable bitset over row positions. The mask closure keys
// one per mask tuple, bit i meaning "answer row i is delivered through
// this tuple": applying a materialized mask is then bitmap membership
// plus column projection instead of per-row meta-tuple matching.
//
// The zero value is ready to use. A Bitmap has a single writer; readers
// of a published (no longer written) bitmap need no synchronization.
type Bitmap struct {
	words []uint64
}

// NewBitmap returns an empty bitmap.
func NewBitmap() *Bitmap { return &Bitmap{} }

// Set marks position i, growing the bitmap as needed.
func (b *Bitmap) Set(i int) {
	w := i >> 6
	for len(b.words) <= w {
		b.words = append(b.words, 0)
	}
	b.words[w] |= 1 << uint(i&63)
}

// Get reports whether position i is set; positions beyond the current
// growth are unset.
func (b *Bitmap) Get(i int) bool {
	w := i >> 6
	if b == nil || w >= len(b.words) {
		return false
	}
	return b.words[w]&(1<<uint(i&63)) != 0
}

// Count returns the number of set positions.
func (b *Bitmap) Count() int {
	if b == nil {
		return 0
	}
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// And returns the intersection of b and o as a new bitmap.
func (b *Bitmap) And(o *Bitmap) *Bitmap {
	out := NewBitmap()
	if b == nil || o == nil {
		return out
	}
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if w := b.words[i] & o.words[i]; w != 0 {
			for len(out.words) <= i {
				out.words = append(out.words, 0)
			}
			out.words[i] = w
		}
	}
	return out
}

// Clone returns an independent copy.
func (b *Bitmap) Clone() *Bitmap {
	if b == nil {
		return NewBitmap()
	}
	return &Bitmap{words: append([]uint64(nil), b.words...)}
}
