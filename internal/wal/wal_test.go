package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"authdb/internal/faultfs"
)

func TestAppendReplayRoundTrip(t *testing.T) {
	fs := faultfs.OS()
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	stmts := []string{
		"insert into EMPLOYEE values (Jones, manager, 26000)",
		"permit SAE to Brown",
		"delete from PROJECT where NUMBER = bq-45",
		"", // empty statement record must round-trip too
		"view W (EMPLOYEE.NAME)\nwhere EMPLOYEE.SALARY >= 10",
	}
	for _, s := range stmts {
		if err := l.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReplayAll(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, stmts) {
		t.Fatalf("replay = %q, want %q", got, stmts)
	}
}

func TestReplayMissingFile(t *testing.T) {
	got, err := ReplayAll(faultfs.OS(), filepath.Join(t.TempDir(), "nope.log"))
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

// TestTruncatedTailYieldsPrefix cuts the log at every byte offset and
// checks replay returns a prefix of the appended statements.
func TestTruncatedTailYieldsPrefix(t *testing.T) {
	fs := faultfs.OS()
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := Create(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	stmts := []string{"alpha", "bravo charlie", "delta"}
	for _, s := range stmts {
		if err := l.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(dir, "cut.log")
	for n := 0; n <= len(full); n++ {
		if err := os.WriteFile(cut, full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := ReplayAll(fs, cut)
		if err != nil {
			t.Fatalf("cut at %d: %v", n, err)
		}
		if len(got) > len(stmts) {
			t.Fatalf("cut at %d: more records than written", n)
		}
		for i, s := range got {
			if s != stmts[i] {
				t.Fatalf("cut at %d: record %d = %q, want %q", n, i, s, stmts[i])
			}
		}
	}
}

// TestCorruptRecordStopsReplay flips one byte at every offset; replay
// must never yield a statement that was not written.
func TestCorruptRecordStopsReplay(t *testing.T) {
	fs := faultfs.OS()
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := Create(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	stmts := []string{"one", "two", "three"}
	for _, s := range stmts {
		if err := l.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, s := range stmts {
		seen[s] = true
	}
	mut := filepath.Join(dir, "mut.log")
	for off := 0; off < len(full); off++ {
		data := append([]byte(nil), full...)
		data[off] ^= 0x5a
		if err := os.WriteFile(mut, data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := ReplayAll(fs, mut)
		if err != nil {
			t.Fatalf("flip at %d: %v", off, err)
		}
		for _, s := range got {
			if !seen[s] {
				t.Fatalf("flip at %d fabricated record %q", off, s)
			}
		}
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	fs := faultfs.OS()
	l, err := Create(fs, filepath.Join(t.TempDir(), "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(string(make([]byte, MaxRecord+1))); err == nil {
		t.Fatal("oversize append must fail")
	}
}
