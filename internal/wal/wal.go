// Package wal implements an append-only, checksummed statement log.
//
// The engine appends every acknowledged mutating statement to the log;
// recovery replays the log over the last good snapshot. The format is
// deliberately dumb — a magic header followed by length-prefixed,
// CRC32-guarded records:
//
//	"AUTHDBWAL1\n"
//	repeat: uint32le payload length | uint32le CRC32(payload) | payload
//
// A reader accepts the longest valid prefix: a truncated header, a
// torn length/checksum word, a short payload, or a checksum mismatch
// all terminate replay silently at the last intact record, which is
// exactly the crash-recovery contract ("the database reloads to a
// consistent prefix of the statement history").
package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"authdb/internal/faultfs"
)

// magic identifies and versions the log format.
const magic = "AUTHDBWAL1\n"

// MaxRecord bounds one record's payload; larger length words are treated
// as corruption (they terminate replay) rather than allocated.
const MaxRecord = 16 << 20

// Log is an open write handle on a statement log.
type Log struct {
	fs   faultfs.FS
	path string
	f    faultfs.File
}

// Create truncates or creates the log at path, writes the header, and
// syncs it. The returned Log is ready for Append.
func Create(fs faultfs.FS, path string) (*Log, error) {
	f, err := fs.Create(path)
	if err != nil {
		return nil, fmt.Errorf("wal: create %s: %w", path, err)
	}
	if _, err := f.Write([]byte(magic)); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: write header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: sync header: %w", err)
	}
	return &Log{fs: fs, path: path, f: f}, nil
}

// Append writes one statement record and syncs it to stable storage;
// the statement is durable once Append returns nil. On error the tail
// of the log may be torn — the caller must treat the handle as broken
// (a subsequent reader still recovers the valid prefix).
func (l *Log) Append(stmt string) error {
	return l.AppendBatch([]string{stmt})
}

// AppendBatch writes a run of statement records with one Write and one
// Sync — the group-commit primitive: n concurrent statements cost one
// fsync instead of n. All records are durable once it returns nil; on
// error the tail may be torn and the handle must be treated as broken
// (a reader still recovers the valid prefix, so a crash mid-batch keeps
// a prefix of the batch, never a hole).
func (l *Log) AppendBatch(stmts []string) error {
	var rec []byte
	for _, stmt := range stmts {
		payload := []byte(stmt)
		if len(payload) > MaxRecord {
			return fmt.Errorf("wal: statement of %d bytes exceeds record limit", len(payload))
		}
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		// One Write call for the whole batch keeps the torn-write window
		// as small as the filesystem allows; correctness never depends
		// on it.
		rec = append(rec, hdr[:]...)
		rec = append(rec, payload...)
	}
	if len(rec) == 0 {
		return nil
	}
	if _, err := l.f.Write(rec); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// Close closes the underlying file.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Replay reads the longest valid prefix of the log at path and calls fn
// for each record in order. A missing file replays zero records. fn's
// error aborts the replay and is returned; corruption or truncation of
// the tail is not an error. The number of records delivered is returned.
func Replay(fs faultfs.FS, path string, fn func(i int, stmt string) error) (int, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		// A missing log means no statements since the snapshot.
		return 0, nil
	}
	if !bytes.HasPrefix(data, []byte(magic)) {
		return 0, nil // foreign or torn header: empty prefix
	}
	off := len(magic)
	n := 0
	for {
		if len(data)-off < 8 {
			return n, nil // torn length/checksum word
		}
		ln := binary.LittleEndian.Uint32(data[off : off+4])
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if ln > MaxRecord || len(data)-off-8 < int(ln) {
			return n, nil // corrupt length or short payload
		}
		payload := data[off+8 : off+8+int(ln)]
		if crc32.ChecksumIEEE(payload) != sum {
			return n, nil // corrupt record: stop at the last intact one
		}
		if err := fn(n, string(payload)); err != nil {
			return n, err
		}
		n++
		off += 8 + int(ln)
	}
}

// ReplayAll collects the statements of the valid prefix.
func ReplayAll(fs faultfs.FS, path string) ([]string, error) {
	var out []string
	_, err := Replay(fs, path, func(_ int, stmt string) error {
		out = append(out, stmt)
		return nil
	})
	return out, err
}
