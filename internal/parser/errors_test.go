package parser

import (
	"errors"
	"strings"
	"testing"
)

func TestSyntaxErrorLineCol(t *testing.T) {
	cases := []struct {
		name, input    string
		line, col      int
		wantSubstrings []string
	}{
		{"first line", `retrieve !`, 1, 10, []string{"line 1:10"}},
		{"second line", "relation R (A, B);\npermit V Brown", 2, 10, []string{"line 2:10", "expected 'to'"}},
		{"lexer error", "relation R (A, B);\n\ninsert into R values (\"unterminated", 3, 23, []string{"line 3:23", "unterminated string"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseProgram(tc.input)
			if err == nil {
				t.Fatalf("expected a parse error")
			}
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Fatalf("error %T is not a *SyntaxError: %v", err, err)
			}
			if se.Line != tc.line || se.Col != tc.col {
				t.Fatalf("position = %d:%d, want %d:%d (%v)", se.Line, se.Col, tc.line, tc.col, err)
			}
			for _, sub := range tc.wantSubstrings {
				if !strings.Contains(err.Error(), sub) {
					t.Fatalf("error %q missing %q", err, sub)
				}
			}
		})
	}
}

func TestSyntaxErrorUnresolvedRendersOffset(t *testing.T) {
	e := &SyntaxError{Offset: 7, Msg: "boom"}
	if got := e.Error(); got != "pos 7: boom" {
		t.Fatalf("unresolved rendering = %q", got)
	}
}
