package parser

import (
	"fmt"
	"strings"
)

// SyntaxError is a parse failure with position information. The lexer
// and parser produce it with the byte Offset of the offending token; the
// top-level entry points (Parse, ParseProgram, ParseProgramPos) fill in
// the 1-based Line and Col from the source text, so callers — and the
// wire protocol's structured errors — can point users at the exact spot.
type SyntaxError struct {
	// Offset is the 0-based byte offset into the source.
	Offset int
	// Line and Col are 1-based; zero when the source text was not
	// available to resolve them.
	Line, Col int
	// Msg describes the failure without any position prefix.
	Msg string
}

// Error renders "line L:C: msg" when resolved, "pos N: msg" otherwise.
func (e *SyntaxError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("line %d:%d: %s", e.Line, e.Col, e.Msg)
	}
	return fmt.Sprintf("pos %d: %s", e.Offset, e.Msg)
}

// errf builds a SyntaxError at the given byte offset.
func errf(pos int, format string, args ...any) error {
	return &SyntaxError{Offset: pos, Msg: fmt.Sprintf(format, args...)}
}

// resolvePos fills in Line and Col on a SyntaxError from the source
// text; other errors pass through unchanged.
func resolvePos(err error, input string) error {
	se, ok := err.(*SyntaxError)
	if !ok || se.Line > 0 {
		return err
	}
	off := se.Offset
	if off > len(input) {
		off = len(input)
	}
	se.Line = 1 + strings.Count(input[:off], "\n")
	if i := strings.LastIndexByte(input[:off], '\n'); i >= 0 {
		se.Col = off - i
	} else {
		se.Col = off + 1
	}
	return se
}
