package parser

import (
	"strings"
	"testing"

	"authdb/internal/cview"
	"authdb/internal/value"
)

func parseOne(t *testing.T, in string) Stmt {
	t.Helper()
	s, err := Parse(in)
	if err != nil {
		t.Fatalf("Parse(%q): %v", in, err)
	}
	return s
}

func TestCreateRelation(t *testing.T) {
	s := parseOne(t, `relation EMPLOYEE (NAME, TITLE, SALARY) key (NAME)`).(CreateRelation)
	if s.Name != "EMPLOYEE" || len(s.Attrs) != 3 || len(s.Key) != 1 || s.Key[0] != "NAME" {
		t.Fatalf("parsed %+v", s)
	}
	s = parseOne(t, `relation ASSIGNMENT (E_NAME, P_NO) key (E_NAME, P_NO)`).(CreateRelation)
	if len(s.Key) != 2 {
		t.Fatalf("composite key: %+v", s)
	}
	s = parseOne(t, `relation T (A)`).(CreateRelation)
	if s.Key != nil {
		t.Fatalf("keyless: %+v", s)
	}
}

func TestInsert(t *testing.T) {
	s := parseOne(t, `insert into PROJECT values (bq-45, Acme, 300000)`).(Insert)
	if s.Rel != "PROJECT" || len(s.Values) != 3 {
		t.Fatalf("parsed %+v", s)
	}
	if s.Values[0] != value.String("bq-45") {
		t.Errorf("hyphenated identifier parsed as %v", s.Values[0])
	}
	if s.Values[2] != value.Int(300000) {
		t.Errorf("number parsed as %v", s.Values[2])
	}
	s = parseOne(t, `insert into R values (-5, "quoted string")`).(Insert)
	if s.Values[0] != value.Int(-5) || s.Values[1] != value.String("quoted string") {
		t.Fatalf("parsed %+v", s)
	}
}

func TestDelete(t *testing.T) {
	s := parseOne(t, `delete from PROJECT`).(Delete)
	if s.Rel != "PROJECT" || s.Where != nil {
		t.Fatalf("parsed %+v", s)
	}
	s = parseOne(t, `delete from PROJECT where NUMBER = bq-45 and BUDGET > 100`).(Delete)
	if len(s.Where) != 2 {
		t.Fatalf("parsed %+v", s)
	}
	if s.Where[0].L.Alias != "PROJECT" || s.Where[0].L.Attr != "NUMBER" {
		t.Errorf("bare attribute not qualified: %+v", s.Where[0])
	}
	s = parseOne(t, `delete from PROJECT where PROJECT.SPONSOR = Acme`).(Delete)
	if s.Where[0].L.Attr != "SPONSOR" {
		t.Fatalf("qualified attribute: %+v", s.Where[0])
	}
}

func TestViewStatement(t *testing.T) {
	s := parseOne(t, `
view ELP (EMPLOYEE.NAME, EMPLOYEE.TITLE, PROJECT.NUMBER, PROJECT.BUDGET)
  where EMPLOYEE.NAME = ASSIGNMENT.E_NAME
  and PROJECT.NUMBER = ASSIGNMENT.P_NO
  and PROJECT.BUDGET >= 250000`).(ViewStmt)
	d := s.Def
	if d.Name != "ELP" || len(d.Cols) != 4 || len(d.Where) != 3 {
		t.Fatalf("parsed %+v", d)
	}
	if d.Where[2].Op != value.GE || d.Where[2].R.Const != value.Int(250000) {
		t.Errorf("condition 3: %+v", d.Where[2])
	}
	if !d.Where[0].R.IsCol || d.Where[0].R.Col.Alias != "ASSIGNMENT" {
		t.Errorf("condition 1 RHS: %+v", d.Where[0])
	}
}

func TestOccurrenceSuffixes(t *testing.T) {
	s := parseOne(t, `
view EST (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME, EMPLOYEE:1.TITLE)
  where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE`).(ViewStmt)
	d := s.Def
	if d.Cols[0].Alias != "EMPLOYEE:1" || d.Cols[1].Alias != "EMPLOYEE:2" {
		t.Fatalf("aliases: %+v", d.Cols)
	}
	if d.Where[0].L.Alias != "EMPLOYEE:1" || d.Where[0].R.Col.Alias != "EMPLOYEE:2" {
		t.Fatalf("condition aliases: %+v", d.Where[0])
	}
}

func TestRetrieveAndConstants(t *testing.T) {
	s := parseOne(t, `
retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE)
  where EMPLOYEE.TITLE = engineer`).(Retrieve)
	if len(s.Def.Cols) != 2 || s.Def.Name != "" {
		t.Fatalf("parsed %+v", s.Def)
	}
	// A bare identifier without a dot is a string constant.
	if s.Def.Where[0].R.IsCol || s.Def.Where[0].R.Const != value.String("engineer") {
		t.Fatalf("RHS: %+v", s.Def.Where[0].R)
	}
}

func TestPermitRevokeDropShow(t *testing.T) {
	p := parseOne(t, `permit EST to KLEIN`).(Permit)
	if p.View != "EST" || p.User != "KLEIN" {
		t.Fatalf("permit: %+v", p)
	}
	r := parseOne(t, `revoke EST from KLEIN`).(Revoke)
	if r.View != "EST" || r.User != "KLEIN" {
		t.Fatalf("revoke: %+v", r)
	}
	d := parseOne(t, `drop view EST`).(DropView)
	if d.Name != "EST" {
		t.Fatalf("drop: %+v", d)
	}
	sh := parseOne(t, `show view EST`).(Show)
	if sh.What != "view" || sh.Arg != "EST" {
		t.Fatalf("show: %+v", sh)
	}
	sh = parseOne(t, `SHOW RELATIONS`).(Show)
	if sh.What != "relations" {
		t.Fatalf("keywords must be case-insensitive: %+v", sh)
	}
}

func TestUnicodeComparators(t *testing.T) {
	s := parseOne(t, `retrieve (R.A) where R.A ≥ 3 and R.B ≠ 4 and R.C ≤ 5`).(Retrieve)
	ops := []value.Cmp{value.GE, value.NE, value.LE}
	for i, c := range s.Def.Where {
		if c.Op != ops[i] {
			t.Errorf("cond %d op = %v, want %v", i, c.Op, ops[i])
		}
	}
}

func TestComments(t *testing.T) {
	s := parseOne(t, `
-- a line comment
retrieve (R.A) -- trailing comment
where R.A = 1`).(Retrieve)
	if len(s.Def.Where) != 1 {
		t.Fatalf("parsed %+v", s.Def)
	}
}

func TestParseProgram(t *testing.T) {
	stmts, err := ParseProgram(`
relation R (A, B);
insert into R values (1, 2);
retrieve (R.A);
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("statements = %d", len(stmts))
	}
	if _, err := ParseProgram(`relation R (A) relation S (B)`); err == nil {
		t.Error("missing semicolon accepted")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`frobnicate X`,
		`relation (A)`,
		`relation R A, B`,
		`insert R values (1)`,
		`insert into R (1)`,
		`view V EMPLOYEE.NAME`,
		`permit V KLEIN`,
		`revoke V to KLEIN`,
		`retrieve (EMPLOYEE.NAME) where EMPLOYEE.NAME`,
		`retrieve (EMPLOYEE.NAME) where = 3`,
		`retrieve (EMPLOYEE.NAME,)`,
		`retrieve (EMPLOYEE.)`,
		`retrieve (EMPLOYEE.NAME`,
		`retrieve (EMPLOYEE:x.NAME)`,
		`insert into R values ("unterminated)`,
		`retrieve (R.A) where R.A ! 3`,
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted", in)
		}
	}
}

func TestParseRejectsMultiple(t *testing.T) {
	if _, err := Parse(`relation R (A); relation S (B)`); err == nil ||
		!strings.Contains(err.Error(), "one statement") {
		t.Error("Parse must reject multiple statements")
	}
}

func TestCondStringForms(t *testing.T) {
	s := parseOne(t, `retrieve (R.A) where R.A >= 3`).(Retrieve)
	got := cview.Cond(s.Def.Where[0]).String()
	if got != "R.A >= 3" {
		t.Errorf("Cond.String = %q", got)
	}
}

func TestAggregateParsing(t *testing.T) {
	s := parseOne(t, `retrieve (EMPLOYEE.TITLE, avg(EMPLOYEE.SALARY), count(EMPLOYEE.NAME))`).(Retrieve)
	if len(s.Def.Cols) != 3 {
		t.Fatalf("cols = %v", s.Def.Cols)
	}
	if len(s.Aggs) != 2 || s.Aggs[0] != (AggSpec{Index: 1, Func: "avg"}) ||
		s.Aggs[1] != (AggSpec{Index: 2, Func: "count"}) {
		t.Fatalf("aggs = %+v", s.Aggs)
	}
	// Aggregate names are ordinary identifiers elsewhere: a relation
	// named "count" still parses as a plain column reference.
	s = parseOne(t, `retrieve (count.A)`).(Retrieve)
	if len(s.Aggs) != 0 || s.Def.Cols[0].Alias != "count" {
		t.Fatalf("plain ref: %+v %+v", s.Def.Cols, s.Aggs)
	}
	// Views reject aggregates.
	if _, err := Parse(`view V (avg(R.A))`); err == nil {
		t.Fatal("aggregate view accepted")
	}
	if _, err := Parse(`retrieve (avg(R.A)`); err == nil {
		t.Fatal("unbalanced aggregate accepted")
	}
}
