// Package parser implements the statement language of the paper's §6
// front-end: view definitions, permit statements, and retrieve statements
// in the concrete syntax of §2 and §5, together with the DDL/DML the
// front-end needs (relation, insert, delete, revoke, show, drop).
//
// Example statements:
//
//	relation EMPLOYEE (NAME, TITLE, SALARY) key (NAME);
//	insert into EMPLOYEE values (Jones, manager, 26000);
//	view ELP (EMPLOYEE.NAME, EMPLOYEE.TITLE, PROJECT.NUMBER, PROJECT.BUDGET)
//	  where EMPLOYEE.NAME = ASSIGNMENT.E_NAME
//	  and PROJECT.NUMBER = ASSIGNMENT.P_NO
//	  and PROJECT.BUDGET >= 250000;
//	permit ELP to KLEIN;
//	retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE)
//	  where EMPLOYEE.NAME = ASSIGNMENT.E_NAME
//	  and ASSIGNMENT.P_NO = PROJECT.NUMBER
//	  and PROJECT.SPONSOR = Acme;
package parser

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokColon
	tokSemi
	tokCmp
	tokStar
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex splits the input into tokens. Identifiers may contain letters,
// digits, '_' and interior '-' (project numbers like bq-45 are bare
// identifiers); numbers are optionally signed decimals; strings are
// double-quoted.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case c == ':':
			toks = append(toks, token{tokColon, ":", i})
			i++
		case c == ';':
			toks = append(toks, token{tokSemi, ";", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '=' || c == '<' || c == '>' || c == '!':
			start := i
			i++
			if i < n && (input[i] == '=' || (c == '<' && input[i] == '>')) {
				i++
			}
			t := input[start:i]
			if t == "!" {
				return nil, errf(start, "stray '!'")
			}
			toks = append(toks, token{tokCmp, t, start})
		case c == '"':
			start := i
			i++
			for i < n && input[i] != '"' {
				i++
			}
			if i >= n {
				return nil, errf(start, "unterminated string")
			}
			i++
			toks = append(toks, token{tokString, input[start+1 : i-1], start})
		case c >= '0' && c <= '9', c == '-' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9':
			start := i
			i++
			for i < n && input[i] >= '0' && input[i] <= '9' {
				i++
			}
			toks = append(toks, token{tokNumber, input[start:i], start})
		case c < 0x80 && isIdentStart(rune(c)):
			start := i
			i++
			for i < n && isIdentPart(input, i) {
				i++
			}
			toks = append(toks, token{tokIdent, input[start:i], start})
		default:
			r, size := utf8.DecodeRuneInString(input[i:])
			switch {
			case r == '≠' || r == '≤' || r == '≥':
				toks = append(toks, token{tokCmp, string(r), i})
				i += size
			case isIdentStart(r):
				start := i
				i += size
				for i < n {
					r2, s2 := utf8.DecodeRuneInString(input[i:])
					if r2 < 0x80 {
						if !isIdentPart(input, i) {
							break
						}
						i++
						continue
					}
					if !unicode.IsLetter(r2) {
						break
					}
					i += s2
				}
				toks = append(toks, token{tokIdent, input[start:i], start})
			default:
				return nil, errf(i, "unexpected character %q", string(r))
			}
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentStart(c rune) bool {
	return unicode.IsLetter(c) || c == '_'
}

// isIdentPart allows interior hyphens only when followed by another
// identifier character, so "bq-45" lexes as one token while "A -5" does
// not glue.
func isIdentPart(input string, i int) bool {
	c := input[i]
	if c == '_' || c >= '0' && c <= '9' || unicode.IsLetter(rune(c)) {
		return true
	}
	if c == '-' && i+1 < len(input) {
		d := input[i+1]
		return d == '_' || d >= '0' && d <= '9' || unicode.IsLetter(rune(d))
	}
	return false
}

// keyword folds an identifier to lower case for keyword matching;
// identifiers used as names keep their spelling.
func keyword(t token) string {
	if t.kind != tokIdent {
		return ""
	}
	return strings.ToLower(t.text)
}
