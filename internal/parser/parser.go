package parser

import (
	"fmt"
	"strconv"

	"authdb/internal/cview"
	"authdb/internal/value"
)

// Stmt is a parsed statement.
type Stmt interface{ isStmt() }

// CreateRelation declares a relation scheme with an optional key.
type CreateRelation struct {
	Name  string
	Attrs []string
	Key   []string
}

// Insert adds one tuple to a base relation.
type Insert struct {
	Rel    string
	Values []value.Value
}

// Delete removes the tuples of a base relation satisfying the conditions
// (all tuples when Where is empty).
type Delete struct {
	Rel   string
	Where []cview.Cond
}

// ViewStmt defines a named conjunctive view.
type ViewStmt struct{ Def *cview.Def }

// DropView removes a view definition (and its grants).
type DropView struct{ Name string }

// Permit grants a user access to a view.
type Permit struct {
	View string
	User string
}

// Revoke withdraws a permit.
type Revoke struct {
	View string
	User string
}

// AggSpec marks one output column of a retrieve as aggregated: the
// column at Index (in the plain Def's projection list) is folded by Func
// ("count", "sum", "avg", "min", "max") over each group formed by the
// remaining (plain) output columns.
type AggSpec struct {
	Index int
	Func  string
}

// Retrieve is a query. When Aggs is non-empty, the query is an aggregate
// request: the engine answers the plain definition under authorization
// first, then groups and folds the delivered relation — so aggregates
// are always computed from data the user is entitled to see.
type Retrieve struct {
	Def  *cview.Def
	Aggs []AggSpec
}

// Explain wraps a query: instead of the answer, the session reports the
// dual pipeline — the per-phase meta-relations, the final mask, and the
// authorization outcome.
type Explain struct{ Def *cview.Def }

// Show is a REPL introspection command: "show relations", "show views",
// "show view NAME", "show permissions", "show meta".
type Show struct {
	What string
	Arg  string
}

func (CreateRelation) isStmt() {}
func (Insert) isStmt()         {}
func (Delete) isStmt()         {}
func (ViewStmt) isStmt()       {}
func (DropView) isStmt()       {}
func (Permit) isStmt()         {}
func (Revoke) isStmt()         {}
func (Retrieve) isStmt()       {}
func (Explain) isStmt()        {}
func (Show) isStmt()           {}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, errf(t.pos, "expected %s, found %s", what, t)
	}
	return t, nil
}

func (p *parser) accept(k tokKind) bool {
	if p.peek().kind == k {
		p.i++
		return true
	}
	return false
}

func (p *parser) acceptKeyword(kw string) bool {
	if keyword(p.peek()) == kw {
		p.i++
		return true
	}
	return false
}

// Parse parses a single statement; trailing semicolons are tolerated.
func Parse(input string) (Stmt, error) {
	stmts, err := ParseProgram(input)
	if err != nil {
		return nil, err
	}
	if len(stmts) == 0 {
		return nil, fmt.Errorf("empty statement")
	}
	if len(stmts) > 1 {
		return nil, fmt.Errorf("expected one statement, found %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseProgram parses a semicolon-separated sequence of statements.
func ParseProgram(input string) ([]Stmt, error) {
	sps, err := ParseProgramPos(input)
	if err != nil {
		return nil, err
	}
	out := make([]Stmt, len(sps))
	for i, sp := range sps {
		out[i] = sp.Stmt
	}
	return out, nil
}

func (p *parser) statement() (Stmt, error) {
	t := p.peek()
	switch keyword(t) {
	case "relation":
		p.next()
		return p.createRelation()
	case "insert":
		p.next()
		return p.insert()
	case "delete":
		p.next()
		return p.delete()
	case "view":
		p.next()
		return p.view()
	case "drop":
		p.next()
		if !p.acceptKeyword("view") {
			return nil, errf(p.peek().pos, "expected 'view' after 'drop'")
		}
		name, err := p.expect(tokIdent, "view name")
		if err != nil {
			return nil, err
		}
		return DropView{Name: name.text}, nil
	case "permit":
		p.next()
		return p.permit()
	case "revoke":
		p.next()
		return p.revoke()
	case "retrieve":
		p.next()
		return p.retrieve()
	case "explain":
		p.next()
		if !p.acceptKeyword("retrieve") {
			return nil, errf(p.peek().pos, "expected 'retrieve' after 'explain'")
		}
		r, err := p.retrieve()
		if err != nil {
			return nil, err
		}
		return Explain{Def: r.(Retrieve).Def}, nil
	case "show":
		p.next()
		return p.show()
	default:
		return nil, errf(t.pos, "unknown statement starting with %s", t)
	}
}

func (p *parser) createRelation() (Stmt, error) {
	name, err := p.expect(tokIdent, "relation name")
	if err != nil {
		return nil, err
	}
	attrs, err := p.identList()
	if err != nil {
		return nil, err
	}
	s := CreateRelation{Name: name.text, Attrs: attrs}
	if p.acceptKeyword("key") {
		key, err := p.identList()
		if err != nil {
			return nil, err
		}
		s.Key = key
	}
	return s, nil
}

func (p *parser) identList() ([]string, error) {
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	var out []string
	for {
		t, err := p.expect(tokIdent, "identifier")
		if err != nil {
			return nil, err
		}
		out = append(out, t.text)
		if p.accept(tokRParen) {
			return out, nil
		}
		if _, err := p.expect(tokComma, "',' or ')'"); err != nil {
			return nil, err
		}
	}
}

func (p *parser) insert() (Stmt, error) {
	if !p.acceptKeyword("into") {
		return nil, errf(p.peek().pos, "expected 'into' after 'insert'")
	}
	rel, err := p.expect(tokIdent, "relation name")
	if err != nil {
		return nil, err
	}
	if !p.acceptKeyword("values") {
		return nil, errf(p.peek().pos, "expected 'values'")
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	var vals []value.Value
	for {
		v, err := p.constant()
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
		if p.accept(tokRParen) {
			return Insert{Rel: rel.text, Values: vals}, nil
		}
		if _, err := p.expect(tokComma, "',' or ')'"); err != nil {
			return nil, err
		}
	}
}

func (p *parser) delete() (Stmt, error) {
	if !p.acceptKeyword("from") {
		return nil, errf(p.peek().pos, "expected 'from' after 'delete'")
	}
	rel, err := p.expect(tokIdent, "relation name")
	if err != nil {
		return nil, err
	}
	s := Delete{Rel: rel.text}
	if p.acceptKeyword("where") {
		conds, err := p.condsIn(rel.text)
		if err != nil {
			return nil, err
		}
		s.Where = conds
	}
	return s, nil
}

// condsIn parses a conjunction whose column references may be bare
// attribute names, implicitly qualified by relation rel (delete
// statements address a single relation).
func (p *parser) condsIn(rel string) ([]cview.Cond, error) {
	var out []cview.Cond
	for {
		l, err := p.colRefIn(rel)
		if err != nil {
			return nil, err
		}
		opTok, err := p.expect(tokCmp, "comparator")
		if err != nil {
			return nil, err
		}
		op, ok := value.ParseCmp(opTok.text)
		if !ok {
			return nil, errf(opTok.pos, "bad comparator %q", opTok.text)
		}
		r, err := p.termIn(rel)
		if err != nil {
			return nil, err
		}
		out = append(out, cview.Cond{L: l, Op: op, R: r})
		if !p.acceptKeyword("and") {
			return out, nil
		}
	}
}

// colRefIn parses IDENT [":" NUM] "." IDENT, or a bare IDENT qualified by
// rel.
func (p *parser) colRefIn(rel string) (cview.ColRef, error) {
	t, err := p.expect(tokIdent, "attribute or relation name")
	if err != nil {
		return cview.ColRef{}, err
	}
	alias := t.text
	if p.accept(tokColon) {
		n, err := p.expect(tokNumber, "occurrence number")
		if err != nil {
			return cview.ColRef{}, err
		}
		alias += ":" + n.text
	}
	if !p.accept(tokDot) {
		return cview.ColRef{Alias: rel, Attr: t.text}, nil
	}
	attr, err := p.expect(tokIdent, "attribute name")
	if err != nil {
		return cview.ColRef{}, err
	}
	return cview.ColRef{Alias: alias, Attr: attr.text}, nil
}

// termIn parses the right-hand side where a bare identifier followed by a
// comparator-or-end is a constant, and dotted forms are columns.
func (p *parser) termIn(rel string) (cview.Term, error) {
	t := p.peek()
	if t.kind == tokIdent {
		j := p.i + 1
		if p.toks[j].kind == tokColon && p.toks[j+1].kind == tokNumber {
			j += 2
		}
		if p.toks[j].kind == tokDot {
			c, err := p.colRefIn(rel)
			if err != nil {
				return cview.Term{}, err
			}
			return cview.Term{IsCol: true, Col: c}, nil
		}
	}
	v, err := p.constant()
	if err != nil {
		return cview.Term{}, err
	}
	return cview.ConstTerm(v), nil
}

func (p *parser) view() (Stmt, error) {
	name, err := p.expect(tokIdent, "view name")
	if err != nil {
		return nil, err
	}
	def, err := p.defBody()
	if err != nil {
		return nil, err
	}
	def.Name = name.text
	// Views (not queries) may be disjunctive (§6): further conjunctive
	// branches follow after "or".
	for p.acceptKeyword("or") {
		branch, err := p.conds()
		if err != nil {
			return nil, err
		}
		def.Or = append(def.Or, branch)
	}
	return ViewStmt{Def: def}, nil
}

func (p *parser) retrieve() (Stmt, error) {
	def, aggs, err := p.defBodyAgg()
	if err != nil {
		return nil, err
	}
	return Retrieve{Def: def, Aggs: aggs}, nil
}

// aggFuncs are the aggregate functions accepted in retrieve projections.
var aggFuncs = map[string]bool{"count": true, "sum": true, "avg": true, "min": true, "max": true}

// defBody parses "(col, ...) [where cond and cond ...]".
func (p *parser) defBody() (*cview.Def, error) {
	d, aggs, err := p.defBodyAgg()
	if err != nil {
		return nil, err
	}
	if len(aggs) > 0 {
		return nil, fmt.Errorf("aggregate functions are only allowed in retrieve statements")
	}
	return d, nil
}

// defBodyAgg parses "(col | agg(col), ...) [where cond and cond ...]".
func (p *parser) defBodyAgg() (*cview.Def, []AggSpec, error) {
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, nil, err
	}
	d := &cview.Def{}
	var aggs []AggSpec
	for {
		// Lookahead for agg '(' col ')'.
		if t := p.peek(); t.kind == tokIdent && aggFuncs[keyword(t)] && p.toks[p.i+1].kind == tokLParen {
			fn := keyword(p.next())
			p.next() // '('
			c, err := p.colRef()
			if err != nil {
				return nil, nil, err
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return nil, nil, err
			}
			aggs = append(aggs, AggSpec{Index: len(d.Cols), Func: fn})
			d.Cols = append(d.Cols, c)
		} else {
			c, err := p.colRef()
			if err != nil {
				return nil, nil, err
			}
			d.Cols = append(d.Cols, c)
		}
		if p.accept(tokRParen) {
			break
		}
		if _, err := p.expect(tokComma, "',' or ')'"); err != nil {
			return nil, nil, err
		}
	}
	if p.acceptKeyword("where") {
		conds, err := p.conds()
		if err != nil {
			return nil, nil, err
		}
		d.Where = conds
	}
	return d, aggs, nil
}

func (p *parser) conds() ([]cview.Cond, error) {
	var out []cview.Cond
	for {
		c, err := p.cond()
		if err != nil {
			return nil, err
		}
		out = append(out, c)
		if !p.acceptKeyword("and") {
			return out, nil
		}
	}
}

func (p *parser) cond() (cview.Cond, error) {
	l, err := p.colRef()
	if err != nil {
		return cview.Cond{}, err
	}
	opTok, err := p.expect(tokCmp, "comparator")
	if err != nil {
		return cview.Cond{}, err
	}
	op, ok := value.ParseCmp(opTok.text)
	if !ok {
		return cview.Cond{}, errf(opTok.pos, "bad comparator %q", opTok.text)
	}
	r, err := p.term()
	if err != nil {
		return cview.Cond{}, err
	}
	return cview.Cond{L: l, Op: op, R: r}, nil
}

// colRef parses IDENT [":" NUMBER] "." IDENT.
func (p *parser) colRef() (cview.ColRef, error) {
	rel, err := p.expect(tokIdent, "relation name")
	if err != nil {
		return cview.ColRef{}, err
	}
	alias := rel.text
	if p.accept(tokColon) {
		n, err := p.expect(tokNumber, "occurrence number")
		if err != nil {
			return cview.ColRef{}, err
		}
		alias += ":" + n.text
	}
	if _, err := p.expect(tokDot, "'.'"); err != nil {
		return cview.ColRef{}, err
	}
	attr, err := p.expect(tokIdent, "attribute name")
	if err != nil {
		return cview.ColRef{}, err
	}
	return cview.ColRef{Alias: alias, Attr: attr.text}, nil
}

// term parses the right-hand side of a condition: a column reference when
// the lookahead shapes like IDENT[:N].IDENT, otherwise a constant.
func (p *parser) term() (cview.Term, error) {
	t := p.peek()
	if t.kind == tokIdent {
		j := p.i + 1
		if p.toks[j].kind == tokColon && p.toks[j+1].kind == tokNumber {
			j += 2
		}
		if p.toks[j].kind == tokDot {
			c, err := p.colRef()
			if err != nil {
				return cview.Term{}, err
			}
			return cview.Term{IsCol: true, Col: c}, nil
		}
	}
	v, err := p.constant()
	if err != nil {
		return cview.Term{}, err
	}
	return cview.ConstTerm(v), nil
}

func (p *parser) constant() (value.Value, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return value.Value{}, errf(t.pos, "bad number %q", t.text)
		}
		return value.Int(i), nil
	case tokString:
		return value.String(t.text), nil
	case tokIdent:
		return value.String(t.text), nil
	default:
		return value.Value{}, errf(t.pos, "expected a constant, found %s", t)
	}
}

func (p *parser) permit() (Stmt, error) {
	view, err := p.expect(tokIdent, "view name")
	if err != nil {
		return nil, err
	}
	if !p.acceptKeyword("to") {
		return nil, errf(p.peek().pos, "expected 'to'")
	}
	user, err := p.expect(tokIdent, "user name")
	if err != nil {
		return nil, err
	}
	return Permit{View: view.text, User: user.text}, nil
}

func (p *parser) revoke() (Stmt, error) {
	view, err := p.expect(tokIdent, "view name")
	if err != nil {
		return nil, err
	}
	if !p.acceptKeyword("from") {
		return nil, errf(p.peek().pos, "expected 'from'")
	}
	user, err := p.expect(tokIdent, "user name")
	if err != nil {
		return nil, err
	}
	return Revoke{View: view.text, User: user.text}, nil
}

func (p *parser) show() (Stmt, error) {
	what, err := p.expect(tokIdent, "what to show")
	if err != nil {
		return nil, err
	}
	s := Show{What: keyword(what)}
	if p.peek().kind == tokIdent {
		s.Arg = p.next().text
	}
	return s, nil
}
