package parser

import (
	"strings"
	"testing"
)

// FuzzParseProgram checks the parser never panics and that anything it
// accepts round-trips through the definitions' String form where one
// exists.
func FuzzParseProgram(f *testing.F) {
	seeds := []string{
		`relation EMPLOYEE (NAME, TITLE, SALARY) key (NAME)`,
		`insert into PROJECT values (bq-45, Acme, 300000)`,
		`view ELP (EMPLOYEE.NAME) where PROJECT.BUDGET >= 250000`,
		`view V (R.A) where R.A = 1 or R.B = 2`,
		`permit EST to KLEIN; revoke EST from KLEIN;`,
		`retrieve (EMPLOYEE:1.NAME) where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE`,
		`explain retrieve (R.A)`,
		`delete from R where A != -5`,
		`show meta`,
		"retrieve (R.A) where R.A ≥ 3",
		`-- comment only`,
		`insert into R values ("quo;ted", x)`,
		`view V (R.A`,
		`;;;`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmts, err := ParseProgram(input)
		if err != nil {
			return
		}
		for _, s := range stmts {
			switch s := s.(type) {
			case ViewStmt:
				// The printed form must itself parse to a view with the
				// same shape.
				again, err := Parse(s.Def.String())
				if err != nil {
					t.Fatalf("view round trip failed: %v\nprinted: %s", err, s.Def.String())
				}
				v2 := again.(ViewStmt)
				if len(v2.Def.Cols) != len(s.Def.Cols) ||
					len(v2.Def.Where) != len(s.Def.Where) ||
					len(v2.Def.Or) != len(s.Def.Or) {
					t.Fatalf("view round trip changed shape:\n%s\nvs\n%s", s.Def, v2.Def)
				}
			case Retrieve:
				if _, err := Parse(s.Def.String()); err != nil {
					t.Fatalf("retrieve round trip failed: %v\nprinted: %s", err, s.Def.String())
				}
			}
		}
	})
}

// TestRoundTripCorpus runs the fuzz body over a fixed corpus so the
// property is exercised in ordinary test runs too.
func TestRoundTripCorpus(t *testing.T) {
	corpus := []string{
		`view ELP (EMPLOYEE.NAME, EMPLOYEE.TITLE, PROJECT.NUMBER, PROJECT.BUDGET)
		  where EMPLOYEE.NAME = ASSIGNMENT.E_NAME
		  and PROJECT.NUMBER = ASSIGNMENT.P_NO
		  and PROJECT.BUDGET >= 250000`,
		`view EST (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME, EMPLOYEE:1.TITLE)
		  where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE`,
		`view D (P.N) where P.S = Acme or P.B >= 400000 and P.B <= 900000`,
		`retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY) where EMPLOYEE.TITLE = engineer`,
	}
	for _, in := range corpus {
		s, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		var printed string
		switch s := s.(type) {
		case ViewStmt:
			printed = s.Def.String()
		case Retrieve:
			printed = s.Def.String()
		}
		if _, err := Parse(printed); err != nil {
			t.Fatalf("round trip of %q failed: %v\nprinted: %s", in, err, printed)
		}
		if !strings.Contains(printed, "(") {
			t.Fatalf("printed form suspicious: %q", printed)
		}
	}
}
