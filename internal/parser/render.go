package parser

import (
	"fmt"
	"strings"

	"authdb/internal/value"
)

// StmtPos pairs a parsed statement with the 1-based source line of its
// first token, so script errors can point at the offending statement.
type StmtPos struct {
	Stmt Stmt
	Line int
}

// ParseProgramPos parses a semicolon-separated sequence of statements,
// reporting each statement's source line.
func ParseProgramPos(input string) ([]StmtPos, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, resolvePos(err, input)
	}
	p := &parser{toks: toks}
	var out []StmtPos
	// Track the line incrementally: statement positions only move forward,
	// so counting newlines over each gap keeps the whole pass linear in the
	// script size (recounting from the start per statement is quadratic on
	// bulk-load scripts).
	line, off := 1, 0
	for {
		for p.accept(tokSemi) {
		}
		if p.peek().kind == tokEOF {
			return out, nil
		}
		if pos := p.peek().pos; pos > off {
			if pos > len(input) {
				pos = len(input)
			}
			line += strings.Count(input[off:pos], "\n")
			off = pos
		}
		s, err := p.statement()
		if err != nil {
			return nil, resolvePos(err, input)
		}
		out = append(out, StmtPos{Stmt: s, Line: line})
		if p.peek().kind != tokEOF && !p.accept(tokSemi) {
			return nil, resolvePos(errf(p.peek().pos, "expected ';' between statements, found %s", p.peek()), input)
		}
	}
}

// Render serializes a mutating statement back to statement-language text
// that reparses to an equivalent statement; the engine's write-ahead log
// stores statements in this form. Only the journaled statement kinds
// (relation, insert, delete, view, drop view, permit, revoke) render;
// anything else — and any constant without a literal form — is an error.
func Render(s Stmt) (string, error) {
	switch s := s.(type) {
	case CreateRelation:
		var b strings.Builder
		b.WriteString("relation " + s.Name + " (" + strings.Join(s.Attrs, ", ") + ")")
		if len(s.Key) > 0 {
			b.WriteString(" key (" + strings.Join(s.Key, ", ") + ")")
		}
		return b.String(), nil
	case Insert:
		lits := make([]string, len(s.Values))
		for i, v := range s.Values {
			if !value.Representable(v) {
				return "", fmt.Errorf("insert into %s: value %s has no literal form", s.Rel, v)
			}
			lits[i] = value.Literal(v)
		}
		return "insert into " + s.Rel + " values (" + strings.Join(lits, ", ") + ")", nil
	case Delete:
		var b strings.Builder
		b.WriteString("delete from " + s.Rel)
		for i, c := range s.Where {
			if !c.R.IsCol && !value.Representable(c.R.Const) {
				return "", fmt.Errorf("delete from %s: constant %s has no literal form", s.Rel, c.R.Const)
			}
			if i == 0 {
				b.WriteString(" where ")
			} else {
				b.WriteString(" and ")
			}
			b.WriteString(c.String())
		}
		return b.String(), nil
	case ViewStmt:
		for _, branch := range s.Def.Branches() {
			for _, c := range branch {
				if !c.R.IsCol && !value.Representable(c.R.Const) {
					return "", fmt.Errorf("view %s: constant %s has no literal form", s.Def.Name, c.R.Const)
				}
			}
		}
		return s.Def.String(), nil
	case DropView:
		return "drop view " + s.Name, nil
	case Permit:
		return "permit " + s.View + " to " + s.User, nil
	case Revoke:
		return "revoke " + s.View + " from " + s.User, nil
	default:
		return "", fmt.Errorf("statement %T has no canonical rendering", s)
	}
}
