package qmod_test

import (
	"strings"
	"testing"

	"authdb/internal/qmod"
	"authdb/internal/value"
	"authdb/internal/workload"
)

func newSystem(t *testing.T) (*workload.Fixture, *qmod.System) {
	t.Helper()
	f := workload.Paper()
	return f, qmod.New(f.Schema, f.Source)
}

func TestPermitValidation(t *testing.T) {
	_, s := newSystem(t)
	if err := s.Permit(qmod.Permission{User: "u", Rel: "NOPE", Attrs: []string{"X"}}); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if err := s.Permit(qmod.Permission{User: "u", Rel: "EMPLOYEE", Attrs: []string{"WAGE"}}); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	if err := s.Permit(qmod.Permission{User: "u", Rel: "EMPLOYEE", Attrs: []string{"NAME"},
		Quals: []qmod.Qual{{Attr: "WAGE", Op: value.GT, Const: value.Int(1)}}}); err == nil {
		t.Fatal("unknown qualification attribute accepted")
	}
	if err := s.Permit(qmod.Permission{User: "u", Rel: "EMPLOYEE", Attrs: []string{"NAME"},
		Quals: []qmod.Qual{{Attr: "NAME", Op: value.EQ, RAttr: "WAGE", IsAtt: true}}}); err == nil {
		t.Fatal("unknown qualification RHS accepted")
	}
}

func TestQualificationConjoined(t *testing.T) {
	_, s := newSystem(t)
	err := s.Permit(qmod.Permission{
		User: "brown", Rel: "PROJECT",
		Attrs: []string{"NUMBER", "SPONSOR", "BUDGET"},
		Quals: []qmod.Qual{{Attr: "SPONSOR", Op: value.EQ, Const: value.String("Acme")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rel, mod, err := s.Query("brown", workload.MustQuery(
		`retrieve (PROJECT.NUMBER, PROJECT.BUDGET) where PROJECT.BUDGET >= 100000`))
	if err != nil {
		t.Fatal(err)
	}
	// Only bq-45 is Acme's; the qualification reduced the rows.
	if rel.Len() != 1 || rel.Tuples()[0][0].String() != "bq-45" {
		t.Fatalf("modified query answer:\n%s", rel)
	}
	if len(mod.Applied["PROJECT"]) != 1 {
		t.Fatalf("applied permissions: %+v", mod.Applied)
	}
}

// TestColumnAsymmetry reproduces the paper's §1 INGRES criticism: with
// permission on A1, A2 (under P), a request for A1, A2 is reduced, but a
// request for A1, A2, A3 is denied altogether.
func TestColumnAsymmetry(t *testing.T) {
	_, s := newSystem(t)
	err := s.Permit(qmod.Permission{
		User: "u", Rel: "EMPLOYEE", Attrs: []string{"NAME", "SALARY"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel, _, err := s.Query("u", workload.MustQuery(
		`retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY)`)); err != nil || rel.Len() != 3 {
		t.Fatalf("covered request: %v, %v", rel, err)
	}
	_, _, err = s.Query("u", workload.MustQuery(
		`retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY, EMPLOYEE.TITLE)`))
	if err == nil || !strings.Contains(err.Error(), "TITLE") {
		t.Fatalf("uncovered column must deny naming it, got %v", err)
	}
	// Qualification attributes are addressed too.
	_, _, err = s.Query("u", workload.MustQuery(
		`retrieve (EMPLOYEE.NAME) where EMPLOYEE.TITLE = engineer`))
	if err == nil {
		t.Fatal("qualification on an uncovered column must deny")
	}
}

func TestDisjunctionOfPermissions(t *testing.T) {
	_, s := newSystem(t)
	for _, sponsor := range []string{"Acme", "Apex"} {
		err := s.Permit(qmod.Permission{
			User: "u", Rel: "PROJECT",
			Attrs: []string{"NUMBER", "SPONSOR", "BUDGET"},
			Quals: []qmod.Qual{{Attr: "SPONSOR", Op: value.EQ, Const: value.String(sponsor)}},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	rel, _, err := s.Query("u", workload.MustQuery(`retrieve (PROJECT.NUMBER)`))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 { // bq-45 (Acme) and sv-72 (Apex); vg-13 (Summit) filtered
		t.Fatalf("disjunction of permissions:\n%s", rel)
	}
}

func TestAttrAttrQualification(t *testing.T) {
	f, s := newSystem(t)
	_ = f
	err := s.Permit(qmod.Permission{
		User: "u", Rel: "ASSIGNMENT",
		Attrs: []string{"E_NAME", "P_NO"},
		Quals: []qmod.Qual{{Attr: "E_NAME", Op: value.NE, RAttr: "P_NO", IsAtt: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rel, _, err := s.Query("u", workload.MustQuery(`retrieve (ASSIGNMENT.E_NAME, ASSIGNMENT.P_NO)`))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 6 {
		t.Fatalf("rows = %d", rel.Len())
	}
}

func TestMultiRelationQueryNeedsEveryRelationCovered(t *testing.T) {
	_, s := newSystem(t)
	err := s.Permit(qmod.Permission{
		User: "klein", Rel: "EMPLOYEE", Attrs: []string{"NAME", "TITLE"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Example 2 addresses ASSIGNMENT and PROJECT too; no permission
	// covers them, so the whole query is denied — INGRES cannot express
	// the multi-relation view ELP (§1).
	if _, _, err := s.Query("klein", workload.MustQuery(workload.Example2Query)); err == nil {
		t.Fatal("uncovered relations must deny the query")
	}
}

func TestSelfJoinAddressing(t *testing.T) {
	_, s := newSystem(t)
	err := s.Permit(qmod.Permission{
		User: "u", Rel: "EMPLOYEE", Attrs: []string{"NAME", "TITLE"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both occurrences address only covered attributes.
	rel, mod, err := s.Query("u", workload.MustQuery(`
		retrieve (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME)
		where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE`))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Fatalf("self-join rows = %d, want 3", rel.Len())
	}
	if len(mod.Applied) != 2 {
		t.Fatalf("applied per alias: %v", mod.Applied)
	}
}

func TestQualString(t *testing.T) {
	q := qmod.Qual{Attr: "SPONSOR", Op: value.EQ, Const: value.String("Acme")}
	if q.String() != "SPONSOR = Acme" {
		t.Fatalf("Qual.String = %q", q.String())
	}
	q = qmod.Qual{Attr: "A", Op: value.LT, RAttr: "B", IsAtt: true}
	if q.String() != "A < B" {
		t.Fatalf("Qual.String = %q", q.String())
	}
}
