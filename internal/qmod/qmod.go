// Package qmod reimplements the INGRES access control algorithm of
// Stonebraker and Wong (1974): query modification. Permissions are views
// of single relations — a subset of the attributes plus a qualification on
// that relation. For each relation a query addresses, the algorithm looks
// for permissions whose attributes contain every attribute the query
// addresses on that relation; their qualifications are conjoined (ORed
// among themselves) with the query's own qualification. If no permission
// covers the addressed attributes, the whole query is rejected.
//
// This is the behaviour the paper's §1 criticises: permissions cannot span
// relations, and rows and columns are asymmetric — a request for one
// attribute too many is denied outright rather than having the extra
// column withheld.
package qmod

import (
	"fmt"

	"authdb/internal/algebra"
	"authdb/internal/cview"
	"authdb/internal/relation"
	"authdb/internal/value"
)

// Qual is one primitive qualification ATTR θ const or ATTR θ ATTR over the
// permission's relation.
type Qual struct {
	Attr  string
	Op    value.Cmp
	RAttr string // other attribute when RIsAttr
	Const value.Value
	IsAtt bool
}

// String renders the qualification atom.
func (q Qual) String() string {
	r := q.Const.String()
	if q.IsAtt {
		r = q.RAttr
	}
	return q.Attr + " " + q.Op.String() + " " + r
}

// Permission grants user the given attributes of one relation, on the
// rows satisfying the qualification (a conjunction).
type Permission struct {
	User  string
	Rel   string
	Attrs []string
	Quals []Qual
}

// System is an INGRES-style authority.
type System struct {
	sch   *relation.DBSchema
	src   algebra.Source
	perms []Permission
}

// New creates the authority over a database scheme and source.
func New(sch *relation.DBSchema, src algebra.Source) *System {
	return &System{sch: sch, src: src}
}

// Permit registers a permission after validating it against the scheme.
func (s *System) Permit(p Permission) error {
	rs := s.sch.Lookup(p.Rel)
	if rs == nil {
		return fmt.Errorf("unknown relation %s", p.Rel)
	}
	for _, a := range p.Attrs {
		if rs.AttrIndex(a) < 0 {
			return fmt.Errorf("relation %s has no attribute %s", p.Rel, a)
		}
	}
	for _, q := range p.Quals {
		if rs.AttrIndex(q.Attr) < 0 {
			return fmt.Errorf("relation %s has no attribute %s", p.Rel, q.Attr)
		}
		if q.IsAtt && rs.AttrIndex(q.RAttr) < 0 {
			return fmt.Errorf("relation %s has no attribute %s", p.Rel, q.RAttr)
		}
	}
	s.perms = append(s.perms, p)
	return nil
}

// Modified describes the outcome of query modification.
type Modified struct {
	// Applied lists, per alias, the permissions whose qualifications were
	// attached (ORed together per alias).
	Applied map[string][]Permission
}

// Query runs the modification algorithm and, when authorized, evaluates
// the modified query. A denial returns a nil relation and an error naming
// the uncovered attributes.
func (s *System) Query(user string, def *cview.Def) (*relation.Relation, *Modified, error) {
	an, err := cview.Analyze(def, s.sch)
	if err != nil {
		return nil, nil, err
	}
	// Addressed attributes per alias: projection columns plus every
	// attribute appearing in the qualification.
	addressed := make(map[string]map[string]bool)
	touch := func(c cview.ColRef) {
		if addressed[c.Alias] == nil {
			addressed[c.Alias] = make(map[string]bool)
		}
		addressed[c.Alias][c.Attr] = true
	}
	for _, c := range def.Cols {
		touch(c)
	}
	for _, c := range def.Where {
		touch(c.L)
		if c.R.IsCol {
			touch(c.R.Col)
		}
	}
	mod := &Modified{Applied: make(map[string][]Permission)}
	for _, sc := range an.Scans {
		need := addressed[sc.Alias]
		var applicable []Permission
		for _, p := range s.perms {
			if p.User != user || p.Rel != sc.Rel {
				continue
			}
			if coversAttrs(p.Attrs, need) {
				applicable = append(applicable, p)
			}
		}
		if len(applicable) == 0 {
			return nil, nil, fmt.Errorf("access denied: no permission of %s on %s covers attributes %v",
				user, sc.Rel, keys(need))
		}
		mod.Applied[sc.Alias] = applicable
	}

	// Evaluate: the base conjunctive query filtered by, per alias, the
	// disjunction of the applicable permissions' qualifications.
	ans, err := s.evalModified(an, mod)
	if err != nil {
		return nil, nil, err
	}
	return ans, mod, nil
}

func coversAttrs(have []string, need map[string]bool) bool {
	set := make(map[string]bool, len(have))
	for _, a := range have {
		set[a] = true
	}
	for a := range need {
		if !set[a] {
			return false
		}
	}
	return true
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// evalModified evaluates the query with the per-alias permission
// disjunctions. Because the added qualifications are disjunctive, the
// conjunctive evaluators cannot express them directly; the filter is
// applied tuple-wise on each scan before the join, which is equivalent and
// keeps the baseline honest about delivered rows.
func (s *System) evalModified(an *cview.Analyzed, mod *Modified) (*relation.Relation, error) {
	parts := make(map[string]*relation.Relation, len(an.Scans))
	for _, sc := range an.Scans {
		base, err := s.src(sc.Rel)
		if err != nil {
			return nil, err
		}
		rs := s.sch.Lookup(sc.Rel)
		perms := mod.Applied[sc.Alias]
		filtered := base.Select(func(t relation.Tuple) bool {
			return anyPermMatches(rs, perms, t)
		})
		parts[sc.Alias] = filtered
	}
	src := func(alias string) (*relation.Relation, error) {
		r, ok := parts[alias]
		if !ok {
			return nil, fmt.Errorf("unknown scan %s", alias)
		}
		return r, nil
	}
	// Rebuild the plan against alias-named restricted inputs.
	psj := &algebra.PSJ{Cols: an.PSJ.Cols, Preds: an.PSJ.Preds}
	for _, sc := range an.Scans {
		psj.Scans = append(psj.Scans, algebra.Scan{Rel: sc.Alias, Alias: sc.Alias})
	}
	return algebra.EvalNaive(psj.Node(), func(name string) (*relation.Relation, error) {
		return src(name)
	})
}

// anyPermMatches evaluates the disjunction of the permissions'
// conjunctive qualifications on one tuple.
func anyPermMatches(rs *relation.Schema, perms []Permission, t relation.Tuple) bool {
	for _, p := range perms {
		ok := true
		for _, q := range p.Quals {
			l := t[rs.AttrIndex(q.Attr)]
			r := q.Const
			if q.IsAtt {
				r = t[rs.AttrIndex(q.RAttr)]
			}
			if !q.Op.Eval(l, r) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
