// Package guard bounds query execution: a Guard carries a
// context.Context and a Limits budget down through the relational
// evaluators and the meta-relation operators, so a hostile or runaway
// request (an unbounded cartesian product, a query against a huge
// instance) is cut off at tuple-batch granularity instead of taking the
// engine down.
//
// A nil *Guard is valid everywhere and means "unlimited, uncancelable";
// the evaluators' fast paths stay allocation- and check-free when no
// guard is attached.
package guard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"
)

// ErrCanceled reports that the request's context was canceled or its
// deadline passed before execution finished.
var ErrCanceled = errors.New("query canceled")

// ErrBudgetExceeded reports that execution hit a resource limit
// (intermediate rows, result rows).
var ErrBudgetExceeded = errors.New("query budget exceeded")

// Limits bounds one statement's execution. Zero fields mean "no limit"
// for that dimension; the zero Limits value is fully unlimited.
type Limits struct {
	// MaxIntermediateRows caps the total number of tuples materialized
	// across all operators (products, joins, selections, meta-products)
	// while answering one statement.
	MaxIntermediateRows int64
	// MaxResultRows caps the number of tuples in the delivered answer.
	MaxResultRows int64
	// Timeout bounds wall-clock execution of one statement; it composes
	// with (never extends) any deadline already on the caller's context.
	Timeout time.Duration
	// Parallelism is the maximum number of worker goroutines one
	// evaluator operator (product, hash join, selection) may fan out
	// across. 0 and 1 both mean serial execution; values above 1 let the
	// guarded evaluators partition their outer side across that many
	// workers, all sharing this budget. Results are identical to serial
	// execution (workers own contiguous partitions merged in order), and
	// budget failures fire iff they would fire serially: the row totals
	// accounted are the same either way.
	Parallelism int
}

// DefaultLimits is the budget sessions start with: generous enough for
// every workload in the repository, small enough that a self-product of
// a large relation fails fast instead of exhausting memory.
func DefaultLimits() Limits {
	return Limits{
		MaxIntermediateRows: 1_000_000,
		MaxResultRows:       500_000,
		Timeout:             30 * time.Second,
		Parallelism:         runtime.GOMAXPROCS(0),
	}
}

// Unlimited returns a Limits with every bound disabled.
func Unlimited() Limits { return Limits{} }

// batchSize is how many produced rows may pass between context checks;
// cancellation is therefore honored within one batch of tuples.
const batchSize = 1024

// Guard enforces a Limits budget under a context. A guard belongs to a
// single statement execution (it is not shared across statements), but
// within that statement it is safe for concurrent use: the parallel
// evaluators hand one guard to every worker goroutine, and both the
// produced-row counter and the batch check counter are atomic, so the
// budget trigger point depends only on the total rows accounted — not
// on which worker accounted them.
type Guard struct {
	ctx      context.Context
	cancel   context.CancelFunc
	limits   Limits
	produced atomic.Int64
	sinceCk  atomic.Int64
}

// New builds a guard for one statement execution. Close must be called
// when the statement finishes to release the timeout timer, if any.
func New(ctx context.Context, limits Limits) *Guard {
	if ctx == nil {
		ctx = context.Background()
	}
	g := &Guard{limits: limits}
	if limits.Timeout > 0 {
		g.ctx, g.cancel = context.WithTimeout(ctx, limits.Timeout)
	} else {
		g.ctx = ctx
	}
	return g
}

// Close releases the guard's timeout timer. Safe on nil guards.
func (g *Guard) Close() {
	if g == nil || g.cancel == nil {
		return
	}
	g.cancel()
}

// Context returns the guarded context (background for a nil guard).
func (g *Guard) Context() context.Context {
	if g == nil {
		return context.Background()
	}
	return g.ctx
}

// ctxErr maps a context failure to the package's typed error.
func (g *Guard) ctxErr() error {
	err := g.ctx.Err()
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %v", ErrCanceled, err)
}

// Check verifies cancellation only; call it on loop iterations that do
// not produce rows. Safe on nil guards.
func (g *Guard) Check() error {
	if g == nil {
		return nil
	}
	return g.ctxErr()
}

// Add records n produced intermediate rows, failing with
// ErrBudgetExceeded once the budget is exhausted and with ErrCanceled
// when the context dies. The context is consulted at batch granularity
// so per-row cost stays a counter increment.
func (g *Guard) Add(n int) error {
	if g == nil {
		return nil
	}
	total := g.produced.Add(int64(n))
	if max := g.limits.MaxIntermediateRows; max > 0 && total > max {
		return fmt.Errorf("%w: intermediate rows %d exceed limit %d", ErrBudgetExceeded, total, max)
	}
	// Subtracting the batch (rather than storing zero) keeps the counter
	// exact under concurrent adds: rows accounted by another worker
	// between our Add and the reset are not dropped.
	if g.sinceCk.Add(int64(n)) >= batchSize {
		g.sinceCk.Add(-batchSize)
		return g.ctxErr()
	}
	return nil
}

// Parallelism returns the evaluator fan-out the guard's limits allow; a
// nil guard (and a zero knob) means serial.
func (g *Guard) Parallelism() int {
	if g == nil || g.limits.Parallelism < 1 {
		return 1
	}
	return g.limits.Parallelism
}

// Produced reports the intermediate rows accounted so far.
func (g *Guard) Produced() int64 {
	if g == nil {
		return 0
	}
	return g.produced.Load()
}

// Result verifies the delivered answer's cardinality against
// MaxResultRows. Safe on nil guards.
func (g *Guard) Result(n int) error {
	if g == nil {
		return nil
	}
	if max := g.limits.MaxResultRows; max > 0 && int64(n) > max {
		return fmt.Errorf("%w: result rows %d exceed limit %d", ErrBudgetExceeded, n, max)
	}
	return nil
}
