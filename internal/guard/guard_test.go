package guard

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilGuardIsUnlimited(t *testing.T) {
	var g *Guard
	if err := g.Add(1 << 30); err != nil {
		t.Fatal(err)
	}
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	if err := g.Result(1 << 30); err != nil {
		t.Fatal(err)
	}
	g.Close() // must not panic
	if g.Context() == nil {
		t.Fatal("nil guard context")
	}
}

func TestBudgetExceeded(t *testing.T) {
	g := New(context.Background(), Limits{MaxIntermediateRows: 10})
	defer g.Close()
	if err := g.Add(10); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	err := g.Add(1)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("got %v, want ErrBudgetExceeded", err)
	}
}

func TestResultLimit(t *testing.T) {
	g := New(context.Background(), Limits{MaxResultRows: 5})
	defer g.Close()
	if err := g.Result(5); err != nil {
		t.Fatal(err)
	}
	if err := g.Result(6); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("got %v, want ErrBudgetExceeded", err)
	}
}

func TestCanceledContextSurfacesWithinOneBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := New(ctx, Unlimited())
	defer g.Close()
	var err error
	// Cancellation must surface after at most one batch of single-row adds.
	for i := 0; i < batchSize+1; i++ {
		if err = g.Add(1); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	if err := g.Check(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Check got %v, want ErrCanceled", err)
	}
}

func TestTimeout(t *testing.T) {
	g := New(context.Background(), Limits{Timeout: time.Nanosecond})
	defer g.Close()
	time.Sleep(time.Millisecond)
	if err := g.Check(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
}

func TestDefaultLimitsAreFinite(t *testing.T) {
	l := DefaultLimits()
	if l.MaxIntermediateRows <= 0 || l.MaxResultRows <= 0 || l.Timeout <= 0 {
		t.Fatalf("default limits must be finite: %+v", l)
	}
}
