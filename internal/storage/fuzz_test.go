package storage

import (
	"bytes"
	"testing"
)

// FuzzPageDecode throws arbitrary page images at decodePage: it must
// never panic, and any image it accepts must re-encode to a node that
// decodes identically (the round-trip invariant crash recovery relies
// on). Seeds cover every page type, overflow-spilled cells, and torn /
// bit-flipped images.
func FuzzPageDecode(f *testing.F) {
	seed := []*node{
		{typ: pageLeaf},
		{typ: pageLeaf, cells: []cell{{key: []byte("alpha"), val: []byte("1")}, {key: []byte("beta")}}},
		{typ: pageLeaf, cells: []cell{{keyOvf: 2, keyLen: 600, valOvf: 3, valLen: 8192}}},
		{typ: pageInterior, right: 9, cells: []cell{{key: []byte("m"), child: 4}}},
		{typ: pageOverflow, right: 0, data: bytes.Repeat([]byte("ov"), 100)},
	}
	for _, n := range seed {
		buf, err := encodePage(n)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		// A torn image (half the page) and a corrupted byte.
		torn := make([]byte, PageSize)
		copy(torn, buf[:PageSize/2])
		f.Add(torn)
		flip := append([]byte(nil), buf...)
		flip[37] ^= 0x10
		f.Add(flip)
	}
	f.Add(make([]byte, PageSize))
	f.Add([]byte("short"))

	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := decodePage(data)
		if err != nil {
			return
		}
		buf, err := encodePage(n)
		if err != nil {
			t.Fatalf("accepted page fails to re-encode: %v", err)
		}
		n2, err := decodePage(buf)
		if err != nil {
			t.Fatalf("re-encoded page fails to decode: %v", err)
		}
		if n2.typ != n.typ || n2.right != n.right || len(n2.cells) != len(n.cells) || !bytes.Equal(n2.data, n.data) {
			t.Fatal("page round trip not stable")
		}
	})
}
