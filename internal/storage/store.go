package storage

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"authdb/internal/faultfs"
	"authdb/internal/value"
)

// rootMagic heads the per-generation ROOT file. ROOT is the only
// per-checkpoint state: tree roots, allocation state, and the view
// sequence counter. Pages live in the shared pages.db next to the
// generation directories.
const rootMagic = "AUTHDBROOT1"

// RootName is the ROOT file's name inside a snapshot generation
// directory; its presence marks the generation as paged.
const RootName = "ROOT"

// PagesFileName is the shared page file's name inside the database
// directory.
const PagesFileName = "pages.db"

// Catalog key prefixes. Schemas sort by relation name, views by
// definition sequence (definition order matters: views reference
// earlier views), permits by (user, view).
const (
	catSchema = "s/"
	catView   = "w/"
	catPermit = "p/"
)

// table is one relation's on-disk representation: a primary B+Tree
// keyed by the whole encoded tuple (relations enforce whole-tuple set
// semantics) and one secondary per attribute keyed by
// enc(value) ‖ primaryKey.
type table struct {
	name    string
	arity   int
	primary *Tree
	sec     []*Tree
}

// Store is the paged backend for one database directory: the pager, the
// catalog tree (schemas, view definitions, permits — the meta-database
// the paper's authorization model is a function of), and one table per
// relation.
type Store struct {
	pg      *pager
	catalog *Tree
	tables  map[string]*table
	viewSeq uint64
	rebuild bool // set when the trees must be repopulated from the engine head
}

// Create makes a fresh, empty store at path (truncating any stale page
// file).
func Create(fs faultfs.FS, path string, cachePages int) (*Store, error) {
	pg, err := createPager(fs, path, cachePages)
	if err != nil {
		return nil, err
	}
	return &Store{
		pg:      pg,
		catalog: &Tree{pg: pg},
		tables:  make(map[string]*table),
	}, nil
}

// Open attaches to an existing page file using the committed ROOT.
func Open(fs faultfs.FS, path string, root []byte, cachePages int) (*Store, error) {
	pg, err := openPager(fs, path, cachePages)
	if err != nil {
		return nil, err
	}
	s := &Store{pg: pg, tables: make(map[string]*table)}
	if err := s.parseRoot(root); err != nil {
		pg.Close()
		return nil, err
	}
	return s, nil
}

// Catalog is a fully rendered meta-database: the statement scripts that
// recreate schemas, views, and permits in replay order.
type Catalog struct {
	Schemas []string
	Views   []string
	Permits []string
}

func (s *Store) parseRoot(root []byte) error {
	lines := strings.Split(string(root), "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != rootMagic {
		return fmt.Errorf("storage: bad ROOT magic")
	}
	var nPages uint32
	var free []uint32
	for _, ln := range lines[1:] {
		ln = strings.TrimSpace(ln)
		if ln == "" {
			continue
		}
		fields := strings.Fields(ln)
		switch fields[0] {
		case "pagesize":
			if len(fields) != 2 {
				return fmt.Errorf("storage: bad ROOT pagesize line")
			}
			if ps, err := strconv.Atoi(fields[1]); err != nil || ps != PageSize {
				return fmt.Errorf("storage: ROOT page size %s, want %d", fields[1], PageSize)
			}
		case "npages":
			v, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return fmt.Errorf("storage: bad ROOT npages: %w", err)
			}
			nPages = uint32(v)
		case "viewseq":
			v, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				return fmt.Errorf("storage: bad ROOT viewseq: %w", err)
			}
			s.viewSeq = v
		case "free":
			for _, f := range fields[1:] {
				v, err := strconv.ParseUint(f, 10, 32)
				if err != nil {
					return fmt.Errorf("storage: bad ROOT free page: %w", err)
				}
				free = append(free, uint32(v))
			}
		case "catalog":
			v, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return fmt.Errorf("storage: bad ROOT catalog root: %w", err)
			}
			s.catalog = &Tree{pg: s.pg, root: uint32(v)}
		case "table":
			if len(fields) < 4 {
				return fmt.Errorf("storage: bad ROOT table line %q", ln)
			}
			name := fields[1]
			arity, err := strconv.Atoi(fields[2])
			if err != nil || arity < 1 {
				return fmt.Errorf("storage: bad ROOT arity for %s", name)
			}
			roots := make([]uint32, 0, len(fields)-3)
			for _, f := range fields[3:] {
				v, err := strconv.ParseUint(f, 10, 32)
				if err != nil {
					return fmt.Errorf("storage: bad ROOT tree root for %s: %w", name, err)
				}
				roots = append(roots, uint32(v))
			}
			if len(roots) != 1+arity {
				return fmt.Errorf("storage: table %s has %d roots, want %d", name, len(roots), 1+arity)
			}
			tb := &table{name: name, arity: arity, primary: &Tree{pg: s.pg, root: roots[0]}}
			for _, r := range roots[1:] {
				tb.sec = append(tb.sec, &Tree{pg: s.pg, root: r})
			}
			s.tables[name] = tb
		default:
			return fmt.Errorf("storage: unknown ROOT line %q", ln)
		}
	}
	if s.catalog == nil {
		return fmt.Errorf("storage: ROOT missing catalog line")
	}
	if nPages == 0 {
		return fmt.Errorf("storage: ROOT missing npages line")
	}
	s.pg.setAlloc(nPages, free)
	return nil
}

// RenderRoot serializes the store's roots and allocation state. Pages
// on the pending free list are included as free: they die the instant
// the ROOT being written commits.
func (s *Store) RenderRoot() []byte {
	nPages, free := s.pg.allocSnapshot()
	sort.Slice(free, func(i, j int) bool { return free[i] < free[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "%s\npagesize %d\nnpages %d\nviewseq %d\n", rootMagic, PageSize, nPages, s.viewSeq)
	if len(free) > 0 {
		b.WriteString("free")
		for _, f := range free {
			fmt.Fprintf(&b, " %d", f)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "catalog %d\n", s.catalog.root)
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		tb := s.tables[n]
		fmt.Fprintf(&b, "table %s %d %d", tb.name, tb.arity, tb.primary.root)
		for _, sec := range tb.sec {
			fmt.Fprintf(&b, " %d", sec.root)
		}
		b.WriteString("\n")
	}
	return []byte(b.String())
}

// CreateRelation registers a relation and its DDL statement.
func (s *Store) CreateRelation(name string, arity int, stmt string) error {
	if _, ok := s.tables[name]; ok {
		return fmt.Errorf("storage: relation %s already exists", name)
	}
	tb := &table{name: name, arity: arity, primary: &Tree{pg: s.pg}}
	for i := 0; i < arity; i++ {
		tb.sec = append(tb.sec, &Tree{pg: s.pg})
	}
	s.tables[name] = tb
	return s.catalog.Put([]byte(catSchema+name), []byte(stmt))
}

func (s *Store) lookupTable(rel string) (*table, error) {
	tb, ok := s.tables[rel]
	if !ok {
		return nil, fmt.Errorf("storage: unknown relation %s", rel)
	}
	return tb, nil
}

// secKey builds a secondary index key: enc(value) ‖ primaryKey. The
// value encoding is self-delimiting, so all keys for one value form a
// contiguous run beginning at enc(value).
func secKey(v value.Value, pk []byte) []byte {
	k := encValue(make([]byte, 0, 16+len(pk)), v)
	return append(k, pk...)
}

// InsertTuple adds vs to rel's primary and every secondary. Replaying a
// duplicate is a no-op (set semantics), matching the in-memory
// relation.
func (s *Store) InsertTuple(rel string, vs []value.Value) error {
	tb, err := s.lookupTable(rel)
	if err != nil {
		return err
	}
	if len(vs) != tb.arity {
		return fmt.Errorf("storage: %s arity %d, got %d values", rel, tb.arity, len(vs))
	}
	pk := encTuple(vs)
	if err := tb.primary.Put(pk, nil); err != nil {
		return err
	}
	for i, v := range vs {
		if err := tb.sec[i].Put(secKey(v, pk), nil); err != nil {
			return err
		}
	}
	return nil
}

// deleteByKey removes one tuple (given by its decoded values and
// primary key) from the primary and all secondaries.
func (s *Store) deleteByKey(tb *table, vs []value.Value, pk []byte) error {
	removed, err := tb.primary.Delete(pk)
	if err != nil {
		return err
	}
	if !removed {
		return nil
	}
	for i, v := range vs {
		if _, err := tb.sec[i].Delete(secKey(v, pk)); err != nil {
			return err
		}
	}
	return nil
}

// DeleteWhere removes every tuple of rel matching pred and reports the
// count. With hintAttr ≥ 0 the candidate set is narrowed through the
// attribute's secondary index (an equality hint extracted from the
// statement's conditions) instead of scanning the primary.
func (s *Store) DeleteWhere(rel string, pred func([]value.Value) bool, hintAttr int, hintVal value.Value) (int, error) {
	tb, err := s.lookupTable(rel)
	if err != nil {
		return 0, err
	}
	type victim struct {
		vs []value.Value
		pk []byte
	}
	var victims []victim
	collect := func(pk []byte) error {
		vs, err := decTuple(pk, tb.arity)
		if err != nil {
			return err
		}
		if pred == nil || pred(vs) {
			victims = append(victims, victim{vs, append([]byte(nil), pk...)})
		}
		return nil
	}
	if hintAttr >= 0 && hintAttr < tb.arity {
		lo := encValue(nil, hintVal)
		err = tb.sec[hintAttr].ScanFrom(lo, func(k, _ []byte) (bool, error) {
			if !bytes.HasPrefix(k, lo) {
				return false, nil
			}
			v, pk, err := decValue(k)
			if err != nil {
				return false, err
			}
			if v.Compare(hintVal) != 0 {
				return false, nil
			}
			return true, collect(pk)
		})
	} else {
		err = tb.primary.Scan(func(k, _ []byte) (bool, error) {
			return true, collect(k)
		})
	}
	if err != nil {
		return 0, err
	}
	for _, v := range victims {
		if err := s.deleteByKey(tb, v.vs, v.pk); err != nil {
			return 0, err
		}
	}
	return len(victims), nil
}

// ScanRelation streams rel's tuples in primary-key order.
func (s *Store) ScanRelation(rel string, fn func(vs []value.Value) error) error {
	tb, err := s.lookupTable(rel)
	if err != nil {
		return err
	}
	return tb.primary.Scan(func(k, _ []byte) (bool, error) {
		vs, err := decTuple(k, tb.arity)
		if err != nil {
			return false, err
		}
		return true, fn(vs)
	})
}

// Relations lists the stored relation names, sorted.
func (s *Store) Relations() []string {
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Arity returns the stored arity of rel.
func (s *Store) Arity(rel string) (int, error) {
	tb, err := s.lookupTable(rel)
	if err != nil {
		return 0, err
	}
	return tb.arity, nil
}

// PutView appends a view definition (replacing any earlier definition
// of the same name while keeping definition order for replay).
func (s *Store) PutView(name, stmt string) error {
	if err := s.DropView(name); err != nil {
		return err
	}
	s.viewSeq++
	key := fmt.Sprintf("%s%08d", catView, s.viewSeq)
	return s.catalog.Put([]byte(key), []byte(name+"\x00"+stmt))
}

// DropView removes name's definition and — matching the in-memory
// store's cascade — every permit granted on it. Unknown names are a
// no-op.
func (s *Store) DropView(name string) error {
	var doomed [][]byte
	err := s.scanPrefix(catView, func(k, v []byte) error {
		if n, _, ok := bytes.Cut(v, []byte{0}); ok && string(n) == name {
			doomed = append(doomed, append([]byte(nil), k...))
		}
		return nil
	})
	if err != nil || doomed == nil {
		return err
	}
	err = s.scanPrefix(catPermit, func(k, _ []byte) error {
		if _, view, ok := bytes.Cut(k[len(catPermit):], []byte{0}); ok && string(view) == name {
			doomed = append(doomed, append([]byte(nil), k...))
		}
		return nil
	})
	if err != nil {
		return err
	}
	for _, k := range doomed {
		if _, err := s.catalog.Delete(k); err != nil {
			return err
		}
	}
	return nil
}

// PutPermit records a permit statement under (user, view).
func (s *Store) PutPermit(user, view, stmt string) error {
	return s.catalog.Put([]byte(catPermit+user+"\x00"+view), []byte(stmt))
}

// DropPermit removes the permit for (user, view).
func (s *Store) DropPermit(user, view string) error {
	_, err := s.catalog.Delete([]byte(catPermit + user + "\x00" + view))
	return err
}

func (s *Store) scanPrefix(prefix string, fn func(k, v []byte) error) error {
	p := []byte(prefix)
	return s.catalog.ScanFrom(p, func(k, v []byte) (bool, error) {
		if !bytes.HasPrefix(k, p) {
			return false, nil
		}
		return true, fn(k, v)
	})
}

// LoadCatalog renders the stored meta-database as replayable statement
// lists: schemas (by relation name), views (in definition order), and
// permits (by user then view).
func (s *Store) LoadCatalog() (*Catalog, error) {
	var c Catalog
	if err := s.scanPrefix(catSchema, func(_, v []byte) error {
		c.Schemas = append(c.Schemas, string(v))
		return nil
	}); err != nil {
		return nil, err
	}
	if err := s.scanPrefix(catView, func(_, v []byte) error {
		if _, stmt, ok := bytes.Cut(v, []byte{0}); ok {
			c.Views = append(c.Views, string(stmt))
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := s.scanPrefix(catPermit, func(_, v []byte) error {
		c.Permits = append(c.Permits, string(v))
		return nil
	}); err != nil {
		return nil, err
	}
	return &c, nil
}

// MarkRebuild flags the store's trees as stale relative to the engine's
// in-memory head; the next checkpoint repopulates them from scratch
// (used when a replica adopts a whole snapshot, and when converting a
// CSV generation to the paged backend).
func (s *Store) MarkRebuild() { s.rebuild = true }

// NeedsRebuild reports whether MarkRebuild was called.
func (s *Store) NeedsRebuild() bool { return s.rebuild }

// Reset drops every tree and page, returning the store to empty; the
// caller repopulates it and clears the rebuild flag.
func (s *Store) Reset() {
	s.pg.Reset()
	s.catalog = &Tree{pg: s.pg}
	s.tables = make(map[string]*table)
	s.viewSeq = 0
	s.rebuild = false
}

// Flush writes all dirty pages and syncs the page file, returning the
// dirty-page count (the incremental-checkpoint metric).
func (s *Store) Flush() (int, error) { return s.pg.Flush() }

// Commit seals a checkpoint after the generation's CURRENT flip:
// superseded pages become reusable.
func (s *Store) Commit() { s.pg.Commit() }

// Stats snapshots the pager counters.
func (s *Store) Stats() Stats { return s.pg.Stats() }

// Close releases the page file handle.
func (s *Store) Close() error { return s.pg.Close() }
