package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"authdb/internal/faultfs"
	"authdb/internal/value"
)

func TestValueCodecRoundTripAndOrder(t *testing.T) {
	vals := []value.Value{
		value.Null(),
		value.Int(-1 << 62), value.Int(-1), value.Int(0), value.Int(1), value.Int(1 << 62),
		value.String(""), value.String("a"), value.String("a\x00b"), value.String("a\x00\xffb"),
		value.String("ab"), value.String("b"), value.String("ü"),
	}
	var prev []byte
	for i, v := range vals {
		enc := encValue(nil, v)
		got, rest, err := decValue(enc)
		if err != nil || len(rest) != 0 {
			t.Fatalf("decValue(%v): %v (rest %d)", v, err, len(rest))
		}
		if got.Compare(v) != 0 {
			t.Fatalf("round trip %v -> %v", v, got)
		}
		if i > 0 && vals[i-1].Compare(v) < 0 && bytes.Compare(prev, enc) >= 0 {
			t.Fatalf("encoding not order-preserving at %v < %v", vals[i-1], v)
		}
		prev = enc
	}
	tup := []value.Value{value.Int(7), value.String("x\x00y"), value.Null()}
	dec, err := decTuple(encTuple(tup), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tup {
		if dec[i].Compare(tup[i]) != 0 {
			t.Fatalf("tuple round trip: %v -> %v", tup, dec)
		}
	}
}

func TestPageRoundTrip(t *testing.T) {
	nodes := []*node{
		{typ: pageLeaf},
		{typ: pageLeaf, cells: []cell{{key: []byte("k"), val: []byte("v")}, {key: []byte("k2")}}},
		{typ: pageLeaf, cells: []cell{{keyOvf: 9, keyLen: 5000, valOvf: 12, valLen: 9000}}},
		{typ: pageInterior, right: 44, cells: []cell{{key: []byte("m"), child: 7}, {keyOvf: 3, keyLen: 600, child: 8}}},
		{typ: pageOverflow, right: 5, data: bytes.Repeat([]byte{0xAB}, ovfChunk)},
	}
	for i, n := range nodes {
		buf, err := encodePage(n)
		if err != nil {
			t.Fatalf("node %d: encode: %v", i, err)
		}
		got, err := decodePage(buf)
		if err != nil {
			t.Fatalf("node %d: decode: %v", i, err)
		}
		if got.typ != n.typ || got.right != n.right || len(got.cells) != len(n.cells) || !bytes.Equal(got.data, n.data) {
			t.Fatalf("node %d: round trip mismatch", i)
		}
		for j := range n.cells {
			a, b := n.cells[j], got.cells[j]
			if !bytes.Equal(a.key, b.key) || a.keyOvf != b.keyOvf || a.keyLen != b.keyLen ||
				!bytes.Equal(a.val, b.val) || a.valOvf != b.valOvf || a.valLen != b.valLen || a.child != b.child {
				t.Fatalf("node %d cell %d mismatch: %+v vs %+v", i, j, a, b)
			}
		}
	}
}

func TestPageDecodeRejectsCorruption(t *testing.T) {
	buf, err := encodePage(&node{typ: pageLeaf, cells: []cell{{key: []byte("abc"), val: []byte("def")}}})
	if err != nil {
		t.Fatal(err)
	}
	// A torn write: only half the page made it to disk.
	torn := make([]byte, PageSize)
	copy(torn, buf[:PageSize/2])
	if _, err := decodePage(torn); err == nil {
		t.Fatal("decodePage accepted a torn page")
	}
	// A single flipped bit anywhere must fail the CRC.
	flip := append([]byte(nil), buf...)
	flip[PageSize-1] ^= 0x40
	if _, err := decodePage(flip); err == nil {
		t.Fatal("decodePage accepted a bit flip")
	}
}

func newTestStore(t *testing.T, cachePages int) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), PagesFileName)
	s, err := Create(faultfs.OS(), path, cachePages)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, path
}

// checkpoint simulates the engine's checkpoint: flush, render ROOT,
// commit; then reopens the store from that ROOT.
func checkpointReopen(t *testing.T, s *Store, path string, cachePages int) *Store {
	t.Helper()
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	root := s.RenderRoot()
	s.Commit()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(faultfs.OS(), path, root, cachePages)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { re.Close() })
	return re
}

// TestTreeRandomOps drives a B+Tree against a map reference with big
// and small keys/values (forcing overflow chains), under a cache budget
// far below the working set, with periodic checkpoint+reopen cycles.
func TestTreeRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s, path := newTestStore(t, 16)
	tr := &Tree{pg: s.pg}
	ref := map[string]string{}
	randKey := func() string {
		if rng.Intn(20) == 0 {
			return fmt.Sprintf("big-%04d-%s", rng.Intn(300), bytes.Repeat([]byte{'k'}, maxInlineKey+100))
		}
		return fmt.Sprintf("k-%05d", rng.Intn(3000))
	}
	randVal := func() string {
		if rng.Intn(20) == 0 {
			return string(bytes.Repeat([]byte{'v'}, maxInlineVal+PageSize))
		}
		return fmt.Sprintf("val-%d", rng.Intn(1e6))
	}
	verify := func() {
		t.Helper()
		got := map[string]string{}
		var prev []byte
		if err := tr.Scan(func(k, v []byte) (bool, error) {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				t.Fatalf("scan out of order: %q after %q", k, prev)
			}
			prev = append(prev[:0], k...)
			got[string(k)] = string(v)
			return true, nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("tree has %d keys, reference %d", len(got), len(ref))
		}
		for k, v := range ref {
			if got[k] != v {
				t.Fatalf("key %.20q: got %.20q want %.20q", k, got[k], v)
			}
		}
	}
	for i := 0; i < 6000; i++ {
		k := randKey()
		switch rng.Intn(10) {
		case 0, 1, 2:
			if _, err := tr.Delete([]byte(k)); err != nil {
				t.Fatalf("op %d: delete: %v", i, err)
			}
			delete(ref, k)
		default:
			v := randVal()
			if err := tr.Put([]byte(k), []byte(v)); err != nil {
				t.Fatalf("op %d: put: %v", i, err)
			}
			ref[k] = v
		}
		if rng.Intn(50) == 0 {
			kk := randKey()
			v, ok, err := tr.Get([]byte(kk))
			if err != nil {
				t.Fatal(err)
			}
			want, wantOK := ref[kk]
			if ok != wantOK || (ok && string(v) != want) {
				t.Fatalf("op %d: get %.20q: got (%.20q,%v) want (%.20q,%v)", i, kk, v, ok, want, wantOK)
			}
		}
		if i%1500 == 1499 {
			verify()
			// Checkpoint + reopen: the tree must survive on only ROOT
			// state, and freed pages must recycle without corruption.
			root := tr.root
			s2 := checkpointReopen(t, s, path, 16)
			s = s2
			tr = &Tree{pg: s.pg, root: root}
			verify()
		}
	}
	verify()
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("expected evictions under a 16-page budget, stats %+v", st)
	}
	if st.Cached > 3*16 {
		t.Fatalf("cache grew far past budget: %+v", st)
	}
}

// TestShadowPreservesCommittedTree checks the shadow-paging invariant
// directly: after a flush+commit, further mutations must not alter any
// committed page, so re-opening from the old ROOT sees the old tree.
func TestShadowPreservesCommittedTree(t *testing.T) {
	s, path := newTestStore(t, 64)
	if err := s.CreateRelation("R", 2, "relation R (A, B);"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := s.InsertTuple("R", []value.Value{value.Int(int64(i)), value.String(fmt.Sprintf("row%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	oldRoot := s.RenderRoot()
	s.Commit()

	// Mutate heavily: deletes, inserts, a second relation.
	if _, err := s.DeleteWhere("R", func(vs []value.Value) bool { return vs[0].AsInt()%2 == 0 }, -1, value.Value{}); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateRelation("S", 1, "relation S (X);"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := s.InsertTuple("S", []value.Value{value.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The OLD root must still describe a fully intact tree.
	old, err := Open(faultfs.OS(), path, oldRoot, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()
	count := 0
	if err := old.ScanRelation("R", func(vs []value.Value) error {
		if vs[1].AsString() != fmt.Sprintf("row%d", vs[0].AsInt()) {
			return fmt.Errorf("corrupt tuple %v", vs)
		}
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 500 {
		t.Fatalf("old root sees %d rows, want 500", count)
	}
	if got := old.Relations(); len(got) != 1 || got[0] != "R" {
		t.Fatalf("old root sees relations %v", got)
	}
}

func TestStoreCatalogAndSecondaries(t *testing.T) {
	s, path := newTestStore(t, 32)
	if err := s.CreateRelation("EMP", 3, "relation EMP (NAME, DEPT, SAL);"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		tup := []value.Value{value.String(fmt.Sprintf("e%03d", i)), value.String(fmt.Sprintf("d%d", i%7)), value.Int(int64(1000 + i))}
		if err := s.InsertTuple("EMP", tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PutView("V1", "view V1 ...;"); err != nil {
		t.Fatal(err)
	}
	if err := s.PutView("V2", "view V2 ...;"); err != nil {
		t.Fatal(err)
	}
	if err := s.PutView("V1", "view V1 redefined;"); err != nil {
		t.Fatal(err)
	}
	if err := s.PutPermit("brown", "V1", "permit V1 to brown;"); err != nil {
		t.Fatal(err)
	}
	if err := s.PutPermit("klein", "V2", "permit V2 to klein;"); err != nil {
		t.Fatal(err)
	}
	if err := s.DropPermit("klein", "V2"); err != nil {
		t.Fatal(err)
	}

	// Equality hint through the DEPT secondary: delete one department.
	n, err := s.DeleteWhere("EMP", func(vs []value.Value) bool { return vs[1].AsString() == "d3" }, 1, value.String("d3"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 15 && n != 14 {
		t.Fatalf("deleted %d d3 rows", n)
	}

	re := checkpointReopen(t, s, path, 32)
	cat, err := re.LoadCatalog()
	if err != nil {
		t.Fatal(err)
	}
	wantViews := []string{"view V2 ...;", "view V1 redefined;"}
	if len(cat.Schemas) != 1 || len(cat.Permits) != 1 || len(cat.Views) != 2 {
		t.Fatalf("catalog %+v", cat)
	}
	for i, w := range wantViews {
		if cat.Views[i] != w {
			t.Fatalf("views %v, want %v", cat.Views, wantViews)
		}
	}
	if cat.Permits[0] != "permit V1 to brown;" {
		t.Fatalf("permits %v", cat.Permits)
	}
	var rows []string
	if err := re.ScanRelation("EMP", func(vs []value.Value) error {
		if vs[1].AsString() == "d3" {
			return fmt.Errorf("d3 row survived: %v", vs)
		}
		rows = append(rows, vs[0].AsString())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100-n {
		t.Fatalf("%d rows after reopen, want %d", len(rows), 100-n)
	}
	if !sort.StringsAreSorted(rows) {
		t.Fatal("primary scan not in key order")
	}
}
