// Package storage is the paged on-disk backend: fixed-size slotted
// pages, a pager with an LRU buffer cache and pin/unpin semantics, and
// copy-on-write B+Trees for relation primaries, per-attribute
// secondaries, and the catalog. The engine writes through to a Store on
// every mutating statement; checkpoints flush only dirty pages and
// commit a tiny ROOT file behind the existing CURRENT pointer protocol
// (DESIGN.md §16).
package storage

import (
	"encoding/binary"
	"fmt"

	"authdb/internal/value"
)

// Value encoding tags. The encoding is order-preserving under
// bytes.Compare and matches value.Compare's Null < Int < String order.
const (
	tagNull   = 0x01
	tagInt    = 0x02
	tagString = 0x03
)

// encValue appends the order-preserving encoding of v to dst. Ints are
// 8 big-endian bytes with the sign bit flipped; strings escape 0x00 as
// 0x00 0xFF and terminate with a bare 0x00, so every encoding is
// self-delimiting and whole-tuple keys sort lexicographically by
// (value order, arity).
func encValue(dst []byte, v value.Value) []byte {
	switch v.Kind() {
	case value.KindNull:
		return append(dst, tagNull)
	case value.KindInt:
		dst = append(dst, tagInt)
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(v.AsInt())^(1<<63))
		return append(dst, b[:]...)
	default:
		dst = append(dst, tagString)
		for i := 0; i < len(v.AsString()); i++ {
			c := v.AsString()[i]
			if c == 0x00 {
				dst = append(dst, 0x00, 0xFF)
			} else {
				dst = append(dst, c)
			}
		}
		return append(dst, 0x00)
	}
}

// decValue decodes one value from b, returning it and the remaining
// bytes.
func decValue(b []byte) (value.Value, []byte, error) {
	if len(b) == 0 {
		return value.Value{}, nil, fmt.Errorf("storage: empty value encoding")
	}
	switch b[0] {
	case tagNull:
		return value.Value{}, b[1:], nil
	case tagInt:
		if len(b) < 9 {
			return value.Value{}, nil, fmt.Errorf("storage: truncated int encoding")
		}
		u := binary.BigEndian.Uint64(b[1:9]) ^ (1 << 63)
		return value.Int(int64(u)), b[9:], nil
	case tagString:
		var out []byte
		rest := b[1:]
		for {
			if len(rest) == 0 {
				return value.Value{}, nil, fmt.Errorf("storage: unterminated string encoding")
			}
			c := rest[0]
			rest = rest[1:]
			if c != 0x00 {
				out = append(out, c)
				continue
			}
			if len(rest) > 0 && rest[0] == 0xFF {
				out = append(out, 0x00)
				rest = rest[1:]
				continue
			}
			return value.String(string(out)), rest, nil
		}
	default:
		return value.Value{}, nil, fmt.Errorf("storage: bad value tag 0x%02x", b[0])
	}
}

// encTuple encodes a whole tuple as the concatenation of its values'
// encodings. Relations enforce whole-tuple set semantics, so this is
// the primary-tree key.
func encTuple(vs []value.Value) []byte {
	dst := make([]byte, 0, 16*len(vs))
	for _, v := range vs {
		dst = encValue(dst, v)
	}
	return dst
}

// decTuple decodes exactly arity values and requires the encoding to be
// fully consumed.
func decTuple(b []byte, arity int) ([]value.Value, error) {
	out := make([]value.Value, 0, arity)
	for i := 0; i < arity; i++ {
		v, rest, err := decValue(b)
		if err != nil {
			return nil, fmt.Errorf("storage: tuple value %d: %w", i, err)
		}
		out = append(out, v)
		b = rest
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("storage: %d trailing bytes after tuple", len(b))
	}
	return out, nil
}
