package storage

import (
	"bytes"
	"fmt"
)

// Tree is a copy-on-write B+Tree over a pager. Interior cells hold
// (separator, child) with the invariant that child's keys are ≤ the
// separator; the node's right pointer holds keys greater than every
// separator. Mutations shadow the descent path (pager.Shadow), so the
// tree rooted at the last committed ROOT stays physically intact until
// the next checkpoint commits.
//
// Deletion is lazy: underfull nodes are not merged, empty nodes are
// unlinked, and a rootward chain of cell-less interior nodes collapses.
// Separators left behind by deletions remain valid upper bounds.
type Tree struct {
	pg   *pager
	root uint32 // 0 = empty tree
}

// split reports a node split to the parent: sepCell carries the
// promoted separator key (inline or overflow), right the new sibling
// holding keys greater than the separator.
type split struct {
	sepCell cell
	right   uint32
}

// cellKey returns the full key bytes of c, reading its overflow chain
// if the key is spilled.
func (t *Tree) cellKey(c *cell) ([]byte, error) {
	if c.keyOvf == 0 {
		return c.key, nil
	}
	return t.readOverflow(c.keyOvf, int(c.keyLen))
}

// cellVal returns the full value bytes of c.
func (t *Tree) cellVal(c *cell) ([]byte, error) {
	if c.valOvf == 0 {
		return c.val, nil
	}
	return t.readOverflow(c.valOvf, int(c.valLen))
}

const ovfChunk = PageSize - pageHdrSize

// writeOverflow spills data into a chain of overflow pages and returns
// the first page number. Chains are write-once: they are created whole
// and freed whole.
func (t *Tree) writeOverflow(data []byte) (uint32, error) {
	next := uint32(0)
	// Build back-to-front so each page links to its successor.
	for off := ((len(data) - 1) / ovfChunk) * ovfChunk; off >= 0; off -= ovfChunk {
		end := off + ovfChunk
		if end > len(data) {
			end = len(data)
		}
		no, err := t.pg.Alloc(&node{typ: pageOverflow, data: append([]byte(nil), data[off:end]...), right: next})
		if err != nil {
			return 0, err
		}
		next = no
	}
	return next, nil
}

// readOverflow reassembles a spilled key or value of the given total
// length.
func (t *Tree) readOverflow(first uint32, total int) ([]byte, error) {
	out := make([]byte, 0, total)
	for no := first; no != 0; {
		n, err := t.pg.Get(no)
		if err != nil {
			return nil, err
		}
		if n.typ != pageOverflow {
			return nil, fmt.Errorf("storage: page %d in overflow chain has type %d", no, n.typ)
		}
		out = append(out, n.data...)
		no = n.right
	}
	if len(out) != total {
		return nil, fmt.Errorf("storage: overflow chain holds %d bytes, want %d", len(out), total)
	}
	return out, nil
}

// freeOverflow releases a whole chain into the pending free list.
func (t *Tree) freeOverflow(first uint32) error {
	for no := first; no != 0; {
		n, err := t.pg.Get(no)
		if err != nil {
			return err
		}
		next := n.right
		t.pg.Free(no)
		no = next
	}
	return nil
}

// makeKeyCell builds a cell carrying key (copied), spilling to an
// overflow chain when it exceeds the inline cap.
func (t *Tree) makeKeyCell(key []byte) (cell, error) {
	var c cell
	if len(key) <= maxInlineKey {
		c.key = append([]byte(nil), key...)
		return c, nil
	}
	no, err := t.writeOverflow(key)
	if err != nil {
		return cell{}, err
	}
	c.keyOvf, c.keyLen = no, uint32(len(key))
	return c, nil
}

// setCellVal installs val into c (copied), spilling when oversized. Any
// previous value spill must already be freed by the caller.
func (t *Tree) setCellVal(c *cell, val []byte) error {
	c.val, c.valOvf, c.valLen = nil, 0, 0
	if len(val) <= maxInlineVal {
		if len(val) > 0 {
			c.val = append([]byte(nil), val...)
		}
		return nil
	}
	no, err := t.writeOverflow(val)
	if err != nil {
		return err
	}
	c.valOvf, c.valLen = no, uint32(len(val))
	return nil
}

// lowerBound returns the first cell index whose key is ≥ key (for
// leaves) / whose separator is ≥ key (for interiors: the child to
// descend), and whether that cell's key equals key exactly.
func (t *Tree) lowerBound(n *node, key []byte) (int, bool, error) {
	lo, hi := 0, len(n.cells)
	for lo < hi {
		mid := (lo + hi) / 2
		k, err := t.cellKey(&n.cells[mid])
		if err != nil {
			return 0, false, err
		}
		if bytes.Compare(k, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.cells) {
		k, err := t.cellKey(&n.cells[lo])
		if err != nil {
			return 0, false, err
		}
		return lo, bytes.Equal(k, key), nil
	}
	return lo, false, nil
}

// Get returns the value stored under key.
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	no := t.root
	for no != 0 {
		n, err := t.pg.Get(no)
		if err != nil {
			return nil, false, err
		}
		i, eq, err := t.lowerBound(n, key)
		if err != nil {
			return nil, false, err
		}
		if n.typ == pageInterior {
			if i < len(n.cells) {
				no = n.cells[i].child
			} else {
				no = n.right
			}
			continue
		}
		if !eq {
			return nil, false, nil
		}
		v, err := t.cellVal(&n.cells[i])
		return v, true, err
	}
	return nil, false, nil
}

// Put inserts or replaces key → val.
func (t *Tree) Put(key, val []byte) error {
	if t.root == 0 {
		c, err := t.makeKeyCell(key)
		if err != nil {
			return err
		}
		if err := t.setCellVal(&c, val); err != nil {
			return err
		}
		no, err := t.pg.Alloc(&node{typ: pageLeaf, cells: []cell{c}})
		if err != nil {
			return err
		}
		t.root = no
		return nil
	}
	newRoot, sp, err := t.put(t.root, key, val)
	if err != nil {
		return err
	}
	t.root = newRoot
	if sp != nil {
		rc := sp.sepCell
		rc.child = newRoot
		no, err := t.pg.Alloc(&node{typ: pageInterior, cells: []cell{rc}, right: sp.right})
		if err != nil {
			return err
		}
		t.root = no
	}
	return nil
}

func (t *Tree) put(no uint32, key, val []byte) (uint32, *split, error) {
	sno, n, err := t.pg.Shadow(no)
	if err != nil {
		return 0, nil, err
	}
	// Pin the shadowed page while working below it so recursion (or
	// overflow-chain writes) cannot thrash it out mid-mutation.
	t.pg.pin(sno)
	defer t.pg.Unpin(sno)
	if n.typ == pageLeaf {
		i, eq, err := t.lowerBound(n, key)
		if err != nil {
			return 0, nil, err
		}
		if eq {
			c := &n.cells[i]
			if c.valOvf != 0 {
				if err := t.freeOverflow(c.valOvf); err != nil {
					return 0, nil, err
				}
			}
			if err := t.setCellVal(c, val); err != nil {
				return 0, nil, err
			}
		} else {
			c, err := t.makeKeyCell(key)
			if err != nil {
				return 0, nil, err
			}
			if err := t.setCellVal(&c, val); err != nil {
				return 0, nil, err
			}
			n.cells = append(n.cells, cell{})
			copy(n.cells[i+1:], n.cells[i:])
			n.cells[i] = c
		}
		if nodeSize(n) <= PageSize {
			return sno, nil, nil
		}
		return t.splitLeaf(sno, n)
	}

	i, _, err := t.lowerBound(n, key)
	if err != nil {
		return 0, nil, err
	}
	var childNo uint32
	if i < len(n.cells) {
		childNo = n.cells[i].child
	} else {
		childNo = n.right
	}
	nc, sp, err := t.put(childNo, key, val)
	if err != nil {
		return 0, nil, err
	}
	if sp == nil {
		if i < len(n.cells) {
			n.cells[i].child = nc
		} else {
			n.right = nc
		}
		return sno, nil, nil
	}
	// The child split into nc (keys ≤ sp.sep) and sp.right (keys above).
	nw := sp.sepCell
	nw.child = nc
	if i < len(n.cells) {
		n.cells[i].child = sp.right
		n.cells = append(n.cells, cell{})
		copy(n.cells[i+1:], n.cells[i:])
		n.cells[i] = nw
	} else {
		n.right = sp.right
		n.cells = append(n.cells, nw)
	}
	if nodeSize(n) <= PageSize {
		return sno, nil, nil
	}
	return t.splitInterior(sno, n)
}

// splitLeaf moves the upper half (by encoded size) of n's cells to a
// new sibling. The separator is a fresh copy of the last left key, so
// spilled keys are never chain-shared between a leaf cell and an
// interior separator.
func (t *Tree) splitLeaf(sno uint32, n *node) (uint32, *split, error) {
	m := splitPoint(n)
	rightCells := append([]cell(nil), n.cells[m:]...)
	n.cells = n.cells[:m:m]
	lastKey, err := t.cellKey(&n.cells[m-1])
	if err != nil {
		return 0, nil, err
	}
	sepCell, err := t.makeKeyCell(lastKey)
	if err != nil {
		return 0, nil, err
	}
	rno, err := t.pg.Alloc(&node{typ: pageLeaf, cells: rightCells})
	if err != nil {
		return 0, nil, err
	}
	return sno, &split{sepCell: sepCell, right: rno}, nil
}

// splitInterior promotes the middle cell: its child becomes the left
// node's right pointer and its separator moves to the parent (ownership
// of any key overflow chain transfers with it).
func (t *Tree) splitInterior(sno uint32, n *node) (uint32, *split, error) {
	m := len(n.cells) / 2
	promoted := n.cells[m]
	rightCells := append([]cell(nil), n.cells[m+1:]...)
	rno, err := t.pg.Alloc(&node{typ: pageInterior, cells: rightCells, right: n.right})
	if err != nil {
		return 0, nil, err
	}
	n.right = promoted.child
	n.cells = n.cells[:m:m]
	sepCell := promoted
	sepCell.child = 0
	return sno, &split{sepCell: sepCell, right: rno}, nil
}

// splitPoint picks the first index that puts at least half the encoded
// bytes on the left, clamped so both sides keep at least one cell.
func splitPoint(n *node) int {
	target := nodeSize(n) / 2
	acc := pageHdrSize
	for i := range n.cells {
		acc += cellWireSize(n.typ, &n.cells[i]) + 2
		if acc >= target {
			m := i + 1
			if m >= len(n.cells) {
				m = len(n.cells) - 1
			}
			if m < 1 {
				m = 1
			}
			return m
		}
	}
	return len(n.cells) - 1
}

// Delete removes key, reporting whether it was present.
func (t *Tree) Delete(key []byte) (bool, error) {
	if t.root == 0 {
		return false, nil
	}
	newNo, removed, emptied, err := t.del(t.root, key)
	if err != nil {
		return false, err
	}
	if !removed {
		return false, nil
	}
	if emptied {
		t.root = 0
		return true, nil
	}
	t.root = newNo
	// Collapse cell-less interior roots left behind by lazy deletion.
	for t.root != 0 {
		n, err := t.pg.Get(t.root)
		if err != nil {
			return true, err
		}
		if n.typ != pageInterior || len(n.cells) > 0 {
			break
		}
		old := t.root
		t.root = n.right
		t.pg.Free(old)
	}
	return true, nil
}

// del removes key under no, returning the (possibly shadowed)
// replacement page, whether a key was removed, and whether the whole
// subtree became empty (in which case the page is already freed).
func (t *Tree) del(no uint32, key []byte) (uint32, bool, bool, error) {
	n, err := t.pg.Get(no)
	if err != nil {
		return 0, false, false, err
	}
	if n.typ == pageLeaf {
		i, eq, err := t.lowerBound(n, key)
		if err != nil {
			return 0, false, false, err
		}
		if !eq {
			return no, false, false, nil
		}
		sno, sn, err := t.pg.Shadow(no)
		if err != nil {
			return 0, false, false, err
		}
		c := sn.cells[i]
		if c.keyOvf != 0 {
			if err := t.freeOverflow(c.keyOvf); err != nil {
				return 0, false, false, err
			}
		}
		if c.valOvf != 0 {
			if err := t.freeOverflow(c.valOvf); err != nil {
				return 0, false, false, err
			}
		}
		sn.cells = append(sn.cells[:i], sn.cells[i+1:]...)
		if len(sn.cells) == 0 {
			t.pg.Free(sno)
			return 0, true, true, nil
		}
		return sno, true, false, nil
	}

	i, _, err := t.lowerBound(n, key)
	if err != nil {
		return 0, false, false, err
	}
	var childNo uint32
	if i < len(n.cells) {
		childNo = n.cells[i].child
	} else {
		childNo = n.right
	}
	t.pg.pin(no)
	nc, removed, emptied, err := t.del(childNo, key)
	t.pg.Unpin(no)
	if err != nil || !removed {
		return no, false, false, err
	}
	sno, sn, err := t.pg.Shadow(no)
	if err != nil {
		return 0, false, false, err
	}
	if !emptied {
		if i < len(sn.cells) {
			sn.cells[i].child = nc
		} else {
			sn.right = nc
		}
		return sno, true, false, nil
	}
	// The descended child vanished: drop its pointer. Removing a
	// separator only loosens lower bounds, which search never relies on.
	if i < len(sn.cells) {
		if sn.cells[i].keyOvf != 0 {
			if err := t.freeOverflow(sn.cells[i].keyOvf); err != nil {
				return 0, false, false, err
			}
		}
		sn.cells = append(sn.cells[:i], sn.cells[i+1:]...)
		return sno, true, false, nil
	}
	if len(sn.cells) == 0 {
		t.pg.Free(sno)
		return 0, true, true, nil
	}
	last := len(sn.cells) - 1
	sn.right = sn.cells[last].child
	if sn.cells[last].keyOvf != 0 {
		if err := t.freeOverflow(sn.cells[last].keyOvf); err != nil {
			return 0, false, false, err
		}
	}
	sn.cells = sn.cells[:last]
	return sno, true, false, nil
}

// ScanFrom walks keys ≥ lo (nil = all) in order; fn returns false to
// stop early.
func (t *Tree) ScanFrom(lo []byte, fn func(key, val []byte) (bool, error)) error {
	if t.root == 0 {
		return nil
	}
	_, err := t.scan(t.root, lo, fn)
	return err
}

// Scan walks every key in order.
func (t *Tree) Scan(fn func(key, val []byte) (bool, error)) error {
	return t.ScanFrom(nil, fn)
}

func (t *Tree) scan(no uint32, lo []byte, fn func(key, val []byte) (bool, error)) (bool, error) {
	n, err := t.pg.Get(no)
	if err != nil {
		return false, err
	}
	t.pg.pin(no)
	defer t.pg.Unpin(no)
	start := 0
	if lo != nil {
		start, _, err = t.lowerBound(n, lo)
		if err != nil {
			return false, err
		}
	}
	if n.typ == pageInterior {
		for i := start; i < len(n.cells); i++ {
			cont, err := t.scan(n.cells[i].child, lo, fn)
			if err != nil || !cont {
				return cont, err
			}
		}
		return t.scan(n.right, lo, fn)
	}
	for i := start; i < len(n.cells); i++ {
		k, err := t.cellKey(&n.cells[i])
		if err != nil {
			return false, err
		}
		v, err := t.cellVal(&n.cells[i])
		if err != nil {
			return false, err
		}
		cont, err := fn(k, v)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}
