package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// PageSize is the fixed on-disk page size. 4KiB matches the common
// filesystem block size; a torn write can still split a page, which the
// per-page CRC detects (and shadow paging makes harmless: committed
// roots never reference in-flight pages).
const PageSize = 4096

// Page types.
const (
	pageLeaf     = 1
	pageInterior = 2
	pageOverflow = 3
)

// Page header layout (16 bytes):
//
//	[0]     type
//	[1]     flags (unused)
//	[2:4]   nCells (leaf/interior) or data length (overflow), uint16
//	[4:8]   right: interior rightmost child / overflow next page, uint32
//	[8:12]  CRC32 (IEEE) of the page with this field zeroed
//	[12:14] cell content start offset, uint16
//	[14:16] reserved
//
// A slot array of uint16 cell offsets follows at byte 16; cell bodies
// are packed from the page tail downward.
const (
	pageHdrSize  = 16
	offType      = 0
	offNCells    = 2
	offRight     = 4
	offCRC       = 8
	offCellStart = 12
)

// Inline size caps. Keys or values longer than these spill to overflow
// chains, which guarantees a leaf/interior page always fits at least
// two cells and a split always has a non-empty left and right half.
const (
	maxInlineKey = (PageSize - pageHdrSize) / 8
	maxInlineVal = (PageSize - pageHdrSize) / 4
)

// cell is one decoded slot. For inline keys/values the byte slices are
// set; for spilled ones the ovf page number and total length are set
// instead. child is the subtree pointer on interior pages.
type cell struct {
	key    []byte
	keyOvf uint32
	keyLen uint32
	val    []byte
	valOvf uint32
	valLen uint32
	child  uint32
}

// node is a fully decoded page. Leaf and interior nodes carry cells;
// overflow nodes carry a data fragment and a next pointer. Decoding
// wholesale keeps the B+Tree logic free of byte offsets at the cost of
// one encode per dirty page at flush time.
type node struct {
	typ   byte
	cells []cell
	right uint32 // interior: rightmost child; overflow: next page
	data  []byte // overflow fragment
}

// cellWireSize returns the encoded size of c within typ's page.
func cellWireSize(typ byte, c *cell) int {
	n := 1 // flags
	if c.keyOvf != 0 {
		n += uvarintLen(uint64(c.keyLen)) + 4
	} else {
		n += uvarintLen(uint64(len(c.key))) + len(c.key)
	}
	if typ == pageLeaf {
		if c.valOvf != 0 {
			n += uvarintLen(uint64(c.valLen)) + 4
		} else {
			n += uvarintLen(uint64(len(c.val))) + len(c.val)
		}
	} else {
		n += 4 // child
	}
	return n
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// nodeSize returns the encoded byte size of n (header + slots + cells).
func nodeSize(n *node) int {
	if n.typ == pageOverflow {
		return pageHdrSize + len(n.data)
	}
	sz := pageHdrSize + 2*len(n.cells)
	for i := range n.cells {
		sz += cellWireSize(n.typ, &n.cells[i])
	}
	return sz
}

// encodePage renders n into a fresh PageSize buffer.
func encodePage(n *node) ([]byte, error) {
	buf := make([]byte, PageSize)
	buf[offType] = n.typ
	if n.typ == pageOverflow {
		if len(n.data) > PageSize-pageHdrSize {
			return nil, fmt.Errorf("storage: overflow fragment %d bytes exceeds page", len(n.data))
		}
		binary.LittleEndian.PutUint16(buf[offNCells:], uint16(len(n.data)))
		binary.LittleEndian.PutUint32(buf[offRight:], n.right)
		copy(buf[pageHdrSize:], n.data)
		stampCRC(buf)
		return buf, nil
	}
	if len(n.cells) > (PageSize-pageHdrSize)/2 {
		return nil, fmt.Errorf("storage: %d cells exceed page capacity", len(n.cells))
	}
	binary.LittleEndian.PutUint16(buf[offNCells:], uint16(len(n.cells)))
	binary.LittleEndian.PutUint32(buf[offRight:], n.right)
	top := PageSize
	slot := pageHdrSize
	for i := range n.cells {
		c := &n.cells[i]
		sz := cellWireSize(n.typ, c)
		top -= sz
		if top < slot+2*len(n.cells)-2*i {
			return nil, fmt.Errorf("storage: page overflow encoding cell %d", i)
		}
		binary.LittleEndian.PutUint16(buf[slot:], uint16(top))
		slot += 2
		p := top
		var flags byte
		if c.keyOvf != 0 {
			flags |= 1
		}
		if c.valOvf != 0 {
			flags |= 2
		}
		buf[p] = flags
		p++
		if c.keyOvf != 0 {
			p += binary.PutUvarint(buf[p:], uint64(c.keyLen))
			binary.LittleEndian.PutUint32(buf[p:], c.keyOvf)
			p += 4
		} else {
			p += binary.PutUvarint(buf[p:], uint64(len(c.key)))
			p += copy(buf[p:], c.key)
		}
		if n.typ == pageLeaf {
			if c.valOvf != 0 {
				p += binary.PutUvarint(buf[p:], uint64(c.valLen))
				binary.LittleEndian.PutUint32(buf[p:], c.valOvf)
				p += 4
			} else {
				p += binary.PutUvarint(buf[p:], uint64(len(c.val)))
				p += copy(buf[p:], c.val)
			}
		} else {
			binary.LittleEndian.PutUint32(buf[p:], c.child)
			p += 4
		}
	}
	binary.LittleEndian.PutUint16(buf[offCellStart:], uint16(top))
	stampCRC(buf)
	return buf, nil
}

func stampCRC(buf []byte) {
	binary.LittleEndian.PutUint32(buf[offCRC:], 0)
	crc := crc32.ChecksumIEEE(buf)
	binary.LittleEndian.PutUint32(buf[offCRC:], crc)
}

// decodePage parses a PageSize buffer into a node, verifying the CRC.
func decodePage(buf []byte) (*node, error) {
	if len(buf) != PageSize {
		return nil, fmt.Errorf("storage: page is %d bytes, want %d", len(buf), PageSize)
	}
	stored := binary.LittleEndian.Uint32(buf[offCRC:])
	cp := make([]byte, PageSize)
	copy(cp, buf)
	binary.LittleEndian.PutUint32(cp[offCRC:], 0)
	if got := crc32.ChecksumIEEE(cp); got != stored {
		return nil, fmt.Errorf("storage: page CRC mismatch (got %08x want %08x)", got, stored)
	}
	n := &node{typ: buf[offType], right: binary.LittleEndian.Uint32(buf[offRight:])}
	count := int(binary.LittleEndian.Uint16(buf[offNCells:]))
	switch n.typ {
	case pageOverflow:
		if count > PageSize-pageHdrSize {
			return nil, fmt.Errorf("storage: overflow length %d exceeds page", count)
		}
		n.data = append([]byte(nil), buf[pageHdrSize:pageHdrSize+count]...)
		return n, nil
	case pageLeaf, pageInterior:
	default:
		return nil, fmt.Errorf("storage: bad page type %d", n.typ)
	}
	if count > (PageSize-pageHdrSize)/2 {
		return nil, fmt.Errorf("storage: cell count %d exceeds page capacity", count)
	}
	n.cells = make([]cell, count)
	for i := 0; i < count; i++ {
		off := int(binary.LittleEndian.Uint16(buf[pageHdrSize+2*i:]))
		if off < pageHdrSize+2*count || off >= PageSize {
			return nil, fmt.Errorf("storage: cell %d offset %d out of range", i, off)
		}
		c := &n.cells[i]
		p := buf[off:]
		if len(p) < 1 {
			return nil, fmt.Errorf("storage: cell %d truncated", i)
		}
		flags := p[0]
		p = p[1:]
		klen, m := binary.Uvarint(p)
		if m <= 0 {
			return nil, fmt.Errorf("storage: cell %d bad key length", i)
		}
		p = p[m:]
		if flags&1 != 0 {
			if len(p) < 4 {
				return nil, fmt.Errorf("storage: cell %d truncated key overflow", i)
			}
			c.keyLen = uint32(klen)
			c.keyOvf = binary.LittleEndian.Uint32(p)
			p = p[4:]
		} else {
			if uint64(len(p)) < klen || klen > PageSize {
				return nil, fmt.Errorf("storage: cell %d key length %d out of range", i, klen)
			}
			c.key = append([]byte(nil), p[:klen]...)
			p = p[klen:]
		}
		if n.typ == pageLeaf {
			vlen, m := binary.Uvarint(p)
			if m <= 0 {
				return nil, fmt.Errorf("storage: cell %d bad value length", i)
			}
			p = p[m:]
			if flags&2 != 0 {
				if len(p) < 4 {
					return nil, fmt.Errorf("storage: cell %d truncated value overflow", i)
				}
				c.valLen = uint32(vlen)
				c.valOvf = binary.LittleEndian.Uint32(p)
			} else {
				if uint64(len(p)) < vlen || vlen > PageSize {
					return nil, fmt.Errorf("storage: cell %d value length %d out of range", i, vlen)
				}
				c.val = append([]byte(nil), p[:vlen]...)
			}
		} else {
			if len(p) < 4 {
				return nil, fmt.Errorf("storage: cell %d truncated child", i)
			}
			c.child = binary.LittleEndian.Uint32(p)
		}
	}
	return n, nil
}
