package storage

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"sync"

	"authdb/internal/faultfs"
)

// fileMagic heads page 0 of pages.db.
const fileMagic = "AUTHDBPAGES1"

// Stats is a point-in-time snapshot of pager counters, surfaced in
// /metrics and \stats.
type Stats struct {
	Hits       uint64 // cache hits in Get
	Misses     uint64 // cache misses (page read + decode)
	Evictions  uint64 // frames evicted by the LRU
	PageReads  uint64 // physical page reads
	PageWrites uint64 // physical page writes (flush + eviction writeback)
	Cached     int    // frames resident now
	Pages      uint32 // allocated pages in the file (excluding header)
	DirtyFlush uint64 // dirty pages written by the last Flush
}

// frame is one cached page.
type frame struct {
	no    uint32
	n     *node
	dirty bool
	pins  int
	elem  *list.Element
}

// pager owns pages.db: page allocation, the buffer cache, and the
// shadow-paging free lists. Page 0 is the file header; data pages are
// numbered from 1 at offset no*PageSize.
//
// Shadow-paging invariants:
//   - dirtying a committed page allocates a new physical slot (Shadow),
//     so the committed ROOT never references an in-flight write;
//   - freed pages land in pendingFree and become reusable only after
//     Commit (the next ROOT flip), so overflow chains and subtrees
//     shared between the committed and in-progress roots stay intact.
type pager struct {
	mu     sync.Mutex
	fs     faultfs.FS
	file   faultfs.RandomFile
	budget int // max cached frames before eviction

	nPages      uint32 // next page number to allocate
	free        []uint32
	pendingFree []uint32
	fresh       map[uint32]struct{} // allocated since last Commit: shadow in place

	frames map[uint32]*frame
	lru    *list.List // front = most recent; values are *frame

	hits, misses, evictions, reads, writes, dirtyFlush uint64
	broken                                             error // first I/O failure; fail-stop
}

// createPager truncates-or-creates path and writes the header page.
func createPager(fs faultfs.FS, path string, budget int) (*pager, error) {
	// Recreate from scratch so stale pages from an earlier life of the
	// file can never alias fresh allocations.
	_ = fs.Remove(path)
	f, err := fs.OpenFile(path)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, PageSize)
	copy(hdr, fileMagic)
	binary.LittleEndian.PutUint32(hdr[len(fileMagic):], PageSize)
	if _, err := f.WriteAt(hdr, 0); err != nil {
		f.Close()
		return nil, err
	}
	return newPager(fs, f, budget), nil
}

// openPager opens an existing pages.db and verifies its header.
func openPager(fs faultfs.FS, path string, budget int) (*pager, error) {
	f, err := fs.OpenFile(path)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, len(fileMagic)+4)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: reading page file header: %w", err)
	}
	if string(hdr[:len(fileMagic)]) != fileMagic {
		f.Close()
		return nil, fmt.Errorf("storage: bad page file magic")
	}
	if ps := binary.LittleEndian.Uint32(hdr[len(fileMagic):]); ps != PageSize {
		f.Close()
		return nil, fmt.Errorf("storage: page size %d, want %d", ps, PageSize)
	}
	return newPager(fs, f, budget), nil
}

func newPager(fs faultfs.FS, f faultfs.RandomFile, budget int) *pager {
	if budget < 8 {
		budget = 8
	}
	return &pager{
		fs:     fs,
		file:   f,
		budget: budget,
		nPages: 1,
		fresh:  make(map[uint32]struct{}),
		frames: make(map[uint32]*frame),
		lru:    list.New(),
	}
}

func (pg *pager) fail(err error) error {
	if pg.broken == nil {
		pg.broken = err
	}
	return err
}

// Get returns the decoded node for page no, reading it if not cached.
// The frame is moved to the LRU front but not pinned.
func (pg *pager) Get(no uint32) (*node, error) {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	f, err := pg.frameLocked(no)
	if err != nil {
		return nil, err
	}
	return f.n, nil
}

func (pg *pager) frameLocked(no uint32) (*frame, error) {
	if pg.broken != nil {
		return nil, pg.broken
	}
	if no == 0 || no >= pg.nPages {
		return nil, fmt.Errorf("storage: page %d out of range (nPages=%d)", no, pg.nPages)
	}
	if f, ok := pg.frames[no]; ok {
		pg.hits++
		pg.lru.MoveToFront(f.elem)
		return f, nil
	}
	pg.misses++
	buf := make([]byte, PageSize)
	pg.reads++
	if _, err := pg.file.ReadAt(buf, int64(no)*PageSize); err != nil {
		return nil, pg.fail(fmt.Errorf("storage: reading page %d: %w", no, err))
	}
	n, err := decodePage(buf)
	if err != nil {
		return nil, pg.fail(fmt.Errorf("storage: page %d: %w", no, err))
	}
	f := &frame{no: no, n: n}
	f.elem = pg.lru.PushFront(f)
	pg.frames[no] = f
	pg.ensureRoomLocked()
	return f, nil
}

// Alloc returns a fresh dirty page holding n. Fresh pages may be
// re-dirtied in place until Commit.
func (pg *pager) Alloc(n *node) (uint32, error) {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	return pg.allocLocked(n)
}

func (pg *pager) allocLocked(n *node) (uint32, error) {
	if pg.broken != nil {
		return 0, pg.broken
	}
	var no uint32
	if ln := len(pg.free); ln > 0 {
		no = pg.free[ln-1]
		pg.free = pg.free[:ln-1]
	} else {
		no = pg.nPages
		pg.nPages++
	}
	pg.fresh[no] = struct{}{}
	f := &frame{no: no, n: n, dirty: true}
	f.elem = pg.lru.PushFront(f)
	pg.frames[no] = f
	pg.ensureRoomLocked()
	return no, nil
}

// Shadow prepares page no for mutation and returns the page number the
// mutated node lives at: no itself when the page is fresh (allocated
// since the last Commit), else a newly allocated copy with the original
// moved to pendingFree. The returned node is cached, dirty, and safe to
// mutate.
func (pg *pager) Shadow(no uint32) (uint32, *node, error) {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	f, err := pg.frameLocked(no)
	if err != nil {
		return 0, nil, err
	}
	if _, ok := pg.fresh[no]; ok {
		f.dirty = true
		return no, f.n, nil
	}
	cp := &node{typ: f.n.typ, right: f.n.right}
	cp.cells = append([]cell(nil), f.n.cells...)
	cp.data = f.n.data
	pg.freeLocked(no)
	newNo, err := pg.allocLocked(cp)
	if err != nil {
		return 0, nil, err
	}
	return newNo, cp, nil
}

// Free releases page no into pendingFree; the slot is reusable only
// after the next Commit so the committed root keeps every page it
// references until it is superseded.
func (pg *pager) Free(no uint32) {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	pg.freeLocked(no)
}

func (pg *pager) freeLocked(no uint32) {
	if f, ok := pg.frames[no]; ok {
		pg.lru.Remove(f.elem)
		delete(pg.frames, no)
	}
	if _, ok := pg.fresh[no]; ok {
		// Never committed: immediately reusable.
		delete(pg.fresh, no)
		pg.free = append(pg.free, no)
		return
	}
	pg.pendingFree = append(pg.pendingFree, no)
}

// Pin prevents the page's frame from eviction until Unpin.
func (pg *pager) Pin(no uint32) (*node, error) {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	f, err := pg.frameLocked(no)
	if err != nil {
		return nil, err
	}
	f.pins++
	return f.n, nil
}

// pin increments the pin count of an already-resident frame without
// touching the hit/miss counters (used on pages just obtained via Get
// or Shadow). A non-resident page is a no-op: there is nothing to keep.
func (pg *pager) pin(no uint32) {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	if f, ok := pg.frames[no]; ok {
		f.pins++
	}
}

func (pg *pager) Unpin(no uint32) {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	if f, ok := pg.frames[no]; ok && f.pins > 0 {
		f.pins--
	}
}

// ensureRoomLocked evicts least-recently-used unpinned frames down to
// the budget. Dirty victims are written back (without sync — the next
// Flush's sync covers them; shadow paging keeps such writes invisible
// to the committed root). If everything is pinned or dirty-unwritable
// the cache is allowed to exceed its budget.
func (pg *pager) ensureRoomLocked() {
	for len(pg.frames) > pg.budget {
		var victim *frame
		for e := pg.lru.Back(); e != nil; e = e.Prev() {
			f := e.Value.(*frame)
			if f.pins == 0 {
				victim = f
				break
			}
		}
		if victim == nil {
			return
		}
		if victim.dirty {
			if err := pg.writePageLocked(victim); err != nil {
				pg.fail(err)
				return
			}
			victim.dirty = false
		}
		pg.lru.Remove(victim.elem)
		delete(pg.frames, victim.no)
		pg.evictions++
	}
}

func (pg *pager) writePageLocked(f *frame) error {
	buf, err := encodePage(f.n)
	if err != nil {
		return fmt.Errorf("storage: encoding page %d: %w", f.no, err)
	}
	pg.writes++
	if _, err := pg.file.WriteAt(buf, int64(f.no)*PageSize); err != nil {
		return fmt.Errorf("storage: writing page %d: %w", f.no, err)
	}
	return nil
}

// Flush writes every dirty cached page and syncs the file; it returns
// the number of dirty pages written (the incremental-checkpoint
// metric). Frames stay cached, now clean.
func (pg *pager) Flush() (int, error) {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	if pg.broken != nil {
		return 0, pg.broken
	}
	dirty := 0
	for _, f := range pg.frames {
		if !f.dirty {
			continue
		}
		if err := pg.writePageLocked(f); err != nil {
			return dirty, pg.fail(err)
		}
		f.dirty = false
		dirty++
	}
	if err := pg.file.Sync(); err != nil {
		return dirty, pg.fail(fmt.Errorf("storage: syncing page file: %w", err))
	}
	pg.dirtyFlush = uint64(dirty)
	return dirty, nil
}

// Commit seals a checkpoint: pages freed by superseded roots become
// reusable and fresh pages become committed (future mutation shadows
// them).
func (pg *pager) Commit() {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	pg.free = append(pg.free, pg.pendingFree...)
	pg.pendingFree = nil
	pg.fresh = make(map[uint32]struct{})
}

// Reset drops all cached and allocated state, returning the pager to an
// empty file image (used when the store must be rebuilt from the
// engine's in-memory head, e.g. after adopting a replication snapshot).
func (pg *pager) Reset() {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	pg.nPages = 1
	pg.free = nil
	pg.pendingFree = nil
	pg.fresh = make(map[uint32]struct{})
	pg.frames = make(map[uint32]*frame)
	pg.lru = list.New()
}

// setAlloc restores allocation state from a parsed ROOT.
func (pg *pager) setAlloc(nPages uint32, free []uint32) {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	pg.nPages = nPages
	pg.free = append([]uint32(nil), free...)
	pg.pendingFree = nil
	pg.fresh = make(map[uint32]struct{})
}

// allocSnapshot returns (nPages, free ∪ pendingFree) for ROOT
// rendering: pendingFree pages are dead as soon as the ROOT being
// written commits, so the new root may hand them out.
func (pg *pager) allocSnapshot() (uint32, []uint32) {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	free := make([]uint32, 0, len(pg.free)+len(pg.pendingFree))
	free = append(free, pg.free...)
	free = append(free, pg.pendingFree...)
	return pg.nPages, free
}

func (pg *pager) Stats() Stats {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	return Stats{
		Hits:       pg.hits,
		Misses:     pg.misses,
		Evictions:  pg.evictions,
		PageReads:  pg.reads,
		PageWrites: pg.writes,
		Cached:     len(pg.frames),
		Pages:      pg.nPages - 1,
		DirtyFlush: pg.dirtyFlush,
	}
}

func (pg *pager) Close() error {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	if pg.file == nil {
		return nil
	}
	err := pg.file.Close()
	pg.file = nil
	return err
}
