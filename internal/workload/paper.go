// Package workload provides the paper's running example database
// (Figure 1) and deterministic synthetic generators for the benchmark
// harness: schemas, data, view sets, and query workloads.
package workload

import (
	"fmt"

	"authdb/internal/core"
	"authdb/internal/cview"
	"authdb/internal/parser"
	"authdb/internal/relation"
	"authdb/internal/value"
)

// Fixture bundles a database scheme, its relation instances, and an
// authorization store.
type Fixture struct {
	Schema *relation.DBSchema
	Rels   map[string]*relation.Relation
	Store  *core.Store
}

// Source adapts the fixture's relations for the algebra evaluators.
func (f *Fixture) Source(name string) (*relation.Relation, error) {
	r, ok := f.Rels[name]
	if !ok {
		return nil, fmt.Errorf("unknown relation %s", name)
	}
	return r, nil
}

// MustExec applies a script of statements to the fixture (DDL, DML, view
// definitions and permits); it panics on any error, for fixtures only.
func (f *Fixture) MustExec(script string) {
	stmts, err := parser.ParseProgramPos(script)
	if err != nil {
		panic(fmt.Errorf("workload script: %w", err))
	}
	for _, sp := range stmts {
		if err := f.apply(sp.Stmt); err != nil {
			panic(fmt.Errorf("workload script line %d (%T): %w", sp.Line, sp.Stmt, err))
		}
	}
}

func (f *Fixture) apply(s parser.Stmt) error {
	switch s := s.(type) {
	case parser.CreateRelation:
		rs, err := relation.NewSchema(s.Name, s.Attrs, s.Key...)
		if err != nil {
			return err
		}
		if err := f.Schema.Add(rs); err != nil {
			return err
		}
		f.Rels[s.Name] = relation.FromSchema(rs)
		return nil
	case parser.Insert:
		r, ok := f.Rels[s.Rel]
		if !ok {
			return fmt.Errorf("unknown relation %s", s.Rel)
		}
		_, err := r.Insert(relation.Tuple(s.Values))
		return err
	case parser.ViewStmt:
		return f.Store.DefineView(s.Def)
	case parser.Permit:
		return f.Store.Permit(s.View, s.User)
	default:
		return fmt.Errorf("unsupported fixture statement %T", s)
	}
}

// NewFixture returns an empty fixture.
func NewFixture() *Fixture {
	sch := relation.NewDBSchema()
	return &Fixture{
		Schema: sch,
		Rels:   make(map[string]*relation.Relation),
		Store:  core.NewStore(sch),
	}
}

// PaperScript is the paper's running example verbatim: the database of
// Figure 1 (EMPLOYEE, PROJECT, ASSIGNMENT), the four views SAE, ELP, EST,
// PSA, and the permits for Brown and Klein.
const PaperScript = `
relation EMPLOYEE (NAME, TITLE, SALARY) key (NAME);
relation PROJECT (NUMBER, SPONSOR, BUDGET) key (NUMBER);
relation ASSIGNMENT (E_NAME, P_NO) key (E_NAME, P_NO);

insert into EMPLOYEE values (Jones, manager, 26000);
insert into EMPLOYEE values (Smith, technician, 22000);
insert into EMPLOYEE values (Brown, engineer, 32000);

insert into PROJECT values (bq-45, Acme, 300000);
insert into PROJECT values (sv-72, Apex, 450000);
insert into PROJECT values (vg-13, Summit, 150000);

insert into ASSIGNMENT values (Jones, bq-45);
insert into ASSIGNMENT values (Smith, bq-45);
insert into ASSIGNMENT values (Jones, sv-72);
insert into ASSIGNMENT values (Brown, sv-72);
insert into ASSIGNMENT values (Smith, vg-13);
insert into ASSIGNMENT values (Brown, vg-13);

view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY);

view ELP (EMPLOYEE.NAME, EMPLOYEE.TITLE, PROJECT.NUMBER, PROJECT.BUDGET)
  where EMPLOYEE.NAME = ASSIGNMENT.E_NAME
  and PROJECT.NUMBER = ASSIGNMENT.P_NO
  and PROJECT.BUDGET >= 250000;

view EST (EMPLOYEE:1.NAME, EMPLOYEE:2.NAME, EMPLOYEE:1.TITLE)
  where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE;

view PSA (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET)
  where PROJECT.SPONSOR = Acme;

permit SAE to Brown;
permit PSA to Brown;
permit EST to Brown;
permit ELP to Klein;
permit EST to Klein;
`

// Paper builds the Figure 1 fixture.
func Paper() *Fixture {
	f := NewFixture()
	f.MustExec(PaperScript)
	return f
}

// ViewDefsFor returns the definitions of the views permitted to user.
func (f *Fixture) ViewDefsFor(user string) []*cview.Def {
	var out []*cview.Def
	for _, name := range f.Store.ViewsFor(user) {
		if def := f.Store.ViewDef(name); def != nil {
			out = append(out, def)
		}
	}
	return out
}

// MustQuery parses a retrieve statement into its definition.
func MustQuery(stmt string) *cview.Def {
	s, err := parser.Parse(stmt)
	if err != nil {
		panic(err)
	}
	r, ok := s.(parser.Retrieve)
	if !ok {
		panic(fmt.Sprintf("not a retrieve statement: %T", s))
	}
	return r.Def
}

// Example1Query is Brown's §5 Example 1 request: the numbers and sponsors
// of large projects.
const Example1Query = `
retrieve (PROJECT.NUMBER, PROJECT.SPONSOR)
  where PROJECT.BUDGET >= 250000`

// Example2Query is Klein's §5 Example 2 request: the names and salaries of
// engineers assigned to very large projects.
const Example2Query = `
retrieve (EMPLOYEE.NAME, EMPLOYEE.SALARY)
  where EMPLOYEE.TITLE = engineer
  and EMPLOYEE.NAME = ASSIGNMENT.E_NAME
  and ASSIGNMENT.P_NO = PROJECT.NUMBER
  and PROJECT.BUDGET > 300000`

// Example3Query is Brown's §5 Example 3 request: the names and salaries of
// employees with the same title.
const Example3Query = `
retrieve (EMPLOYEE:1.NAME, EMPLOYEE:1.SALARY, EMPLOYEE:2.NAME, EMPLOYEE:2.SALARY)
  where EMPLOYEE:1.TITLE = EMPLOYEE:2.TITLE`

// Int is a convenience for fixture construction in tests.
func Int(i int64) value.Value { return value.Int(i) }

// Str is a convenience for fixture construction in tests.
func Str(s string) value.Value { return value.String(s) }
