package workload

import (
	"testing"

	"authdb/internal/algebra"
	"authdb/internal/core"
	"authdb/internal/cview"
)

func TestPaperFixture(t *testing.T) {
	f := Paper()
	for rel, rows := range map[string]int{"EMPLOYEE": 3, "PROJECT": 3, "ASSIGNMENT": 6} {
		if f.Rels[rel].Len() != rows {
			t.Fatalf("%s has %d rows, want %d", rel, f.Rels[rel].Len(), rows)
		}
	}
	if got := f.Store.ViewNames(); len(got) != 4 {
		t.Fatalf("views = %v", got)
	}
	if got := f.Store.ViewsFor("Brown"); len(got) != 3 {
		t.Fatalf("Brown's views = %v", got)
	}
	if got := f.Store.ViewsFor("Klein"); len(got) != 2 {
		t.Fatalf("Klein's views = %v", got)
	}
	if defs := f.ViewDefsFor("Klein"); len(defs) != 2 || defs[0].Name != "ELP" {
		t.Fatalf("Klein's defs = %v", defs)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGen()
	a := Generate(cfg)
	b := Generate(cfg)
	for _, rel := range []string{"R0", "R1", "R2"} {
		if !a.Rels[rel].Equal(b.Rels[rel]) {
			t.Fatalf("%s differs across runs with the same seed", rel)
		}
	}
	cfg2 := cfg
	cfg2.Seed = 99
	c := Generate(cfg2)
	same := true
	for _, rel := range []string{"R0", "R1", "R2"} {
		if !a.Rels[rel].Equal(c.Rels[rel]) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds generated identical data")
	}
}

func TestGeneratedViewsAnalyze(t *testing.T) {
	cfg := DefaultGen()
	cfg.Views = 10
	f := Generate(cfg)
	for _, name := range f.Store.ViewNames() {
		v := f.Store.View(name)
		if _, err := cview.Analyze(v.Def, f.Schema); err != nil {
			t.Fatalf("generated view %s invalid: %v", name, err)
		}
	}
	// Each user got some permits.
	for _, u := range cfg.Users {
		if len(f.Store.ViewsFor(u)) == 0 {
			t.Fatalf("user %s has no permits", u)
		}
	}
}

func TestGeneratedQueriesRun(t *testing.T) {
	cfg := DefaultGen()
	f := Generate(cfg)
	qs := GenQueries(cfg, QueryConfig{
		Seed: 5, Count: 25, JoinWidth: 2,
		ExtraAttrProb: 0.4, RangeFraction: 0.5,
		DropSelAttrProb: 0.5, InsideProb: 0.5,
	}, f.ViewDefsFor("u0")...)
	if len(qs) != 25 {
		t.Fatalf("queries = %d", len(qs))
	}
	auth := core.NewAuthorizer(f.Store, f.Source, core.DefaultOptions())
	for i, q := range qs {
		an, err := cview.Analyze(q, f.Schema)
		if err != nil {
			t.Fatalf("query %d invalid: %v\n%s", i, err, q)
		}
		if _, err := algebra.EvalOptimized(an.PSJ, f.Source); err != nil {
			t.Fatalf("query %d fails: %v", i, err)
		}
		if _, err := auth.Retrieve("u0", q); err != nil {
			t.Fatalf("query %d authorization fails: %v", i, err)
		}
	}
}

func TestGenerateValidatesConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("degenerate config accepted")
		}
	}()
	Generate(GenConfig{})
}

func TestMustQueryPanicsOnNonRetrieve(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustQuery accepted a non-retrieve")
		}
	}()
	MustQuery(`permit X to Y`)
}

func TestFixtureSourceErrors(t *testing.T) {
	f := Paper()
	if _, err := f.Source("NOPE"); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if _, err := f.Source("EMPLOYEE"); err != nil {
		t.Fatal(err)
	}
}

func TestConvenienceValues(t *testing.T) {
	if Int(3).AsInt() != 3 || Str("x").AsString() != "x" {
		t.Fatal("convenience constructors wrong")
	}
}
