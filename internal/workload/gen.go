package workload

import (
	"fmt"
	"math/rand"

	"authdb/internal/cview"
	"authdb/internal/relation"
	"authdb/internal/value"
)

// GenConfig parameterises the synthetic generator. All generation is
// deterministic in Seed, so every experiment is reproducible.
type GenConfig struct {
	Seed int64
	// Relations is the number of base relations R0…Rn-1.
	Relations int
	// AttrsPerRel is the arity of each relation (≥ 3: key, foreign key,
	// payload…).
	AttrsPerRel int
	// RowsPerRel is the cardinality of each relation.
	RowsPerRel int
	// Views is how many views to define.
	Views int
	// ViewJoinWidth caps how many relations one view may join (≥ 1).
	ViewJoinWidth int
	// Users receive permits round-robin over the views.
	Users []string
	// RangeFraction in [0,1] sets how wide each view's range condition
	// is relative to the payload domain (1 = unconstrained).
	RangeFraction float64
}

// DefaultGen returns a moderate configuration for tests.
func DefaultGen() GenConfig {
	return GenConfig{
		Seed:          1,
		Relations:     3,
		AttrsPerRel:   4,
		RowsPerRel:    64,
		Views:         4,
		ViewJoinWidth: 2,
		Users:         []string{"u0", "u1"},
		RangeFraction: 0.5,
	}
}

// RelName returns the generated name of relation i.
func RelName(i int) string { return fmt.Sprintf("R%d", i) }

// AttrName returns the generated name of attribute j.
func AttrName(j int) string { return fmt.Sprintf("A%d", j) }

// Generate builds a synthetic fixture:
//
//   - relation Ri has attributes A0 (key, 0…rows-1), A1 (foreign key into
//     R(i+1 mod n)'s A0), and payloads A2… drawn from [0, rows);
//   - views join chains Ri ⋈ Ri+1 on A1 = A0, project the keys plus a
//     payload prefix, and constrain A2 to a range of the configured width;
//   - users are granted views round-robin.
func Generate(cfg GenConfig) *Fixture {
	if cfg.Relations < 1 || cfg.AttrsPerRel < 3 || cfg.RowsPerRel < 1 {
		panic("workload: degenerate GenConfig")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := NewFixture()
	attrs := make([]string, cfg.AttrsPerRel)
	for j := range attrs {
		attrs[j] = AttrName(j)
	}
	for i := 0; i < cfg.Relations; i++ {
		rs := relation.MustSchema(RelName(i), attrs, AttrName(0))
		if err := f.Schema.Add(rs); err != nil {
			panic(err)
		}
		r := relation.FromSchema(rs)
		for row := 0; row < cfg.RowsPerRel; row++ {
			t := make(relation.Tuple, cfg.AttrsPerRel)
			t[0] = value.Int(int64(row))
			t[1] = value.Int(int64(rng.Intn(cfg.RowsPerRel)))
			for j := 2; j < cfg.AttrsPerRel; j++ {
				t[j] = value.Int(int64(rng.Intn(cfg.RowsPerRel)))
			}
			r.MustInsert(t...)
		}
		f.Rels[RelName(i)] = r
	}
	for v := 0; v < cfg.Views; v++ {
		def := genView(cfg, rng, v)
		if err := f.Store.DefineView(def); err != nil {
			panic(err)
		}
		if len(cfg.Users) > 0 {
			user := cfg.Users[v%len(cfg.Users)]
			if err := f.Store.Permit(def.Name, user); err != nil {
				panic(err)
			}
		}
	}
	return f
}

// genView builds view v: a chain of 1..ViewJoinWidth relations starting at
// a rotating anchor.
func genView(cfg GenConfig, rng *rand.Rand, v int) *cview.Def {
	width := 1
	if cfg.ViewJoinWidth > 1 {
		width = 1 + rng.Intn(cfg.ViewJoinWidth)
	}
	if width > cfg.Relations {
		width = cfg.Relations
	}
	start := v % cfg.Relations
	def := &cview.Def{Name: fmt.Sprintf("V%d", v)}
	for k := 0; k < width; k++ {
		rel := RelName((start + k) % cfg.Relations)
		// Project the key and one payload of every member relation.
		def.Cols = append(def.Cols,
			cview.ColRef{Alias: rel, Attr: AttrName(0)},
			cview.ColRef{Alias: rel, Attr: AttrName(2)},
		)
		if k > 0 {
			prev := RelName((start + k - 1) % cfg.Relations)
			def.Where = append(def.Where, cview.Cond{
				L:  cview.ColRef{Alias: prev, Attr: AttrName(1)},
				Op: value.EQ,
				R:  cview.ColTerm(rel, AttrName(0)),
			})
		}
	}
	// Range condition on the anchor's payload.
	if cfg.RangeFraction < 1 {
		span := int64(float64(cfg.RowsPerRel) * cfg.RangeFraction)
		if span < 1 {
			span = 1
		}
		lo := int64(rng.Intn(cfg.RowsPerRel))
		anchor := RelName(start)
		def.Where = append(def.Where,
			cview.Cond{
				L:  cview.ColRef{Alias: anchor, Attr: AttrName(2)},
				Op: value.GE,
				R:  cview.ConstTerm(value.Int(lo)),
			},
			cview.Cond{
				L:  cview.ColRef{Alias: anchor, Attr: AttrName(2)},
				Op: value.LE,
				R:  cview.ConstTerm(value.Int(lo + span)),
			},
		)
	}
	return def
}

// QueryConfig parameterises the query generator.
type QueryConfig struct {
	Seed int64
	// Count is how many queries to produce.
	Count int
	// JoinWidth caps the number of relations per query.
	JoinWidth int
	// ExtraAttrProb is the probability a query projects a payload column
	// beyond the view-style prefix — the requests that exceed column
	// permissions.
	ExtraAttrProb float64
	// RangeFraction sets the width of the query's range condition.
	RangeFraction float64
	// DropSelAttrProb is the probability the query does NOT project the
	// payload attribute its range condition selects on — the shape where
	// the §4.2 clearing refinement decides whether any mask survives the
	// final projection.
	DropSelAttrProb float64
	// InsideProb is the probability a query is derived from one of the
	// provided view definitions — a request inside (or slightly
	// exceeding, per ExtraAttrProb) a permission, the workload region
	// where the models actually differ.
	InsideProb float64
}

// GenQueries builds a deterministic query workload over a generated
// fixture's scheme. Queries mirror the view shapes (chains joined on
// A1 = A0 with a range on A2) with varying anchors, widths, projections,
// and ranges; with InsideProb > 0 a share of them is derived from the
// given view definitions (pass the target user's permitted views), so the
// workload mixes requests inside, around, and outside the permissions.
func GenQueries(cfg GenConfig, qc QueryConfig, views ...*cview.Def) []*cview.Def {
	rng := rand.New(rand.NewSource(qc.Seed))
	out := make([]*cview.Def, 0, qc.Count)
	for q := 0; q < qc.Count; q++ {
		if len(views) > 0 && rng.Float64() < qc.InsideProb {
			out = append(out, deriveQuery(rng, views[rng.Intn(len(views))], cfg, qc))
			continue
		}
		width := 1
		if qc.JoinWidth > 1 {
			width = 1 + rng.Intn(qc.JoinWidth)
		}
		if width > cfg.Relations {
			width = cfg.Relations
		}
		start := rng.Intn(cfg.Relations)
		dropSel := rng.Float64() < qc.DropSelAttrProb
		def := &cview.Def{}
		for k := 0; k < width; k++ {
			rel := RelName((start + k) % cfg.Relations)
			def.Cols = append(def.Cols, cview.ColRef{Alias: rel, Attr: AttrName(0)})
			if !(dropSel && k == 0) {
				def.Cols = append(def.Cols, cview.ColRef{Alias: rel, Attr: AttrName(2)})
			}
			if rng.Float64() < qc.ExtraAttrProb && cfg.AttrsPerRel > 3 {
				def.Cols = append(def.Cols, cview.ColRef{Alias: rel, Attr: AttrName(3)})
			}
			if k > 0 {
				prev := RelName((start + k - 1) % cfg.Relations)
				def.Where = append(def.Where, cview.Cond{
					L:  cview.ColRef{Alias: prev, Attr: AttrName(1)},
					Op: value.EQ,
					R:  cview.ColTerm(rel, AttrName(0)),
				})
			}
		}
		if qc.RangeFraction < 1 {
			span := int64(float64(cfg.RowsPerRel) * qc.RangeFraction)
			if span < 1 {
				span = 1
			}
			lo := int64(rng.Intn(cfg.RowsPerRel))
			anchor := RelName(start)
			def.Where = append(def.Where, cview.Cond{
				L:  cview.ColRef{Alias: anchor, Attr: AttrName(2)},
				Op: value.GE,
				R:  cview.ConstTerm(value.Int(lo)),
			}, cview.Cond{
				L:  cview.ColRef{Alias: anchor, Attr: AttrName(2)},
				Op: value.LE,
				R:  cview.ConstTerm(value.Int(lo + span)),
			})
		}
		out = append(out, def)
	}
	return out
}

// deriveQuery builds a request from a view definition: a column subset
// (possibly plus an unpermitted extra), the view's join conditions, and a
// narrowed version of its range conditions, so the request sits inside
// the permission except where ExtraAttrProb pushes it out.
func deriveQuery(rng *rand.Rand, v *cview.Def, cfg GenConfig, qc QueryConfig) *cview.Def {
	def := &cview.Def{}
	for _, c := range v.Cols {
		if len(def.Cols) > 0 && rng.Float64() < 0.3 {
			continue // drop some permitted columns
		}
		def.Cols = append(def.Cols, c)
	}
	if rng.Float64() < qc.ExtraAttrProb && cfg.AttrsPerRel > 3 {
		alias := v.Cols[rng.Intn(len(v.Cols))].Alias
		def.Cols = append(def.Cols, cview.ColRef{Alias: alias, Attr: AttrName(cfg.AttrsPerRel - 1)})
	}
	for _, c := range v.Where {
		nc := c
		if !c.R.IsCol && c.R.Const.Kind() == value.KindInt {
			// Narrow the range: raise lower bounds, lower upper bounds.
			delta := int64(rng.Intn(cfg.RowsPerRel/8 + 1))
			switch c.Op {
			case value.GE, value.GT:
				nc.R = cview.ConstTerm(value.Int(c.R.Const.AsInt() + delta))
			case value.LE, value.LT:
				nc.R = cview.ConstTerm(value.Int(c.R.Const.AsInt() - delta))
			}
		}
		def.Where = append(def.Where, nc)
	}
	return def
}
