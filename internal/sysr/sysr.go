// Package sysr reimplements the System R authorization mechanism of
// Griffiths and Wade (TODS 1976) to the extent the paper's §1 comparison
// requires: SELECT privileges on tables and views, GRANT OPTION,
// timestamped recursive revocation, and — crucially — views as access
// windows. A query is authorized all-or-nothing: the user needs SELECT on
// every object the query references, and privileges on a view V of A and B
// authorize queries against V only, never against A or B themselves, even
// when the request falls entirely within V.
package sysr

import (
	"fmt"
	"sort"

	"authdb/internal/algebra"
	"authdb/internal/cview"
	"authdb/internal/relation"
)

// Grant is one row of SYSAUTH: grantor gave grantee SELECT on object,
// possibly with the grant option, at logical time TS.
type Grant struct {
	TS      int
	Grantor string
	Grantee string
	Object  string
	Option  bool
}

// System is a System R–style authorization authority over a database.
type System struct {
	sch    *relation.DBSchema
	src    algebra.Source
	owners map[string]string // object -> owner (tables and views)
	views  map[string]*cview.Def
	grants []Grant
	clock  int
}

// New creates the authority over an existing database scheme and source.
// Each base relation is assigned to owner (the DBA figure), who holds all
// privileges with the grant option.
func New(sch *relation.DBSchema, src algebra.Source, owner string) *System {
	s := &System{
		sch:    sch,
		src:    src,
		owners: make(map[string]string),
		views:  make(map[string]*cview.Def),
	}
	for _, n := range sch.Names() {
		s.owners[n] = owner
	}
	return s
}

// DefineView registers a conjunctive view over base relations. The
// definer must hold SELECT on every underlying relation; the view's
// grant option derives from holding the option on all of them.
func (s *System) DefineView(definer string, def *cview.Def) error {
	if def.Name == "" {
		return fmt.Errorf("view must be named")
	}
	if _, ok := s.views[def.Name]; ok || s.sch.Lookup(def.Name) != nil {
		return fmt.Errorf("object %s already exists", def.Name)
	}
	an, err := cview.Analyze(def, s.sch)
	if err != nil {
		return err
	}
	for _, sc := range an.Scans {
		if !s.HasSelect(definer, sc.Rel) {
			return fmt.Errorf("%s lacks SELECT on %s", definer, sc.Rel)
		}
	}
	s.views[def.Name] = def
	s.owners[def.Name] = definer
	return nil
}

// GrantSelect records a grant; the grantor must hold SELECT with the
// grant option on the object.
func (s *System) GrantSelect(grantor, grantee, object string, withOption bool) error {
	if s.owners[object] == "" {
		return fmt.Errorf("unknown object %s", object)
	}
	if !s.hasOption(grantor, object) {
		return fmt.Errorf("%s lacks the grant option on %s", grantor, object)
	}
	s.clock++
	s.grants = append(s.grants, Grant{
		TS: s.clock, Grantor: grantor, Grantee: grantee, Object: object, Option: withOption,
	})
	return nil
}

// RevokeSelect removes every grant of object from revoker to revokee and
// then recursively invalidates grants that can no longer be supported —
// the Griffiths–Wade semantics: a grant at time t stands only if the
// grantor held the grant option from still-valid earlier grants (or
// ownership).
func (s *System) RevokeSelect(revoker, revokee, object string) int {
	kept := s.grants[:0]
	removed := 0
	for _, g := range s.grants {
		if g.Object == object && g.Grantor == revoker && g.Grantee == revokee {
			removed++
			continue
		}
		kept = append(kept, g)
	}
	s.grants = kept
	if removed > 0 {
		removed += s.rebuild()
	}
	return removed
}

// rebuild drops grants whose support chain broke, iterating to a fixpoint;
// it returns how many fell.
func (s *System) rebuild() int {
	dropped := 0
	for {
		changed := false
		kept := s.grants[:0]
		for _, g := range s.grants {
			if s.supportedBefore(g.Grantor, g.Object, g.TS) {
				kept = append(kept, g)
			} else {
				dropped++
				changed = true
			}
		}
		s.grants = kept
		if !changed {
			return dropped
		}
	}
}

// supportedBefore reports whether user held the grant option on object
// strictly before time ts (ownership counts from the beginning).
func (s *System) supportedBefore(user, object string, ts int) bool {
	if s.owners[object] == user {
		return true
	}
	for _, g := range s.grants {
		if g.Grantee == user && g.Object == object && g.Option && g.TS < ts {
			return true
		}
	}
	return false
}

// hasOption reports whether user may grant SELECT on object now.
func (s *System) hasOption(user, object string) bool {
	return s.supportedBefore(user, object, s.clock+1)
}

// HasSelect reports whether user may read object.
func (s *System) HasSelect(user, object string) bool {
	if s.owners[object] == user {
		return true
	}
	for _, g := range s.grants {
		if g.Grantee == user && g.Object == object {
			return true
		}
	}
	return false
}

// Grants returns a snapshot of the current grant table, ordered by time.
func (s *System) Grants() []Grant {
	out := append([]Grant(nil), s.grants...)
	sort.Slice(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// Query authorizes and answers def all-or-nothing. The definition may
// reference base relations and views (by name, single occurrence each for
// views); SELECT is required on every referenced object. There is no
// partial delivery: any missing privilege rejects the query — the System R
// behaviour the paper's §1 criticises.
func (s *System) Query(user string, def *cview.Def) (*relation.Relation, error) {
	// Split references into views and base relations.
	viewRefs := make(map[string]bool)
	for _, a := range def.Aliases() {
		base := relation.BaseOfAlias(a)
		if _, ok := s.views[base]; ok {
			viewRefs[base] = true
			continue
		}
		if s.sch.Lookup(base) == nil {
			return nil, fmt.Errorf("unknown object %s", base)
		}
		if !s.HasSelect(user, base) {
			return nil, fmt.Errorf("access denied: %s lacks SELECT on %s", user, base)
		}
	}
	for v := range viewRefs {
		if !s.HasSelect(user, v) {
			return nil, fmt.Errorf("access denied: %s lacks SELECT on %s", user, v)
		}
	}
	// Materialize referenced views and evaluate over the extended scheme.
	sch, src, err := s.extend(viewRefs)
	if err != nil {
		return nil, err
	}
	an, err := cview.Analyze(def, sch)
	if err != nil {
		return nil, err
	}
	return algebra.EvalOptimized(an.PSJ, src)
}

// viewColumns names a view's output columns: bare attribute names, with
// duplicates disambiguated by a numeric suffix (System R's column
// renaming).
func viewColumns(def *cview.Def) []string {
	count := make(map[string]int, len(def.Cols))
	for _, c := range def.Cols {
		count[c.Attr]++
	}
	seen := make(map[string]int, len(def.Cols))
	attrs := make([]string, len(def.Cols))
	for i, c := range def.Cols {
		if count[c.Attr] == 1 {
			attrs[i] = c.Attr
			continue
		}
		seen[c.Attr]++
		attrs[i] = fmt.Sprintf("%s_%d", c.Attr, seen[c.Attr])
	}
	return attrs
}

// extend builds a scheme and source where each referenced view appears as
// a (materialized) relation named after it, with bare column names.
func (s *System) extend(viewRefs map[string]bool) (*relation.DBSchema, algebra.Source, error) {
	sch := relation.NewDBSchema()
	for _, n := range s.sch.Names() {
		if err := sch.Add(s.sch.Lookup(n)); err != nil {
			return nil, nil, err
		}
	}
	mat := make(map[string]*relation.Relation)
	for v := range viewRefs {
		def := s.views[v]
		an, err := cview.Analyze(def, s.sch)
		if err != nil {
			return nil, nil, err
		}
		r, err := algebra.EvalOptimized(an.PSJ, s.src)
		if err != nil {
			return nil, nil, err
		}
		attrs := viewColumns(def)
		vs, err := relation.NewSchema(v, attrs)
		if err != nil {
			return nil, nil, err
		}
		if err := sch.Add(vs); err != nil {
			return nil, nil, err
		}
		mat[v] = r.Rename(attrs)
	}
	src := func(name string) (*relation.Relation, error) {
		if r, ok := mat[name]; ok {
			return r, nil
		}
		return s.src(name)
	}
	return sch, src, nil
}
