package sysr_test

import (
	"testing"

	"authdb/internal/sysr"
	"authdb/internal/workload"
)

func newSystem(t *testing.T) (*workload.Fixture, *sysr.System) {
	t.Helper()
	f := workload.Paper()
	s := sysr.New(f.Schema, f.Source, "dba")
	return f, s
}

func TestOwnerPrivileges(t *testing.T) {
	_, s := newSystem(t)
	if !s.HasSelect("dba", "EMPLOYEE") {
		t.Fatal("owner lacks SELECT")
	}
	if s.HasSelect("alice", "EMPLOYEE") {
		t.Fatal("stranger holds SELECT")
	}
}

func TestGrantRequiresOption(t *testing.T) {
	_, s := newSystem(t)
	if err := s.GrantSelect("alice", "bob", "EMPLOYEE", false); err == nil {
		t.Fatal("grant without the option accepted")
	}
	if err := s.GrantSelect("dba", "alice", "EMPLOYEE", false); err != nil {
		t.Fatal(err)
	}
	// Alice got SELECT without the option: she may read but not grant.
	if !s.HasSelect("alice", "EMPLOYEE") {
		t.Fatal("grant did not take")
	}
	if err := s.GrantSelect("alice", "bob", "EMPLOYEE", false); err == nil {
		t.Fatal("grant option not enforced")
	}
	if err := s.GrantSelect("dba", "carol", "NOPE", false); err == nil {
		t.Fatal("grant on unknown object accepted")
	}
}

func TestRecursiveRevocation(t *testing.T) {
	_, s := newSystem(t)
	// dba -> alice (option) -> bob (option) -> carol.
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.GrantSelect("dba", "alice", "EMPLOYEE", true))
	must(s.GrantSelect("alice", "bob", "EMPLOYEE", true))
	must(s.GrantSelect("bob", "carol", "EMPLOYEE", false))
	if !s.HasSelect("carol", "EMPLOYEE") {
		t.Fatal("chain did not reach carol")
	}
	removed := s.RevokeSelect("dba", "alice", "EMPLOYEE")
	if removed != 3 {
		t.Fatalf("revocation cascaded over %d grants, want 3", removed)
	}
	for _, u := range []string{"alice", "bob", "carol"} {
		if s.HasSelect(u, "EMPLOYEE") {
			t.Fatalf("%s retains SELECT after recursive revoke", u)
		}
	}
}

func TestRevocationKeepsIndependentSupport(t *testing.T) {
	_, s := newSystem(t)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	// bob is supported both through alice and directly by the dba, with
	// the direct grant EARLIER than alice's.
	must(s.GrantSelect("dba", "bob", "EMPLOYEE", true))
	must(s.GrantSelect("dba", "alice", "EMPLOYEE", true))
	must(s.GrantSelect("alice", "bob", "EMPLOYEE", true))
	must(s.GrantSelect("bob", "carol", "EMPLOYEE", false))
	s.RevokeSelect("dba", "alice", "EMPLOYEE")
	if !s.HasSelect("bob", "EMPLOYEE") || !s.HasSelect("carol", "EMPLOYEE") {
		t.Fatal("independently supported grants must survive")
	}
	if len(s.Grants()) != 2 {
		t.Fatalf("grants left: %v", s.Grants())
	}
}

func TestTimestampSemantics(t *testing.T) {
	_, s := newSystem(t)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	// bob grants to carol at t3 supported only by alice's grant at t2;
	// the dba's direct grant to bob arrives LATER (t4). Revoking alice
	// kills carol's grant: bob had no option before t3 anymore.
	must(s.GrantSelect("dba", "alice", "EMPLOYEE", true))  // t1
	must(s.GrantSelect("alice", "bob", "EMPLOYEE", true))  // t2
	must(s.GrantSelect("bob", "carol", "EMPLOYEE", false)) // t3
	must(s.GrantSelect("dba", "bob", "EMPLOYEE", true))    // t4
	s.RevokeSelect("dba", "alice", "EMPLOYEE")
	if s.HasSelect("carol", "EMPLOYEE") {
		t.Fatal("Griffiths–Wade timestamps violated: carol's grant predates bob's remaining support")
	}
	if !s.HasSelect("bob", "EMPLOYEE") {
		t.Fatal("bob's direct grant must survive")
	}
}

func TestViewsAsAccessWindows(t *testing.T) {
	f, s := newSystem(t)
	elp := f.Store.View("ELP").Def
	if err := s.DefineView("dba", elp); err != nil {
		t.Fatal(err)
	}
	if err := s.GrantSelect("dba", "klein", "ELP", false); err != nil {
		t.Fatal(err)
	}
	// Klein may query the view…
	rel, err := s.Query("klein", workload.MustQuery(`retrieve (ELP.NAME) where ELP.BUDGET >= 400000`))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() == 0 {
		t.Fatal("view query returned nothing")
	}
	// …but not the base relations, even inside the view's bounds — the
	// §1 criticism.
	_, err = s.Query("klein", workload.MustQuery(workload.Example2Query))
	if err == nil {
		t.Fatal("base-relation query within the view's permissions must be denied")
	}
}

func TestDefineViewChecksPrivileges(t *testing.T) {
	f, s := newSystem(t)
	sae := f.Store.View("SAE").Def
	if err := s.DefineView("alice", sae); err == nil {
		t.Fatal("view definition without SELECT on the base accepted")
	}
	if err := s.GrantSelect("dba", "alice", "EMPLOYEE", false); err != nil {
		t.Fatal(err)
	}
	if err := s.DefineView("alice", sae); err != nil {
		t.Fatal(err)
	}
	if err := s.DefineView("alice", sae); err == nil {
		t.Fatal("duplicate view name accepted")
	}
	// The definer owns the view and may grant it.
	if err := s.GrantSelect("alice", "bob", "SAE", false); err != nil {
		t.Fatal(err)
	}
	rel, err := s.Query("bob", workload.MustQuery(`retrieve (SAE.NAME, SAE.SALARY)`))
	if err != nil || rel.Len() != 3 {
		t.Fatalf("bob's view query: %v, %v", rel, err)
	}
}

func TestViewWithDuplicateColumnsRenamed(t *testing.T) {
	f, s := newSystem(t)
	est := f.Store.View("EST").Def
	if err := s.DefineView("dba", est); err != nil {
		t.Fatal(err)
	}
	if err := s.GrantSelect("dba", "u", "EST", false); err != nil {
		t.Fatal(err)
	}
	rel, err := s.Query("u", workload.MustQuery(`retrieve (EST.NAME_1, EST.NAME_2)`))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() == 0 {
		t.Fatal("renamed view columns unqueryable")
	}
}

func TestQueryUnknownObject(t *testing.T) {
	_, s := newSystem(t)
	if _, err := s.Query("dba", workload.MustQuery(`retrieve (NOPE.X)`)); err == nil {
		t.Fatal("unknown object accepted")
	}
}
