// Package engine implements the database front-end sketched in the
// paper's §6: a catalog of relation schemes and instances, the
// authorization store, and statement execution. Administrators define
// relations, data, views, and permits; users submit retrieve statements
// and receive a derived relation "whose structure corresponds to the
// request but whose tuples include only permitted values, and a set of
// inferred permit statements describing the portion delivered". The
// meta-relations stay completely transparent.
//
// The engine also carries the §6 extension to update permissions: a
// non-administrator may insert into or delete from a base relation only
// within a permitted view that covers the relation entirely.
package engine

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"authdb/internal/algebra"
	"authdb/internal/core"
	"authdb/internal/cview"
	"authdb/internal/guard"
	"authdb/internal/metrics"
	"authdb/internal/parser"
	"authdb/internal/relation"
	"authdb/internal/storage"
	"authdb/internal/value"
	"authdb/internal/wal"
)

// Engine is a thread-safe database instance with view-based authorization.
//
// Concurrency model (MVCC, DESIGN.md §14): the database state lives in
// immutable versions behind the atomic head pointer. Readers pin the
// head once per statement and never take e.mu; writers serialize on
// e.mu, mutate the writer-side state (vrels/wsch/wstore) copy-on-write,
// and publish the successor version with one pointer swap.
type Engine struct {
	// mu serializes writers (statements, checkpoints, epoch changes,
	// snapshot resets). Retrievals do not take it in any mode — they
	// read the pinned head version.
	mu sync.RWMutex
	// head is the current database version; see version.go.
	head atomic.Pointer[dbVersion]
	// Writer state, guarded by e.mu: the versioned relations whose heads
	// the next publish will capture, and the current schema and
	// authorization store (replaced copy-on-write by definition changes,
	// shared with published versions otherwise).
	wsch   *relation.DBSchema
	vrels  map[string]*relation.Versioned
	wstore *core.Store
	verSeq uint64

	opt core.Options
	// masks caches compiled meta-side plans per (user, query); entries
	// are invalidated by view and permit changes via the store's
	// generation counters, never by data changes. The pointer is atomic
	// so lock-free readers can pick the cache up alongside their pinned
	// version (nil = disabled); the generation stamps stay coherent
	// across versions because the counters are monotone along the
	// store's clone lineage.
	masks atomic.Pointer[core.MaskCache]
	// closures holds the materialized mask closure: resident
	// per-(user, query) results (answer, masked relation, row bitmaps)
	// validated lazily at lookup time against the definition generations
	// and the pinned relation revisions, so the commit path never
	// touches it. Same atomic-pointer discipline as masks (nil =
	// disabled); see core.Closure for the coherence argument.
	closures atomic.Pointer[core.Closure]
	// dur is the crash-safe persistence attachment (nil for in-memory
	// engines); see durable.go.
	dur *durable
	// pstore is the paged storage backend (nil on the memory backend):
	// B+Trees over a buffer-cached page file, mirrored write-through by
	// every mutating statement and flushed incrementally at checkpoints.
	// Attached at open, constant afterwards; its internal state is
	// guarded by e.mu on the write side. See paged.go and DESIGN.md §16.
	pstore     *storage.Store
	storageCfg StorageConfig
	// dirLock holds the exclusive flock on the durable directory so a
	// second live engine cannot rotate generations underneath this one;
	// see dirlock.go. Released in Close.
	dirLock *os.File
	// met collects the engine's operational metrics (requests by kind,
	// execution latency, masked cells, guard trips, WAL appends); the
	// network server shares it and adds its own series. See observe.go.
	met *metrics.Registry

	// lsn is the log sequence number: the count of mutating statements
	// applied (and staged for the WAL) over the engine's entire history,
	// surviving checkpoints and restarts via the snapshot's LSN file.
	// durableLSN trails it by the commits not yet fsynced; snapGen
	// mirrors the committed snapshot generation. See commit.go.
	lsn        atomic.Uint64
	durableLSN atomic.Uint64
	snapGen    atomic.Uint64
	// snapBase is the LSN the committed snapshot embodies; the WAL of
	// the current generation holds statements snapBase+1..durableLSN.
	snapBase atomic.Uint64

	// Fencing epochs (epoch.go): epoch mirrors the last entry of
	// epochHist for lock-free reads (batch stamping, metrics); epochHist
	// is guarded by e.mu. roleReadOnly fences every non-applier session's
	// writes when the node is (or was demoted to) a replica.
	epoch        atomic.Uint64
	epochHist    []EpochEntry
	roleReadOnly atomic.Bool
	// originEpochWrites counts locally originated (non-applier) mutations
	// per epoch; the chaos harness's dual-primary check reads it.
	originMu          sync.Mutex
	originEpochWrites map[uint64]uint64

	// Group-commit machinery (commit.go): staged records awaiting one
	// shared fsync, the flusher that writes them, and the WAL handle
	// mirror the flusher appends through without holding e.mu.
	commitMu    sync.Mutex
	commitCond  *sync.Cond
	commitQ     []pendingCommit
	commitWake  chan struct{}
	groupOn     bool
	flusherStop chan struct{}
	flusherDone chan struct{}
	brokenErr   error // set at the first journaling failure; guarded by commitMu

	walMu sync.Mutex
	walH  *wal.Log

	// Commit feed (commit.go): followers subscribing to durably
	// journaled statements for replication.
	pubMu sync.Mutex
	subs  map[*CommitSub]struct{}
}

// New creates an empty engine with the given authorization options.
func New(opt core.Options) *Engine {
	sch := relation.NewDBSchema()
	e := &Engine{
		wsch:       sch,
		vrels:      make(map[string]*relation.Versioned),
		opt:        opt,
		met:        metrics.NewRegistry(),
		commitWake: make(chan struct{}, 1),
		subs:       make(map[*CommitSub]struct{}),
		epochHist:  []EpochEntry{{Epoch: 1, StartLSN: 0}},
	}
	e.wstore = core.NewStore(sch)
	e.masks.Store(core.NewMaskCache(0))
	if opt.MaskClosure {
		e.closures.Store(core.NewClosure(0))
	}
	e.epoch.Store(1)
	e.commitCond = sync.NewCond(&e.commitMu)
	e.publishLocked() // version 1: the empty database
	e.registerMetrics()
	return e
}

// MaskCacheStats reports the mask cache's hit and miss counts and size.
// Lock-free, like the readers that feed the cache.
func (e *Engine) MaskCacheStats() (hits, misses uint64, size int) {
	return e.masks.Load().Stats()
}

// SetMaskCacheEnabled enables or disables the per-user mask cache; the
// benchmark harness disables it to measure the recompute-every-time
// baseline. Disabling discards the current cache contents.
func (e *Engine) SetMaskCacheEnabled(on bool) {
	if on {
		if e.masks.Load() == nil {
			e.masks.Store(core.NewMaskCache(0))
		}
	} else {
		e.masks.Store(nil)
	}
}

// MaskClosureStats reports the materialized mask closure's counters
// (all zero when disabled). Lock-free pickup, like the readers.
func (e *Engine) MaskClosureStats() core.ClosureStats {
	return e.closures.Load().Stats()
}

// SetMaskClosureEnabled enables or disables the materialized mask
// closure; the benchmark harness disables it to measure the
// per-retrieve baseline. Disabling discards the resident entries.
func (e *Engine) SetMaskClosureEnabled(on bool) {
	if on {
		if e.closures.Load() == nil {
			e.closures.Store(core.NewClosure(0))
		}
	} else {
		e.closures.Store(nil)
	}
}

// Store exposes the authorization store of the current version (admin
// surface). The returned store is a read-only snapshot.
func (e *Engine) Store() *core.Store { return e.head.Load().store }

// Schema exposes the database scheme of the current version. The
// returned scheme is a read-only snapshot.
func (e *Engine) Schema() *relation.DBSchema { return e.head.Load().sch }

// Options returns the engine's authorization options.
func (e *Engine) Options() core.Options { return e.opt }

// Relation returns a defensive snapshot of a base relation (admin
// surface).
func (e *Engine) Relation(name string) (*relation.Relation, error) {
	r, err := e.head.Load().source(name)
	if err != nil {
		return nil, err
	}
	return r.Clone(), nil
}

// Result is what a session's statement execution hands back.
type Result struct {
	// Text carries human-readable output for statements that produce no
	// relation (DDL acknowledgements, show output).
	Text string
	// Relation is the delivered (possibly masked) relation of a
	// retrieve, nil otherwise.
	Relation *relation.Relation
	// Permits accompanies a partially delivered answer.
	Permits []core.PermitStatement
	// Decision exposes the full authorization outcome of a retrieve.
	Decision *core.Decision
	// AtLSN is the log position of the database version the statement
	// read: a retrieve's answer is computed against exactly the state
	// after statement AtLSN, however many commits landed while it ran.
	// Zero for statements that pin no version.
	AtLSN uint64
}

// Session executes statements on behalf of one user. Admin sessions
// bypass authorization; user sessions are masked and restricted. A
// session is not safe for concurrent use; open one session per
// goroutine (sessions are cheap, the engine underneath is shared and
// thread-safe).
type Session struct {
	eng    *Engine
	user   string
	admin  bool
	limits guard.Limits
	// readOnly rejects mutating statements with ErrReadOnly; the network
	// server sets it on every session of a replica so writes are
	// answered with the READ_ONLY code naming the primary.
	readOnly bool
	// asyncCommit makes mutating statements return as soon as they are
	// applied and staged for the WAL, without waiting for the shared
	// fsync; the replication applier uses it to batch a whole REPL_BATCH
	// into one sync (it calls Engine.WaitDurable before acknowledging).
	asyncCommit bool
	// applier marks the session as a replication applier: it bypasses
	// the engine's role fence (a demoted node must still apply the new
	// primary's stream) and its writes are not counted as locally
	// originated by the dual-primary check.
	applier bool
	// pendingWait is the group-commit waiter of the statement being
	// executed, set by logStmt and consumed by ExecStmtContext after the
	// engine lock is released.
	pendingWait func() error
	// pinned is the snapshot a `\begin snapshot` session reads across
	// statements (nil = every statement pins the current head). The
	// session's own successful mutations re-pin to the new head so a
	// snapshot session always reads its writes.
	pinned *dbVersion
}

// NewSession opens a session for user; admin sessions may define schema,
// views, and permits, and read everything. Sessions start with
// guard.DefaultLimits; see SetLimits.
func (e *Engine) NewSession(user string, admin bool) *Session {
	return &Session{eng: e, user: user, admin: admin, limits: guard.DefaultLimits()}
}

// User returns the session's user name.
func (s *Session) User() string { return s.user }

// SetLimits replaces the session's per-statement resource limits. Zero
// fields are unlimited.
func (s *Session) SetLimits(l guard.Limits) { s.limits = l }

// SetReadOnly makes the session reject mutating statements with
// ErrReadOnly (retrievals, explains, and shows still work). Replica
// servers mark every connection's session read-only.
func (s *Session) SetReadOnly(on bool) { s.readOnly = on }

// SetAsyncCommit makes mutating statements return once applied and
// staged, without waiting for WAL durability; pair with
// Engine.WaitDurable to make a batch durable with one sync.
func (s *Session) SetAsyncCommit(on bool) { s.asyncCommit = on }

// SetApplier marks the session as a replication applier: exempt from
// the engine's role fence (SetRoleReadOnly) and from the origin-write
// accounting — its statements originate on the primary, not here.
func (s *Session) SetApplier(on bool) { s.applier = on }

// Limits returns the session's per-statement resource limits.
func (s *Session) Limits() guard.Limits { return s.limits }

// Exec parses and executes one statement.
func (s *Session) Exec(stmt string) (*Result, error) {
	return s.ExecContext(context.Background(), stmt)
}

// ExecContext parses and executes one statement under ctx: cancellation
// and deadline are honored at tuple-batch granularity and surface as
// guard.ErrCanceled.
func (s *Session) ExecContext(ctx context.Context, stmt string) (*Result, error) {
	p, err := parser.Parse(stmt)
	if err != nil {
		return nil, err
	}
	return s.ExecStmtContext(ctx, p)
}

// ExecScript executes a semicolon-separated script, stopping at the first
// error and returning the results so far.
func (s *Session) ExecScript(script string) ([]*Result, error) {
	return s.ExecScriptContext(context.Background(), script)
}

// ExecScriptContext is ExecScript under ctx; execution errors carry the
// source line of the failing statement.
func (s *Session) ExecScriptContext(ctx context.Context, script string) ([]*Result, error) {
	stmts, err := parser.ParseProgramPos(script)
	if err != nil {
		return nil, err
	}
	var out []*Result
	for _, sp := range stmts {
		r, err := s.ExecStmtContext(ctx, sp.Stmt)
		if err != nil {
			return out, fmt.Errorf("line %d: %w", sp.Line, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// ExecStmt executes a parsed statement.
func (s *Session) ExecStmt(p parser.Stmt) (*Result, error) {
	return s.ExecStmtContext(context.Background(), p)
}

// ExecStmtContext executes a parsed statement under ctx and the
// session's limits. A panic anywhere in the execution machinery is
// recovered and returned as an error (wrapping ErrInternal): one
// poisoned statement must not take down a process serving other
// sessions. Every execution is recorded in the engine's metrics.
func (s *Session) ExecStmtContext(ctx context.Context, p parser.Stmt) (res *Result, err error) {
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("%w executing statement: %v", ErrInternal, r)
		}
		s.eng.observeExec(stmtKind(p), time.Since(start), res, err)
	}()
	if ctx != nil && ctx.Err() != nil {
		return nil, fmt.Errorf("%w: %v", guard.ErrCanceled, ctx.Err())
	}
	if (s.readOnly || (!s.applier && s.eng.roleReadOnly.Load())) && Mutating(p) {
		return nil, fmt.Errorf("%w: %s is a write", ErrReadOnly, stmtKind(p))
	}
	res, err = s.execStmt(ctx, p)
	// The handler released the engine lock; wait here for the staged WAL
	// record to become durable (group commit: many sessions share one
	// fsync). Async-commit sessions skip the wait and sync in batches.
	if w := s.pendingWait; w != nil {
		s.pendingWait = nil
		if err == nil && !s.asyncCommit {
			if cerr := w(); cerr != nil {
				res, err = nil, cerr
			}
		}
	}
	// A snapshot session reads its own writes: a successful mutation
	// re-pins to the head the statement published (or a later one — the
	// write is included either way).
	if err == nil && s.pinned != nil && Mutating(p) {
		s.pinned = s.eng.headVersion()
	}
	return res, err
}

// execStmt routes one parsed statement to its handler.
func (s *Session) execStmt(ctx context.Context, p parser.Stmt) (*Result, error) {
	switch p := p.(type) {
	case parser.CreateRelation:
		return s.createRelation(p)
	case parser.Insert:
		return s.insert(p)
	case parser.Delete:
		return s.delete(p)
	case parser.ViewStmt:
		return s.defineView(p)
	case parser.DropView:
		return s.dropView(p)
	case parser.Permit:
		return s.permit(p)
	case parser.Revoke:
		return s.revoke(p)
	case parser.Retrieve:
		if len(p.Aggs) > 0 {
			return s.retrieveAgg(ctx, p)
		}
		return s.RetrieveContext(ctx, p.Def)
	case parser.Explain:
		return s.explain(ctx, p.Def)
	case parser.Show:
		return s.show(p)
	default:
		return nil, fmt.Errorf("unsupported statement %T", p)
	}
}

func (s *Session) requireAdmin(what string) error {
	if !s.admin {
		return fmt.Errorf("%w: %s requires an administrator session", ErrNotAuthorized, what)
	}
	return nil
}

func (s *Session) createRelation(p parser.CreateRelation) (*Result, error) {
	if err := s.requireAdmin("relation"); err != nil {
		return nil, err
	}
	rs, err := relation.NewSchema(p.Name, p.Attrs, p.Key...)
	if err != nil {
		return nil, err
	}
	s.eng.mu.Lock()
	defer s.eng.mu.Unlock()
	if err := s.eng.durCheck(); err != nil {
		return nil, err
	}
	// Copy-on-write: extend a clone of the scheme and re-bind the store
	// to it, so versions pinned before this statement keep the scheme
	// (and store) without the new relation.
	nsch := s.eng.wsch.Clone()
	if err := nsch.Add(rs); err != nil {
		return nil, err
	}
	s.eng.wsch = nsch
	s.eng.vrels[p.Name] = relation.NewVersioned(rs.Attrs)
	s.eng.wstore = s.eng.wstore.Clone(nsch)
	err = s.logStmt(p)
	s.eng.publishLocked()
	if err != nil {
		return nil, err
	}
	return &Result{Text: "defined relation " + rs.String()}, nil
}

func (s *Session) defineView(p parser.ViewStmt) (*Result, error) {
	if err := s.requireAdmin("view"); err != nil {
		return nil, err
	}
	s.eng.mu.Lock()
	defer s.eng.mu.Unlock()
	if err := s.eng.durCheck(); err != nil {
		return nil, err
	}
	// Definition changes go through a store clone so pinned readers keep
	// a stable meta-database; a failed definition discards the clone.
	ns := s.eng.wstore.Clone(s.eng.wsch)
	if err := ns.DefineView(p.Def); err != nil {
		return nil, err
	}
	s.eng.wstore = ns
	err := s.logStmt(p)
	s.eng.publishLocked()
	if err != nil {
		return nil, err
	}
	return &Result{Text: "defined view " + p.Def.Name}, nil
}

func (s *Session) dropView(p parser.DropView) (*Result, error) {
	if err := s.requireAdmin("drop view"); err != nil {
		return nil, err
	}
	s.eng.mu.Lock()
	defer s.eng.mu.Unlock()
	if err := s.eng.durCheck(); err != nil {
		return nil, err
	}
	ns := s.eng.wstore.Clone(s.eng.wsch)
	if !ns.DropView(p.Name) {
		return nil, fmt.Errorf("unknown view %s", p.Name)
	}
	s.eng.wstore = ns
	err := s.logStmt(p)
	s.eng.publishLocked()
	if err != nil {
		return nil, err
	}
	return &Result{Text: "dropped view " + p.Name}, nil
}

func (s *Session) permit(p parser.Permit) (*Result, error) {
	if err := s.requireAdmin("permit"); err != nil {
		return nil, err
	}
	s.eng.mu.Lock()
	defer s.eng.mu.Unlock()
	if err := s.eng.durCheck(); err != nil {
		return nil, err
	}
	ns := s.eng.wstore.Clone(s.eng.wsch)
	if err := ns.Permit(p.View, p.User); err != nil {
		return nil, err
	}
	s.eng.wstore = ns
	err := s.logStmt(p)
	s.eng.publishLocked()
	if err != nil {
		return nil, err
	}
	return &Result{Text: fmt.Sprintf("permitted %s to %s", p.View, p.User)}, nil
}

func (s *Session) revoke(p parser.Revoke) (*Result, error) {
	if err := s.requireAdmin("revoke"); err != nil {
		return nil, err
	}
	s.eng.mu.Lock()
	defer s.eng.mu.Unlock()
	if err := s.eng.durCheck(); err != nil {
		return nil, err
	}
	ns := s.eng.wstore.Clone(s.eng.wsch)
	if !ns.Revoke(p.View, p.User) {
		return nil, fmt.Errorf("no permit of %s to %s", p.View, p.User)
	}
	s.eng.wstore = ns
	err := s.logStmt(p)
	s.eng.publishLocked()
	if err != nil {
		return nil, err
	}
	return &Result{Text: fmt.Sprintf("revoked %s from %s", p.View, p.User)}, nil
}

// Retrieve answers a query definition under the session's authority.
// Admin sessions receive the unmasked answer.
func (s *Session) Retrieve(def *cview.Def) (*Result, error) {
	return s.RetrieveContext(context.Background(), def)
}

// RetrieveContext is Retrieve under ctx and the session's limits: a
// runaway query fails with guard.ErrBudgetExceeded, a canceled or timed
// out one with guard.ErrCanceled, and the engine keeps serving other
// sessions.
//
// The statement pins the head version once and takes no engine lock:
// however long the evaluation runs, and however many commits land
// meanwhile, the answer — and the mask it was filtered through — is a
// pure function of that one version.
func (s *Session) RetrieveContext(ctx context.Context, def *cview.Def) (*Result, error) {
	g := guard.New(ctx, s.limits)
	defer g.Close()
	v := s.readVersion()
	if s.admin {
		an, err := cview.Analyze(def, v.sch)
		if err != nil {
			return nil, err
		}
		ans, err := algebra.EvalOptimizedGuarded(an.PSJ, v.source, g)
		if err != nil {
			return nil, err
		}
		if err := g.Result(ans.Len()); err != nil {
			return nil, err
		}
		return &Result{Relation: ans, AtLSN: v.lsn}, nil
	}
	auth := core.NewAuthorizer(v.store, v.source, s.eng.opt)
	auth.Guard = g
	auth.Cache = s.eng.masks.Load()
	auth.Closure = s.eng.closures.Load()
	d, err := auth.Retrieve(s.user, def)
	if err != nil {
		return nil, err
	}
	if err := g.Result(d.Masked.Len()); err != nil {
		return nil, err
	}
	return &Result{Relation: d.Masked, Permits: d.Permits, Decision: d, AtLSN: v.lsn}, nil
}

// Certify runs the integrity instance of the machinery (§1's
// generalization): views tagged with the quality pseudo-principal define
// the certified portions; the full answer is returned with certification
// statements, nothing masked. Admin surface.
func (e *Engine) Certify(quality, query string) (*core.Certification, error) {
	p, err := parser.Parse(query)
	if err != nil {
		return nil, err
	}
	r, ok := p.(parser.Retrieve)
	if !ok || len(r.Aggs) > 0 {
		return nil, fmt.Errorf("certify expects a plain retrieve statement")
	}
	v := e.headVersion()
	auth := core.NewAuthorizer(v.store, v.source, e.opt)
	return auth.Certify(quality, r.Def)
}

// explain reports the dual pipeline of §5 for a query: the instantiated
// meta-relations, each product/selection/projection phase, the final mask,
// and the outcome. User sessions explain under their own permissions;
// admin sessions must name a user via "explain" being unavailable — they
// see everything anyway, so explain runs with the session user either way.
func (s *Session) explain(ctx context.Context, def *cview.Def) (*Result, error) {
	g := guard.New(ctx, s.limits)
	defer g.Close()
	v := s.readVersion()
	opt := s.eng.opt
	opt.CollectIntermediates = true
	auth := core.NewAuthorizer(v.store, v.source, opt)
	auth.Guard = g
	auth.Trace = &algebra.Trace{}
	d, err := auth.Retrieve(s.user, def)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "plan: %s\n", d.PSJ)
	fmt.Fprintf(&b, "instantiated views: %s\n\n", strings.Join(d.Views, ", "))
	for _, snap := range d.Intermediates {
		snap.Meta.Render(&b, "after "+snap.Phase+":", d.Inst)
		fmt.Fprintln(&b)
	}
	maskRel := &core.MetaRel{Attrs: d.Mask.Attrs, Tuples: d.Mask.Tuples}
	maskRel.Render(&b, "mask A':", d.Inst)
	fmt.Fprintln(&b)
	switch {
	case d.FullyAuthorized:
		fmt.Fprintln(&b, "outcome: the entire answer is delivered")
	case d.Denied:
		fmt.Fprintln(&b, "outcome: nothing is delivered")
	default:
		fmt.Fprintf(&b, "outcome: partial (%d of %d cells)\n", d.Stats.RevealedCells, d.Stats.Cells)
		for _, p := range d.Permits {
			fmt.Fprintln(&b, p.String())
		}
	}
	if lines := auth.Trace.Lines(); len(lines) > 0 {
		fmt.Fprintln(&b, "\naccess paths:")
		for _, l := range lines {
			fmt.Fprintln(&b, "  "+l)
		}
	}
	// Explain itself always runs the unfused plan (the rendered phases
	// describe the full answer); report what retrieval would do.
	switch {
	case len(d.Pushdown) == 0 || d.FullyAuthorized:
		fmt.Fprintln(&b, "mask pushdown: none")
	case s.eng.opt.MaskPushdown:
		fmt.Fprintf(&b, "mask pushdown: %s (applied on retrieve)\n", atomsString(d.Pushdown))
	default:
		fmt.Fprintf(&b, "mask pushdown: %s (available, disabled)\n", atomsString(d.Pushdown))
	}
	return &Result{Text: strings.TrimRight(b.String(), "\n"), Decision: d, AtLSN: v.lsn}, nil
}

// atomsString renders pushdown atoms as a conjunction.
func atomsString(atoms []algebra.Atom) string {
	parts := make([]string, len(atoms))
	for i, a := range atoms {
		parts[i] = a.String()
	}
	return strings.Join(parts, " and ")
}

func (s *Session) insert(p parser.Insert) (*Result, error) {
	s.eng.mu.Lock()
	defer s.eng.mu.Unlock()
	if err := s.eng.durCheck(); err != nil {
		return nil, err
	}
	vr, ok := s.eng.vrels[p.Rel]
	if !ok {
		return nil, fmt.Errorf("unknown relation %s", p.Rel)
	}
	t := relation.Tuple(p.Values)
	if len(t) != vr.Arity() {
		return nil, fmt.Errorf("relation %s expects %d values, got %d", p.Rel, vr.Arity(), len(t))
	}
	if !s.admin {
		if err := s.authorizeUpdate(p.Rel, t); err != nil {
			return nil, err
		}
	}
	added, err := vr.Insert(t)
	if err != nil {
		return nil, err
	}
	if !added {
		return &Result{Text: "duplicate tuple ignored"}, nil
	}
	err = s.logStmt(p)
	s.eng.publishLocked()
	if err != nil {
		return nil, err
	}
	return &Result{Text: "inserted 1 tuple into " + p.Rel}, nil
}

func (s *Session) delete(p parser.Delete) (*Result, error) {
	s.eng.mu.Lock()
	defer s.eng.mu.Unlock()
	if err := s.eng.durCheck(); err != nil {
		return nil, err
	}
	vr, ok := s.eng.vrels[p.Rel]
	if !ok {
		return nil, fmt.Errorf("unknown relation %s", p.Rel)
	}
	pred, err := deletePredicate(s.eng.wsch, p)
	if err != nil {
		return nil, err
	}
	if !s.admin {
		// Every tuple about to disappear must be within the user's
		// update authority.
		for _, t := range vr.Head().Tuples() {
			if pred(t) {
				if err := s.authorizeUpdate(p.Rel, t); err != nil {
					return nil, err
				}
			}
		}
	}
	n := vr.Delete(pred)
	if n > 0 {
		err := s.logStmt(p)
		s.eng.publishLocked()
		if err != nil {
			return nil, err
		}
		// Deletes cannot be repaired by the closure's append-window
		// refresh; eagerly drop exactly the entries whose masked
		// relations include this relation instead of letting every
		// entry's data stamp go stale.
		s.eng.closures.Load().InvalidateRelation(p.Rel)
	}
	return &Result{Text: fmt.Sprintf("deleted %d tuple(s) from %s", n, p.Rel)}, nil
}

// deletePredicate compiles the where clause of a delete against the base
// relation's bare attributes.
func deletePredicate(sch *relation.DBSchema, p parser.Delete) (func(relation.Tuple) bool, error) {
	rs := sch.Lookup(p.Rel)
	if rs == nil {
		return nil, fmt.Errorf("unknown relation %s", p.Rel)
	}
	var atoms []algebra.Atom
	for _, c := range p.Where {
		if relation.BaseOfAlias(c.L.Alias) != p.Rel {
			return nil, fmt.Errorf("delete from %s cannot reference %s", p.Rel, c.L.Alias)
		}
		a := algebra.Atom{L: c.L.Attr, Op: c.Op}
		if c.R.IsCol {
			if relation.BaseOfAlias(c.R.Col.Alias) != p.Rel {
				return nil, fmt.Errorf("delete from %s cannot reference %s", p.Rel, c.R.Col.Alias)
			}
			a.R = algebra.AttrOp(c.R.Col.Attr)
		} else {
			a.R = algebra.ConstOp(c.R.Const)
		}
		atoms = append(atoms, a)
	}
	return algebra.CompilePred(rs.Attrs, atoms)
}

// authorizeUpdate implements the §6 update-permission extension: the tuple
// must fall entirely within some permitted view — a view that covers every
// attribute of the relation (all cells starred) with a single membership
// tuple over it, whose selection the tuple satisfies. Join conditions to
// other relations are checked against the current instance. Runs inside
// the writer's critical section, against the writer state.
func (s *Session) authorizeUpdate(rel string, t relation.Tuple) error {
	store := s.eng.wstore
	for _, vn := range store.ViewsFor(s.user) {
		for _, v := range store.Branches(vn) {
			for ti := range v.Tuples {
				if v.Tuples[ti].Rel != rel {
					continue
				}
				if s.updateCovered(v, ti, t) {
					return nil
				}
			}
		}
	}
	return fmt.Errorf("%w: user %s may not modify %s: no permitted view covers the tuple", ErrNotAuthorized, s.user, rel)
}

// updateCovered checks one membership tuple of a view against the tuple:
// all attributes starred, constants and variable intervals satisfied, and
// every join variable witnessed by the other relations' current contents.
func (s *Session) updateCovered(v *core.StoredView, ti int, t relation.Tuple) bool {
	st := v.Tuples[ti]
	binding := make(map[string]value.Value)
	for ci, c := range st.Cells {
		if !c.Star {
			return false
		}
		switch {
		case c.Const != nil:
			if !c.Const.Equal(t[ci]) {
				return false
			}
		case c.Var != "":
			if iv, ok := v.VarIv[c.Var]; ok && !iv.Contains(t[ci]) {
				return false
			}
			if prev, ok := binding[c.Var]; ok {
				if !prev.Equal(t[ci]) {
					return false
				}
			} else {
				binding[c.Var] = t[ci]
			}
		}
	}
	// Witness join variables in the other membership tuples.
	for tj := range v.Tuples {
		if tj == ti {
			continue
		}
		if !s.witness(v, tj, binding) {
			return false
		}
	}
	return len(v.VarCmps) == 0 || s.cmpsHold(v, binding)
}

// witness reports whether some current tuple of the tj-th membership
// relation satisfies its constants, intervals, and the bindings fixed so
// far (unbound variables on this tuple are ignored — they stay
// existential).
func (s *Session) witness(v *core.StoredView, tj int, binding map[string]value.Value) bool {
	st := v.Tuples[tj]
	r, err := s.eng.writerSource(st.Rel)
	if err != nil {
		return false
	}
	for _, u := range r.Tuples() {
		ok := true
		for ci, c := range st.Cells {
			switch {
			case c.Const != nil:
				if !c.Const.Equal(u[ci]) {
					ok = false
				}
			case c.Var != "":
				if iv, okIv := v.VarIv[c.Var]; okIv && !iv.Contains(u[ci]) {
					ok = false
				}
				if b, bound := binding[c.Var]; bound && !b.Equal(u[ci]) {
					ok = false
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func (s *Session) cmpsHold(v *core.StoredView, binding map[string]value.Value) bool {
	for _, c := range v.VarCmps {
		x, xok := binding[c.X]
		y, yok := binding[c.Y]
		if !xok || !yok || !c.Op.Eval(x, y) {
			return false
		}
	}
	return true
}

func (s *Session) show(p parser.Show) (*Result, error) {
	v := s.readVersion()
	var b strings.Builder
	switch p.What {
	case "relations":
		for _, n := range v.sch.Names() {
			fmt.Fprintln(&b, v.sch.Lookup(n).String())
		}
	case "views":
		for _, n := range v.store.ViewNames() {
			fmt.Fprintln(&b, v.store.ViewDef(n).String())
			fmt.Fprintln(&b)
		}
	case "view":
		def := v.store.ViewDef(p.Arg)
		if def == nil {
			return nil, fmt.Errorf("unknown view %s", p.Arg)
		}
		fmt.Fprintln(&b, def.String())
		for bi := range def.Branches() {
			if calc, err := cview.Calculus(def.Branch(bi), v.sch); err == nil {
				fmt.Fprintln(&b, calc)
			}
		}
	case "permissions":
		v.store.RenderPermission(&b)
	case "rights":
		if err := s.requireAdmin("show rights"); err != nil {
			return nil, err
		}
		if p.Arg == "" {
			return nil, fmt.Errorf("usage: show rights USER")
		}
		v.store.RenderRights(&b, p.Arg)
	case "meta":
		if err := s.requireAdmin("show meta"); err != nil {
			return nil, err
		}
		names := v.sch.Names()
		sort.Strings(names)
		for _, n := range names {
			v.store.RenderMeta(&b, n)
			fmt.Fprintln(&b)
		}
		v.store.RenderComparison(&b)
		fmt.Fprintln(&b)
		v.store.RenderPermission(&b)
	default:
		return nil, fmt.Errorf("show %s: unknown target (relations, views, view NAME, permissions, rights USER, meta)", p.What)
	}
	return &Result{Text: strings.TrimRight(b.String(), "\n"), AtLSN: v.lsn}, nil
}
