//go:build unix

package engine

import (
	"os"
	"syscall"
)

// flockExclusive takes a non-blocking exclusive flock on f. BSD flock
// attaches to the open file description, so a second open of the LOCK
// file conflicts even from within the same process — which is exactly
// the double-open the lock exists to refuse.
func flockExclusive(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}
