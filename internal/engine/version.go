// The engine's MVCC core (DESIGN.md §14). The database is a lineage of
// immutable versions; each version binds the schema, every base
// relation's revision, and the authorization store that were current
// when some mutating statement committed. Writers prepare the next
// state under the engine's statement lock and publish it with one
// atomic pointer swap; readers pin the head version at statement start
// and evaluate against it without taking the engine lock at all — a
// retrieve is masked against exactly one (meta-database, data) pair, so
// permit/revoke churn mid-query can never produce a mixed-version
// answer, and long scans never block commits.
package engine

import (
	"fmt"

	"authdb/internal/core"
	"authdb/internal/relation"
)

// dbVersion is one immutable database version: everything a statement
// reads, captured at the commit that published it. Readers must treat
// every reachable structure as frozen — relations are read through
// Tuples/Len/the index cache, the store and schema only through their
// read surface.
type dbVersion struct {
	// seq numbers versions within this engine's lifetime (not persisted;
	// restarts renumber). lsn is the log position the version embodies:
	// the state after applying statement lsn.
	seq uint64
	lsn uint64

	sch   *relation.DBSchema
	rels  map[string]*relation.Relation
	store *core.Store
}

// source resolves base relations for the evaluators against this
// version; it is the algebra.Source every pinned read uses.
func (v *dbVersion) source(name string) (*relation.Relation, error) {
	r, ok := v.rels[name]
	if !ok {
		return nil, fmt.Errorf("unknown relation %s", name)
	}
	return r, nil
}

// headVersion pins the current version: one atomic load, no lock. The
// caller keeps a consistent snapshot for as long as it holds the
// pointer; concurrent commits publish successors without disturbing it.
func (e *Engine) headVersion() *dbVersion { return e.head.Load() }

// readVersion is the version a read statement evaluates against: the
// session's pinned snapshot when a `\begin snapshot` block is open,
// else the current head.
func (s *Session) readVersion() *dbVersion {
	if s.pinned != nil {
		return s.pinned
	}
	return s.eng.headVersion()
}

// publishLocked builds the next version from the writer state and swaps
// it into the head pointer — the commit point for readers. Callers hold
// e.mu for writing (or have exclusive access during construction). The
// cost is one shallow map copy over the relation heads, O(#relations),
// independent of data size.
func (e *Engine) publishLocked() {
	e.verSeq++
	rels := make(map[string]*relation.Relation, len(e.vrels))
	for n, vr := range e.vrels {
		rels[n] = vr.Head()
	}
	e.head.Store(&dbVersion{
		seq:   e.verSeq,
		lsn:   e.lsn.Load(),
		sch:   e.wsch,
		rels:  rels,
		store: e.wstore,
	})
}

// writerSource resolves a base relation's current head for the update
// authorization checks, which run inside the writer's critical section;
// callers hold e.mu for writing.
func (e *Engine) writerSource(name string) (*relation.Relation, error) {
	vr, ok := e.vrels[name]
	if !ok {
		return nil, fmt.Errorf("unknown relation %s", name)
	}
	return vr.Head(), nil
}

// DBVersion reports the head version's sequence number and the LSN it
// embodies — the numbers the metrics gauges and the MVCC tests read.
func (e *Engine) DBVersion() (seq, lsn uint64) {
	v := e.head.Load()
	return v.seq, v.lsn
}
