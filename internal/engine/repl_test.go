package engine

// Engine-level tests of the replication surface (repl.go, commit.go):
// LSN persistence, WAL-tail vs snapshot bootstrap, group-commit
// equivalence, the commit feed's slow-subscriber policy, and the
// observability gauges. The full network protocol is exercised by
// internal/replica's end-to-end tests.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"authdb/internal/core"
)

// TestLSNPersistsAcrossReopen: the LSN counts mutating statements over
// the engine's entire history — checkpoints and reopens must continue
// the count, never restart it (a replica's resume position depends on
// it).
func TestLSNPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenDurable(dir, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := e.LSN(); got != 0 {
		t.Fatalf("fresh engine LSN = %d, want 0", got)
	}
	admin := e.NewSession("admin", true)
	for _, stmt := range durableScenario {
		if _, err := admin.Exec(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	want := uint64(len(durableScenario))
	if got := e.LSN(); got != want {
		t.Fatalf("LSN = %d, want %d", got, want)
	}
	if got := e.DurableLSN(); got != want {
		t.Fatalf("DurableLSN = %d, want %d", got, want)
	}

	// A checkpoint rotates the generation but not the count.
	gen := e.Generation()
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if e.Generation() != gen+1 {
		t.Fatalf("generation = %d after checkpoint, want %d", e.Generation(), gen+1)
	}
	if got := e.LSN(); got != want {
		t.Fatalf("LSN = %d after checkpoint, want %d", got, want)
	}
	if _, err := admin.Exec(`insert into EMPLOYEE values (Adams, clerk, 20000)`); err != nil {
		t.Fatal(err)
	}
	want++
	e.Close()

	back, err := OpenDurable(dir, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if got := back.LSN(); got != want {
		t.Fatalf("LSN = %d after reopen, want %d", got, want)
	}
	if got := back.DurableLSN(); got != want {
		t.Fatalf("DurableLSN = %d after reopen, want %d", got, want)
	}
}

// TestWALTailAndSnapshotBootstrap walks both follower bootstrap paths
// against a live engine: the WAL tail while the position is covered by
// the current generation, the snapshot fallback once a checkpoint
// rotated it away, and tail-following from the snapshot's position.
func TestWALTailAndSnapshotBootstrap(t *testing.T) {
	e1, err := OpenDurable(t.TempDir(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer e1.Close()
	admin := e1.NewSession("admin", true)
	const split = 7
	for _, stmt := range durableScenario[:split] {
		if _, err := admin.Exec(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}

	tail, ok, err := e1.WALTail(0)
	if err != nil || !ok {
		t.Fatalf("WALTail(0) = ok %v, err %v; want the full tail", ok, err)
	}
	if len(tail) != split {
		t.Fatalf("tail has %d statements, want %d", len(tail), split)
	}
	for i, c := range tail {
		if c.LSN != uint64(i+1) {
			t.Fatalf("tail[%d].LSN = %d, want %d", i, c.LSN, i+1)
		}
	}

	// After a checkpoint the WAL restarts empty; a position before the
	// snapshot base needs the snapshot.
	if err := e1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := e1.WALTail(0); ok || err != nil {
		t.Fatalf("WALTail(0) after checkpoint = ok %v, err %v; want snapshot fallback", ok, err)
	}

	files, lsn, _, err := e1.ReplSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if lsn != split {
		t.Fatalf("snapshot LSN = %d, want %d", lsn, split)
	}
	e2 := New(core.DefaultOptions())
	if err := e2.ResetFromSnapshot(files, lsn); err != nil {
		t.Fatal(err)
	}
	if e2.LSN() != lsn {
		t.Fatalf("replica LSN = %d after snapshot install, want %d", e2.LSN(), lsn)
	}
	if got, want := fingerprint(t, e2), fingerprint(t, e1); got != want {
		t.Fatalf("snapshot install diverged:\nreplica:\n%s\nprimary:\n%s", got, want)
	}

	// The tail from the snapshot's position carries the rest.
	for _, stmt := range durableScenario[split:] {
		if _, err := admin.Exec(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	tail, ok, err = e1.WALTail(lsn)
	if err != nil || !ok {
		t.Fatalf("WALTail(%d) = ok %v, err %v", lsn, ok, err)
	}
	if len(tail) != len(durableScenario)-split {
		t.Fatalf("tail has %d statements, want %d", len(tail), len(durableScenario)-split)
	}
	applier := e2.NewSession("admin", true)
	for _, c := range tail {
		if c.LSN != e2.LSN()+1 {
			t.Fatalf("tail gap: statement at LSN %d, replica at %d", c.LSN, e2.LSN())
		}
		if _, err := applier.Exec(c.Stmt); err != nil {
			t.Fatalf("applying %s: %v", c.Stmt, err)
		}
	}
	if e2.LSN() != e1.LSN() {
		t.Fatalf("replica LSN = %d, primary %d", e2.LSN(), e1.LSN())
	}
	if got, want := fingerprint(t, e2), fingerprint(t, e1); got != want {
		t.Fatalf("tail replay diverged:\nreplica:\n%s\nprimary:\n%s", got, want)
	}
}

// sortedFingerprint canonicalizes an engine fingerprint up to row
// order, for comparing states built by concurrent writers whose
// interleaving (and hence stored row order) legitimately differs.
func sortedFingerprint(t *testing.T, e *Engine) string {
	lines := strings.Split(fingerprint(t, e), "\n")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestGroupCommitEquivalence runs the same concurrent insert workload
// under serial journaling and under group commit: the final states,
// LSNs, and the states recovered by a reopen must be identical — group
// commit changes the fsync schedule, never the contents.
func TestGroupCommitEquivalence(t *testing.T) {
	const writers, perWriter = 8, 25
	run := func(group bool) (string, uint64, string) {
		dir := t.TempDir()
		e, err := OpenDurable(dir, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		admin := e.NewSession("admin", true)
		if _, err := admin.Exec(`relation WRITES (K, V) key (K)`); err != nil {
			t.Fatal(err)
		}
		e.SetGroupCommit(group)
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				sess := e.NewSession("admin", true)
				for i := 0; i < perWriter; i++ {
					stmt := fmt.Sprintf("insert into WRITES values (w%d_%d, v)", w, i)
					if _, err := sess.Exec(stmt); err != nil {
						t.Errorf("%s: %v", stmt, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		state := sortedFingerprint(t, e)
		lsn := e.LSN()
		e.Close()
		back, err := OpenDurable(dir, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		defer back.Close()
		if back.LSN() != lsn {
			t.Fatalf("group=%v: reopen LSN = %d, want %d", group, back.LSN(), lsn)
		}
		return state, lsn, sortedFingerprint(t, back)
	}

	serialState, serialLSN, serialReopen := run(false)
	groupState, groupLSN, groupReopen := run(true)
	if serialLSN != groupLSN {
		t.Fatalf("LSN differs: serial %d, group %d", serialLSN, groupLSN)
	}
	if wantLSN := uint64(1 + writers*perWriter); serialLSN != wantLSN {
		t.Fatalf("LSN = %d, want %d", serialLSN, wantLSN)
	}
	if serialState != groupState {
		t.Fatal("final states differ between serial and group commit")
	}
	if serialReopen != serialState || groupReopen != groupState {
		t.Fatal("reopened state differs from the live state")
	}
}

// TestSlowSubscriberDisconnect: a commit subscriber that stops draining
// is cut off (channel closed) instead of stalling the publisher, and
// the disconnect is counted.
func TestSlowSubscriberDisconnect(t *testing.T) {
	e, err := OpenDurable(t.TempDir(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	admin := e.NewSession("admin", true)
	if _, err := admin.Exec(`relation R (K) key (K)`); err != nil {
		t.Fatal(err)
	}

	sub := e.SubscribeCommits(1)
	defer e.UnsubscribeCommits(sub)
	for i := 0; i < 3; i++ {
		if _, err := admin.Exec(fmt.Sprintf("insert into R values (k%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Buffer 1: the first insert is buffered, the second overflows and
	// closes the channel.
	if c, live := <-sub.C(); !live || c.Stmt == "" {
		t.Fatalf("first commit = %+v, live %v; want the buffered statement", c, live)
	}
	if _, live := <-sub.C(); live {
		t.Fatal("subscriber channel still live after overflow; want disconnect")
	}
	if txt := e.Metrics().Text(); !strings.Contains(txt, "authdb_repl_slow_subscriber_disconnects_total 1") {
		t.Errorf("slow-subscriber disconnect not counted:\n%s", txt)
	}
}

// TestInMemoryCommitFeed: in-memory engines feed subscribers too (an
// in-memory primary can serve followers, which bootstrap by snapshot).
func TestInMemoryCommitFeed(t *testing.T) {
	e := New(core.DefaultOptions())
	admin := e.NewSession("admin", true)
	sub := e.SubscribeCommits(8)
	defer e.UnsubscribeCommits(sub)
	if _, err := admin.Exec(`relation R (K) key (K)`); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Exec(`insert into R values (k)`); err != nil {
		t.Fatal(err)
	}
	c := <-sub.C()
	if c.LSN != 1 || !strings.Contains(c.Stmt, "relation R") {
		t.Fatalf("first commit = %+v, want the relation statement at LSN 1", c)
	}
	c = <-sub.C()
	if c.LSN != 2 || !strings.Contains(c.Stmt, "insert into R") {
		t.Fatalf("second commit = %+v, want the insert at LSN 2", c)
	}
}

// TestReplicationGauges: the LSN, durable LSN, and snapshot generation
// ride the metrics registry for /metrics and \stats.
func TestReplicationGauges(t *testing.T) {
	e, err := OpenDurable(t.TempDir(), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	admin := e.NewSession("admin", true)
	if _, err := admin.Exec(`relation R (K) key (K)`); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Exec(`insert into R values (k)`); err != nil {
		t.Fatal(err)
	}
	txt := e.Metrics().Text()
	for _, want := range []string{
		"authdb_wal_lsn 2",
		"authdb_wal_durable_lsn 2",
		"authdb_snapshot_generation 1",
	} {
		if !strings.Contains(txt, want) {
			t.Errorf("metrics missing %q:\n%s", want, txt)
		}
	}
}
