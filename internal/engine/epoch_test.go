package engine

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"authdb/internal/core"
	"authdb/internal/faultfs"
	"authdb/internal/wal"
)

func TestEpochDefaultAndBump(t *testing.T) {
	e := New(core.DefaultOptions())
	if got := e.Epoch(); got != 1 {
		t.Fatalf("fresh engine epoch = %d, want 1", got)
	}
	admin := e.NewSession("admin", true)
	if _, err := admin.Exec(`relation R (A)`); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Exec(`insert into R values (x)`); err != nil {
		t.Fatal(err)
	}
	ep, err := e.BumpEpoch()
	if err != nil || ep != 2 {
		t.Fatalf("BumpEpoch = %d, %v, want 2, nil", ep, err)
	}
	hist := e.EpochHistory()
	if len(hist) != 2 || hist[1] != (EpochEntry{Epoch: 2, StartLSN: 2}) {
		t.Fatalf("history = %v, want [{1 0} {2 2}]", hist)
	}
}

func TestEpochPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenDurable(dir, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	admin := e.NewSession("admin", true)
	if _, err := admin.Exec(`relation R (A)`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.BumpEpoch(); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Exec(`insert into R values (x)`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.BumpEpoch(); err != nil {
		t.Fatal(err)
	}
	wantHist := e.EpochHistory()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := OpenDurable(dir, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if got := e2.Epoch(); got != 3 {
		t.Fatalf("reopened epoch = %d, want 3", got)
	}
	gotHist := e2.EpochHistory()
	if len(gotHist) != len(wantHist) {
		t.Fatalf("reopened history = %v, want %v", gotHist, wantHist)
	}
	for i := range wantHist {
		if gotHist[i] != wantHist[i] {
			t.Fatalf("reopened history = %v, want %v", gotHist, wantHist)
		}
	}
}

func TestForkLSNMultiHop(t *testing.T) {
	e := New(core.DefaultOptions())
	// Epochs 2 at LSN 10, 3 at 50, 4 at 100 (adopted wholesale, as a
	// follower would from a handshake).
	if err := e.AdoptEpochHistory([]EpochEntry{
		{Epoch: 1, StartLSN: 0}, {Epoch: 2, StartLSN: 10},
		{Epoch: 3, StartLSN: 50}, {Epoch: 4, StartLSN: 100},
	}); err != nil {
		t.Fatal(err)
	}
	// A node stuck on epoch 2 forked where epoch 3 began — not where the
	// current epoch began; anything it applied past 50 is divergent even
	// though the newest promotion happened at 100.
	cases := []struct {
		stale, fork uint64
		ok          bool
	}{
		{0, 0, true}, // epoch 0 never exists: forks at epoch 1's start
		{1, 10, true},
		{2, 50, true},
		{3, 100, true},
		{4, 0, false},
		{9, 0, false},
	}
	for _, c := range cases {
		fork, ok := e.ForkLSN(c.stale)
		if ok != c.ok || fork != c.fork {
			t.Errorf("ForkLSN(%d) = %d, %v, want %d, %v", c.stale, fork, ok, c.fork, c.ok)
		}
	}
}

func TestForkLSNStaleZeroFindsEpochOne(t *testing.T) {
	e := New(core.DefaultOptions())
	// Epoch 0 never exists; the first entry (epoch 1, LSN 0) is already
	// above it, so a malformed hello epoch of 0 forks at 0 — maximally
	// conservative.
	fork, ok := e.ForkLSN(0)
	if !ok || fork != 0 {
		t.Fatalf("ForkLSN(0) = %d, %v, want 0, true", fork, ok)
	}
}

func TestAdoptEpochHistoryRejectsRegression(t *testing.T) {
	e := New(core.DefaultOptions())
	if _, err := e.BumpEpoch(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.BumpEpoch(); err != nil {
		t.Fatal(err)
	}
	err := e.AdoptEpochHistory([]EpochEntry{{Epoch: 1, StartLSN: 0}, {Epoch: 2, StartLSN: 0}})
	if err == nil || !strings.Contains(err.Error(), "regress") {
		t.Fatalf("adopting a lower history = %v, want regression error", err)
	}
	if err := e.AdoptEpochHistory(nil); err == nil {
		t.Fatal("adopting an empty history succeeded")
	}
	if err := e.AdoptEpochHistory([]EpochEntry{{Epoch: 3, StartLSN: 5}, {Epoch: 3, StartLSN: 5}}); err == nil {
		t.Fatal("adopting a non-increasing history succeeded")
	}
}

func TestRoleReadOnlyFencesExistingSessions(t *testing.T) {
	e := New(core.DefaultOptions())
	admin := e.NewSession("admin", true)
	if _, err := admin.Exec(`relation R (A)`); err != nil {
		t.Fatal(err)
	}
	// The session predates the fence; demotion must still stop it.
	e.SetRoleReadOnly(true)
	_, err := admin.Exec(`insert into R values (x)`)
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write on role-fenced engine = %v, want ErrReadOnly", err)
	}
	// Reads keep working.
	if _, err := admin.Exec(`retrieve (R.A)`); err != nil {
		t.Fatalf("read on role-fenced engine: %v", err)
	}
	// An applier session bypasses the fence.
	ap := e.NewSession("admin", true)
	ap.SetApplier(true)
	if _, err := ap.Exec(`insert into R values (y)`); err != nil {
		t.Fatalf("applier write on role-fenced engine: %v", err)
	}
	e.SetRoleReadOnly(false)
	if _, err := admin.Exec(`insert into R values (z)`); err != nil {
		t.Fatalf("write after unfencing: %v", err)
	}
}

func TestOriginWritesByEpochExcludesApplier(t *testing.T) {
	e := New(core.DefaultOptions())
	admin := e.NewSession("admin", true)
	if _, err := admin.Exec(`relation R (A)`); err != nil {
		t.Fatal(err)
	}
	ap := e.NewSession("admin", true)
	ap.SetApplier(true)
	if _, err := ap.Exec(`insert into R values (replicated)`); err != nil {
		t.Fatal(err)
	}
	if got := e.OriginWritesByEpoch(); got[1] != 1 {
		t.Fatalf("origin writes = %v, want 1 in epoch 1 (applier excluded)", got)
	}
	if _, err := e.BumpEpoch(); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Exec(`insert into R values (local)`); err != nil {
		t.Fatal(err)
	}
	got := e.OriginWritesByEpoch()
	if got[1] != 1 || got[2] != 1 {
		t.Fatalf("origin writes = %v, want {1:1 2:1}", got)
	}
}

func TestQuarantineDiverged(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenDurable(dir, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	admin := e.NewSession("admin", true)
	stmts := []string{
		`relation R (A)`,
		`insert into R values (one)`,
		`insert into R values (two)`,
		`insert into R values (three)`,
	}
	for _, s := range stmts {
		if _, err := admin.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	// Fork after LSN 2: statements 3 and 4 are divergent.
	qdir, err := e.QuarantineDiverged(2)
	if err != nil {
		t.Fatal(err)
	}
	if qdir == "" {
		t.Fatal("no quarantine directory for a divergent suffix")
	}
	got, err := wal.ReplayAll(faultfs.OS(), filepath.Join(qdir, "DIVERGED.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !strings.Contains(got[0], "two") || !strings.Contains(got[1], "three") {
		t.Fatalf("quarantined suffix = %q, want statements 3 and 4", got)
	}
	info, err := os.ReadFile(filepath.Join(qdir, "INFO"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(info), "fork 2") || !strings.Contains(string(info), "lsn 4") {
		t.Fatalf("INFO = %q", info)
	}

	// Nothing past the fork → no quarantine.
	qdir2, err := e.QuarantineDiverged(e.LSN())
	if err != nil {
		t.Fatal(err)
	}
	if qdir2 != "" {
		t.Fatalf("quarantine with nothing past fork = %q, want none", qdir2)
	}
}

func TestQuarantineDivergedSurvivesCheckpointFold(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenDurable(dir, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	admin := e.NewSession("admin", true)
	for _, s := range []string{
		`relation R (A)`,
		`insert into R values (one)`,
		`insert into R values (two)`,
	} {
		if _, err := admin.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoint folds the WAL into the snapshot: the divergent suffix
	// can no longer be isolated as statements, so the whole state must be
	// preserved.
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	qdir, err := e.QuarantineDiverged(1)
	if err != nil {
		t.Fatal(err)
	}
	if qdir == "" {
		t.Fatal("no quarantine directory")
	}
	data, err := os.ReadFile(filepath.Join(qdir, "state", "data", "R.csv"))
	if err != nil {
		t.Fatalf("quarantined state dump missing: %v", err)
	}
	if !strings.Contains(string(data), "two") {
		t.Fatalf("state dump = %q, want the divergent tuple", data)
	}

	// A later checkpoint must not reclaim the quarantine.
	if _, err := admin.Exec(`insert into R values (three)`); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(qdir); err != nil {
		t.Fatalf("quarantine reclaimed by checkpoint: %v", err)
	}
}

func TestEpochFileRoundTrip(t *testing.T) {
	hist := []EpochEntry{{Epoch: 1, StartLSN: 0}, {Epoch: 4, StartLSN: 41}}
	got, err := parseEpochHist(renderEpochHist(hist))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != hist[0] || got[1] != hist[1] {
		t.Fatalf("round trip = %v, want %v", got, hist)
	}
	if _, err := parseEpochHist([]byte("bogus\n")); err == nil {
		t.Fatal("malformed EPOCH parsed")
	}
}
