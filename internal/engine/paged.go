// Paged-storage attachment (DESIGN.md §16). The in-memory MVCC versions
// stay the evaluation representation; when the paged backend is on, a
// storage.Store mirrors every mutating statement write-through (under
// the same critical section that journals it), and checkpoints flush
// only the store's dirty pages plus a tiny ROOT file instead of
// rewriting the whole database. A snapshot generation containing a ROOT
// file is paged; one containing schema/data CSVs is the memory layout —
// opening converts between them according to the requested backend, so
// both coexist behind one directory format and the WAL + CURRENT +
// epoch + replication protocols are byte-identical across backends.
package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"authdb/internal/core"
	"authdb/internal/faultfs"
	"authdb/internal/parser"
	"authdb/internal/relation"
	"authdb/internal/storage"
	"authdb/internal/value"
)

// Storage backend names for StorageConfig.Backend.
const (
	StorageMemory = "memory"
	StoragePaged  = "paged"
)

// DefaultCachePages is the buffer-cache budget when none is configured
// (4096 pages × 4KiB = 16MiB resident).
const DefaultCachePages = 4096

// StorageConfig selects the persistence backend for a durable engine.
type StorageConfig struct {
	// Backend is StorageMemory (whole-generation CSV snapshots, all
	// state resident) or StoragePaged (pager + B+Trees, incremental
	// checkpoints). Empty keeps an existing directory's committed
	// format and means StorageMemory for fresh directories.
	Backend string
	// CachePages bounds the paged backend's buffer cache in 4KiB pages;
	// 0 means DefaultCachePages.
	CachePages int
}

func (c StorageConfig) paged() bool { return c.Backend == StoragePaged }

func (c StorageConfig) cachePages() int {
	if c.CachePages > 0 {
		return c.CachePages
	}
	return DefaultCachePages
}

func (c StorageConfig) validate() error {
	switch c.Backend {
	case "", StorageMemory, StoragePaged:
		return nil
	}
	return fmt.Errorf("unknown storage backend %q (memory or paged)", c.Backend)
}

// StorageConfigFromEnv reads AUTHDB_STORAGE (memory|paged) and
// AUTHDB_CACHE_PAGES. The env hook lets every existing harness — crash
// sweep, replication e2e, chaos — run unchanged against the paged
// backend.
func StorageConfigFromEnv() StorageConfig {
	var cfg StorageConfig
	if v := os.Getenv("AUTHDB_STORAGE"); v != "" {
		cfg.Backend = v
	}
	if v := os.Getenv("AUTHDB_CACHE_PAGES"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			cfg.CachePages = n
		}
	}
	return cfg
}

// PageStats snapshots the paged backend's pager counters; all-zero on
// the memory backend.
func (e *Engine) PageStats() storage.Stats {
	if ps := e.pstore; ps != nil {
		return ps.Stats()
	}
	return storage.Stats{}
}

// StorageBackend reports which backend the engine runs ("memory" or
// "paged").
func (e *Engine) StorageBackend() string {
	if e.pstore != nil {
		return StoragePaged
	}
	return StorageMemory
}

// pagesPath is the shared page file next to the generation directories.
func pagesPath(dir string) string { return filepath.Join(dir, storage.PagesFileName) }

// pageApply mirrors one applied mutating statement into the page store.
// Callers hold e.mu and run before the statement is staged for the WAL,
// so store order equals log order. While a rebuild is pending (backend
// conversion, snapshot adoption) the store's trees are about to be
// repopulated from the in-memory head wholesale, so write-through is
// skipped. Errors are fail-stop: the caller marks the engine broken,
// exactly like a WAL append failure, so a drifted store can never be
// committed by a later checkpoint (every checkpoint caller is
// durCheck-guarded).
func (e *Engine) pageApply(p parser.Stmt) error {
	ps := e.pstore
	if ps == nil || ps.NeedsRebuild() {
		return nil
	}
	text, err := parser.Render(p)
	if err != nil {
		return err
	}
	switch p := p.(type) {
	case parser.CreateRelation:
		return ps.CreateRelation(p.Name, len(p.Attrs), text)
	case parser.Insert:
		return ps.InsertTuple(p.Rel, p.Values)
	case parser.Delete:
		// The in-memory relation was already mutated but the store was
		// not, so re-deriving the predicate selects the same victims.
		pred, err := deletePredicate(e.wsch, p)
		if err != nil {
			return err
		}
		attr, val, hinted := deleteEqHint(e.wsch, p)
		if !hinted {
			attr = -1
		}
		_, err = ps.DeleteWhere(p.Rel, func(vs []value.Value) bool {
			return pred(relation.Tuple(vs))
		}, attr, val)
		return err
	case parser.ViewStmt:
		return ps.PutView(p.Def.Name, text)
	case parser.DropView:
		return ps.DropView(p.Name)
	case parser.Permit:
		return ps.PutPermit(p.User, p.View, text)
	case parser.Revoke:
		return ps.DropPermit(p.User, p.View)
	}
	return nil
}

// deleteEqHint extracts an attribute = constant condition from a delete
// so the store can narrow the victim scan through that attribute's
// secondary index.
func deleteEqHint(sch *relation.DBSchema, p parser.Delete) (int, value.Value, bool) {
	rs := sch.Lookup(p.Rel)
	if rs == nil {
		return 0, value.Value{}, false
	}
	for _, c := range p.Where {
		if c.Op != value.EQ || c.R.IsCol || relation.BaseOfAlias(c.L.Alias) != p.Rel {
			continue
		}
		if i := rs.AttrIndex(c.L.Attr); i >= 0 {
			return i, c.R.Const, true
		}
	}
	return 0, value.Value{}, false
}

// renderRelationStmt renders a relation scheme as its defining
// statement (the same text snapshotFiles writes to schema.authdb).
func renderRelationStmt(rs *relation.Schema) string {
	stmt := fmt.Sprintf("relation %s (%s)", rs.Name, joinAttrs(rs.Attrs))
	if keys := rs.KeyAttrs(); len(keys) > 0 {
		stmt += fmt.Sprintf(" key (%s)", joinAttrs(keys))
	}
	return stmt + ";"
}

func joinAttrs(attrs []string) string {
	out := ""
	for i, a := range attrs {
		if i > 0 {
			out += ", "
		}
		out += a
	}
	return out
}

// rebuildPageStore repopulates the page store from the published head
// version: schemas, tuples, views, permits. Called under e.mu by the
// first checkpoint after MarkRebuild (backend conversion or replication
// snapshot adoption).
func (e *Engine) rebuildPageStore() error {
	ps := e.pstore
	v := e.head.Load()
	ps.Reset()
	for _, name := range v.sch.Names() {
		rs := v.sch.Lookup(name)
		if err := ps.CreateRelation(name, rs.Arity(), renderRelationStmt(rs)); err != nil {
			return err
		}
		for _, t := range v.rels[name].Tuples() {
			if err := ps.InsertTuple(name, t); err != nil {
				return err
			}
		}
	}
	for _, name := range v.store.ViewNames() {
		if err := ps.PutView(name, v.store.ViewDef(name).String()+";"); err != nil {
			return err
		}
	}
	for _, user := range v.store.Users() {
		for _, vw := range v.store.ViewsFor(user) {
			if err := ps.PutPermit(user, vw, fmt.Sprintf("permit %s to %s;", vw, user)); err != nil {
				return err
			}
		}
	}
	return nil
}

// loadPagedState rebuilds an engine from a paged snapshot generation:
// the catalog replays as statements (exactly like the memory layout's
// schema/views files) and tuples stream out of the primary B+Trees. The
// returned store is positioned at the committed ROOT; the caller
// attaches it (paged backend) or closes it (conversion to memory).
func loadPagedState(fs faultfs.FS, dir, snapDir string, opt core.Options, cachePages int) (*Engine, *storage.Store, error) {
	root, err := fs.ReadFile(filepath.Join(snapDir, storage.RootName))
	if err != nil {
		return nil, nil, fmt.Errorf("loading ROOT: %w", err)
	}
	ps, err := storage.Open(fs, pagesPath(dir), root, cachePages)
	if err != nil {
		return nil, nil, err
	}
	e, err := func() (*Engine, error) {
		cat, err := ps.LoadCatalog()
		if err != nil {
			return nil, err
		}
		e := New(opt)
		admin := e.NewSession("admin", true)
		for _, stmt := range cat.Schemas {
			if _, err := admin.ExecScript(stmt); err != nil {
				return nil, fmt.Errorf("replaying stored schema (%s): %w", firstLine(stmt), err)
			}
		}
		e.mu.Lock()
		for _, name := range ps.Relations() {
			vr, ok := e.vrels[name]
			if !ok {
				e.mu.Unlock()
				return nil, fmt.Errorf("stored relation %s missing from catalog schema", name)
			}
			err := ps.ScanRelation(name, func(vs []value.Value) error {
				_, err := vr.Insert(relation.Tuple(vs))
				return err
			})
			if err != nil {
				e.mu.Unlock()
				return nil, fmt.Errorf("loading %s: %w", name, err)
			}
		}
		e.publishLocked()
		e.mu.Unlock()
		for _, stmt := range cat.Views {
			if _, err := admin.ExecScript(stmt); err != nil {
				return nil, fmt.Errorf("replaying stored view (%s): %w", firstLine(stmt), err)
			}
		}
		for _, stmt := range cat.Permits {
			if _, err := admin.ExecScript(stmt); err != nil {
				return nil, fmt.Errorf("replaying stored permit (%s): %w", firstLine(stmt), err)
			}
		}
		return e, nil
	}()
	if err != nil {
		ps.Close()
		return nil, nil, err
	}
	return e, ps, nil
}
