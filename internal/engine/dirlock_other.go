//go:build !unix

package engine

import "os"

// flockExclusive is a no-op where BSD flock is unavailable; the lock
// degrades to an advisory marker file and double-opens are not refused.
func flockExclusive(f *os.File) error { return nil }
