package engine_test

import (
	"strings"
	"sync"
	"testing"

	"authdb/internal/workload"
)

func TestExplainStatement(t *testing.T) {
	e := paperEngine(t)
	res, err := e.NewSession("Brown", false).Exec(
		`explain retrieve (PROJECT.NUMBER, PROJECT.SPONSOR) where PROJECT.BUDGET >= 250000`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"plan:", "instantiated views: PSA",
		"after scan PROJECT:", "after select", "after project:",
		"mask A':", "outcome: partial (2 of 4 cells)",
		"permit (NUMBER, SPONSOR) where SPONSOR = Acme",
	} {
		if !strings.Contains(res.Text, want) {
			t.Fatalf("explain output misses %q:\n%s", want, res.Text)
		}
	}
	if res.Decision == nil {
		t.Fatal("explain must expose the decision")
	}
}

// TestExplainAccessPaths: explain reports the access path the evaluator
// chose per scan and the mask-derived pushdown condition. With the
// engine on core.DefaultOptions, pushdown is computed but not fused, so
// it reports as available.
func TestExplainAccessPaths(t *testing.T) {
	e := paperEngine(t)
	res, err := e.NewSession("Brown", false).Exec(
		`explain retrieve (PROJECT.NUMBER, PROJECT.SPONSOR) where PROJECT.BUDGET >= 250000`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"access paths:",
		"scan PROJECT: index range [PROJECT.BUDGET >= 250000]",
		"mask pushdown: PROJECT.SPONSOR = Acme (available, disabled)",
	} {
		if !strings.Contains(res.Text, want) {
			t.Fatalf("explain output misses %q:\n%s", want, res.Text)
		}
	}
	// A full grant has a full hull: nothing to push down.
	res, err = e.NewSession("Brown", false).Exec(
		"explain " + strings.TrimSpace(workload.Example3Query))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "mask pushdown: none") {
		t.Fatalf("full grant must report no pushdown:\n%s", res.Text)
	}
}

func TestExplainDenied(t *testing.T) {
	e := paperEngine(t)
	res, err := e.NewSession("Mallory", false).Exec(
		`explain retrieve (EMPLOYEE.NAME)`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "outcome: nothing is delivered") {
		t.Fatalf("explain output:\n%s", res.Text)
	}
}

func TestExplainFullGrant(t *testing.T) {
	e := paperEngine(t)
	res, err := e.NewSession("Brown", false).Exec(
		"explain " + strings.TrimSpace(workload.Example3Query))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "outcome: the entire answer is delivered") {
		t.Fatalf("explain output:\n%s", res.Text)
	}
}

// TestConcurrentSessions exercises the engine's locking: parallel readers
// and writers over the same database must not race (run with -race).
func TestConcurrentSessions(t *testing.T) {
	e := paperEngine(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			s := e.NewSession("Klein", false)
			for j := 0; j < 10; j++ {
				if _, err := s.Exec(workload.Example2Query); err != nil {
					errs <- err
					return
				}
			}
		}()
		go func(i int) {
			defer wg.Done()
			s := e.NewSession("admin", true)
			for j := 0; j < 10; j++ {
				name := string(rune('A'+i)) + string(rune('0'+j))
				if _, err := s.Exec("insert into EMPLOYEE values (tmp" + name + ", clerk, 1)"); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
