package engine

import (
	"context"
	"fmt"
	"strings"

	"authdb/internal/parser"
	"authdb/internal/relation"
	"authdb/internal/value"
)

// retrieveAgg answers an aggregate request: the plain definition runs
// under the session's ordinary authorization first, and the aggregates
// fold the *delivered* relation — every derived number is a function of
// data the user is entitled to see, so no separate aggregate
// authorization is needed (aggregate views, the other half of the §6
// remark, are out of scope; see DESIGN.md).
//
// Grouping: the non-aggregated output columns form the group key. Rows
// whose group key contains a withheld value are dropped; withheld values
// inside a group are skipped by the fold (count counts non-null values),
// and a group whose fold saw no values yields null.
func (s *Session) retrieveAgg(ctx context.Context, p parser.Retrieve) (*Result, error) {
	base, err := s.RetrieveContext(ctx, p.Def)
	if err != nil {
		return nil, err
	}
	in := base.Relation

	aggAt := make(map[int]string, len(p.Aggs))
	for _, a := range p.Aggs {
		if a.Index < 0 || a.Index >= in.Arity() {
			return nil, fmt.Errorf("aggregate index %d out of range", a.Index)
		}
		aggAt[a.Index] = a.Func
	}
	var groupIdx, foldIdx []int
	for i := 0; i < in.Arity(); i++ {
		if _, ok := aggAt[i]; ok {
			foldIdx = append(foldIdx, i)
		} else {
			groupIdx = append(groupIdx, i)
		}
	}

	type groupState struct {
		key  relation.Tuple
		acc  map[int]*aggAccum
		seen bool
	}
	groups := make(map[string]*groupState)
	var order []string
	for _, t := range in.Tuples() {
		skip := false
		for _, gi := range groupIdx {
			if t[gi].IsNull() {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		var kb strings.Builder
		for _, gi := range groupIdx {
			kb.WriteByte(byte(t[gi].Kind()))
			kb.WriteString(t[gi].String())
			kb.WriteByte(0)
		}
		k := kb.String()
		g, ok := groups[k]
		if !ok {
			g = &groupState{key: t.Clone(), acc: make(map[int]*aggAccum, len(foldIdx))}
			for _, fi := range foldIdx {
				g.acc[fi] = &aggAccum{fn: aggAt[fi]}
			}
			groups[k] = g
			order = append(order, k)
		}
		g.seen = true
		for _, fi := range foldIdx {
			g.acc[fi].add(t[fi])
		}
	}

	attrs := make([]string, in.Arity())
	for i, a := range in.Attrs {
		if fn, ok := aggAt[i]; ok {
			_, bare := relation.SplitQualified(a)
			attrs[i] = fn + "(" + bare + ")"
		} else {
			attrs[i] = a
		}
	}
	out := relation.New(attrs)
	for _, k := range order {
		g := groups[k]
		row := make(relation.Tuple, in.Arity())
		for _, gi := range groupIdx {
			row[gi] = g.key[gi]
		}
		for _, fi := range foldIdx {
			row[fi] = g.acc[fi].result()
		}
		out.Insert(row) //nolint:errcheck // arity correct by construction
	}
	return &Result{Relation: out, Permits: base.Permits, Decision: base.Decision, AtLSN: base.AtLSN}, nil
}

// aggAccum folds one aggregate over a group, skipping withheld values.
type aggAccum struct {
	fn    string
	n     int64
	sum   int64
	min   value.Value
	max   value.Value
	first bool
}

func (a *aggAccum) add(v value.Value) {
	if v.IsNull() {
		return
	}
	a.n++
	if v.Kind() == value.KindInt {
		a.sum += v.AsInt()
	}
	if !a.first {
		a.min, a.max, a.first = v, v, true
		return
	}
	if v.Less(a.min) {
		a.min = v
	}
	if a.max.Less(v) {
		a.max = v
	}
}

func (a *aggAccum) result() value.Value {
	if a.n == 0 {
		return value.Null()
	}
	switch a.fn {
	case "count":
		return value.Int(a.n)
	case "sum":
		return value.Int(a.sum)
	case "avg":
		// Integer average, truncated toward zero (the value model has no
		// floating point domain).
		return value.Int(a.sum / a.n)
	case "min":
		return a.min
	case "max":
		return a.max
	default:
		return value.Null()
	}
}
