package engine

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"authdb/internal/core"
	"authdb/internal/faultfs"
)

// durableScenario is a sequence of mutating statements covering every
// journaled statement kind, including constants that need quoting.
var durableScenario = []string{
	`relation EMPLOYEE (NAME, TITLE, SALARY) key (NAME)`,
	`insert into EMPLOYEE values (Jones, manager, 26000)`,
	`insert into EMPLOYEE values (Smith, "senior clerk", 21000)`,
	`relation PROJECT (NUMBER, SPONSOR, BUDGET) key (NUMBER)`,
	`insert into PROJECT values (bq-45, Acme, 250000)`,
	`view SAE (EMPLOYEE.NAME, EMPLOYEE.SALARY)
	   where EMPLOYEE.SALARY >= 20000`,
	`permit SAE to Brown`,
	`insert into EMPLOYEE values (Kahn, clerk, 18000)`,
	`delete from EMPLOYEE where NAME = Kahn`,
	`view VP (PROJECT.NUMBER, PROJECT.BUDGET) where PROJECT.SPONSOR = Acme`,
	`permit VP to Brown`,
	`revoke SAE from Brown`,
	`drop view SAE`,
}

// fingerprint canonically renders an engine's complete state.
func fingerprint(t *testing.T, e *Engine) string {
	t.Helper()
	files, err := e.snapshotFiles()
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	for _, p := range sortedPaths(files) {
		fmt.Fprintf(&b, "-- %s --\n", p)
		b.Write(files[p])
	}
	return b.String()
}

// referenceStates runs the scenario fault-free and returns the
// fingerprint after the open and after each statement.
func referenceStates(t *testing.T) []string {
	t.Helper()
	dir := t.TempDir()
	e, err := OpenDurable(dir, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	states := []string{fingerprint(t, e)}
	admin := e.NewSession("admin", true)
	for _, stmt := range durableScenario {
		if _, err := admin.Exec(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
		states = append(states, fingerprint(t, e))
	}
	return states
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenDurable(dir, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	admin := e.NewSession("admin", true)
	for _, stmt := range durableScenario {
		if _, err := admin.Exec(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	want := fingerprint(t, e)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	back, err := OpenDurable(dir, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if got := fingerprint(t, back); got != want {
		t.Fatalf("state differs after reopen:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// The reopened engine keeps accepting work, including the quoted
	// string journaled earlier.
	res, err := back.NewSession("admin", true).Exec(
		`retrieve (EMPLOYEE.NAME, EMPLOYEE.TITLE) where EMPLOYEE.TITLE = "senior clerk"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 1 {
		t.Fatalf("quoted constant lost through the journal:\n%s", res.Relation)
	}
}

func TestDurableCloseFailsStop(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenDurable(dir, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	admin := e.NewSession("admin", true)
	if _, err := admin.Exec(`relation R (A)`); err == nil {
		t.Fatal("mutations must fail after Close")
	}
}

// TestCrashRecoverySweep kills persistence at every mutating filesystem
// operation — during the opening checkpoint and during every WAL append
// of the scenario — and checks that reopening the directory always
// recovers a consistent prefix of the statement history, never a torn or
// fabricated state.
func TestCrashRecoverySweep(t *testing.T) {
	crashSweep(t, false, StorageConfig{})
}

// TestCrashRecoverySweepShortWrites repeats the sweep with the tripping
// write persisting half its payload, modelling torn sector writes.
func TestCrashRecoverySweepShortWrites(t *testing.T) {
	crashSweep(t, true, StorageConfig{})
}

// TestCrashRecoverySweepPaged runs the sweep on the paged backend with a
// tiny buffer cache, so the kill points land mid-page-flush and
// mid-checkpoint (the ROOT/CURRENT dance) as well as in the WAL.
func TestCrashRecoverySweepPaged(t *testing.T) {
	crashSweep(t, false, StorageConfig{Backend: StoragePaged, CachePages: 8})
}

// TestCrashRecoverySweepPagedShortWrites adds torn page writes: the
// tripping WriteAt persists half a page, which recovery must reject via
// the page CRC (shadow paging keeps the committed tree clean).
func TestCrashRecoverySweepPagedShortWrites(t *testing.T) {
	crashSweep(t, true, StorageConfig{Backend: StoragePaged, CachePages: 8})
}

func crashSweep(t *testing.T, short bool, cfg StorageConfig) {
	refs := referenceStates(t)
	// isPrefixState returns the latest history index whose state matches
	// fp (statements like insert-then-delete can revisit an earlier
	// state, so the same fingerprint may appear at several indices).
	isPrefixState := func(fp string) int {
		for i := len(refs) - 1; i >= 0; i-- {
			if fp == refs[i] {
				return i
			}
		}
		return -1
	}
	base := t.TempDir()
	for k := 0; ; k++ {
		if k > 10000 {
			t.Fatal("sweep did not terminate; fault never stopped tripping")
		}
		dir := filepath.Join(base, fmt.Sprintf("crash-%d", k))
		fs := faultfs.NewFaulty(faultfs.OS())
		fs.ShortWrites = short
		fs.Arm(k)

		// Run until the injected crash (or to completion).
		e, err := OpenDurableStorageFS(fs, dir, core.DefaultOptions(), cfg)
		applied := -1 // statements confirmed applied before the crash
		if err == nil {
			applied = 0
			admin := e.NewSession("admin", true)
			for _, stmt := range durableScenario {
				if _, err := admin.Exec(stmt); err != nil {
					break
				}
				applied++
			}
		}
		tripped := fs.Tripped()
		// The crashed process is gone: drop the handles it held. The
		// kernel releases a dead process's directory lock the same way,
		// so recovery never meets a stale lock.
		if e != nil {
			e.Close()
		}

		// "Reboot": recovery over the real filesystem must always
		// succeed and land on a prefix of the history.
		re, err := OpenDurableStorage(dir, core.DefaultOptions(), cfg)
		if err != nil {
			t.Fatalf("k=%d: recovery failed: %v", k, err)
		}
		got := isPrefixState(fingerprint(t, re))
		if got < 0 {
			t.Fatalf("k=%d: recovered state is not a prefix of the history", k)
		}
		if applied >= 0 && got < applied {
			t.Fatalf("k=%d: recovery lost %d acknowledged statement(s)", k, applied-got)
		}
		// The recovered engine accepts new work.
		if _, err := re.NewSession("admin", true).Exec(`relation PROBE (X)`); err != nil {
			t.Fatalf("k=%d: recovered engine rejects mutations: %v", k, err)
		}
		re.Close()

		if !tripped {
			if got < len(refs)-1 {
				t.Fatalf("k=%d: fault-free run recovered only %d/%d statements", k, got, len(refs)-1)
			}
			break // the whole scenario ran without hitting the fault
		}
	}
}

// TestDurableConvertsLegacySave opens a flat Save directory durably and
// checks the state carries over and subsequent mutations are journaled.
func TestDurableConvertsLegacySave(t *testing.T) {
	dir := t.TempDir()
	e := New(core.DefaultOptions())
	admin := e.NewSession("admin", true)
	if _, err := admin.ExecScript(`
		relation P (N, S) key (N);
		insert into P values (1, Acme);
		view V (P.N) where P.S = Acme;
		permit V to u;
	`); err != nil {
		t.Fatal(err)
	}
	if err := e.Save(dir); err != nil {
		t.Fatal(err)
	}

	d, err := OpenDurable(dir, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.NewSession("admin", true).Exec(`insert into P values (2, Apex)`); err != nil {
		t.Fatal(err)
	}
	d.Close()

	back, err := OpenDurable(dir, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	r, err := back.Relation("P")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("converted database lost tuples:\n%s", r)
	}
}
