package engine_test

import (
	"fmt"
	"sync"
	"testing"

	"authdb/internal/workload"
)

// TestConcurrentReadersWithPermitChurn runs reader sessions over the
// paper's three worked examples while an administrator keeps revoking
// and re-granting the permit each example depends on. Every answer a
// reader sees must be byte-identical to one of the two legal outcomes
// (permit held / permit revoked) precomputed sequentially — anything
// else is a torn mask, a stale cache entry, or a withheld cell leaking
// through. Run with -race.
func TestConcurrentReadersWithPermitChurn(t *testing.T) {
	e := paperEngine(t)
	admin := e.NewSession("admin", true)

	// Each case depends on exactly one toggled (view, user) permit; the
	// other permits in the fixture stay fixed throughout.
	cases := []struct {
		user, query, view string
		legal             map[string]string // outcome name -> rendering
	}{
		{user: "Brown", query: workload.Example1Query, view: "PSA"},
		{user: "Klein", query: workload.Example2Query, view: "ELP"},
		{user: "Brown", query: workload.Example3Query, view: "EST"},
	}
	for i := range cases {
		c := &cases[i]
		c.legal = make(map[string]string)
		s := e.NewSession(c.user, false)
		res, err := s.Exec(c.query)
		if err != nil {
			t.Fatal(err)
		}
		c.legal["granted"] = renderResult(res)
		if _, err := admin.Exec(fmt.Sprintf("revoke %s from %s", c.view, c.user)); err != nil {
			t.Fatal(err)
		}
		res, err = s.Exec(c.query)
		if err != nil {
			t.Fatal(err)
		}
		c.legal["revoked"] = renderResult(res)
		if _, err := admin.Exec(fmt.Sprintf("permit %s to %s", c.view, c.user)); err != nil {
			t.Fatal(err)
		}
		if c.legal["granted"] == c.legal["revoked"] {
			t.Fatalf("case %d: toggling %s does not change the outcome; the stress proves nothing", i, c.view)
		}
	}

	const readers = 9
	toggles := 40
	if testing.Short() {
		toggles = 10
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		c := cases[r%len(cases)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := e.NewSession(c.user, false)
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := s.Exec(c.query)
				if err != nil {
					t.Errorf("reader %s: %v", c.user, err)
					return
				}
				got := renderResult(res)
				if got != c.legal["granted"] && got != c.legal["revoked"] {
					t.Errorf("reader %s saw an illegal answer:\n%s\nlegal granted:\n%s\nlegal revoked:\n%s",
						c.user, got, c.legal["granted"], c.legal["revoked"])
					return
				}
			}
		}()
	}
	for i := 0; i < toggles; i++ {
		for _, c := range cases {
			if _, err := admin.Exec(fmt.Sprintf("revoke %s from %s", c.view, c.user)); err != nil {
				t.Fatal(err)
			}
			if _, err := admin.Exec(fmt.Sprintf("permit %s to %s", c.view, c.user)); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
}
