package engine

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"authdb/internal/core"
)

var pagedCfg = StorageConfig{Backend: StoragePaged, CachePages: 16}

// renderSorted serializes a retrieve's delivered relation in canonical
// order for byte-identical comparison across backends.
func renderSorted(t *testing.T, res *Result) string {
	t.Helper()
	var b strings.Builder
	for _, tup := range res.Relation.Sorted() {
		for _, v := range tup {
			b.WriteString(v.String())
			b.WriteByte('|')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// brownAnswer evaluates Brown's permitted query (through the full
// masking pipeline) — the per-user surface the differential compares.
func brownAnswer(t *testing.T, e *Engine) string {
	t.Helper()
	res, err := e.NewSession("Brown", false).Exec(
		`retrieve (PROJECT.NUMBER, PROJECT.BUDGET)`)
	if err != nil {
		t.Fatal(err)
	}
	return renderSorted(t, res)
}

// TestPagedBackendDifferential converts a directory memory → paged →
// memory, checking at every step that the full state fingerprint and a
// masked per-user answer are byte-identical: the storage backend must be
// invisible to the algebra and the authorization model.
func TestPagedBackendDifferential(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenDurableStorage(dir, core.DefaultOptions(), StorageConfig{})
	if err != nil {
		t.Fatal(err)
	}
	admin := e.NewSession("admin", true)
	for _, stmt := range durableScenario {
		if _, err := admin.Exec(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	wantFP, wantAns := fingerprint(t, e), brownAnswer(t, e)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Convert to paged: the opening checkpoint rebuilds the page store
	// from the recovered head and commits a ROOT generation.
	p, err := OpenDurableStorage(dir, core.DefaultOptions(), pagedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.StorageBackend() != StoragePaged {
		t.Fatalf("backend = %s, want paged", p.StorageBackend())
	}
	if got := fingerprint(t, p); got != wantFP {
		t.Fatalf("fingerprint differs after memory->paged conversion:\ngot:\n%s\nwant:\n%s", got, wantFP)
	}
	if got := brownAnswer(t, p); got != wantAns {
		t.Fatalf("masked answer differs after conversion: %q != %q", got, wantAns)
	}
	// Mutate under the paged backend, then round-trip paged -> paged.
	if _, err := p.NewSession("admin", true).Exec(`insert into PROJECT values (cd-77, Apex, 130000)`); err != nil {
		t.Fatal(err)
	}
	wantFP, wantAns = fingerprint(t, p), brownAnswer(t, p)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, err := OpenDurableStorage(dir, core.DefaultOptions(), pagedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(t, p2); got != wantFP {
		t.Fatalf("fingerprint differs after paged reopen:\ngot:\n%s\nwant:\n%s", got, wantFP)
	}
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}

	// An empty config is sticky: it adopts the committed generation's
	// format instead of converting it.
	s, err := OpenDurableStorage(dir, core.DefaultOptions(), StorageConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if s.StorageBackend() != StoragePaged {
		t.Fatalf("backend = %s, want paged (empty config keeps the on-disk format)", s.StorageBackend())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Convert back to memory explicitly; the CSV generation must carry
	// everything.
	m, err := OpenDurableStorage(dir, core.DefaultOptions(), StorageConfig{Backend: StorageMemory})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.StorageBackend() != StorageMemory {
		t.Fatalf("backend = %s, want memory", m.StorageBackend())
	}
	if got := fingerprint(t, m); got != wantFP {
		t.Fatalf("fingerprint differs after paged->memory conversion:\ngot:\n%s\nwant:\n%s", got, wantFP)
	}
	if got := brownAnswer(t, m); got != wantAns {
		t.Fatalf("masked answer differs after conversion back: %q != %q", got, wantAns)
	}
}

// TestPagedTinyCacheWorkload drives a paged engine whose resident set
// far exceeds the buffer cache: correctness must not depend on the
// budget, and the pager must actually evict.
func TestPagedTinyCacheWorkload(t *testing.T) {
	dir := t.TempDir()
	cfg := StorageConfig{Backend: StoragePaged, CachePages: 8}
	e, err := OpenDurableStorage(dir, core.DefaultOptions(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	admin := e.NewSession("admin", true)
	if _, err := admin.Exec(`relation BIG (ID, PAYLOAD) key (ID)`); err != nil {
		t.Fatal(err)
	}
	const rows = 300
	pad := strings.Repeat("x", 120)
	for i := 0; i < rows; i++ {
		stmt := fmt.Sprintf(`insert into BIG values (k%04d, "%s%04d")`, i, pad, i)
		if _, err := admin.Exec(stmt); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if i%100 == 50 {
			if err := e.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := admin.Exec(`delete from BIG where BIG.ID = k0042`); err != nil {
		t.Fatal(err)
	}
	st := e.PageStats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under an 8-page budget: %+v", st)
	}
	if st.Pages <= uint32(cfg.CachePages) {
		t.Fatalf("resident set did not exceed the cache budget: %d pages", st.Pages)
	}
	want := fingerprint(t, e)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := OpenDurableStorage(dir, core.DefaultOptions(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if got := fingerprint(t, back); got != want {
		t.Fatal("state differs after reopening the tiny-cache store")
	}
	res, err := back.NewSession("admin", true).Exec(`retrieve (BIG.ID)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != rows-1 {
		t.Fatalf("recovered %d rows, want %d", res.Relation.Len(), rows-1)
	}
}

// TestSnapshotSession exercises `\begin snapshot` / `\end`: statements
// inside the block read one pinned version (concurrent commits stay
// invisible), the session's own writes re-pin so it reads its writes,
// and `\end` returns it to the live head.
func TestSnapshotSession(t *testing.T) {
	ctx := context.Background()
	e := New(core.DefaultOptions())
	admin := e.NewSession("admin", true)
	if _, err := admin.ExecScript(`
		relation R (A, B) key (A);
		insert into R values (1, one);
		view ALL (R.A, R.B);
		permit ALL to u;
	`); err != nil {
		t.Fatal(err)
	}
	u := e.NewSession("u", false)

	if _, err := u.Dispatch(ctx, `\end`); err == nil {
		t.Fatal(`\end without an open block must fail`)
	}
	res, err := u.Dispatch(ctx, `\begin snapshot`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "snapshot pinned") {
		t.Fatalf("unexpected begin response %q", res.Text)
	}
	if _, err := u.Dispatch(ctx, `\begin snapshot`); err == nil {
		t.Fatal("nested begin must fail")
	}

	// A concurrent commit is invisible inside the block...
	if _, err := admin.Exec(`insert into R values (2, two)`); err != nil {
		t.Fatal(err)
	}
	got, err := u.Exec(`retrieve (R.A, R.B)`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Relation.Len() != 1 {
		t.Fatalf("pinned read saw %d rows, want 1", got.Relation.Len())
	}
	// ...repeatably: the same statement reads the same version.
	got, err = u.Exec(`retrieve (R.A, R.B)`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Relation.Len() != 1 {
		t.Fatalf("second pinned read saw %d rows, want 1", got.Relation.Len())
	}

	// After \end the live head (with the concurrent insert) is visible.
	if _, err := u.Dispatch(ctx, `\end`); err != nil {
		t.Fatal(err)
	}
	got, err = u.Exec(`retrieve (R.A, R.B)`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Relation.Len() != 2 {
		t.Fatalf("post-end read saw %d rows, want 2", got.Relation.Len())
	}
}

// TestSnapshotSessionReadsOwnWrites checks the write path inside a
// block: an authorized update re-pins the session to the head it
// produced, so the block observes its own mutation but still not later
// foreign ones.
func TestSnapshotSessionReadsOwnWrites(t *testing.T) {
	ctx := context.Background()
	e := New(core.DefaultOptions())
	admin := e.NewSession("admin", true)
	if _, err := admin.ExecScript(`
		relation R (A, B) key (A);
		insert into R values (1, one);
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Dispatch(ctx, `\begin snapshot`); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Exec(`insert into R values (2, two)`); err != nil {
		t.Fatal(err)
	}
	got, err := admin.Exec(`retrieve (R.A, R.B)`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Relation.Len() != 2 {
		t.Fatalf("block does not read its own write: %d rows, want 2", got.Relation.Len())
	}
	// A foreign commit after the re-pin stays invisible.
	other := e.NewSession("admin2", true)
	if _, err := other.Exec(`insert into R values (3, three)`); err != nil {
		t.Fatal(err)
	}
	got, err = admin.Exec(`retrieve (R.A, R.B)`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Relation.Len() != 2 {
		t.Fatalf("foreign commit leaked into the block: %d rows, want 2", got.Relation.Len())
	}
	if _, err := admin.Dispatch(ctx, `\end`); err != nil {
		t.Fatal(err)
	}
}

// TestPagedMetricsExposed checks the page-cache series reach the
// metrics text surface (what /metrics scrapes and `\stats` prints).
func TestPagedMetricsExposed(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenDurableStorage(dir, core.DefaultOptions(), pagedCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	admin := e.NewSession("admin", true)
	if _, err := admin.ExecScript(`
		relation R (A) key (A);
		insert into R values (1);
	`); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	res, err := admin.Dispatch(context.Background(), `\stats`)
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"authdb_page_cache_hits_total",
		"authdb_page_cache_misses_total",
		"authdb_page_cache_evictions_total",
		"authdb_pages_total",
		"authdb_checkpoint_dirty_pages",
	} {
		if !strings.Contains(res.Text, series) {
			t.Fatalf("%s missing from \\stats output", series)
		}
	}
	if e.PageStats().DirtyFlush == 0 {
		t.Fatal("checkpoint flushed no dirty pages")
	}
}
