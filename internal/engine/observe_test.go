package engine_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"authdb/internal/engine"
	"authdb/internal/guard"
	"authdb/internal/workload"
)

func TestDispatchStats(t *testing.T) {
	e := paperEngine(t)
	admin := e.NewSession("admin", true)
	user := e.NewSession("Brown", false)
	ctx := context.Background()

	if _, err := user.Dispatch(ctx, workload.Example1Query); err != nil {
		t.Fatal(err)
	}
	res, err := admin.Dispatch(ctx, `\stats`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`authdb_requests_total{kind="retrieve"}`,
		`authdb_exec_seconds_count{kind="retrieve"}`,
		"authdb_cells_delivered_total",
		"authdb_mask_cache_misses_total",
	} {
		if !strings.Contains(res.Text, want) {
			t.Fatalf("\\stats output missing %q:\n%s", want, res.Text)
		}
	}

	// \stats is an administrator command; the shared dispatch enforces it.
	if _, err := user.Dispatch(ctx, `\stats`); !errors.Is(err, engine.ErrNotAuthorized) {
		t.Fatalf("user \\stats error = %v, want ErrNotAuthorized", err)
	}
	if _, err := admin.Dispatch(ctx, `\bogus`); err == nil {
		t.Fatal("unknown backslash command accepted")
	}
	// Plain statements flow through to Exec.
	if res, err := admin.Dispatch(ctx, `show relations;`); err != nil || !strings.Contains(res.Text, "EMPLOYEE") {
		t.Fatalf("dispatch of statement = %v, %v", res, err)
	}
}

func TestExecMetricsCounters(t *testing.T) {
	e := paperEngine(t)
	user := e.NewSession("Brown", false)

	if _, err := user.Exec(workload.Example1Query); err != nil {
		t.Fatal(err)
	}
	met := e.Metrics()
	if got := met.Counter("authdb_requests_total", "kind", "retrieve").Value(); got < 1 {
		t.Fatalf("retrieve counter = %d, want >= 1", got)
	}
	delivered := met.Counter("authdb_cells_delivered_total").Value()
	withheld := met.Counter("authdb_cells_withheld_total").Value()
	// Example 1 is partially authorized: some cells of both kinds.
	if delivered == 0 || withheld == 0 {
		t.Fatalf("cells delivered=%d withheld=%d, want both > 0", delivered, withheld)
	}

	// A budget trip increments the guard counter.
	tight := user
	l := guard.DefaultLimits()
	l.MaxIntermediateRows = 1
	tight.SetLimits(l)
	if _, err := tight.Exec(workload.Example3Query); !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("tight budget error = %v", err)
	}
	if got := met.Counter("authdb_guard_budget_total").Value(); got != 1 {
		t.Fatalf("budget counter = %d, want 1", got)
	}

	// A canceled context increments the cancel counter.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fresh := e.NewSession("Brown", false)
	if _, err := fresh.ExecContext(ctx, workload.Example1Query); !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("canceled error = %v", err)
	}
	if got := met.Counter("authdb_guard_canceled_total").Value(); got != 1 {
		t.Fatalf("cancel counter = %d, want 1", got)
	}

}
