package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"authdb/internal/core"
	"authdb/internal/relation"
)

// Save writes the engine's complete state into dir:
//
//	schema.authdb   relation statements
//	views.authdb    view definitions and permits, in definition order
//	data/REL.csv    one CSV per base relation
//
// The directory is created if missing; existing files are overwritten.
// Load restores an equivalent engine.
func (e *Engine) Save(dir string) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if err := os.MkdirAll(filepath.Join(dir, "data"), 0o755); err != nil {
		return err
	}

	var schema strings.Builder
	for _, name := range e.sch.Names() {
		rs := e.sch.Lookup(name)
		fmt.Fprintf(&schema, "relation %s (%s)", rs.Name, strings.Join(rs.Attrs, ", "))
		if keys := rs.KeyAttrs(); len(keys) > 0 {
			fmt.Fprintf(&schema, " key (%s)", strings.Join(keys, ", "))
		}
		schema.WriteString(";\n")
	}
	if err := os.WriteFile(filepath.Join(dir, "schema.authdb"), []byte(schema.String()), 0o644); err != nil {
		return err
	}

	var views strings.Builder
	for _, name := range e.store.ViewNames() {
		views.WriteString(e.store.ViewDef(name).String())
		views.WriteString(";\n\n")
	}
	for _, user := range e.store.Users() {
		for _, v := range e.store.ViewsFor(user) {
			fmt.Fprintf(&views, "permit %s to %s;\n", v, user)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "views.authdb"), []byte(views.String()), 0o644); err != nil {
		return err
	}

	for _, name := range e.sch.Names() {
		f, err := os.Create(filepath.Join(dir, "data", name+".csv"))
		if err != nil {
			return err
		}
		if err := e.rels[name].WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// Load restores an engine saved with Save.
func Load(dir string, opt core.Options) (*Engine, error) {
	e := New(opt)
	admin := e.NewSession("admin", true)

	schema, err := os.ReadFile(filepath.Join(dir, "schema.authdb"))
	if err != nil {
		return nil, fmt.Errorf("loading schema: %w", err)
	}
	if _, err := admin.ExecScript(string(schema)); err != nil {
		return nil, fmt.Errorf("replaying schema: %w", err)
	}

	for _, name := range e.sch.Names() {
		path := filepath.Join(dir, "data", name+".csv")
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", name, err)
		}
		rel, err := relation.ReadCSV(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		if got, want := len(rel.Attrs), e.sch.Lookup(name).Arity(); got != want {
			return nil, fmt.Errorf("%s: csv has %d columns, scheme %d", path, got, want)
		}
		for _, t := range rel.Tuples() {
			if _, err := e.rels[name].Insert(t); err != nil {
				return nil, fmt.Errorf("loading %s: %w", name, err)
			}
		}
	}

	views, err := os.ReadFile(filepath.Join(dir, "views.authdb"))
	if err != nil {
		return nil, fmt.Errorf("loading views: %w", err)
	}
	if _, err := admin.ExecScript(string(views)); err != nil {
		return nil, fmt.Errorf("replaying views: %w", err)
	}
	return e, nil
}
