package engine

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"authdb/internal/core"
	"authdb/internal/faultfs"
	"authdb/internal/relation"
)

// snapshotFiles renders one database version as a set of files, keyed
// by slash-separated path relative to the save directory:
//
//	schema.authdb   relation statements
//	views.authdb    view definitions and permits, in definition order
//	data/REL.csv    one CSV per base relation
//
// The version is immutable, so no lock is needed. The same rendering
// backs the flat Save layout, the durable snapshot generations, and the
// crash-recovery tests' state fingerprints.
func (v *dbVersion) snapshotFiles() (map[string][]byte, error) {
	files := make(map[string][]byte)

	var schema strings.Builder
	for _, name := range v.sch.Names() {
		rs := v.sch.Lookup(name)
		fmt.Fprintf(&schema, "relation %s (%s)", rs.Name, strings.Join(rs.Attrs, ", "))
		if keys := rs.KeyAttrs(); len(keys) > 0 {
			fmt.Fprintf(&schema, " key (%s)", strings.Join(keys, ", "))
		}
		schema.WriteString(";\n")
	}
	files["schema.authdb"] = []byte(schema.String())

	var views strings.Builder
	for _, name := range v.store.ViewNames() {
		views.WriteString(v.store.ViewDef(name).String())
		views.WriteString(";\n\n")
	}
	for _, user := range v.store.Users() {
		for _, vw := range v.store.ViewsFor(user) {
			fmt.Fprintf(&views, "permit %s to %s;\n", vw, user)
		}
	}
	files["views.authdb"] = []byte(views.String())

	for _, name := range v.sch.Names() {
		var buf bytes.Buffer
		if err := v.rels[name].WriteCSV(&buf); err != nil {
			return nil, fmt.Errorf("rendering %s: %w", name, err)
		}
		files["data/"+name+".csv"] = buf.Bytes()
	}
	return files, nil
}

// snapshotFiles renders the head version. Writers that need the state
// they just built (checkpoints, epoch quarantine) call this after
// publishLocked, so the head is exactly their state; readers get
// whatever version is current at the atomic load.
func (e *Engine) snapshotFiles() (map[string][]byte, error) {
	return e.head.Load().snapshotFiles()
}

// sortedPaths returns the file map's keys in deterministic order.
func sortedPaths(files map[string][]byte) []string {
	out := make([]string, 0, len(files))
	for p := range files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// writeFileSync writes path in one shot and fsyncs it; the file's
// directory entry still needs a SyncDir to be durable.
func writeFileSync(fs faultfs.FS, path string, data []byte) error {
	f, err := fs.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeFileAtomic writes path via a sibling temp file, fsyncs, and
// renames into place, so a crash leaves either the old content or the
// new, never a torn file.
func writeFileAtomic(fs faultfs.FS, path string, data []byte) error {
	tmp := path + ".tmp"
	if err := writeFileSync(fs, tmp, data); err != nil {
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		return err
	}
	return fs.SyncDir(filepath.Dir(path))
}

// Save writes the engine's complete state into dir in the flat layout
// (schema.authdb, views.authdb, data/REL.csv). Every file is written
// atomically (temp file + fsync + rename); the directory is created if
// missing and existing files are replaced. Load restores an equivalent
// engine. For crash atomicity across the whole file set, use OpenDurable
// instead — Save is the export/import surface.
func (e *Engine) Save(dir string) error {
	files, err := e.snapshotFiles()
	if err != nil {
		return err
	}
	fs := faultfs.OS()
	if err := fs.MkdirAll(filepath.Join(dir, "data"), 0o755); err != nil {
		return err
	}
	for _, rel := range sortedPaths(files) {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := writeFileAtomic(fs, path, files[rel]); err != nil {
			return fmt.Errorf("saving %s: %w", rel, err)
		}
	}
	return nil
}

// Load restores an engine saved with Save.
func Load(dir string, opt core.Options) (*Engine, error) {
	return loadState(faultfs.OS(), dir, opt)
}

// loadState rebuilds an engine from a flat state directory (the Save
// layout; also the inside of a durable snapshot generation), reading
// through fs. Errors carry the file and, for replayed statements, the
// line that failed.
func loadState(fs faultfs.FS, dir string, opt core.Options) (*Engine, error) {
	e := New(opt)
	admin := e.NewSession("admin", true)

	schemaPath := filepath.Join(dir, "schema.authdb")
	schema, err := fs.ReadFile(schemaPath)
	if err != nil {
		return nil, fmt.Errorf("loading schema: %w", err)
	}
	if _, err := admin.ExecScript(string(schema)); err != nil {
		return nil, fmt.Errorf("replaying %s: %w", schemaPath, err)
	}

	e.mu.Lock()
	for _, name := range e.wsch.Names() {
		path := filepath.Join(dir, "data", name+".csv")
		raw, err := fs.ReadFile(path)
		if err != nil {
			e.mu.Unlock()
			return nil, fmt.Errorf("loading %s: %w", name, err)
		}
		rel, err := relation.ReadCSV(bytes.NewReader(raw))
		if err != nil {
			e.mu.Unlock()
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		if got, want := len(rel.Attrs), e.wsch.Lookup(name).Arity(); got != want {
			e.mu.Unlock()
			return nil, fmt.Errorf("%s: csv has %d columns, scheme %d", path, got, want)
		}
		for _, t := range rel.Tuples() {
			if _, err := e.vrels[name].Insert(t); err != nil {
				e.mu.Unlock()
				return nil, fmt.Errorf("loading %s: %w", name, err)
			}
		}
	}
	e.publishLocked()
	e.mu.Unlock()

	viewsPath := filepath.Join(dir, "views.authdb")
	views, err := fs.ReadFile(viewsPath)
	if err != nil {
		return nil, fmt.Errorf("loading views: %w", err)
	}
	if _, err := admin.ExecScript(string(views)); err != nil {
		return nil, fmt.Errorf("replaying %s: %w", viewsPath, err)
	}
	return e, nil
}
