// Crash-safe persistence. A durable database directory holds immutable
// snapshot generations plus a statement write-ahead log:
//
//	CURRENT          "snap-NNNNNN\n" — the committed generation
//	snap-NNNNNN/     one snapshot: schema.authdb, views.authdb,
//	                 data/REL.csv, and a MANIFEST with the CRC-32 and
//	                 size of every file
//	wal-NNNNNN.log   statements applied after snap-NNNNNN was taken
//
// A checkpoint builds the next generation in a temp directory, fsyncs
// everything, renames it into place, creates the generation's empty WAL,
// and then — the commit point — atomically renames a new CURRENT over
// the old one. A crash anywhere leaves either the old generation fully
// committed or the new one; partially built directories are ignored and
// reclaimed by the next checkpoint.
//
// Every mutating statement is journaled to the WAL (rendered back to
// canonical statement text) inside the same critical section that
// applies it, so the log order equals the apply order. Opening replays
// the committed snapshot plus the longest valid prefix of its WAL —
// tolerating a torn or corrupt tail — and immediately checkpoints, so a
// recovered engine never appends after a torn tail.
package engine

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"

	"authdb/internal/core"
	"authdb/internal/faultfs"
	"authdb/internal/parser"
	"authdb/internal/wal"
)

const (
	currentName  = "CURRENT"
	manifestName = "MANIFEST"
)

func snapName(gen uint64) string { return fmt.Sprintf("snap-%06d", gen) }
func walName(gen uint64) string  { return fmt.Sprintf("wal-%06d.log", gen) }

// durable is an engine's attachment to a durable database directory.
type durable struct {
	fs  faultfs.FS
	dir string
	gen uint64
	wal *wal.Log
	// broken is set at the first journaling failure; the engine then
	// fails stop for mutations (the in-memory state may be ahead of the
	// log, and accepting more writes would widen the divergence).
	broken error
}

// OpenDurable opens (creating if necessary) a durable database
// directory: the committed snapshot is loaded, the write-ahead log's
// valid prefix is replayed, and a fresh checkpoint is taken. Directories
// saved with Save (the flat layout) are converted on first open. The
// caller should Close the engine to release the log handle.
func OpenDurable(dir string, opt core.Options) (*Engine, error) {
	return OpenDurableFS(faultfs.OS(), dir, opt)
}

// OpenDurableFS is OpenDurable over an explicit filesystem; the
// fault-injection tests use it to crash persistence at every operation.
func OpenDurableFS(fs faultfs.FS, dir string, opt core.Options) (*Engine, error) {
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	gen, committed, err := readCurrent(fs, dir)
	if err != nil {
		return nil, err
	}
	var e *Engine
	switch {
	case committed:
		snapDir := filepath.Join(dir, snapName(gen))
		if err := verifyManifest(fs, snapDir); err != nil {
			return nil, fmt.Errorf("%s: %w", snapName(gen), err)
		}
		e, err = loadState(fs, snapDir, opt)
		if err != nil {
			return nil, err
		}
		if err := replayWAL(fs, filepath.Join(dir, walName(gen)), e); err != nil {
			return nil, err
		}
	case legacyLayout(fs, dir):
		e, err = loadState(fs, dir, opt)
		if err != nil {
			return nil, err
		}
	default:
		e = New(opt)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.checkpointLocked(fs, dir, gen); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return e, nil
}

// readCurrent reads the committed generation from CURRENT; a missing
// file means the directory has no committed generation yet.
func readCurrent(fs faultfs.FS, dir string) (gen uint64, committed bool, err error) {
	data, err := fs.ReadFile(filepath.Join(dir, currentName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, false, nil
		}
		return 0, false, err
	}
	name := strings.TrimSpace(string(data))
	if _, err := fmt.Sscanf(name, "snap-%d", &gen); err != nil || name != snapName(gen) {
		return 0, false, fmt.Errorf("%s: malformed content %q", currentName, name)
	}
	return gen, true, nil
}

// legacyLayout reports a flat Save directory (pre-durable format).
func legacyLayout(fs faultfs.FS, dir string) bool {
	_, err := fs.Stat(filepath.Join(dir, "schema.authdb"))
	return err == nil
}

// verifyManifest checks every snapshot file against the CRC-32 and size
// recorded when the snapshot was committed.
func verifyManifest(fs faultfs.FS, snapDir string) error {
	data, err := fs.ReadFile(filepath.Join(snapDir, manifestName))
	if err != nil {
		return fmt.Errorf("reading manifest: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var sum uint32
		var size int
		var rel string
		if _, err := fmt.Sscanf(line, "%x %d %s", &sum, &size, &rel); err != nil {
			return fmt.Errorf("malformed manifest line %q", line)
		}
		b, err := fs.ReadFile(filepath.Join(snapDir, filepath.FromSlash(rel)))
		if err != nil {
			return fmt.Errorf("manifest names %s: %w", rel, err)
		}
		if len(b) != size || crc32.ChecksumIEEE(b) != sum {
			return fmt.Errorf("%s: checksum mismatch (snapshot corrupt)", rel)
		}
	}
	return nil
}

// replayWAL applies the log's valid prefix to e through an admin
// session. The engine is not yet attached to the log, so replayed
// statements are not re-journaled.
func replayWAL(fs faultfs.FS, path string, e *Engine) error {
	admin := e.NewSession("admin", true)
	_, err := wal.Replay(fs, path, func(i int, stmt string) error {
		if _, err := admin.Exec(stmt); err != nil {
			return fmt.Errorf("replaying %s record %d (%s): %w", filepath.Base(path), i+1, firstLine(stmt), err)
		}
		return nil
	})
	return err
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i] + " …"
	}
	return s
}

// Checkpoint folds the write-ahead log into a fresh snapshot generation,
// bounding recovery time. It runs automatically on OpenDurable; call it
// after bulk loads. The engine must be durable and not failed.
func (e *Engine) Checkpoint() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dur == nil {
		return fmt.Errorf("engine has no durable directory")
	}
	if e.dur.broken != nil {
		return fmt.Errorf("durable state failed: %w", e.dur.broken)
	}
	return e.checkpointLocked(e.dur.fs, e.dur.dir, e.dur.gen)
}

// checkpointLocked writes generation gen+1 and commits it. Callers hold
// e.mu. On error the previous generation stays committed and the
// engine's attachment is unchanged.
func (e *Engine) checkpointLocked(fs faultfs.FS, dir string, gen uint64) error {
	next := gen + 1
	files, err := e.snapshotFiles()
	if err != nil {
		return err
	}

	// Build the snapshot in a temp directory: contents, MANIFEST, fsyncs.
	tmp := filepath.Join(dir, snapName(next)+".tmp")
	if err := fs.RemoveAll(tmp); err != nil {
		return err
	}
	if err := fs.MkdirAll(filepath.Join(tmp, "data"), 0o755); err != nil {
		return err
	}
	var manifest strings.Builder
	for _, rel := range sortedPaths(files) {
		if err := writeFileSync(fs, filepath.Join(tmp, filepath.FromSlash(rel)), files[rel]); err != nil {
			return err
		}
		fmt.Fprintf(&manifest, "%08x %d %s\n", crc32.ChecksumIEEE(files[rel]), len(files[rel]), rel)
	}
	if err := writeFileSync(fs, filepath.Join(tmp, manifestName), []byte(manifest.String())); err != nil {
		return err
	}
	if err := fs.SyncDir(filepath.Join(tmp, "data")); err != nil {
		return err
	}
	if err := fs.SyncDir(tmp); err != nil {
		return err
	}

	// Move the snapshot to its final name and start its empty WAL.
	final := filepath.Join(dir, snapName(next))
	if err := fs.RemoveAll(final); err != nil {
		return err
	}
	if err := fs.Rename(tmp, final); err != nil {
		return err
	}
	if err := fs.SyncDir(dir); err != nil {
		return err
	}
	wl, err := wal.Create(fs, filepath.Join(dir, walName(next)))
	if err != nil {
		return err
	}

	// Commit point: CURRENT flips to the new generation atomically.
	curTmp := filepath.Join(dir, currentName+".tmp")
	if err := writeFileSync(fs, curTmp, []byte(snapName(next)+"\n")); err != nil {
		wl.Close()
		return err
	}
	if err := fs.Rename(curTmp, filepath.Join(dir, currentName)); err != nil {
		wl.Close()
		return err
	}
	if err := fs.SyncDir(dir); err != nil {
		wl.Close()
		return err
	}

	// Committed. Install the new log and reclaim the old generation
	// (best effort — leftovers are ignored and retried next checkpoint).
	if e.dur != nil && e.dur.wal != nil {
		e.dur.wal.Close()
	}
	e.dur = &durable{fs: fs, dir: dir, gen: next, wal: wl}
	if gen > 0 {
		fs.RemoveAll(filepath.Join(dir, snapName(gen)))
		fs.Remove(filepath.Join(dir, walName(gen)))
	}
	return nil
}

// durCheck refuses mutations once the durable layer has failed.
// Callers hold e.mu.
func (e *Engine) durCheck() error {
	if e.dur != nil && e.dur.broken != nil {
		return fmt.Errorf("durable log failed, mutations are disabled: %w", e.dur.broken)
	}
	return nil
}

// logStmt journals an applied mutating statement. Callers hold e.mu for
// writing and have already applied the mutation; a journaling failure
// marks the durable state broken (fail stop).
func (e *Engine) logStmt(p parser.Stmt) error {
	if e.dur == nil {
		return nil
	}
	text, err := parser.Render(p)
	if err == nil {
		err = e.dur.wal.Append(text)
	}
	if err != nil {
		e.dur.broken = err
		return fmt.Errorf("journaling statement: %w", err)
	}
	e.met.Counter("authdb_wal_appends_total").Inc()
	return nil
}

// Close releases the durable log handle. The in-memory state stays
// readable; further mutations on a durable engine fail. Engines without
// a durable directory close trivially.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dur == nil || e.dur.wal == nil {
		return nil
	}
	err := e.dur.wal.Close()
	e.dur.broken = errors.New("engine closed")
	e.dur.wal = nil
	return err
}
